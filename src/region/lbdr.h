// LBDR-style restricted regionalization (paper Sec. III.B).
//
// Logic-Based Distributed Routing [Flich et al., NOCS'08; Trivino et al.,
// MICRO+MICROSYS'11] reduces inter-region interference by *confining* every
// application's packets to its own region. The price is a hard placement
// constraint: since applications must still reach memory, every region has
// to contain at least one memory controller, which invalidates most
// application-to-core mappings — the paper computes that with 16 cores,
// 4 MCs and 4 four-thread applications only ~14% of mappings are viable.
//
// This module reproduces that restricted baseline so its limitations can
// be quantified against RAIR:
//  * validity checking of a RegionMap under the LBDR constraint,
//  * exact counting of valid vs. total placements (the paper's 14%),
//  * a traffic-legality filter (intra-region packets only).
#pragma once

#include <cstdint>

#include "region/region_map.h"

namespace rair {

/// Checks the LBDR placement constraint: every application's region must
/// contain at least one of the `mcNodes`.
bool lbdrMappingValid(const RegionMap& map, std::span<const NodeId> mcNodes);

/// Whether a packet from `src` to `dst` is routable at all under LBDR
/// (both endpoints inside the same region).
bool lbdrPacketAllowed(const RegionMap& map, NodeId src, NodeId dst);

/// Exact fraction of application-to-core mappings that satisfy the LBDR
/// constraint when `numApps` applications of `threadsPerApp` threads each
/// are placed on `numCores` cores of which `numMcs` host a memory
/// controller (MC positions are fixed; threads are interchangeable within
/// an application, applications are distinct). This is the closed-form
/// computation behind the paper's "~14%" example (16 cores, 4 MCs,
/// 4 apps x 4 threads).
///
/// Counting model (matching the paper's formula): every core is assigned
/// to exactly one application (numApps * threadsPerApp == numCores); a
/// mapping is valid when each application receives at least one MC core.
double lbdrValidMappingFraction(int numCores, int numMcs, int numApps,
                                int threadsPerApp);

}  // namespace rair
