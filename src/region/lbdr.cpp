#include "region/lbdr.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.h"

namespace rair {

bool lbdrMappingValid(const RegionMap& map, std::span<const NodeId> mcNodes) {
  std::vector<bool> hasMc(static_cast<size_t>(map.numApps()), false);
  for (NodeId mc : mcNodes) {
    const AppId a = map.appOf(mc);
    if (a != kNoApp) hasMc[static_cast<size_t>(a)] = true;
  }
  return std::all_of(hasMc.begin(), hasMc.end(), [](bool b) { return b; });
}

bool lbdrPacketAllowed(const RegionMap& map, NodeId src, NodeId dst) {
  return map.sameRegion(src, dst);
}

namespace {

double logFactorial(int n) { return std::lgamma(static_cast<double>(n) + 1); }

/// Sum over all ways to give each remaining app between 1 and
/// threadsPerApp of the remaining MC cores; accumulates the count of
/// valid assignments in log-free (plain) space via exp of log terms.
double validCount(int appsLeft, int mcsLeft, int nonMcsLeft,
                  int threadsPerApp) {
  if (appsLeft == 0) return (mcsLeft == 0 && nonMcsLeft == 0) ? 1.0 : 0.0;
  double total = 0.0;
  const int maxMc = std::min(mcsLeft, threadsPerApp);
  for (int mi = 1; mi <= maxMc; ++mi) {
    const int ni = threadsPerApp - mi;  // non-MC cores this app takes
    if (ni > nonMcsLeft) continue;
    // Choose which MC cores and which non-MC cores this app receives.
    const double choose =
        std::exp(logFactorial(mcsLeft) - logFactorial(mi) -
                 logFactorial(mcsLeft - mi) + logFactorial(nonMcsLeft) -
                 logFactorial(ni) - logFactorial(nonMcsLeft - ni));
    total += choose *
             validCount(appsLeft - 1, mcsLeft - mi, nonMcsLeft - ni,
                        threadsPerApp);
  }
  return total;
}

}  // namespace

double lbdrValidMappingFraction(int numCores, int numMcs, int numApps,
                                int threadsPerApp) {
  RAIR_CHECK(numCores >= 1 && numMcs >= 0 && numApps >= 1 &&
             threadsPerApp >= 1);
  RAIR_CHECK_MSG(numApps * threadsPerApp == numCores,
                 "counting model assumes a full partition of the cores");
  RAIR_CHECK(numMcs <= numCores);
  if (numMcs < numApps) return 0.0;  // some app can never get an MC

  // Total mappings: partition numCores distinguishable cores into numApps
  // labeled groups of threadsPerApp each.
  double logTotal = logFactorial(numCores) -
                    numApps * logFactorial(threadsPerApp);
  const double valid =
      validCount(numApps, numMcs, numCores - numMcs, threadsPerApp);
  if (valid <= 0.0) return 0.0;
  return valid / std::exp(logTotal);
}

}  // namespace rair
