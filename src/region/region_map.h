// Application-to-core mapping and region bookkeeping.
//
// A RegionMap assigns every mesh node to at most one application; the set
// of nodes owned by an application is its *region* (paper Sec. II). The map
// answers the two queries RAIR needs at full speed:
//   * the AppId tag of a router (to classify passing packets as native or
//     foreign, Sec. IV.E), and
//   * region extents along a row/column (for DBAR's region-bounded
//     congestion horizon, Sec. III.B).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "topology/mesh.h"

namespace rair {

/// One application's placement.
struct AppSpec {
  AppId id = kNoApp;
  std::vector<NodeId> nodes;  ///< cores this application occupies
};

class RegionMap {
 public:
  /// Builds a map from explicit per-app node lists over `mesh`. Node lists
  /// must be disjoint; nodes not listed belong to no app (kNoApp).
  RegionMap(const Mesh& mesh, std::vector<AppSpec> apps);

  int numApps() const { return static_cast<int>(apps_.size()); }

  /// Application tag of node `n` (kNoApp if unassigned).
  AppId appOf(NodeId n) const { return nodeApp_[static_cast<size_t>(n)]; }

  /// Nodes of application `a`.
  std::span<const NodeId> nodesOf(AppId a) const;

  const std::vector<AppSpec>& apps() const { return apps_; }

  /// True when both nodes belong to the same (assigned) application.
  bool sameRegion(NodeId a, NodeId b) const {
    return appOf(a) != kNoApp && appOf(a) == appOf(b);
  }

  /// Whether a packet from application `app` is native at node `n`.
  bool isNativeAt(NodeId n, AppId app) const {
    return appOf(n) != kNoApp && appOf(n) == app;
  }

  /// Number of hops one can move from `n` in direction `d` while staying
  /// inside n's region (0 when the immediate neighbor is outside / absent).
  /// This is DBAR's congestion-information horizon.
  int regionExtent(NodeId n, Dir d) const;

  // ---- Canonical layouts used in the paper's evaluation ----------------

  /// Two regions: west half / east half (Fig. 8 scenario).
  static RegionMap halves(const Mesh& mesh);

  /// Four regions: quadrants (Figs. 11 and 16 scenarios).
  static RegionMap quadrants(const Mesh& mesh);

  /// Six regions on an 8x8 mesh (Fig. 13 scenario): a 2-row x 3-column
  /// block grid with column widths {3, 3, 2}, i.e. region sizes
  /// {12, 12, 8, 12, 12, 8}. App numbering is row-major over blocks.
  static RegionMap sixRegions(const Mesh& mesh);

  /// Generic rx-by-ry block grid; blocks get near-equal spans (remainders
  /// spread over the leading blocks). App numbering is row-major.
  static RegionMap blockGrid(const Mesh& mesh, int rx, int ry);

 private:
  const Mesh* mesh_;
  std::vector<AppSpec> apps_;
  std::vector<AppId> nodeApp_;
};

}  // namespace rair
