#include "region/region_map.h"

#include <algorithm>

#include "common/assert.h"

namespace rair {

RegionMap::RegionMap(const Mesh& mesh, std::vector<AppSpec> apps)
    : mesh_(&mesh), apps_(std::move(apps)) {
  nodeApp_.assign(static_cast<size_t>(mesh.numNodes()), kNoApp);
  for (size_t i = 0; i < apps_.size(); ++i) {
    RAIR_CHECK_MSG(apps_[i].id == static_cast<AppId>(i),
                   "AppSpec ids must be dense and in order (0..n-1)");
    for (NodeId n : apps_[i].nodes) {
      RAIR_CHECK(mesh.contains(n));
      RAIR_CHECK_MSG(nodeApp_[static_cast<size_t>(n)] == kNoApp,
                     "node assigned to two applications");
      nodeApp_[static_cast<size_t>(n)] = apps_[i].id;
    }
  }
}

std::span<const NodeId> RegionMap::nodesOf(AppId a) const {
  RAIR_CHECK(a >= 0 && a < numApps());
  return apps_[static_cast<size_t>(a)].nodes;
}

int RegionMap::regionExtent(NodeId n, Dir d) const {
  const AppId home = appOf(n);
  int extent = 0;
  NodeId cur = n;
  while (true) {
    const auto next = mesh_->neighbor(cur, d);
    if (!next || appOf(*next) != home || home == kNoApp) break;
    cur = *next;
    ++extent;
  }
  return extent;
}

namespace {

// Splits `total` into `parts` contiguous spans with remainders on the
// leading spans; returns the start offsets (size parts+1, last == total).
std::vector<int> splitSpans(int total, int parts) {
  std::vector<int> starts(static_cast<size_t>(parts) + 1, 0);
  const int base = total / parts;
  const int extra = total % parts;
  for (int i = 0; i < parts; ++i)
    starts[static_cast<size_t>(i) + 1] =
        starts[static_cast<size_t>(i)] + base + (i < extra ? 1 : 0);
  return starts;
}

RegionMap makeBlockGrid(const Mesh& mesh, const std::vector<int>& xStarts,
                        const std::vector<int>& yStarts) {
  const int rx = static_cast<int>(xStarts.size()) - 1;
  const int ry = static_cast<int>(yStarts.size()) - 1;
  std::vector<AppSpec> apps;
  apps.reserve(static_cast<size_t>(rx * ry));
  AppId next = 0;
  for (int by = 0; by < ry; ++by) {
    for (int bx = 0; bx < rx; ++bx) {
      AppSpec spec;
      spec.id = next++;
      for (int y = yStarts[static_cast<size_t>(by)];
           y < yStarts[static_cast<size_t>(by) + 1]; ++y) {
        for (int x = xStarts[static_cast<size_t>(bx)];
             x < xStarts[static_cast<size_t>(bx) + 1]; ++x) {
          spec.nodes.push_back(mesh.nodeAt({x, y}));
        }
      }
      apps.push_back(std::move(spec));
    }
  }
  return RegionMap(mesh, std::move(apps));
}

}  // namespace

RegionMap RegionMap::blockGrid(const Mesh& mesh, int rx, int ry) {
  RAIR_CHECK(rx >= 1 && ry >= 1);
  RAIR_CHECK(rx <= mesh.width() && ry <= mesh.height());
  return makeBlockGrid(mesh, splitSpans(mesh.width(), rx),
                       splitSpans(mesh.height(), ry));
}

RegionMap RegionMap::halves(const Mesh& mesh) {
  return blockGrid(mesh, 2, 1);
}

RegionMap RegionMap::quadrants(const Mesh& mesh) {
  return blockGrid(mesh, 2, 2);
}

RegionMap RegionMap::sixRegions(const Mesh& mesh) {
  if (mesh.width() == 8) {
    // Paper's 8x8 layout (Fig. 13): column widths {3,3,2}, two row bands.
    const std::vector<int> xStarts = {0, 3, 6, 8};
    return makeBlockGrid(mesh, xStarts, splitSpans(mesh.height(), 2));
  }
  return blockGrid(mesh, 3, 2);
}

}  // namespace rair
