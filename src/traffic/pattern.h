// Synthetic destination patterns (Dally & Towles ch. 3; paper Sec. V.A
// simulates uniform random, transpose, bit complement and hotspot).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "topology/mesh.h"

namespace rair {

enum class PatternKind : std::uint8_t {
  UniformRandom,  ///< any node but the source, uniformly (UR)
  Transpose,      ///< (x, y) -> (y, x) (TP)
  BitComplement,  ///< node id -> N-1-id (BC)
  Hotspot,        ///< uniformly among a small hot-node set (HS)
};

const char* patternName(PatternKind k);

/// Maps a source node to a destination. Deterministic patterns ignore the
/// RNG. A pattern may return the source itself (e.g. transpose on the
/// diagonal); callers skip such packets.
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual NodeId pick(NodeId src, Xoshiro256StarStar& rng) const = 0;
};

/// @param hotspots used by Hotspot only; empty -> default of the four
///        nodes around the mesh center.
std::unique_ptr<TrafficPattern> makePattern(PatternKind kind,
                                            const Mesh& mesh,
                                            std::vector<NodeId> hotspots = {});

/// Uniform random over an explicit node set, excluding the source — used
/// for intra-region traffic (uniform within the application's region).
class SetUniformPattern final : public TrafficPattern {
 public:
  explicit SetUniformPattern(std::vector<NodeId> nodes);
  NodeId pick(NodeId src, Xoshiro256StarStar& rng) const override;

 private:
  std::vector<NodeId> nodes_;
};

}  // namespace rair
