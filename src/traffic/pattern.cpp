#include "traffic/pattern.h"

#include "common/assert.h"

namespace rair {

const char* patternName(PatternKind k) {
  switch (k) {
    case PatternKind::UniformRandom: return "UR";
    case PatternKind::Transpose: return "TP";
    case PatternKind::BitComplement: return "BC";
    case PatternKind::Hotspot: return "HS";
  }
  return "?";
}

namespace {

class UniformRandomPattern final : public TrafficPattern {
 public:
  explicit UniformRandomPattern(int numNodes) : numNodes_(numNodes) {}
  NodeId pick(NodeId src, Xoshiro256StarStar& rng) const override {
    // Uniform over the other N-1 nodes.
    auto d = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(numNodes_ - 1)));
    if (d >= src) ++d;
    return d;
  }

 private:
  int numNodes_;
};

class TransposePattern final : public TrafficPattern {
 public:
  explicit TransposePattern(const Mesh& mesh) : mesh_(&mesh) {}
  NodeId pick(NodeId src, Xoshiro256StarStar&) const override {
    const Coord c = mesh_->coordOf(src);
    // Transpose swaps coordinates; clamp for non-square meshes.
    const int x = std::min(c.y, mesh_->width() - 1);
    const int y = std::min(c.x, mesh_->height() - 1);
    return mesh_->nodeAt({x, y});
  }

 private:
  const Mesh* mesh_;
};

class BitComplementPattern final : public TrafficPattern {
 public:
  explicit BitComplementPattern(int numNodes) : numNodes_(numNodes) {}
  NodeId pick(NodeId src, Xoshiro256StarStar&) const override {
    return static_cast<NodeId>(numNodes_ - 1 - src);
  }

 private:
  int numNodes_;
};

class HotspotPattern final : public TrafficPattern {
 public:
  explicit HotspotPattern(std::vector<NodeId> hotspots)
      : hotspots_(std::move(hotspots)) {
    RAIR_CHECK(!hotspots_.empty());
  }
  NodeId pick(NodeId /*src*/, Xoshiro256StarStar& rng) const override {
    return hotspots_[rng.below(hotspots_.size())];
  }

 private:
  std::vector<NodeId> hotspots_;
};

}  // namespace

std::unique_ptr<TrafficPattern> makePattern(PatternKind kind,
                                            const Mesh& mesh,
                                            std::vector<NodeId> hotspots) {
  switch (kind) {
    case PatternKind::UniformRandom:
      return std::make_unique<UniformRandomPattern>(mesh.numNodes());
    case PatternKind::Transpose:
      return std::make_unique<TransposePattern>(mesh);
    case PatternKind::BitComplement:
      return std::make_unique<BitComplementPattern>(mesh.numNodes());
    case PatternKind::Hotspot: {
      if (hotspots.empty()) {
        const int cx = mesh.width() / 2;
        const int cy = mesh.height() / 2;
        hotspots = {mesh.nodeAt({cx - 1, cy - 1}), mesh.nodeAt({cx, cy - 1}),
                    mesh.nodeAt({cx - 1, cy}), mesh.nodeAt({cx, cy})};
      }
      return std::make_unique<HotspotPattern>(std::move(hotspots));
    }
  }
  RAIR_CHECK_MSG(false, "unknown PatternKind");
}

SetUniformPattern::SetUniformPattern(std::vector<NodeId> nodes)
    : nodes_(std::move(nodes)) {
  RAIR_CHECK(nodes_.size() >= 2);
}

NodeId SetUniformPattern::pick(NodeId src, Xoshiro256StarStar& rng) const {
  // Rejection over the set (the set is small; the source is at most one
  // member, so the expected number of draws is < 2).
  for (;;) {
    const NodeId d = nodes_[rng.below(nodes_.size())];
    if (d != src) return d;
  }
}

}  // namespace rair
