#include "traffic/generator.h"

#include "common/assert.h"
#include "snapshot/codec.h"

namespace rair {

double meanBimodalFlits() {
  return (kShortPacketFlits + kLongPacketFlits) / 2.0;
}

RegionalizedSource::RegionalizedSource(const Mesh& mesh,
                                       const RegionMap& regions,
                                       AppTrafficSpec spec,
                                       std::uint64_t seed)
    : mesh_(&mesh),
      regions_(&regions),
      spec_(spec),
      rng_(seed),
      corners_(mesh.cornerNodes()) {
  const auto span = regions.nodesOf(spec.app);
  nodes_.assign(span.begin(), span.end());
  RAIR_CHECK_MSG(nodes_.size() >= 2, "region too small to generate traffic");
  const double fracSum =
      spec.intraFraction + spec.interFraction + spec.mcFraction;
  RAIR_CHECK_MSG(fracSum > 0.999 && fracSum < 1.001,
                 "traffic fractions must sum to 1");
  packetProb_ = spec.injectionRate / meanBimodalFlits();
  RAIR_CHECK(packetProb_ >= 0.0 && packetProb_ <= 1.0);
  intra_ = std::make_unique<SetUniformPattern>(nodes_);
  inter_ = makePattern(spec.interPattern, mesh);
  if (spec.interTargetApp != kNoApp) {
    const auto target = regions.nodesOf(spec.interTargetApp);
    interTarget_ = std::make_unique<SetUniformPattern>(
        std::vector<NodeId>(target.begin(), target.end()));
  }
}

NodeId RegionalizedSource::pickInterDst(NodeId src) {
  if (interTarget_) return interTarget_->pick(src, rng_);
  // Redraw a few times so stochastic patterns land outside the region;
  // deterministic patterns (TP/BC) return the same node, so accept it
  // after the attempts — the paper's global patterns are defined
  // chip-wide, and a transpose destination inside the region is simply
  // short-range for that source.
  NodeId dst = src;
  for (int attempt = 0; attempt < 4; ++attempt) {
    dst = inter_->pick(src, rng_);
    if (dst != src && regions_->appOf(dst) != spec_.app) return dst;
  }
  return dst;
}

void RegionalizedSource::tick(InjectionSink& sink) {
  for (NodeId src : nodes_) {
    if (!rng_.chance(packetProb_)) continue;
    const double roll = rng_.real();
    NodeId dst;
    if (roll < spec_.intraFraction) {
      dst = intra_->pick(src, rng_);
    } else if (roll < spec_.intraFraction + spec_.interFraction) {
      dst = pickInterDst(src);
    } else {
      // Memory-controller traffic: half requests toward a corner MC, half
      // replies coming back from one (both tagged with this app).
      const NodeId corner = corners_[rng_.below(corners_.size())];
      if (rng_.chance(0.5)) {
        dst = corner;
      } else {
        if (corner == src) continue;
        sink.createPacket(corner, src, spec_.app, spec_.msgClass,
                          drawBimodalLength(rng_));
        continue;
      }
    }
    if (dst == src) continue;
    sink.createPacket(src, dst, spec_.app, spec_.msgClass,
                      drawBimodalLength(rng_));
  }
}

void RegionalizedSource::saveState(snapshot::Writer& w) const {
  snapshot::saveRng(w, rng_);
}

void RegionalizedSource::restoreState(snapshot::Reader& r) {
  snapshot::restoreRng(r, rng_);
}

AdversarialSource::AdversarialSource(const Mesh& mesh, AppId attackerApp,
                                     double flitsPerCycleNode,
                                     std::uint64_t seed)
    : mesh_(&mesh),
      app_(attackerApp),
      rng_(seed),
      packetProb_(flitsPerCycleNode / meanBimodalFlits()),
      pattern_(makePattern(PatternKind::UniformRandom, mesh)) {
  RAIR_CHECK(packetProb_ >= 0.0 && packetProb_ <= 1.0);
}

void AdversarialSource::tick(InjectionSink& sink) {
  for (NodeId src = 0; src < mesh_->numNodes(); ++src) {
    if (!rng_.chance(packetProb_)) continue;
    const NodeId dst = pattern_->pick(src, rng_);
    if (dst == src) continue;
    sink.createPacket(src, dst, app_, MsgClass::Request,
                      drawBimodalLength(rng_));
  }
}

void AdversarialSource::saveState(snapshot::Writer& w) const {
  snapshot::saveRng(w, rng_);
}

void AdversarialSource::restoreState(snapshot::Reader& r) {
  snapshot::restoreRng(r, rng_);
}

}  // namespace rair
