// Regionalized per-application traffic generation (the paper's synthetic
// RNoC workloads) and the adversarial flooder of Fig. 17.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "region/region_map.h"
#include "traffic/pattern.h"
#include "traffic/source.h"

namespace rair {

/// Traffic of one application, split into the paper's three components:
/// intra-region uniform random, inter-region global traffic with a
/// configurable pattern, and memory-controller traffic to/from the four
/// corner nodes (Sec. V.E uses 75% / 20% / 5%).
struct AppTrafficSpec {
  AppId app = 0;
  /// Offered load in flits/cycle/node over the app's nodes. Packet
  /// creation probability per node per cycle is rate / E[packet length].
  double injectionRate = 0.1;
  double intraFraction = 1.0;   ///< uniform random within the region
  double interFraction = 0.0;   ///< global traffic (pattern below)
  double mcFraction = 0.0;      ///< to/from the corner memory controllers
  PatternKind interPattern = PatternKind::UniformRandom;
  /// When set, inter-region traffic goes uniformly to this app's region
  /// instead of following interPattern (the Fig. 11(a) scenario: "30% of
  /// the traffic of App 0~2 are inter-region and towards App 3").
  AppId interTargetApp = kNoApp;
  MsgClass msgClass = MsgClass::Request;
};

/// Bernoulli generator for one application over its region.
class RegionalizedSource final : public TrafficSource {
 public:
  RegionalizedSource(const Mesh& mesh, const RegionMap& regions,
                     AppTrafficSpec spec, std::uint64_t seed);

  void tick(InjectionSink& sink) override;

  const AppTrafficSpec& spec() const { return spec_; }

  // Snapshot hooks: the RNG stream is the only mutable state (patterns and
  // node lists are pure functions of the construction arguments).
  bool snapshotSupported() const override { return true; }
  void saveState(snapshot::Writer& w) const override;
  void restoreState(snapshot::Reader& r) override;

 private:
  /// Picks an inter-region destination; retries so the result lands
  /// outside the app's own region where the pattern allows it.
  NodeId pickInterDst(NodeId src);

  const Mesh* mesh_;
  const RegionMap* regions_;
  AppTrafficSpec spec_;
  Xoshiro256StarStar rng_;
  std::vector<NodeId> nodes_;
  double packetProb_;  ///< per node per cycle
  std::unique_ptr<TrafficPattern> intra_;
  std::unique_ptr<TrafficPattern> inter_;
  std::unique_ptr<TrafficPattern> interTarget_;
  std::array<NodeId, 4> corners_;
};

/// Chip-wide uniform-random flooder tagged with its own AppId — the
/// malicious/buggy VM model of Fig. 17 ("uniform chip-wide global traffic
/// with a load rate of 0.4 flits/cycle/node"). Foreign to every region.
class AdversarialSource final : public TrafficSource {
 public:
  AdversarialSource(const Mesh& mesh, AppId attackerApp,
                    double flitsPerCycleNode, std::uint64_t seed);

  void tick(InjectionSink& sink) override;

  bool snapshotSupported() const override { return true; }
  void saveState(snapshot::Writer& w) const override;
  void restoreState(snapshot::Reader& r) override;

 private:
  const Mesh* mesh_;
  AppId app_;
  Xoshiro256StarStar rng_;
  double packetProb_;
  std::unique_ptr<TrafficPattern> pattern_;
};

/// Mean flit count of the bimodal length distribution (used to convert
/// flits/cycle/node into packets/cycle/node).
double meanBimodalFlits();

}  // namespace rair
