// Traffic-source abstraction: anything that creates packets, from
// synthetic Bernoulli generators to trace replay.
#pragma once

#include "common/types.h"
#include "packet/packet.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair {

/// Where sources hand their packets. Implemented by the Simulator: it
/// assigns ids, records creation stats and enqueues at the source NIC.
class InjectionSink {
 public:
  virtual ~InjectionSink() = default;

  /// Creates a packet at cycle now(); returns its id.
  virtual PacketId createPacket(NodeId src, NodeId dst, AppId app,
                                MsgClass cls, std::uint16_t numFlits) = 0;

  /// Current simulation cycle.
  virtual Cycle now() const = 0;
};

/// A packet generator, ticked once per cycle while injection is enabled.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// May call sink.createPacket() any number of times.
  virtual void tick(InjectionSink& sink) = 0;

  /// Whether this source's mutable state can be snapshotted. Sources that
  /// return false (the default — e.g. trace replay with external cursors)
  /// make the whole simulation snapshot-ineligible.
  virtual bool snapshotSupported() const { return false; }
  /// Serialize/deserialize the source's mutable state (typically just its
  /// RNG stream). Only called when snapshotSupported().
  virtual void saveState(snapshot::Writer& w) const { (void)w; }
  virtual void restoreState(snapshot::Reader& r) { (void)r; }
};

}  // namespace rair
