#include "fault/plan.h"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "common/assert.h"
#include "snapshot/buffer.h"

namespace rair::fault {

namespace {

constexpr std::string_view kKindNames[] = {
    "down", "up", "stall", "unstall", "creditloss", "freeze", "thaw",
    "corrupt", "reset", "recover",
};

bool parseDir(std::string_view tok, Dir& out) {
  if (tok == "N") out = Dir::North;
  else if (tok == "E") out = Dir::East;
  else if (tok == "S") out = Dir::South;
  else if (tok == "W") out = Dir::West;
  else return false;
  return true;
}

std::string_view dirToken(Dir d) {
  switch (d) {
    case Dir::North: return "N";
    case Dir::East: return "E";
    case Dir::South: return "S";
    case Dir::West: return "W";
    default: return "?";
  }
}

template <typename T>
bool parseInt(std::string_view tok, T& out) {
  const auto* end = tok.data() + tok.size();
  const auto res = std::from_chars(tok.data(), end, out);
  return res.ec == std::errc{} && res.ptr == end;
}

bool needsDir(FaultKind k) {
  return k != FaultKind::InjectFreeze && k != FaultKind::InjectThaw &&
         k != FaultKind::Reset && k != FaultKind::Recover;
}

}  // namespace

std::string_view faultKindName(FaultKind k) {
  const auto i = static_cast<std::size_t>(k);
  RAIR_DCHECK(i < std::size(kKindNames));
  return kKindNames[i];
}

void FaultPlan::add(const FaultEvent& e) {
  RAIR_CHECK_MSG(!needsDir(e.kind) || e.dir != Dir::Local,
                 "fault event needs a router-router direction");
  events_.push_back(e);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

void FaultPlan::linkOutage(Cycle at, NodeId node, Dir dir, Cycle duration) {
  RAIR_CHECK(duration >= 1);
  add({at, FaultKind::LinkDown, node, dir, 0, 1});
  add({at + duration, FaultKind::LinkUp, node, dir, 0, 1});
}

void FaultPlan::portStall(Cycle at, NodeId node, Dir dir, Cycle duration) {
  RAIR_CHECK(duration >= 1);
  add({at, FaultKind::PortStall, node, dir, 0, 1});
  add({at + duration, FaultKind::PortUnstall, node, dir, 0, 1});
}

void FaultPlan::injectFreeze(Cycle at, NodeId node, Cycle duration) {
  RAIR_CHECK(duration >= 1);
  add({at, FaultKind::InjectFreeze, node, Dir::North, 0, 1});
  add({at + duration, FaultKind::InjectThaw, node, Dir::North, 0, 1});
}

void FaultPlan::creditLoss(Cycle at, NodeId node, Dir dir, int vc,
                           int count) {
  RAIR_CHECK(count >= 1);
  add({at, FaultKind::CreditLoss, node, dir, vc, count});
}

void FaultPlan::corruptFlits(Cycle at, NodeId node, Dir dir, int count) {
  RAIR_CHECK(count >= 1);
  add({at, FaultKind::CorruptFlit, node, dir, 0, count});
}

void FaultPlan::softReset(Cycle at, NodeId node, Cycle duration) {
  RAIR_CHECK(duration >= 1);
  add({at, FaultKind::Reset, node, Dir::North, 0, 1});
  add({at + duration, FaultKind::Recover, node, Dir::North, 0, 1});
}

void FaultPlan::encode(snapshot::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(events_.size()));
  for (const FaultEvent& e : events_) {
    w.u64(e.at);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.i32(e.node);
    w.u8(static_cast<std::uint8_t>(e.dir));
    w.i32(e.vc);
    w.i32(e.count);
  }
}

FaultPlan FaultPlan::decode(snapshot::Reader& r) {
  FaultPlan plan;
  const std::uint32_t n = r.u32();
  plan.events_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FaultEvent e;
    e.at = r.u64();
    e.kind = static_cast<FaultKind>(r.u8());
    e.node = r.i32();
    e.dir = static_cast<Dir>(r.u8());
    e.vc = r.i32();
    e.count = r.i32();
    plan.events_.push_back(e);
  }
  return plan;
}

std::string FaultPlan::format() const {
  std::ostringstream out;
  for (const FaultEvent& e : events_) {
    out << '@' << e.at << ' ' << faultKindName(e.kind) << ' ' << e.node;
    if (needsDir(e.kind)) out << ' ' << dirToken(e.dir);
    if (e.kind == FaultKind::CreditLoss)
      out << ' ' << e.vc << ' ' << e.count;
    if (e.kind == FaultKind::CorruptFlit) out << ' ' << e.count;
    out << '\n';
  }
  return out.str();
}

bool FaultPlan::parse(std::string_view text, FaultPlan& out,
                      std::string* error) {
  const auto fail = [&](std::size_t lineNo, const std::string& msg) {
    if (error)
      *error = "fault plan line " + std::to_string(lineNo) + ": " + msg;
    return false;
  };
  FaultPlan plan;
  std::size_t lineNo = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineNo;

    std::vector<std::string_view> toks;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                 line[i] == '\r'))
        ++i;
      if (i >= line.size() || line[i] == '#') break;
      const std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r' && line[i] != '#')
        ++i;
      toks.push_back(line.substr(start, i - start));
    }
    if (toks.empty()) continue;
    if (toks.size() < 3 || toks[0].empty() || toks[0][0] != '@')
      return fail(lineNo, "expected '@<cycle> <kind> <node> ...'");

    FaultEvent e;
    if (!parseInt(toks[0].substr(1), e.at))
      return fail(lineNo, "bad cycle");
    bool known = false;
    for (std::size_t k = 0; k < std::size(kKindNames); ++k) {
      if (toks[1] == kKindNames[k]) {
        e.kind = static_cast<FaultKind>(k);
        known = true;
        break;
      }
    }
    if (!known) return fail(lineNo, "unknown fault kind");
    if (!parseInt(toks[2], e.node)) return fail(lineNo, "bad node id");

    std::size_t next = 3;
    if (needsDir(e.kind)) {
      if (toks.size() < 4 || !parseDir(toks[3], e.dir))
        return fail(lineNo, "expected direction N|E|S|W");
      next = 4;
    }
    if (e.kind == FaultKind::CreditLoss) {
      if (toks.size() < next + 2 || !parseInt(toks[next], e.vc) ||
          !parseInt(toks[next + 1], e.count) || e.count < 1)
        return fail(lineNo, "creditloss needs '<vc> <count>'");
      next += 2;
    }
    if (e.kind == FaultKind::CorruptFlit) {
      if (toks.size() < next + 1 || !parseInt(toks[next], e.count) ||
          e.count < 1)
        return fail(lineNo, "corrupt needs '<count>'");
      next += 1;
    }
    if (e.kind == FaultKind::Reset && toks.size() == next + 1) {
      // Sugar: '@c reset <node> <duration>' expands to the reset/recover
      // pair (format() always emits the unsugared one-event lines).
      Cycle duration = 0;
      if (!parseInt(toks[next], duration) || duration < 1)
        return fail(lineNo, "reset duration must be >= 1");
      next += 1;
      plan.add(e);
      plan.add({e.at + duration, FaultKind::Recover, e.node, Dir::North, 0,
                1});
      continue;
    }
    if (toks.size() != next) return fail(lineNo, "trailing tokens");
    plan.add(e);
  }
  out = std::move(plan);
  return true;
}

}  // namespace rair::fault
