// Deterministic fault plans: timed, serializable fault events.
//
// A FaultPlan is an ordered list of cycle-stamped events (link outages,
// router-port stalls, credit loss, NIC injection freezes). Plans are plain
// data: they can be built programmatically, parsed from a small text
// format (one event per line, see parse()), encoded canonically for
// scenario keys and snapshots, and compared for equality. The injector
// that applies a plan to a running simulation lives in fault/injector.h;
// this header deliberately depends only on common/ and topology/ so the
// oracle can consume the FaultView interface without linking the
// simulator.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "topology/mesh.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair::fault {

enum class FaultKind : std::uint8_t {
  LinkDown = 0,   ///< kill both directions of the channel (node, dir)
  LinkUp,         ///< restore the channel (node, dir)
  PortStall,      ///< router `node` stops winning SA toward out-port `dir`
  PortUnstall,    ///< release the stall
  CreditLoss,     ///< destroy `count` credits of (node, out-port dir, vc)
  InjectFreeze,   ///< NIC `node` stops claiming VCs and injecting flits
  InjectThaw,     ///< release the freeze
  /// Corrupt the next `count` flits entering the wire of router `node`'s
  /// output channel toward `dir` (CRC failure at the receiver). Requires
  /// the retransmission link layer — recoverable transient faults, unlike
  /// the outage kinds above.
  CorruptFlit,
  /// Soft-reset router `node`: every buffered/in-progress packet inside
  /// the router is dropped with credit refunds and its incident channels
  /// go down until the paired Recover. Under the retransmission link
  /// layer the neighbors' replay buffers redeliver the lost flits after
  /// recovery; under the ideal layer it behaves as a node outage.
  Reset,
  /// Bring a reset router back up (a lone Recover is a harmless no-op).
  Recover,
};

std::string_view faultKindName(FaultKind k);

/// One scheduled fault. Field use depends on kind: `dir` names the channel
/// or out-port (never Local), `vc`/`count` are CreditLoss-only.
struct FaultEvent {
  Cycle at = 0;
  FaultKind kind = FaultKind::LinkDown;
  NodeId node = 0;
  Dir dir = Dir::North;
  int vc = 0;
  int count = 1;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// An immutable-once-built schedule of fault events, kept sorted by cycle
/// (stable: same-cycle events apply in insertion order).
class FaultPlan {
 public:
  void add(const FaultEvent& e);

  // Convenience builders for the common paired shapes.
  void linkOutage(Cycle at, NodeId node, Dir dir, Cycle duration);
  void portStall(Cycle at, NodeId node, Dir dir, Cycle duration);
  void injectFreeze(Cycle at, NodeId node, Cycle duration);
  void creditLoss(Cycle at, NodeId node, Dir dir, int vc, int count);
  void corruptFlits(Cycle at, NodeId node, Dir dir, int count);
  void softReset(Cycle at, NodeId node, Cycle duration);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Canonical binary encoding (scenario keys, snapshot sections).
  void encode(snapshot::Writer& w) const;
  static FaultPlan decode(snapshot::Reader& r);

  /// Text round-trip. Format, one event per line (blank lines and
  /// #-comments ignored):
  ///   @<cycle> down|up|stall|unstall <node> <N|E|S|W>
  ///   @<cycle> creditloss <node> <N|E|S|W> <vc> <count>
  ///   @<cycle> freeze|thaw <node>
  ///   @<cycle> corrupt <node> <N|E|S|W> <count>
  ///   @<cycle> reset <node> [<duration>]   # duration adds the recover
  ///   @<cycle> recover <node>
  std::string format() const;
  static bool parse(std::string_view text, FaultPlan& out,
                    std::string* error = nullptr);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

/// Degradation accounting surfaced to metrics, campaign records and the
/// CLI. All counters are totals over the run so far.
struct FaultStats {
  std::uint64_t eventsApplied = 0;
  std::uint64_t droppedPackets = 0;   ///< the droppedByFault bucket
  std::uint64_t droppedFlits = 0;
  std::uint64_t reroutes = 0;         ///< WaitingVa resets at topology events
  std::uint64_t unreachablePairs = 0; ///< worst ordered-pair count observed
  std::uint64_t degradedCycles = 0;   ///< cycles with >= 1 dead link
  std::uint64_t recoveryCycles = 0;   ///< outage start -> full restore, summed
  std::uint64_t corruptedFlits = 0;     ///< CRC-failed wire traversals
  std::uint64_t retransmittedFlits = 0; ///< go-back-N replay traversals
  std::uint64_t softResets = 0;         ///< Reset events applied

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// What the simulation oracle needs to know about applied faults so its
/// invariants keep closing: when state was last mutated out-of-band, and
/// how many credits were deliberately destroyed per (node, out-port, vc).
class FaultView {
 public:
  virtual ~FaultView() = default;
  /// Cycle of the most recent topology mutation (purge/reroute), or
  /// kNeverCycle when none happened yet.
  virtual Cycle lastTopologyChange() const = 0;
  /// Credits destroyed by CreditLoss events on router `node`'s output
  /// port `port` (Dir cast to int), VC index `vc`.
  virtual std::uint64_t lostCredits(NodeId node, int port, int vc) const = 0;
};

}  // namespace rair::fault
