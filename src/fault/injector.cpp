#include "fault/injector.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "snapshot/codec.h"

namespace rair::fault {

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(&sim),
      net_(&sim.network()),
      plan_(std::move(plan)),
      degraded_(net_->mesh()) {
  const std::size_t n = static_cast<std::size_t>(net_->mesh().numNodes());
  lost_.assign(n * static_cast<std::size_t>(kNumPorts) *
                   static_cast<std::size_t>(net_->layout().totalVcs()),
               0);
  inReset_.assign(n, 0);
  const bool retx = net_->config().linkLayer == LinkLayerKind::Retx;
  std::vector<std::uint8_t> resetNow(n, 0);
  for (const FaultEvent& e : plan_.events()) {
    RAIR_CHECK_MSG(net_->mesh().contains(e.node),
                   "fault plan names a node outside the mesh");
    if (e.kind == FaultKind::LinkDown || e.kind == FaultKind::LinkUp) {
      RAIR_CHECK_MSG(net_->mesh().neighbor(e.node, e.dir).has_value(),
                     "fault plan kills a link that does not exist");
      // The reconfiguration flush purges link pipes; a retransmission
      // link's replay/sequence state has no purge semantics (a purged
      // entry would be "retransmitted" forever). The two fault families
      // are deliberately disjoint per link layer.
      RAIR_CHECK_MSG(!retx,
                     "link outage faults require the ideal link layer");
    }
    if (e.kind == FaultKind::CreditLoss) {
      RAIR_CHECK_MSG(e.vc >= 0 && e.vc < net_->layout().totalVcs(),
                     "fault plan names a VC outside the layout");
    }
    if (e.kind == FaultKind::CorruptFlit) {
      RAIR_CHECK_MSG(net_->mesh().neighbor(e.node, e.dir).has_value(),
                     "fault plan corrupts a link that does not exist");
      RAIR_CHECK_MSG(retx,
                     "corrupt_flit faults require the retx link layer "
                     "(--link-layer retx)");
    }
    // Soft resets may not nest (events are sorted, so this replay sees
    // them in application order). A stranded Recover is a no-op; an
    // unrecovered reset is allowed only on the ideal layer — on the retx
    // layer committed neighbors stall against the reset node forever, so
    // the plan would never drain.
    if (e.kind == FaultKind::Reset) {
      const auto idx = static_cast<std::size_t>(e.node);
      RAIR_CHECK_MSG(!resetNow[idx],
                     "fault plan resets a node already in reset");
      resetNow[idx] = 1;
    }
    if (e.kind == FaultKind::Recover)
      resetNow[static_cast<std::size_t>(e.node)] = 0;
  }
  if (retx) {
    for (std::size_t i = 0; i < n; ++i)
      RAIR_CHECK_MSG(!resetNow[i],
                     "retx-layer soft resets must recover before the plan "
                     "ends (stalled neighbors would never drain)");
  }
}

FaultInjector::~FaultInjector() { detach(); }

void FaultInjector::attach() {
  RAIR_CHECK_MSG(!attached_, "FaultInjector attached twice");
  sim_->observers().attach(this);
  sim_->setFaultHook(this);
  net_->routingMut().setDegraded(&degraded_);
  attached_ = true;
}

void FaultInjector::detach() {
  if (!attached_) return;
  sim_->observers().detach(this);
  sim_->setFaultHook(nullptr);
  net_->routingMut().setDegraded(nullptr);
  attached_ = false;
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.eventsApplied = eventsApplied_;
  s.droppedPackets = sim_->droppedByFault();
  s.droppedFlits = sim_->droppedFlitsByFault();
  s.reroutes = reroutes_;
  s.unreachablePairs = unreachablePairs_;
  s.degradedCycles = degradedCycles_;
  s.recoveryCycles = recoveryCycles_;
  s.corruptedFlits = net_->totalCorruptedFlits();
  s.retransmittedFlits = net_->totalRetransmittedFlits();
  s.softResets = softResets_;
  return s;
}

std::size_t FaultInjector::lostIndex(NodeId node, int port, int vc) const {
  const int tv = net_->layout().totalVcs();
  RAIR_DCHECK(port >= 0 && port < kNumPorts && vc >= 0 && vc < tv);
  return (static_cast<std::size_t>(node) * kNumPorts +
          static_cast<std::size_t>(port)) *
             static_cast<std::size_t>(tv) +
         static_cast<std::size_t>(vc);
}

void FaultInjector::onCycleBegin(Cycle now) {
  if (cursor_ >= plan_.size() && !degraded_.active()) return;

  const bool wasActive = degraded_.active();
  bool topoChanged = false;
  while (cursor_ < plan_.size() && plan_.events()[cursor_].at <= now) {
    applyEvent(plan_.events()[cursor_], topoChanged);
    ++cursor_;
    ++eventsApplied_;
  }
  if (topoChanged) {
    degraded_.commit();
    applyTopologyChange(now);
    lastTopoChange_ = now;
    unreachablePairs_ =
        std::max(unreachablePairs_, degraded_.unreachablePairs());
  }

  const bool active = degraded_.active();
  if (!wasActive && active) outageStart_ = now;
  if (wasActive && !active) {
    recoveryCycles_ += now - outageStart_;
    outageStart_ = kNeverCycle;
  }
  if (active) ++degradedCycles_;
}

void FaultInjector::applyEvent(const FaultEvent& e, bool& topoChanged) {
  switch (e.kind) {
    case FaultKind::LinkDown:
      degraded_.setLinkDead(e.node, e.dir, true);
      topoChanged = true;
      break;
    case FaultKind::LinkUp:
      degraded_.setLinkDead(e.node, e.dir, false);
      topoChanged = true;
      break;
    case FaultKind::PortStall:
      net_->router(e.node).stalledOutPorts_ |=
          1u << static_cast<unsigned>(e.dir);
      break;
    case FaultKind::PortUnstall:
      net_->router(e.node).stalledOutPorts_ &=
          ~(1u << static_cast<unsigned>(e.dir));
      break;
    case FaultKind::CreditLoss:
      // Only credits actually outstanding can be lost on the wire; the
      // ledger records successful drops so the oracle's equations shift by
      // exactly the destroyed amount.
      for (int i = 0; i < e.count; ++i) {
        if (net_->router(e.node).debugDropCredit(e.dir, e.vc))
          ++lost_[lostIndex(e.node, static_cast<int>(e.dir), e.vc)];
      }
      break;
    case FaultKind::InjectFreeze:
      net_->nic(e.node).injectFrozen_ = true;
      break;
    case FaultKind::InjectThaw:
      net_->nic(e.node).injectFrozen_ = false;
      break;
    case FaultKind::CorruptFlit:
      net_->router(e.node)
          .outLinks_[static_cast<std::size_t>(e.dir)]
          ->corruptNext(e.count);
      break;
    case FaultKind::Reset: {
      // Mark every incident channel dead (the node becomes its own
      // component: routing avoids it and reachability dooms traffic to
      // it). Under retx the receiving link ends additionally refuse
      // arrivals so the neighbors' replay buffers redeliver after
      // recovery. The in-router purge happens in applyTopologyChange.
      inReset_[static_cast<std::size_t>(e.node)] = 1;
      ++numInReset_;
      ++softResets_;
      for (int d = static_cast<int>(Dir::North); d < kNumPorts; ++d) {
        const Dir dir = static_cast<Dir>(d);
        if (net_->mesh().neighbor(e.node, dir))
          degraded_.setLinkDead(e.node, dir, true);
      }
      if (net_->config().linkLayer == LinkLayerKind::Retx)
        setNodeReceiverDown(e.node, true);
      topoChanged = true;
      break;
    }
    case FaultKind::Recover: {
      if (!inReset_[static_cast<std::size_t>(e.node)]) break;  // stranded
      inReset_[static_cast<std::size_t>(e.node)] = 0;
      --numInReset_;
      for (int d = static_cast<int>(Dir::North); d < kNumPorts; ++d) {
        const Dir dir = static_cast<Dir>(d);
        const auto nb = net_->mesh().neighbor(e.node, dir);
        // A channel shared with a neighbor still in reset stays dead;
        // that neighbor's own Recover revives it (setLinkDead is
        // undirected).
        if (nb && !inReset_[static_cast<std::size_t>(*nb)])
          degraded_.setLinkDead(e.node, dir, false);
      }
      if (net_->config().linkLayer == LinkLayerKind::Retx)
        setNodeReceiverDown(e.node, false);
      topoChanged = true;
      break;
    }
  }
}

void FaultInjector::setNodeReceiverDown(NodeId node, bool down) {
  // inLinks_[Local] is the NIC injection channel, so this loop covers
  // every channel whose receiving end sits inside the router.
  Router& r = net_->router(node);
  for (int p = 0; p < kNumPorts; ++p) {
    if (LinkLayer* in = r.inLinks_[static_cast<std::size_t>(p)])
      in->setReceiverDown(down);
  }
}

void FaultInjector::applyTopologyChange(Cycle now) {
  const Mesh& mesh = net_->mesh();
  const NodeId numNodes = mesh.numNodes();
  const VcLayout& layout = net_->layout();
  const int tv = layout.totalVcs();
  const int localPort = static_cast<int>(Dir::Local);
  const bool retx = net_->config().linkLayer == LinkLayerKind::Retx;

  // ---- Collect the doom set (read-only pass) ----------------------------
  std::vector<PacketId> doomedIds;

  for (NodeId node = 0; node < numNodes; ++node) {
    Router& r = net_->router(node);
    // (a) flits in flight on a dead link — ideal layer only; retx replay
    // buffers hold them for redelivery after recovery.
    if (!retx) {
      for (int p = localPort + 1; p < kNumPorts; ++p) {
        LinkLayer* link = r.outLinks_[static_cast<std::size_t>(p)];
        if (link == nullptr || degraded_.linkAlive(node, static_cast<Dir>(p)))
          continue;
        link->forEachFlit(
            [&](const FlitMsg& m) { doomedIds.push_back(m.flit.pkt); });
      }
    }
    // (b) committed toward a dead port (ideal layer only — on retx the
    // stream stalls against exhausted credits and resumes after
    // recovery); (d) non-ejecting escape allocations (the
    // reconfiguration flush — see injector.h).
    for (int p = 0; p < kNumPorts; ++p) {
      for (int vc = 0; vc < tv; ++vc) {
        const auto& ivc = r.inVc(p, vc);
        if (ivc.state != VcState::Active) continue;
        if (ivc.outPort == localPort) continue;  // ejecting: drains to sink
        const bool deadPort =
            !retx &&
            !degraded_.linkAlive(node, static_cast<Dir>(ivc.outPort));
        if (deadPort || layout.isEscape(ivc.outVc))
          doomedIds.push_back(ivc.pktId);
      }
    }
    // (r) soft reset: everything inside a reset router's input VCs dies,
    // ejecting packets included — a mid-ejection packet's handoff state
    // lives in the router, and the NIC sink consumes per-flit so no tail
    // is owed. On the ideal layer the NIC injection pipe dies too
    // (node-outage semantics); on retx its flits are held for redelivery.
    if (numInReset_ > 0 && inReset_[static_cast<std::size_t>(node)]) {
      for (int p = 0; p < kNumPorts; ++p) {
        for (int vc = 0; vc < tv; ++vc) {
          const auto& ivc = r.inVc(p, vc);
          for (std::size_t i = 0; i < ivc.buf.size(); ++i)
            doomedIds.push_back(ivc.buf[i].pkt);
          if (ivc.state != VcState::Idle) doomedIds.push_back(ivc.pktId);
        }
      }
      if (!retx)
        net_->nic(node).toRouter_->forEachFlit(
            [&](const FlitMsg& m) { doomedIds.push_back(m.flit.pkt); });
    }
  }

  // (c) live packets whose destination is unreachable from where they are.
  // Wormhole flits are contiguous, so any one flit's component is the
  // packet's component; packets with no flit in the network sit at their
  // source NIC (queued or mid-stream).
  if (degraded_.active()) {
    std::vector<NodeId> loc(sim_->ledger().capacity(), kInvalidNode);
    auto note = [&](const Flit& f, NodeId where) {
      loc[PacketPool::slotOf(f.pkt)] = where;
    };
    for (NodeId node = 0; node < numNodes; ++node) {
      const Router& r = net_->router(node);
      for (int p = 0; p < kNumPorts; ++p) {
        for (int vc = 0; vc < tv; ++vc) {
          const auto& buf = r.inVc(p, vc).buf;
          for (std::size_t i = 0; i < buf.size(); ++i) note(buf[i], node);
        }
        const LinkLayer* link = r.outLinks_[static_cast<std::size_t>(p)];
        if (link == nullptr) continue;
        link->forEachFlit([&](const FlitMsg& m) { note(m.flit, node); });
      }
      net_->nic(node).toRouter_->forEachFlit(
          [&](const FlitMsg& m) { note(m.flit, node); });
    }
    sim_->ledger().forEachLive([&](const Packet& p) {
      NodeId where = loc[PacketPool::slotOf(p.id)];
      if (where == kInvalidNode) where = p.src;
      // Under retx a packet parked at a soft-reset node's NIC is not
      // doomed by the node's own temporary isolation — it stalls against
      // the receiver-down injection channel and redelivers after
      // recovery. Reachability for it is re-evaluated at the recovery
      // flush (anything inside the router proper was doomed by rule r).
      if (retx && numInReset_ > 0 &&
          inReset_[static_cast<std::size_t>(where)])
        return;
      if (!degraded_.reachable(where, p.dst)) doomedIds.push_back(p.id);
    });
  }

  std::sort(doomedIds.begin(), doomedIds.end());
  doomedIds.erase(std::unique(doomedIds.begin(), doomedIds.end()),
                  doomedIds.end());
  auto isDoomed = [&doomedIds](PacketId id) {
    return std::binary_search(doomedIds.begin(), doomedIds.end(), id);
  };

  // ---- Purge every flit of every doomed packet, refunding credits -------
  for (NodeId node = 0; node < numNodes; ++node) {
    Router& r = net_->router(node);
    Nic& nic = net_->nic(node);

    for (int p = 0; p < kNumPorts; ++p) {
      for (int vc = 0; vc < tv; ++vc) {
        auto& ivc = r.inVc(p, vc);
        // Filter the buffer; each removed flit frees one slot, refunded to
        // whoever counts this buffer's credits upstream.
        int removed = 0;
        const std::size_t sz = ivc.buf.size();
        for (std::size_t i = 0; i < sz; ++i) {
          Flit f = ivc.buf.front();
          ivc.buf.pop_front();
          if (isDoomed(f.pkt))
            ++removed;
          else
            ivc.buf.push_back(f);
        }
        if (removed > 0) {
          if (p == localPort) {
            int& c = nic.credits_[static_cast<std::size_t>(vc)];
            c += removed;
            RAIR_CHECK_MSG(c <= nic.vcDepth_, "fault refund overflow (NIC)");
          } else {
            const Dir inDir = static_cast<Dir>(p);
            Router& up = net_->router(*mesh.neighbor(node, inDir));
            auto& ovc = up.outVc(static_cast<int>(opposite(inDir)), vc);
            ovc.credits += removed;
            RAIR_CHECK_MSG(ovc.credits <= r.vcDepth_,
                           "fault refund overflow (router)");
          }
        }
        // Rebuild the VC state machine where the strung packet died.
        if (ivc.state != VcState::Idle && isDoomed(ivc.pktId)) {
          if (ivc.state == VcState::Active) {
            auto& ovc = r.outVc(ivc.outPort, ivc.outVc);
            RAIR_CHECK_MSG(
                ovc.allocated && ovc.ownerPort == p && ovc.ownerVc == vc,
                "doomed Active VC does not own its output");
            ovc.allocated = false;
            ovc.ownerPort = -1;
            ovc.ownerVc = -1;
          }
          ivc.route = RouteResult{};
          ivc.outPort = -1;
          ivc.outVc = -1;
          if (ivc.buf.empty()) {
            ivc.state = VcState::Idle;
            ivc.pktId = 0;
          } else {
            // Non-atomic VCs queue packets back-to-back; the survivor in
            // front must start with its head (whole packets were removed).
            RAIR_CHECK_MSG(isHead(ivc.buf.front().type),
                           "fault purge left a headless input VC");
            ivc.state = VcState::Routing;
            ivc.ready = now;
            ivc.pktId = ivc.buf.front().pkt;
          }
        }
      }

      // Out-link in-flight flits (Local = the ejection channel). Each
      // removed flit returns the credit this router spent sending it.
      LinkLayer* link = r.outLinks_[static_cast<std::size_t>(p)];
      if (link == nullptr) continue;
      link->purgeFlits([&](const FlitMsg& m) { return isDoomed(m.flit.pkt); },
                       [&](int vc) {
                         auto& ovc = r.outVc(p, vc);
                         ++ovc.credits;
                         RAIR_CHECK_MSG(ovc.credits <= r.vcDepth_,
                                        "fault refund overflow (pipe)");
                       });
    }

    // NIC injection channel (the NIC is its upstream side).
    nic.toRouter_->purgeFlits(
        [&](const FlitMsg& m) { return isDoomed(m.flit.pkt); },
        [&](int vc) {
          int& c = nic.credits_[static_cast<std::size_t>(vc)];
          ++c;
          RAIR_CHECK_MSG(c <= nic.vcDepth_,
                         "fault refund overflow (inject pipe)");
        });

    // Mid-injection streams: removing the stream releases its VC claim
    // (claims are represented by stream membership). The round-robin
    // pointer shifts with the erasures so the survivors' service order is
    // a deterministic function of pre-purge state.
    std::size_t removedBefore = 0;
    for (std::size_t i = 0; i < nic.active_.size();) {
      if (isDoomed(nic.active_[i].pkt.id)) {
        if (i < nic.rrNext_) ++removedBefore;
        nic.active_.erase(nic.active_.begin() +
                          static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    nic.rrNext_ -= removedBefore;
    if (nic.active_.empty())
      nic.rrNext_ = 0;
    else
      nic.rrNext_ %= nic.active_.size();

    // Source queues: packets whose destination became unreachable.
    for (auto& q : nic.queues_) {
      const std::size_t qsz = q.packets.size();
      for (std::size_t i = 0; i < qsz; ++i) {
        Packet pk = q.packets.front();
        q.packets.pop_front();
        if (!isDoomed(pk.id)) q.packets.push_back(pk);
      }
    }
  }

  // ---- Retire the doomed packets into the accounted drop bucket ---------
  // Ascending id order: the pool free list decides future PacketIds and is
  // snapshot-serialized, so release order must be deterministic.
  for (PacketId id : doomedIds) sim_->faultDropPacket(id);

  // ---- Repair + reroute: stale routes recompute, aggregates rebuild -----
  for (NodeId node = 0; node < numNodes; ++node) {
    Router& r = net_->router(node);
    r.occNative_ = 0;
    r.occForeign_ = 0;
    r.pendingRc_ = 0;
    r.pendingVa_ = 0;
    r.numActive_ = 0;
    r.routingMask_.fill(0);
    r.waitingMask_.fill(0);
    r.activeMask_.fill(0);
    for (int p = 0; p < kNumPorts; ++p) {
      for (int vc = 0; vc < tv; ++vc) {
        auto& ivc = r.inVc(p, vc);
        if (ivc.state == VcState::WaitingVa) {
          // The route was computed against the old tables; send the packet
          // back through RC. (Active VCs keep their grant: their output
          // port is alive — dead and escape commitments were doomed.)
          ivc.state = VcState::Routing;
          ivc.route = RouteResult{};
          ivc.outPort = -1;
          ivc.outVc = -1;
          ivc.ready = now;
          ++reroutes_;
        }
        switch (ivc.state) {
          case VcState::Idle:
            break;
          case VcState::Routing:
            ++r.pendingRc_;
            r.setStateBit(r.routingMask_, p, vc, true);
            break;
          case VcState::WaitingVa:
            ++r.pendingVa_;
            r.setStateBit(r.waitingMask_, p, vc, true);
            break;
          case VcState::Active:
            ++r.numActive_;
            r.setStateBit(r.activeMask_, p, vc, true);
            break;
        }
        const std::uint8_t cls =
            ivc.buf.empty()
                ? std::uint8_t{0}
                : (r.isNative(ivc.buf.front()) ? std::uint8_t{1}
                                               : std::uint8_t{2});
        ivc.occClass = cls;
        if (cls == 1) ++r.occNative_;
        if (cls == 2) ++r.occForeign_;
      }
      int free = 0;
      for (int vc = 0; vc < tv; ++vc)
        if (layout.isAdaptive(vc) && r.countsAsFree(r.outVc(p, vc), vc))
          ++free;
      r.freeAdaptive_[static_cast<std::size_t>(p)] = free;
    }
  }
}

void FaultInjector::save(snapshot::Writer& w) const {
  const Mesh& mesh = net_->mesh();
  const NodeId numNodes = mesh.numNodes();

  w.u64(cursor_);
  w.u64(lastTopoChange_);
  w.u64(outageStart_);
  w.u64(eventsApplied_);
  w.u64(reroutes_);
  w.u64(unreachablePairs_);
  w.u64(degradedCycles_);
  w.u64(recoveryCycles_);
  w.u64(softResets_);

  // Dead links, canonically keyed by their lower-id endpoint. Stall masks
  // and freezes are read from the live routers/NICs (they are fault-owned
  // state those elements deliberately do not serialize).
  std::vector<std::pair<NodeId, Dir>> dead;
  std::vector<std::pair<NodeId, std::uint32_t>> stalls;
  std::vector<NodeId> frozen;
  std::vector<NodeId> resets;
  for (NodeId n = 0; n < numNodes; ++n) {
    for (int d = static_cast<int>(Dir::North); d < kNumPorts; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const auto nb = mesh.neighbor(n, dir);
      if (nb && *nb > n && !degraded_.linkAlive(n, dir))
        dead.emplace_back(n, dir);
    }
    const std::uint32_t mask = net_->router(n).stalledOutPorts_;
    if (mask != 0) stalls.emplace_back(n, mask);
    if (net_->nic(n).injectFrozen_) frozen.push_back(n);
    if (inReset_[static_cast<std::size_t>(n)]) resets.push_back(n);
  }
  w.u32(static_cast<std::uint32_t>(dead.size()));
  for (const auto& [n, dir] : dead) {
    w.i32(n);
    w.u8(static_cast<std::uint8_t>(dir));
  }
  w.u32(static_cast<std::uint32_t>(stalls.size()));
  for (const auto& [n, mask] : stalls) {
    w.i32(n);
    w.u32(mask);
  }
  w.u32(static_cast<std::uint32_t>(frozen.size()));
  for (const NodeId n : frozen) w.i32(n);
  w.u32(static_cast<std::uint32_t>(resets.size()));
  for (const NodeId n : resets) w.i32(n);

  std::uint32_t lostEntries = 0;
  for (const std::uint64_t v : lost_)
    if (v != 0) ++lostEntries;
  w.u32(lostEntries);
  for (std::size_t i = 0; i < lost_.size(); ++i) {
    if (lost_[i] == 0) continue;
    w.u64(static_cast<std::uint64_t>(i));
    w.u64(lost_[i]);
  }
}

void FaultInjector::restore(snapshot::Reader& r) {
  const Mesh& mesh = net_->mesh();
  const NodeId numNodes = mesh.numNodes();

  // Reset whatever this injector applied so far (restore may rewind a
  // live, already-degraded run). Receiver-down flags are re-applied from
  // the restored reset set below; the link sections restore the same
  // flags themselves, so ordering against the network restore is moot.
  const bool retx = net_->config().linkLayer == LinkLayerKind::Retx;
  for (NodeId n = 0; n < numNodes; ++n) {
    net_->router(n).stalledOutPorts_ = 0;
    net_->nic(n).injectFrozen_ = false;
    if (inReset_[static_cast<std::size_t>(n)]) {
      inReset_[static_cast<std::size_t>(n)] = 0;
      if (retx) setNodeReceiverDown(n, false);
    }
    for (int d = static_cast<int>(Dir::North); d < kNumPorts; ++d) {
      const Dir dir = static_cast<Dir>(d);
      if (mesh.neighbor(n, dir) && !degraded_.linkAlive(n, dir))
        degraded_.setLinkDead(n, dir, false);
    }
  }
  numInReset_ = 0;
  std::fill(lost_.begin(), lost_.end(), 0);

  cursor_ = r.u64();
  RAIR_CHECK_MSG(cursor_ <= plan_.size(),
                 "fault restore: cursor beyond the attached plan");
  lastTopoChange_ = r.u64();
  outageStart_ = r.u64();
  eventsApplied_ = r.u64();
  reroutes_ = r.u64();
  unreachablePairs_ = r.u64();
  degradedCycles_ = r.u64();
  recoveryCycles_ = r.u64();
  softResets_ = r.u64();

  const std::uint32_t numDead = r.u32();
  for (std::uint32_t i = 0; i < numDead; ++i) {
    const NodeId n = r.i32();
    const Dir dir = static_cast<Dir>(r.u8());
    degraded_.setLinkDead(n, dir, true);
  }
  degraded_.recompute();

  const std::uint32_t numStalls = r.u32();
  for (std::uint32_t i = 0; i < numStalls; ++i) {
    const NodeId n = r.i32();
    net_->router(n).stalledOutPorts_ = r.u32();
  }
  const std::uint32_t numFrozen = r.u32();
  for (std::uint32_t i = 0; i < numFrozen; ++i)
    net_->nic(r.i32()).injectFrozen_ = true;

  const std::uint32_t numResets = r.u32();
  for (std::uint32_t i = 0; i < numResets; ++i) {
    const NodeId n = r.i32();
    inReset_[static_cast<std::size_t>(n)] = 1;
    ++numInReset_;
    if (retx) setNodeReceiverDown(n, true);
  }

  const std::uint32_t lostEntries = r.u32();
  for (std::uint32_t i = 0; i < lostEntries; ++i) {
    const std::uint64_t idx = r.u64();
    RAIR_CHECK_MSG(idx < lost_.size(), "fault restore: lost-credit index");
    lost_[idx] = r.u64();
  }
}

}  // namespace rair::fault
