#include "fault/random_plan.h"

#include <algorithm>

#include "common/assert.h"
#include "common/rng.h"
#include "topology/mesh.h"

namespace rair::fault {

namespace {

/// Draw state shared by both sampling modes. Every helper draws a fixed
/// number of RNG values in a fixed order — the plan is a pure function of
/// (seed, opts).
struct Sampler {
  Xoshiro256StarStar rng;
  Mesh mesh;
  const RandomPlanOptions& opts;

  Sampler(std::uint64_t seed, const RandomPlanOptions& o)
      : rng(seed), mesh(o.meshW, o.meshH), opts(o) {}

  Cycle cycle() {
    return opts.windowBegin +
           rng.below(opts.windowEnd - opts.windowBegin + 1);
  }
  Cycle duration(Cycle lo, Cycle hi) { return lo + rng.below(hi - lo + 1); }
  NodeId node() {
    return static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(mesh.numNodes())));
  }
  void link(NodeId* n, Dir* d) {
    while (true) {
      *n = node();
      *d = static_cast<Dir>(1 + rng.below(4));
      if (mesh.neighbor(*n, *d)) return;
    }
  }
  /// Adaptive-VC index (never an escape VC), or -1 when the layout has
  /// no adaptive VCs to target.
  int adaptiveVc() {
    if (opts.vcsPerClass < 2) return -1;
    const int cls = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(opts.numClasses)));
    return cls * opts.vcsPerClass + 1 +
           static_cast<int>(rng.below(
               static_cast<std::uint64_t>(opts.vcsPerClass - 1)));
  }
};

void addCorruptBurst(FaultPlan& plan, Sampler& s) {
  NodeId node;
  Dir dir;
  s.link(&node, &dir);
  const Cycle at = s.cycle();
  plan.corruptFlits(at, node, dir, static_cast<int>(1 + s.rng.below(6)));
}

void addOutage(FaultPlan& plan, Sampler& s, bool mayBePermanent) {
  NodeId node;
  Dir dir;
  s.link(&node, &dir);
  const Cycle at = s.cycle();
  // ~1 in 4 outages never restores; a permanent outage may partition the
  // mesh, so callers that must drain route unreachable traffic through
  // the accounted drop bucket.
  const bool permanent = s.rng.chance(0.25) && mayBePermanent;
  if (permanent)
    plan.add({at, FaultKind::LinkDown, node, dir, 0, 1});
  else
    plan.linkOutage(at, node, dir, s.duration(20, 300));
}

void addStall(FaultPlan& plan, Sampler& s) {
  NodeId node;
  Dir dir;
  s.link(&node, &dir);
  const Cycle at = s.cycle();
  plan.portStall(at, node, dir, s.duration(10, 200));
}

void addFreeze(FaultPlan& plan, Sampler& s) {
  const NodeId node = s.node();
  const Cycle at = s.cycle();
  plan.injectFreeze(at, node, s.duration(10, 200));
}

void addCreditLoss(FaultPlan& plan, Sampler& s) {
  NodeId node;
  Dir dir;
  s.link(&node, &dir);
  const int vc = s.adaptiveVc();
  if (vc < 0) return;
  plan.creditLoss(s.cycle(), node, dir, vc, 1);
}

/// Router soft resets, drawn after every other kind so existing seeds
/// keep their exact event prefix. Always recovered after a bounded
/// duration and serialized so at most one node is in reset at any time —
/// overlapping resets could strand committed traffic between two down
/// routers with no live escape, and nested resets of one node are
/// rejected by the injector. A shifted start may land past windowEnd;
/// the recover still applies because stalled traffic keeps the drain
/// loop cycling until it fires.
void addResets(FaultPlan& plan, Sampler& s, int count) {
  Cycle lastEnd = 0;
  for (int i = 0; i < count; ++i) {
    const NodeId node = s.node();
    Cycle at = s.cycle();
    const Cycle duration = s.duration(10, 120);
    if (at <= lastEnd) at = lastEnd + 1;
    plan.softReset(at, node, duration);
    lastEnd = at + duration;
  }
}

/// The fuzzer's family: a small fixed-range budget per kind.
void sampleBudget(FaultPlan& plan, Sampler& s) {
  if (s.opts.retxLayer) {
    // 1-4 corruption bursts of 1-6 flits. Every corrupt flit is NAK'd and
    // retransmitted, so bursts are liveness-safe at any cycle — including
    // past the injection cutoff, where they hit the draining tail.
    const int bursts = static_cast<int>(1 + s.rng.below(4));
    for (int i = 0; i < bursts; ++i) addCorruptBurst(plan, s);
  } else {
    const int outages = static_cast<int>(1 + s.rng.below(3));
    for (int i = 0; i < outages; ++i)
      addOutage(plan, s, s.opts.allowPermanentOutage);
  }
  // 0-2 port stalls and 0-1 injection freezes, always released: a
  // permanent stall would turn drain-to-quiescence into a false failure.
  const int stalls = static_cast<int>(s.rng.below(3));
  for (int i = 0; i < stalls; ++i) addStall(plan, s);
  if (s.rng.chance(0.5)) addFreeze(plan, s);
  // 0-2 single-credit losses, adaptive VCs only: destroying escape
  // credits would void Duato's liveness argument, and the resulting stuck
  // packet is a watchdog report about the plan, not about the network.
  const int losses = static_cast<int>(s.rng.below(3));
  for (int i = 0; i < losses; ++i) addCreditLoss(plan, s);
  // 0-2 router soft resets (both layers; on retx the neighbors' replay
  // buffers redeliver after recovery, on ideal a reset is a node outage).
  addResets(plan, s, static_cast<int>(s.rng.below(3)));
}

/// The campaign's density family: one event expected every `mtbf` cycles,
/// kind drawn uniformly. All events are transient (no permanent outages),
/// so the measurement window degrades but always recovers.
void sampleMtbf(FaultPlan& plan, Sampler& s) {
  const Cycle span = s.opts.windowEnd - s.opts.windowBegin + 1;
  const int events = std::max<int>(
      1, static_cast<int>((span + s.opts.mtbf / 2) / s.opts.mtbf));
  for (int i = 0; i < events; ++i) {
    switch (s.rng.below(4)) {
      case 0:
        if (s.opts.retxLayer)
          addCorruptBurst(plan, s);
        else
          addOutage(plan, s, /*mayBePermanent=*/false);
        break;
      case 1:
        addStall(plan, s);
        break;
      case 2:
        addFreeze(plan, s);
        break;
      default:
        addCreditLoss(plan, s);
        break;
    }
  }
  // Soft resets ride on top of the uniform draw (appending keeps the
  // RNG prefix, so existing seeds keep their exact event sequence),
  // roughly one per eight MTBF events.
  addResets(plan, s, 1 + events / 8);
}

}  // namespace

FaultPlan generateRandomPlan(std::uint64_t seed,
                             const RandomPlanOptions& opts) {
  RAIR_CHECK(opts.windowEnd >= opts.windowBegin);
  Sampler s(seed, opts);
  FaultPlan plan;
  if (opts.mtbf == 0)
    sampleBudget(plan, s);
  else
    sampleMtbf(plan, s);
  return plan;
}

}  // namespace rair::fault
