// Seeded random fault-plan generation, shared by the fuzz harness and the
// campaign fault-density axis.
//
// Two sampling modes, selected by `mtbf`:
//
//   - Budget mode (mtbf == 0): the fuzzer's family — a small fixed-range
//     budget per fault kind (1-3 outages or 1-4 corruption bursts, 0-2
//     stalls, 0-1 freezes, 0-2 credit losses), sized for the tiny meshes
//     property tests drain to quiescence.
//   - MTBF mode (mtbf > 0): one event expected every `mtbf` cycles across
//     the window, kinds drawn uniformly from the active family — the
//     campaign's fault-density axis, where a density multiplier scales
//     mtbf inversely.
//
// The active family follows the link layer: ideal-layer plans use link
// outages (recovery is rerouting), retx-layer plans use corruption bursts
// (recovery is retransmission). Both families add port stalls, injection
// freezes, credit losses and router soft resets, always bounded so the
// plan stays liveness-safe: every stall/freeze is released, credit loss
// never touches escape VCs, permanent outages are opt-in, and soft resets
// are always recovered and never overlap in time (at most one node is in
// reset at any instant).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "fault/plan.h"

namespace rair::fault {

struct RandomPlanOptions {
  int meshW = 8;
  int meshH = 8;
  /// VC layout, for credit-loss targeting (adaptive VCs only — losses
  /// are skipped entirely when vcsPerClass < 2 leaves no adaptive VC).
  int numClasses = 1;
  int vcsPerClass = 3;
  /// Event cycles are drawn uniformly from [windowBegin, windowEnd].
  Cycle windowBegin = 1;
  Cycle windowEnd = 600;
  /// Retx link layer: corruption bursts replace link outages.
  bool retxLayer = false;
  /// 0 = budget mode; > 0 = MTBF mode (see header comment).
  Cycle mtbf = 0;
  /// Budget mode, ideal layer only: ~1 in 4 outages never restores
  /// (possibly partitioning the mesh). Off for campaign plans, where a
  /// permanent partition would dominate the measurement window.
  bool allowPermanentOutage = true;
};

/// Expands `seed` into a plan, bit-reproducibly: same (seed, opts), same
/// plan. Callers derive the seed; this function does not mix it further.
FaultPlan generateRandomPlan(std::uint64_t seed,
                             const RandomPlanOptions& opts);

}  // namespace rair::fault
