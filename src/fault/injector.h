// FaultInjector: applies a FaultPlan to a running simulation.
//
// The injector is a SimObserver whose onCycleBegin applies every event
// scheduled at or before the current cycle — always inside the
// single-threaded observer window, so the same mutations happen at the
// same points under any shard-thread count. Event application is the only
// place simulation state is mutated out-of-band; the warm loop itself
// stays allocation-free and fault-unaware.
//
// Topology events (link down/up, router reset/recover) trigger the
// "reconfiguration flush":
//
//   1. commit the RoutingTables repair (incremental: components, BFS
//      distances and spanning-tree escape routes are rebuilt only for the
//      dirtied components);
//   2. doom the packets that cannot or must not continue:
//        a. any packet with a flit inside a dead link's flit pipe
//           (ideal layer only — on the retransmission layer in-flight
//           flits survive in the replay buffers and redeliver),
//        b. any packet whose input VC is committed (Active) toward a dead
//           output port (ideal layer only — on the retransmission layer
//           the committed stream stalls against exhausted credits and
//           resumes after recovery),
//        r. any packet buffered in or strung on a soft-reset router's
//           input VCs, ejecting ones included — the reset wipes the
//           router's VC state, so everything inside it dies with credit
//           refunds; on the ideal layer the NIC injection pipe of the
//           reset node dies too (node-outage semantics), while the
//           retransmission layer holds those flits for redelivery,
//        c. any live packet whose destination is unreachable from its
//           current location on the degraded graph,
//        d. any packet holding an escape output-VC allocation on a
//           non-Local port — pre-change escape commitments follow the old
//           spanning tree; flushing them means every escape->escape
//           dependency alive after the event follows the one new tree,
//           which is acyclic, so Duato's argument keeps holding across
//           reconfigurations (ejecting escape holders drain to the NIC
//           sink unconditionally and are spared);
//   3. purge every flit of every doomed packet from buffers, link pipes,
//      NIC streams and source queues, refunding each removed flit to the
//      upstream credit counter so the oracle's per-link credit equation
//      (credits + in flight + downstream buffer + deliberately-lost ==
//      depth) closes without any dead-link special case;
//   4. release doomed packets into the accounted droppedByFault bucket
//      (Simulator::faultDropPacket, ascending id order — the packet
//      pool's free list is order-dependent and snapshot-serialized);
//   5. reset every surviving WaitingVa input VC to Routing so its route
//      is recomputed against the new tables (counted as a reroute), and
//      rebuild the routers' incremental aggregates from scratch.
//
// Router soft resets (Reset/Recover events). A reset marks every incident
// channel dead in the routing tables (so routing and reachability treat
// the node as a one-node component) and runs the flush above. Under the
// retransmission link layer the reset node's receiving link ends are
// additionally marked down: arrivals fail the handshake, are counted as
// corrupted and keep a go-back staged, so the neighbors' replay buffers
// redeliver every surviving flit once the router recovers — a reset is
// lossy only for state *inside* the router. Under the ideal layer a reset
// behaves as a node outage. Recover revives each incident channel unless
// the neighbor is itself still in reset; a Recover for a node not in
// reset is a harmless no-op (the fuzz shrinker may strand one). New
// packets sourced at or destined to a node in reset are dropped at
// creation through the deliverable() gate.
//
// The oracle is told about out-of-band mutation through the FaultView
// interface (lastTopologyChange suppresses the one-state-per-cycle
// transition check on exactly the mutated cycle; lostCredits enters the
// credit equations). Everything else it checks keeps holding.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.h"
#include "routing/degraded.h"
#include "sim/simulator.h"

namespace rair::fault {

/// Applies a FaultPlan to one Simulator. Construct, then attach(); the
/// injector must outlive the simulation run. With an empty plan attached
/// the run is byte-identical to one without an injector (golden-tested).
class FaultInjector final : public SimObserver,
                            public Simulator::FaultHook,
                            public FaultView {
 public:
  FaultInjector(Simulator& sim, FaultPlan plan);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers with the simulator: observer list, fault hook, degraded
  /// routing tables. Idempotent-free: call exactly once.
  void attach();
  /// Unregisters everything attach() registered (also run by the dtor).
  void detach();

  const FaultPlan& plan() const { return plan_; }
  const DegradedTopology& degraded() const { return degraded_; }

  /// Degradation totals so far. Drop counts are read from the simulator's
  /// droppedByFault bucket (which also counts unreachable-at-creation
  /// drops the hook gate makes).
  FaultStats stats() const;

  // SimObserver:
  void onCycleBegin(Cycle now) override;

  // Simulator::FaultHook:
  bool deliverable(NodeId src, NodeId dst) const override {
    if (numInReset_ > 0 &&
        (inReset_[static_cast<std::size_t>(src)] ||
         inReset_[static_cast<std::size_t>(dst)]))
      return false;
    return !degraded_.active() || degraded_.reachable(src, dst);
  }
  bool snapshotRelevant() const override { return !plan_.empty(); }
  void save(snapshot::Writer& w) const override;
  void restore(snapshot::Reader& r) override;

  // FaultView:
  Cycle lastTopologyChange() const override { return lastTopoChange_; }
  std::uint64_t lostCredits(NodeId node, int port, int vc) const override {
    return lost_[lostIndex(node, port, vc)];
  }

 private:
  void applyEvent(const FaultEvent& e, bool& topoChanged);
  /// The reconfiguration flush (steps 2-5 of the header comment).
  void applyTopologyChange(Cycle now);
  /// Marks/clears receiver-down on every link whose receiving end is
  /// inside `node` (router in-links + the NIC injection channel).
  /// Retransmission layer only.
  void setNodeReceiverDown(NodeId node, bool down);

  std::size_t lostIndex(NodeId node, int port, int vc) const;

  Simulator* sim_;
  Network* net_;
  FaultPlan plan_;
  DegradedTopology degraded_;
  bool attached_ = false;

  std::size_t cursor_ = 0;  ///< first plan event not yet applied
  Cycle lastTopoChange_ = kNeverCycle;
  Cycle outageStart_ = kNeverCycle;  ///< first cycle of the current outage

  /// Credits deliberately destroyed, per (node, out port, vc) — the
  /// oracle adds these to its conservation equations.
  std::vector<std::uint64_t> lost_;

  /// Per-node soft-reset flags plus a population count guarding the
  /// deliverable() fast path.
  std::vector<std::uint8_t> inReset_;
  int numInReset_ = 0;

  // FaultStats pieces maintained here (drops live on the simulator).
  std::uint64_t eventsApplied_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t unreachablePairs_ = 0;
  std::uint64_t degradedCycles_ = 0;
  std::uint64_t recoveryCycles_ = 0;
  std::uint64_t softResets_ = 0;
};

}  // namespace rair::fault
