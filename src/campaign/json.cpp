#include "campaign/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/assert.h"

namespace rair::campaign {

bool JsonValue::asBool() const {
  RAIR_CHECK_MSG(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::asNumber() const {
  RAIR_CHECK_MSG(kind_ == Kind::Number, "JSON value is not a number");
  return num_;
}

const std::string& JsonValue::asString() const {
  RAIR_CHECK_MSG(kind_ == Kind::String, "JSON value is not a string");
  return str_;
}

const JsonValue::Array& JsonValue::asArray() const {
  RAIR_CHECK_MSG(kind_ == Kind::Array, "JSON value is not an array");
  return arr_;
}

const JsonValue::Object& JsonValue::asObject() const {
  RAIR_CHECK_MSG(kind_ == Kind::Object, "JSON value is not an object");
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  RAIR_CHECK_MSG(kind_ == Kind::Object, "JSON value is not an object");
  obj_.emplace_back(std::move(key), std::move(value));
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string formatJsonDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::Null:
      return "null";
    case Kind::Bool:
      return bool_ ? "true" : "false";
    case Kind::Number:
      if (!std::isfinite(num_)) return "null";
      return formatJsonDouble(num_);
    case Kind::String:
      return '"' + jsonEscape(str_) + '"';
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        out += arr_[i].dump();
      }
      return out + ']';
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        out += '"' + jsonEscape(obj_[i].first) + "\":" + obj_[i].second.dump();
      }
      return out + '}';
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser. Fails by returning false; the cursor then
/// holds an unspecified position.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parseDocument(JsonValue& out) {
    if (!parseValue(out)) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parseValue(JsonValue& out) {
    skipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"': {
        std::string s;
        if (!parseString(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue();
        return true;
      default:
        return parseNumber(out);
    }
  }

  bool parseObject(JsonValue& out) {
    if (!eat('{')) return false;
    JsonValue::Object obj;
    skipWs();
    if (eat('}')) {
      out = JsonValue(std::move(obj));
      return true;
    }
    for (;;) {
      std::string key;
      skipWs();
      if (!parseString(key)) return false;
      if (!eat(':')) return false;
      JsonValue v;
      if (!parseValue(v)) return false;
      obj.emplace_back(std::move(key), std::move(v));
      if (eat(',')) continue;
      if (eat('}')) break;
      return false;
    }
    out = JsonValue(std::move(obj));
    return true;
  }

  bool parseArray(JsonValue& out) {
    if (!eat('[')) return false;
    JsonValue::Array arr;
    skipWs();
    if (eat(']')) {
      out = JsonValue(std::move(arr));
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parseValue(v)) return false;
      arr.push_back(std::move(v));
      if (eat(',')) continue;
      if (eat(']')) break;
      return false;
    }
    out = JsonValue(std::move(arr));
    return true;
  }

  bool parseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parseHex4(cp)) return false;
          // Surrogate pair.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned lo = 0;
            if (!parseHex4(lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          appendUtf8(out, cp);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated string
  }

  bool parseHex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return false;
    }
    return true;
  }

  static void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (any && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      digits();
    }
    if (!any) return false;
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return false;
    out = JsonValue(v);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Parser p(text);
  JsonValue v;
  if (!p.parseDocument(v)) return std::nullopt;
  return v;
}

}  // namespace rair::campaign
