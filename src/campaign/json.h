// Minimal self-contained JSON support for the campaign subsystem's
// JSON Lines result files.
//
// The writer is deterministic: object keys keep insertion order and
// doubles are formatted with %.17g, so serializing the same value twice
// yields byte-identical text — the property the campaign determinism
// guarantee (identical records for any worker count) rests on. The parser
// is a strict recursive-descent reader of standard JSON; it returns
// nullopt on malformed input instead of throwing, because resume must
// tolerate a truncated trailing line in a results file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rair::campaign {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Ordered key/value list (insertion order is serialization order).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() : kind_(Kind::Null) {}
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double n) : kind_(Kind::Number), num_(n) {}
  JsonValue(std::uint64_t n)
      : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  JsonValue(int n) : kind_(Kind::Number), num_(n) {}
  JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::String), str_(s) {}
  JsonValue(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}
  JsonValue(Object o) : kind_(Kind::Object), obj_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  /// Typed accessors; RAIR_CHECK on kind mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Appends a member to an object value (RAIR_CHECK otherwise).
  void set(std::string key, JsonValue value);

  /// Serializes to compact single-line JSON (no whitespace).
  std::string dump() const;

  /// Parses a complete JSON document; trailing garbage or any syntax
  /// error yields nullopt.
  static std::optional<JsonValue> parse(std::string_view text);

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
std::string jsonEscape(std::string_view s);

/// Deterministic round-trippable double formatting (%.17g; "inf"-free:
/// non-finite values serialize as null when dumped through JsonValue).
std::string formatJsonDouble(double v);

}  // namespace rair::campaign
