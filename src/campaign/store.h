// Append-only JSON Lines result store.
//
// A campaign results file (BENCH_<name>.json) holds one JSON object per
// line, of two record types:
//
//   {"type":"cell", "key":..., ...}    a completed simulation cell
//   {"type":"value","key":...,"value":...}  a memoized calibration scalar
//
// Both are loaded on startup to implement skip-completed resume: cells
// already present are not re-executed, and calibration values (saturation
// knees — the expensive pre-pass) are not re-measured. Unparseable lines
// (e.g. a truncated tail after a crash) are skipped, so a damaged file
// degrades into extra work, never into a failed run.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "campaign/campaign.h"

namespace rair::campaign {

/// Everything a results file contains.
struct CampaignFileData {
  std::map<std::string, CellRecord> cells;  ///< by cell key
  std::map<std::string, double> values;     ///< calibration scalars by key
};

/// Loads a results file; a missing file yields empty data.
CampaignFileData loadCampaignFile(const std::string& path);

/// Serializes one memoized calibration value.
std::string valueJsonLine(const std::string& campaign, const std::string& key,
                          double value);

/// Thread-safe line-append sink. Lines are written atomically (one locked
/// fwrite + flush per line) so concurrently completing cells never
/// interleave mid-record.
class JsonlWriter {
 public:
  /// Opens `path` for append; an empty path disables the writer.
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter();

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  bool enabled() const { return file_ != nullptr; }
  void writeLine(const std::string& line);

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

}  // namespace rair::campaign
