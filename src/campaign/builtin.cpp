#include "campaign/builtin.h"

#include <algorithm>
#include <array>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>

#include "common/assert.h"
#include "fault/plan.h"
#include "fault/random_plan.h"
#include "scenarios/paper_scenarios.h"
#include "stats/report.h"
#include "traffic/pattern.h"

namespace rair::campaign {

SimConfig paperSimConfig(bool fast) {
  return ScenarioSpec::windowPreset(fast);
}

SaturationOptions paperSatOptions(bool fast) {
  SaturationOptions o;
  if (fast) {
    o.warmupCycles = 1'000;
    o.measureCycles = 5'000;
    o.drainLimit = 15'000;
    o.bisectIters = 4;
  } else {
    o.warmupCycles = 2'000;
    o.measureCycles = 10'000;
    o.drainLimit = 30'000;
    o.bisectIters = 6;
  }
  return o;
}

BuildContext defaultBuildContext(bool fast) {
  BuildContext ctx;
  ctx.sim = paperSimConfig(fast);
  ctx.sat = paperSatOptions(fast);
  auto memo = std::make_shared<std::map<std::string, double>>();
  ctx.value = [memo](const std::string& key,
                     const std::function<double()>& fn) {
    const auto it = memo->find(key);
    if (it != memo->end()) return it->second;
    return memo->emplace(key, fn()).first->second;
  };
  return ctx;
}

namespace {

__attribute__((format(printf, 2, 3)))
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

void logTo(const BuildContext& ctx, const std::string& msg) {
  if (ctx.log) ctx.log(msg);
}

/// An 8x8 mesh plus region map kept alive by the cell closures.
struct Fixture {
  std::shared_ptr<Mesh> mesh;
  std::shared_ptr<RegionMap> regions;
};

Fixture makeFixture(int regionCount) {
  Fixture f;
  f.mesh = std::make_shared<Mesh>(8, 8);
  switch (regionCount) {
    case 2:
      f.regions = std::make_shared<RegionMap>(RegionMap::halves(*f.mesh));
      break;
    case 4:
      f.regions = std::make_shared<RegionMap>(RegionMap::quadrants(*f.mesh));
      break;
    default:
      RAIR_CHECK(regionCount == 6);
      f.regions = std::make_shared<RegionMap>(RegionMap::sixRegions(*f.mesh));
  }
  return f;
}

/// Memoizes a calibrated rate vector element-wise through ctx.value so a
/// file-backed cache can skip the whole computation when every element is
/// present; the vector is computed at most once.
std::vector<double> cachedRates(
    BuildContext& ctx, const std::string& keyPrefix, std::size_t n,
    const std::function<std::vector<double>()>& compute) {
  auto memo = std::make_shared<std::vector<double>>();
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = ctx.value(keyPrefix + "/app" + std::to_string(i), [&, i] {
      if (memo->empty()) *memo = compute();
      RAIR_CHECK(memo->size() == n);
      return (*memo)[i];
    });
  }
  return out;
}

/// Resolves the campaign-wide metrics options into per-cell options: with
/// a sink prefix configured, each cell writes its files under
/// "<prefix><campaign>_<key>." ('/' in keys flattened to '_').
metrics::MetricsOptions cellMetricsOptions(
    const metrics::MetricsOptions& base, const std::string& campaign,
    const std::string& key) {
  metrics::MetricsOptions mo = base;
  if (!mo.outPrefix.empty()) {
    std::string k = campaign + "_" + key;
    for (char& c : k)
      if (c == '/') c = '_';
    mo.outPrefix += k + ".";
  }
  return mo;
}

ScenarioResult runCell(const Fixture& fx, const SimConfig& cfg,
                       const SchemeSpec& scheme,
                       std::vector<AppTrafficSpec> apps,
                       const CellContext& ctx,
                       const metrics::MetricsOptions& mo) {
  ScenarioSpec spec = ScenarioSpec(*fx.mesh, *fx.regions)
                          .withConfig(cfg)
                          .withScheme(scheme)
                          .withApps(std::move(apps))
                          .withMetrics(mo);
  return runScenario(ctx.applyTo(spec));
}

// ---- Figs. 9 and 10: two half-chip apps, inter-region fraction sweep ----

const std::vector<int>& pSweep() {
  static const std::vector<int> ps = {0, 25, 50, 75, 100};
  return ps;
}

/// The shared calibration of Figs. 9/10: saturation of a half-chip app
/// running intra-region uniform traffic (both halves are congruent).
double halfSaturation(BuildContext& ctx, const Fixture& fx) {
  return ctx.value("halves/halfSat", [&] {
    logTo(ctx, "calibrating half-mesh saturation...");
    AppTrafficSpec shape;
    shape.app = 0;
    return appSaturationRate(*fx.mesh, *fx.regions, shape, ctx.sat);
  });
}

/// Grid shared by Figs. 9 and 10: schemes x p, cells keyed
/// "<scheme>/p<p>".
CampaignSpec twoAppSweepCampaign(const std::string& name, BuildContext& ctx,
                                 const std::vector<SchemeSpec>& schemes) {
  const Fixture fx = makeFixture(2);
  const double sat = halfSaturation(ctx, fx);

  CampaignSpec spec;
  spec.name = name;
  spec.campaignSeed = ctx.campaignSeed;
  const SimConfig cfg = ctx.sim;
  for (const SchemeSpec& s : schemes) {
    for (const int p : pSweep()) {
      CampaignCell cell;
      cell.key = s.label + "/p" + std::to_string(p);
      cell.labels = {{"scheme", s.label}, {"p", std::to_string(p)}};
      const auto mo = cellMetricsOptions(ctx.metrics, name, cell.key);
      cell.run = [fx, cfg, s, p, sat, mo](const CellContext& ctx) {
        const auto apps = scenarios::twoAppInterRegion(
            p / 100.0, scenarios::kLowLoadFraction * sat,
            scenarios::kHighLoadFraction * sat);
        return runCell(fx, cfg, s, apps, ctx, mo);
      };
      spec.add(std::move(cell));
    }
  }
  return spec;
}

CampaignSpec buildFig09(BuildContext& ctx) {
  const std::vector<SchemeSpec> schemes = {schemeRoRr(), schemeRairVaOnly(),
                                           schemeRaRair()};
  CampaignSpec spec = twoAppSweepCampaign("fig09", ctx, schemes);
  std::vector<std::string> labels;
  for (const auto& s : schemes) labels.push_back(s.label);
  const Fixture fx = makeFixture(2);
  const double sat = halfSaturation(ctx, fx);
  spec.renderTables = [labels, sat](const CellLookup& cells) {
    std::string out;
    appendf(out, "\n=== Fig. 9: average packet latency vs inter-region "
                 "fraction p (MSP impact) ===\n");
    appendf(out,
            "App 0: 10%% of saturation (sat = %.3f flits/cycle/node); "
            "App 1: high load (%.0f%% of the knee; see "
            "scenarios::kHighLoadFraction)\n\n",
            sat, scenarios::kHighLoadFraction * 100);
    TextTable t({"p", "scheme", "APL App0", "APL App1", "dAPL App0 vs RO_RR",
                 "dAPL App1 vs RO_RR"});
    for (const int p : pSweep()) {
      const CellRecord& base = cells.at("RO_RR/p" + std::to_string(p));
      for (const std::string& label : labels) {
        const CellRecord& r = cells.at(label + "/p" + std::to_string(p));
        const auto row = t.addRow();
        t.set(row, 0, std::to_string(p) + "%");
        t.set(row, 1, label);
        t.setNum(row, 2, r.appApl[0]);
        t.setNum(row, 3, r.appApl[1]);
        t.setPct(row, 4, r.reductionVs(base, 0));
        t.setPct(row, 5, r.reductionVs(base, 1));
      }
    }
    out += t.toString();
    out += "\n";
    const CellRecord& base100 = cells.at("RO_RR/p100");
    const CellRecord& vasa100 = cells.at("RA_RAIR/p100");
    appendf(out,
            "Paper reference at p=100%%: RAIR_VA+SA -18.9%% App0, "
            "< +3%% App1. Measured: %s App0, %s App1.\n",
            formatPct(-vasa100.reductionVs(base100, 0)).c_str(),
            formatPct(-vasa100.reductionVs(base100, 1)).c_str());
    return out;
  };
  return spec;
}

CampaignSpec buildFig10(BuildContext& ctx) {
  SchemeSpec rrLocal = schemeRoRr();
  rrLocal.label = "RO_RR_Local";
  SchemeSpec rairLocal = schemeRaRair();
  rairLocal.label = "RAIR_Local";
  const std::vector<SchemeSpec> schemes = {
      rrLocal, rairLocal, schemeRoRr(RoutingKind::Dbar),
      schemeRaRair(RoutingKind::Dbar)};
  CampaignSpec spec = twoAppSweepCampaign("fig10", ctx, schemes);
  std::vector<std::string> labels;
  for (const auto& s : schemes) labels.push_back(s.label);
  spec.renderTables = [labels](const CellLookup& cells) {
    std::string out;
    appendf(out, "\n=== Fig. 10: APL vs inter-region fraction p under "
                 "local-adaptive vs DBAR routing ===\n\n");
    TextTable t({"p", "scheme", "APL App0", "APL App1",
                 "dApp0 vs RO_RR_Local", "dApp1 vs RO_RR_Local"});
    for (const int p : pSweep()) {
      const CellRecord& base = cells.at(labels[0] + "/p" + std::to_string(p));
      for (const std::string& label : labels) {
        const CellRecord& r = cells.at(label + "/p" + std::to_string(p));
        const auto row = t.addRow();
        t.set(row, 0, std::to_string(p) + "%");
        t.set(row, 1, label);
        t.setNum(row, 2, r.appApl[0]);
        t.setNum(row, 3, r.appApl[1]);
        t.setPct(row, 4, r.reductionVs(base, 0));
        t.setPct(row, 5, r.reductionVs(base, 1));
      }
    }
    out += t.toString();
    out += "\n";
    const CellRecord& rrL = cells.at(labels[0] + "/p100");
    const CellRecord& rrD = cells.at(labels[2] + "/p100");
    const CellRecord& raD = cells.at(labels[3] + "/p100");
    appendf(out,
            "Paper reference at p=100%%: RAIR_DBAR vs RO_RR_Local: -24.8%% "
            "App0, -3.3%% App1 (measured %s / %s); vs RO_RR_DBAR: -12.8%% "
            "App0, +1.8%% App1 (measured %s / %s).\n",
            formatPct(-raD.reductionVs(rrL, 0)).c_str(),
            formatPct(-raD.reductionVs(rrL, 1)).c_str(),
            formatPct(-raD.reductionVs(rrD, 0)).c_str(),
            formatPct(-raD.reductionVs(rrD, 1)).c_str());
    return out;
  };
  return spec;
}

// ---- Fig. 12: DPA, two contrasting four-app quadrant scenarios ----------

CampaignSpec buildFig12(BuildContext& ctx) {
  const Fixture fx = makeFixture(4);
  const std::vector<SchemeSpec> schemes = {
      schemeRoRr(), schemeRairNativeHigh(), schemeRairForeignHigh(),
      schemeRaRair()};

  std::map<char, std::vector<double>> rates;
  for (const char scen : {'a', 'b'}) {
    rates[scen] = cachedRates(
        ctx, std::string("fig12/cal_") + scen, 4, [&, scen] {
          logTo(ctx, std::string("calibrating fig12 scenario ") + scen +
                         " loads...");
          const auto shapes = scen == 'a'
                                  ? scenarios::fourAppLowTowardHigh(0, 0)
                                  : scenarios::fourAppHighTowardLow(0, 0);
          const std::array<double, 4> fractions = {
              scenarios::kLowLoadFraction, scenarios::kLowLoadFraction,
              scenarios::kLowLoadFraction, scenarios::kHighLoadFraction};
          return scenarios::calibrateLoads(*fx.mesh, *fx.regions, shapes,
                                           fractions, ctx.sat);
        });
  }

  CampaignSpec spec;
  spec.name = "fig12";
  spec.campaignSeed = ctx.campaignSeed;
  const SimConfig cfg = ctx.sim;
  for (const SchemeSpec& s : schemes) {
    for (const char scen : {'a', 'b'}) {
      CampaignCell cell;
      cell.key = s.label + "/" + scen;
      cell.labels = {{"scheme", s.label},
                     {"scenario", std::string(1, scen)}};
      const std::vector<double> r = rates[scen];
      const auto mo = cellMetricsOptions(ctx.metrics, spec.name, cell.key);
      cell.run = [fx, cfg, s, scen, r, mo](const CellContext& ctx) {
        auto shapes = scen == 'a' ? scenarios::fourAppLowTowardHigh(0, 0)
                                  : scenarios::fourAppHighTowardLow(0, 0);
        for (std::size_t a = 0; a < 4; ++a) shapes[a].injectionRate = r[a];
        return runCell(fx, cfg, s, shapes, ctx, mo);
      };
      spec.add(std::move(cell));
    }
  }

  std::vector<std::string> labels;
  for (const auto& s : schemes)
    if (s.policy != PolicyKind::RoundRobin) labels.push_back(s.label);
  spec.renderTables = [labels](const CellLookup& cells) {
    std::string out;
    for (const char scen : {'a', 'b'}) {
      appendf(out, "\n=== Fig. 12(%c): APL reduction vs RO_RR ===\n\n", scen);
      const CellRecord& base = cells.at(std::string("RO_RR/") + scen);
      TextTable t({"scheme", "App0", "App1", "App2", "App3", "mean"});
      for (const std::string& label : labels) {
        const CellRecord& r = cells.at(label + "/" + scen);
        const auto row = t.addRow();
        t.set(row, 0, label);
        double sum = 0;
        for (std::size_t a = 0; a < 4; ++a) {
          const double red = r.reductionVs(base, a);
          t.setPct(row, 1 + a, red);
          sum += red;
        }
        t.setPct(row, 5, sum / 4.0);
      }
      out += t.toString();
      out += "\n";
    }
    appendf(out, "Paper reference: RAIR_ForeignH wins (a), RAIR_NativeH "
                 "wins (b); RAIR (DPA) reduces mean APL by ~12.8%% in (a) "
                 "and ~12.2%% in (b), matching the better static choice in "
                 "both.\n");
    return out;
  };
  return spec;
}

// ---- Figs. 14/15: six-application generic RNoC ---------------------------

std::vector<double> sixAppRates(BuildContext& ctx, const Fixture& fx,
                                PatternKind pattern) {
  const std::string pname = patternName(pattern);
  return cachedRates(ctx, "sixapp/cal_" + pname, 6, [&] {
    logTo(ctx, "calibrating six-app loads under " + pname + " global "
               "traffic...");
    const std::vector<double> dummy(6, 0.0);
    const auto shapes = scenarios::sixAppMixed(pattern, dummy);
    return scenarios::calibrateLoads(*fx.mesh, *fx.regions, shapes,
                                     scenarios::sixAppLoadFractions(),
                                     ctx.sat);
  });
}

const std::vector<SchemeSpec>& sixAppSchemes() {
  static const std::vector<SchemeSpec> schemes = {
      schemeRoRr(), schemeRaDbar(), schemeRoRank(), schemeRaRair()};
  return schemes;
}

void addSixAppCells(CampaignSpec& spec, const Fixture& fx,
                    const SimConfig& cfg, PatternKind pattern,
                    const std::vector<double>& rates, bool keyByPattern,
                    const metrics::MetricsOptions& baseMo) {
  for (const SchemeSpec& s : sixAppSchemes()) {
    CampaignCell cell;
    const std::string pname = patternName(pattern);
    cell.key = keyByPattern ? s.label + "/" + pname : s.label;
    cell.labels = {{"scheme", s.label}};
    if (keyByPattern) cell.labels.emplace_back("pattern", pname);
    const auto mo = cellMetricsOptions(baseMo, spec.name, cell.key);
    cell.run = [fx, cfg, s, pattern, rates, mo](const CellContext& ctx) {
      const auto apps = scenarios::sixAppMixed(pattern, rates);
      return runCell(fx, cfg, s, apps, ctx, mo);
    };
    spec.add(std::move(cell));
  }
}

CampaignSpec buildFig14(BuildContext& ctx) {
  const Fixture fx = makeFixture(6);
  const auto rates = sixAppRates(ctx, fx, PatternKind::UniformRandom);

  CampaignSpec spec;
  spec.name = "fig14";
  spec.campaignSeed = ctx.campaignSeed;
  addSixAppCells(spec, fx, ctx.sim, PatternKind::UniformRandom, rates,
                 /*keyByPattern=*/false, ctx.metrics);

  std::vector<std::string> labels;
  for (const auto& s : sixAppSchemes())
    if (s.label != "RO_RR") labels.push_back(s.label);
  spec.renderTables = [labels, rates](const CellLookup& cells) {
    std::string out;
    appendf(out, "\n=== Fig. 14: APL reduction vs RO_RR, six-app scenario, "
                 "uniform-random global traffic ===\n");
    out += "resolved loads (flits/cycle/node):";
    for (const double r : rates) appendf(out, " %.3f", r);
    out += "\n\n";
    const CellRecord& base = cells.at("RO_RR");
    TextTable t({"scheme", "App0", "App1", "App2", "App3", "App4", "App5",
                 "mean"});
    for (const std::string& label : labels) {
      const CellRecord& r = cells.at(label);
      const auto row = t.addRow();
      t.set(row, 0, label);
      for (std::size_t a = 0; a < 6; ++a)
        t.setPct(row, 1 + a, r.reductionVs(base, a));
      t.setPct(row, 7, r.meanReductionVs(base));
    }
    out += t.toString();
    out += "\n";
    appendf(out, "Paper reference (mean): RA_DBAR +3.4%%, RO_Rank +5.8%%, "
                 "RA_RAIR +10.1%% (reductions).\n");
    return out;
  };
  return spec;
}

CampaignSpec buildFig15(BuildContext& ctx) {
  const Fixture fx = makeFixture(6);
  const std::vector<PatternKind> patterns = {
      PatternKind::UniformRandom, PatternKind::Transpose,
      PatternKind::BitComplement, PatternKind::Hotspot};

  CampaignSpec spec;
  spec.name = "fig15";
  spec.campaignSeed = ctx.campaignSeed;
  // Loads are calibrated per pattern: the global component's shape moves
  // each app's knee (see bench/fig15_patterns.cpp rationale).
  for (const PatternKind pat : patterns)
    addSixAppCells(spec, fx, ctx.sim, pat, sixAppRates(ctx, fx, pat),
                   /*keyByPattern=*/true, ctx.metrics);

  std::vector<std::string> labels;
  for (const auto& s : sixAppSchemes())
    if (s.label != "RO_RR") labels.push_back(s.label);
  spec.renderTables = [labels, patterns](const CellLookup& cells) {
    std::string out;
    appendf(out, "\n=== Fig. 15: mean APL reduction vs RO_RR per global "
                 "traffic pattern ===\n\n");
    TextTable t({"scheme", "UR", "TP", "BC", "HS", "avg"});
    for (const std::string& label : labels) {
      const auto row = t.addRow();
      t.set(row, 0, label);
      double sum = 0;
      for (std::size_t i = 0; i < patterns.size(); ++i) {
        const std::string pname = patternName(patterns[i]);
        const CellRecord& base = cells.at("RO_RR/" + pname);
        const double red =
            cells.at(label + "/" + pname).meanReductionVs(base);
        t.setPct(row, 1 + i, red);
        sum += red;
      }
      t.setPct(row, 5, sum / static_cast<double>(patterns.size()));
    }
    out += t.toString();
    out += "\n";
    appendf(out, "Paper reference: RA_RAIR averages ~13.4%% reduction "
                 "across patterns and is the best scheme under every "
                 "pattern.\n");
    return out;
  };
  return spec;
}

// ---- Ablation: region-count scaling --------------------------------------

CampaignSpec buildAblRegions(BuildContext& ctx) {
  const std::vector<int> counts = {2, 4, 6};

  CampaignSpec spec;
  spec.name = "abl_regions";
  spec.campaignSeed = ctx.campaignSeed;
  const SimConfig cfg = ctx.sim;
  for (const int count : counts) {
    const Fixture fx = makeFixture(count);
    const std::size_t n = static_cast<std::size_t>(count);
    const auto rates = cachedRates(
        ctx, "abl_regions/cal" + std::to_string(count), n, [&] {
          logTo(ctx, "calibrating " + std::to_string(count) +
                         "-region mixed workload loads...");
          std::vector<AppTrafficSpec> shapes(n);
          std::vector<double> fractions(n, scenarios::kLowLoadFraction);
          fractions[1] = scenarios::kHighLoadFraction;
          for (AppId a = 0; a < count; ++a) {
            auto& s = shapes[static_cast<std::size_t>(a)];
            s.app = a;
            s.intraFraction = 0.75;
            s.interFraction = 0.20;
            s.mcFraction = 0.05;
          }
          return scenarios::calibrateLoads(*fx.mesh, *fx.regions, shapes,
                                           fractions, ctx.sat);
        });
    for (const bool rairScheme : {false, true}) {
      CampaignCell cell;
      cell.key = std::to_string(count) + (rairScheme ? "/RAIR" : "/RR");
      cell.labels = {{"regions", std::to_string(count)},
                     {"scheme", rairScheme ? "RA_RAIR" : "RO_RR"}};
      const auto mo = cellMetricsOptions(ctx.metrics, spec.name, cell.key);
      cell.run = [fx, cfg, count, rairScheme, rates,
                  mo](const CellContext& ctx) {
        std::vector<AppTrafficSpec> shapes(
            static_cast<std::size_t>(count));
        for (AppId a = 0; a < count; ++a) {
          auto& s = shapes[static_cast<std::size_t>(a)];
          s.app = a;
          s.intraFraction = 0.75;
          s.interFraction = 0.20;
          s.mcFraction = 0.05;
          s.injectionRate = rates[static_cast<std::size_t>(a)];
        }
        return runCell(fx, cfg, rairScheme ? schemeRaRair() : schemeRoRr(),
                       shapes, ctx, mo);
      };
      spec.add(std::move(cell));
    }
  }

  spec.renderTables = [counts](const CellLookup& cells) {
    std::string out;
    appendf(out, "\n=== Ablation: region count (mixed 75/20/5 workload, "
                 "app 1 high load, others low) ===\n\n");
    TextTable t({"regions", "RO_RR mean APL", "RAIR mean APL",
                 "RAIR reduction"});
    for (const int c : counts) {
      const CellRecord& rr = cells.at(std::to_string(c) + "/RR");
      const CellRecord& ra = cells.at(std::to_string(c) + "/RAIR");
      const auto row = t.addRow();
      t.set(row, 0, std::to_string(c));
      t.setNum(row, 1, rr.meanApl);
      t.setNum(row, 2, ra.meanApl);
      t.setPct(row, 3, ra.meanReductionVs(rr));
    }
    out += t.toString();
    out += "\n";
    appendf(out, "RAIR keeps two-flow state per router, so the benefit "
                 "must persist as regions scale (Sec. VI).\n");
    return out;
  };
  return spec;
}

// ---- Fault-resilience sweep: degradation vs the fault-free twin ----------

const std::vector<std::string>& faultScenarioNames() {
  static const std::vector<std::string> names = {
      "none", "outage", "partition", "stall", "freeze", "creditloss",
      "reset"};
  return names;
}

/// The canned scenario set, adjusted for the link layer: outages and
/// partitions only exist on ideal links (retx replay buffers hold their
/// flits for redelivery instead), and corruption bursts only exist on retx
/// links. Router soft resets exist on both.
std::vector<std::string> faultScenarioNamesFor(LinkLayerKind kind) {
  if (kind == LinkLayerKind::Ideal) return faultScenarioNames();
  return {"none", "corrupt", "stall", "freeze", "creditloss", "reset"};
}

/// Canonical plan of each fault scenario on the 8x8 fixture, timed
/// relative to the configured windows so fast and paper runs stress the
/// same fraction of the measurement interval.
fault::FaultPlan faultScenarioPlan(const std::string& which, const Mesh& mesh,
                                   const SimConfig& cfg) {
  fault::FaultPlan plan;
  const Cycle t0 = cfg.warmupCycles + cfg.measureCycles / 4;
  const Cycle dur = cfg.measureCycles / 4;
  if (which == "outage") {
    plan.linkOutage(t0, mesh.nodeAt({3, 3}), Dir::East, dur);
  } else if (which == "partition") {
    // Permanently isolate corner (0,0): unreachable traffic must drain
    // through the accounted drop bucket.
    const NodeId corner = mesh.nodeAt({0, 0});
    for (int d = 1; d < kNumPorts; ++d)
      if (mesh.neighbor(corner, static_cast<Dir>(d)))
        plan.add({t0, fault::FaultKind::LinkDown, corner,
                  static_cast<Dir>(d), 0, 1});
  } else if (which == "stall") {
    plan.portStall(t0, mesh.nodeAt({5, 2}), Dir::South, dur);
  } else if (which == "freeze") {
    plan.injectFreeze(t0, mesh.nodeAt({4, 4}), dur);
  } else if (which == "creditloss") {
    plan.creditLoss(t0, mesh.nodeAt({5, 5}), Dir::West, 1, 1);
  } else if (which == "reset") {
    // Router soft reset at a busy center node: on ideal links a node
    // outage, on retx links the neighbors redeliver after recovery.
    plan.softReset(t0, mesh.nodeAt({3, 4}), dur);
  } else if (which == "corrupt") {
    // Retx layer: three 8-flit corruption bursts spread across the
    // measurement window, on busy center links.
    plan.corruptFlits(t0, mesh.nodeAt({3, 3}), Dir::East, 8);
    plan.corruptFlits(t0 + dur, mesh.nodeAt({4, 4}), Dir::West, 8);
    plan.corruptFlits(t0 + 2 * dur, mesh.nodeAt({3, 4}), Dir::North, 8);
  } else {
    RAIR_CHECK_MSG(which == "none", "unknown fault scenario");
  }
  return plan;
}

CampaignSpec buildFaults(BuildContext& ctx) {
  const std::vector<SchemeSpec> schemes = {schemeRoRr(), schemeRaRair()};
  const Fixture fx = makeFixture(2);
  const double sat = halfSaturation(ctx, fx);

  CampaignSpec spec;
  spec.name = "faults";
  spec.campaignSeed = ctx.campaignSeed;
  const SimConfig cfg = ctx.sim;
  const std::vector<std::string> scenarioNames =
      faultScenarioNamesFor(cfg.net.linkLayer);
  for (const SchemeSpec& s : schemes) {
    for (const std::string& which : scenarioNames) {
      CampaignCell cell;
      cell.key = s.label + "/" + which;
      cell.labels = {{"scheme", s.label}, {"fault", which}};
      const auto mo = cellMetricsOptions(ctx.metrics, "faults", cell.key);
      cell.run = [fx, cfg, s, which, sat, mo](const CellContext& cc) {
        ScenarioSpec ss =
            ScenarioSpec(*fx.mesh, *fx.regions)
                .withConfig(cfg)
                .withScheme(s)
                .withApps(scenarios::twoAppInterRegion(
                    0.5, scenarios::kLowLoadFraction * sat,
                    scenarios::kHighLoadFraction * sat))
                .withMetrics(mo)
                .withFaults(faultScenarioPlan(which, *fx.mesh, cfg));
        return runScenario(cc.applyTo(ss));
      };
      spec.add(std::move(cell));
    }
  }

  // Optional density axis (--fault-density): MTBF-style random plans at
  // 0.5x / 1x / 2x the base rate. Gated behind ctx.faultDensity > 0 so the
  // default campaign — and every record produced by it — is unchanged.
  static constexpr std::array<double, 3> kDensityMults = {0.5, 1.0, 2.0};
  std::vector<std::string> densityNames;
  if (ctx.faultDensity > 0.0) {
    for (std::size_t mi = 0; mi < kDensityMults.size(); ++mi) {
      const double rate = ctx.faultDensity * kDensityMults[mi];
      char name[32];
      std::snprintf(name, sizeof name, "density%gx", kDensityMults[mi]);
      densityNames.push_back(name);
      // One event expected every mtbf cycles across the measurement
      // window, at `rate` events per 1000 cycles.
      const Cycle mtbf =
          std::max<Cycle>(1, static_cast<Cycle>(1000.0 / rate + 0.5));
      fault::RandomPlanOptions po;
      po.meshW = fx.mesh->width();
      po.meshH = fx.mesh->height();
      po.numClasses = cfg.net.numClasses;
      po.vcsPerClass = cfg.net.vcsPerClass;
      po.windowBegin = cfg.warmupCycles + 1;
      po.windowEnd = cfg.warmupCycles + cfg.measureCycles;
      po.retxLayer = cfg.net.linkLayer == LinkLayerKind::Retx;
      po.mtbf = mtbf;
      po.allowPermanentOutage = false;
      for (std::size_t si = 0; si < schemes.size(); ++si) {
        const SchemeSpec& s = schemes[si];
        CampaignCell cell;
        cell.key = s.label + "/" + name;
        cell.labels = {{"scheme", s.label}, {"fault", name}};
        const auto mo = cellMetricsOptions(ctx.metrics, "faults", cell.key);
        // Per-cell plan seed, decoupled from the run seed the runner
        // hands each cell: the plan is scenario identity, not RNG state.
        const fault::FaultPlan plan = fault::generateRandomPlan(
            cellSeed(ctx.campaignSeed, 0xD0'000 + mi * 8 + si), po);
        cell.run = [fx, cfg, s, sat, mo, plan](const CellContext& cc) {
          ScenarioSpec ss =
              ScenarioSpec(*fx.mesh, *fx.regions)
                  .withConfig(cfg)
                  .withScheme(s)
                  .withApps(scenarios::twoAppInterRegion(
                      0.5, scenarios::kLowLoadFraction * sat,
                      scenarios::kHighLoadFraction * sat))
                  .withMetrics(mo)
                  .withFaults(plan);
          return runScenario(cc.applyTo(ss));
        };
        spec.add(std::move(cell));
      }
    }
  }

  std::vector<std::string> labels;
  for (const auto& s : schemes) labels.push_back(s.label);
  spec.renderTables = [labels, scenarioNames,
                       densityNames](const CellLookup& cells) {
    std::string out;
    appendf(out, "\n=== Fault-resilience sweep: per-scheme degradation vs "
                 "the fault-free twin (p=50 two-app workload) ===\n\n");
    TextTable t({"fault", "scheme", "mean APL", "dAPL vs none", "dropped",
                 "reroutes", "degraded cyc"});
    for (const std::string& which : scenarioNames) {
      for (const std::string& label : labels) {
        const CellRecord& base = cells.at(label + "/none");
        const CellRecord& r = cells.at(label + "/" + which);
        const auto row = t.addRow();
        t.set(row, 0, which);
        t.set(row, 1, label);
        t.setNum(row, 2, r.meanApl);
        t.setPct(row, 3, -r.meanReductionVs(base));
        t.set(row, 4,
              std::to_string(r.fault ? r.fault->droppedPackets : 0));
        t.set(row, 5, std::to_string(r.fault ? r.fault->reroutes : 0));
        t.set(row, 6,
              std::to_string(r.fault ? r.fault->degradedCycles : 0));
      }
    }
    out += t.toString();
    out += "\n";
    if (!densityNames.empty()) {
      appendf(out, "--- Fault-density axis: MTBF-style random plans ---\n\n");
      TextTable d({"density", "scheme", "mean APL", "dAPL vs none",
                   "events", "dropped", "corrupted", "retx flits"});
      for (const std::string& which : densityNames) {
        for (const std::string& label : labels) {
          const CellRecord& base = cells.at(label + "/none");
          const CellRecord& r = cells.at(label + "/" + which);
          const auto row = d.addRow();
          d.set(row, 0, which);
          d.set(row, 1, label);
          d.setNum(row, 2, r.meanApl);
          d.setPct(row, 3, -r.meanReductionVs(base));
          d.set(row, 4,
                std::to_string(r.fault ? r.fault->eventsApplied : 0));
          d.set(row, 5,
                std::to_string(r.fault ? r.fault->droppedPackets : 0));
          d.set(row, 6,
                std::to_string(r.fault ? r.fault->corruptedFlits : 0));
          d.set(row, 7,
                std::to_string(r.fault ? r.fault->retransmittedFlits : 0));
        }
      }
      out += d.toString();
      out += "\n";
    }
    appendf(out, "Faulted cells must still terminate drained: interference "
                 "reduction may not cost resilience.\n");
    return out;
  };
  return spec;
}

using Builder = CampaignSpec (*)(BuildContext&);

const std::map<std::string, Builder>& builders() {
  static const std::map<std::string, Builder> map = {
      {"fig09", &buildFig09},   {"fig10", &buildFig10},
      {"fig12", &buildFig12},   {"fig14", &buildFig14},
      {"fig15", &buildFig15},   {"abl_regions", &buildAblRegions},
      {"faults", &buildFaults},
  };
  return map;
}

}  // namespace

std::vector<std::string> builtinCampaignNames() {
  std::vector<std::string> names;
  for (const auto& [name, fn] : builders()) names.push_back(name);
  return names;
}

bool isBuiltinCampaign(const std::string& name) {
  return builders().count(name) > 0;
}

CampaignSpec buildBuiltinCampaign(const std::string& name,
                                  BuildContext& ctx) {
  const auto it = builders().find(name);
  RAIR_CHECK_MSG(it != builders().end(), "unknown built-in campaign");
  return it->second(ctx);
}

}  // namespace rair::campaign
