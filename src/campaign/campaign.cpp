#include "campaign/campaign.h"

#include <cstdlib>
#include <type_traits>

#include "campaign/json.h"
#include "common/assert.h"

namespace rair::campaign {

std::uint64_t cellSeed(std::uint64_t campaignSeed, std::size_t index) {
  // SplitMix64 finalizer over the combined words; the golden-ratio stride
  // separates consecutive indices before mixing.
  std::uint64_t z = campaignSeed +
                    0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

const std::string* CellRecord::label(std::string_view name) const {
  for (const auto& [k, v] : labels)
    if (k == name) return &v;
  return nullptr;
}

double CellRecord::reductionVs(const CellRecord& base, std::size_t app) const {
  RAIR_CHECK(app < appApl.size() && app < base.appApl.size());
  // A non-positive baseline APL (e.g. a cell that never measured a packet)
  // yields 0 rather than a division by zero.
  if (!(base.appApl[app] > 0.0)) return 0.0;
  return 1.0 - appApl[app] / base.appApl[app];
}

double CellRecord::meanReductionVs(const CellRecord& base) const {
  if (!(base.meanApl > 0.0)) return 0.0;
  return 1.0 - meanApl / base.meanApl;
}

std::string CellRecord::toJsonLine(bool includeVolatile) const {
  JsonValue::Object labelsObj;
  for (const auto& [k, v] : labels) labelsObj.emplace_back(k, JsonValue(v));
  JsonValue::Array apl;
  for (const double a : appApl) apl.emplace_back(a);

  JsonValue rec{JsonValue::Object{}};
  rec.set("type", "cell");
  rec.set("campaign", campaign);
  rec.set("key", key);
  rec.set("labels", JsonValue(std::move(labelsObj)));
  // Seeds use the full 64-bit range; serialized as a decimal string so
  // they survive the double-typed JSON number representation.
  rec.set("seed", std::to_string(seed));
  rec.set("termination", terminationName(termination));
  rec.set("cycles", JsonValue(cyclesRun));
  rec.set("packets_created", JsonValue(packetsCreated));
  rec.set("packets_delivered", JsonValue(packetsDelivered));
  rec.set("delivered_flit_rate", JsonValue(deliveredFlitRate));
  rec.set("app_apl", JsonValue(std::move(apl)));
  rec.set("mean_apl", JsonValue(meanApl));
  if (metrics) {
    JsonValue m{JsonValue::Object{}};
    m.set("va_grants_native", JsonValue(metrics->vaGrantsNative));
    m.set("va_grants_foreign", JsonValue(metrics->vaGrantsForeign));
    m.set("sa_grants_native", JsonValue(metrics->saGrantsNative));
    m.set("sa_grants_foreign", JsonValue(metrics->saGrantsForeign));
    m.set("escape_allocations", JsonValue(metrics->escapeAllocations));
    m.set("flits_traversed", JsonValue(metrics->flitsTraversed));
    m.set("dpa_flips", JsonValue(metrics->dpaFlips));
    rec.set("metrics", std::move(m));
  }
  if (fault) {
    JsonValue f{JsonValue::Object{}};
    f.set("events_applied", JsonValue(fault->eventsApplied));
    f.set("dropped_packets", JsonValue(fault->droppedPackets));
    f.set("dropped_flits", JsonValue(fault->droppedFlits));
    f.set("reroutes", JsonValue(fault->reroutes));
    f.set("unreachable_pairs", JsonValue(fault->unreachablePairs));
    f.set("degraded_cycles", JsonValue(fault->degradedCycles));
    f.set("recovery_cycles", JsonValue(fault->recoveryCycles));
    f.set("corrupted_flits", JsonValue(fault->corruptedFlits));
    f.set("retransmitted_flits", JsonValue(fault->retransmittedFlits));
    // Only emitted when a plan actually reset a router, keeping every
    // pre-soft-reset record byte-identical.
    if (fault->softResets > 0)
      f.set("soft_resets", JsonValue(fault->softResets));
    rec.set("fault", std::move(f));
  }
  if (includeVolatile) rec.set("wall_ms", JsonValue(wallMs));
  return rec.dump();
}

std::optional<CellRecord> CellRecord::fromJson(const JsonValue& v) {
  const JsonValue* type = v.find("type");
  if (!type || !type->isString() || type->asString() != "cell")
    return std::nullopt;
  const JsonValue* key = v.find("key");
  const JsonValue* term = v.find("termination");
  if (!key || !key->isString() || !term || !term->isString())
    return std::nullopt;
  const auto termination = terminationFromName(term->asString());
  if (!termination) return std::nullopt;

  CellRecord r;
  r.key = key->asString();
  r.termination = *termination;
  if (const JsonValue* c = v.find("campaign"); c && c->isString())
    r.campaign = c->asString();
  if (const JsonValue* l = v.find("labels"); l && l->isObject())
    for (const auto& [k, lv] : l->asObject())
      if (lv.isString()) r.labels.emplace_back(k, lv.asString());
  if (const JsonValue* s = v.find("seed"); s && s->isString())
    r.seed = std::strtoull(s->asString().c_str(), nullptr, 10);
  auto num = [&](const char* name, auto& out) {
    if (const JsonValue* n = v.find(name); n && n->isNumber())
      out = static_cast<std::remove_reference_t<decltype(out)>>(n->asNumber());
  };
  num("cycles", r.cyclesRun);
  num("packets_created", r.packetsCreated);
  num("packets_delivered", r.packetsDelivered);
  num("delivered_flit_rate", r.deliveredFlitRate);
  num("mean_apl", r.meanApl);
  num("wall_ms", r.wallMs);
  if (const JsonValue* a = v.find("app_apl"); a && a->isArray())
    for (const JsonValue& e : a->asArray())
      if (e.isNumber()) r.appApl.push_back(e.asNumber());
  if (const JsonValue* m = v.find("metrics"); m && m->isObject()) {
    CellMetrics cm;
    auto mnum = [&](const char* name, std::uint64_t& out) {
      if (const JsonValue* n = m->find(name); n && n->isNumber())
        out = static_cast<std::uint64_t>(n->asNumber());
    };
    mnum("va_grants_native", cm.vaGrantsNative);
    mnum("va_grants_foreign", cm.vaGrantsForeign);
    mnum("sa_grants_native", cm.saGrantsNative);
    mnum("sa_grants_foreign", cm.saGrantsForeign);
    mnum("escape_allocations", cm.escapeAllocations);
    mnum("flits_traversed", cm.flitsTraversed);
    mnum("dpa_flips", cm.dpaFlips);
    r.metrics = cm;
  }
  if (const JsonValue* f = v.find("fault"); f && f->isObject()) {
    fault::FaultStats fs;
    auto fnum = [&](const char* name, std::uint64_t& out) {
      if (const JsonValue* n = f->find(name); n && n->isNumber())
        out = static_cast<std::uint64_t>(n->asNumber());
    };
    fnum("events_applied", fs.eventsApplied);
    fnum("dropped_packets", fs.droppedPackets);
    fnum("dropped_flits", fs.droppedFlits);
    fnum("reroutes", fs.reroutes);
    fnum("unreachable_pairs", fs.unreachablePairs);
    fnum("degraded_cycles", fs.degradedCycles);
    fnum("recovery_cycles", fs.recoveryCycles);
    fnum("corrupted_flits", fs.corruptedFlits);
    fnum("retransmitted_flits", fs.retransmittedFlits);
    fnum("soft_resets", fs.softResets);
    r.fault = fs;
  }
  return r;
}

std::optional<CellRecord> CellRecord::fromJsonLine(std::string_view line) {
  const auto v = JsonValue::parse(line);
  if (!v) return std::nullopt;
  return fromJson(*v);
}

void CellLookup::insert(const CellRecord& record) {
  byKey_[record.key] = &record;
}

const CellRecord* CellLookup::find(const std::string& key) const {
  const auto it = byKey_.find(key);
  return it == byKey_.end() ? nullptr : it->second;
}

const CellRecord& CellLookup::at(const std::string& key) const {
  const CellRecord* r = find(key);
  RAIR_CHECK_MSG(r != nullptr, "campaign cell record missing");
  return *r;
}

void CampaignSpec::add(CampaignCell cell) {
  for (const auto& existing : cells)
    RAIR_CHECK_MSG(existing.key != cell.key, "duplicate campaign cell key");
  cells.push_back(std::move(cell));
}

CellRecord makeCellRecord(const CampaignSpec& spec, const CampaignCell& cell,
                          std::uint64_t seed, const ScenarioResult& result,
                          double wallMs) {
  CellRecord r;
  r.campaign = spec.name;
  r.key = cell.key;
  r.labels = cell.labels;
  r.seed = seed;
  r.termination = result.run.termination;
  r.cyclesRun = result.run.cyclesRun;
  r.packetsCreated = result.run.packetsCreated;
  r.packetsDelivered = result.run.packetsDelivered;
  r.deliveredFlitRate = result.run.deliveredFlitRate;
  r.appApl = result.appApl;
  r.meanApl = result.meanApl;
  if (result.metrics &&
      result.metrics->level >= metrics::MetricsLevel::Summary) {
    CellMetrics cm;
    cm.vaGrantsNative = result.metrics->vaGrantsNative;
    cm.vaGrantsForeign = result.metrics->vaGrantsForeign;
    cm.saGrantsNative = result.metrics->saGrantsNative;
    cm.saGrantsForeign = result.metrics->saGrantsForeign;
    cm.escapeAllocations = result.metrics->escapeAllocations;
    cm.flitsTraversed = result.metrics->flitsTraversed;
    cm.dpaFlips = result.metrics->dpaFlips;
    r.metrics = cm;
  }
  r.fault = result.faultStats;
  r.wallMs = wallMs;
  return r;
}

}  // namespace rair::campaign
