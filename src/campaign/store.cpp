#include "campaign/store.h"

#include <fstream>

#include "campaign/json.h"
#include "common/assert.h"

namespace rair::campaign {

CampaignFileData loadCampaignFile(const std::string& path) {
  CampaignFileData data;
  if (path.empty()) return data;
  std::ifstream in(path);
  if (!in) return data;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto v = JsonValue::parse(line);
    if (!v) continue;  // truncated/corrupt line: treat as absent
    const JsonValue* type = v->find("type");
    if (!type || !type->isString()) continue;
    if (type->asString() == "cell") {
      if (auto rec = CellRecord::fromJson(*v)) {
        rec->fromCache = true;
        data.cells[rec->key] = std::move(*rec);
      }
    } else if (type->asString() == "value") {
      const JsonValue* key = v->find("key");
      const JsonValue* value = v->find("value");
      if (key && key->isString() && value && value->isNumber())
        data.values[key->asString()] = value->asNumber();
    }
  }
  return data;
}

std::string valueJsonLine(const std::string& campaign, const std::string& key,
                          double value) {
  JsonValue rec{JsonValue::Object{}};
  rec.set("type", "value");
  rec.set("campaign", campaign);
  rec.set("key", key);
  rec.set("value", JsonValue(value));
  return rec.dump();
}

JsonlWriter::JsonlWriter(const std::string& path) {
  if (path.empty()) return;
  file_ = std::fopen(path.c_str(), "a");
  RAIR_CHECK_MSG(file_ != nullptr, "cannot open campaign results file");
}

JsonlWriter::~JsonlWriter() {
  if (file_) std::fclose(file_);
}

void JsonlWriter::writeLine(const std::string& line) {
  if (!file_) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string out = line + "\n";
  std::fwrite(out.data(), 1, out.size(), file_);
  std::fflush(file_);
}

}  // namespace rair::campaign
