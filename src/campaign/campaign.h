// Declarative experiment campaigns.
//
// Every figure and ablation of the paper is a grid of fully independent
// cycle-accurate simulations (scheme x load point x seed). A CampaignSpec
// describes such a grid as a list of cells; each cell knows how to run
// its simulation given a seed, and the runner (campaign/runner.h) derives
// that seed deterministically from (campaignSeed, cellIndex) — so a
// campaign's results are bit-identical no matter how many worker threads
// execute it or in which order the cells complete.
//
// A completed cell becomes a CellRecord: a structured, JSON-serializable
// outcome (per-app APLs, delivered flit rate, termination status, wall
// time) that is appended to a JSON Lines results file and used both for
// skip-completed resume and for rendering the paper-style tables.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/scenario.h"

namespace rair::campaign {

/// Derives the RNG seed of cell `index` from the campaign master seed
/// (SplitMix64 finalizer over the combined words). Depends only on its
/// two arguments, so a cell's simulation is reproducible in isolation.
std::uint64_t cellSeed(std::uint64_t campaignSeed, std::size_t index);

/// Aggregate instrumentation embedded in a cell record when the campaign
/// ran with --metrics summary or above. Absent at the default counters
/// level, so default records stay byte-identical to uninstrumented runs.
struct CellMetrics {
  std::uint64_t vaGrantsNative = 0;
  std::uint64_t vaGrantsForeign = 0;
  std::uint64_t saGrantsNative = 0;
  std::uint64_t saGrantsForeign = 0;
  std::uint64_t escapeAllocations = 0;
  std::uint64_t flitsTraversed = 0;
  std::uint64_t dpaFlips = 0;
};

/// Structured outcome of one executed (or cached) campaign cell.
struct CellRecord {
  std::string campaign;  ///< owning campaign name
  std::string key;       ///< unique within the campaign, stable across runs
  /// Ordered descriptive labels ("scheme" -> "RA_RAIR", "p" -> "100", ...)
  /// used by table renderers; serialized into the JSON record.
  std::vector<std::pair<std::string, std::string>> labels;
  std::uint64_t seed = 0;  ///< the derived per-cell RNG seed actually used
  Termination termination = Termination::DrainLimit;
  Cycle cyclesRun = 0;
  std::uint64_t packetsCreated = 0;
  std::uint64_t packetsDelivered = 0;
  double deliveredFlitRate = 0.0;
  std::vector<double> appApl;  ///< per application (index = AppId)
  double meanApl = 0.0;        ///< over all measured packets
  /// Present only when the cell ran at MetricsLevel::Summary or above.
  std::optional<CellMetrics> metrics;
  /// Present only when the cell ran with a fault plan attached; fault-free
  /// cells keep their records byte-identical to pre-fault builds.
  std::optional<fault::FaultStats> fault;
  double wallMs = 0.0;  ///< volatile: excluded from the canonical form
  bool fromCache = false;  ///< loaded from a results file (not serialized)

  bool drained() const { return termination == Termination::Drained; }

  const std::string* label(std::string_view name) const;

  /// Relative APL reduction vs. a baseline record (paper headline metric).
  double reductionVs(const CellRecord& base, std::size_t app) const;
  double meanReductionVs(const CellRecord& base) const;

  /// One JSON Lines record. The canonical form (includeVolatile = false)
  /// omits wall_ms and is byte-stable across runs and worker counts.
  std::string toJsonLine(bool includeVolatile = true) const;
  static std::optional<CellRecord> fromJsonLine(std::string_view line);
  static std::optional<CellRecord> fromJson(const class JsonValue& v);
};

/// Everything the runner hands a cell for one execution: the derived RNG
/// seed plus the campaign-wide snapshot configuration (warm-state cache
/// directory, checkpoint directory) the cell should apply to its
/// ScenarioSpec. A default-constructed context (seed only) reproduces the
/// cell standalone.
struct CellContext {
  std::uint64_t seed = 0;
  snapshot::SnapshotOptions snap;
  /// Sharded-engine threads per cell (ScenarioSpec::withThreads); 0 keeps
  /// the single-threaded engine. Orthogonal to the runner's --jobs and
  /// invisible in the records: results are byte-identical either way.
  int shardThreads = 0;
  /// Campaign-wide fault plan (rair_campaign --faults): attached to every
  /// cell that does not already define its own plan. Part of each cell's
  /// scenario identity, so faulted records never alias fault-free ones in
  /// snapshot caches.
  fault::FaultPlan faults;

  /// Applies this context to a spec (seed + snapshot options + threads).
  ScenarioSpec& applyTo(ScenarioSpec& spec) const {
    spec.withSeed(seed).withSnapshot(snap);
    if (shardThreads > 0) spec.withThreads(shardThreads);
    if (!faults.empty() && spec.faults.empty()) spec.withFaults(faults);
    return spec;
  }
};

/// One simulation cell of a campaign grid.
struct CampaignCell {
  std::string key;
  std::vector<std::pair<std::string, std::string>> labels;
  /// Runs the cell's simulation under the given context. Must be pure (no
  /// shared mutable state): cells execute concurrently.
  std::function<ScenarioResult(const CellContext&)> run;
};

/// Read-only index over completed records, keyed by cell key; what table
/// renderers consume.
class CellLookup {
 public:
  void insert(const CellRecord& record);
  const CellRecord* find(const std::string& key) const;
  /// RAIR_CHECKs that the key is present.
  const CellRecord& at(const std::string& key) const;
  std::size_t size() const { return byKey_.size(); }

 private:
  std::map<std::string, const CellRecord*> byKey_;
};

/// A declarative grid of independent simulation cells.
struct CampaignSpec {
  std::string name;
  std::uint64_t campaignSeed = 1;
  std::vector<CampaignCell> cells;
  /// Optional paper-style table rendering over the completed records.
  std::function<std::string(const CellLookup&)> renderTables;

  /// Appends a cell, enforcing key uniqueness.
  void add(CampaignCell cell);
};

/// Builds the structured record for a freshly executed cell.
CellRecord makeCellRecord(const CampaignSpec& spec, const CampaignCell& cell,
                          std::uint64_t seed, const ScenarioResult& result,
                          double wallMs);

}  // namespace rair::campaign
