#include "campaign/runner.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "campaign/store.h"
#include "common/assert.h"

namespace rair::campaign {

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
  const auto d = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

CellLookup CampaignSummary::lookup() const {
  CellLookup l;
  for (const CellRecord& r : records) l.insert(r);
  return l;
}

CampaignSummary runCampaign(const CampaignSpec& spec,
                            const RunnerOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  CampaignSummary summary;
  summary.records.resize(spec.cells.size());

  CampaignFileData cached;
  if (options.resume) cached = loadCampaignFile(options.outPath);

  // Partition into resume hits and pending work.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    const auto it = cached.cells.find(spec.cells[i].key);
    if (it != cached.cells.end()) {
      summary.records[i] = it->second;
      ++summary.skipped;
    } else {
      pending.push_back(i);
    }
  }

  JsonlWriter writer(options.outPath);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex logMu;

  auto worker = [&] {
    for (;;) {
      const std::size_t slot = next.fetch_add(1);
      if (slot >= pending.size()) return;
      const std::size_t i = pending[slot];
      const CampaignCell& cell = spec.cells[i];
      CellContext ctx;
      ctx.seed = cellSeed(spec.campaignSeed, i);
      ctx.snap.warmCacheDir = options.warmCacheDir;
      ctx.snap.checkpointDir = options.checkpointDir;
      ctx.snap.checkpointEvery = options.checkpointEvery;
      ctx.shardThreads = options.shardThreads;
      ctx.faults = options.faults;

      const auto t0 = std::chrono::steady_clock::now();
      const ScenarioResult result = cell.run(ctx);
      CellRecord rec =
          makeCellRecord(spec, cell, ctx.seed, result, msSince(t0));

      writer.writeLine(rec.toJsonLine());
      // Distinct slots: no lock needed for the record itself.
      summary.records[i] = std::move(rec);
      const std::size_t done = completed.fetch_add(1) + 1;
      if (options.log) {
        const std::lock_guard<std::mutex> lock(logMu);
        const CellRecord& r = summary.records[i];
        options.log("[" + std::to_string(done) + "/" +
                    std::to_string(pending.size()) + "] " + cell.key + ": " +
                    terminationName(r.termination) + ", " +
                    std::to_string(r.wallMs / 1000.0) + " s");
      }
    }
  };

  int jobs = options.jobs > 0
                 ? options.jobs
                 : static_cast<int>(
                       std::max(1u, std::thread::hardware_concurrency()));
  jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), pending.size()));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  summary.executed = pending.size();
  for (const CellRecord& r : summary.records)
    if (!r.drained()) ++summary.tripwired;
  summary.wallMs = msSince(start);
  return summary;
}

LazyCampaign::LazyCampaign(CampaignSpec spec) : spec_(std::move(spec)) {
  for (std::size_t i = 0; i < spec_.cells.size(); ++i)
    index_.emplace(spec_.cells[i].key, i);
}

const CellRecord& LazyCampaign::cell(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto hit = done_.find(key);
  if (hit != done_.end()) return hit->second;
  const auto it = index_.find(key);
  RAIR_CHECK_MSG(it != index_.end(), "unknown campaign cell key");
  const std::size_t i = it->second;
  const CampaignCell& c = spec_.cells[i];
  CellContext ctx;
  ctx.seed = cellSeed(spec_.campaignSeed, i);
  const auto t0 = std::chrono::steady_clock::now();
  const ScenarioResult result = c.run(ctx);
  CellRecord rec = makeCellRecord(spec_, c, ctx.seed, result, msSince(t0));
  return done_.emplace(key, std::move(rec)).first->second;
}

std::string LazyCampaign::tables() {
  for (const CampaignCell& c : spec_.cells) cell(c.key);
  if (!spec_.renderTables) return {};
  const std::lock_guard<std::mutex> lock(mu_);
  CellLookup lookup;
  for (const auto& [key, rec] : done_) lookup.insert(rec);
  return spec_.renderTables(lookup);
}

}  // namespace rair::campaign
