// Built-in campaigns: one per reproduced paper figure / ablation, built
// from the exact workloads in scenarios/paper_scenarios.h. These are the
// single source of truth for the scheme x load grids — both the
// tools/rair_campaign CLI and the bench binaries build their grids here.
//
// Building a campaign resolves the paper's "x% of saturation" loads via
// empirical calibration (sim/saturation.h), which is the expensive
// pre-pass; the BuildContext routes those scalars through a memo hook so
// a results-file-backed context (the CLI) pays for calibration only once
// across invocations.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "sim/saturation.h"

namespace rair::campaign {

/// The paper's measurement windows (Sec. V.A: 10K warmup / 100K
/// measured), shrunk 5x in fast mode for smoke runs.
SimConfig paperSimConfig(bool fast);

/// Shorter windows for saturation calibration (knee finding).
SaturationOptions paperSatOptions(bool fast);

/// Everything a campaign builder needs.
struct BuildContext {
  SimConfig sim;          ///< measurement windows for the cells
  SaturationOptions sat;  ///< calibration windows
  std::uint64_t campaignSeed = 1;
  /// Instrumentation applied to every cell. The default (counters level,
  /// no sink prefix) keeps records byte-identical to uninstrumented runs;
  /// a non-empty outPrefix makes each cell write its sinks under
  /// "<outPrefix><campaign>_<key>." with '/' flattened to '_'.
  metrics::MetricsOptions metrics;
  /// Fault-density axis of the `faults` campaign: base event rate in
  /// faults per 1000 cycles of the measurement window. When > 0, the
  /// campaign grows `<scheme>/density{0.5x,1x,2x}` cells whose plans are
  /// MTBF-style seeded random draws (fault/random_plan.h) at the scaled
  /// rate — transient events only, so every cell still drains. 0 (the
  /// default) leaves the campaign exactly as before, so existing records
  /// and goldens are unaffected. The event family follows sim.net.linkLayer
  /// (outages on ideal links, corruption bursts on retx links).
  double faultDensity = 0.0;
  /// Memoization hook for expensive calibration scalars: returns the
  /// cached value for `key` or computes, caches and returns `fn()`.
  std::function<double(const std::string&,
                       const std::function<double()>&)> value;
  /// Progress reporting during calibration; may be null.
  std::function<void(const std::string&)> log;
};

/// A context with an in-memory value cache and the paper windows.
BuildContext defaultBuildContext(bool fast);

/// Names of all built-in campaigns ("fig09", "fig10", ...).
std::vector<std::string> builtinCampaignNames();
bool isBuiltinCampaign(const std::string& name);

/// Builds the named campaign (RAIR_CHECKs on unknown names). Calibration
/// runs eagerly through ctx.value; cell simulations stay lazy.
CampaignSpec buildBuiltinCampaign(const std::string& name, BuildContext& ctx);

}  // namespace rair::campaign
