// Parallel campaign execution.
//
// runCampaign() executes a CampaignSpec's cells on a fixed-size worker
// pool (std::thread over a shared atomic work index). Each cell gets its
// deterministic seed from cellSeed(campaignSeed, cellIndex) and runs a
// fully independent simulation, so results are identical for any --jobs
// value and any completion order. Completed cells are appended to the
// JSON Lines results file as they finish; re-running against the same
// file executes only the missing cells (skip-completed resume).
//
// A cell that hits the drain limit or the deadlock/livelock tripwire is
// captured as a structured record (termination != "drained") — it does
// not abort the campaign.
#pragma once

#include <functional>
#include <mutex>
#include <string>

#include "campaign/campaign.h"

namespace rair::campaign {

struct RunnerOptions {
  int jobs = 0;         ///< worker threads; 0 = hardware_concurrency
  std::string outPath;  ///< JSON Lines sink; empty disables persistence
  bool resume = true;   ///< skip cells already recorded in outPath
  /// Warm-state cache directory shared by all cells (snapshot subsystem);
  /// empty disables warm caching.
  std::string warmCacheDir;
  /// Checkpoint directory: each running cell refreshes a per-cell
  /// checkpoint every `checkpointEvery` cycles, and an interrupted
  /// campaign resumes unfinished cells from their last checkpoint. Empty
  /// disables checkpointing.
  std::string checkpointDir;
  Cycle checkpointEvery = 25'000;
  /// Sharded-engine threads inside each cell's simulation (composes with
  /// `jobs`: total concurrency ~ jobs x shardThreads). 0 = single-threaded
  /// cells; records are byte-identical for every value.
  int shardThreads = 0;
  /// Campaign-wide fault plan (the --faults file): attached to every cell
  /// that does not define its own plan. Changes results — faulted records
  /// must go to their own outPath.
  fault::FaultPlan faults;
  /// Progress reporting (one line per completed cell); null = silent.
  std::function<void(const std::string&)> log;
};

struct CampaignSummary {
  /// One record per spec cell, in spec order (cached + freshly executed).
  std::vector<CellRecord> records;
  std::size_t executed = 0;   ///< cells simulated in this invocation
  std::size_t skipped = 0;    ///< resume hits
  std::size_t tripwired = 0;  ///< records with termination != drained
  double wallMs = 0.0;        ///< end-to-end wall time of this invocation

  CellLookup lookup() const;
};

CampaignSummary runCampaign(const CampaignSpec& spec,
                            const RunnerOptions& options = {});

/// Memoized on-demand executor over a campaign, for callers that drive
/// cells one at a time (the bench binaries: google-benchmark attributes
/// wall time per registered cell, while this class supplies execution and
/// caching — replacing the former bench-local ResultStore). Thread-safe;
/// a cell's simulation runs under the lock, so concurrent callers
/// serialize (benchmarks run cells serially anyway).
class LazyCampaign {
 public:
  explicit LazyCampaign(CampaignSpec spec);

  const CampaignSpec& spec() const { return spec_; }

  /// Runs the cell on first use; later calls return the cached record.
  const CellRecord& cell(const std::string& key);

  /// Runs any remaining cells, then renders the spec's tables.
  std::string tables();

 private:
  CampaignSpec spec_;
  std::map<std::string, std::size_t> index_;  ///< key -> cell position
  std::mutex mu_;
  std::map<std::string, CellRecord> done_;  ///< node-stable record storage
};

}  // namespace rair::campaign
