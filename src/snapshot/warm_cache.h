// Warm-state cache: end-of-warm-up simulator states, content-addressed by
// the canonical warm scenario key.
//
// Every campaign cell and every SaturationFinder probe begins by simulating
// an identical warm-up for its (scheme, workload, seed) tuple. The cache
// stores the complete simulator state at the end of that warm-up once, so
// any later run with the same warm key restores it in microseconds instead
// of re-simulating thousands of cycles. Restores are exact-key only — a
// near-miss (different rate, seed, scheme knob) reruns the warm-up and
// stores its own entry.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace rair {
class Simulator;
}

namespace rair::snapshot {

/// Process-wide cache accounting, for tests and for reporting how much
/// warm-up work the cache eliminated.
struct WarmCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  /// Warm-up cycles that were restored instead of simulated.
  std::uint64_t warmupCyclesSaved = 0;
};

WarmCacheStats& warmCacheStats();
void resetWarmCacheStats();

/// File a given warm key lives at inside `dir`.
std::string warmSnapshotPath(const std::string& dir, std::uint64_t warmKey);

/// Restores `sim` from the cached end-of-warm-up state for `warmKey` if a
/// valid entry exists. Counts a hit (crediting `warmupCycles` saved) or a
/// miss. Returns true on restore.
bool tryRestoreWarm(Simulator& sim, const std::string& dir,
                    std::uint64_t warmKey, Cycle warmupCycles);

/// Stores the simulator's current state as the warm entry for `warmKey`.
/// Creates `dir` if needed; returns false on I/O failure (the run simply
/// proceeds uncached).
bool storeWarm(const Simulator& sim, const std::string& dir,
               std::uint64_t warmKey);

}  // namespace rair::snapshot
