#include "snapshot/warm_cache.h"

#include <cinttypes>
#include <cstdio>

#include "sim/simulator.h"
#include "snapshot/buffer.h"
#include "snapshot/scenario_key.h"

namespace rair::snapshot {

WarmCacheStats& warmCacheStats() {
  static WarmCacheStats stats;
  return stats;
}

void resetWarmCacheStats() { warmCacheStats() = WarmCacheStats{}; }

std::string warmSnapshotPath(const std::string& dir, std::uint64_t warmKey) {
  char name[32];
  std::snprintf(name, sizeof name, "warm-%016" PRIx64 ".snap", warmKey);
  return dir + "/" + name;
}

bool tryRestoreWarm(Simulator& sim, const std::string& dir,
                    std::uint64_t warmKey, Cycle warmupCycles) {
  auto snap = readSnapshotFile(warmSnapshotPath(dir, warmKey));
  if (!snap || snap->header.stateVersion != kStateVersion ||
      snap->header.scenarioKey != warmKey) {
    ++warmCacheStats().misses;
    return false;
  }
  Reader r(snap->payload);
  sim.restore(r);
  ++warmCacheStats().hits;
  warmCacheStats().warmupCyclesSaved += warmupCycles;
  return true;
}

bool storeWarm(const Simulator& sim, const std::string& dir,
               std::uint64_t warmKey) {
  if (!ensureDir(dir)) return false;
  Writer w;
  sim.save(w);
  SnapshotHeader header;
  header.stateVersion = kStateVersion;
  header.scenarioKey = warmKey;
  header.cycle = sim.now();
  if (!writeSnapshotFile(warmSnapshotPath(dir, warmKey), header,
                         w.payload()))
    return false;
  ++warmCacheStats().stores;
  return true;
}

}  // namespace rair::snapshot
