#include "snapshot/scenario_key.h"

#include "snapshot/buffer.h"

namespace rair::snapshot {

namespace {

/// Encodes every field that shapes the simulation through the end of the
/// warm-up window. Field order and widths are part of the key definition —
/// reordering or widening silently invalidates every cached snapshot, so
/// only append.
void encodeWarmPrefix(Writer& w, const ScenarioSpec& spec) {
  w.u32(kStateVersion);

  // Topology and application placement.
  w.i32(spec.mesh->width());
  w.i32(spec.mesh->height());
  const int numNodes = spec.mesh->numNodes();
  w.i32(numNodes);
  for (NodeId n = 0; n < numNodes; ++n)
    w.u16(static_cast<std::uint16_t>(spec.regions->appOf(n)));

  // Effective network/sim config, after runScenario's normalization
  // (routing and rairPartition come from the scheme, not the raw config).
  const NetworkConfig& net = spec.config.net;
  w.i32(net.numClasses);
  w.i32(net.vcsPerClass);
  w.boolean(spec.scheme.needsRairPartition());
  w.i32(net.globalVcsPerClass);
  w.i32(net.vcDepth);
  w.boolean(net.atomicVcs);
  w.u64(net.linkLatency);
  w.u8(static_cast<std::uint8_t>(spec.scheme.routing));
  w.u64(spec.config.warmupCycles);
  w.u64(spec.config.progressTimeout);

  // Scheme behaviour (label is cosmetic and excluded).
  w.u8(static_cast<std::uint8_t>(spec.scheme.policy));
  w.u8(static_cast<std::uint8_t>(spec.scheme.rair.dpaMode));
  w.boolean(spec.scheme.rair.applyAtVa);
  w.boolean(spec.scheme.rair.applyAtSa);
  w.f64(spec.scheme.rair.hysteresisDelta);
  w.u64(spec.scheme.stcBatchPeriod);

  // Traffic.
  w.u32(static_cast<std::uint32_t>(spec.apps.size()));
  for (const AppTrafficSpec& a : spec.apps) {
    w.u16(static_cast<std::uint16_t>(a.app));
    w.f64(a.injectionRate);
    w.f64(a.intraFraction);
    w.f64(a.interFraction);
    w.f64(a.mcFraction);
    w.u8(static_cast<std::uint8_t>(a.interPattern));
    w.u16(static_cast<std::uint16_t>(a.interTargetApp));
    w.u8(static_cast<std::uint8_t>(a.msgClass));
  }
  w.f64(spec.adversarialRate);
  w.u64(spec.seed);

  // Fault plan (state version 2): events can fire during warm-up, so two
  // specs share warm state only when their full plans match.
  spec.faults.encode(w);

  // Link layer (appended): a retx-linked network carries replay/sequence
  // state an ideal-linked one does not, so the two never share snapshots.
  w.u8(static_cast<std::uint8_t>(net.linkLayer));
}

}  // namespace

std::uint64_t warmStateKey(const ScenarioSpec& spec) {
  Writer w;
  encodeWarmPrefix(w, spec);
  const auto& bytes = w.payload();
  return fnv1a64(bytes.data(), bytes.size());
}

std::uint64_t fullStateKey(const ScenarioSpec& spec) {
  Writer w;
  encodeWarmPrefix(w, spec);
  w.u64(spec.config.measureCycles);
  w.u64(spec.config.drainLimit);
  const auto& bytes = w.payload();
  return fnv1a64(bytes.data(), bytes.size());
}

}  // namespace rair::snapshot
