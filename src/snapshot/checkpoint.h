// Mid-run checkpoints: resume an interrupted run from its last snapshot.
//
// A checkpoint is the full simulator state at some cycle of one specific
// run, identified by the run's full scenario key. The campaign runner
// points each cell at a per-cell checkpoint file; an interrupted campaign
// then resumes each unfinished cell from its last checkpoint instead of
// from cycle zero. The determinism invariant makes this safe: restoring a
// checkpoint and finishing produces byte-identical records to the
// uninterrupted run.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace rair {
class Simulator;
}

namespace rair::snapshot {

/// Canonical checkpoint file name for a run key (placed by callers inside
/// their checkpoint directory). Shared by the campaign runner and the
/// continuation tests so both agree where a cell's checkpoint lives.
std::string checkpointFileName(std::uint64_t fullKey);

/// Restores `sim` from `path` when the file exists, validates, and belongs
/// to `fullKey`. Returns the restored cycle through `restoredCycle` (left
/// untouched on failure).
bool tryRestoreCheckpoint(Simulator& sim, const std::string& path,
                          std::uint64_t fullKey, Cycle* restoredCycle);

/// Writes the simulator's current state to `path` (atomically).
bool storeCheckpoint(const Simulator& sim, const std::string& path,
                     std::uint64_t fullKey);

/// Deletes a checkpoint once its run completed.
void removeCheckpoint(const std::string& path);

}  // namespace rair::snapshot
