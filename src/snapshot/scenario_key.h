// Canonical scenario keys: which snapshots may be restored where.
//
// A snapshot is only valid for the exact simulation it was taken from, so
// every snapshot file records a 64-bit key hashed from the state-affecting
// fields of the ScenarioSpec. Two key flavors:
//
//   * warmStateKey — everything that shapes the simulation up to the end
//     of the warm-up window (mesh, regions, effective config, scheme,
//     traffic, seed, warm-up length). Campaign cells and calibration runs
//     that share this key share identical end-of-warm-up state, which is
//     what the warm-state cache exploits.
//   * fullStateKey — warm key plus the measurement/drain windows; the
//     identity a mid-run checkpoint must match to resume a specific cell.
//
// Keys are computed by encoding the fields with the snapshot Writer (fixed
// widths, fixed order) and hashing the bytes, so they are stable across
// processes and platforms. Cosmetic fields (scheme label, metrics sinks)
// are deliberately excluded.
#pragma once

#include <cstdint>

#include "sim/scenario.h"

namespace rair::snapshot {

/// Version of the *state layout* (the meaning of section bodies written by
/// the save() hooks). Bump whenever serialized state changes shape; loads
/// refuse snapshots from other versions.
inline constexpr std::uint32_t kStateVersion = 2;

/// Key over the state-affecting spec prefix up to the end of warm-up.
std::uint64_t warmStateKey(const ScenarioSpec& spec);

/// warmStateKey plus measurement and drain windows — the identity of one
/// specific full run.
std::uint64_t fullStateKey(const ScenarioSpec& spec);

}  // namespace rair::snapshot
