#include "snapshot/bisect.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"
#include "snapshot/buffer.h"

namespace rair::snapshot {

std::string firstDifferingSection(const std::vector<std::uint8_t>& a,
                                  const std::vector<std::uint8_t>& b) {
  if (a == b) return {};
  const std::vector<SectionInfo> sa = listSections(a);
  const std::vector<SectionInfo> sb = listSections(b);
  const std::size_t n = std::min(sa.size(), sb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (sa[i].name != sb[i].name) return "<framing>";
    if (sa[i].size != sb[i].size ||
        (sa[i].size != 0 &&
         std::memcmp(a.data() + sa[i].offset, b.data() + sb[i].offset,
                     sa[i].size) != 0))
      return sa[i].name;
  }
  return "<framing>";  // equal prefix, different section counts
}

namespace {

std::vector<std::uint8_t> serialized(const Simulator& sim) {
  Writer w;
  sim.save(w);
  return w.payload();
}

/// State after simulating `spec` straight from cycle zero to `cycle`.
std::vector<std::uint8_t> stateAt(const ScenarioSpec& spec, Cycle cycle) {
  AssembledScenario as = assembleScenario(spec);
  RAIR_CHECK_MSG(as.sim->snapshotSupported(),
                 "bisectDivergence on a snapshot-ineligible scenario");
  as.sim->begin();
  while (as.sim->now() < cycle) as.sim->stepCycle();
  return serialized(*as.sim);
}

/// State after restoring `snap` into a fresh simulator and continuing to
/// `cycle`.
std::vector<std::uint8_t> stateViaRestore(
    const ScenarioSpec& spec, const std::vector<std::uint8_t>& snap,
    Cycle cycle) {
  AssembledScenario as = assembleScenario(spec);
  Reader r(snap);
  as.sim->restore(r);
  RAIR_CHECK_MSG(r.atEnd(), "bisect: trailing bytes after restore");
  as.sim->begin();
  while (as.sim->now() < cycle) as.sim->stepCycle();
  return serialized(*as.sim);
}

}  // namespace

BisectResult bisectDivergence(const ScenarioSpec& spec, Cycle snapAt,
                              Cycle horizon) {
  return bisectDivergence(spec, spec, snapAt, horizon);
}

BisectResult bisectDivergence(const ScenarioSpec& saveSpec,
                              const ScenarioSpec& restoreSpec, Cycle snapAt,
                              Cycle horizon) {
  RAIR_CHECK_MSG(snapAt < horizon, "bisectDivergence: empty cycle range");
  BisectResult res;
  const std::vector<std::uint8_t> snap = stateAt(saveSpec, snapAt);

  auto diffAt = [&](Cycle c) {
    return firstDifferingSection(stateAt(saveSpec, c),
                                 stateViaRestore(restoreSpec, snap, c));
  };

  // Restore itself must reproduce the saved state before any search makes
  // sense.
  std::string s = diffAt(snapAt);
  if (!s.empty()) {
    res.diverged = true;
    res.firstDivergentCycle = snapAt;
    res.section = std::move(s);
    return res;
  }

  s = diffAt(horizon);
  if (s.empty()) return res;  // identical over the whole range

  // Invariant: states match at `lo`, differ at `hi` (where `hiSection`
  // names the first differing section).
  Cycle lo = snapAt;
  Cycle hi = horizon;
  std::string hiSection = std::move(s);
  while (hi - lo > 1) {
    const Cycle mid = lo + (hi - lo) / 2;
    s = diffAt(mid);
    if (s.empty()) {
      lo = mid;
    } else {
      hi = mid;
      hiSection = std::move(s);
    }
  }
  res.diverged = true;
  res.firstDivergentCycle = hi;
  res.section = std::move(hiSection);
  return res;
}

}  // namespace rair::snapshot
