// Per-scenario snapshot configuration carried on ScenarioSpec.
#pragma once

#include <string>

#include "common/types.h"

namespace rair::snapshot {

/// What snapshotting, if any, a scenario run should do. Default-constructed
/// means "none" — the simulator then pays a single predictable branch per
/// cycle for the hook check.
struct SnapshotOptions {
  /// Directory of the warm-state cache. When set, runScenario tries to
  /// restore the end-of-warm-up state for the scenario's warm key and,
  /// on a miss, stores it after simulating the warm-up once.
  std::string warmCacheDir;

  /// Checkpoint file for mid-run resume. When set, runScenario restores
  /// from it if it exists (and matches the full scenario key), refreshes
  /// it every `checkpointEvery` cycles while running, and removes it when
  /// the run completes.
  std::string checkpointPath;
  /// Alternative to checkpointPath for callers that run many scenarios
  /// (the campaign runner): runScenario derives the file itself as
  /// `<checkpointDir>/<checkpointFileName(fullStateKey)>`, so every run
  /// gets a distinct checkpoint without the caller computing keys.
  /// Ignored when checkpointPath is set.
  std::string checkpointDir;
  Cycle checkpointEvery = 25'000;

  bool enabled() const {
    return !warmCacheDir.empty() || !checkpointPath.empty() ||
           !checkpointDir.empty();
  }
};

}  // namespace rair::snapshot
