// Deterministic binary serialization buffers and snapshot container I/O.
//
// A snapshot is a flat sequence of named sections, each holding the
// little-endian fixed-width encoding of one subsystem's state (router 12,
// NIC 3, the packet ledger, ...). Named sections buy diff granularity: the
// rair_snapshot CLI and the divergence bisector compare section by section
// and report *which* piece of state first differs, not just that bytes do.
//
// The on-disk container prefixes the payload with a header carrying a
// format version (container layout), a state version (meaning of the
// section bodies), the canonical scenario key the state belongs to, the
// cycle it was taken at, and an FNV-1a-64 payload hash — a load refuses
// mismatched versions and corrupted payloads instead of restoring garbage.
// Files are written atomically (temp file + rename) so an interrupted
// writer never leaves a truncated snapshot behind.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace rair::snapshot {

/// Container layout version (magic, header, section framing).
inline constexpr std::uint32_t kFormatVersion = 1;

/// FNV-1a 64-bit over `n` bytes, chainable through `seed`.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = 0xCBF29CE484222325ull);

/// Append-only little-endian encoder with named sections.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { putLe(v); }
  void u32(std::uint32_t v) { putLe(v); }
  void u64(std::uint64_t v) { putLe(v); }
  void i32(std::int32_t v) { putLe(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { putLe(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(const void* data, std::size_t n);
  void str(std::string_view s);

  /// Opens a named section; every write until the matching endSection()
  /// lands in its body. Sections do not nest.
  void beginSection(std::string_view name);
  void endSection();

  const std::vector<std::uint8_t>& payload() const {
    RAIR_CHECK_MSG(sectionStart_ == kNoSection, "unclosed snapshot section");
    return buf_;
  }

 private:
  static constexpr std::size_t kNoSection = ~std::size_t{0};

  template <typename T>
  void putLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
  std::size_t sectionStart_ = kNoSection;  ///< offset of the body-length slot
};

/// Strict decoder over a payload produced by Writer: section names must be
/// requested in the exact order they were written, and each body must be
/// consumed completely. Any mismatch is a RAIR_CHECK failure — a snapshot
/// that passed the header hash but decodes out of step is a version bug,
/// not a recoverable condition.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& payload)
      : Reader(payload.data(), payload.size()) {}

  std::uint8_t u8() { return take(); }
  std::uint16_t u16() { return getLe<std::uint16_t>(); }
  std::uint32_t u32() { return getLe<std::uint32_t>(); }
  std::uint64_t u64() { return getLe<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  void bytes(void* out, std::size_t n);
  std::string str();

  void beginSection(std::string_view name);
  void endSection();

  bool atEnd() const { return pos_ == size_; }
  std::size_t pos() const { return pos_; }

 private:
  std::uint8_t take() {
    RAIR_CHECK_MSG(pos_ < size_, "snapshot payload truncated");
    return data_[pos_++];
  }

  template <typename T>
  T getLe() {
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(take()) << (8 * i);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::size_t sectionEnd_ = 0;
  bool inSection_ = false;
};

/// Identity of a snapshot: what state layout it uses, which scenario it
/// belongs to, and when it was taken.
struct SnapshotHeader {
  std::uint32_t stateVersion = 0;  ///< sim/snapshot::kStateVersion at save
  std::uint64_t scenarioKey = 0;   ///< warm or full canonical scenario hash
  Cycle cycle = 0;                 ///< completed cycles at capture
};

struct LoadedSnapshot {
  SnapshotHeader header;
  std::vector<std::uint8_t> payload;
};

/// Writes header + payload atomically (temp file in the same directory,
/// then rename). Returns false on any I/O failure.
bool writeSnapshotFile(const std::string& path, const SnapshotHeader& header,
                       const std::vector<std::uint8_t>& payload);

/// Reads and validates a snapshot file: magic, format version, payload
/// hash and size. Returns nullopt for missing, foreign or corrupt files.
std::optional<LoadedSnapshot> readSnapshotFile(const std::string& path);

/// One section of a payload, as listed by the dump/diff tooling.
struct SectionInfo {
  std::string name;
  std::size_t offset = 0;  ///< of the body within the payload
  std::size_t size = 0;    ///< body bytes
};

/// Walks a payload's section framing without decoding bodies. RAIR_CHECKs
/// on malformed framing (only call on hash-validated payloads).
std::vector<SectionInfo> listSections(const std::vector<std::uint8_t>& payload);

/// Creates `dir` if missing (single level, like mkdir -p for one
/// component). Returns false when the directory cannot be made.
bool ensureDir(const std::string& dir);

/// Removes a file, ignoring a missing one.
void removeFile(const std::string& path);

}  // namespace rair::snapshot
