#include "snapshot/buffer.h"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

namespace rair::snapshot {

namespace {

/// "RAIRSNP1" — 8 bytes of magic at the front of every snapshot file.
constexpr char kMagic[8] = {'R', 'A', 'I', 'R', 'S', 'N', 'P', '1'};

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

void Writer::beginSection(std::string_view name) {
  RAIR_CHECK_MSG(sectionStart_ == kNoSection,
                 "snapshot sections do not nest");
  RAIR_CHECK(!name.empty() && name.size() <= 0xffff);
  u16(static_cast<std::uint16_t>(name.size()));
  bytes(name.data(), name.size());
  sectionStart_ = buf_.size();
  u64(0);  // body length, backpatched by endSection()
}

void Writer::endSection() {
  RAIR_CHECK_MSG(sectionStart_ != kNoSection, "endSection without begin");
  const std::uint64_t bodyLen = buf_.size() - sectionStart_ - 8;
  for (std::size_t i = 0; i < 8; ++i)
    buf_[sectionStart_ + i] = static_cast<std::uint8_t>(bodyLen >> (8 * i));
  sectionStart_ = kNoSection;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

void Reader::bytes(void* out, std::size_t n) {
  RAIR_CHECK_MSG(pos_ + n <= size_, "snapshot payload truncated");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  std::string s(n, '\0');
  bytes(s.data(), n);
  return s;
}

void Reader::beginSection(std::string_view name) {
  RAIR_CHECK_MSG(!inSection_, "snapshot sections do not nest");
  const std::uint16_t len = u16();
  std::string got(len, '\0');
  bytes(got.data(), len);
  RAIR_CHECK_MSG(got == name, "snapshot section order mismatch");
  const std::uint64_t bodyLen = u64();
  RAIR_CHECK_MSG(pos_ + bodyLen <= size_, "snapshot section overruns payload");
  sectionEnd_ = pos_ + static_cast<std::size_t>(bodyLen);
  inSection_ = true;
}

void Reader::endSection() {
  RAIR_CHECK_MSG(inSection_, "endSection without begin");
  RAIR_CHECK_MSG(pos_ == sectionEnd_,
                 "snapshot section body not fully consumed");
  inSection_ = false;
}

bool writeSnapshotFile(const std::string& path, const SnapshotHeader& header,
                       const std::vector<std::uint8_t>& payload) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;

  Writer head;
  head.bytes(kMagic, sizeof kMagic);
  head.u32(kFormatVersion);
  head.u32(header.stateVersion);
  head.u64(header.scenarioKey);
  head.u64(header.cycle);
  head.u64(fnv1a64(payload.data(), payload.size()));
  head.u64(payload.size());

  const auto& hb = head.payload();
  bool ok = std::fwrite(hb.data(), 1, hb.size(), f) == hb.size();
  ok = ok && (payload.empty() ||
              std::fwrite(payload.data(), 1, payload.size(), f) ==
                  payload.size());
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<LoadedSnapshot> readSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;

  std::uint8_t head[8 + 4 + 4 + 8 + 8 + 8 + 8];
  if (std::fread(head, 1, sizeof head, f) != sizeof head) {
    std::fclose(f);
    return std::nullopt;
  }
  Reader r(head, sizeof head);
  char magic[8];
  r.bytes(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof magic) != 0 ||
      r.u32() != kFormatVersion) {
    std::fclose(f);
    return std::nullopt;
  }
  LoadedSnapshot snap;
  snap.header.stateVersion = r.u32();
  snap.header.scenarioKey = r.u64();
  snap.header.cycle = r.u64();
  const std::uint64_t hash = r.u64();
  const std::uint64_t size = r.u64();
  // Refuse absurd sizes before allocating (a corrupt length field).
  if (size > (std::uint64_t{1} << 32)) {
    std::fclose(f);
    return std::nullopt;
  }
  snap.payload.resize(static_cast<std::size_t>(size));
  const bool ok =
      snap.payload.empty() ||
      std::fread(snap.payload.data(), 1, snap.payload.size(), f) ==
          snap.payload.size();
  std::fclose(f);
  if (!ok || fnv1a64(snap.payload.data(), snap.payload.size()) != hash)
    return std::nullopt;
  return snap;
}

std::vector<SectionInfo> listSections(
    const std::vector<std::uint8_t>& payload) {
  std::vector<SectionInfo> out;
  Reader r(payload);
  while (!r.atEnd()) {
    SectionInfo s;
    const std::uint16_t len = r.u16();
    s.name.resize(len);
    r.bytes(s.name.data(), len);
    const std::uint64_t bodyLen = r.u64();
    s.offset = r.pos();
    s.size = static_cast<std::size_t>(bodyLen);
    std::vector<std::uint8_t> skip(s.size);
    r.bytes(skip.data(), s.size);
    out.push_back(std::move(s));
  }
  return out;
}

bool ensureDir(const std::string& dir) {
  if (dir.empty()) return false;
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return true;
  return false;
}

void removeFile(const std::string& path) {
  if (!path.empty()) std::remove(path.c_str());
}

}  // namespace rair::snapshot
