// Value-type codecs shared by the member save/restore hooks.
//
// Header-only free functions encoding the simulator's plain value types
// (flits, packets, routes, ring queues, delay pipes, RNG engines) with the
// Writer/Reader primitives. Subsystem classes with private state implement
// their own save/restore members and delegate the value-type fields here,
// so every field is encoded exactly one way repo-wide.
#pragma once

#include "common/ring.h"
#include "common/rng.h"
#include "link/pipe.h"
#include "metrics/histogram.h"
#include "packet/packet.h"
#include "routing/routing.h"
#include "snapshot/buffer.h"

namespace rair::snapshot {

inline void saveFlit(Writer& w, const Flit& f) {
  w.u64(f.pkt);
  w.i32(f.src);
  w.i32(f.dst);
  w.u16(static_cast<std::uint16_t>(f.app));
  w.u8(static_cast<std::uint8_t>(f.msgClass));
  w.u8(static_cast<std::uint8_t>(f.type));
  w.u16(f.seq);
  w.u16(f.pktFlits);
  w.u16(f.hops);
  w.u64(f.createCycle);
}

inline void restoreFlit(Reader& r, Flit& f) {
  f.pkt = r.u64();
  f.src = r.i32();
  f.dst = r.i32();
  f.app = static_cast<AppId>(r.u16());
  f.msgClass = static_cast<MsgClass>(r.u8());
  f.type = static_cast<FlitType>(r.u8());
  f.seq = r.u16();
  f.pktFlits = r.u16();
  f.hops = r.u16();
  f.createCycle = r.u64();
}

inline void savePacket(Writer& w, const Packet& p) {
  w.u64(p.id);
  w.i32(p.src);
  w.i32(p.dst);
  w.u16(static_cast<std::uint16_t>(p.app));
  w.u8(static_cast<std::uint8_t>(p.msgClass));
  w.u16(p.numFlits);
  w.u64(p.createCycle);
  w.u64(p.injectCycle);
  w.u64(p.ejectCycle);
  w.u16(p.hops);
}

inline void restorePacket(Reader& r, Packet& p) {
  p.id = r.u64();
  p.src = r.i32();
  p.dst = r.i32();
  p.app = static_cast<AppId>(r.u16());
  p.msgClass = static_cast<MsgClass>(r.u8());
  p.numFlits = r.u16();
  p.createCycle = r.u64();
  p.injectCycle = r.u64();
  p.ejectCycle = r.u64();
  p.hops = r.u16();
}

inline void saveRoute(Writer& w, const RouteResult& rt) {
  w.u8(static_cast<std::uint8_t>(rt.adaptiveDirs[0]));
  w.u8(static_cast<std::uint8_t>(rt.adaptiveDirs[1]));
  w.i32(rt.numAdaptive);
  w.u8(static_cast<std::uint8_t>(rt.escapeDir));
  w.boolean(rt.ejecting);
}

inline void restoreRoute(Reader& r, RouteResult& rt) {
  rt.adaptiveDirs[0] = static_cast<Dir>(r.u8());
  rt.adaptiveDirs[1] = static_cast<Dir>(r.u8());
  rt.numAdaptive = r.i32();
  rt.escapeDir = static_cast<Dir>(r.u8());
  rt.ejecting = r.boolean();
}

/// RingQueue contents front-to-back; `elem` encodes one element. Capacity
/// is a non-behavioral allocation detail and is not captured.
template <typename T, typename F>
void saveRing(Writer& w, const RingQueue<T>& q, F&& elem) {
  w.u64(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) elem(w, q[i]);
}

template <typename T, typename F>
void restoreRing(Reader& r, RingQueue<T>& q, F&& elem) {
  q.clear();
  const std::uint64_t n = r.u64();
  q.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    T v{};
    elem(r, v);
    q.push_back(std::move(v));
  }
}

/// DelayPipe entries with their absolute arrival cycles (latency itself is
/// construction-time configuration).
template <typename T, typename F>
void saveDelayPipe(Writer& w, const DelayPipe<T>& pipe, F&& elem) {
  w.u64(pipe.size());
  for (std::size_t i = 0; i < pipe.size(); ++i) {
    const auto& [arrival, v] = pipe.entry(i);
    w.u64(arrival);
    elem(w, v);
  }
}

template <typename T, typename F>
void restoreDelayPipe(Reader& r, DelayPipe<T>& pipe, F&& elem) {
  pipe.clearForRestore();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Cycle arrival = r.u64();
    T v{};
    elem(r, v);
    pipe.pushAbsolute(arrival, std::move(v));
  }
}

inline void saveFlitMsg(Writer& w, const FlitMsg& m) {
  saveFlit(w, m.flit);
  w.i32(m.vc);
}

inline void restoreFlitMsg(Reader& r, FlitMsg& m) {
  restoreFlit(r, m.flit);
  m.vc = r.i32();
}

inline void saveCreditMsg(Writer& w, const CreditMsg& m) { w.i32(m.vc); }

inline void restoreCreditMsg(Reader& r, CreditMsg& m) { m.vc = r.i32(); }

inline void saveHistogram(Writer& w, const metrics::Histogram& h) {
  const auto s = h.rawState();
  w.u64(s.count);
  w.f64(s.sum);
  w.f64(s.sumSq);
  w.f64(s.min);
  w.f64(s.max);
  for (const std::uint64_t b : s.buckets) w.u64(b);
}

inline void restoreHistogram(Reader& r, metrics::Histogram& h) {
  metrics::Histogram::RawState s;
  s.count = r.u64();
  s.sum = r.f64();
  s.sumSq = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  for (auto& b : s.buckets) b = r.u64();
  h.setRawState(s);
}

inline void saveRng(Writer& w, const Xoshiro256StarStar& rng) {
  for (const std::uint64_t word : rng.state()) w.u64(word);
}

inline void restoreRng(Reader& r, Xoshiro256StarStar& rng) {
  std::array<std::uint64_t, 4> s;
  for (auto& word : s) word = r.u64();
  rng.setState(s);
}

}  // namespace rair::snapshot
