#include "snapshot/checkpoint.h"

#include <cinttypes>
#include <cstdio>

#include "sim/simulator.h"
#include "snapshot/buffer.h"
#include "snapshot/scenario_key.h"

namespace rair::snapshot {

std::string checkpointFileName(std::uint64_t fullKey) {
  char name[32];
  std::snprintf(name, sizeof name, "ckpt-%016" PRIx64 ".snap", fullKey);
  return name;
}

bool tryRestoreCheckpoint(Simulator& sim, const std::string& path,
                          std::uint64_t fullKey, Cycle* restoredCycle) {
  auto snap = readSnapshotFile(path);
  if (!snap || snap->header.stateVersion != kStateVersion ||
      snap->header.scenarioKey != fullKey)
    return false;
  Reader r(snap->payload);
  sim.restore(r);
  if (restoredCycle != nullptr) *restoredCycle = snap->header.cycle;
  return true;
}

bool storeCheckpoint(const Simulator& sim, const std::string& path,
                     std::uint64_t fullKey) {
  Writer w;
  sim.save(w);
  SnapshotHeader header;
  header.stateVersion = kStateVersion;
  header.scenarioKey = fullKey;
  header.cycle = sim.now();
  return writeSnapshotFile(path, header, w.payload());
}

void removeCheckpoint(const std::string& path) { removeFile(path); }

}  // namespace rair::snapshot
