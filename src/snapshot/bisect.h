// Determinism debugging: binary-search the first cycle at which a
// restored-from-snapshot run diverges from the uninterrupted run of the
// same scenario. The subsystem's load-bearing invariant is that it never
// does — bisectDivergence is the tool that localizes a violation to a
// cycle and a state section when a save/restore hook goes stale (e.g. a
// new piece of mutable router state not added to the codec).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace rair::snapshot {

struct BisectResult {
  bool diverged = false;
  /// First cycle whose post-cycle state differs (meaningful only when
  /// `diverged`).
  Cycle firstDivergentCycle = 0;
  /// Name of the first snapshot section that differs at that cycle.
  std::string section;
};

/// First section (in write order) whose body differs between two
/// hash-validated payloads. Empty string when byte-identical; "<framing>"
/// when the section lists themselves disagree.
std::string firstDifferingSection(const std::vector<std::uint8_t>& a,
                                  const std::vector<std::uint8_t>& b);

/// Runs `spec` straight to `snapAt` and saves its state; then compares the
/// straight run against the save/restore/continue run, binary-searching
/// the first cycle in (snapAt, horizon] where the two serialized states
/// differ. Each probe re-simulates from scratch (a debugging tool, not a
/// fast path). RAIR_CHECKs when the spec is not snapshot-capable.
BisectResult bisectDivergence(const ScenarioSpec& spec, Cycle snapAt,
                              Cycle horizon);

/// Cross-engine variant: the snapshot and the straight reference run use
/// `saveSpec`, the restored continuation uses `restoreSpec`. The two specs
/// must describe the same scenario and may differ only in execution knobs
/// that do not enter the scenario key (in practice: withThreads) — the
/// tool that localizes a thread-count-dependent divergence to a cycle and
/// a state section, proving checkpoints are thread-count-agnostic.
BisectResult bisectDivergence(const ScenarioSpec& saveSpec,
                              const ScenarioSpec& restoreSpec, Cycle snapAt,
                              Cycle horizon);

}  // namespace rair::snapshot
