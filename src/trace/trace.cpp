#include "trace/trace.h"

#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace rair {

TraceWriter::TraceWriter(std::ostream& os) : os_(&os) {
  *os_ << "# rair trace v1: cycle src dst app msgClass numFlits\n";
}

void TraceWriter::write(const TraceRecord& r) {
  *os_ << r.cycle << ' ' << r.src << ' ' << r.dst << ' ' << r.app << ' '
       << static_cast<int>(r.msgClass) << ' ' << r.numFlits << '\n';
  ++count_;
}

std::vector<TraceRecord> readTrace(std::istream& is) {
  std::vector<TraceRecord> out;
  std::string line;
  std::size_t lineNo = 0;
  Cycle prevCycle = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceRecord r;
    long long src, dst, app;
    int cls;
    unsigned flits;
    if (!(ls >> r.cycle >> src >> dst >> app >> cls >> flits)) {
      RAIR_CHECK_MSG(false, "malformed trace line");
    }
    r.src = static_cast<NodeId>(src);
    r.dst = static_cast<NodeId>(dst);
    r.app = static_cast<AppId>(app);
    RAIR_CHECK_MSG(cls >= 0 && cls < kMaxMsgClasses,
                   "trace message class out of range");
    r.msgClass = static_cast<MsgClass>(cls);
    RAIR_CHECK_MSG(flits >= 1 && flits <= 0xFFFF,
                   "trace flit count out of range");
    r.numFlits = static_cast<std::uint16_t>(flits);
    RAIR_CHECK_MSG(r.cycle >= prevCycle, "trace records not sorted by cycle");
    prevCycle = r.cycle;
    out.push_back(r);
  }
  return out;
}

void writeTraceFile(const std::string& path,
                    const std::vector<TraceRecord>& records) {
  std::ofstream os(path);
  RAIR_CHECK_MSG(os.good(), "cannot open trace file for writing");
  TraceWriter w(os);
  for (const auto& r : records) w.write(r);
}

std::vector<TraceRecord> readTraceFile(const std::string& path) {
  std::ifstream is(path);
  RAIR_CHECK_MSG(is.good(), "cannot open trace file for reading");
  return readTrace(is);
}

TraceReplaySource::TraceReplaySource(std::vector<TraceRecord> records)
    : records_(std::move(records)) {
  for (std::size_t i = 1; i < records_.size(); ++i)
    RAIR_CHECK_MSG(records_[i - 1].cycle <= records_[i].cycle,
                   "replay records must be sorted by cycle");
}

void TraceReplaySource::tick(InjectionSink& sink) {
  while (next_ < records_.size() && records_[next_].cycle <= sink.now()) {
    const auto& r = records_[next_];
    sink.createPacket(r.src, r.dst, r.app, r.msgClass, r.numFlits);
    ++next_;
  }
}

TraceCapture::TraceCapture(std::unique_ptr<TrafficSource> inner)
    : inner_(std::move(inner)) {}

namespace {

/// Forwards to the real sink while recording each created packet.
class RecordingSink final : public InjectionSink {
 public:
  RecordingSink(InjectionSink& real, std::vector<TraceRecord>& out)
      : real_(&real), out_(&out) {}

  PacketId createPacket(NodeId src, NodeId dst, AppId app, MsgClass cls,
                        std::uint16_t numFlits) override {
    out_->push_back({real_->now(), src, dst, app, cls, numFlits});
    return real_->createPacket(src, dst, app, cls, numFlits);
  }
  Cycle now() const override { return real_->now(); }

 private:
  InjectionSink* real_;
  std::vector<TraceRecord>* out_;
};

}  // namespace

void TraceCapture::tick(InjectionSink& sink) {
  RecordingSink recording(sink, records_);
  inner_->tick(recording);
}

}  // namespace rair
