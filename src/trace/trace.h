// Trace records, file IO and replay.
//
// The paper drives its application experiments from traces captured in a
// SIMICS/GEMS full-system simulation. We cannot run that stack, so this
// module provides (a) a trace file format with reader/writer, (b) a replay
// source that injects a trace's packets cycle-accurately, and (c) a
// capture wrapper that records any TrafficSource's output — so synthetic
// PARSEC-like models (trace/parsec.h) can be captured once and replayed
// reproducibly, exactly like the original trace-driven methodology.
//
// Format: one record per line, whitespace separated:
//   <cycle> <src> <dst> <app> <msgClass> <numFlits>
// with '#' comment lines; records must be sorted by cycle.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "traffic/source.h"

namespace rair {

struct TraceRecord {
  Cycle cycle = 0;
  NodeId src = 0;
  NodeId dst = 0;
  AppId app = 0;
  MsgClass msgClass = MsgClass::Request;
  std::uint16_t numFlits = 1;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Streams records to a text trace.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& os);
  void write(const TraceRecord& r);
  std::size_t recordsWritten() const { return count_; }

 private:
  std::ostream* os_;
  std::size_t count_ = 0;
};

/// Parses a whole trace. Throws no exceptions; malformed input trips a
/// RAIR_CHECK with the offending line number.
std::vector<TraceRecord> readTrace(std::istream& is);

/// Convenience file-based helpers.
void writeTraceFile(const std::string& path,
                    const std::vector<TraceRecord>& records);
std::vector<TraceRecord> readTraceFile(const std::string& path);

/// Injects a fixed record list at the recorded cycles.
class TraceReplaySource final : public TrafficSource {
 public:
  explicit TraceReplaySource(std::vector<TraceRecord> records);
  void tick(InjectionSink& sink) override;

  /// Records not yet injected (for tests / progress reporting).
  std::size_t remaining() const { return records_.size() - next_; }

 private:
  std::vector<TraceRecord> records_;
  std::size_t next_ = 0;
};

/// Decorates a TrafficSource, recording every packet it creates.
class TraceCapture final : public TrafficSource {
 public:
  explicit TraceCapture(std::unique_ptr<TrafficSource> inner);
  void tick(InjectionSink& sink) override;

  const std::vector<TraceRecord>& records() const { return records_; }
  std::vector<TraceRecord> takeRecords() { return std::move(records_); }

 private:
  std::unique_ptr<TrafficSource> inner_;
  std::vector<TraceRecord> records_;
};

}  // namespace rair
