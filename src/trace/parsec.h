// Synthetic PARSEC-like workload models (the paper's trace substitute).
//
// The paper drives Fig. 17 from PARSEC 2.0 traces captured on the Table 1
// full-system configuration (64 UltraSPARC cores, 32KB L1s, 256KB shared
// L2 banks, 128-cycle memory, 64B blocks, 4 VCs per protocol class).
// Without SIMICS/GEMS we model each benchmark as a two-class cache-traffic
// generator whose *network-visible* behaviour matches what the paper
// relies on:
//
//  * per-benchmark network intensity (derived from published L1 miss-rate
//    orderings of PARSEC: blackscholes is the lightest, raytrace among
//    the heaviest of the four presented) — this ordering is what both
//    STC's ranking and RAIR's DPA key on;
//  * request/reply structure: 1-flit (16B) control requests answered by
//    5-flit (64B data + head) replies after the L2 or memory latency —
//    Table 1's block size and VC organization;
//  * regionalized destinations: most requests hit L2 banks in the
//    application's own region (the cooperative-caching behaviour, RB-3),
//    a small fraction go to other regions or to the corner memory
//    controllers.
//
// Each model can be captured into a trace file (trace/trace.h) and
// replayed, mirroring the original trace-driven methodology.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "common/rng.h"
#include "region/region_map.h"
#include "sim/simulator.h"
#include "traffic/source.h"

namespace rair {

/// The 13 applications of PARSEC 2.0 (the paper's infrastructure supports
/// all of them; Fig. 16/17 present four as a representative subset).
enum class ParsecBenchmark : std::uint8_t {
  Blackscholes,
  Bodytrack,
  Canneal,
  Dedup,
  Facesim,
  Ferret,
  Fluidanimate,
  Freqmine,
  Raytrace,
  Streamcluster,
  Swaptions,
  Vips,
  X264,
};

std::string_view parsecName(ParsecBenchmark b);

/// Network-facing parameters of one benchmark.
struct ParsecProfile {
  ParsecBenchmark benchmark = ParsecBenchmark::Blackscholes;
  /// L1-miss request rate per node per cycle (drives network intensity).
  double requestRate = 0.01;
  /// Fraction of requests served by L2 banks inside the own region.
  double localFraction = 0.85;
  /// Fraction served by banks in other regions (data sharing / spill).
  double remoteFraction = 0.10;
  /// Remainder goes to the corner memory controllers (off-chip misses).
  double memFraction() const { return 1.0 - localFraction - remoteFraction; }
};

/// Calibrated profile table. Intensities preserve the published ordering
/// blackscholes < swaptions < fluidanimate < raytrace used in Fig. 16.
ParsecProfile parsecProfile(ParsecBenchmark b);

/// Request generator for one benchmark mapped onto one region.
class ParsecSource final : public TrafficSource {
 public:
  ParsecSource(const Mesh& mesh, const RegionMap& regions, AppId app,
               ParsecProfile profile, std::uint64_t seed);

  void tick(InjectionSink& sink) override;

  const ParsecProfile& profile() const { return profile_; }

 private:
  const Mesh* mesh_;
  const RegionMap* regions_;
  AppId app_;
  ParsecProfile profile_;
  Xoshiro256StarStar rng_;
  std::vector<NodeId> nodes_;
  std::vector<NodeId> others_;  ///< nodes outside the region
  std::array<NodeId, 4> corners_;
};

/// Table 1 service latencies used to schedule replies.
struct MemoryTimings {
  Cycle l2Latency = 6;      ///< shared L2 bank access
  Cycle memLatency = 128;   ///< off-chip memory
};

/// Installs a delivery hook on `sim` that answers every Request with a
/// 5-flit Reply from the destination after the appropriate service
/// latency (memory latency when the request hit a corner MC, L2 latency
/// otherwise). Requests delivered at or after `replyCutoff` get no reply
/// (replies injected during drain would never let the run finish).
/// Only applications with AppId < `replyAppLimit` are served: adversarial
/// flood packets are not coherence transactions and must not be answered
/// (pass the number of real applications; kNoApp-tagged traffic is also
/// ignored). Pass a large limit to serve everyone.
void installRequestReplyHook(Simulator& sim, const Mesh& mesh,
                             MemoryTimings timings, Cycle replyCutoff,
                             AppId replyAppLimit = 32767);

}  // namespace rair
