#include "trace/parsec.h"

#include <algorithm>

#include "common/assert.h"

namespace rair {

std::string_view parsecName(ParsecBenchmark b) {
  switch (b) {
    case ParsecBenchmark::Blackscholes: return "blackscholes";
    case ParsecBenchmark::Bodytrack: return "bodytrack";
    case ParsecBenchmark::Canneal: return "canneal";
    case ParsecBenchmark::Dedup: return "dedup";
    case ParsecBenchmark::Facesim: return "facesim";
    case ParsecBenchmark::Ferret: return "ferret";
    case ParsecBenchmark::Fluidanimate: return "fluidanimate";
    case ParsecBenchmark::Freqmine: return "freqmine";
    case ParsecBenchmark::Raytrace: return "raytrace";
    case ParsecBenchmark::Streamcluster: return "streamcluster";
    case ParsecBenchmark::Swaptions: return "swaptions";
    case ParsecBenchmark::Vips: return "vips";
    case ParsecBenchmark::X264: return "x264";
  }
  return "?";
}

ParsecProfile parsecProfile(ParsecBenchmark b) {
  // requestRate is requests/node/cycle; each request moves 6 flits end to
  // end (1-flit request + 5-flit reply), so the flit load is ~6x this.
  // Values are calibrated to the published PARSEC working-set / L1-miss
  // orderings: compute-bound kernels (blackscholes, swaptions) are nearly
  // network-silent, streaming/irregular ones (canneal, streamcluster,
  // raytrace, fluidanimate) are network-hungry.
  ParsecProfile p;
  p.benchmark = b;
  switch (b) {
    case ParsecBenchmark::Blackscholes:
      p.requestRate = 0.002; p.localFraction = 0.88; p.remoteFraction = 0.07;
      break;
    case ParsecBenchmark::Swaptions:
      p.requestRate = 0.006; p.localFraction = 0.88; p.remoteFraction = 0.07;
      break;
    case ParsecBenchmark::Bodytrack:
      p.requestRate = 0.008; p.localFraction = 0.85; p.remoteFraction = 0.10;
      break;
    case ParsecBenchmark::Freqmine:
      p.requestRate = 0.010; p.localFraction = 0.85; p.remoteFraction = 0.10;
      break;
    case ParsecBenchmark::X264:
      p.requestRate = 0.012; p.localFraction = 0.82; p.remoteFraction = 0.12;
      break;
    case ParsecBenchmark::Vips:
      p.requestRate = 0.014; p.localFraction = 0.82; p.remoteFraction = 0.12;
      break;
    case ParsecBenchmark::Ferret:
      p.requestRate = 0.016; p.localFraction = 0.80; p.remoteFraction = 0.13;
      break;
    case ParsecBenchmark::Dedup:
      p.requestRate = 0.018; p.localFraction = 0.80; p.remoteFraction = 0.13;
      break;
    case ParsecBenchmark::Facesim:
      p.requestRate = 0.020; p.localFraction = 0.82; p.remoteFraction = 0.10;
      break;
    case ParsecBenchmark::Fluidanimate:
      p.requestRate = 0.022; p.localFraction = 0.83; p.remoteFraction = 0.10;
      break;
    case ParsecBenchmark::Raytrace:
      p.requestRate = 0.030; p.localFraction = 0.80; p.remoteFraction = 0.12;
      break;
    case ParsecBenchmark::Streamcluster:
      p.requestRate = 0.034; p.localFraction = 0.78; p.remoteFraction = 0.14;
      break;
    case ParsecBenchmark::Canneal:
      p.requestRate = 0.038; p.localFraction = 0.75; p.remoteFraction = 0.17;
      break;
  }
  return p;
}

ParsecSource::ParsecSource(const Mesh& mesh, const RegionMap& regions,
                           AppId app, ParsecProfile profile,
                           std::uint64_t seed)
    : mesh_(&mesh),
      regions_(&regions),
      app_(app),
      profile_(profile),
      rng_(seed),
      corners_(mesh.cornerNodes()) {
  const auto span = regions.nodesOf(app);
  nodes_.assign(span.begin(), span.end());
  RAIR_CHECK(nodes_.size() >= 2);
  for (NodeId n = 0; n < mesh.numNodes(); ++n)
    if (regions.appOf(n) != app) others_.push_back(n);
  RAIR_CHECK_MSG(profile_.memFraction() >= 0.0,
                 "local + remote fractions exceed 1");
}

void ParsecSource::tick(InjectionSink& sink) {
  for (NodeId src : nodes_) {
    if (!rng_.chance(profile_.requestRate)) continue;
    const double roll = rng_.real();
    NodeId dst;
    if (roll < profile_.localFraction) {
      // L2 bank inside the own region.
      do {
        dst = nodes_[rng_.below(nodes_.size())];
      } while (dst == src);
    } else if (roll < profile_.localFraction + profile_.remoteFraction &&
               !others_.empty()) {
      dst = others_[rng_.below(others_.size())];
    } else {
      dst = corners_[rng_.below(corners_.size())];
      if (dst == src) continue;
    }
    sink.createPacket(src, dst, app_, MsgClass::Request, kShortPacketFlits);
  }
}

void installRequestReplyHook(Simulator& sim, const Mesh& mesh,
                             MemoryTimings timings, Cycle replyCutoff,
                             AppId replyAppLimit) {
  const auto corners = mesh.cornerNodes();
  sim.setDeliveryHook([&sim, timings, corners, replyCutoff, replyAppLimit](
                          const Packet& p, InjectionSink& sink) {
    if (p.msgClass != MsgClass::Request) return;
    if (p.app < 0 || p.app >= replyAppLimit) return;
    if (sink.now() >= replyCutoff) return;
    const bool isMem =
        std::find(corners.begin(), corners.end(), p.dst) != corners.end();
    const Cycle service = isMem ? timings.memLatency : timings.l2Latency;
    sim.injectAt(sink.now() + service, p.dst, p.src, p.app, MsgClass::Reply,
                 kLongPacketFlits);
  });
}

}  // namespace rair
