// Inter-router channels: fixed-latency delay pipes for flits (forward) and
// credits (backward).
//
// A Link models one physical channel between an upstream port and a
// downstream port: at most one flit enters per cycle, arrives
// `latency` cycles later, and credits flow the opposite way with the same
// latency. NIC<->router connections reuse the same type.
#pragma once

#include <optional>
#include <utility>

#include "common/assert.h"
#include "common/ring.h"
#include "common/types.h"
#include "packet/packet.h"

namespace rair {

/// FIFO whose elements become visible `latency` cycles after insertion.
///
/// Backed by a RingQueue pre-sized for the in-simulation worst case: with
/// one push per cycle and consumers draining every arrived element each
/// cycle, occupancy never exceeds latency + 1, so steady state is
/// allocation-free. The ring still grows if a caller outruns that bound.
template <typename T>
class DelayPipe {
 public:
  explicit DelayPipe(Cycle latency = 1) : latency_(latency) {
    RAIR_CHECK(latency >= 1);
    q_.reserve(static_cast<std::size_t>(latency) + 2);
  }

  /// Enqueue `v` at time `now`; it becomes poppable at now + latency.
  void push(Cycle now, T v) {
    RAIR_DCHECK(q_.empty() ||
                q_[q_.size() - 1].first <= now + latency_);
    q_.push_back({now + latency_, std::move(v)});
  }

  /// Pops the front element if it has arrived by `now`.
  std::optional<T> pop(Cycle now) {
    if (q_.empty() || q_.front().first > now) return std::nullopt;
    T v = std::move(q_.front().second);
    q_.pop_front();
    return v;
  }

  /// Zero-copy front access: pointer to the front element if it has
  /// arrived by `now`, else nullptr. Invalidated by popFront()/push().
  const T* peek(Cycle now) const {
    if (q_.empty() || q_.front().first > now) return nullptr;
    return &q_.front().second;
  }

  /// Drops the front element (pair with a successful peek()).
  void popFront() { q_.pop_front(); }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  /// Read-only view of queued element `i` (0 = front) with its arrival
  /// cycle — introspection for the simulation oracle and tests.
  const std::pair<Cycle, T>& entry(std::size_t i) const { return q_[i]; }

  // Snapshot restore: rebuild the queue from saved absolute arrival
  // cycles. pushAbsolute() must be called in saved (front-to-back) order.
  void clearForRestore() { q_.clear(); }
  void pushAbsolute(Cycle arrival, T v) {
    RAIR_DCHECK(q_.empty() || q_[q_.size() - 1].first <= arrival);
    q_.push_back({arrival, std::move(v)});
  }

 private:
  Cycle latency_;
  RingQueue<std::pair<Cycle, T>> q_;
};

/// A flit in flight, tagged with its downstream virtual channel.
struct FlitMsg {
  Flit flit;
  int vc = 0;
};

/// A credit returning upstream: one buffer slot freed in `vc`.
struct CreditMsg {
  int vc = 0;
};

/// One directed physical channel plus its reverse credit wires.
class Link {
 public:
  explicit Link(Cycle latency = 1) : data_(latency), credits_(latency) {}

  // Upstream side.
  void sendFlit(Cycle now, Flit f, int vc) {
    data_.push(now, FlitMsg{std::move(f), vc});
  }
  std::optional<CreditMsg> recvCredit(Cycle now) { return credits_.pop(now); }
  /// Zero-copy credit receive; pair with popCredit().
  const CreditMsg* peekCredit(Cycle now) const { return credits_.peek(now); }
  void popCredit() { credits_.popFront(); }

  // Downstream side.
  std::optional<FlitMsg> recvFlit(Cycle now) { return data_.pop(now); }
  /// Zero-copy flit receive; pair with popFlit().
  const FlitMsg* peekFlit(Cycle now) const { return data_.peek(now); }
  void popFlit() { data_.popFront(); }
  void sendCredit(Cycle now, int vc) { credits_.push(now, CreditMsg{vc}); }

  bool idle() const { return data_.empty() && credits_.empty(); }

  /// Read-only pipe views — introspection for the simulation oracle
  /// (flit census, credit round-trip accounting) and tests.
  const DelayPipe<FlitMsg>& flitPipe() const { return data_; }
  const DelayPipe<CreditMsg>& creditPipe() const { return credits_; }

  /// Mutable pipe access for snapshot restore only.
  DelayPipe<FlitMsg>& flitPipeMut() { return data_; }
  DelayPipe<CreditMsg>& creditPipeMut() { return credits_; }

 private:
  DelayPipe<FlitMsg> data_;
  DelayPipe<CreditMsg> credits_;
};

}  // namespace rair
