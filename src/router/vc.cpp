#include "router/vc.h"

#include <algorithm>

namespace rair {

VcLayout::VcLayout(int numClasses, int vcsPerClass, bool rairPartition,
                   int globalPerClass)
    : numClasses_(numClasses),
      vcsPerClass_(vcsPerClass),
      rairPartition_(rairPartition),
      globalPerClass_(globalPerClass) {
  RAIR_CHECK_MSG(numClasses >= 1 && numClasses <= kMaxMsgClasses,
                 "numClasses out of range");
  RAIR_CHECK_MSG(vcsPerClass >= 2,
                 "need at least one escape and one adaptive VC per class");
  if (rairPartition_) {
    if (globalPerClass_ < 0)
      globalPerClass_ = std::max(1, adaptivePerClass() / 2);
    RAIR_CHECK_MSG(globalPerClass_ >= 1 &&
                       globalPerClass_ <= adaptivePerClass() - 1,
                   "RAIR needs at least one regional and one global VC");
  } else {
    globalPerClass_ = 0;
  }
}

}  // namespace rair
