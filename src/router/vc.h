// Virtual-channel identity, classes, and per-port VC layout.
//
// Every physical channel carries `numClasses * vcsPerClass` virtual
// channels. VCs are grouped by coherence message class (protocol deadlock
// freedom); within each class block, VC 0 is the *escape* VC of Duato's
// deadlock-avoidance scheme (restricted to dimension-ordered XY routes) and
// the remaining VCs are adaptive.
//
// RAIR's first mechanism, VC regionalization (paper Sec. IV.A), tags each
// adaptive VC with a 1-bit class: *regional* or *global*. The tag does NOT
// restrict which traffic may use the VC — both native and foreign traffic
// may occupy either kind — it only selects the prioritization rule applied
// at VA output arbitration: global VCs always favor foreign traffic, while
// regional VCs follow the DPA decision.
#pragma once

#include "common/assert.h"
#include "packet/packet.h"

namespace rair {

/// Classification of a virtual channel.
enum class VcClass : std::uint8_t {
  Escape,    ///< Duato escape channel: XY dimension-ordered routes only
  Adaptive,  ///< plain adaptive VC (non-RAIR schemes)
  Regional,  ///< RAIR: adaptive VC whose VA_out priority follows DPA
  Global,    ///< RAIR: adaptive VC whose VA_out priority favors foreign
};

/// Computes class membership and RAIR tagging for the VC index space of a
/// physical channel. Immutable; shared by all routers of a network.
class VcLayout {
 public:
  /// @param numClasses    number of protocol message classes (>= 1)
  /// @param vcsPerClass   VCs per class (>= 2: one escape + >=1 adaptive)
  /// @param rairPartition when true, adaptive VCs are tagged
  ///                      Regional/Global; otherwise they are Adaptive
  /// @param globalPerClass number of adaptive VCs per class tagged Global
  ///                      (-1 = half of the adaptive VCs, rounded down, at
  ///                      least 1 — the paper's "roughly the same" split)
  VcLayout(int numClasses, int vcsPerClass, bool rairPartition,
           int globalPerClass = -1);

  int numClasses() const { return numClasses_; }
  int vcsPerClass() const { return vcsPerClass_; }
  int totalVcs() const { return numClasses_ * vcsPerClass_; }
  bool rairPartition() const { return rairPartition_; }

  /// Message class served by VC index `vc`.
  MsgClass msgClassOf(int vc) const {
    RAIR_DCHECK(vc >= 0 && vc < totalVcs());
    return static_cast<MsgClass>(vc / vcsPerClass_);
  }

  /// First VC index of a class block.
  int firstVcOf(MsgClass c) const {
    return static_cast<int>(c) * vcsPerClass_;
  }

  /// Classification of VC index `vc`.
  VcClass typeOf(int vc) const {
    RAIR_DCHECK(vc >= 0 && vc < totalVcs());
    const int within = vc % vcsPerClass_;
    if (within == 0) return VcClass::Escape;
    if (!rairPartition_) return VcClass::Adaptive;
    // Adaptive VCs 1..vcsPerClass-1: the last `globalPerClass_` are Global.
    return within >= vcsPerClass_ - globalPerClass_ ? VcClass::Global
                                                    : VcClass::Regional;
  }

  bool isEscape(int vc) const { return typeOf(vc) == VcClass::Escape; }
  bool isAdaptive(int vc) const { return !isEscape(vc); }

  int adaptivePerClass() const { return vcsPerClass_ - 1; }
  int globalPerClass() const { return rairPartition_ ? globalPerClass_ : 0; }
  int regionalPerClass() const {
    return rairPartition_ ? adaptivePerClass() - globalPerClass_ : 0;
  }

 private:
  int numClasses_;
  int vcsPerClass_;
  bool rairPartition_;
  int globalPerClass_;
};

}  // namespace rair
