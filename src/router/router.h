// Canonical virtual-channel wormhole router with pluggable arbitration
// policy (Fig. 5 of the paper: the RAIR router is a canonical router whose
// VA/SA arbiters consume a policy-provided priority and whose DPA logic is
// updated once per cycle).
//
// Pipeline (one stage per cycle per flit):
//   BW   buffer write            (modelled by the 1-cycle post-receive delay)
//   RC   route computation       (head flits)
//   VA   virtual-channel alloc   (VA_in selection + VA_out arbitration)
//   SA   switch allocation       (SA_in + SA_out arbitration)
//   ST   switch traversal        (same cycle as the SA grant)
//   LT   link traversal          (1-cycle link latency)
//
// Flow control is credit-based with *atomic* VC allocation (Table 1): an
// output VC can be allocated only when it is unowned and its downstream
// buffer is fully credited, so at most one packet occupies a VC at a time.
//
// Policy hooks (paper Sec. IV.B, multi-stage prioritization):
//   * VA_in  — NO hook: each input VC picks among its own candidates;
//     flows do not contend here, matching the paper's design.
//   * VA_out — policy priority per contested output VC, tie -> round-robin.
//   * SA_in  — policy priority per input port, tie -> round-robin.
//   * SA_out — policy priority per output port, tie -> round-robin.
#pragma once

#include <memory>
#include <vector>

#include "common/ring.h"
#include "link/link_layer.h"
#include "policy/policy.h"
#include "router/vc.h"
#include "routing/routing.h"
#include "topology/mesh.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair {

namespace check {
class NetworkOracle;  // read-only auditor of router internals (src/check/)
}

namespace fault {
class FaultInjector;  // fault-event application (src/fault/)
}

/// Cumulative per-router event counters (cheap; always collected). Useful
/// for validating arbitration behaviour and for diagnosing DPA decisions.
struct RouterCounters {
  std::uint64_t vaGrantsNative = 0;  ///< VA_out winners that were native
  std::uint64_t vaGrantsForeign = 0;
  std::uint64_t saGrantsNative = 0;  ///< switch traversals by native flits
  std::uint64_t saGrantsForeign = 0;
  std::uint64_t escapeAllocations = 0;  ///< packets that fell to escape VCs
  std::uint64_t flitsTraversed = 0;
  /// Switch traversals by output port — per-link utilization (the Local
  /// port counts ejections). Sums to flitsTraversed.
  std::array<std::uint64_t, kNumPorts> portFlits{};
};

/// Input-VC state machine (canonical VC router).
enum class VcState : std::uint8_t {
  Idle,       ///< no packet
  Routing,    ///< head buffered, RC pending
  WaitingVa,  ///< routed, requesting an output VC
  Active,     ///< output VC allocated, flits competing for the switch
};

struct RouterConfig {
  VcLayout layout{1, 4, false};
  int vcDepth = 5;  ///< flit buffer slots per VC (Table 1: 5-flit/VC)
  /// Atomic VC allocation: reallocate a VC only when its downstream
  /// buffer has fully drained (one packet per VC at a time). When false,
  /// packets queue back-to-back inside adaptive VC FIFOs; escape VCs stay
  /// atomic either way (Duato escape-path safety).
  bool atomicVcs = true;
};

class Router {
 public:
  /// @param appTag the application mapped onto this router's node; packets
  ///        with a matching AppId are *native* here, all others *foreign*.
  Router(NodeId id, AppId appTag, const RouterConfig& config,
         const Mesh& mesh, const RoutingAlgorithm& routing,
         const ArbiterPolicy& policy, const CongestionView& congestion);

  // --- Wiring (done once by the Network) ---------------------------------
  /// Link whose downstream side is this router's port `p` (flits arrive
  /// here; credits are returned on it).
  void connectIn(Dir p, LinkLayer* link);
  /// Link whose upstream side is this router's port `p` (flits leave here;
  /// credits arrive on it).
  void connectOut(Dir p, LinkLayer* link);

  // --- Per-cycle phases, invoked in order by the Network ------------------
  /// Updates policy state with last cycle's occupancy; drains arriving
  /// flits and credits from the links.
  void beginCycle(Cycle now);
  /// RC stage for freshly buffered head flits.
  void routeCompute(Cycle now);
  /// VA stage: input selection and output arbitration.
  void vcAllocate(Cycle now);
  /// SA stage (SA_in + SA_out) and switch traversal of the winners.
  void switchAllocateAndTraverse(Cycle now);
  /// Snapshots VC occupancy for next cycle's policy update and runs the
  /// link layers' once-per-cycle hooks (retransmission pump on out-links,
  /// ACK/NAK flush on in-links; no-ops on ideal links).
  void endCycle(Cycle now);

  // --- Introspection -------------------------------------------------------
  NodeId id() const { return id_; }
  AppId appTag() const { return appTag_; }

  /// Output VCs on port `p` currently available for allocation, counting
  /// adaptive (non-escape) VCs only; 0 when the port is unconnected. This
  /// is the congestion metric exported to routing selection functions —
  /// maintained incrementally, so reading it is O(1).
  int freeAdaptiveOutVcs(Dir p) const {
    const auto port = static_cast<size_t>(p);
    if (outLinks_[port] == nullptr) return 0;
    return freeAdaptive_[port];
  }

  /// Occupied input VCs holding native / foreign traffic (all ports) —
  /// the OVC_n / OVC_f registers of the paper's DPA logic.
  RouterOccupancy occupancy() const;

  /// Cumulative event counters since construction.
  const RouterCounters& counters() const { return counters_; }

  /// Flits that traversed the switch in the last completed cycle.
  int flitsMovedLastCycle() const { return flitsMovedLastCycle_; }

  /// True when no flit is buffered and no VC is mid-packet.
  bool quiescent() const;

  const PolicyState* policyState() const { return policyState_.get(); }

  /// Test hook for oracle validation: discards one credit of output VC
  /// (p, vc) as if the upstream credit message had been lost on the wire.
  /// The router's own incremental bookkeeping is kept consistent (as real
  /// hardware would — it cannot know a credit was lost), so only the
  /// cross-link credit-conservation invariant breaks, which is exactly
  /// what the simulation oracle must detect. Returns false when the port
  /// is unconnected or no credit is outstanding to drop.
  bool debugDropCredit(Dir p, int vc);

  /// Snapshot hooks: every field a future cycle reads — VC state machines,
  /// buffered flits, credits, round-robin pointers, occupancy aggregates,
  /// state bitmasks, counters and the policy state. The per-cycle scratch
  /// vectors (vaRequests_, saInWinners_) are rebuilt each cycle and
  /// excluded. restore() requires an identically configured router.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  friend class check::NetworkOracle;
  friend class fault::FaultInjector;
  struct InputVc {
    VcState state = VcState::Idle;
    RingQueue<Flit> buf;  ///< ring sized to vcDepth; allocation-free
    RouteResult route;
    int outPort = -1;
    int outVc = -1;
    Cycle ready = 0;  ///< earliest cycle of the next pipeline action
    /// Occupancy class of the buffered front flit, maintained
    /// incrementally: 0 = empty, 1 = native, 2 = foreign.
    std::uint8_t occClass = 0;
    /// Id of the packet this VC is currently strung with (head arrived or
    /// surfaced); 0 while Idle. Lets the fault layer doom a whole packet
    /// from any one of its flits without scanning buffers.
    PacketId pktId = 0;
  };

  struct OutputVc {
    int credits = 0;
    bool allocated = false;
    int ownerPort = -1;
    int ownerVc = -1;
  };

  struct VaRequest {
    int inPort, inVc;
    int outPort, outVc;
  };

  struct SaWinner {
    int inPort, inVc;
    int outPort, outVc;
  };

  InputVc& inVc(int port, int vc) {
    return inputs_[static_cast<size_t>(port * layout_.totalVcs() + vc)];
  }
  const InputVc& inVc(int port, int vc) const {
    return inputs_[static_cast<size_t>(port * layout_.totalVcs() + vc)];
  }
  OutputVc& outVc(int port, int vc) {
    return outputs_[static_cast<size_t>(port * layout_.totalVcs() + vc)];
  }
  const OutputVc& outVc(int port, int vc) const {
    return outputs_[static_cast<size_t>(port * layout_.totalVcs() + vc)];
  }

  bool isNative(const Flit& f) const {
    return appTag_ != kNoApp && f.app == appTag_;
  }

  /// Whether output VC (port, vc) can be allocated to a packet of
  /// `flitsNeeded` flits now. Atomic mode (and escape VCs): unowned and
  /// downstream buffer empty. Non-atomic: unowned and enough credits for
  /// the WHOLE packet — a committed packet can then always fully vacate
  /// its current buffer, which keeps Duato's escape argument valid (the
  /// front packet of any buffer is either uncommitted, so it can take the
  /// escape path, or committed with guaranteed space downstream).
  bool outVcAvailable(int port, int vc, int flitsNeeded) const;

  /// VA_in: choose the (outPort, outVc) this input VC requests this cycle,
  /// or false if nothing suitable is available.
  bool selectOutputVc(Cycle now, int inPort, int inVcIdx, VaRequest& out);

  /// Picks the best available adaptive output VC on `port` for `f`
  /// (RAIR class preference: foreign packets try Global VCs first, native
  /// packets Regional first); returns -1 if none.
  int pickAdaptiveVc(int port, const Flit& f) const;

  ArbCandidate makeCandidate(const Flit& f, VcClass outClass,
                             Cycle now) const;

  /// Maintains occNative_/occForeign_ and the per-VC occClass after the
  /// front flit of `ivc` changed (push into empty buffer or pop).
  void reclassifyOccupancy(InputVc& ivc);

  /// Adjusts freeAdaptive_ when output VC (port, vc) may have crossed the
  /// "available for a 1-flit packet" boundary. `wasFree` is the
  /// availability before the mutation.
  void noteOutVcFreeChange(int port, int vc, bool wasFree);

  /// Availability of (port, vc) for a minimal (1-flit) packet, ignoring
  /// link connectivity — the quantity freeAdaptive_ counts.
  bool countsAsFree(const OutputVc& o, int vc) const {
    if (o.allocated) return false;
    return (atomicVcs_ || layout_.isEscape(vc)) ? o.credits == vcDepth_
                                                : o.credits >= 1;
  }

  NodeId id_;
  AppId appTag_;
  VcLayout layout_;
  int vcDepth_;
  bool atomicVcs_;
  const Mesh* mesh_;
  const RoutingAlgorithm* routing_;
  const ArbiterPolicy* policy_;
  const CongestionView* congestion_;
  std::unique_ptr<PolicyState> policyState_;

  std::vector<InputVc> inputs_;    // [port][vc] flattened
  std::vector<OutputVc> outputs_;  // [port][vc] flattened
  std::array<LinkLayer*, kNumPorts> inLinks_{};
  std::array<LinkLayer*, kNumPorts> outLinks_{};

  // Round-robin grant pointers.
  std::vector<int> vaRr_;                    // per output VC, over input-VC ids
  std::array<int, kNumPorts> saInRr_{};      // per input port, over VC ids
  std::array<int, kNumPorts> saOutRr_{};     // per output port, over ports

  // Scratch buffers reused every cycle.
  std::vector<VaRequest> vaRequests_;
  std::vector<SaWinner> saInWinners_;

  RouterOccupancy prevOccupancy_;
  RouterCounters counters_;
  int flitsMovedThisCycle_ = 0;
  int flitsMovedLastCycle_ = 0;

  // Incrementally maintained aggregates (hot path avoids full scans).
  int occNative_ = 0;   ///< input VCs whose front flit is native
  int occForeign_ = 0;  ///< input VCs whose front flit is foreign
  std::array<int, kNumPorts> freeAdaptive_{};  ///< per out port, 1-flit avail
  int pendingRc_ = 0;  ///< input VCs in Routing
  int pendingVa_ = 0;  ///< input VCs in WaitingVa
  int numActive_ = 0;  ///< input VCs in Active

  /// Fault-injected SA gate: bit p set means no input VC may win switch
  /// allocation toward output port p this cycle (a stalled crossbar
  /// output). Maintained by the fault injector; not serialized — the
  /// snapshot's fault section re-applies active stalls on restore.
  std::uint32_t stalledOutPorts_ = 0;

  // Per-port bitmask of input VCs in each pipeline state (bit = VC index).
  // The RC/VA/SA scans walk set bits in ascending order — identical visit
  // order to the full scan, but cost proportional to occupancy.
  std::array<std::uint64_t, kNumPorts> routingMask_{};
  std::array<std::uint64_t, kNumPorts> waitingMask_{};
  std::array<std::uint64_t, kNumPorts> activeMask_{};

  // Links whose per-cycle hooks are not no-ops (kind != Ideal), filled by
  // connectIn/connectOut so endCycle skips the tick loop entirely on an
  // all-ideal network. Kept last: touched only during construction and in
  // endCycle's (usually empty) tick loop, so they stay off the cache
  // lines the pipeline stages walk every cycle.
  std::array<LinkLayer*, kNumPorts> tickIn_{};
  std::array<LinkLayer*, kNumPorts> tickOut_{};
  int numTickIn_ = 0;
  int numTickOut_ = 0;

  void setStateBit(std::array<std::uint64_t, kNumPorts>& m, int port,
                   int vc, bool on) {
    if (on)
      m[static_cast<size_t>(port)] |= std::uint64_t{1} << vc;
    else
      m[static_cast<size_t>(port)] &= ~(std::uint64_t{1} << vc);
  }
};

}  // namespace rair
