#include "router/router.h"

#include <algorithm>
#include <bit>

#include "snapshot/codec.h"

namespace rair {

namespace {
constexpr int portIdx(Dir d) { return static_cast<int>(d); }
}  // namespace

Router::Router(NodeId id, AppId appTag, const RouterConfig& config,
               const Mesh& mesh, const RoutingAlgorithm& routing,
               const ArbiterPolicy& policy, const CongestionView& congestion)
    : id_(id),
      appTag_(appTag),
      layout_(config.layout),
      vcDepth_(config.vcDepth),
      atomicVcs_(config.atomicVcs),
      mesh_(&mesh),
      routing_(&routing),
      policy_(&policy),
      congestion_(&congestion),
      policyState_(policy.makeState()) {
  RAIR_CHECK(vcDepth_ >= 1);
  RAIR_CHECK_MSG(layout_.totalVcs() <= 64,
                 "per-port VC count exceeds the state-bitmask width");
  const auto slots = static_cast<size_t>(kNumPorts * layout_.totalVcs());
  inputs_.resize(slots);
  outputs_.resize(slots);
  for (auto& i : inputs_) i.buf.reserve(static_cast<std::size_t>(vcDepth_));
  for (auto& o : outputs_) o.credits = vcDepth_;
  vaRr_.assign(slots, 0);
  vaRequests_.reserve(slots);
  saInWinners_.reserve(kNumPorts);
  // Every adaptive output VC starts unallocated and fully credited.
  int adaptivePerPort = 0;
  for (int vc = 0; vc < layout_.totalVcs(); ++vc)
    if (layout_.isAdaptive(vc)) ++adaptivePerPort;
  freeAdaptive_.fill(adaptivePerPort);
}

void Router::connectIn(Dir p, LinkLayer* link) {
  inLinks_[portIdx(p)] = link;
  if (link->kind() != LinkLayerKind::Ideal)
    tickIn_[static_cast<size_t>(numTickIn_++)] = link;
}
void Router::connectOut(Dir p, LinkLayer* link) {
  outLinks_[portIdx(p)] = link;
  if (link->kind() != LinkLayerKind::Ideal)
    tickOut_[static_cast<size_t>(numTickOut_++)] = link;
}

bool Router::debugDropCredit(Dir p, int vc) {
  const int port = portIdx(p);
  if (outLinks_[static_cast<size_t>(port)] == nullptr) return false;
  OutputVc& o = outVc(port, vc);
  if (o.credits <= 0) return false;
  const bool wasFree = countsAsFree(o, vc);
  --o.credits;
  noteOutVcFreeChange(port, vc, wasFree);
  return true;
}

bool Router::outVcAvailable(int port, int vc, int flitsNeeded) const {
  if (outLinks_[static_cast<size_t>(port)] == nullptr) return false;
  const OutputVc& o = outVc(port, vc);
  if (o.allocated) return false;
  if (atomicVcs_ || layout_.isEscape(vc)) return o.credits == vcDepth_;
  // Non-atomic: the whole packet must fit behind whatever is queued, so a
  // committed packet never depends on other packets to drain (deadlock
  // safety; see the header comment).
  return o.credits >= flitsNeeded;
}

void Router::noteOutVcFreeChange(int port, int vc, bool wasFree) {
  if (!layout_.isAdaptive(vc)) return;
  const bool nowFree = countsAsFree(outVc(port, vc), vc);
  if (wasFree != nowFree)
    freeAdaptive_[static_cast<size_t>(port)] += nowFree ? 1 : -1;
}

void Router::reclassifyOccupancy(InputVc& ivc) {
  const std::uint8_t next =
      ivc.buf.empty() ? std::uint8_t{0}
                      : (isNative(ivc.buf.front()) ? std::uint8_t{1}
                                                   : std::uint8_t{2});
  if (next == ivc.occClass) return;
  if (ivc.occClass == 1) --occNative_;
  if (ivc.occClass == 2) --occForeign_;
  if (next == 1) ++occNative_;
  if (next == 2) ++occForeign_;
  ivc.occClass = next;
}

RouterOccupancy Router::occupancy() const {
  RouterOccupancy occ;
  occ.nativeOccupiedVcs = occNative_;
  occ.foreignOccupiedVcs = occForeign_;
  return occ;
}

bool Router::quiescent() const {
  for (const auto& ivc : inputs_) {
    if (ivc.state != VcState::Idle || !ivc.buf.empty()) return false;
  }
  for (const auto& ovc : outputs_) {
    if (ovc.allocated) return false;
  }
  return true;
}

void Router::beginCycle(Cycle now) {
  // DPA and friends consume the occupancy measured at the END of the
  // previous cycle (Sec. IV.E: the priority from the previous cycle is
  // used, removing DPA from the critical path).
  if (policyState_) policy_->updateState(policyState_.get(), prevOccupancy_);

  for (int port = 0; port < kNumPorts; ++port) {
    if (LinkLayer* in = inLinks_[static_cast<size_t>(port)]) {
      while (const FlitMsg* msg = in->peekFlit(now)) {
        const int vcIdx = msg->vc;
        InputVc& ivc = inVc(port, vcIdx);
        RAIR_CHECK_MSG(static_cast<int>(ivc.buf.size()) < vcDepth_,
                       "input VC buffer overflow (credit protocol broken)");
        Flit f = msg->flit;
        in->popFlit();  // `msg` is dead from here on
        if (isHead(f.type)) {
          ++f.hops;
          if (ivc.buf.empty()) {
            RAIR_CHECK_MSG(ivc.state == VcState::Idle,
                           "empty VC must be idle");
            ivc.state = VcState::Routing;
            ivc.ready = now + 1;  // BW stage: RC may run next cycle
            ivc.pktId = f.pkt;
            ++pendingRc_;
            setStateBit(routingMask_, port, vcIdx, true);
          } else {
            // Non-atomic VC: the packet queues behind the one in flight;
            // its RC starts when it reaches the buffer head.
            RAIR_CHECK_MSG(!atomicVcs_,
                           "head arrived at a non-empty atomic VC");
          }
        }
        const bool wasEmpty = ivc.buf.empty();
        ivc.buf.push_back(f);
        if (wasEmpty) reclassifyOccupancy(ivc);
      }
    }
    if (LinkLayer* out = outLinks_[static_cast<size_t>(port)]) {
      while (const CreditMsg* credit = out->peekCredit(now)) {
        const int vcIdx = credit->vc;
        out->popCredit();
        OutputVc& o = outVc(port, vcIdx);
        const bool wasFree = countsAsFree(o, vcIdx);
        ++o.credits;
        RAIR_CHECK_MSG(o.credits <= vcDepth_, "credit overflow");
        noteOutVcFreeChange(port, vcIdx, wasFree);
      }
    }
  }
}

void Router::routeCompute(Cycle now) {
  if (pendingRc_ == 0) return;
  for (int port = 0; port < kNumPorts; ++port) {
    std::uint64_t mask = routingMask_[static_cast<size_t>(port)];
    while (mask != 0) {
      const int vc = std::countr_zero(mask);
      mask &= mask - 1;
      InputVc& ivc = inVc(port, vc);
      RAIR_DCHECK(ivc.state == VcState::Routing);
      if (ivc.ready > now) continue;
      RAIR_DCHECK(!ivc.buf.empty() && isHead(ivc.buf.front().type));
      ivc.route = routing_->computeCandidates(*mesh_, id_, ivc.buf.front());
      ivc.state = VcState::WaitingVa;
      ivc.ready = now + 1;
      --pendingRc_;
      ++pendingVa_;
      setStateBit(routingMask_, port, vc, false);
      setStateBit(waitingMask_, port, vc, true);
    }
  }
}

int Router::pickAdaptiveVc(int port, const Flit& f) const {
  const int base = layout_.firstVcOf(f.msgClass);
  const int end = base + layout_.vcsPerClass();
  const int need = f.pktFlits;
  if (!layout_.rairPartition()) {
    for (int vc = base + 1; vc < end; ++vc) {  // skip escape at `base`
      if (outVcAvailable(port, vc, need)) return vc;
    }
    return -1;
  }
  // RAIR VC regionalization: both classes are usable by any traffic, but
  // foreign (global) packets try Global VCs first and native packets
  // Regional VCs first, so each flow lands in the VC class whose
  // prioritization rule favors it when both are free.
  const VcClass preferred =
      isNative(f) ? VcClass::Regional : VcClass::Global;
  int fallback = -1;
  for (int vc = base + 1; vc < end; ++vc) {
    if (!outVcAvailable(port, vc, need)) continue;
    if (layout_.typeOf(vc) == preferred) return vc;
    if (fallback < 0) fallback = vc;
  }
  return fallback;
}

bool Router::selectOutputVc(Cycle now, int inPort, int inVcIdx,
                            VaRequest& out) {
  InputVc& ivc = inVc(inPort, inVcIdx);
  const Flit& head = ivc.buf.front();
  out.inPort = inPort;
  out.inVc = inVcIdx;

  if (ivc.route.ejecting) {
    // Delivery through the Local port; any VC of the packet's class works
    // (the NIC sink cannot deadlock), adaptive VCs preferred.
    const int port = portIdx(Dir::Local);
    int vc = pickAdaptiveVc(port, head);
    if (vc < 0) {
      const int escape = layout_.firstVcOf(head.msgClass);
      if (outVcAvailable(port, escape, head.pktFlits)) vc = escape;
    }
    if (vc < 0) return false;
    out.outPort = port;
    out.outVc = vc;
    return true;
  }

  // Selection function: order the productive directions by current
  // congestion information, then take the first with a free adaptive VC.
  RouteResult ordered = ivc.route;
  routing_->orderBySelection(*mesh_, *congestion_, id_, head, ordered);
  for (int i = 0; i < ordered.numAdaptive; ++i) {
    const int port = portIdx(ordered.adaptiveDirs[i]);
    const int vc = pickAdaptiveVc(port, head);
    if (vc >= 0) {
      out.outPort = port;
      out.outVc = vc;
      return true;
    }
  }
  // Fall back to the escape VC on the dimension-ordered direction
  // (Duato's protocol: always eventually available).
  const int escPort = portIdx(ivc.route.escapeDir);
  const int escVc = layout_.firstVcOf(head.msgClass);
  if (outVcAvailable(escPort, escVc, head.pktFlits)) {
    out.outPort = escPort;
    out.outVc = escVc;
    return true;
  }
  (void)now;
  return false;
}

ArbCandidate Router::makeCandidate(const Flit& f, VcClass outClass,
                                   Cycle now) const {
  ArbCandidate c;
  c.flit = &f;
  c.routerApp = appTag_;
  c.outVcClass = outClass;
  c.native = isNative(f);
  c.now = now;
  return c;
}

void Router::vcAllocate(Cycle now) {
  vaRequests_.clear();
  if (pendingVa_ == 0) return;
  // VA input arbitration: each WaitingVa VC independently selects one
  // output VC to request. No inter-flow contention; no policy hook.
  for (int port = 0; port < kNumPorts; ++port) {
    std::uint64_t mask = waitingMask_[static_cast<size_t>(port)];
    while (mask != 0) {
      const int vc = std::countr_zero(mask);
      mask &= mask - 1;
      InputVc& ivc = inVc(port, vc);
      RAIR_DCHECK(ivc.state == VcState::WaitingVa);
      if (ivc.ready > now) continue;
      VaRequest req;
      if (selectOutputVc(now, port, vc, req)) vaRequests_.push_back(req);
    }
  }

  if (vaRequests_.empty()) return;
  // VA output arbitration: one winner per contested output VC, chosen by
  // policy priority with round-robin tie-break over input-VC ids.
  // Group requests by output VC (requests are few; linear scan is fine).
  std::sort(vaRequests_.begin(), vaRequests_.end(),
            [](const VaRequest& a, const VaRequest& b) {
              if (a.outPort != b.outPort) return a.outPort < b.outPort;
              return a.outVc < b.outVc;
            });
  const int totalVcs = layout_.totalVcs();
  for (size_t i = 0; i < vaRequests_.size();) {
    size_t j = i;
    while (j < vaRequests_.size() &&
           vaRequests_[j].outPort == vaRequests_[i].outPort &&
           vaRequests_[j].outVc == vaRequests_[i].outVc) {
      ++j;
    }
    const int outPort = vaRequests_[i].outPort;
    const int outVcIdx = vaRequests_[i].outVc;
    const VcClass outClass = layout_.typeOf(outVcIdx);
    // Find the max-priority request; ties resolved round-robin by flat
    // input VC id relative to the per-output-VC pointer.
    const size_t rrSlot = static_cast<size_t>(outPort * totalVcs + outVcIdx);
    const int rrFrom = vaRr_[rrSlot];
    std::uint64_t bestPrio = 0;
    int bestDist = -1;
    size_t best = i;
    for (size_t k = i; k < j; ++k) {
      const auto& r = vaRequests_[k];
      const InputVc& ivc = inVc(r.inPort, r.inVc);
      const std::uint64_t prio = policy_->priority(
          ArbStage::VaOut, makeCandidate(ivc.buf.front(), outClass, now),
          policyState_.get());
      const int flatId = r.inPort * totalVcs + r.inVc;
      const int dist =
          (flatId - rrFrom + kNumPorts * totalVcs) % (kNumPorts * totalVcs);
      // Prefer higher priority; among equals, smaller round-robin distance.
      if (bestDist < 0 || prio > bestPrio ||
          (prio == bestPrio && dist < bestDist)) {
        bestPrio = prio;
        bestDist = dist;
        best = k;
      }
    }
    const auto& win = vaRequests_[best];
    InputVc& ivc = inVc(win.inPort, win.inVc);
    OutputVc& ovc = outVc(win.outPort, win.outVc);
    (isNative(ivc.buf.front()) ? counters_.vaGrantsNative
                               : counters_.vaGrantsForeign)++;
    if (layout_.isEscape(win.outVc)) ++counters_.escapeAllocations;
    RAIR_DCHECK(
        outVcAvailable(win.outPort, win.outVc,
                       inVc(win.inPort, win.inVc).buf.front().pktFlits));
    {
      const bool wasFree = countsAsFree(ovc, win.outVc);
      ovc.allocated = true;
      noteOutVcFreeChange(win.outPort, win.outVc, wasFree);
    }
    ovc.ownerPort = win.inPort;
    ovc.ownerVc = win.inVc;
    ivc.state = VcState::Active;
    ivc.outPort = win.outPort;
    ivc.outVc = win.outVc;
    ivc.ready = now + 1;  // SA may start next cycle
    --pendingVa_;
    ++numActive_;
    setStateBit(waitingMask_, win.inPort, win.inVc, false);
    setStateBit(activeMask_, win.inPort, win.inVc, true);
    vaRr_[rrSlot] = (win.inPort * totalVcs + win.inVc + 1) %
                    (kNumPorts * totalVcs);
    i = j;
  }
}

void Router::switchAllocateAndTraverse(Cycle now) {
  flitsMovedLastCycle_ = flitsMovedThisCycle_;
  flitsMovedThisCycle_ = 0;

  // SA input arbitration: at most one input VC per input port wins access
  // to the port's crossbar input.
  saInWinners_.clear();
  if (numActive_ == 0) return;
  const int totalVcs = layout_.totalVcs();
  std::uint32_t requestedOutPorts = 0;
  for (int port = 0; port < kNumPorts; ++port) {
    std::uint64_t bestPrio = 0;
    int bestDist = -1;
    int bestVc = -1;
    std::uint64_t mask = activeMask_[static_cast<size_t>(port)];
    while (mask != 0) {
      const int vc = std::countr_zero(mask);
      mask &= mask - 1;
      const InputVc& ivc = inVc(port, vc);
      RAIR_DCHECK(ivc.state == VcState::Active);
      if (ivc.ready > now || ivc.buf.empty()) continue;
      if (stalledOutPorts_ & (1u << ivc.outPort)) continue;  // fault stall
      const OutputVc& ovc = outVc(ivc.outPort, ivc.outVc);
      if (ovc.credits <= 0) continue;  // no downstream buffer space
      const std::uint64_t prio = policy_->priority(
          ArbStage::SaIn,
          makeCandidate(ivc.buf.front(), layout_.typeOf(ivc.outVc), now),
          policyState_.get());
      const int dist = (vc - saInRr_[static_cast<size_t>(port)] + totalVcs) %
                       totalVcs;
      if (bestDist < 0 || prio > bestPrio ||
          (prio == bestPrio && dist < bestDist)) {
        bestPrio = prio;
        bestDist = dist;
        bestVc = vc;
      }
    }
    if (bestVc >= 0) {
      const InputVc& ivc = inVc(port, bestVc);
      saInWinners_.push_back({port, bestVc, ivc.outPort, ivc.outVc});
      requestedOutPorts |= 1u << ivc.outPort;
    }
  }
  if (saInWinners_.empty()) return;

  // SA output arbitration: one winner per requested output port
  // (ascending port order, same as scanning all of them).
  while (requestedOutPorts != 0) {
    const int outPort = std::countr_zero(requestedOutPorts);
    requestedOutPorts &= requestedOutPorts - 1;
    std::uint64_t bestPrio = 0;
    int bestDist = -1;
    int best = -1;
    for (size_t k = 0; k < saInWinners_.size(); ++k) {
      const auto& w = saInWinners_[k];
      if (w.outPort != outPort) continue;
      const InputVc& ivc = inVc(w.inPort, w.inVc);
      const std::uint64_t prio = policy_->priority(
          ArbStage::SaOut,
          makeCandidate(ivc.buf.front(), layout_.typeOf(w.outVc), now),
          policyState_.get());
      const int dist =
          (w.inPort - saOutRr_[static_cast<size_t>(outPort)] + kNumPorts) %
          kNumPorts;
      if (bestDist < 0 || prio > bestPrio ||
          (prio == bestPrio && dist < bestDist)) {
        bestPrio = prio;
        bestDist = dist;
        best = static_cast<int>(k);
      }
    }
    if (best < 0) continue;

    // Switch traversal of the winner.
    const auto& w = saInWinners_[static_cast<size_t>(best)];
    InputVc& ivc = inVc(w.inPort, w.inVc);
    OutputVc& ovc = outVc(w.outPort, w.outVc);
    Flit f = ivc.buf.front();
    ivc.buf.pop_front();
    reclassifyOccupancy(ivc);
    --ovc.credits;
    RAIR_DCHECK(ovc.credits >= 0);
    outLinks_[static_cast<size_t>(w.outPort)]->sendFlit(now, f, w.outVc);
    if (LinkLayer* in = inLinks_[static_cast<size_t>(w.inPort)])
      in->sendCredit(now, w.inVc);
    ++flitsMovedThisCycle_;
    ++counters_.flitsTraversed;
    ++counters_.portFlits[static_cast<size_t>(w.outPort)];
    (isNative(f) ? counters_.saGrantsNative : counters_.saGrantsForeign)++;
    saOutRr_[static_cast<size_t>(outPort)] = (w.inPort + 1) % kNumPorts;
    saInRr_[static_cast<size_t>(w.inPort)] = (w.inVc + 1) % totalVcs;

    if (isTail(f.type)) {
      ivc.outPort = -1;
      ivc.outVc = -1;
      ivc.route = RouteResult{};
      {
        const bool wasFree = countsAsFree(ovc, w.outVc);
        ovc.allocated = false;
        noteOutVcFreeChange(w.outPort, w.outVc, wasFree);
      }
      ovc.ownerPort = -1;
      ovc.ownerVc = -1;
      --numActive_;
      setStateBit(activeMask_, w.inPort, w.inVc, false);
      if (ivc.buf.empty()) {
        ivc.state = VcState::Idle;
        ivc.pktId = 0;
      } else {
        // Non-atomic VC: the next queued packet surfaces; route it.
        RAIR_CHECK_MSG(!atomicVcs_ && isHead(ivc.buf.front().type),
                       "non-head flit surfaced behind a tail");
        ivc.state = VcState::Routing;
        ivc.ready = now + 1;
        ivc.pktId = ivc.buf.front().pkt;
        ++pendingRc_;
        setStateBit(routingMask_, w.inPort, w.inVc, true);
      }
    }
  }
}

void Router::endCycle(Cycle now) {
  // O(1): the occupancy registers are maintained incrementally.
  prevOccupancy_ = occupancy();
  // Link-layer per-cycle hooks: this router is the upstream endpoint of
  // its out-links and the downstream endpoint of its in-links. Running
  // them here — after ST sent this cycle's flit and credits — keeps each
  // wire single-writer-per-phase (see link_layer.h). Only non-ideal
  // links register for ticks (connectIn/connectOut), so an ideal network
  // pays nothing per cycle — exactly the pre-refactor loop.
  for (int i = 0; i < numTickOut_; ++i)
    tickOut_[static_cast<size_t>(i)]->tickUpstream(now);
  for (int i = 0; i < numTickIn_; ++i)
    tickIn_[static_cast<size_t>(i)]->tickDownstream(now);
}

void Router::save(snapshot::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(inputs_.size()));
  for (const InputVc& ivc : inputs_) {
    w.u8(static_cast<std::uint8_t>(ivc.state));
    snapshot::saveRing(w, ivc.buf, snapshot::saveFlit);
    snapshot::saveRoute(w, ivc.route);
    w.i32(ivc.outPort);
    w.i32(ivc.outVc);
    w.u64(ivc.ready);
    w.u8(ivc.occClass);
    w.u64(ivc.pktId);
  }
  for (const OutputVc& ovc : outputs_) {
    w.i32(ovc.credits);
    w.boolean(ovc.allocated);
    w.i32(ovc.ownerPort);
    w.i32(ovc.ownerVc);
  }
  for (const int rr : vaRr_) w.i32(rr);
  for (const int rr : saInRr_) w.i32(rr);
  for (const int rr : saOutRr_) w.i32(rr);
  w.i32(prevOccupancy_.nativeOccupiedVcs);
  w.i32(prevOccupancy_.foreignOccupiedVcs);
  w.u64(counters_.vaGrantsNative);
  w.u64(counters_.vaGrantsForeign);
  w.u64(counters_.saGrantsNative);
  w.u64(counters_.saGrantsForeign);
  w.u64(counters_.escapeAllocations);
  w.u64(counters_.flitsTraversed);
  for (const std::uint64_t f : counters_.portFlits) w.u64(f);
  w.i32(flitsMovedThisCycle_);
  w.i32(flitsMovedLastCycle_);
  w.i32(occNative_);
  w.i32(occForeign_);
  for (const int f : freeAdaptive_) w.i32(f);
  w.i32(pendingRc_);
  w.i32(pendingVa_);
  w.i32(numActive_);
  for (const std::uint64_t m : routingMask_) w.u64(m);
  for (const std::uint64_t m : waitingMask_) w.u64(m);
  for (const std::uint64_t m : activeMask_) w.u64(m);
  w.boolean(policyState_ != nullptr);
  if (policyState_) policyState_->save(w);
}

void Router::restore(snapshot::Reader& r) {
  RAIR_CHECK_MSG(r.u32() == inputs_.size(),
                 "router restore: VC count mismatch");
  for (InputVc& ivc : inputs_) {
    ivc.state = static_cast<VcState>(r.u8());
    snapshot::restoreRing(r, ivc.buf, snapshot::restoreFlit);
    snapshot::restoreRoute(r, ivc.route);
    ivc.outPort = r.i32();
    ivc.outVc = r.i32();
    ivc.ready = r.u64();
    ivc.occClass = r.u8();
    ivc.pktId = r.u64();
  }
  for (OutputVc& ovc : outputs_) {
    ovc.credits = r.i32();
    ovc.allocated = r.boolean();
    ovc.ownerPort = r.i32();
    ovc.ownerVc = r.i32();
  }
  for (int& rr : vaRr_) rr = r.i32();
  for (int& rr : saInRr_) rr = r.i32();
  for (int& rr : saOutRr_) rr = r.i32();
  prevOccupancy_.nativeOccupiedVcs = r.i32();
  prevOccupancy_.foreignOccupiedVcs = r.i32();
  counters_.vaGrantsNative = r.u64();
  counters_.vaGrantsForeign = r.u64();
  counters_.saGrantsNative = r.u64();
  counters_.saGrantsForeign = r.u64();
  counters_.escapeAllocations = r.u64();
  counters_.flitsTraversed = r.u64();
  for (std::uint64_t& f : counters_.portFlits) f = r.u64();
  flitsMovedThisCycle_ = r.i32();
  flitsMovedLastCycle_ = r.i32();
  occNative_ = r.i32();
  occForeign_ = r.i32();
  for (int& f : freeAdaptive_) f = r.i32();
  pendingRc_ = r.i32();
  pendingVa_ = r.i32();
  numActive_ = r.i32();
  for (std::uint64_t& m : routingMask_) m = r.u64();
  for (std::uint64_t& m : waitingMask_) m = r.u64();
  for (std::uint64_t& m : activeMask_) m = r.u64();
  const bool hasPolicyState = r.boolean();
  RAIR_CHECK_MSG(hasPolicyState == (policyState_ != nullptr),
                 "router restore: policy-state presence mismatch");
  if (policyState_) policyState_->restore(r);
}

}  // namespace rair
