// The assembled on-chip network: routers, NICs, links, and the side-band
// congestion-information network used by non-local adaptive routing.
#pragma once

#include <memory>
#include <vector>

#include "link/link_layer.h"
#include "link/retx.h"
#include "policy/policy.h"
#include "region/region_map.h"
#include "router/router.h"
#include "routing/routing.h"
#include "sim/nic.h"
#include "topology/mesh.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair {

struct NetworkConfig {
  int numClasses = 1;
  /// VCs per message class, including the escape VC. The paper's synthetic
  /// runs use 5 here (1 escape + 2 regional + 2 global — the "roughly the
  /// same" split of Sec. VI); Table 1's full-system config uses 4.
  int vcsPerClass = 5;
  /// Tag adaptive VCs Regional/Global (RAIR's VC regionalization). Safe to
  /// enable for non-RAIR policies (they ignore the tag); kept explicit so
  /// baselines run the exact canonical router.
  bool rairPartition = false;
  /// Global VCs per class (-1: half the adaptive VCs). Ablation knob.
  int globalVcsPerClass = -1;
  int vcDepth = 5;      ///< Table 1: 5-flit VCs
  /// Atomic VC allocation (Table 1's configuration, and the default): an
  /// adaptive VC is (re)allocated only when its downstream buffer is
  /// empty, so it holds one packet at a time. When false, packets queue
  /// back-to-back inside adaptive VC FIFOs (allocation then requires
  /// credits for the whole packet, which keeps the escape-path deadlock
  /// argument valid); escape VCs are always atomic.
  bool atomicVcs = true;
  Cycle linkLatency = 1;
  /// Which link-layer implementation every channel is built with. Ideal
  /// (the default) is the paper's lossless channel; Retx adds
  /// CRC/retransmission and enables corrupt_flit fault plans.
  LinkLayerKind linkLayer = LinkLayerKind::Ideal;
};

/// Owns every hardware element; advances them one cycle at a time.
class Network final : public CongestionView {
 public:
  Network(const Mesh& mesh, const RegionMap& regions, NetworkConfig config,
          RoutingKind routingKind, const ArbiterPolicy& policy);

  /// One clock edge: NICs first (inject/eject), then the router pipeline
  /// phases, then congestion-information propagation.
  void step(Cycle now);

  // --- Shard-callable phase slices (sim/shard.h) -------------------------
  // The sharded engine advances disjoint contiguous node ranges through
  // two fused phases with a barrier between them (and runs the congestion
  // retire once, on the coordinator, at that barrier). Each slice touches
  // only range-local state: a node's own NIC/router buffers plus its own
  // side of the attached links — the two DelayPipes of a link (flits
  // downstream, credits upstream) are each written by exactly one endpoint
  // per phase, so disjoint ranges never race and the fused schedule is
  // byte-identical to step() for any partition.

  /// Fused phase A over [begin, end): NIC tick, then router beginCycle /
  /// routeCompute / vcAllocate per node. Reads the congestion table
  /// (stable until phaseRetireCongestion), writes node-local state only.
  void phaseInjectRoute(Cycle now, NodeId begin, NodeId end);
  /// Run once between phase A and phase B: retires the congestion table
  /// (current aggregates become the previous-cycle values phase B reads).
  void phaseRetireCongestion();
  /// Fused phase B over [begin, end): switchAllocateAndTraverse / endCycle
  /// per node, then the node's congestion-aggregate row (own free-VC count
  /// combined with the neighbors' retired previous-cycle rows).
  void phaseTraversePropagate(Cycle now, NodeId begin, NodeId end);

  Nic& nic(NodeId n) { return nics_[static_cast<size_t>(n)]; }
  const Nic& nic(NodeId n) const { return nics_[static_cast<size_t>(n)]; }
  Router& router(NodeId n) { return routers_[static_cast<size_t>(n)]; }
  const Router& router(NodeId n) const {
    return routers_[static_cast<size_t>(n)];
  }
  const Mesh& mesh() const { return *mesh_; }
  const NetworkConfig& config() const { return config_; }
  const VcLayout& layout() const { return layout_; }
  const RoutingAlgorithm& routing() const { return *routing_; }
  /// Mutable routing access for the fault layer (attaching/detaching the
  /// degraded-topology tables). Never used on the cycle hot path.
  RoutingAlgorithm& routingMut() { return *routing_; }

  /// Flits that traversed any switch in the last completed cycle.
  int flitsMovedLastCycle() const;

  /// Cumulative switch traversals (flit-hops) summed over all routers.
  std::uint64_t totalFlitsTraversed() const;

  /// Uniform view of every link in wiring order (oracle sweeps, tools).
  const std::vector<LinkLayer*>& links() const { return links_; }

  /// Network-wide link-layer fault totals (0 on ideal links).
  std::uint64_t totalCorruptedFlits() const;
  std::uint64_t totalRetransmittedFlits() const;

  /// True when every router, NIC and link holds no traffic.
  bool quiescent() const;

  // CongestionView:
  int freeVcsThrough(NodeId n, Dir d) const override;
  int aggregatedFree(NodeId n, Dir d, int hops) const override;

  /// Snapshot hooks: one named section per hardware element plus the
  /// side-band congestion network. Wiring and config are reconstructed,
  /// not serialized — restore() requires an identically built network.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  void wire();
  void propagateCongestion();
  /// One node's congestion-aggregate row, from its post-traversal free-VC
  /// counts and the neighbors' aggPrev_ rows (shared by propagateCongestion
  /// and phaseTraversePropagate).
  void propagateCongestionRow(NodeId n);

  const Mesh* mesh_;
  const RegionMap* regions_;
  NetworkConfig config_;
  VcLayout layout_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  const ArbiterPolicy* policy_;

  // Contiguous element storage: the per-cycle phase loops stride through
  // these directly instead of chasing one heap pointer per element. All
  // element vectors are reserved to their exact final size before wiring,
  // so the LinkLayer*/element pointers handed out during wire() stay
  // valid. Exactly one of the two typed link vectors is populated (per
  // config_.linkLayer); links_ is the uniform view over it.
  std::vector<Router> routers_;
  std::vector<Nic> nics_;
  std::vector<IdealLink> idealLinks_;
  std::vector<RetxLink> retxLinks_;
  std::vector<LinkLayer*> links_;

  // Mesh adjacency flattened once at construction: [node][4 router dirs]
  // -> neighbor id or -1. propagateCongestion runs every cycle and would
  // otherwise recompute coordinate arithmetic per (node, dir).
  std::vector<NodeId> neighborTable_;

  // Side-band congestion network. agg_[n][d][h] = sum of free adaptive VC
  // counts through port d over routers n, n+1d, ... n+hd (h+1 terms), with
  // the h-hop term h cycles old (one-hop-per-cycle wire propagation).
  int maxHops_;
  std::vector<int> agg_;      // [node][4 dirs][maxHops_]
  std::vector<int> aggPrev_;  // previous cycle's values
  int aggAt(const std::vector<int>& v, NodeId n, int dirIdx, int h) const {
    return v[(static_cast<size_t>(n) * 4 + static_cast<size_t>(dirIdx)) *
                 static_cast<size_t>(maxHops_) +
             static_cast<size_t>(h)];
  }
  int& aggAt(std::vector<int>& v, NodeId n, int dirIdx, int h) {
    return v[(static_cast<size_t>(n) * 4 + static_cast<size_t>(dirIdx)) *
                 static_cast<size_t>(maxHops_) +
             static_cast<size_t>(h)];
  }
};

}  // namespace rair
