// Named interference-reduction schemes: the cross product of a routing
// algorithm and an arbitration policy, as compared in the paper's
// evaluation (RO_RR, RO_Rank, RA_DBAR, RA_RAIR, plus RAIR ablations).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/rair_config.h"
#include "policy/policy.h"
#include "routing/routing.h"

namespace rair {

enum class PolicyKind : std::uint8_t {
  RoundRobin,  ///< RO_RR
  AgeBased,    ///< RO_Age (oldest-first)
  StcRank,     ///< RO_Rank (idealized STC)
  Rair,        ///< RA_RAIR (and its ablation modes via RairConfig)
};

struct SchemeSpec {
  std::string label;
  RoutingKind routing = RoutingKind::LocalAdaptive;
  PolicyKind policy = PolicyKind::RoundRobin;
  RairConfig rair;               ///< used when policy == Rair
  Cycle stcBatchPeriod = 16'000; ///< used when policy == StcRank

  /// Whether this scheme needs the regional/global VC tagging in hardware.
  bool needsRairPartition() const { return policy == PolicyKind::Rair; }
};

/// Builds the policy object for a scheme. `appIntensities[app]` is the
/// offered load of each application in flits/cycle/node — the oracle input
/// for RO_Rank's optimal ranking (the paper assumes STC "is able to always
/// find the optimal application rankings"); ignored by the other policies.
std::unique_ptr<ArbiterPolicy> makePolicy(
    const SchemeSpec& scheme, const std::vector<double>& appIntensities);

// ---- The paper's scheme line-up ------------------------------------------

/// RO_RR on the given routing.
SchemeSpec schemeRoRr(RoutingKind routing = RoutingKind::LocalAdaptive);
/// RO_Rank (idealized STC).
SchemeSpec schemeRoRank(RoutingKind routing = RoutingKind::LocalAdaptive);
/// RA_DBAR: round-robin arbitration on DBAR routing.
SchemeSpec schemeRaDbar();
/// RA_RAIR: full RAIR on the given routing.
SchemeSpec schemeRaRair(RoutingKind routing = RoutingKind::LocalAdaptive);
/// RAIR with MSP at VA only (Fig. 9's RAIR_VA).
SchemeSpec schemeRairVaOnly(RoutingKind routing = RoutingKind::LocalAdaptive);
/// RAIR without DPA, native always high (Fig. 12's RAIR_NativeH).
SchemeSpec schemeRairNativeHigh();
/// RAIR without DPA, foreign always high (Fig. 12's RAIR_ForeignH).
SchemeSpec schemeRairForeignHigh();

}  // namespace rair
