#include "sim/simulator.h"

#include <cinttypes>
#include <cstdio>

#include "common/assert.h"

namespace rair {

const char* terminationName(Termination t) {
  switch (t) {
    case Termination::Drained: return "drained";
    case Termination::DrainLimit: return "drain_limit";
    case Termination::ProgressTimeout: return "progress_timeout";
  }
  return "unknown";
}

std::optional<Termination> terminationFromName(std::string_view name) {
  if (name == "drained") return Termination::Drained;
  if (name == "drain_limit") return Termination::DrainLimit;
  if (name == "progress_timeout") return Termination::ProgressTimeout;
  return std::nullopt;
}

Simulator::Simulator(const Mesh& mesh, const RegionMap& regions,
                     SimConfig config, const ArbiterPolicy& policy,
                     int numApps)
    : mesh_(&mesh),
      config_(config),
      net_(std::make_unique<Network>(mesh, regions, config.net,
                                     config.routing, policy)),
      stats_(numApps) {
  for (NodeId n = 0; n < mesh.numNodes(); ++n) {
    net_->nic(n).setDeliverFn(
        [this](PacketId id, Cycle when, std::uint16_t hops) {
          onDelivered(id, when, hops);
        });
    net_->nic(n).setInjectFn([this](PacketId id, Cycle when) {
      auto it = ledger_.find(id);
      RAIR_DCHECK(it != ledger_.end());
      it->second.injectCycle = when;
    });
  }
}

void Simulator::addSource(std::unique_ptr<TrafficSource> src) {
  sources_.push_back(std::move(src));
}

PacketId Simulator::createPacket(NodeId src, NodeId dst, AppId app,
                                 MsgClass cls, std::uint16_t numFlits) {
  RAIR_CHECK(mesh_->contains(src) && mesh_->contains(dst));
  RAIR_CHECK_MSG(src != dst, "self-addressed packet");
  Packet p;
  p.id = nextId_++;
  p.src = src;
  p.dst = dst;
  p.app = app;
  p.msgClass = cls;
  p.numFlits = numFlits;
  p.createCycle = now_;
  stats_.onPacketCreated(p);
  ++created_;
  net_->nic(src).enqueue(p);
  ledger_.emplace(p.id, p);
  return p.id;
}

void Simulator::injectAt(Cycle when, NodeId src, NodeId dst, AppId app,
                         MsgClass cls, std::uint16_t numFlits) {
  RAIR_CHECK(when >= now_);
  deferred_.push(Deferred{when, src, dst, app, cls, numFlits});
}

void Simulator::onDelivered(PacketId id, Cycle when, std::uint16_t hops) {
  auto it = ledger_.find(id);
  RAIR_CHECK_MSG(it != ledger_.end(), "delivery of unknown packet");
  Packet& p = it->second;
  p.ejectCycle = when;
  p.hops = hops;
  stats_.onPacketDelivered(p);
  ++delivered_;
  if (stats_.inMeasurementWindow(p.createCycle))
    measuredFlitsDelivered_ += p.numFlits;
  if (deliveryHook_) deliveryHook_(p, *this);
  if (deliveryObserver_) deliveryObserver_(p);
  ledger_.erase(it);
}

RunResult Simulator::run() {
  const Cycle measureEnd = config_.warmupCycles + config_.measureCycles;
  const Cycle hardStop = measureEnd + config_.drainLimit;
  stats_.startMeasurement(config_.warmupCycles);
  stats_.stopMeasurement(measureEnd);

  Cycle lastProgress = 0;
  std::uint64_t lastDelivered = 0;
  bool drained = false;
  bool stalled = false;

  for (now_ = 0; now_ < hardStop; ++now_) {
    while (!deferred_.empty() && deferred_.top().when <= now_) {
      const Deferred d = deferred_.top();
      deferred_.pop();
      createPacket(d.src, d.dst, d.app, d.cls, d.numFlits);
    }
    for (auto& src : sources_) src->tick(*this);
    net_->step(now_);

    if (net_->flitsMovedLastCycle() > 0 || delivered_ != lastDelivered ||
        ledger_.empty()) {
      lastProgress = now_;
      lastDelivered = delivered_;
    } else if (now_ - lastProgress > config_.progressTimeout) {
      // Deadlock/livelock tripwire. Reported as a structured outcome so a
      // batch driver (e.g. the campaign runner) can record the failure and
      // keep going instead of losing the whole process.
      std::fprintf(stderr,
                   "simulator: no forward progress for %" PRIu64
                   " cycles at cycle %" PRIu64 " with %zu packets in flight\n",
                   static_cast<std::uint64_t>(config_.progressTimeout),
                   static_cast<std::uint64_t>(now_), ledger_.size());
      stalled = true;
      break;
    }

    if (now_ + 1 >= measureEnd && stats_.measuredInFlight() == 0) {
      drained = true;
      ++now_;
      break;
    }
  }

  RunResult r;
  r.stats = std::move(stats_);
  r.cyclesRun = now_;
  r.fullyDrained = drained;
  r.termination = drained ? Termination::Drained
                          : (stalled ? Termination::ProgressTimeout
                                     : Termination::DrainLimit);
  r.packetsCreated = created_;
  r.packetsDelivered = delivered_;
  r.deliveredFlitRate =
      static_cast<double>(measuredFlitsDelivered_) /
      (static_cast<double>(config_.measureCycles) * mesh_->numNodes());
  return r;
}

}  // namespace rair
