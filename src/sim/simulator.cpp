#include "sim/simulator.h"

#include <cinttypes>
#include <cstdio>

#include "common/assert.h"
#include "snapshot/codec.h"

namespace rair {

const char* terminationName(Termination t) {
  switch (t) {
    case Termination::Drained: return "drained";
    case Termination::DrainLimit: return "drain_limit";
    case Termination::ProgressTimeout: return "progress_timeout";
  }
  return "unknown";
}

std::optional<Termination> terminationFromName(std::string_view name) {
  if (name == "drained") return Termination::Drained;
  if (name == "drain_limit") return Termination::DrainLimit;
  if (name == "progress_timeout") return Termination::ProgressTimeout;
  return std::nullopt;
}

Simulator::Simulator(const Mesh& mesh, const RegionMap& regions,
                     SimConfig config, const ArbiterPolicy& policy,
                     int numApps)
    : mesh_(&mesh),
      config_(config),
      net_(std::make_unique<Network>(mesh, regions, config.net,
                                     config.routing, policy)),
      stats_(numApps) {
  for (NodeId n = 0; n < mesh.numNodes(); ++n) net_->nic(n).setEvents(this);
  if (config_.shardThreads >= 1)
    engine_ = std::make_unique<ShardEngine>(
        *net_, static_cast<NicEvents&>(*this), config_.shardThreads);
  snapTripwire_.sim = this;
}

void Simulator::setDeliveryHook(DeliveryHook hook) {
  deliveryHook_ = std::move(hook);
  // A hook creates packets mid-delivery; the staged replay of the sharded
  // engine cannot reproduce the single-threaded interleaving of those
  // injections, so hooked simulations step single-threaded.
  if (deliveryHook_ && engine_ != nullptr) engine_.reset();
}

void Simulator::SnapshotTripwire::onCycleBegin(Cycle now) {
  if (now == savePoint || (every != 0 && now != 0 && now % every == 0))
    hook(*sim, now);
}

void Simulator::setSnapshotHook(SnapshotHook hook, Cycle savePoint,
                                Cycle every) {
  observers_.detach(&snapTripwire_);
  snapTripwire_.hook = std::move(hook);
  snapTripwire_.savePoint = savePoint;
  snapTripwire_.every = every;
  if (snapTripwire_.hook) observers_.attach(&snapTripwire_);
}

void Simulator::addSource(std::unique_ptr<TrafficSource> src) {
  sources_.push_back(std::move(src));
}

PacketId Simulator::createPacket(NodeId src, NodeId dst, AppId app,
                                 MsgClass cls, std::uint16_t numFlits) {
  RAIR_CHECK(mesh_->contains(src) && mesh_->contains(dst));
  RAIR_CHECK_MSG(src != dst, "self-addressed packet");
  Packet& p = ledger_.acquire();  // valid until the next pool operation
  p.src = src;
  p.dst = dst;
  p.app = app;
  p.msgClass = cls;
  p.numFlits = numFlits;
  p.createCycle = now_;
  stats_.onPacketCreated(p);
  ++created_;
  const PacketId id = p.id;
  // Reachability gate: on a partitioned (degraded) topology a packet whose
  // destination is unreachable is dropped at creation — after the create
  // accounting, so RNG streams and the created census are unaffected.
  if (faultHook_ != nullptr && !faultHook_->deliverable(src, dst)) {
    faultDropPacket(id);
    return id;
  }
  net_->nic(src).enqueue(p);
  return id;
}

void Simulator::faultDropPacket(PacketId id) {
  RAIR_CHECK_MSG(ledger_.isLive(id), "fault drop of unknown packet");
  Packet p = ledger_.get(id);
  ledger_.release(id);
  stats_.onPacketDropped(p);
  ++droppedByFault_;
  droppedFlitsByFault_ += p.numFlits;
}

void Simulator::injectAt(Cycle when, NodeId src, NodeId dst, AppId app,
                         MsgClass cls, std::uint16_t numFlits) {
  RAIR_CHECK(when >= now_);
  deferred_.push(Deferred{when, src, dst, app, cls, numFlits});
}

void Simulator::onInjected(PacketId id, Cycle when) {
  ledger_.get(id).injectCycle = when;
}

void Simulator::onDelivered(PacketId id, Cycle when, std::uint16_t hops) {
  RAIR_CHECK_MSG(ledger_.isLive(id), "delivery of unknown packet");
  // Copy out and release first: a delivery hook may create packets, which
  // can grow the slab and would invalidate a reference into it.
  Packet p = ledger_.get(id);
  ledger_.release(id);
  p.ejectCycle = when;
  p.hops = hops;
  stats_.onPacketDelivered(p);
  ++delivered_;
  if (stats_.inMeasurementWindow(p.createCycle))
    measuredFlitsDelivered_ += p.numFlits;
  if (deliveryHook_) deliveryHook_(p, *this);
  observers_.notifyDelivery(p);
}

void Simulator::begin() {
  stats_.startMeasurement(config_.warmupCycles);
  stats_.stopMeasurement(config_.warmupCycles + config_.measureCycles);
}

void Simulator::stepCycle() {
  observers_.notifyCycleBegin(now_);
  while (!deferred_.empty() && deferred_.top().when <= now_) {
    const Deferred d = deferred_.top();
    deferred_.pop();
    createPacket(d.src, d.dst, d.app, d.cls, d.numFlits);
  }
  for (auto& src : sources_) src->tick(*this);
  if (engine_ != nullptr)
    engine_->step(now_);
  else
    net_->step(now_);
  if (net_->flitsMovedLastCycle() > 0 || delivered_ != lastDelivered_ ||
      ledger_.empty()) {
    lastProgress_ = now_;
    lastDelivered_ = delivered_;
  }
  observers_.notifyCycleEnd(now_);
  ++now_;
}

bool Simulator::snapshotSupported() const {
  if (deliveryHook_) return false;
  for (const auto& src : sources_)
    if (!src->snapshotSupported()) return false;
  return true;
}

void Simulator::save(snapshot::Writer& w) const {
  w.beginSection("meta");
  w.i32(mesh_->width());
  w.i32(mesh_->height());
  w.i32(net_->layout().totalVcs());
  w.i32(stats_.numApps());
  w.u32(static_cast<std::uint32_t>(sources_.size()));
  w.endSection();

  w.beginSection("sim");
  w.u64(now_);
  w.u64(created_);
  w.u64(delivered_);
  w.u64(measuredFlitsDelivered_);
  w.u64(droppedByFault_);
  w.u64(droppedFlitsByFault_);
  w.u64(lastProgress_);
  w.u64(lastDelivered_);
  w.endSection();

  w.beginSection("deferred");
  const auto& heap = deferred_.container();
  w.u32(static_cast<std::uint32_t>(heap.size()));
  for (const Deferred& d : heap) {
    w.u64(d.when);
    w.i32(d.src);
    w.i32(d.dst);
    w.u16(static_cast<std::uint16_t>(d.app));
    w.u8(static_cast<std::uint8_t>(d.cls));
    w.u16(d.numFlits);
  }
  w.endSection();

  w.beginSection("ledger");
  ledger_.save(w);
  w.endSection();

  w.beginSection("stats");
  stats_.save(w);
  w.endSection();

  w.beginSection("sources");
  for (const auto& src : sources_) {
    RAIR_CHECK_MSG(src->snapshotSupported(),
                   "save() on a snapshot-ineligible simulation");
    src->saveState(w);
  }
  w.endSection();

  net_->save(w);

  // Pending fault state rides as a trailing optional section: absent for
  // fault-free simulations (including a hook with an empty plan), so their
  // snapshot bytes are identical to a build with no hook attached.
  if (faultHook_ != nullptr && faultHook_->snapshotRelevant()) {
    w.beginSection("fault");
    faultHook_->save(w);
    w.endSection();
  }
}

void Simulator::restore(snapshot::Reader& r) {
  r.beginSection("meta");
  RAIR_CHECK_MSG(r.i32() == mesh_->width() && r.i32() == mesh_->height(),
                 "snapshot restore: mesh mismatch");
  RAIR_CHECK_MSG(r.i32() == net_->layout().totalVcs(),
                 "snapshot restore: VC layout mismatch");
  RAIR_CHECK_MSG(r.i32() == stats_.numApps(),
                 "snapshot restore: app count mismatch");
  RAIR_CHECK_MSG(r.u32() == sources_.size(),
                 "snapshot restore: source count mismatch");
  r.endSection();

  r.beginSection("sim");
  now_ = r.u64();
  created_ = r.u64();
  delivered_ = r.u64();
  measuredFlitsDelivered_ = r.u64();
  droppedByFault_ = r.u64();
  droppedFlitsByFault_ = r.u64();
  lastProgress_ = r.u64();
  lastDelivered_ = r.u64();
  r.endSection();

  r.beginSection("deferred");
  auto& heap = deferred_.container();
  heap.clear();
  const std::uint32_t numDeferred = r.u32();
  heap.reserve(numDeferred);
  for (std::uint32_t i = 0; i < numDeferred; ++i) {
    Deferred d;
    d.when = r.u64();
    d.src = r.i32();
    d.dst = r.i32();
    d.app = static_cast<AppId>(r.u16());
    d.cls = static_cast<MsgClass>(r.u8());
    d.numFlits = r.u16();
    heap.push_back(d);
  }
  r.endSection();

  r.beginSection("ledger");
  ledger_.restore(r);
  r.endSection();

  r.beginSection("stats");
  stats_.restore(r);
  r.endSection();

  r.beginSection("sources");
  for (auto& src : sources_) src->restoreState(r);
  r.endSection();

  net_->restore(r);

  if (!r.atEnd()) {
    RAIR_CHECK_MSG(faultHook_ != nullptr,
                   "snapshot carries fault state but no fault hook is set");
    r.beginSection("fault");
    faultHook_->restore(r);
    r.endSection();
  } else {
    RAIR_CHECK_MSG(faultHook_ == nullptr || !faultHook_->snapshotRelevant(),
                   "fault hook expects a fault section the snapshot lacks");
  }
}

RunResult Simulator::run() {
  const Cycle measureEnd = config_.warmupCycles + config_.measureCycles;
  const Cycle hardStop = measureEnd + config_.drainLimit;
  begin();

  bool drained = false;
  bool stalled = false;

  while (now_ < hardStop) {
    const Cycle cur = now_;
    stepCycle();

    // stepCycle() advanced lastProgress_ to `cur` if this cycle made
    // progress, so the subtraction is 0 on any progressing cycle.
    if (cur - lastProgress_ > config_.progressTimeout) {
      // Deadlock/livelock tripwire. Reported as a structured outcome so a
      // batch driver (e.g. the campaign runner) can record the failure and
      // keep going instead of losing the whole process.
      std::fprintf(stderr,
                   "simulator: no forward progress for %" PRIu64
                   " cycles at cycle %" PRIu64 " with %zu packets in flight\n",
                   static_cast<std::uint64_t>(config_.progressTimeout),
                   static_cast<std::uint64_t>(cur), ledger_.inFlight());
      stalled = true;
      now_ = cur;  // report the cycle the tripwire fired on
      break;
    }

    if (cur + 1 >= measureEnd && stats_.measuredInFlight() == 0) {
      drained = true;
      break;
    }
  }

  RunResult r;
  r.stats = std::move(stats_);
  r.cyclesRun = now_;
  r.fullyDrained = drained;
  r.termination = drained ? Termination::Drained
                          : (stalled ? Termination::ProgressTimeout
                                     : Termination::DrainLimit);
  r.packetsCreated = created_;
  r.packetsDelivered = delivered_;
  r.flitHops = net_->totalFlitsTraversed();
  r.deliveredFlitRate =
      static_cast<double>(measuredFlitsDelivered_) /
      (static_cast<double>(config_.measureCycles) * mesh_->numNodes());
  return r;
}

}  // namespace rair
