// Scenario runner: assembles a simulator from a scheme spec and a set of
// per-application traffic specs, runs it, and returns per-application APL
// — the shape every figure in the paper reports.
//
// The entry point is a single ScenarioSpec value type with named-chaining
// setters:
//
//   ScenarioResult r = runScenario(ScenarioSpec(mesh, regions)
//                                      .withScheme(schemeRaRair())
//                                      .withApps(apps)
//                                      .withSeed(7)
//                                      .withFastWindows());
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"
#include "metrics/metrics.h"
#include "region/region_map.h"
#include "sim/scheme.h"
#include "sim/simulator.h"
#include "snapshot/options.h"
#include "traffic/generator.h"

namespace rair {

struct ScenarioResult {
  std::vector<double> appApl;  ///< per application (index = AppId)
  double meanApl = 0.0;        ///< over all measured packets
  RunResult run;

  /// Aggregate instrumentation of the run (absent when the spec disabled
  /// metrics collection with MetricsLevel::Off).
  std::optional<metrics::MetricsSummary> metrics;

  /// Degradation accounting of the fault plan (absent when the spec had no
  /// faults): drops, reroutes, unreachable pairs, degraded/recovery cycles.
  std::optional<fault::FaultStats> faultStats;

  /// Cycle the run resumed from via a checkpoint restore (0 when the run
  /// started from cycle zero). Volatile provenance, not a result — the
  /// simulated outcome is byte-identical either way.
  Cycle resumedFromCycle = 0;
  /// Whether the warm-up state was restored from the warm cache instead of
  /// simulated.
  bool warmRestored = false;

  /// Relative APL reduction of app `a` against a baseline result
  /// (positive = this scheme is faster). The paper's headline metric.
  /// A non-positive baseline APL (e.g. a cell that terminated via
  /// progress_timeout before measuring anything) yields 0 rather than a
  /// division by zero.
  double reductionVs(const ScenarioResult& baseline, AppId a) const {
    const double base = baseline.appApl[static_cast<size_t>(a)];
    if (!(base > 0.0)) return 0.0;
    return 1.0 - appApl[static_cast<size_t>(a)] / base;
  }
  double meanReductionVs(const ScenarioResult& baseline) const {
    if (!(baseline.meanApl > 0.0)) return 0.0;
    return 1.0 - meanApl / baseline.meanApl;
  }
};

/// Everything one scheme-on-one-workload run needs, as a single value
/// type. The mesh and region map are referenced, not owned — they must
/// outlive the spec.
struct ScenarioSpec {
  const Mesh* mesh = nullptr;
  const RegionMap* regions = nullptr;
  SimConfig config;
  SchemeSpec scheme;
  std::vector<AppTrafficSpec> apps;
  /// Chip-wide adversarial flood rate in flits/cycle/node (Fig. 17 uses
  /// 0.4); the flooder gets AppId = apps.size(). 0 disables it.
  double adversarialRate = 0.0;
  std::uint64_t seed = 1;
  /// Instrumentation level and sink configuration of the run.
  metrics::MetricsOptions metrics;
  /// Snapshot behaviour: warm-state caching and/or mid-run checkpoints.
  snapshot::SnapshotOptions snap;
  /// Timed fault events applied during the run (empty = fault-free). Part
  /// of the scenario identity: the plan enters warm/full snapshot keys.
  fault::FaultPlan faults;

  ScenarioSpec(const Mesh& m, const RegionMap& r) : mesh(&m), regions(&r) {}

  /// The configuration the simulator actually runs with: `config` with the
  /// routing algorithm and RAIR VC partition normalized from the scheme.
  SimConfig effectiveConfig() const {
    SimConfig cfg = config;
    cfg.routing = scheme.routing;
    cfg.net.rairPartition = scheme.needsRairPartition();
    return cfg;
  }

  /// The single source of truth for simulation windows: the paper's 10K
  /// warmup / 100K measured (Sec. V.A), or 5x-shrunk fast windows for
  /// smoke runs; both with a 500K drain limit.
  static SimConfig windowPreset(bool fast);

  // Named-chaining setters; each returns *this.
  ScenarioSpec& withConfig(const SimConfig& c) {
    config = c;
    return *this;
  }
  ScenarioSpec& withScheme(const SchemeSpec& s) {
    scheme = s;
    return *this;
  }
  ScenarioSpec& withApps(std::vector<AppTrafficSpec> a) {
    apps = std::move(a);
    return *this;
  }
  ScenarioSpec& withAdversarialRate(double rate) {
    adversarialRate = rate;
    return *this;
  }
  ScenarioSpec& withSeed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  /// Selects the link-layer implementation every channel is built with
  /// (default Ideal; Retx enables corrupt_flit fault plans).
  ScenarioSpec& withLinkLayer(LinkLayerKind kind) {
    config.net.linkLayer = kind;
    return *this;
  }
  /// Runs the simulation on the deterministic sharded cycle engine with
  /// `n` shards/worker threads (n >= 1); results and snapshots are
  /// byte-identical for every value, and to the default single-threaded
  /// engine. Excluded from warm/full scenario keys, so checkpoints and
  /// warm caches are shared across thread counts.
  ScenarioSpec& withThreads(int n) {
    config.shardThreads = n;
    return *this;
  }
  ScenarioSpec& withMetrics(const metrics::MetricsOptions& m) {
    metrics = m;
    return *this;
  }
  ScenarioSpec& withMetricsLevel(metrics::MetricsLevel level) {
    metrics.level = level;
    return *this;
  }
  /// Path prefix for the metrics file sinks (e.g. "out/fig11.").
  ScenarioSpec& withMetricsOut(std::string prefix) {
    metrics.outPrefix = std::move(prefix);
    return *this;
  }
  ScenarioSpec& withSnapshot(const snapshot::SnapshotOptions& s) {
    snap = s;
    return *this;
  }
  /// Attaches a fault plan; the runner assembles and arms a FaultInjector
  /// for it (and the oracle, when armed, becomes fault-aware).
  ScenarioSpec& withFaults(fault::FaultPlan plan) {
    faults = std::move(plan);
    return *this;
  }
  /// Enables end-of-warm-up state caching in `dir`.
  ScenarioSpec& withWarmCache(std::string dir) {
    snap.warmCacheDir = std::move(dir);
    return *this;
  }
  /// Enables mid-run checkpointing to `path` every `every` cycles (and
  /// resume from it when the file already exists for this exact spec).
  ScenarioSpec& withCheckpoint(std::string path, Cycle every = 25'000) {
    snap.checkpointPath = std::move(path);
    snap.checkpointEvery = every;
    return *this;
  }
  /// Like withCheckpoint, but the runner derives a per-run file inside
  /// `dir` from the full scenario key (what the campaign runner uses).
  ScenarioSpec& withCheckpointDir(std::string dir, Cycle every = 25'000) {
    snap.checkpointDir = std::move(dir);
    snap.checkpointEvery = every;
    return *this;
  }
  /// Overwrites only the window fields of `config` (warmup, measure,
  /// drain limit) with the preset, keeping network knobs intact.
  ScenarioSpec& withWindows(bool fast) {
    const SimConfig w = windowPreset(fast);
    config.warmupCycles = w.warmupCycles;
    config.measureCycles = w.measureCycles;
    config.drainLimit = w.drainLimit;
    return *this;
  }
  ScenarioSpec& withFastWindows() { return withWindows(true); }
  ScenarioSpec& withPaperWindows() { return withWindows(false); }
};

/// Runs one scheme on one workload.
ScenarioResult runScenario(const ScenarioSpec& spec);

/// A simulator assembled from a spec but not yet run — the building block
/// runScenario, the continuation tests and the divergence bisector share.
/// The policy must outlive the simulator.
struct AssembledScenario {
  int numApps = 0;
  std::unique_ptr<ArbiterPolicy> policy;
  std::unique_ptr<Simulator> sim;
  /// Present and attached when the spec carried a non-empty fault plan.
  /// Declared after `sim` so its destructor (which detaches from the
  /// simulator) runs first.
  std::unique_ptr<fault::FaultInjector> injector;
};

AssembledScenario assembleScenario(const ScenarioSpec& spec);

/// Simulates `spec` from cycle zero to exactly `atCycle` and writes a
/// checkpoint there — how tests and tools fabricate the "interrupted run"
/// half of a continuation check. Returns false when the spec is not
/// snapshot-eligible or the write fails.
bool writeScenarioCheckpoint(const ScenarioSpec& spec, Cycle atCycle,
                             const std::string& path);

}  // namespace rair
