// Scenario runner: assembles a simulator from a scheme spec and a set of
// per-application traffic specs, runs it, and returns per-application APL
// — the shape every figure in the paper reports.
#pragma once

#include <optional>
#include <vector>

#include "region/region_map.h"
#include "sim/scheme.h"
#include "sim/simulator.h"
#include "traffic/generator.h"

namespace rair {

struct ScenarioResult {
  std::vector<double> appApl;  ///< per application (index = AppId)
  double meanApl = 0.0;        ///< over all measured packets
  RunResult run;

  /// Relative APL reduction of app `a` against a baseline result
  /// (positive = this scheme is faster). The paper's headline metric.
  double reductionVs(const ScenarioResult& baseline, AppId a) const {
    return 1.0 - appApl[static_cast<size_t>(a)] /
                     baseline.appApl[static_cast<size_t>(a)];
  }
  double meanReductionVs(const ScenarioResult& baseline) const {
    return 1.0 - meanApl / baseline.meanApl;
  }
};

struct ScenarioOptions {
  /// Chip-wide adversarial flood rate in flits/cycle/node (Fig. 17 uses
  /// 0.4); the flooder gets AppId = apps.size().
  double adversarialRate = 0.0;
  std::uint64_t seed = 1;
};

/// Runs one scheme on one workload.
ScenarioResult runScenario(const Mesh& mesh, const RegionMap& regions,
                           SimConfig cfg, const SchemeSpec& scheme,
                           const std::vector<AppTrafficSpec>& apps,
                           const ScenarioOptions& opts = {});

}  // namespace rair
