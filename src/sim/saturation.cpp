#include "sim/saturation.h"

#include <limits>

#include "common/assert.h"

namespace rair {

double findSaturationRate(const std::function<double(double)>& aplAtRate,
                          const SaturationOptions& opts) {
  const double zeroLoad = aplAtRate(opts.zeroLoadRate);
  RAIR_CHECK_MSG(zeroLoad > 0.0, "zero-load latency measurement failed");
  const double knee = opts.kneeFactor * zeroLoad;

  // Geometric scan for the first saturated rate.
  double lastGood = opts.zeroLoadRate;
  double firstBad = -1.0;
  for (double rate = opts.startRate; rate <= opts.maxRate;
       rate *= opts.growth) {
    if (aplAtRate(rate) > knee) {
      firstBad = rate;
      break;
    }
    lastGood = rate;
  }
  if (firstBad < 0.0) return opts.maxRate;  // never saturated within bounds

  // Bisect the knee.
  for (int i = 0; i < opts.bisectIters; ++i) {
    const double mid = 0.5 * (lastGood + firstBad);
    if (aplAtRate(mid) > knee) {
      firstBad = mid;
    } else {
      lastGood = mid;
    }
  }
  return 0.5 * (lastGood + firstBad);
}

double appSaturationRate(const Mesh& mesh, const RegionMap& regions,
                         AppTrafficSpec app, const SaturationOptions& opts,
                         RoutingKind routing) {
  auto aplAtRate = [&](double rate) {
    SimConfig cfg;
    cfg.warmupCycles = opts.warmupCycles;
    cfg.measureCycles = opts.measureCycles;
    cfg.drainLimit = opts.drainLimit;
    AppTrafficSpec solo = app;
    solo.injectionRate = rate;
    SchemeSpec scheme = schemeRoRr(routing);
    // Index the stats table by the app's real id (regions beyond it idle).
    std::vector<AppTrafficSpec> apps(static_cast<size_t>(app.app) + 1);
    for (AppId a = 0; a <= app.app; ++a) {
      apps[static_cast<size_t>(a)].app = a;
      apps[static_cast<size_t>(a)].injectionRate = 0.0;
    }
    apps[static_cast<size_t>(app.app)] = solo;
    const auto res = runScenario(ScenarioSpec(mesh, regions)
                                     .withConfig(cfg)
                                     .withScheme(scheme)
                                     .withApps(std::move(apps))
                                     .withWarmCache(opts.warmCacheDir));
    if (!res.run.fullyDrained) {
      // Could not drain: far past saturation.
      return std::numeric_limits<double>::infinity();
    }
    return res.appApl[static_cast<size_t>(app.app)];
  };
  return findSaturationRate(aplAtRate, opts);
}

}  // namespace rair
