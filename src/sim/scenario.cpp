#include "sim/scenario.h"

#include "common/assert.h"
#include "metrics/recorder.h"

#ifdef RAIR_CHECKS
#include "check/oracle.h"
#endif

namespace rair {

SimConfig ScenarioSpec::windowPreset(bool fast) {
  SimConfig cfg;
  if (fast) {
    cfg.warmupCycles = 2'000;
    cfg.measureCycles = 20'000;
  } else {
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 100'000;
  }
  cfg.drainLimit = 500'000;
  return cfg;
}

ScenarioResult runScenario(const ScenarioSpec& spec) {
  RAIR_CHECK_MSG(spec.mesh != nullptr && spec.regions != nullptr,
                 "ScenarioSpec without mesh/regions");
  const bool adversarial = spec.adversarialRate > 0.0;
  const int numApps =
      static_cast<int>(spec.apps.size()) + (adversarial ? 1 : 0);

  std::vector<double> intensities;
  intensities.reserve(static_cast<size_t>(numApps));
  for (const auto& a : spec.apps) intensities.push_back(a.injectionRate);
  if (adversarial) intensities.push_back(spec.adversarialRate);

  SimConfig cfg = spec.config;
  cfg.routing = spec.scheme.routing;
  cfg.net.rairPartition = spec.scheme.needsRairPartition();

  const auto policy = makePolicy(spec.scheme, intensities);
  Simulator sim(*spec.mesh, *spec.regions, cfg, *policy, numApps);
  std::uint64_t seed = spec.seed;
  for (const auto& a : spec.apps) {
    sim.addSource(std::make_unique<RegionalizedSource>(*spec.mesh,
                                                       *spec.regions, a,
                                                       seed));
    seed += 0x9E3779B9ull;
  }
  if (adversarial) {
    sim.addSource(std::make_unique<AdversarialSource>(
        *spec.mesh, static_cast<AppId>(spec.apps.size()),
        spec.adversarialRate, seed));
  }

  ScenarioResult out;
#ifdef RAIR_CHECKS
  // Armed build: every scenario runs under the simulation oracle with
  // amortized scan cadence and fail-fast semantics. The oracle is a pure
  // observer, so results are bit-identical to the unarmed build.
  check::NetworkOracle oracle(sim.network(), sim.ledger(),
                              check::OracleOptions::armed());
  sim.addObserver(&oracle);
#endif
  // The recorder is likewise a pure observer: results stay bit-identical
  // whether or not instrumentation is attached.
  std::optional<metrics::MetricsRecorder> recorder;
  if (spec.metrics.enabled()) {
    recorder.emplace(sim.network(), *spec.regions, spec.metrics, numApps,
                     cfg.warmupCycles + cfg.measureCycles);
    sim.addObserver(&*recorder);
  }
  out.run = sim.run();
  if (recorder) recorder->finalize(out.run.cyclesRun);
#ifdef RAIR_CHECKS
  // Cross-validate the metrics census against the oracle's own delivery
  // counts before closing the audit.
  if (recorder)
    oracle.crossValidateTotals(out.run.cyclesRun,
                               recorder->deliveredPackets(),
                               recorder->deliveredFlits());
  oracle.finish(out.run.cyclesRun);
#endif
  if (recorder) {
    RAIR_CHECK_MSG(recorder->writeSinks(), "metrics sink write failed");
    out.metrics = recorder->summary();
  }
  out.meanApl = out.run.stats.overallApl();
  out.appApl.resize(static_cast<size_t>(numApps));
  for (AppId a = 0; a < numApps; ++a)
    out.appApl[static_cast<size_t>(a)] = out.run.stats.appApl(a);
  return out;
}

}  // namespace rair
