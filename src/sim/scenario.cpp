#include "sim/scenario.h"

namespace rair {

ScenarioResult runScenario(const Mesh& mesh, const RegionMap& regions,
                           SimConfig cfg, const SchemeSpec& scheme,
                           const std::vector<AppTrafficSpec>& apps,
                           const ScenarioOptions& opts) {
  const bool adversarial = opts.adversarialRate > 0.0;
  const int numApps =
      static_cast<int>(apps.size()) + (adversarial ? 1 : 0);

  std::vector<double> intensities;
  intensities.reserve(static_cast<size_t>(numApps));
  for (const auto& a : apps) intensities.push_back(a.injectionRate);
  if (adversarial) intensities.push_back(opts.adversarialRate);

  cfg.routing = scheme.routing;
  cfg.net.rairPartition = scheme.needsRairPartition();

  const auto policy = makePolicy(scheme, intensities);
  Simulator sim(mesh, regions, cfg, *policy, numApps);
  std::uint64_t seed = opts.seed;
  for (const auto& a : apps) {
    sim.addSource(
        std::make_unique<RegionalizedSource>(mesh, regions, a, seed));
    seed += 0x9E3779B9ull;
  }
  if (adversarial) {
    sim.addSource(std::make_unique<AdversarialSource>(
        mesh, static_cast<AppId>(apps.size()), opts.adversarialRate, seed));
  }

  ScenarioResult out;
  out.run = sim.run();
  out.meanApl = out.run.stats.overallApl();
  out.appApl.resize(static_cast<size_t>(numApps));
  for (AppId a = 0; a < numApps; ++a)
    out.appApl[static_cast<size_t>(a)] = out.run.stats.appApl(a);
  return out;
}

}  // namespace rair
