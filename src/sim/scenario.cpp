#include "sim/scenario.h"

#include "common/assert.h"
#include "metrics/recorder.h"
#include "snapshot/buffer.h"
#include "snapshot/checkpoint.h"
#include "snapshot/scenario_key.h"
#include "snapshot/warm_cache.h"

#ifdef RAIR_CHECKS
#include "check/oracle.h"
#endif

namespace rair {

SimConfig ScenarioSpec::windowPreset(bool fast) {
  SimConfig cfg;
  if (fast) {
    cfg.warmupCycles = 2'000;
    cfg.measureCycles = 20'000;
  } else {
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 100'000;
  }
  cfg.drainLimit = 500'000;
  return cfg;
}

AssembledScenario assembleScenario(const ScenarioSpec& spec) {
  RAIR_CHECK_MSG(spec.mesh != nullptr && spec.regions != nullptr,
                 "ScenarioSpec without mesh/regions");
  const bool adversarial = spec.adversarialRate > 0.0;

  AssembledScenario as;
  as.numApps = static_cast<int>(spec.apps.size()) + (adversarial ? 1 : 0);

  std::vector<double> intensities;
  intensities.reserve(static_cast<size_t>(as.numApps));
  for (const auto& a : spec.apps) intensities.push_back(a.injectionRate);
  if (adversarial) intensities.push_back(spec.adversarialRate);

  as.policy = makePolicy(spec.scheme, intensities);
  as.sim = std::make_unique<Simulator>(*spec.mesh, *spec.regions,
                                       spec.effectiveConfig(), *as.policy,
                                       as.numApps);
  std::uint64_t seed = spec.seed;
  for (const auto& a : spec.apps) {
    as.sim->addSource(std::make_unique<RegionalizedSource>(*spec.mesh,
                                                           *spec.regions, a,
                                                           seed));
    seed += 0x9E3779B9ull;
  }
  if (adversarial) {
    as.sim->addSource(std::make_unique<AdversarialSource>(
        *spec.mesh, static_cast<AppId>(spec.apps.size()),
        spec.adversarialRate, seed));
  }
  if (!spec.faults.empty()) {
    as.injector =
        std::make_unique<fault::FaultInjector>(*as.sim, spec.faults);
    as.injector->attach();
  }
  return as;
}

namespace {

/// Whether this run's snapshots are sound: every piece of process state
/// that shapes results must be inside the snapshot. Summary/Series metrics
/// and file sinks accumulate outside it (a recorder attached after a
/// restore has not seen the earlier cycles), so snapshot paths are limited
/// to runs where metrics stay at the default Counters level with no sinks.
bool snapshotEligible(const ScenarioSpec& spec, const Simulator& sim) {
  return spec.snap.enabled() && sim.snapshotSupported() &&
         spec.metrics.level <= metrics::MetricsLevel::Counters &&
         spec.metrics.outPrefix.empty();
}

}  // namespace

ScenarioResult runScenario(const ScenarioSpec& spec) {
  AssembledScenario as = assembleScenario(spec);
  Simulator& sim = *as.sim;
  const SimConfig cfg = spec.effectiveConfig();
  const int numApps = as.numApps;

  // Snapshot plumbing, before any observer attaches: restores rebuild the
  // complete simulator state, and the oracle/recorder re-derive their view
  // from whatever state they attach to.
  Cycle resumedFrom = 0;
  bool warmRestored = false;
  std::uint64_t fullKey = 0;
  std::uint64_t warmKey = 0;
  std::string ckptPath;
  if (snapshotEligible(spec, sim)) {
    if (!spec.snap.checkpointPath.empty() ||
        !spec.snap.checkpointDir.empty()) {
      fullKey = snapshot::fullStateKey(spec);
      ckptPath = spec.snap.checkpointPath;
      if (ckptPath.empty()) {
        snapshot::ensureDir(spec.snap.checkpointDir);
        ckptPath = spec.snap.checkpointDir + "/" +
                   snapshot::checkpointFileName(fullKey);
      }
      snapshot::tryRestoreCheckpoint(sim, ckptPath, fullKey, &resumedFrom);
    }
    const bool wantWarm =
        !spec.snap.warmCacheDir.empty() && cfg.warmupCycles > 0;
    bool wantWarmStore = false;
    if (resumedFrom == 0 && wantWarm) {
      warmKey = snapshot::warmStateKey(spec);
      warmRestored = snapshot::tryRestoreWarm(sim, spec.snap.warmCacheDir,
                                              warmKey, cfg.warmupCycles);
      wantWarmStore = !warmRestored;
    }
    const bool wantCheckpoints =
        !ckptPath.empty() && spec.snap.checkpointEvery != 0;
    if (wantWarmStore || wantCheckpoints) {
      const Cycle warmPoint =
          wantWarmStore ? cfg.warmupCycles : kNeverCycle;
      const Cycle every =
          wantCheckpoints ? spec.snap.checkpointEvery : Cycle{0};
      sim.setSnapshotHook(
          [&spec, &ckptPath, warmKey, fullKey, warmPoint, every](
              const Simulator& s, Cycle c) {
            if (c == warmPoint)
              snapshot::storeWarm(s, spec.snap.warmCacheDir, warmKey);
            if (every != 0 && c != 0 && c % every == 0)
              snapshot::storeCheckpoint(s, ckptPath, fullKey);
          },
          warmPoint, every);
    }
  }

  ScenarioResult out;
#ifdef RAIR_CHECKS
  // Armed build: every scenario runs under the simulation oracle with
  // amortized scan cadence and fail-fast semantics. The oracle is a pure
  // observer, so results are bit-identical to the unarmed build.
  check::NetworkOracle oracle(sim.network(), sim.ledger(),
                              check::OracleOptions::armed());
  if (as.injector) oracle.attachFaults(as.injector.get());
  sim.observers().attach(&oracle);
#endif
  // The recorder is likewise a pure observer: results stay bit-identical
  // whether or not instrumentation is attached.
  std::optional<metrics::MetricsRecorder> recorder;
  if (spec.metrics.enabled()) {
    recorder.emplace(sim.network(), *spec.regions, spec.metrics, numApps,
                     cfg.warmupCycles + cfg.measureCycles);
    sim.observers().attach(&*recorder);
  }
  out.run = sim.run();
  if (!ckptPath.empty()) snapshot::removeCheckpoint(ckptPath);
  if (recorder) recorder->finalize(out.run.cyclesRun);
#ifdef RAIR_CHECKS
  // Cross-validate the metrics census against the oracle's own delivery
  // counts before closing the audit.
  if (recorder)
    oracle.crossValidateTotals(out.run.cyclesRun,
                               recorder->deliveredPackets(),
                               recorder->deliveredFlits());
  oracle.finish(out.run.cyclesRun);
#endif
  if (recorder) {
    RAIR_CHECK_MSG(recorder->writeSinks(), "metrics sink write failed");
    out.metrics = recorder->summary();
  }
  if (as.injector) out.faultStats = as.injector->stats();
  out.resumedFromCycle = resumedFrom;
  out.warmRestored = warmRestored;
  out.meanApl = out.run.stats.overallApl();
  out.appApl.resize(static_cast<size_t>(numApps));
  for (AppId a = 0; a < numApps; ++a)
    out.appApl[static_cast<size_t>(a)] = out.run.stats.appApl(a);
  return out;
}

bool writeScenarioCheckpoint(const ScenarioSpec& spec, Cycle atCycle,
                             const std::string& path) {
  AssembledScenario as = assembleScenario(spec);
  if (!as.sim->snapshotSupported()) return false;
  as.sim->begin();
  while (as.sim->now() < atCycle) as.sim->stepCycle();
  return snapshot::storeCheckpoint(*as.sim, path,
                                   snapshot::fullStateKey(spec));
}

}  // namespace rair
