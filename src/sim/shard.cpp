#include "sim/shard.h"

#include "common/assert.h"

namespace rair {

namespace {

/// Spin iterations before parking on an atomic wait. Long enough to catch
/// the common case where the sibling shards finish within the same
/// scheduling quantum, short enough that a single-core host falls through
/// to the futex quickly.
constexpr int kSpinIterations = 2048;

}  // namespace

ShardEngine::ShardEngine(Network& net, NicEvents& sink, int numShards)
    : net_(&net), sink_(&sink) {
  RAIR_CHECK_MSG(numShards >= 1, "ShardEngine with no shards");
  const NodeId numNodes = net.mesh().numNodes();
  shards_.resize(static_cast<std::size_t>(numShards));
  const NodeId base = numNodes / numShards;
  const NodeId rem = numNodes % numShards;
  NodeId next = 0;
  for (NodeId s = 0; s < numShards; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.begin = next;
    next += base + (s < rem ? 1 : 0);
    shard.end = next;
    shard.stage.events.reserve(64);
    for (NodeId n = shard.begin; n < shard.end; ++n)
      net_->nic(n).setEvents(&shard.stage);
  }
  RAIR_CHECK(next == numNodes);
  workers_.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ShardEngine::~ShardEngine() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (auto& w : workers_) w.join();
  for (NodeId n = 0; n < net_->mesh().numNodes(); ++n)
    net_->nic(n).setEvents(sink_);
}

void ShardEngine::runShardPhase(Phase p, const Shard& s, Cycle now) {
  switch (p) {
    case Phase::InjectRoute:
      net_->phaseInjectRoute(now, s.begin, s.end);
      break;
    case Phase::TraversePropagate:
      net_->phaseTraversePropagate(now, s.begin, s.end);
      break;
  }
}

void ShardEngine::dispatch(Phase p, Cycle now) {
  phase_ = p;
  cycle_ = now;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  runShardPhase(p, shards_[0], now);
  const auto target = static_cast<std::uint32_t>(workers_.size());
  for (;;) {
    const std::uint32_t d = done_.load(std::memory_order_acquire);
    if (d == target) break;
    for (int i = 0; i < kSpinIterations; ++i) {
      if (done_.load(std::memory_order_acquire) == target) return;
    }
    done_.wait(d, std::memory_order_acquire);
  }
}

void ShardEngine::workerLoop(std::size_t shardIndex) {
  std::uint32_t seen = 0;
  for (;;) {
    for (int i = 0; i < kSpinIterations; ++i) {
      if (epoch_.load(std::memory_order_acquire) != seen) break;
    }
    epoch_.wait(seen, std::memory_order_acquire);
    seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed)) return;
    runShardPhase(phase_, shards_[shardIndex], cycle_);
    done_.fetch_add(1, std::memory_order_release);
    done_.notify_one();
  }
}

void ShardEngine::step(Cycle now) {
  if (workers_.empty()) {
    // Single shard: same fused-phase schedule, no hand-off machinery.
    net_->phaseInjectRoute(now, shards_[0].begin, shards_[0].end);
    net_->phaseRetireCongestion();
    net_->phaseTraversePropagate(now, shards_[0].begin, shards_[0].end);
  } else {
    dispatch(Phase::InjectRoute, now);
    net_->phaseRetireCongestion();
    dispatch(Phase::TraversePropagate, now);
  }
  // Canonical replay: shard order = ascending node order = the exact event
  // order of the single-threaded NIC loop.
  for (Shard& s : shards_) {
    for (const NicEventRecord& e : s.stage.events) {
      if (e.kind == NicEventRecord::Kind::Injected)
        sink_->onInjected(e.id, e.when);
      else
        sink_->onDelivered(e.id, e.when, e.hops);
    }
    s.stage.events.clear();
  }
}

}  // namespace rair
