// Network interface controller: open-loop source queues on the injection
// side, an infinite sink on the ejection side.
//
// Injection performs the upstream half of VC allocation for the router's
// Local input port: a queued packet claims a free input VC of its message
// class (atomic: VC idle and fully credited), then streams its flits at
// one flit per cycle subject to credits, with round-robin interleaving
// among in-flight packets. Under RAIR the VC claim follows the same class
// preference as in-network allocation: native packets try Regional VCs
// first, foreign ones Global first.
//
// Source queues are kept per (message class, application): on consolidated
// chips each VM/application has its own injection queue at the interface,
// so a misbehaving application's backlog cannot head-of-line block another
// application's packets before they even reach the network (it can only
// compete for VCs and link bandwidth, where the router's policies act).
//
// Ejection drains at link rate (one flit per cycle), returning a credit
// per flit immediately — the model of an always-ready receiving core.
#pragma once

#include <vector>

#include "common/ring.h"
#include "link/link_layer.h"
#include "packet/packet.h"
#include "router/vc.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair {

namespace check {
class NetworkOracle;  // read-only auditor of NIC internals (src/check/)
}

namespace fault {
class FaultInjector;  // fault-event application (src/fault/)
}

/// Receiver of NIC lifecycle events. A plain interface instead of
/// per-event std::function hooks: one indirect call on the hot path, no
/// type-erased closure storage.
class NicEvents {
 public:
  virtual ~NicEvents() = default;
  /// Head flit first entered the network (left the NIC).
  virtual void onInjected(PacketId id, Cycle injectCycle) = 0;
  /// Tail flit delivered; `hops` is the hop count observed by the head.
  virtual void onDelivered(PacketId id, Cycle ejectCycle,
                           std::uint16_t hops) = 0;
};

class Nic {
 public:
  /// @param appTag app mapped on this node (used for the RAIR VC-class
  ///        preference when claiming an injection VC).
  Nic(NodeId node, AppId appTag, const VcLayout& layout, int routerVcDepth,
      bool atomicVcs);

  /// `toRouter`: NIC is the upstream side. `fromRouter`: downstream side.
  void connect(LinkLayer* toRouter, LinkLayer* fromRouter);

  /// Queues a packet for injection (source queues are unbounded: open-loop
  /// measurement per Dally & Towles).
  void enqueue(const Packet& p);

  /// Called once per cycle (before the routers) — receives credits,
  /// ejects arriving flits, injects at most one flit.
  void tick(Cycle now);

  /// Registers the (single) event receiver; may be null to drop events.
  void setEvents(NicEvents* events) { events_ = events; }

  NodeId node() const { return node_; }
  std::size_t queuedPackets() const;
  bool quiescent() const;

  /// Snapshot hooks. Sub-queues are recreated in saved order (their order
  /// is behavioural: the VC-claim round-robin walks them by index).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  friend class check::NetworkOracle;
  friend class fault::FaultInjector;

  struct Stream {
    Packet pkt;
    std::uint16_t next = 0;  ///< next flit index to send (makeFlit builds it)
    int vc = -1;             ///< claimed router-input VC
  };

  /// Tries to claim an injection VC for the head of `queue`; returns the
  /// VC index or -1.
  int claimVc(const Packet& p) const;

  /// VC claims + the at-most-one-flit injection of tick(). Split out so
  /// tick() always reaches the link layers' per-cycle hooks afterwards.
  void injectPhase(Cycle now);

  struct SubQueue {
    MsgClass cls;
    AppId app;
    RingQueue<Packet> packets;
  };
  SubQueue& subQueue(MsgClass cls, AppId app);

  NodeId node_;
  AppId appTag_;
  VcLayout layout_;
  int vcDepth_;
  bool atomicVcs_;
  LinkLayer* toRouter_ = nullptr;
  LinkLayer* fromRouter_ = nullptr;
  /// Whether either link has non-no-op per-cycle hooks (kind != Ideal);
  /// keeps the tick calls off the per-cycle path on ideal networks.
  bool linksNeedTicks_ = false;

  std::vector<SubQueue> queues_;  ///< one per (message class, application)
  std::vector<Stream> active_;    ///< packets mid-injection
  std::vector<int> credits_;      ///< per router-local-input VC
  std::vector<std::uint16_t> headHops_;  ///< hops of in-flight head per VC
  std::size_t rrNext_ = 0;       ///< round-robin over active_
  std::size_t rrQueue_ = 0;      ///< round-robin over queues_ for VC claims
  NicEvents* events_ = nullptr;
  /// Fault-injected injection freeze: claims and injection stop, credits
  /// and ejection continue. Maintained by the fault injector; not
  /// serialized — the snapshot's fault section re-applies it on restore.
  bool injectFrozen_ = false;
};

}  // namespace rair
