#include "sim/network.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "snapshot/codec.h"

namespace rair {

namespace {
constexpr std::array<Dir, 4> kRouterDirs = {Dir::North, Dir::East, Dir::South,
                                            Dir::West};
constexpr int dirIdx(Dir d) { return static_cast<int>(d) - 1; }
}  // namespace

Network::Network(const Mesh& mesh, const RegionMap& regions,
                 NetworkConfig config, RoutingKind routingKind,
                 const ArbiterPolicy& policy)
    : mesh_(&mesh),
      regions_(&regions),
      config_(config),
      layout_(config.numClasses, config.vcsPerClass, config.rairPartition,
              config.globalVcsPerClass),
      routing_(makeRouting(routingKind, &regions)),
      policy_(&policy),
      maxHops_(std::max(mesh.width(), mesh.height()) - 1) {
  const RouterConfig rc{layout_, config_.vcDepth, config_.atomicVcs};
  routers_.reserve(static_cast<size_t>(mesh.numNodes()));
  nics_.reserve(static_cast<size_t>(mesh.numNodes()));
  for (NodeId n = 0; n < mesh.numNodes(); ++n) {
    routers_.emplace_back(n, regions.appOf(n), rc, mesh, *routing_, policy,
                          *this);
    nics_.emplace_back(n, regions.appOf(n), layout_, config_.vcDepth,
                       config_.atomicVcs);
  }
  wire();
  neighborTable_.assign(static_cast<size_t>(mesh.numNodes()) * 4, -1);
  for (NodeId n = 0; n < mesh.numNodes(); ++n) {
    for (Dir d : kRouterDirs) {
      if (const auto nb = mesh.neighbor(n, d))
        neighborTable_[static_cast<size_t>(n) * 4 +
                       static_cast<size_t>(dirIdx(d))] = *nb;
    }
  }
  agg_.assign(static_cast<size_t>(mesh.numNodes()) * 4 *
                  static_cast<size_t>(maxHops_),
              0);
  aggPrev_ = agg_;
}

void Network::wire() {
  // Exact link count up front: the wiring below hands out pointers into
  // the typed link vector, which must therefore never reallocate.
  std::size_t numLinks = 0;
  for (NodeId n = 0; n < mesh_->numNodes(); ++n) {
    for (Dir d : kRouterDirs)
      if (mesh_->neighbor(n, d)) ++numLinks;
    numLinks += 2;  // NIC inject + eject
  }
  const bool retx = config_.linkLayer == LinkLayerKind::Retx;
  if (retx)
    retxLinks_.reserve(numLinks);
  else
    idealLinks_.reserve(numLinks);
  links_.reserve(numLinks);
  // Retx replay capacity: un-ACKed occupancy is bounded by the credits the
  // upstream endpoint can hold (totalVcs * vcDepth) plus the entries whose
  // cumulative ACK is still on the wire (round trip), with slack for the
  // staged-flush cycles.
  const std::size_t replayCap =
      static_cast<std::size_t>(layout_.totalVcs()) *
          static_cast<std::size_t>(config_.vcDepth) +
      2 * static_cast<std::size_t>(config_.linkLatency) + 4;
  auto makeLink = [&]() -> LinkLayer* {
    if (retx) {
      retxLinks_.emplace_back(config_.linkLatency, replayCap);
      return &retxLinks_.back();
    }
    idealLinks_.emplace_back(config_.linkLatency);
    return &idealLinks_.back();
  };

  // Router-to-router links: one per directed edge (east/south owned to
  // avoid duplicates; the reverse direction gets its own link).
  for (NodeId n = 0; n < mesh_->numNodes(); ++n) {
    for (Dir d : kRouterDirs) {
      const auto nb = mesh_->neighbor(n, d);
      if (!nb) continue;
      LinkLayer* link = makeLink();
      links_.push_back(link);
      routers_[static_cast<size_t>(n)].connectOut(d, link);
      routers_[static_cast<size_t>(*nb)].connectIn(opposite(d), link);
    }
    // NIC <-> router local-port links.
    LinkLayer* inject = makeLink();
    links_.push_back(inject);
    LinkLayer* eject = makeLink();
    links_.push_back(eject);
    routers_[static_cast<size_t>(n)].connectIn(Dir::Local, inject);
    routers_[static_cast<size_t>(n)].connectOut(Dir::Local, eject);
    nics_[static_cast<size_t>(n)].connect(inject, eject);
  }
  RAIR_CHECK(links_.size() == numLinks);
}

void Network::step(Cycle now) {
  for (auto& nic : nics_) nic.tick(now);
  for (auto& r : routers_) r.beginCycle(now);
  for (auto& r : routers_) r.routeCompute(now);
  for (auto& r : routers_) r.vcAllocate(now);
  for (auto& r : routers_) r.switchAllocateAndTraverse(now);
  for (auto& r : routers_) r.endCycle(now);
  propagateCongestion();
}

void Network::propagateCongestion() {
  std::swap(agg_, aggPrev_);
  for (NodeId n = 0; n < mesh_->numNodes(); ++n) propagateCongestionRow(n);
}

void Network::propagateCongestionRow(NodeId n) {
  const std::size_t H = static_cast<std::size_t>(maxHops_);
  for (int di = 0; di < 4; ++di) {
    const Dir d = static_cast<Dir>(di + 1);
    const int local = routers_[static_cast<size_t>(n)].freeAdaptiveOutVcs(d);
    int* out = &agg_[(static_cast<size_t>(n) * 4 +
                      static_cast<size_t>(di)) * H];
    out[0] = local;
    const NodeId nb = neighborTable_[static_cast<size_t>(n) * 4 +
                                     static_cast<size_t>(di)];
    if (nb >= 0) {
      // h-hop info: local knowledge plus the neighbor's (h-1)-hop
      // aggregate from the previous cycle (1 hop/cycle wire delay).
      const int* prev = &aggPrev_[(static_cast<size_t>(nb) * 4 +
                                   static_cast<size_t>(di)) * H];
      for (std::size_t h = 1; h < H; ++h) out[h] = local + prev[h - 1];
    } else {
      for (std::size_t h = 1; h < H; ++h) out[h] = local;
    }
  }
}

void Network::phaseInjectRoute(Cycle now, NodeId begin, NodeId end) {
  for (NodeId n = begin; n < end; ++n) {
    nics_[static_cast<size_t>(n)].tick(now);
    Router& r = routers_[static_cast<size_t>(n)];
    r.beginCycle(now);
    r.routeCompute(now);
    r.vcAllocate(now);
  }
}

void Network::phaseRetireCongestion() { std::swap(agg_, aggPrev_); }

void Network::phaseTraversePropagate(Cycle now, NodeId begin, NodeId end) {
  for (NodeId n = begin; n < end; ++n) {
    Router& r = routers_[static_cast<size_t>(n)];
    r.switchAllocateAndTraverse(now);
    r.endCycle(now);
    propagateCongestionRow(n);
  }
}

int Network::flitsMovedLastCycle() const {
  int total = 0;
  for (const auto& r : routers_) total += r.flitsMovedLastCycle();
  return total;
}

std::uint64_t Network::totalFlitsTraversed() const {
  std::uint64_t total = 0;
  for (const auto& r : routers_) total += r.counters().flitsTraversed;
  return total;
}

bool Network::quiescent() const {
  for (const auto& r : routers_)
    if (!r.quiescent()) return false;
  for (const auto& n : nics_)
    if (!n.quiescent()) return false;
  for (const LinkLayer* l : links_)
    if (!l->idle()) return false;
  return true;
}

std::uint64_t Network::totalCorruptedFlits() const {
  std::uint64_t total = 0;
  for (const LinkLayer* l : links_) total += l->corruptedFlits();
  return total;
}

std::uint64_t Network::totalRetransmittedFlits() const {
  std::uint64_t total = 0;
  for (const LinkLayer* l : links_) total += l->retransmittedFlits();
  return total;
}

int Network::freeVcsThrough(NodeId n, Dir d) const {
  return routers_[static_cast<size_t>(n)].freeAdaptiveOutVcs(d);
}

int Network::aggregatedFree(NodeId n, Dir d, int hops) const {
  RAIR_DCHECK(d != Dir::Local);
  const int h = std::clamp(hops, 1, maxHops_) - 1;
  return aggAt(agg_, n, dirIdx(d), h);
}

namespace {
std::string elementSection(const char* kind, std::size_t i) {
  char name[32];
  std::snprintf(name, sizeof name, "%s/%zu", kind, i);
  return name;
}
}  // namespace

void Network::save(snapshot::Writer& w) const {
  w.beginSection("net/agg");
  w.u32(static_cast<std::uint32_t>(agg_.size()));
  for (const int v : agg_) w.i32(v);
  for (const int v : aggPrev_) w.i32(v);
  w.endSection();
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    w.beginSection(elementSection("router", i));
    routers_[i].save(w);
    w.endSection();
  }
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    w.beginSection(elementSection("nic", i));
    nics_[i].save(w);
    w.endSection();
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    w.beginSection(elementSection("link", i));
    links_[i]->save(w);
    w.endSection();
  }
}

void Network::restore(snapshot::Reader& r) {
  r.beginSection("net/agg");
  RAIR_CHECK_MSG(r.u32() == agg_.size(),
                 "network restore: congestion table size mismatch");
  for (int& v : agg_) v = r.i32();
  for (int& v : aggPrev_) v = r.i32();
  r.endSection();
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    r.beginSection(elementSection("router", i));
    routers_[i].restore(r);
    r.endSection();
  }
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    r.beginSection(elementSection("nic", i));
    nics_[i].restore(r);
    r.endSection();
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    r.beginSection(elementSection("link", i));
    links_[i]->restore(r);
    r.endSection();
  }
}

}  // namespace rair
