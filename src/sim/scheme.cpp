#include "sim/scheme.h"

#include "common/assert.h"
#include "core/rair_policy.h"
#include "policy/stc.h"

namespace rair {

std::unique_ptr<ArbiterPolicy> makePolicy(
    const SchemeSpec& scheme, const std::vector<double>& appIntensities) {
  switch (scheme.policy) {
    case PolicyKind::RoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::AgeBased:
      return std::make_unique<AgeBasedPolicy>();
    case PolicyKind::StcRank:
      return std::make_unique<StcRankPolicy>(
          StcRankPolicy::ranksFromIntensities(appIntensities),
          scheme.stcBatchPeriod);
    case PolicyKind::Rair:
      return std::make_unique<RairPolicy>(scheme.rair);
  }
  RAIR_CHECK_MSG(false, "unknown PolicyKind");
}

SchemeSpec schemeRoRr(RoutingKind routing) {
  SchemeSpec s;
  s.label = routing == RoutingKind::Dbar ? "RO_RR_DBAR" : "RO_RR";
  s.routing = routing;
  s.policy = PolicyKind::RoundRobin;
  return s;
}

SchemeSpec schemeRoRank(RoutingKind routing) {
  SchemeSpec s;
  s.label = "RO_Rank";
  s.routing = routing;
  s.policy = PolicyKind::StcRank;
  return s;
}

SchemeSpec schemeRaDbar() {
  SchemeSpec s;
  s.label = "RA_DBAR";
  s.routing = RoutingKind::Dbar;
  s.policy = PolicyKind::RoundRobin;
  return s;
}

SchemeSpec schemeRaRair(RoutingKind routing) {
  SchemeSpec s;
  s.label = routing == RoutingKind::Dbar ? "RAIR_DBAR" : "RA_RAIR";
  s.routing = routing;
  s.policy = PolicyKind::Rair;
  return s;
}

SchemeSpec schemeRairVaOnly(RoutingKind routing) {
  SchemeSpec s = schemeRaRair(routing);
  s.label = "RAIR_VA";
  s.rair.applyAtSa = false;
  return s;
}

SchemeSpec schemeRairNativeHigh() {
  SchemeSpec s = schemeRaRair();
  s.label = "RAIR_NativeH";
  s.rair.dpaMode = DpaMode::NativeHigh;
  return s;
}

SchemeSpec schemeRairForeignHigh() {
  SchemeSpec s = schemeRaRair();
  s.label = "RAIR_ForeignH";
  s.rair.dpaMode = DpaMode::ForeignHigh;
  return s;
}

}  // namespace rair
