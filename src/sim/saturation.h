// Empirical saturation-load calibration.
//
// The paper expresses application loads as fractions of the application's
// saturation load ("10% of its saturation load", Sec. V.B). Saturation is
// found the standard way (Dally & Towles): sweep the injection rate and
// locate the knee where average latency blows past a multiple of the
// zero-load latency.
#pragma once

#include <functional>

#include "sim/scenario.h"

namespace rair {

struct SaturationOptions {
  double kneeFactor = 4.0;   ///< saturated when APL > kneeFactor x zero-load
  double zeroLoadRate = 0.005;  ///< rate used to estimate zero-load APL
  double startRate = 0.02;
  double growth = 1.3;       ///< geometric scan factor
  double maxRate = 1.0;      ///< flits/cycle/node upper bound (link rate)
  int bisectIters = 7;
  /// Short simulation windows: saturation needs the knee location, not
  /// tight confidence intervals.
  Cycle warmupCycles = 2'000;
  Cycle measureCycles = 10'000;
  Cycle drainLimit = 30'000;
  /// Warm-state cache directory for the probe runs (snapshot subsystem).
  /// The scan and bisection probe a deterministic rate sequence, so a
  /// repeated calibration — a re-run campaign, another figure sharing the
  /// calibration — restores every probe's warm-up instead of simulating
  /// it. Empty disables caching.
  std::string warmCacheDir;
};

/// Generic knee finder over a monotone latency-vs-rate curve.
/// `aplAtRate(rate)` must return the mean latency at the given injection
/// rate, or a huge value / +inf when the network failed to drain.
double findSaturationRate(const std::function<double(double)>& aplAtRate,
                          const SaturationOptions& opts = {});

/// Saturation rate of one application's traffic shape running *alone* on
/// the chip under the round-robin baseline — the reference the paper's
/// "x% of saturation load" figures are defined against. The app's
/// injectionRate field is ignored (it is the swept variable).
double appSaturationRate(const Mesh& mesh, const RegionMap& regions,
                         AppTrafficSpec app,
                         const SaturationOptions& opts = {},
                         RoutingKind routing = RoutingKind::LocalAdaptive);

}  // namespace rair
