// Deterministic sharded cycle engine: space-partitioned intra-run
// parallelism over the flattened Network.
//
// The network is split into contiguous node ranges (shards), one worker
// thread per shard, and every cycle runs as two barrier-separated fused
// phases (see Network::phaseInjectRoute / phaseTraversePropagate). The
// partition is sound because each phase only ever mutates shard-local
// state: a router's phase methods touch its own buffers plus its own side
// of the attached links, and the two DelayPipes of a cross-shard link
// (flits downstream, credits upstream) are each written by exactly one
// endpoint per phase. The one cross-cutting side effect — NIC lifecycle
// events into the simulator's packet ledger — is staged per shard during
// the NIC phase and replayed on the coordinator in canonical shard order
// (= ascending node order, exactly the single-threaded NIC loop order).
//
// Determinism contract: results, statistics, observer callback sequences
// and snapshot bytes are identical to the single-threaded engine for any
// shard count. There is no per-shard RNG to split: traffic sources tick on
// the coordinator before the phases run, so the parallel section consumes
// no random numbers at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/network.h"

namespace rair {

/// One staged NIC lifecycle event, replayed by the coordinator after the
/// parallel phases so the simulator observes deliveries in the exact
/// single-threaded order (the packet pool's free list is order-dependent
/// and snapshot-serialized, so replay order is part of byte-identity).
struct NicEventRecord {
  enum class Kind : std::uint8_t { Injected, Delivered };
  PacketId id;
  Cycle when;
  std::uint16_t hops;  ///< meaningful for Delivered only
  Kind kind;
};

class ShardEngine {
 public:
  /// Partitions `net` into `numShards` contiguous node ranges and rewires
  /// every NIC's event receiver to this engine's per-shard staging. `sink`
  /// receives the replayed events (the Simulator). The destructor rewires
  /// the NICs back to `sink`. Both referents must outlive the engine.
  ShardEngine(Network& net, NicEvents& sink, int numShards);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  int numShards() const { return static_cast<int>(shards_.size()); }

  /// Advances the network one cycle (equivalent to Network::step) and
  /// replays the staged NIC events into the sink in shard order.
  void step(Cycle now);

 private:
  /// Per-shard NicEvents receiver: records instead of acting. Only the
  /// shard's own worker writes it during a phase.
  struct Stage final : NicEvents {
    void onInjected(PacketId id, Cycle when) override {
      events.push_back(
          {id, when, 0, NicEventRecord::Kind::Injected});
    }
    void onDelivered(PacketId id, Cycle when, std::uint16_t hops) override {
      events.push_back(
          {id, when, hops, NicEventRecord::Kind::Delivered});
    }
    std::vector<NicEventRecord> events;
  };

  struct Shard {
    NodeId begin = 0;
    NodeId end = 0;
    Stage stage;
  };

  enum class Phase : std::uint8_t { InjectRoute, TraversePropagate };

  void runShardPhase(Phase p, const Shard& s, Cycle now);
  /// Runs `p` on every shard (shard 0 on the calling thread) and returns
  /// once all shards completed — the per-phase barrier.
  void dispatch(Phase p, Cycle now);
  void workerLoop(std::size_t shardIndex);

  Network* net_;
  NicEvents* sink_;
  std::vector<Shard> shards_;

  // Phase hand-off: the coordinator publishes (phase_, cycle_) with a
  // release store to epoch_; workers run the phase and count down via
  // done_. Both waits spin briefly, then park on the atomic (so an
  // oversubscribed host — more shards than cores — degrades to futex
  // waits instead of burning the shared core).
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::uint32_t> done_{0};
  Phase phase_ = Phase::InjectRoute;
  Cycle cycle_ = 0;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;  ///< shards 1..N-1
};

}  // namespace rair
