// The simulation driver: owns the network, the packet ledger and the
// statistics, and runs the paper's measurement protocol (Sec. V.A): warm
// up, measure packets created during the measurement window, then keep the
// network running ("drain") until every measured packet is delivered.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string_view>
#include <vector>

#include "packet/pool.h"
#include "policy/policy.h"
#include "region/region_map.h"
#include "sim/network.h"
#include "sim/nic.h"
#include "sim/shard.h"
#include "stats/stats.h"
#include "traffic/source.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair {

struct SimConfig {
  NetworkConfig net;
  RoutingKind routing = RoutingKind::LocalAdaptive;
  Cycle warmupCycles = 10'000;    ///< paper: 10K warmup
  Cycle measureCycles = 100'000;  ///< paper: 100K measured
  Cycle drainLimit = 400'000;     ///< hard stop for the drain phase
  /// Abort if no flit moves and nothing is delivered for this many cycles
  /// while packets are in flight (deadlock/livelock tripwire).
  Cycle progressTimeout = 50'000;
  /// 0 = classic single-threaded stepping. n >= 1 runs the deterministic
  /// sharded cycle engine (sim/shard.h) with n shards/worker threads;
  /// results, observer sequences and snapshot bytes are byte-identical to
  /// the single-threaded engine for every value. Excluded from scenario
  /// snapshot keys — checkpoints are thread-count-agnostic.
  int shardThreads = 0;
};

/// How a run ended. Callers that must distinguish a clean drain from a
/// tripwire stop (e.g. the campaign engine's structured records) read this
/// instead of inferring from `fullyDrained` + `cyclesRun`.
enum class Termination : std::uint8_t {
  Drained,          ///< every measured packet delivered before the limit
  DrainLimit,       ///< drain-limit hard stop with measured packets in flight
  ProgressTimeout,  ///< deadlock/livelock tripwire: no flit moved and
                    ///< nothing was delivered for `progressTimeout` cycles
};

/// Stable lowercase name ("drained" / "drain_limit" / "progress_timeout"),
/// used in campaign JSON records.
const char* terminationName(Termination t);

/// Inverse of terminationName; nullopt for unknown names.
std::optional<Termination> terminationFromName(std::string_view name);

/// Passive observer of the simulation loop — the attachment point of the
/// simulation oracle (src/check/), the metrics recorder and the snapshot
/// tripwire. Every callback defaults to a no-op; implementations override
/// what they need and must not mutate simulation state (an observed run
/// must stay bit-identical to an unobserved one).
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// Cycle `now` is about to run: fired at the top of stepCycle(), before
  /// deferred injections and source ticks — the state capture point the
  /// snapshot tripwire uses.
  virtual void onCycleBegin(Cycle now) { (void)now; }
  /// The network finished advancing cycle `now` (all pipeline phases and
  /// congestion propagation done).
  virtual void onCycleEnd(Cycle now) { (void)now; }
  /// Packet `p` was delivered (already released from the ledger; `p` is a
  /// copy with ejectCycle/hops filled in).
  virtual void onDelivery(const Packet& p) { (void)p; }
};

/// The simulator's dynamic observer list: attach/detach in any order, no
/// slot-count ceiling. Observers fire in attachment order; detaching
/// preserves the relative order of the rest. Attachment is not part of
/// simulation state (never snapshotted): a restored run re-attaches its
/// own observers.
class ObserverSet {
 public:
  /// Appends `obs` (must be non-null and not currently attached).
  void attach(SimObserver* obs) {
    RAIR_CHECK_MSG(obs != nullptr, "ObserverSet::attach(nullptr)");
    RAIR_CHECK_MSG(!attached(obs), "observer attached twice");
    observers_.push_back(obs);
  }
  /// Removes `obs`, keeping the order of the others; false when absent.
  bool detach(const SimObserver* obs) {
    for (std::size_t i = 0; i < observers_.size(); ++i) {
      if (observers_[i] == obs) {
        observers_.erase(observers_.begin() +
                         static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
  void clear() { observers_.clear(); }
  bool attached(const SimObserver* obs) const {
    for (const SimObserver* o : observers_)
      if (o == obs) return true;
    return false;
  }
  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }

  void notifyCycleBegin(Cycle now) const {
    for (SimObserver* o : observers_) o->onCycleBegin(now);
  }
  void notifyCycleEnd(Cycle now) const {
    for (SimObserver* o : observers_) o->onCycleEnd(now);
  }
  void notifyDelivery(const Packet& p) const {
    for (SimObserver* o : observers_) o->onDelivery(p);
  }

 private:
  std::vector<SimObserver*> observers_;
};

struct RunResult {
  StatsCollector stats{1};
  Cycle cyclesRun = 0;
  bool fullyDrained = false;
  Termination termination = Termination::DrainLimit;
  std::uint64_t packetsCreated = 0;
  std::uint64_t packetsDelivered = 0;
  std::uint64_t flitHops = 0;  ///< switch traversals summed over routers

  /// Offered vs. accepted flit throughput over the measurement window
  /// (flits per cycle per node).
  double deliveredFlitRate = 0.0;
};

class Simulator final : public InjectionSink, private NicEvents {
 public:
  /// The fault subsystem's attachment surface beyond plain observation
  /// (src/fault/ implements it; the simulator core stays fault-agnostic):
  /// reachability gating of new packets, and an extra snapshot section for
  /// pending fault state. All methods are unused while no hook is set, so
  /// fault-free simulations carry zero overhead and identical bytes.
  class FaultHook {
   public:
    virtual ~FaultHook() = default;
    /// Whether a packet created now at `src` can ever reach `dst` on the
    /// (possibly degraded) topology.
    virtual bool deliverable(NodeId src, NodeId dst) const = 0;
    /// Whether the hook currently holds state the snapshot must carry
    /// (pending events, dead links, stalls, freezes, lost credits).
    virtual bool snapshotRelevant() const = 0;
    virtual void save(snapshot::Writer& w) const = 0;
    virtual void restore(snapshot::Reader& r) = 0;
  };

  /// @param numApps size of the per-app stats table; must cover every
  ///        AppId the sources use (which may exceed regions.numApps(),
  ///        e.g. the adversarial flooder of Fig. 17).
  Simulator(const Mesh& mesh, const RegionMap& regions, SimConfig config,
            const ArbiterPolicy& policy, int numApps);

  /// Adds a generator ticked every cycle until the measurement window ends
  /// (sources keep running during drain so measured stragglers experience
  /// realistic contention).
  void addSource(std::unique_ptr<TrafficSource> src);

  /// Optional hook fired on every delivery — used by the trace substrate
  /// to synthesize replies to requests. Installing a hook reverts the
  /// simulator to single-threaded stepping: a hook may create packets
  /// mid-delivery, which the sharded engine's staged replay cannot
  /// reproduce in the single-threaded event order.
  using DeliveryHook = std::function<void(const Packet&, InjectionSink&)>;
  void setDeliveryHook(DeliveryHook hook);

  /// Schedules a packet to be created at a future cycle (e.g. a reply
  /// after a cache-service latency).
  void injectAt(Cycle when, NodeId src, NodeId dst, AppId app, MsgClass cls,
                std::uint16_t numFlits);

  /// Runs warmup + measurement + drain; returns the collected results.
  RunResult run();

  // --- Incremental driving (benches, allocation tests) -------------------
  /// Opens the measurement windows. run() calls this itself; call it
  /// directly only when driving the simulation with stepCycle().
  void begin();
  /// Advances one cycle: deferred injections, source ticks, network step.
  /// No termination logic — callers own the loop.
  void stepCycle();
  /// Packets currently in flight (created, not yet delivered).
  std::size_t inFlight() const { return ledger_.inFlight(); }

  // InjectionSink:
  PacketId createPacket(NodeId src, NodeId dst, AppId app, MsgClass cls,
                        std::uint16_t numFlits) override;
  Cycle now() const override { return now_; }

  Network& network() { return *net_; }
  const Network& network() const { return *net_; }

  /// The live-packet ledger (read-only; the oracle audits it against the
  /// flits found in the network).
  const PacketPool& ledger() const { return ledger_; }

  /// The dynamic observer list (oracle, metrics recorder, snapshot
  /// tripwire, test probes — any number). Observers fire in attachment
  /// order; when the set is empty the per-cycle cost is two empty loops.
  ObserverSet& observers() { return observers_; }
  const ObserverSet& observers() const { return observers_; }

  /// Registers (or clears, with nullptr) the fault subsystem's hook. The
  /// hook outlives the simulator's use of it; exactly one may be set.
  void setFaultHook(FaultHook* hook) { faultHook_ = hook; }

  /// Accounted removal of a live packet by the fault layer: releases the
  /// ledger entry and moves the packet into the droppedByFault bucket so
  /// conservation censuses (`created == delivered + dropped + in flight`)
  /// keep closing. The caller must already have purged every flit of the
  /// packet from the network.
  void faultDropPacket(PacketId id);

  /// Packets/flits removed by fault injection since construction.
  std::uint64_t droppedByFault() const { return droppedByFault_; }
  std::uint64_t droppedFlitsByFault() const { return droppedFlitsByFault_; }

  // --- Snapshot/restore ---------------------------------------------------
  /// Whether this simulation's complete state can be captured: every
  /// source must support snapshotting and no delivery hook may be
  /// installed (hooks create packets from state the snapshot cannot see).
  bool snapshotSupported() const;

  /// Serializes the complete mutable state (and restores it into an
  /// identically constructed simulator: same mesh/regions/config/policy,
  /// same sources added in the same order).
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

  /// Installs a hook fired at the top of stepCycle() when exactly
  /// `savePoint` cycles have completed, and additionally every `every`
  /// cycles when `every` is non-zero. The hook may save the simulator but
  /// must not mutate it. Implemented as an internal onCycleBegin observer
  /// (the "snapshot tripwire") attached to the ObserverSet; a null hook
  /// detaches it, making an idle simulator's begin-of-cycle loop empty.
  using SnapshotHook = std::function<void(const Simulator&, Cycle)>;
  void setSnapshotHook(SnapshotHook hook, Cycle savePoint, Cycle every = 0);

 private:
  // NicEvents: every NIC reports into the simulator's ledger directly
  // (via the sharded engine's staged replay when one is active).
  void onInjected(PacketId id, Cycle when) override;
  void onDelivered(PacketId id, Cycle when, std::uint16_t hops) override;

  /// The snapshot predicate as a begin-of-cycle observer: fires the hook
  /// when the save point or the periodic interval is due.
  struct SnapshotTripwire final : SimObserver {
    void onCycleBegin(Cycle now) override;
    const Simulator* sim = nullptr;
    SnapshotHook hook;
    Cycle savePoint = kNeverCycle;
    Cycle every = 0;
  };

  const Mesh* mesh_;
  SimConfig config_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ShardEngine> engine_;  ///< present when shardThreads >= 1
  std::vector<std::unique_ptr<TrafficSource>> sources_;
  StatsCollector stats_;
  DeliveryHook deliveryHook_;

  PacketPool ledger_{4096};
  struct Deferred {
    Cycle when;
    NodeId src, dst;
    AppId app;
    MsgClass cls;
    std::uint16_t numFlits;
    bool operator>(const Deferred& o) const { return when > o.when; }
  };
  /// priority_queue with its protected container exposed: the snapshot
  /// serializes the heap vector verbatim, so a restored queue pops in the
  /// exact order (including tie order) the saved one would.
  struct DeferredQueue
      : std::priority_queue<Deferred, std::vector<Deferred>,
                            std::greater<>> {
    const std::vector<Deferred>& container() const { return c; }
    std::vector<Deferred>& container() { return c; }
  };
  DeferredQueue deferred_;

  ObserverSet observers_;
  FaultHook* faultHook_ = nullptr;
  Cycle now_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t measuredFlitsDelivered_ = 0;
  std::uint64_t droppedByFault_ = 0;
  std::uint64_t droppedFlitsByFault_ = 0;

  // Progress-tripwire bookkeeping. Members (not run() locals) so they are
  // part of the snapshot: a restored run must fire the deadlock tripwire
  // at the same cycle the uninterrupted one would.
  Cycle lastProgress_ = 0;
  std::uint64_t lastDelivered_ = 0;

  SnapshotTripwire snapTripwire_;
};

}  // namespace rair
