#include "sim/nic.h"

#include "common/assert.h"
#include "snapshot/codec.h"

namespace rair {

Nic::Nic(NodeId node, AppId appTag, const VcLayout& layout, int routerVcDepth,
         bool atomicVcs)
    : node_(node),
      appTag_(appTag),
      layout_(layout),
      vcDepth_(routerVcDepth),
      atomicVcs_(atomicVcs),
      credits_(static_cast<size_t>(layout.totalVcs()), routerVcDepth),
      headHops_(static_cast<size_t>(layout.totalVcs()), 0) {
  // At most one stream per claimable VC; reserving here keeps the
  // injection path allocation-free.
  active_.reserve(static_cast<size_t>(layout.totalVcs()));
  queues_.reserve(16);  // (class, app) pairs actually seen; grows if more
}

void Nic::connect(LinkLayer* toRouter, LinkLayer* fromRouter) {
  toRouter_ = toRouter;
  fromRouter_ = fromRouter;
  linksNeedTicks_ = toRouter->kind() != LinkLayerKind::Ideal ||
                    fromRouter->kind() != LinkLayerKind::Ideal;
}

Nic::SubQueue& Nic::subQueue(MsgClass cls, AppId app) {
  for (auto& q : queues_) {
    if (q.cls == cls && q.app == app) return q;
  }
  queues_.push_back(SubQueue{cls, app, {}});
  return queues_.back();
}

void Nic::enqueue(const Packet& p) {
  RAIR_CHECK(p.src == node_);
  RAIR_CHECK(static_cast<int>(p.msgClass) < layout_.numClasses());
  subQueue(p.msgClass, p.app).packets.push_back(p);
}

std::size_t Nic::queuedPackets() const {
  std::size_t n = active_.size();
  for (const auto& q : queues_) n += q.packets.size();
  return n;
}

bool Nic::quiescent() const { return queuedPackets() == 0; }

int Nic::claimVc(const Packet& p) const {
  const int base = layout_.firstVcOf(p.msgClass);
  const int end = base + layout_.vcsPerClass();
  auto usable = [&](int vc) {
    for (const auto& s : active_)
      if (s.vc == vc) return false;
    // Escape VCs (and all VCs in atomic mode) need a fully drained
    // downstream buffer; non-atomic adaptive VCs need room for the whole
    // packet (deadlock safety, same rule as in-network allocation).
    if (atomicVcs_ || layout_.isEscape(vc))
      return credits_[static_cast<size_t>(vc)] == vcDepth_;
    return credits_[static_cast<size_t>(vc)] >= p.numFlits;
  };
  if (!layout_.rairPartition()) {
    for (int vc = base + 1; vc < end; ++vc)
      if (usable(vc)) return vc;
    if (usable(base)) return base;  // escape VC as last resort
    return -1;
  }
  const bool native = appTag_ != kNoApp && p.app == appTag_;
  const VcClass preferred = native ? VcClass::Regional : VcClass::Global;
  int fallback = -1;
  for (int vc = base + 1; vc < end; ++vc) {
    if (!usable(vc)) continue;
    if (layout_.typeOf(vc) == preferred) return vc;
    if (fallback < 0) fallback = vc;
  }
  if (fallback >= 0) return fallback;
  if (usable(base)) return base;
  return -1;
}

void Nic::tick(Cycle now) {
  RAIR_CHECK_MSG(toRouter_ && fromRouter_, "NIC not connected");

  // Credits returned by the router's Local input port.
  while (const CreditMsg* credit = toRouter_->peekCredit(now)) {
    auto& c = credits_[static_cast<size_t>(credit->vc)];
    toRouter_->popCredit();
    ++c;
    RAIR_CHECK_MSG(c <= vcDepth_, "NIC credit overflow");
  }

  // Ejection: drain arriving flits, return credits immediately.
  while (const FlitMsg* msg = fromRouter_->peekFlit(now)) {
    const int vc = msg->vc;
    const Flit f = msg->flit;
    fromRouter_->popFlit();
    fromRouter_->sendCredit(now, vc);
    if (isHead(f.type)) headHops_[static_cast<size_t>(vc)] = f.hops;
    if (isTail(f.type) && events_)
      events_->onDelivered(f.pkt, now, headHops_[static_cast<size_t>(vc)]);
  }

  injectPhase(now);

  // Link-layer per-cycle hooks. The NIC runs inside phase A, before its
  // own router's beginCycle, so pumping the inject link here keeps
  // same-cycle delivery timing and the single writer-per-phase wire
  // discipline (see link_layer.h). Ideal links need no ticks; the flag
  // computed at connect() keeps them off the per-cycle path entirely.
  if (linksNeedTicks_) {
    toRouter_->tickUpstream(now);
    fromRouter_->tickDownstream(now);
  }
}

void Nic::injectPhase(Cycle now) {
  // VC claims: round-robin over the per-(class, app) sub-queues so one
  // application's backlog cannot monopolize the claim opportunities.
  if (injectFrozen_) return;  // fault freeze: no claims, no injection
  if (!queues_.empty()) {
    const std::size_t nq = queues_.size();
    for (std::size_t off = 0; off < nq; ++off) {
      SubQueue& q = queues_[(rrQueue_ + off) % nq];
      if (q.packets.empty()) continue;
      const int vc = claimVc(q.packets.front());
      if (vc < 0) continue;
      Stream s;
      s.pkt = q.packets.front();
      s.vc = vc;
      q.packets.pop_front();
      active_.push_back(s);
    }
    rrQueue_ = (rrQueue_ + 1) % nq;
  }

  // Inject at most one flit (link bandwidth), round-robin over streams.
  if (active_.empty()) return;
  const std::size_t n = active_.size();
  for (std::size_t off = 0; off < n; ++off) {
    const std::size_t idx = (rrNext_ + off) % n;
    Stream& s = active_[idx];
    if (credits_[static_cast<size_t>(s.vc)] <= 0) continue;
    const Flit f = makeFlit(s.pkt, s.next);
    toRouter_->sendFlit(now, f, s.vc);
    --credits_[static_cast<size_t>(s.vc)];
    if (isHead(f.type) && events_) events_->onInjected(s.pkt.id, now);
    ++s.next;
    rrNext_ = (idx + 1) % n;
    if (s.next == s.pkt.numFlits)
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(idx));
    break;
  }
}

void Nic::save(snapshot::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(queues_.size()));
  for (const SubQueue& q : queues_) {
    w.u8(static_cast<std::uint8_t>(q.cls));
    w.u16(static_cast<std::uint16_t>(q.app));
    snapshot::saveRing(w, q.packets, snapshot::savePacket);
  }
  w.u32(static_cast<std::uint32_t>(active_.size()));
  for (const Stream& s : active_) {
    snapshot::savePacket(w, s.pkt);
    w.u16(s.next);
    w.i32(s.vc);
  }
  w.u32(static_cast<std::uint32_t>(credits_.size()));
  for (const int c : credits_) w.i32(c);
  for (const std::uint16_t h : headHops_) w.u16(h);
  w.u64(rrNext_);
  w.u64(rrQueue_);
}

void Nic::restore(snapshot::Reader& r) {
  const std::uint32_t numQueues = r.u32();
  queues_.clear();
  for (std::uint32_t i = 0; i < numQueues; ++i) {
    const auto cls = static_cast<MsgClass>(r.u8());
    const auto app = static_cast<AppId>(r.u16());
    queues_.push_back(SubQueue{cls, app, {}});
    snapshot::restoreRing(r, queues_.back().packets,
                          snapshot::restorePacket);
  }
  const std::uint32_t numActive = r.u32();
  active_.clear();
  for (std::uint32_t i = 0; i < numActive; ++i) {
    Stream s;
    snapshot::restorePacket(r, s.pkt);
    s.next = r.u16();
    s.vc = r.i32();
    active_.push_back(s);
  }
  RAIR_CHECK_MSG(r.u32() == credits_.size(),
                 "nic restore: VC count mismatch");
  for (int& c : credits_) c = r.i32();
  for (std::uint16_t& h : headHops_) h = r.u16();
  rrNext_ = static_cast<std::size_t>(r.u64());
  rrQueue_ = static_cast<std::size_t>(r.u64());
}

}  // namespace rair
