// Reconfigurable routing tables for degraded topologies.
//
// When the fault subsystem kills a link (or soft-resets a router, which
// kills its incident links for the duration), minimal XY escape routing is
// no longer deadlock-free (the dimension-ordered path may cross the dead
// channel). RoutingTables maintains, per dead-link set, the LBDR-style
// per-node connectivity bits plus full routing tables for the degraded
// graph:
//
//   * escape routes follow a BFS spanning tree per connected component
//     (root = lowest node id). Routing along the unique tree path is the
//     up*/down* special case, so the escape subnetwork stays cycle-free
//     and Duato's protocol keeps holding on the degraded graph.
//   * adaptive candidates are the BFS-distance-decreasing directions on
//     the degraded graph (capped at two, enumerated in fixed N,E,S,W
//     order), so adaptive VCs retain path diversity where it exists.
//
// Reconfiguration engine. setLinkDead() only flips connectivity flags and
// marks the components touching the changed channel dirty; commit()
// repairs the tables incrementally, bounded to the union of dirty
// components: component relabeling, spanning-tree rebuild and the
// per-destination distance/tree columns are all recomputed only over that
// affected set. The invariant making this sound is that the affected set
// is closed under alive edges — an alive edge leaving it would either have
// been alive at the last commit (same component, so the far side is
// affected too) or have been revived since (which dirtied the far side's
// component). Repaired dist/tree entries are byte-identical to a full
// rebuild; component labels are fresh (never reused), so only the
// partition — not the numeric label — is stable, and every consumer
// (reachable(), unreachablePairs()) is label-invariant. Under
// -DRAIR_CHECKS=ON every commit() cross-checks itself against a
// from-scratch rebuild. recompute() remains the full O(N^2) rebuild, used
// at construction, on snapshot restore, and as the cross-check reference.
//
// Tables are repaired only at fault events, never on the cycle hot path.
// While no link is dead (`active() == false`) the routing layer bypasses
// this object entirely, keeping fault-free runs byte-identical to a build
// without the fault subsystem attached.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing.h"
#include "topology/mesh.h"

namespace rair {

class RoutingTables {
 public:
  explicit RoutingTables(const Mesh& mesh);

  /// Marks the undirected physical channel leaving `n` through `d` dead or
  /// alive. Both directions of the channel fail together. Dirties the
  /// components touching the channel; call commit() (incremental) or
  /// recompute() (full) after a batch of changes, before any routing
  /// query.
  void setLinkDead(NodeId n, Dir d, bool dead);

  /// True when the router-router channel leaving `n` through `d` exists
  /// and is not dead. Local is always alive; mesh-edge ports are not.
  bool linkAlive(NodeId n, Dir d) const;

  bool active() const { return numDead_ > 0; }
  int numDeadLinks() const { return numDead_; }  ///< undirected channels

  /// Incrementally repairs components, distances and spanning-tree escape
  /// tables for every component dirtied since the last commit/recompute.
  /// O(|affected|^2); a no-op when nothing changed. Under RAIR_CHECKS the
  /// result is verified against a from-scratch rebuild.
  void commit();

  /// Full rebuild of components, distances and spanning-tree escape
  /// tables for the current dead-link set. O(N^2) regardless of what
  /// changed; commit() is the incremental equivalent.
  void recompute();

  /// Test/bench hook: while true, commit() falls back to the full
  /// rebuild, so a scenario can be A/B'd between the incremental and the
  /// full-rebuild paths (outputs must be byte-identical).
  static bool forceFullRebuildForTest;

  /// LBDR-style connectivity bits of the alive router-router links at `n`:
  /// bit 0 = North, 1 = East, 2 = South, 3 = West.
  std::uint8_t connectivityBits(NodeId n) const;

  bool reachable(NodeId a, NodeId b) const {
    return comp_[static_cast<std::size_t>(a)] ==
           comp_[static_cast<std::size_t>(b)];
  }
  int componentOf(NodeId n) const {
    return comp_[static_cast<std::size_t>(n)];
  }

  /// Ordered node pairs (a, b), a != b, with no path between them. Cached
  /// between topology events; the first query after a commit/recompute
  /// pays one O(N) scan, later ones are free.
  std::uint64_t unreachablePairs() const;

  /// BFS hop distance on the degraded graph, -1 when unreachable.
  int distance(NodeId from, NodeId to) const;

  /// Next hop along the spanning-tree escape path. Requires
  /// reachable(here, dst) and here != dst.
  Dir escapeDir(NodeId here, NodeId dst) const;

  /// Full RC result on the degraded graph. Requires reachable(here, dst).
  RouteResult routeFor(NodeId here, NodeId dst) const;

  const Mesh& mesh() const { return *mesh_; }

 private:
  static int dirIndex(Dir d) { return static_cast<int>(d) - 1; }
  std::size_t at(NodeId dst, NodeId node) const {
    return static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(node);
  }

  void markDirty(std::int32_t comp);
  bool isDirty(std::int32_t comp) const;
  /// Relabels + rebuilds tree/distance state over the dirty components.
  void repairAffected();
  /// Rebuilds the per-destination distance and tree columns for `dst`,
  /// clearing only the entries listed in `scope` first (the affected set
  /// for commit(), all nodes for recompute()).
  void rebuildColumns(NodeId dst, const std::vector<NodeId>& scope);
  /// Derives treeAdj_ bits from treeParent_ over `scope`.
  void rebuildTreeAdj(const std::vector<NodeId>& scope);
  std::uint64_t computeUnreachablePairs() const;
#ifdef RAIR_CHECKS
  void crossCheckAgainstFullRebuild() const;
#endif

  const Mesh* mesh_;
  int n_;
  std::vector<std::uint8_t> deadOut_;   ///< n*4 directed flags (symmetric)
  int numDead_ = 0;                     ///< undirected dead channels
  std::vector<std::int32_t> comp_;      ///< component label per node
  std::vector<std::int16_t> dist_;      ///< [dst*n + node] graph distance
  std::vector<std::uint8_t> treeDir_;   ///< [dst*n + node] tree next hop
  std::vector<std::uint8_t> treeParent_;  ///< dir toward BFS parent
  std::vector<std::uint8_t> treeAdj_;     ///< alive dirs that are tree edges
  std::int32_t nextComp_ = 0;           ///< fresh labels, never reused
  std::vector<std::int32_t> dirtyComps_;  ///< components awaiting commit()
  bool pending_ = false;
  std::vector<NodeId> queue_;           ///< BFS scratch
  std::vector<std::uint8_t> seen_;      ///< per-node scratch, n bytes
  mutable std::uint64_t unreachCache_ = 0;
  mutable bool unreachValid_ = false;
};

}  // namespace rair
