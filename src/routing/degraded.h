// Compatibility shim: the degraded-topology tables grew into the
// reconfiguration engine in routing/tables.h. `DegradedTopology` remains
// the historical name for the same object — the fault layer and the tests
// written against PR 8 keep compiling unchanged.
#pragma once

#include "routing/tables.h"

namespace rair {

using DegradedTopology = RoutingTables;

}  // namespace rair
