// Degraded-topology routing tables for fault injection.
//
// When the fault subsystem kills a link, minimal XY escape routing is no
// longer deadlock-free (the dimension-ordered path may cross the dead
// channel). DegradedTopology maintains, per dead-link set, the LBDR-style
// per-node connectivity bits plus full routing tables for the degraded
// graph:
//
//   * escape routes follow a BFS spanning tree per connected component
//     (root = lowest node id). Routing along the unique tree path is the
//     up*/down* special case, so the escape subnetwork stays cycle-free
//     and Duato's protocol keeps holding on the degraded graph.
//   * adaptive candidates are the BFS-distance-decreasing directions on
//     the degraded graph (capped at two, enumerated in fixed N,E,S,W
//     order), so adaptive VCs retain path diversity where it exists.
//
// Tables are O(N^2) and recomputed only at fault events, never on the
// cycle hot path. While no link is dead (`active() == false`) the routing
// layer bypasses this object entirely, keeping fault-free runs
// byte-identical to a build without the fault subsystem attached.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/routing.h"
#include "topology/mesh.h"

namespace rair {

class DegradedTopology {
 public:
  explicit DegradedTopology(const Mesh& mesh);

  /// Marks the undirected physical channel leaving `n` through `d` dead or
  /// alive. Both directions of the channel fail together. Call recompute()
  /// after a batch of changes, before any routing query.
  void setLinkDead(NodeId n, Dir d, bool dead);

  /// True when the router-router channel leaving `n` through `d` exists
  /// and is not dead. Local is always alive; mesh-edge ports are not.
  bool linkAlive(NodeId n, Dir d) const;

  bool active() const { return numDead_ > 0; }
  int numDeadLinks() const { return numDead_; }  ///< undirected channels

  /// Rebuilds components, distances and spanning-tree escape tables for
  /// the current dead-link set.
  void recompute();

  /// LBDR-style connectivity bits of the alive router-router links at `n`:
  /// bit 0 = North, 1 = East, 2 = South, 3 = West.
  std::uint8_t connectivityBits(NodeId n) const;

  bool reachable(NodeId a, NodeId b) const {
    return comp_[static_cast<std::size_t>(a)] ==
           comp_[static_cast<std::size_t>(b)];
  }
  int componentOf(NodeId n) const {
    return comp_[static_cast<std::size_t>(n)];
  }

  /// Ordered node pairs (a, b), a != b, with no path between them.
  std::uint64_t unreachablePairs() const;

  /// BFS hop distance on the degraded graph, -1 when unreachable.
  int distance(NodeId from, NodeId to) const;

  /// Next hop along the spanning-tree escape path. Requires
  /// reachable(here, dst) and here != dst.
  Dir escapeDir(NodeId here, NodeId dst) const;

  /// Full RC result on the degraded graph. Requires reachable(here, dst).
  RouteResult routeFor(NodeId here, NodeId dst) const;

  const Mesh& mesh() const { return *mesh_; }

 private:
  static int dirIndex(Dir d) { return static_cast<int>(d) - 1; }
  std::size_t at(NodeId dst, NodeId node) const {
    return static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(node);
  }

  const Mesh* mesh_;
  int n_;
  std::vector<std::uint8_t> deadOut_;   ///< n*4 directed flags (symmetric)
  int numDead_ = 0;                     ///< undirected dead channels
  std::vector<std::int32_t> comp_;      ///< component label per node
  std::vector<std::int16_t> dist_;      ///< [dst*n + node] graph distance
  std::vector<std::uint8_t> treeDir_;   ///< [dst*n + node] tree next hop
};

}  // namespace rair
