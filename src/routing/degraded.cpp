#include "routing/degraded.h"

#include <algorithm>

#include "common/assert.h"

namespace rair {

namespace {

// Deterministic neighbor enumeration order for every BFS in this file.
constexpr Dir kScanOrder[4] = {Dir::North, Dir::East, Dir::South, Dir::West};

}  // namespace

DegradedTopology::DegradedTopology(const Mesh& mesh)
    : mesh_(&mesh),
      n_(mesh.numNodes()),
      deadOut_(static_cast<std::size_t>(mesh.numNodes()) * 4, 0),
      comp_(static_cast<std::size_t>(mesh.numNodes()), 0),
      dist_(static_cast<std::size_t>(mesh.numNodes()) *
                static_cast<std::size_t>(mesh.numNodes()),
            0),
      treeDir_(static_cast<std::size_t>(mesh.numNodes()) *
                   static_cast<std::size_t>(mesh.numNodes()),
               static_cast<std::uint8_t>(Dir::Local)) {
  recompute();
}

void DegradedTopology::setLinkDead(NodeId n, Dir d, bool dead) {
  RAIR_CHECK(mesh_->contains(n) && d != Dir::Local);
  const auto nb = mesh_->neighbor(n, d);
  RAIR_CHECK_MSG(nb.has_value(), "setLinkDead: no channel at mesh edge");
  auto& fwd = deadOut_[static_cast<std::size_t>(n) * 4 +
                       static_cast<std::size_t>(dirIndex(d))];
  auto& rev = deadOut_[static_cast<std::size_t>(*nb) * 4 +
                       static_cast<std::size_t>(dirIndex(opposite(d)))];
  RAIR_DCHECK(fwd == rev);
  const std::uint8_t v = dead ? 1 : 0;
  if (fwd == v) return;
  fwd = rev = v;
  numDead_ += dead ? 1 : -1;
  RAIR_DCHECK(numDead_ >= 0);
}

bool DegradedTopology::linkAlive(NodeId n, Dir d) const {
  if (d == Dir::Local) return true;
  if (!mesh_->neighbor(n, d).has_value()) return false;
  return deadOut_[static_cast<std::size_t>(n) * 4 +
                  static_cast<std::size_t>(dirIndex(d))] == 0;
}

std::uint8_t DegradedTopology::connectivityBits(NodeId n) const {
  std::uint8_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    const Dir d = static_cast<Dir>(i + 1);
    if (linkAlive(n, d)) bits |= static_cast<std::uint8_t>(1u << i);
  }
  return bits;
}

void DegradedTopology::recompute() {
  // Component labels: BFS from each unvisited node, lowest id first.
  std::fill(comp_.begin(), comp_.end(), -1);
  std::vector<NodeId> queue;
  queue.reserve(static_cast<std::size_t>(n_));
  int nextComp = 0;
  for (NodeId root = 0; root < n_; ++root) {
    if (comp_[static_cast<std::size_t>(root)] >= 0) continue;
    const int label = nextComp++;
    queue.clear();
    queue.push_back(root);
    comp_[static_cast<std::size_t>(root)] = label;
    // `parent` of the component's BFS spanning tree: the direction from a
    // node back toward its BFS parent (Local for the root).
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId cur = queue[head];
      for (Dir d : kScanOrder) {
        if (!linkAlive(cur, d)) continue;
        const NodeId nb = *mesh_->neighbor(cur, d);
        if (comp_[static_cast<std::size_t>(nb)] >= 0) continue;
        comp_[static_cast<std::size_t>(nb)] = label;
        queue.push_back(nb);
      }
    }
  }

  // Spanning tree per component (root = lowest node id, which is the BFS
  // seed above). treeParent[node] = direction toward the BFS parent.
  std::vector<std::uint8_t> treeParent(static_cast<std::size_t>(n_),
                                       static_cast<std::uint8_t>(Dir::Local));
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n_), 0);
  for (NodeId root = 0; root < n_; ++root) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    queue.clear();
    queue.push_back(root);
    seen[static_cast<std::size_t>(root)] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId cur = queue[head];
      for (Dir d : kScanOrder) {
        if (!linkAlive(cur, d)) continue;
        const NodeId nb = *mesh_->neighbor(cur, d);
        if (seen[static_cast<std::size_t>(nb)]) continue;
        seen[static_cast<std::size_t>(nb)] = 1;
        treeParent[static_cast<std::size_t>(nb)] =
            static_cast<std::uint8_t>(opposite(d));
        queue.push_back(nb);
      }
    }
  }

  // Tree adjacency: node -> alive dirs that are tree edges (either the
  // node's parent edge or a child's parent edge seen from this side).
  std::vector<std::uint8_t> treeAdj(static_cast<std::size_t>(n_), 0);
  for (NodeId v = 0; v < n_; ++v) {
    const Dir pd = static_cast<Dir>(treeParent[static_cast<std::size_t>(v)]);
    if (pd == Dir::Local) continue;  // component root
    const NodeId p = *mesh_->neighbor(v, pd);
    treeAdj[static_cast<std::size_t>(v)] |=
        static_cast<std::uint8_t>(1u << dirIndex(pd));
    treeAdj[static_cast<std::size_t>(p)] |=
        static_cast<std::uint8_t>(1u << dirIndex(opposite(pd)));
  }

  // Per-destination tables: graph distances (adaptive candidates) and the
  // first hop of the unique tree path (escape candidates).
  std::fill(dist_.begin(), dist_.end(), std::int16_t{-1});
  std::fill(treeDir_.begin(), treeDir_.end(),
            static_cast<std::uint8_t>(Dir::Local));
  for (NodeId dst = 0; dst < n_; ++dst) {
    // Graph BFS from dst.
    queue.clear();
    queue.push_back(dst);
    dist_[at(dst, dst)] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId cur = queue[head];
      const std::int16_t dc = dist_[at(dst, cur)];
      for (Dir d : kScanOrder) {
        if (!linkAlive(cur, d)) continue;
        const NodeId nb = *mesh_->neighbor(cur, d);
        if (dist_[at(dst, nb)] >= 0) continue;
        dist_[at(dst, nb)] = static_cast<std::int16_t>(dc + 1);
        queue.push_back(nb);
      }
    }
    // Tree BFS from dst: the first edge out of `node` on the unique tree
    // path to dst is the edge through which the BFS from dst reached it.
    queue.clear();
    queue.push_back(dst);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId cur = queue[head];
      for (Dir d : kScanOrder) {
        if (!(treeAdj[static_cast<std::size_t>(cur)] &
              (1u << dirIndex(d))))
          continue;
        const NodeId nb = *mesh_->neighbor(cur, d);
        if (nb == dst || treeDir_[at(dst, nb)] !=
                             static_cast<std::uint8_t>(Dir::Local))
          continue;
        treeDir_[at(dst, nb)] = static_cast<std::uint8_t>(opposite(d));
        queue.push_back(nb);
      }
    }
  }
}

std::uint64_t DegradedTopology::unreachablePairs() const {
  std::vector<std::uint64_t> sizes;
  for (NodeId v = 0; v < n_; ++v) {
    const auto label = static_cast<std::size_t>(comp_[v]);
    if (label >= sizes.size()) sizes.resize(label + 1, 0);
    ++sizes[label];
  }
  const auto total = static_cast<std::uint64_t>(n_);
  std::uint64_t pairs = total * (total - 1);
  for (const std::uint64_t s : sizes) pairs -= s * (s - 1);
  return pairs;
}

int DegradedTopology::distance(NodeId from, NodeId to) const {
  RAIR_DCHECK(mesh_->contains(from) && mesh_->contains(to));
  return dist_[at(to, from)];
}

Dir DegradedTopology::escapeDir(NodeId here, NodeId dst) const {
  RAIR_DCHECK(here != dst && reachable(here, dst));
  const Dir d = static_cast<Dir>(treeDir_[at(dst, here)]);
  RAIR_DCHECK(d != Dir::Local);
  return d;
}

RouteResult DegradedTopology::routeFor(NodeId here, NodeId dst) const {
  RouteResult r;
  if (here == dst) {
    r.ejecting = true;
    return r;
  }
  RAIR_CHECK_MSG(reachable(here, dst),
                 "degraded routeFor: destination unreachable");
  const std::int16_t dh = dist_[at(dst, here)];
  for (Dir d : kScanOrder) {
    if (r.numAdaptive >= 2) break;
    if (!linkAlive(here, d)) continue;
    const NodeId nb = *mesh_->neighbor(here, d);
    if (dist_[at(dst, nb)] == dh - 1)
      r.adaptiveDirs[static_cast<std::size_t>(r.numAdaptive++)] = d;
  }
  RAIR_DCHECK(r.numAdaptive >= 1);
  r.escapeDir = escapeDir(here, dst);
  return r;
}

}  // namespace rair
