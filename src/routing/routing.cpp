#include "routing/routing.h"

#include <algorithm>

#include "common/assert.h"
#include "routing/tables.h"

namespace rair {

RouteResult RoutingAlgorithm::computeCandidates(const Mesh& mesh,
                                                NodeId here,
                                                const Flit& head) const {
  if (degraded_ != nullptr && degraded_->active())
    return degraded_->routeFor(here, head.dst);
  RouteResult r;
  if (head.dst == here) {
    r.ejecting = true;
    r.escapeDir = Dir::Local;
    return r;
  }
  const auto md = mesh.minimalDirs(here, head.dst);
  RAIR_DCHECK(md.count >= 1);
  r.numAdaptive = md.count;
  r.adaptiveDirs = md.dirs;
  // XY escape: X dimension first. minimalDirs lists the X direction first
  // when X offset remains, so the escape direction is simply dirs[0].
  r.escapeDir = md.dirs[0];
  return r;
}

void XyRouting::orderBySelection(const Mesh&, const CongestionView&, NodeId,
                                 const Flit&, RouteResult& route) const {
  // Deterministic: collapse to the single preferred direction. Minimal RC
  // lists the X direction first, so this is the XY path; under degraded
  // routing adaptiveDirs[0] is the first distance-decreasing direction
  // (the escape direction may not be a candidate there).
  if (route.ejecting || route.numAdaptive == 0) return;
  route.numAdaptive = 1;
}

void LocalAdaptiveRouting::orderBySelection(const Mesh& /*mesh*/,
                                            const CongestionView& view,
                                            NodeId here, const Flit& /*head*/,
                                            RouteResult& route) const {
  if (route.numAdaptive < 2) return;
  const int f0 = view.freeVcsThrough(here, route.adaptiveDirs[0]);
  const int f1 = view.freeVcsThrough(here, route.adaptiveDirs[1]);
  if (f1 > f0) std::swap(route.adaptiveDirs[0], route.adaptiveDirs[1]);
}

void DbarRouting::orderBySelection(const Mesh& mesh,
                                   const CongestionView& view, NodeId here,
                                   const Flit& head,
                                   RouteResult& route) const {
  if (route.numAdaptive < 2) return;
  const Coord ch = mesh.coordOf(here);
  const Coord cd = mesh.coordOf(head.dst);
  auto metric = [&](Dir d) {
    // Remaining hops along this dimension toward the destination.
    const int dimRemaining = (d == Dir::East || d == Dir::West)
                                 ? std::abs(cd.x - ch.x)
                                 : std::abs(cd.y - ch.y);
    // Horizon: stop at the current region's boundary (information from
    // other regions is discarded) or at the destination column/row. Always
    // look at least one hop ahead.
    const int horizon =
        std::max(1, std::min(dimRemaining, regions_->regionExtent(here, d)));
    return view.aggregatedFree(here, d, horizon);
  };
  if (metric(route.adaptiveDirs[1]) > metric(route.adaptiveDirs[0]))
    std::swap(route.adaptiveDirs[0], route.adaptiveDirs[1]);
}

std::unique_ptr<RoutingAlgorithm> makeRouting(RoutingKind kind,
                                              const RegionMap* regions) {
  switch (kind) {
    case RoutingKind::Xy:
      return std::make_unique<XyRouting>();
    case RoutingKind::LocalAdaptive:
      return std::make_unique<LocalAdaptiveRouting>();
    case RoutingKind::Dbar:
      RAIR_CHECK_MSG(regions != nullptr, "DBAR requires a region map");
      return std::make_unique<DbarRouting>(*regions);
  }
  RAIR_CHECK_MSG(false, "unknown RoutingKind");
}

}  // namespace rair
