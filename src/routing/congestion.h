// Congestion information available to adaptive routing selection
// functions.
//
// The network implements this view. Two granularities are exposed:
//
//  * freeVcsThrough(n, d): what router n knows *locally* (from credits)
//    about the downstream router reached through port d — the information
//    a classical locally-adaptive router uses [Baydal et al., TPDS'05].
//
//  * aggregatedFree(n, d, hops): the sum of free-VC counts over the first
//    `hops` routers along direction d starting at n, as propagated over a
//    dedicated information network at one hop per cycle — the style of
//    non-local information RCA [Gratz et al., HPCA'08] and DBAR [Ma et
//    al., ISCA'11] use. Values for routers h hops away are h cycles old,
//    matching the wire delay of a real side-band network.
#pragma once

#include "common/types.h"
#include "topology/mesh.h"

namespace rair {

class CongestionView {
 public:
  virtual ~CongestionView() = default;

  /// Number of output VCs at router `n`, port `d`, currently available for
  /// allocation (not allocated and fully credited). Local knowledge.
  virtual int freeVcsThrough(NodeId n, Dir d) const = 0;

  /// Sum of freeVcsThrough over the chain of `hops` routers starting at
  /// `n` and walking direction `d` (n itself first). Delayed by wire
  /// propagation. hops is clamped to the mesh edge.
  virtual int aggregatedFree(NodeId n, Dir d, int hops) const = 0;
};

}  // namespace rair
