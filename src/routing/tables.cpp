#include "routing/tables.h"

#include <algorithm>
#include <unordered_map>

#include "common/assert.h"

namespace rair {

namespace {

// Deterministic neighbor enumeration order for every BFS in this file.
constexpr Dir kScanOrder[4] = {Dir::North, Dir::East, Dir::South, Dir::West};

}  // namespace

bool RoutingTables::forceFullRebuildForTest = false;

RoutingTables::RoutingTables(const Mesh& mesh)
    : mesh_(&mesh),
      n_(mesh.numNodes()),
      deadOut_(static_cast<std::size_t>(mesh.numNodes()) * 4, 0),
      comp_(static_cast<std::size_t>(mesh.numNodes()), 0),
      dist_(static_cast<std::size_t>(mesh.numNodes()) *
                static_cast<std::size_t>(mesh.numNodes()),
            0),
      treeDir_(static_cast<std::size_t>(mesh.numNodes()) *
                   static_cast<std::size_t>(mesh.numNodes()),
               static_cast<std::uint8_t>(Dir::Local)),
      treeParent_(static_cast<std::size_t>(mesh.numNodes()),
                  static_cast<std::uint8_t>(Dir::Local)),
      treeAdj_(static_cast<std::size_t>(mesh.numNodes()), 0),
      seen_(static_cast<std::size_t>(mesh.numNodes()), 0) {
  queue_.reserve(static_cast<std::size_t>(n_));
  recompute();
}

void RoutingTables::setLinkDead(NodeId n, Dir d, bool dead) {
  RAIR_CHECK(mesh_->contains(n) && d != Dir::Local);
  const auto nb = mesh_->neighbor(n, d);
  RAIR_CHECK_MSG(nb.has_value(), "setLinkDead: no channel at mesh edge");
  auto& fwd = deadOut_[static_cast<std::size_t>(n) * 4 +
                       static_cast<std::size_t>(dirIndex(d))];
  auto& rev = deadOut_[static_cast<std::size_t>(*nb) * 4 +
                       static_cast<std::size_t>(dirIndex(opposite(d)))];
  RAIR_DCHECK(fwd == rev);
  const std::uint8_t v = dead ? 1 : 0;
  if (fwd == v) return;
  fwd = rev = v;
  numDead_ += dead ? 1 : -1;
  RAIR_DCHECK(numDead_ >= 0);
  // Dirty the components on both sides of the channel: a kill may split
  // the (shared) component, a revival may merge two. Labels are the
  // last-committed ones, which is exactly what makes the affected set
  // closed under alive edges at commit time.
  markDirty(comp_[static_cast<std::size_t>(n)]);
  markDirty(comp_[static_cast<std::size_t>(*nb)]);
  pending_ = true;
  unreachValid_ = false;
}

bool RoutingTables::linkAlive(NodeId n, Dir d) const {
  if (d == Dir::Local) return true;
  if (!mesh_->neighbor(n, d).has_value()) return false;
  return deadOut_[static_cast<std::size_t>(n) * 4 +
                  static_cast<std::size_t>(dirIndex(d))] == 0;
}

std::uint8_t RoutingTables::connectivityBits(NodeId n) const {
  std::uint8_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    const Dir d = static_cast<Dir>(i + 1);
    if (linkAlive(n, d)) bits |= static_cast<std::uint8_t>(1u << i);
  }
  return bits;
}

void RoutingTables::markDirty(std::int32_t comp) {
  if (!isDirty(comp)) dirtyComps_.push_back(comp);
}

bool RoutingTables::isDirty(std::int32_t comp) const {
  return std::find(dirtyComps_.begin(), dirtyComps_.end(), comp) !=
         dirtyComps_.end();
}

void RoutingTables::rebuildTreeAdj(const std::vector<NodeId>& scope) {
  // Tree edges never leave a component, and every scope is a union of
  // whole components, so both endpoints of every touched edge are in
  // scope — clearing scope entries then re-deriving them is complete.
  for (const NodeId v : scope) treeAdj_[static_cast<std::size_t>(v)] = 0;
  for (const NodeId v : scope) {
    const Dir pd = static_cast<Dir>(treeParent_[static_cast<std::size_t>(v)]);
    if (pd == Dir::Local) continue;  // component root
    const NodeId p = *mesh_->neighbor(v, pd);
    treeAdj_[static_cast<std::size_t>(v)] |=
        static_cast<std::uint8_t>(1u << dirIndex(pd));
    treeAdj_[static_cast<std::size_t>(p)] |=
        static_cast<std::uint8_t>(1u << dirIndex(opposite(pd)));
  }
}

void RoutingTables::rebuildColumns(NodeId dst, const std::vector<NodeId>& scope) {
  // Entries outside the scope are untouched: for an affected dst they are
  // provably -1/Local already (nodes outside the affected set were in a
  // different component at the last commit and still are).
  for (const NodeId v : scope) {
    dist_[at(dst, v)] = -1;
    treeDir_[at(dst, v)] = static_cast<std::uint8_t>(Dir::Local);
  }
  // Graph BFS from dst (confined to dst's component by construction).
  queue_.clear();
  queue_.push_back(dst);
  dist_[at(dst, dst)] = 0;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId cur = queue_[head];
    const std::int16_t dc = dist_[at(dst, cur)];
    for (Dir d : kScanOrder) {
      if (!linkAlive(cur, d)) continue;
      const NodeId nb = *mesh_->neighbor(cur, d);
      if (dist_[at(dst, nb)] >= 0) continue;
      dist_[at(dst, nb)] = static_cast<std::int16_t>(dc + 1);
      queue_.push_back(nb);
    }
  }
  // Tree BFS from dst: the first edge out of `node` on the unique tree
  // path to dst is the edge through which the BFS from dst reached it.
  queue_.clear();
  queue_.push_back(dst);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId cur = queue_[head];
    for (Dir d : kScanOrder) {
      if (!(treeAdj_[static_cast<std::size_t>(cur)] & (1u << dirIndex(d))))
        continue;
      const NodeId nb = *mesh_->neighbor(cur, d);
      if (nb == dst ||
          treeDir_[at(dst, nb)] != static_cast<std::uint8_t>(Dir::Local))
        continue;
      treeDir_[at(dst, nb)] = static_cast<std::uint8_t>(opposite(d));
      queue_.push_back(nb);
    }
  }
}

void RoutingTables::recompute() {
  // Component labels + BFS spanning tree in one pass: BFS from each
  // unvisited node, lowest id first; treeParent is the direction from a
  // node back toward its BFS parent (Local for the root). Full rebuilds
  // re-densify the label space.
  std::fill(seen_.begin(), seen_.end(), std::uint8_t{0});
  nextComp_ = 0;
  std::vector<NodeId> all(static_cast<std::size_t>(n_));
  for (NodeId v = 0; v < n_; ++v) all[static_cast<std::size_t>(v)] = v;
  for (NodeId root = 0; root < n_; ++root) {
    if (seen_[static_cast<std::size_t>(root)]) continue;
    const std::int32_t label = nextComp_++;
    queue_.clear();
    queue_.push_back(root);
    seen_[static_cast<std::size_t>(root)] = 1;
    comp_[static_cast<std::size_t>(root)] = label;
    treeParent_[static_cast<std::size_t>(root)] =
        static_cast<std::uint8_t>(Dir::Local);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const NodeId cur = queue_[head];
      for (Dir d : kScanOrder) {
        if (!linkAlive(cur, d)) continue;
        const NodeId nb = *mesh_->neighbor(cur, d);
        if (seen_[static_cast<std::size_t>(nb)]) continue;
        seen_[static_cast<std::size_t>(nb)] = 1;
        comp_[static_cast<std::size_t>(nb)] = label;
        treeParent_[static_cast<std::size_t>(nb)] =
            static_cast<std::uint8_t>(opposite(d));
        queue_.push_back(nb);
      }
    }
  }
  rebuildTreeAdj(all);
  std::fill(dist_.begin(), dist_.end(), std::int16_t{-1});
  std::fill(treeDir_.begin(), treeDir_.end(),
            static_cast<std::uint8_t>(Dir::Local));
  for (NodeId dst = 0; dst < n_; ++dst) rebuildColumns(dst, all);
  pending_ = false;
  dirtyComps_.clear();
  unreachValid_ = false;
}

void RoutingTables::repairAffected() {
  // Affected set: every node whose last-committed component was dirtied.
  // Closed under alive edges (see header), so every BFS below stays
  // inside it and every entry it does not touch is already correct.
  std::vector<NodeId> affected;
  for (NodeId v = 0; v < n_; ++v)
    if (isDirty(comp_[static_cast<std::size_t>(v)])) affected.push_back(v);
  for (const NodeId v : affected) seen_[static_cast<std::size_t>(v)] = 0;
  // Relabel with fresh labels, ascending seed order — each BFS is the
  // same traversal (lowest id root, kScanOrder) the full rebuild runs, so
  // treeParent comes out byte-identical.
  for (const NodeId root : affected) {
    if (seen_[static_cast<std::size_t>(root)]) continue;
    const std::int32_t label = nextComp_++;
    queue_.clear();
    queue_.push_back(root);
    seen_[static_cast<std::size_t>(root)] = 1;
    comp_[static_cast<std::size_t>(root)] = label;
    treeParent_[static_cast<std::size_t>(root)] =
        static_cast<std::uint8_t>(Dir::Local);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const NodeId cur = queue_[head];
      for (Dir d : kScanOrder) {
        if (!linkAlive(cur, d)) continue;
        const NodeId nb = *mesh_->neighbor(cur, d);
        if (seen_[static_cast<std::size_t>(nb)]) continue;
        seen_[static_cast<std::size_t>(nb)] = 1;
        comp_[static_cast<std::size_t>(nb)] = label;
        treeParent_[static_cast<std::size_t>(nb)] =
            static_cast<std::uint8_t>(opposite(d));
        queue_.push_back(nb);
      }
    }
  }
  rebuildTreeAdj(affected);
  for (const NodeId dst : affected) rebuildColumns(dst, affected);
}

void RoutingTables::commit() {
  if (!pending_) {
    RAIR_DCHECK(dirtyComps_.empty());
    return;
  }
  if (forceFullRebuildForTest) {
    recompute();
    return;
  }
  repairAffected();
  pending_ = false;
  dirtyComps_.clear();
  unreachValid_ = false;
#ifdef RAIR_CHECKS
  crossCheckAgainstFullRebuild();
#endif
}

std::uint64_t RoutingTables::computeUnreachablePairs() const {
  // Incremental labels are sparse, so sizes go through a map; the result
  // is a commutative sum, insensitive to iteration order.
  std::unordered_map<std::int32_t, std::uint64_t> sizes;
  for (NodeId v = 0; v < n_; ++v) ++sizes[comp_[static_cast<std::size_t>(v)]];
  const auto total = static_cast<std::uint64_t>(n_);
  std::uint64_t pairs = total * (total - 1);
  for (const auto& [label, s] : sizes) pairs -= s * (s - 1);
  return pairs;
}

std::uint64_t RoutingTables::unreachablePairs() const {
  if (!unreachValid_) {
    unreachCache_ = computeUnreachablePairs();
    unreachValid_ = true;
  }
  return unreachCache_;
}

int RoutingTables::distance(NodeId from, NodeId to) const {
  RAIR_DCHECK(mesh_->contains(from) && mesh_->contains(to));
  return dist_[at(to, from)];
}

Dir RoutingTables::escapeDir(NodeId here, NodeId dst) const {
  RAIR_DCHECK(here != dst && reachable(here, dst));
  const Dir d = static_cast<Dir>(treeDir_[at(dst, here)]);
  RAIR_DCHECK(d != Dir::Local);
  return d;
}

RouteResult RoutingTables::routeFor(NodeId here, NodeId dst) const {
  RouteResult r;
  if (here == dst) {
    r.ejecting = true;
    return r;
  }
  RAIR_CHECK_MSG(reachable(here, dst),
                 "degraded routeFor: destination unreachable");
  const std::int16_t dh = dist_[at(dst, here)];
  for (Dir d : kScanOrder) {
    if (r.numAdaptive >= 2) break;
    if (!linkAlive(here, d)) continue;
    const NodeId nb = *mesh_->neighbor(here, d);
    if (dist_[at(dst, nb)] == dh - 1)
      r.adaptiveDirs[static_cast<std::size_t>(r.numAdaptive++)] = d;
  }
  RAIR_DCHECK(r.numAdaptive >= 1);
  r.escapeDir = escapeDir(here, dst);
  return r;
}

#ifdef RAIR_CHECKS
void RoutingTables::crossCheckAgainstFullRebuild() const {
  RoutingTables ref(*mesh_);
  for (NodeId v = 0; v < n_; ++v)
    for (const Dir d : {Dir::East, Dir::South})  // each channel once
      if (mesh_->neighbor(v, d).has_value() && !linkAlive(v, d))
        ref.setLinkDead(v, d, true);
  ref.recompute();
  RAIR_CHECK_MSG(dist_ == ref.dist_,
                 "incremental commit: distance tables diverge from full "
                 "rebuild");
  RAIR_CHECK_MSG(treeDir_ == ref.treeDir_,
                 "incremental commit: escape-tree tables diverge from full "
                 "rebuild");
  RAIR_CHECK_MSG(treeParent_ == ref.treeParent_,
                 "incremental commit: spanning-tree parents diverge from "
                 "full rebuild");
  // Labels are fresh on the incremental path; only the partition must
  // match — check the label correspondence is a bijection.
  std::unordered_map<std::int32_t, std::int32_t> mineToRef;
  std::vector<std::int32_t> refToMine(static_cast<std::size_t>(n_),
                                      INT32_MIN);
  for (NodeId v = 0; v < n_; ++v) {
    const std::int32_t mine = comp_[static_cast<std::size_t>(v)];
    const std::int32_t refL = ref.comp_[static_cast<std::size_t>(v)];
    const auto [it, inserted] = mineToRef.emplace(mine, refL);
    RAIR_CHECK_MSG(it->second == refL,
                   "incremental commit: component partition diverges from "
                   "full rebuild");
    auto& back = refToMine[static_cast<std::size_t>(refL)];
    if (back == INT32_MIN) back = mine;
    RAIR_CHECK_MSG(back == mine,
                   "incremental commit: component partition diverges from "
                   "full rebuild");
  }
  RAIR_CHECK(computeUnreachablePairs() == ref.computeUnreachablePairs());
}
#endif

}  // namespace rair
