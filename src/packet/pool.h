// Slab/free-list pool of in-flight packets — the simulator's packet ledger.
//
// The per-cycle hot path creates, looks up and retires packets constantly;
// a hash-map ledger pays a hash + probe + node allocation per packet. The
// pool instead stores packets in a contiguous slab indexed by a dense slot
// number and recycles retired slots through a free list, so every ledger
// operation is an array index and steady state (live count at or below the
// high-water mark) touches no allocator.
//
// A PacketId encodes (generation << 32 | slot). Generations make recycled
// ids globally unique within a simulation and let lookups detect stale ids
// (use-after-delivery) exactly as the hash ledger's find() did.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "packet/packet.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair {

class PacketPool {
 public:
  /// @param reserveSlots slab capacity to pre-allocate; the slab grows
  ///        beyond it on demand (doubling), so this only sets the point up
  ///        to which acquire() is allocation-free from the first cycle.
  /// @param maxLive when non-zero, acquire() RAIR_CHECKs that the live
  ///        count stays below this bound (backpressure tripwire for
  ///        closed-loop callers; the simulator runs unbounded).
  explicit PacketPool(std::uint32_t reserveSlots = 1024,
                      std::uint32_t maxLive = 0);

  static constexpr std::uint32_t slotOf(PacketId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static constexpr std::uint32_t generationOf(PacketId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Acquires a slot and returns its packet, value-initialized except for
  /// `id`, which is set to the slot's fresh unique PacketId. The reference
  /// is invalidated by the next acquire() (slab growth) — callers must not
  /// hold it across pool operations.
  Packet& acquire();

  /// Live-packet lookup; RAIR_CHECKs that `id` is live (generation match).
  Packet& get(PacketId id);
  const Packet& get(PacketId id) const;

  /// Returns nullptr instead of failing on stale/unknown ids.
  const Packet* find(PacketId id) const;

  bool isLive(PacketId id) const;

  /// Retires a live packet; its id becomes stale and the slot is recycled
  /// by a later acquire().
  void release(PacketId id);

  std::size_t inFlight() const { return live_; }
  bool empty() const { return live_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Invokes `fn(const Packet&)` for every live packet, in slot order.
  /// The callback must not mutate the pool.
  template <typename F>
  void forEachLive(F&& fn) const {
    for (const Slot& s : slots_)
      if (s.live) fn(s.pkt);
  }

  /// Snapshot hooks: slab occupancy, generation tags and free-list order
  /// are all behavioural state (they decide every future PacketId), so the
  /// restored pool hands out the exact id sequence the saved one would.
  /// Dead slots' packet contents are deliberately not captured — they are
  /// unreachable, and zeroing them on restore keeps save→restore→save
  /// byte-stable.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  struct Slot {
    Packet pkt;
    std::uint32_t generation = 1;  ///< of the current/next occupant
    bool live = false;
  };

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeList_;  ///< recycled slot indices (LIFO)
  std::size_t live_ = 0;
  std::uint32_t maxLive_ = 0;
};

}  // namespace rair
