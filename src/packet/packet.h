// Packets, flits and message classes.
//
// A packet is the unit of end-to-end communication; it is serialized into
// flits for wormhole switching. Per the paper's synthetic setup (Sec. V.A),
// packets come in two lengths: short 16-byte single-flit packets and long
// packets carrying 64 bytes of data plus a head flit (5 flits) on 128-bit
// links.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "common/types.h"

namespace rair {

/// Coherence-protocol message class. Each class gets its own set of
/// virtual channels (Table 1: "4 per protocol class") so request/reply
/// dependences cannot deadlock in the network.
enum class MsgClass : std::uint8_t { Request = 0, Reply = 1 };

inline constexpr int kMaxMsgClasses = 4;

/// Flit lengths used by the paper's synthetic traffic (Sec. V.A).
inline constexpr std::uint16_t kShortPacketFlits = 1;  ///< 16B control
inline constexpr std::uint16_t kLongPacketFlits = 5;   ///< head + 64B data

/// End-to-end metadata of one packet. The authoritative copy lives in the
/// simulator's packet ledger; routers work from the denormalized fields
/// carried on each flit.
struct Packet {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  AppId app = kNoApp;
  MsgClass msgClass = MsgClass::Request;
  std::uint16_t numFlits = 1;

  Cycle createCycle = 0;  ///< generated at the source NIC (enters queue)
  Cycle injectCycle = kNeverCycle;  ///< head flit entered the router network
  Cycle ejectCycle = kNeverCycle;   ///< tail flit delivered at destination
  std::uint16_t hops = 0;           ///< router-to-router hops taken

  /// Total latency as reported in the paper's APL figures: generation to
  /// delivery, including source queuing delay.
  Cycle totalLatency() const {
    RAIR_DCHECK(ejectCycle != kNeverCycle);
    return ejectCycle - createCycle;
  }

  /// In-network latency only (injection to delivery).
  Cycle networkLatency() const {
    RAIR_DCHECK(ejectCycle != kNeverCycle && injectCycle != kNeverCycle);
    return ejectCycle - injectCycle;
  }
};

enum class FlitType : std::uint8_t {
  Head,      ///< first flit of a multi-flit packet; carries routing info
  Body,      ///< middle flit
  Tail,      ///< last flit; releases VCs behind it
  HeadTail,  ///< single-flit packet
};

inline bool isHead(FlitType t) {
  return t == FlitType::Head || t == FlitType::HeadTail;
}
inline bool isTail(FlitType t) {
  return t == FlitType::Tail || t == FlitType::HeadTail;
}

/// One flow-control unit. Flits carry a denormalized copy of the fields
/// routers and arbitration policies need, so the hot path never touches
/// the packet ledger.
struct Flit {
  PacketId pkt = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  AppId app = kNoApp;
  MsgClass msgClass = MsgClass::Request;
  FlitType type = FlitType::HeadTail;
  std::uint16_t seq = 0;       ///< position within the packet, 0-based
  std::uint16_t pktFlits = 1;  ///< total flits in the packet
  std::uint16_t hops = 0;      ///< routers traversed so far (head flit only)
  Cycle createCycle = 0;       ///< copied from the packet (age-based arb)
};

/// Builds flit `i` (0-based) of packet `p` directly — the NIC streams
/// flits from the packet with this instead of materializing a vector.
inline Flit makeFlit(const Packet& p, std::uint16_t i) {
  RAIR_DCHECK(p.numFlits >= 1 && i < p.numFlits);
  Flit f;
  f.pkt = p.id;
  f.src = p.src;
  f.dst = p.dst;
  f.app = p.app;
  f.msgClass = p.msgClass;
  f.seq = i;
  f.pktFlits = p.numFlits;
  f.createCycle = p.createCycle;
  if (p.numFlits == 1) {
    f.type = FlitType::HeadTail;
  } else if (i == 0) {
    f.type = FlitType::Head;
  } else if (i + 1 == p.numFlits) {
    f.type = FlitType::Tail;
  } else {
    f.type = FlitType::Body;
  }
  return f;
}

/// Serializes a packet into its flit sequence (tests and tools; the
/// simulation hot path uses makeFlit directly).
std::vector<Flit> packetToFlits(const Packet& p);

/// Draws a packet length from the paper's bimodal distribution: short and
/// long packets each chosen with probability 1/2 ("packets are uniformly
/// assigned two lengths").
std::uint16_t drawBimodalLength(Xoshiro256StarStar& rng);

}  // namespace rair
