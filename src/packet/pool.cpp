#include "packet/pool.h"

#include "snapshot/codec.h"

namespace rair {

PacketPool::PacketPool(std::uint32_t reserveSlots, std::uint32_t maxLive)
    : maxLive_(maxLive) {
  slots_.reserve(reserveSlots);
  freeList_.reserve(reserveSlots);
}

Packet& PacketPool::acquire() {
  if (maxLive_ != 0)
    RAIR_CHECK_MSG(live_ < maxLive_, "packet pool exhausted (maxLive)");
  ++live_;
  std::uint32_t slot;
  if (!freeList_.empty()) {
    slot = freeList_.back();
    freeList_.pop_back();
  } else {
    RAIR_CHECK_MSG(slots_.size() < 0xffffffffu, "packet pool slot overflow");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  RAIR_DCHECK(!s.live);
  s.live = true;
  s.pkt = Packet{};
  s.pkt.id = (static_cast<PacketId>(s.generation) << 32) | slot;
  return s.pkt;
}

bool PacketPool::isLive(PacketId id) const {
  const std::uint32_t slot = slotOf(id);
  return slot < slots_.size() && slots_[slot].live &&
         slots_[slot].generation == generationOf(id);
}

Packet& PacketPool::get(PacketId id) {
  RAIR_CHECK_MSG(isLive(id), "packet pool lookup of stale/unknown id");
  return slots_[slotOf(id)].pkt;
}

const Packet& PacketPool::get(PacketId id) const {
  RAIR_CHECK_MSG(isLive(id), "packet pool lookup of stale/unknown id");
  return slots_[slotOf(id)].pkt;
}

const Packet* PacketPool::find(PacketId id) const {
  return isLive(id) ? &slots_[slotOf(id)].pkt : nullptr;
}

void PacketPool::save(snapshot::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const Slot& s : slots_) {
    w.u32(s.generation);
    w.boolean(s.live);
    if (s.live) snapshot::savePacket(w, s.pkt);
  }
  w.u32(static_cast<std::uint32_t>(freeList_.size()));
  for (const std::uint32_t slot : freeList_) w.u32(slot);
  w.u64(live_);
}

void PacketPool::restore(snapshot::Reader& r) {
  const std::uint32_t numSlots = r.u32();
  slots_.clear();
  slots_.resize(numSlots);
  for (Slot& s : slots_) {
    s.generation = r.u32();
    s.live = r.boolean();
    if (s.live)
      snapshot::restorePacket(r, s.pkt);
    else
      s.pkt = Packet{};
  }
  const std::uint32_t numFree = r.u32();
  freeList_.clear();
  freeList_.reserve(numFree);
  for (std::uint32_t i = 0; i < numFree; ++i) freeList_.push_back(r.u32());
  live_ = static_cast<std::size_t>(r.u64());
}

void PacketPool::release(PacketId id) {
  RAIR_CHECK_MSG(isLive(id), "packet pool release of stale/unknown id");
  Slot& s = slots_[slotOf(id)];
  s.live = false;
  ++s.generation;  // retire the id; 0 is never a valid generation
  if (s.generation == 0) s.generation = 1;
  freeList_.push_back(slotOf(id));
  --live_;
}

}  // namespace rair
