#include "packet/packet.h"

namespace rair {

std::vector<Flit> packetToFlits(const Packet& p) {
  RAIR_CHECK(p.numFlits >= 1);
  std::vector<Flit> flits;
  flits.reserve(p.numFlits);
  for (std::uint16_t i = 0; i < p.numFlits; ++i) {
    Flit f;
    f.pkt = p.id;
    f.src = p.src;
    f.dst = p.dst;
    f.app = p.app;
    f.msgClass = p.msgClass;
    f.seq = i;
    f.pktFlits = p.numFlits;
    f.createCycle = p.createCycle;
    if (p.numFlits == 1) {
      f.type = FlitType::HeadTail;
    } else if (i == 0) {
      f.type = FlitType::Head;
    } else if (i + 1 == p.numFlits) {
      f.type = FlitType::Tail;
    } else {
      f.type = FlitType::Body;
    }
    flits.push_back(f);
  }
  return flits;
}

std::uint16_t drawBimodalLength(Xoshiro256StarStar& rng) {
  return rng.chance(0.5) ? kShortPacketFlits : kLongPacketFlits;
}

}  // namespace rair
