// 2-D mesh topology: coordinates, ports, neighbor relations.
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "common/assert.h"
#include "common/types.h"

namespace rair {

/// Router ports of a 2-D mesh node. Local is the NIC injection/ejection
/// port; the other four connect to neighboring routers.
enum class Dir : std::uint8_t { Local = 0, North, East, South, West };

inline constexpr int kNumPorts = 5;

/// Readable name, e.g. for stats dumps ("L", "N", "E", "S", "W").
std::string_view dirName(Dir d);

/// The port on the neighbouring router that a link leaving through `d`
/// arrives at (North <-> South, East <-> West). Local has no opposite.
Dir opposite(Dir d);

/// Integer grid coordinate of a node.
struct Coord {
  int x = 0;  ///< column, 0 .. width-1, grows eastward
  int y = 0;  ///< row, 0 .. height-1, grows southward

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// A k_x × k_y 2-D mesh. Nodes are numbered row-major:
/// id = y * width + x. All link lengths are one cycle.
class Mesh {
 public:
  Mesh(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  int numNodes() const { return width_ * height_; }

  Coord coordOf(NodeId n) const {
    RAIR_DCHECK(contains(n));
    return {static_cast<int>(n) % width_, static_cast<int>(n) / width_};
  }

  NodeId nodeAt(Coord c) const {
    RAIR_DCHECK(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
    return static_cast<NodeId>(c.y * width_ + c.x);
  }

  bool contains(NodeId n) const { return n >= 0 && n < numNodes(); }

  /// Neighbor of `n` through port `d`, or nullopt at a mesh edge (and for
  /// Dir::Local, which has no router neighbor).
  std::optional<NodeId> neighbor(NodeId n, Dir d) const;

  /// Manhattan distance in hops between two nodes.
  int hopDistance(NodeId a, NodeId b) const;

  /// Productive directions toward `dst` from `src` (0, 1 or 2 entries;
  /// empty when src == dst). Order: X-dimension direction first.
  struct MinimalDirs {
    std::array<Dir, 2> dirs{};
    int count = 0;
  };
  MinimalDirs minimalDirs(NodeId src, NodeId dst) const;

  /// The four corner nodes, used as memory-controller locations in the
  /// paper's synthetic RNoC scenarios (Sec. V.E).
  std::array<NodeId, 4> cornerNodes() const;

 private:
  int width_;
  int height_;
};

}  // namespace rair
