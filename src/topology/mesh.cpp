#include "topology/mesh.h"

#include <cstdlib>

namespace rair {

std::string_view dirName(Dir d) {
  switch (d) {
    case Dir::Local: return "L";
    case Dir::North: return "N";
    case Dir::East: return "E";
    case Dir::South: return "S";
    case Dir::West: return "W";
  }
  return "?";
}

Dir opposite(Dir d) {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::South: return Dir::North;
    case Dir::East: return Dir::West;
    case Dir::West: return Dir::East;
    case Dir::Local: break;
  }
  RAIR_CHECK_MSG(false, "Dir::Local has no opposite");
}

Mesh::Mesh(int width, int height) : width_(width), height_(height) {
  RAIR_CHECK_MSG(width >= 2 && height >= 1, "mesh must be at least 2x1");
}

std::optional<NodeId> Mesh::neighbor(NodeId n, Dir d) const {
  RAIR_DCHECK(contains(n));
  Coord c = coordOf(n);
  switch (d) {
    case Dir::North: c.y -= 1; break;
    case Dir::South: c.y += 1; break;
    case Dir::East: c.x += 1; break;
    case Dir::West: c.x -= 1; break;
    case Dir::Local: return std::nullopt;
  }
  if (c.x < 0 || c.x >= width_ || c.y < 0 || c.y >= height_)
    return std::nullopt;
  return nodeAt(c);
}

int Mesh::hopDistance(NodeId a, NodeId b) const {
  const Coord ca = coordOf(a);
  const Coord cb = coordOf(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

Mesh::MinimalDirs Mesh::minimalDirs(NodeId src, NodeId dst) const {
  const Coord cs = coordOf(src);
  const Coord cd = coordOf(dst);
  MinimalDirs out;
  if (cd.x > cs.x) out.dirs[out.count++] = Dir::East;
  else if (cd.x < cs.x) out.dirs[out.count++] = Dir::West;
  if (cd.y > cs.y) out.dirs[out.count++] = Dir::South;
  else if (cd.y < cs.y) out.dirs[out.count++] = Dir::North;
  return out;
}

std::array<NodeId, 4> Mesh::cornerNodes() const {
  return {nodeAt({0, 0}), nodeAt({width_ - 1, 0}), nodeAt({0, height_ - 1}),
          nodeAt({width_ - 1, height_ - 1})};
}

}  // namespace rair
