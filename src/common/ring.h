// Allocation-free FIFO ring buffer for simulation hot paths.
//
// RingQueue replaces std::deque in the per-VC flit buffers, the link delay
// pipes and the NIC source queues: a power-of-two circular array that only
// allocates when occupancy exceeds every previous high-water mark. With
// capacity reserved up front (VC depth, link latency) or reached during
// warmup (source queues), steady-state push/pop touch no allocator at all —
// unlike std::deque, which mallocs and frees chunk blocks as its window
// slides even at constant occupancy.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace rair {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  /// Ensures capacity for at least `n` elements (rounded up to a power of
  /// two). Call once at construction time for hot-path queues.
  void reserve(std::size_t n) {
    if (n > buf_.size()) regrow(roundUpPow2(n));
  }

  void push_back(T v) {
    if (size_ == buf_.size()) regrow(buf_.empty() ? 8 : buf_.size() * 2);
    buf_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }

  void pop_front() {
    RAIR_DCHECK(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  T& front() {
    RAIR_DCHECK(size_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    RAIR_DCHECK(size_ > 0);
    return buf_[head_];
  }

  /// Element `i` positions behind the front (0 = front).
  T& operator[](std::size_t i) {
    RAIR_DCHECK(i < size_);
    return buf_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    RAIR_DCHECK(i < size_);
    return buf_[(head_ + i) & mask_];
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  static std::size_t roundUpPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void regrow(std::size_t newCap) {
    std::vector<T> next(newCap);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = buf_.size() - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace rair
