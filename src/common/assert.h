// Lightweight always-on invariant checking.
//
// The simulator is a measurement instrument: a silently-corrupted router
// state produces wrong latency numbers rather than a crash, so structural
// invariants are checked even in release builds (RAIR_CHECK). Hot-path
// checks that profiling shows to matter can use RAIR_DCHECK, which compiles
// away in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rair::detail {

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "RAIR_CHECK failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace rair::detail

#define RAIR_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::rair::detail::checkFailed(#expr, __FILE__, __LINE__,    \
                                             nullptr);                     \
  } while (false)

#define RAIR_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) ::rair::detail::checkFailed(#expr, __FILE__, __LINE__,    \
                                             msg);                         \
  } while (false)

#ifdef NDEBUG
#define RAIR_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define RAIR_DCHECK(expr) RAIR_CHECK(expr)
#endif
