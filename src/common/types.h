// Fundamental scalar types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace rair {

/// Simulation time, in router clock cycles.
using Cycle = std::uint64_t;

/// Index of a node (core / router / NIC triple) in the topology.
/// Nodes are numbered row-major: id = y * width + x.
using NodeId = std::int32_t;

/// Identifier of an application (equivalently, of the region it is mapped
/// to). Every packet carries the AppId of the application that produced it
/// and every router is tagged with the AppId mapped onto its node; the pair
/// decides native vs. foreign classification (paper Sec. IV.E).
using AppId = std::int16_t;

/// Monotonically increasing packet identifier, unique within a simulation.
using PacketId = std::uint64_t;

/// Sentinel AppId for nodes that host no application (e.g. unused nodes).
inline constexpr AppId kNoApp = -1;

/// Sentinel for "not a node".
inline constexpr NodeId kInvalidNode = -1;

/// Sentinel cycle value meaning "never" / "not yet".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

}  // namespace rair
