#include "common/rng.h"

namespace rair {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: recommended seeder for xoshiro family.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs from any seed, so no further check is needed.
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256StarStar::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256StarStar::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Xoshiro256StarStar::real() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256StarStar::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

Xoshiro256StarStar Xoshiro256StarStar::split() {
  // Jump polynomial for 2^128 steps (xoshiro256** reference constants).
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
      0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
  Xoshiro256StarStar child(0);
  // The child takes the post-jump state; this generator advances past it.
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  child.s_[0] = s0;
  child.s_[1] = s1;
  child.s_[2] = s2;
  child.s_[3] = s3;
  // Guard against the (theoretically impossible from a valid parent,
  // practically defensive) all-zero child state.
  if ((s0 | s1 | s2 | s3) == 0) child = Xoshiro256StarStar{0xDEADBEEFull};
  return child;
}

}  // namespace rair
