// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (traffic generation, packet
// length selection, tie-breaking randomization in tests) flows through
// Xoshiro256StarStar so that a given seed reproduces a bit-identical
// simulation. The engine satisfies the C++ UniformRandomBitGenerator
// concept, but we provide our own bounded/real helpers because libstdc++'s
// std::uniform_int_distribution is not guaranteed to be reproducible
// across library versions.
#pragma once

#include <array>
#include <cstdint>

namespace rair {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed in C++). Fast, 256-bit state, passes BigCrush.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from a single seed value via
  /// SplitMix64, per the authors' recommendation.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double real();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Creates an independent generator by jumping this one's sequence
  /// forward 2^128 steps; useful for giving each node its own stream.
  Xoshiro256StarStar split();

  /// The four raw state words — snapshot save/restore. Restoring a saved
  /// state replays the exact draw sequence from that point.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void setState(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace rair
