// Arbitration-policy interface: the hook through which interference
// reduction techniques plug into the router's arbitration steps.
//
// The router exposes three contended arbitration points (paper Sec. IV.B,
// "multi-stage prioritization"): VA output arbitration, SA input
// arbitration and SA output arbitration. (VA *input* arbitration has no
// inter-flow contention — each input VC chooses among its own candidate
// output VCs — so no policy hook exists there, exactly as the paper
// argues.) At each point the router asks the policy for a priority key per
// candidate; the candidate with the largest key wins, and ties are always
// broken round-robin, which makes the round-robin baseline simply "return
// a constant".
//
// Per-router mutable state (e.g. RAIR's DPA registers) lives in a
// PolicyState owned by the router and updated once per cycle with the
// previous cycle's VC occupancy snapshot — modelling the paper's
// critical-path fix of consuming the priority computed in the previous
// cycle (Sec. IV.E).
#pragma once

#include <memory>

#include "common/types.h"
#include "packet/packet.h"
#include "router/vc.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair {

/// Arbitration step at which a priority is being requested.
enum class ArbStage : std::uint8_t {
  VaOut,  ///< VC allocation, output arbitration (per contested output VC)
  SaIn,   ///< switch allocation, input arbitration (per input port)
  SaOut,  ///< switch allocation, output arbitration (per output port)
};

/// One competitor in an arbitration step.
struct ArbCandidate {
  const Flit* flit = nullptr;  ///< head flit of the competing packet
  AppId routerApp = kNoApp;    ///< application tag of this router's node
  /// Class of the contested output VC (VaOut) or of the output VC already
  /// allocated to the competitor (SaIn / SaOut).
  VcClass outVcClass = VcClass::Adaptive;
  bool native = false;  ///< flit->app matches the router tag
  Cycle now = 0;
};

/// Per-router mutable policy state. Policies that need none return nullptr
/// from makeState().
class PolicyState {
 public:
  virtual ~PolicyState() = default;

  /// Snapshot hooks: serialize/deserialize the mutable state (not the
  /// configuration, which the owning router reconstructs). Stateless
  /// subclasses inherit the no-ops.
  virtual void save(snapshot::Writer& w) const { (void)w; }
  virtual void restore(snapshot::Reader& r) { (void)r; }
};

/// VC occupancy snapshot a router hands to the policy once per cycle.
/// Counts are over *all* input ports of the router (paper Sec. IV.C: using
/// router-wide counts tolerates non-uniform VC status across ports).
struct RouterOccupancy {
  int nativeOccupiedVcs = 0;   ///< OVC_n
  int foreignOccupiedVcs = 0;  ///< OVC_f
};

/// Interference-reduction policy. One instance is shared by all routers of
/// a simulation (it must be stateless apart from PolicyState objects).
class ArbiterPolicy {
 public:
  virtual ~ArbiterPolicy() = default;

  virtual const char* name() const = 0;

  /// Creates the per-router state; called once per router at construction.
  virtual std::unique_ptr<PolicyState> makeState() const { return nullptr; }

  /// Called once per router per cycle, before any arbitration, with the
  /// occupancy measured at the end of the previous cycle.
  virtual void updateState(PolicyState* /*state*/,
                           const RouterOccupancy& /*occ*/) const {}

  /// Priority key for a candidate; HIGHER wins, ties break round-robin.
  virtual std::uint64_t priority(ArbStage stage, const ArbCandidate& cand,
                                 const PolicyState* state) const = 0;
};

/// Round-robin baseline (the paper's RO_RR): every candidate is equal, so
/// the arbiter's round-robin tie-break decides. Region- and
/// application-oblivious.
class RoundRobinPolicy final : public ArbiterPolicy {
 public:
  const char* name() const override { return "RO_RR"; }
  std::uint64_t priority(ArbStage, const ArbCandidate&,
                         const PolicyState*) const override {
    return 0;
  }
};

/// Age-based / oldest-first baseline [Abts & Weisser, SC'07]: older packets
/// (earlier creation cycle) win. Region- and application-oblivious.
class AgeBasedPolicy final : public ArbiterPolicy {
 public:
  const char* name() const override { return "RO_Age"; }
  std::uint64_t priority(ArbStage, const ArbCandidate& cand,
                         const PolicyState*) const override {
    return ~cand.flit->createCycle;  // older -> larger key
  }
};

}  // namespace rair
