#include "policy/stc.h"

#include <algorithm>
#include <numeric>

#include "common/assert.h"

namespace rair {

StcRankPolicy::StcRankPolicy(std::vector<int> ranks, Cycle batchPeriod)
    : ranks_(std::move(ranks)), batchPeriod_(batchPeriod) {
  RAIR_CHECK(batchPeriod_ >= 1);
  worstRank_ = 0;
  for (int r : ranks_) {
    RAIR_CHECK(r >= 0);
    worstRank_ = std::max(worstRank_, r);
  }
  ++worstRank_;  // apps outside the table rank below every ranked app
}

int StcRankPolicy::rankOf(AppId app) const {
  if (app < 0 || static_cast<size_t>(app) >= ranks_.size()) return worstRank_;
  return ranks_[static_cast<size_t>(app)];
}

std::uint64_t StcRankPolicy::priority(ArbStage /*stage*/,
                                      const ArbCandidate& cand,
                                      const PolicyState* /*state*/) const {
  // Older batch strictly outranks younger; within a batch, application
  // rank decides; within an application, the arbiter round-robins.
  const Cycle batch = cand.flit->createCycle / batchPeriod_;
  constexpr std::uint64_t kBatchMask = (1ull << 48) - 1;
  const std::uint64_t batchKey = (~batch) & kBatchMask;  // older -> larger
  const auto rank = static_cast<std::uint64_t>(rankOf(cand.flit->app));
  const std::uint64_t rankKey = 0xFFFFull - std::min<std::uint64_t>(rank, 0xFFFE);
  return (batchKey << 16) | rankKey;
}

std::vector<int> StcRankPolicy::ranksFromIntensities(
    const std::vector<double>& intensities) {
  std::vector<int> order(intensities.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return intensities[static_cast<size_t>(a)] <
           intensities[static_cast<size_t>(b)];
  });
  std::vector<int> ranks(intensities.size());
  for (size_t pos = 0; pos < order.size(); ++pos)
    ranks[static_cast<size_t>(order[pos])] = static_cast<int>(pos);
  return ranks;
}

}  // namespace rair
