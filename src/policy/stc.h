// RO_Rank: an idealized STC [Das et al., MICRO'09] baseline.
//
// STC ranks concurrently running applications by network intensity (L1
// misses per instruction in the original; injection intensity here) and
// prioritizes packets of non-intensive applications. To bound starvation,
// packets are grouped into time batches and older batches strictly outrank
// younger ones, regardless of application rank.
//
// Following the paper's evaluation (Sec. V.E), this implementation is the
// *optimized* STC: the ranking is an oracle — benches install the true
// intensity ordering rather than estimating it online — so RO_Rank is an
// upper bound on what STC could achieve. It remains region-oblivious: it
// cannot distinguish regional from global traffic, and batching may
// prioritize old adversarial packets over younger normal ones (the paper's
// Fig. 17 discussion).
#pragma once

#include <vector>

#include "policy/policy.h"

namespace rair {

class StcRankPolicy final : public ArbiterPolicy {
 public:
  /// @param ranks  ranks[app] = rank of that application, 0 = highest
  ///               priority (least network-intensive). Apps not covered
  ///               get the worst rank.
  /// @param batchPeriod  batch width in cycles (original STC uses epochs
  ///               in the thousands of cycles).
  explicit StcRankPolicy(std::vector<int> ranks, Cycle batchPeriod = 16000);

  const char* name() const override { return "RO_Rank"; }

  std::uint64_t priority(ArbStage stage, const ArbCandidate& cand,
                         const PolicyState* state) const override;

  /// Builds the oracle ranking from per-app injection intensities
  /// (flits/cycle/node): lower intensity -> better (smaller) rank.
  static std::vector<int> ranksFromIntensities(
      const std::vector<double>& intensities);

  Cycle batchPeriod() const { return batchPeriod_; }
  int rankOf(AppId app) const;

 private:
  std::vector<int> ranks_;
  int worstRank_;
  Cycle batchPeriod_;
};

}  // namespace rair
