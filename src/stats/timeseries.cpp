#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace rair {

TimeSeries::TimeSeries(Cycle intervalCycles) : interval_(intervalCycles) {
  RAIR_CHECK(intervalCycles >= 1);
}

void TimeSeries::recordDelivery(const Packet& p) {
  RAIR_DCHECK(p.ejectCycle != kNeverCycle);
  const auto idx = static_cast<std::size_t>(p.ejectCycle / interval_);
  if (idx >= intervals_.size()) {
    const std::size_t old = intervals_.size();
    intervals_.resize(idx + 1);
    for (std::size_t i = old; i < intervals_.size(); ++i)
      intervals_[i].start = static_cast<Cycle>(i) * interval_;
  }
  auto& iv = intervals_[idx];
  ++iv.packets;
  iv.flits += p.numFlits;
  iv.latencySum += static_cast<double>(p.totalLatency());
}

double TimeSeries::tailMeanLatency(std::size_t n) const {
  if (intervals_.empty() || n == 0) return 0.0;
  const std::size_t from = intervals_.size() > n ? intervals_.size() - n : 0;
  double sum = 0.0;
  std::uint64_t pkts = 0;
  for (std::size_t i = from; i < intervals_.size(); ++i) {
    sum += intervals_[i].latencySum;
    pkts += intervals_[i].packets;
  }
  return pkts ? sum / static_cast<double>(pkts) : 0.0;
}

double TimeSeries::latencyTrend(std::size_t from, std::size_t to) const {
  to = std::min(to, intervals_.size());
  // Ordinary least squares on (interval index, mean latency), skipping
  // empty intervals.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t i = from; i < to; ++i) {
    if (intervals_[i].packets == 0) continue;
    const double x = static_cast<double>(i);
    const double y = intervals_[i].meanLatency();
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

bool TimeSeries::stationary(double tolerance) const {
  if (intervals_.size() < 2) return true;
  double sum = 0.0;
  std::uint64_t pkts = 0;
  for (const auto& iv : intervals_) {
    sum += iv.latencySum;
    pkts += iv.packets;
  }
  if (pkts == 0) return true;
  const double mean = sum / static_cast<double>(pkts);
  const double trend = latencyTrend(0, intervals_.size());
  const double drift = std::abs(trend) * static_cast<double>(intervals_.size());
  return drift <= tolerance * mean;
}

}  // namespace rair
