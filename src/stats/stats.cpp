#include "stats/stats.h"

#include <algorithm>

#include "snapshot/codec.h"

namespace rair {

StatsCollector::StatsCollector(int numApps)
    : perApp_(static_cast<size_t>(std::max(numApps, 1))) {}

void StatsCollector::onPacketCreated(const Packet& p) {
  RAIR_CHECK(p.app >= 0 && static_cast<size_t>(p.app) < perApp_.size());
  auto& s = perApp_[static_cast<size_t>(p.app)];
  ++s.packetsCreated;
  if (inMeasurementWindow(p.createCycle)) ++measuredCreated_;
}

void StatsCollector::onPacketDelivered(const Packet& p) {
  RAIR_CHECK(p.app >= 0 && static_cast<size_t>(p.app) < perApp_.size());
  auto& s = perApp_[static_cast<size_t>(p.app)];
  ++s.packetsDelivered;
  s.flitsDelivered += p.numFlits;
  if (!inMeasurementWindow(p.createCycle)) return;
  ++measuredDelivered_;
  s.totalLatency.record(static_cast<double>(p.totalLatency()));
  s.networkLatency.record(static_cast<double>(p.networkLatency()));
  s.hops.record(static_cast<double>(p.hops));
}

void StatsCollector::onPacketDropped(const Packet& p) {
  RAIR_CHECK(p.app >= 0 && static_cast<size_t>(p.app) < perApp_.size());
  ++perApp_[static_cast<size_t>(p.app)].packetsDropped;
  if (inMeasurementWindow(p.createCycle)) ++measuredDropped_;
}

AppStats StatsCollector::overall() const {
  AppStats agg;
  for (const auto& s : perApp_) {
    agg.totalLatency.merge(s.totalLatency);
    agg.networkLatency.merge(s.networkLatency);
    agg.hops.merge(s.hops);
    agg.packetsCreated += s.packetsCreated;
    agg.packetsDelivered += s.packetsDelivered;
    agg.flitsDelivered += s.flitsDelivered;
    agg.packetsDropped += s.packetsDropped;
  }
  return agg;
}

void StatsCollector::save(snapshot::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(perApp_.size()));
  for (const AppStats& s : perApp_) {
    snapshot::saveHistogram(w, s.totalLatency);
    snapshot::saveHistogram(w, s.networkLatency);
    snapshot::saveHistogram(w, s.hops);
    w.u64(s.packetsCreated);
    w.u64(s.packetsDelivered);
    w.u64(s.flitsDelivered);
    w.u64(s.packetsDropped);
  }
  w.u64(measureStart_);
  w.u64(measureEnd_);
  w.u64(measuredCreated_);
  w.u64(measuredDelivered_);
  w.u64(measuredDropped_);
}

void StatsCollector::restore(snapshot::Reader& r) {
  RAIR_CHECK_MSG(r.u32() == perApp_.size(),
                 "stats restore: app count mismatch");
  for (AppStats& s : perApp_) {
    snapshot::restoreHistogram(r, s.totalLatency);
    snapshot::restoreHistogram(r, s.networkLatency);
    snapshot::restoreHistogram(r, s.hops);
    s.packetsCreated = r.u64();
    s.packetsDelivered = r.u64();
    s.flitsDelivered = r.u64();
    s.packetsDropped = r.u64();
  }
  measureStart_ = r.u64();
  measureEnd_ = r.u64();
  measuredCreated_ = r.u64();
  measuredDelivered_ = r.u64();
  measuredDropped_ = r.u64();
}

double StatsCollector::overallApl() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& s : perApp_) {
    sum += s.totalLatency.sum();
    n += s.totalLatency.count();
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace rair
