#include "stats/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rair {

void LatencyStats::record(double v) {
  ++count_;
  sum_ += v;
  sumSq_ += v * v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  std::size_t bucket = 0;
  if (v >= 1.0) {
    const auto iv = static_cast<std::uint64_t>(v);
    bucket = static_cast<std::size_t>(std::bit_width(iv) - 1);
    bucket = std::min(bucket, buckets_.size() - 1);
  }
  ++buckets_[bucket];
}

double LatencyStats::variance() const {
  if (count_ < 2) return 0.0;
  const auto n = static_cast<double>(count_);
  const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
  return std::max(var, 0.0);  // clamp negative rounding artifacts
}

double LatencyStats::approxQuantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < buckets_.size(); ++k) {
    seen += buckets_[k];
    if (seen > target) {
      // Midpoint of bucket [2^k, 2^(k+1)); bucket 0 spans [0, 2).
      const double lo = (k == 0) ? 0.0 : std::ldexp(1.0, static_cast<int>(k));
      const double hi = std::ldexp(1.0, static_cast<int>(k) + 1);
      return (lo + hi) / 2.0;
    }
  }
  return max_;
}

void LatencyStats::merge(const LatencyStats& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  sumSq_ += other.sumSq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (std::size_t k = 0; k < buckets_.size(); ++k)
    buckets_[k] += other.buckets_[k];
}

StatsCollector::StatsCollector(int numApps)
    : perApp_(static_cast<size_t>(std::max(numApps, 1))) {}

void StatsCollector::onPacketCreated(const Packet& p) {
  RAIR_CHECK(p.app >= 0 && static_cast<size_t>(p.app) < perApp_.size());
  auto& s = perApp_[static_cast<size_t>(p.app)];
  ++s.packetsCreated;
  if (inMeasurementWindow(p.createCycle)) ++measuredCreated_;
}

void StatsCollector::onPacketDelivered(const Packet& p) {
  RAIR_CHECK(p.app >= 0 && static_cast<size_t>(p.app) < perApp_.size());
  auto& s = perApp_[static_cast<size_t>(p.app)];
  ++s.packetsDelivered;
  s.flitsDelivered += p.numFlits;
  if (!inMeasurementWindow(p.createCycle)) return;
  ++measuredDelivered_;
  s.totalLatency.record(static_cast<double>(p.totalLatency()));
  s.networkLatency.record(static_cast<double>(p.networkLatency()));
  s.hops.record(static_cast<double>(p.hops));
}

AppStats StatsCollector::overall() const {
  AppStats agg;
  for (const auto& s : perApp_) {
    agg.totalLatency.merge(s.totalLatency);
    agg.networkLatency.merge(s.networkLatency);
    agg.hops.merge(s.hops);
    agg.packetsCreated += s.packetsCreated;
    agg.packetsDelivered += s.packetsDelivered;
    agg.flitsDelivered += s.flitsDelivered;
  }
  return agg;
}

double StatsCollector::overallApl() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& s : perApp_) {
    sum += s.totalLatency.sum();
    n += s.totalLatency.count();
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace rair
