// Measurement collection: per-packet latency accounting, per-application
// aggregation, and network-level counters.
//
// The paper reports Average Packet Latency (APL): creation-to-delivery
// latency including source queuing, averaged over packets injected during
// the measurement window (after warmup). StatsCollector implements exactly
// that protocol: packets created before measurement starts are ignored;
// packets created during the window are counted when delivered (the
// simulator drains after the window so measured packets complete).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "packet/packet.h"

namespace rair {

/// Running scalar statistics plus a coarse power-of-two histogram.
class LatencyStats {
 public:
  void record(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  double variance() const;

  /// Histogram bucket k counts samples in [2^k, 2^(k+1)); bucket 0 also
  /// holds values < 1.
  std::span<const std::uint64_t> histogram() const { return buckets_; }

  /// Approximate p-quantile (q in [0,1]) from the histogram; used for tail
  /// latency reporting. Returns 0 when empty.
  double approxQuantile(double q) const;

  void merge(const LatencyStats& other);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sumSq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(24, 0);
};

/// Aggregated results for one application.
struct AppStats {
  LatencyStats totalLatency;    ///< creation -> delivery (the paper's APL)
  LatencyStats networkLatency;  ///< injection -> delivery
  LatencyStats hops;
  std::uint64_t packetsCreated = 0;
  std::uint64_t packetsDelivered = 0;
  std::uint64_t flitsDelivered = 0;
};

/// Collects statistics for a simulation run.
class StatsCollector {
 public:
  explicit StatsCollector(int numApps);

  /// Starts the measurement window; packets created from `cycle` onward
  /// (strictly: createCycle >= cycle) are measured.
  void startMeasurement(Cycle cycle) { measureStart_ = cycle; }
  /// Ends packet admission into the measured set (packets created at or
  /// after `cycle` are ignored, e.g. created during drain).
  void stopMeasurement(Cycle cycle) { measureEnd_ = cycle; }

  bool inMeasurementWindow(Cycle createCycle) const {
    return createCycle >= measureStart_ && createCycle < measureEnd_;
  }

  void onPacketCreated(const Packet& p);
  void onPacketDelivered(const Packet& p);

  /// Number of measured packets still in flight (created in window, not
  /// yet delivered). Drain completes when this reaches zero.
  std::uint64_t measuredInFlight() const {
    return measuredCreated_ - measuredDelivered_;
  }

  const AppStats& app(AppId a) const {
    RAIR_CHECK(a >= 0 && static_cast<size_t>(a) < perApp_.size());
    return perApp_[static_cast<size_t>(a)];
  }
  int numApps() const { return static_cast<int>(perApp_.size()); }

  /// Aggregate over all applications.
  AppStats overall() const;

  /// Mean APL over all measured packets (all apps pooled).
  double overallApl() const;

  /// APL of one application.
  double appApl(AppId a) const { return app(a).totalLatency.mean(); }

 private:
  std::vector<AppStats> perApp_;
  Cycle measureStart_ = 0;
  Cycle measureEnd_ = kNeverCycle;
  std::uint64_t measuredCreated_ = 0;
  std::uint64_t measuredDelivered_ = 0;
};

}  // namespace rair
