// Measurement collection: per-packet latency accounting, per-application
// aggregation, and network-level counters.
//
// The paper reports Average Packet Latency (APL): creation-to-delivery
// latency including source queuing, averaged over packets injected during
// the measurement window (after warmup). StatsCollector implements exactly
// that protocol: packets created before measurement starts are ignored;
// packets created during the window are counted when delivered (the
// simulator drains after the window so measured packets complete).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "metrics/histogram.h"
#include "packet/packet.h"

namespace rair::snapshot {
class Writer;
class Reader;
}  // namespace rair::snapshot

namespace rair {

/// Running scalar statistics plus a coarse power-of-two histogram. The
/// implementation lives in the metrics subsystem (metrics/histogram.h) so
/// dimensioned registry metrics and per-app latency accounting share one
/// numeric definition; this alias keeps the historical stats-layer name.
using LatencyStats = metrics::Histogram;

/// Aggregated results for one application.
struct AppStats {
  LatencyStats totalLatency;    ///< creation -> delivery (the paper's APL)
  LatencyStats networkLatency;  ///< injection -> delivery
  LatencyStats hops;
  std::uint64_t packetsCreated = 0;
  std::uint64_t packetsDelivered = 0;
  std::uint64_t flitsDelivered = 0;
  std::uint64_t packetsDropped = 0;  ///< removed by fault injection
};

/// Collects statistics for a simulation run.
class StatsCollector {
 public:
  explicit StatsCollector(int numApps);

  /// Starts the measurement window; packets created from `cycle` onward
  /// (strictly: createCycle >= cycle) are measured.
  void startMeasurement(Cycle cycle) { measureStart_ = cycle; }
  /// Ends packet admission into the measured set (packets created at or
  /// after `cycle` are ignored, e.g. created during drain).
  void stopMeasurement(Cycle cycle) { measureEnd_ = cycle; }

  bool inMeasurementWindow(Cycle createCycle) const {
    return createCycle >= measureStart_ && createCycle < measureEnd_;
  }

  void onPacketCreated(const Packet& p);
  void onPacketDelivered(const Packet& p);
  /// Fault injection removed `p` (never delivered). Dropped packets leave
  /// the measured set so the drain phase still terminates.
  void onPacketDropped(const Packet& p);

  /// Number of measured packets still in flight (created in window, not
  /// yet delivered or dropped). Drain completes when this reaches zero.
  std::uint64_t measuredInFlight() const {
    return measuredCreated_ - measuredDelivered_ - measuredDropped_;
  }

  const AppStats& app(AppId a) const {
    RAIR_CHECK(a >= 0 && static_cast<size_t>(a) < perApp_.size());
    return perApp_[static_cast<size_t>(a)];
  }
  int numApps() const { return static_cast<int>(perApp_.size()); }

  /// Aggregate over all applications.
  AppStats overall() const;

  /// Mean APL over all measured packets (all apps pooled).
  double overallApl() const;

  /// APL of one application.
  double appApl(AppId a) const { return app(a).totalLatency.mean(); }

  /// Snapshot hooks. restore() requires a collector constructed with the
  /// same numApps as the one saved.
  void save(snapshot::Writer& w) const;
  void restore(snapshot::Reader& r);

 private:
  std::vector<AppStats> perApp_;
  Cycle measureStart_ = 0;
  Cycle measureEnd_ = kNeverCycle;
  std::uint64_t measuredCreated_ = 0;
  std::uint64_t measuredDelivered_ = 0;
  std::uint64_t measuredDropped_ = 0;
};

}  // namespace rair
