// Interval time series: per-window averages of latency and throughput,
// for convergence/stability analysis of simulation runs.
//
// The paper's methodology (warm up, then measure a fixed window) assumes
// the network has reached steady state; this collector makes that
// verifiable: record every delivery into fixed-width intervals and check
// that per-interval APL is stationary (no upward drift = stable, offered
// load below saturation).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "packet/packet.h"

namespace rair {

/// One aggregated interval.
struct IntervalStats {
  Cycle start = 0;
  std::uint64_t packets = 0;
  std::uint64_t flits = 0;
  double latencySum = 0.0;

  double meanLatency() const {
    return packets ? latencySum / static_cast<double>(packets) : 0.0;
  }
};

class TimeSeries {
 public:
  /// @param intervalCycles width of each aggregation window.
  explicit TimeSeries(Cycle intervalCycles);

  /// Records a delivered packet into the interval of its delivery cycle.
  void recordDelivery(const Packet& p);

  const std::vector<IntervalStats>& intervals() const { return intervals_; }
  Cycle intervalCycles() const { return interval_; }

  /// Mean per-interval latency over the last `n` complete intervals.
  double tailMeanLatency(std::size_t n) const;

  /// Linear-regression slope of per-interval mean latency (cycles of APL
  /// per interval), over intervals [from, to). A clearly positive slope
  /// indicates an unstable (super-saturated) run. Returns 0 with fewer
  /// than two populated intervals.
  double latencyTrend(std::size_t from, std::size_t to) const;

  /// Convenience stability check: the total drift implied by the trend
  /// across the whole series (|trend| x number of intervals) stays below
  /// `tolerance` x the overall mean latency. A super-saturated run drifts
  /// by multiples of its mean and fails this decisively.
  bool stationary(double tolerance = 0.1) const;

 private:
  Cycle interval_;
  std::vector<IntervalStats> intervals_;
};

}  // namespace rair
