// Plain-text table reporting used by benches and examples to print
// paper-style result rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace rair {

/// A simple fixed-column text table. Cells are strings; numeric helpers
/// format with fixed precision. Rendered with column alignment:
///
///   scheme        App 0    App 1    mean
///   ------------  -------  -------  -------
///   RO_RR         41.25    63.10    52.17
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; returns its index.
  std::size_t addRow();

  void set(std::size_t row, std::size_t col, std::string value);
  void setNum(std::size_t row, std::size_t col, double value,
              int precision = 2);
  /// Formats as a signed percentage, e.g. "+12.4%".
  void setPct(std::size_t row, std::size_t col, double fraction,
              int precision = 1);

  /// Convenience: append a full row of cells.
  void addRow(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  std::string toString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for ad-hoc prints).
std::string formatNum(double value, int precision = 2);

/// Formats a fraction as signed percent: 0.124 -> "+12.4%".
std::string formatPct(double fraction, int precision = 1);

/// Renders the aggregate router/arbitration counters of an instrumented
/// run (VA/SA grants split native vs. foreign with shares, escape-VC
/// allocations, switch traversals, DPA priority flips, delivery census) as
/// a paper-style text table.
std::string renderMetricsSummary(const metrics::MetricsSummary& summary);

}  // namespace rair
