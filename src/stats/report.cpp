#include "stats/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace rair {

std::string formatNum(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string formatPct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

std::size_t TextTable::addRow() {
  rows_.emplace_back(headers_.size());
  return rows_.size() - 1;
}

void TextTable::set(std::size_t row, std::size_t col, std::string value) {
  RAIR_CHECK(row < rows_.size() && col < headers_.size());
  rows_[row][col] = std::move(value);
}

void TextTable::setNum(std::size_t row, std::size_t col, double value,
                       int precision) {
  set(row, col, formatNum(value, precision));
}

void TextTable::setPct(std::size_t row, std::size_t col, double fraction,
                       int precision) {
  set(row, col, formatPct(fraction, precision));
}

void TextTable::addRow(std::vector<std::string> cells) {
  RAIR_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto emitRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emitRow(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule.emplace_back(widths[c], '-');
  emitRow(rule);
  for (const auto& row : rows_) emitRow(row);
}

std::string TextTable::toString() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string renderMetricsSummary(const metrics::MetricsSummary& summary) {
  std::ostringstream oss;
  oss << "metrics summary (level " << metrics::metricsLevelName(summary.level)
      << ", " << summary.cyclesRun << " cycles)\n";

  TextTable arb({"stage", "native", "foreign", "native share"});
  {
    const std::size_t r = arb.addRow();
    arb.set(r, 0, "VA_out grants");
    arb.set(r, 1, std::to_string(summary.vaGrantsNative));
    arb.set(r, 2, std::to_string(summary.vaGrantsForeign));
    arb.setNum(r, 3, summary.vaNativeShare() * 100.0, 1);
  }
  {
    const std::size_t r = arb.addRow();
    arb.set(r, 0, "SA grants");
    arb.set(r, 1, std::to_string(summary.saGrantsNative));
    arb.set(r, 2, std::to_string(summary.saGrantsForeign));
    arb.setNum(r, 3, summary.saNativeShare() * 100.0, 1);
  }
  oss << arb.toString();

  TextTable totals({"counter", "value"});
  auto addTotal = [&](const char* name, std::uint64_t v) {
    const std::size_t r = totals.addRow();
    totals.set(r, 0, name);
    totals.set(r, 1, std::to_string(v));
  };
  addTotal("escape allocations", summary.escapeAllocations);
  addTotal("flits traversed", summary.flitsTraversed);
  addTotal("DPA priority flips", summary.dpaFlips);
  addTotal("delivered packets", summary.deliveredPackets);
  addTotal("delivered flits", summary.deliveredFlits);
  oss << '\n' << totals.toString();

  if (!summary.appDeliveredPackets.empty()) {
    TextTable apps({"app", "packets", "flits"});
    for (std::size_t a = 0; a < summary.appDeliveredPackets.size(); ++a) {
      // The final slot aggregates unmapped/overflow AppIds; hide it when
      // nothing landed there.
      const bool overflow = a + 1 == summary.appDeliveredPackets.size();
      if (overflow && summary.appDeliveredPackets[a] == 0) continue;
      const std::size_t r = apps.addRow();
      apps.set(r, 0, overflow ? "other" : std::to_string(a));
      apps.set(r, 1, std::to_string(summary.appDeliveredPackets[a]));
      apps.set(r, 2, a < summary.appDeliveredFlits.size()
                         ? std::to_string(summary.appDeliveredFlits[a])
                         : "0");
    }
    oss << '\n' << apps.toString();
  }
  return oss.str();
}

}  // namespace rair
