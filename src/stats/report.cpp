#include "stats/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace rair {

std::string formatNum(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string formatPct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

std::size_t TextTable::addRow() {
  rows_.emplace_back(headers_.size());
  return rows_.size() - 1;
}

void TextTable::set(std::size_t row, std::size_t col, std::string value) {
  RAIR_CHECK(row < rows_.size() && col < headers_.size());
  rows_[row][col] = std::move(value);
}

void TextTable::setNum(std::size_t row, std::size_t col, double value,
                       int precision) {
  set(row, col, formatNum(value, precision));
}

void TextTable::setPct(std::size_t row, std::size_t col, double fraction,
                       int precision) {
  set(row, col, formatPct(fraction, precision));
}

void TextTable::addRow(std::vector<std::string> cells) {
  RAIR_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto emitRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emitRow(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule.emplace_back(widths[c], '-');
  emitRow(rule);
  for (const auto& row : rows_) emitRow(row);
}

std::string TextTable::toString() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace rair
