// RetxLink: a CRC/retransmission link layer with deterministic go-back-N
// recovery, the seam that makes transient faults (flit corruption)
// modelable.
//
// Model. The upstream endpoint hands the layer at most one flit per cycle
// (sendFlit); the layer appends it to a bounded replay buffer and its
// replay pump (tickUpstream) places at most one flit per cycle onto the
// forward wire, tagged with a per-link sequence number — in the fault-free
// case the freshly appended flit is pumped in the same cycle, so delivery
// timing is identical to IdealLink. The receiver accepts only the
// uncorrupted in-order flit (seq == expectSeq_); a corrupt or gapped
// arrival is dropped at peek time and stages a NAK. Control (cumulative
// ACKs and go-back NAKs) is piggybacked on the reverse credit wire as
// tagged messages and flushed one per cycle by tickDownstream; the
// upstream side applies it transparently while polling credits. A NAK at
// sequence s makes the sender rewind its pump cursor and replay every
// unacknowledged entry from s — classic go-back-N, duplicates are dropped
// silently downstream. Replay entries retire only on cumulative ACK.
//
// Accounting. A flit occupies exactly one census location at all times:
// the replay entries with seq >= expectSeq_ ARE the link's in-flight
// population (charged upstream credit, not yet in a downstream buffer);
// forward-wire copies are ghosts of those entries and entries below
// expectSeq_ have already been delivered (they sit in a downstream buffer
// and are counted there until the ACK retires them). Corruption never
// loses a credit, so the oracle's credit equations close unchanged.
//
// Determinism. Both wires and all layer state are owned by the enclosing
// link object, and the engine-phase discipline in link_layer.h means each
// wire is mutated by exactly one endpoint in exactly one phase — recovery
// schedules are byte-identical across shard-thread counts.
#pragma once

#include <cstdint>

#include "link/link_layer.h"

namespace rair {

/// Retransmission link layer. See file comment; construction-time knobs
/// are the wire latency and the replay-buffer capacity (callers size it
/// as totalVcs * vcDepth + 2 * latency + slack — the credit loop bounds
/// un-ACKed occupancy, so hitting the cap means broken flow control, and
/// the layer treats overflow as a hard failure rather than backpressure).
class RetxLink final : public LinkLayer {
 public:
  RetxLink(Cycle latency, std::size_t replayCapacity);

  int inFlightFlits(int vc) const override;
  int inFlightCredits(int vc) const override;
  void forEachFlit(
      const std::function<void(const FlitMsg&)>& fn) const override;
  int purgeFlits(const std::function<bool(const FlitMsg&)>& doomed,
                 const std::function<void(int)>& refundCredit) override;
  void corruptNext(int count) override;
  void setReceiverDown(bool down) override;
  std::uint64_t corruptedFlits() const override { return corrupted_; }
  std::uint64_t retransmittedFlits() const override { return retransmitted_; }
  void save(snapshot::Writer& w) const override;
  void restore(snapshot::Reader& r) override;

  /// Replay-buffer occupancy (all entries, including delivered-but-unACKed
  /// ones) — test introspection.
  std::size_t replayOccupancy() const { return replay_.size(); }
  std::uint64_t expectSeq() const { return expectSeq_; }

 protected:
  void vSendFlit(Cycle now, const Flit& f, int vc) override;
  const CreditMsg* vPeekCredit(Cycle now) override;
  void vPopCredit() override;
  void vTickUpstream(Cycle now) override;
  const FlitMsg* vPeekFlit(Cycle now) override;
  void vPopFlit() override;
  void vSendCredit(Cycle now, int vc) override;
  void vTickDownstream(Cycle now) override;
  bool vIdle() const override;

 private:
  /// One flit on the forward wire: its link sequence number and whether
  /// its CRC will fail at the receiver. The payload itself is NOT copied
  /// onto the wire — a wire entry the receiver can accept (uncorrupted,
  /// seq == expectSeq_) is guaranteed to still have its replay entry
  /// (entries retire only on a cumulative ACK, which the receiver cannot
  /// have sent before accepting seq), so the receiver reads the FlitMsg
  /// straight out of the replay buffer. Phase-safe: the replay buffer is
  /// written in phase A (sender) and read in phase B (receiver), the
  /// same one-endpoint-per-phase discipline every wire follows.
  struct WireFlit {
    std::uint64_t seq = 0;
    bool corrupt = false;
  };

  enum class RevKind : std::uint8_t { Credit = 0, Ack = 1, Nak = 2 };

  /// One message on the reverse wire: a flow-control credit or a go-back
  /// NAK (seq is cumulative: the receiver's next expected sequence
  /// number). Credits piggyback a cumulative ACK in `seq` for free, so
  /// standalone Ack messages only flush on cycles where a flit was
  /// accepted but no credit was sent.
  struct RevMsg {
    RevKind kind = RevKind::Credit;
    int vc = 0;
    std::uint64_t seq = 0;
  };

  /// A sent-but-unacknowledged flit retained for replay. A doomed entry
  /// was purged by the fault injector (its packet died in a soft reset):
  /// it keeps its place in the sequence space — pumped, replayed and
  /// ACKed like any other — but is census-invisible and consumed
  /// silently at the receiver (no buffer insert, no credit).
  struct ReplayEntry {
    FlitMsg msg;
    std::uint64_t seq = 0;
    bool doomed = false;
  };

  void retireAcked(std::uint64_t seq);
  void applyCtl(const RevMsg& m);
  void pump(Cycle now);

  std::size_t replayCap_;

  // Wires (forward: upstream pushes, downstream pops; reverse: opposite).
  DelayPipe<WireFlit> fwd_;
  DelayPipe<RevMsg> rev_;

  // Sender state.
  RingQueue<ReplayEntry> replay_;
  std::uint64_t nextSeq_ = 0;   ///< sequence for the next sendFlit
  std::size_t cursor_ = 0;      ///< replay index of the next flit to pump
  std::uint64_t wireHigh_ = 0;  ///< 1 + highest seq ever pumped
  int corruptPending_ = 0;      ///< flits still to corrupt at the pump
  CreditMsg creditScratch_;     ///< backing for peekCredit's return

  // Receiver state.
  std::uint64_t expectSeq_ = 0;  ///< next in-order sequence to accept
  bool ackPending_ = false;      ///< delivery since the last ACK flush
  bool nakPending_ = false;      ///< staged go-back request
  std::uint64_t nakSeq_ = 0;     ///< sequence captured when the NAK staged
  bool nakArmed_ = false;        ///< suppress duplicate NAKs for one gap
  bool receiverDown_ = false;    ///< downstream router in soft reset

  // Lifetime counters (surface through FaultStats).
  std::uint64_t corrupted_ = 0;
  std::uint64_t retransmitted_ = 0;
};

}  // namespace rair
