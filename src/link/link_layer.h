// Pluggable link layer: the contract between router/NIC ports and the
// point-to-point channel beneath them.
//
// A LinkLayer models one directed physical channel (at most one flit
// enters per cycle, arriving `latency` cycles later) plus its reverse
// wire carrying credits back upstream. Two implementations exist:
//
//  - IdealLink (below): the lossless channel the paper assumes — two
//    delay pipes, nothing else. Byte-identical in behavior and snapshot
//    format to the pre-refactor concrete Link.
//  - RetxLink (link/retx.h): a CRC/retransmission layer with per-link
//    sequence numbers, a bounded replay buffer, cumulative ACK/NAK
//    control piggybacked on the credit wire and go-back-N recovery,
//    enabling transient-fault (flit corruption) modeling.
//
// Call-site contract (who calls what, in which engine phase):
//  - The upstream endpoint calls sendFlit/peekCredit/popCredit and, once
//    per cycle after its send phase, tickUpstream (the replay pump).
//  - The downstream endpoint calls peekFlit/popFlit/sendCredit and, once
//    per cycle after its receive+send phases, tickDownstream (the staged
//    ACK/NAK flush).
// Each wire is thereby written by exactly one endpoint in exactly one
// engine phase, which is what keeps the sharded cycle engine
// race-free and retransmission byte-identical across shard-thread
// counts (DESIGN.md §5d).
//
// The hot-path methods are non-virtual and dispatch on the kind tag so
// an ideal link compiles to exactly the pre-refactor pipe operations;
// only non-ideal layers pay a virtual call. Introspection (oracle
// views), fault hooks and snapshot save/restore are virtual — they run
// off the per-cycle path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "common/assert.h"
#include "common/types.h"
#include "link/pipe.h"

namespace rair {

namespace snapshot {
class Writer;
class Reader;
}  // namespace snapshot

/// Which link-layer implementation a network is wired with
/// (NetworkConfig::linkLayer). Values are serialized into scenario keys;
/// append only.
enum class LinkLayerKind : std::uint8_t { Ideal = 0, Retx = 1 };

/// Stable lowercase names ("ideal", "retx") for CLI flags and logs.
const char* linkLayerKindName(LinkLayerKind kind);
std::optional<LinkLayerKind> linkLayerKindFromName(std::string_view name);

class IdealLink;

/// Abstract link-layer contract. See the file comment for the call-site
/// phase discipline.
class LinkLayer {
 public:
  virtual ~LinkLayer() = default;
  LinkLayer(const LinkLayer&) = delete;
  LinkLayer& operator=(const LinkLayer&) = delete;
  /// Move-constructible only so the typed link vectors can grow while
  /// wiring reserves them; never moved once pointers are handed out.
  LinkLayer(LinkLayer&&) = default;

  LinkLayerKind kind() const { return kind_; }
  Cycle latency() const { return latency_; }

  // ---- Hot-path interface (non-virtual; ideal stays fully inline) ------

  // Upstream side.
  inline void sendFlit(Cycle now, const Flit& f, int vc);
  /// Zero-copy credit receive; pair with popCredit(). Non-const: a
  /// retransmission layer consumes piggybacked ACK/NAK control here.
  inline const CreditMsg* peekCredit(Cycle now);
  inline void popCredit();
  /// Upstream endpoint's once-per-cycle hook, after its send phase: the
  /// retransmission replay pump. No-op for ideal links.
  inline void tickUpstream(Cycle now);

  // Downstream side.
  /// Zero-copy flit receive; pair with popFlit(). Non-const: a
  /// retransmission layer filters corrupt/out-of-order arrivals here.
  inline const FlitMsg* peekFlit(Cycle now);
  inline void popFlit();
  inline void sendCredit(Cycle now, int vc);
  /// Downstream endpoint's once-per-cycle hook, after its receive+send
  /// phases: flushes staged ACK/NAK control. No-op for ideal links.
  inline void tickDownstream(Cycle now);

  /// True when nothing is in flight in either direction (quiescence).
  inline bool idle() const;

  // ---- Introspection views (oracle census / credit equations) ----------

  /// Flits charged against an upstream credit but not yet in a downstream
  /// buffer: on an ideal link the forward-pipe occupancy of `vc`; on a
  /// retransmission link the replay-buffer residents the receiver has not
  /// yet accepted (wire copies of those entries are ghosts, counted 0).
  virtual int inFlightFlits(int vc) const = 0;
  /// Credits in flight back upstream for `vc` (ACK/NAK control does not
  /// count).
  virtual int inFlightCredits(int vc) const = 0;
  /// Visits every in-flight flit exactly once (the census set: same
  /// definition as inFlightFlits, all VCs).
  virtual void forEachFlit(
      const std::function<void(const FlitMsg&)>& fn) const = 0;

  // ---- Fault hooks ------------------------------------------------------

  /// Removes every in-flight flit for which `doomed` returns true,
  /// calling `refundCredit(vc)` once per removal; returns the number
  /// removed. Used by the fault injector's reconfiguration flush. An
  /// ideal link deletes the pipe entries outright; a retransmission link
  /// cannot remove replay entries without tearing the go-back-N sequence
  /// space, so it tombstones them instead — the entry stays in the
  /// protocol (pumped, replayed, ACKed) but turns census-invisible and is
  /// consumed silently at the receiver.
  virtual int purgeFlits(const std::function<bool(const FlitMsg&)>& doomed,
                         const std::function<void(int)>& refundCredit) = 0;
  /// While down, the receiver end refuses every arrival at peek time (the
  /// CRC handshake fails against a router in soft reset) and keeps a
  /// go-back staged so the sender replays everything once the router
  /// recovers. Only a retransmission layer can redeliver, so IdealLink
  /// rejects this — on the ideal layer a soft reset purges instead.
  virtual void setReceiverDown(bool down) = 0;
  /// Marks the next `count` flits entering the forward wire as corrupt
  /// (CRC failure at the receiver). Only a retransmission layer can
  /// recover a corrupt flit, so IdealLink rejects this.
  virtual void corruptNext(int count) = 0;
  virtual std::uint64_t corruptedFlits() const { return 0; }
  virtual std::uint64_t retransmittedFlits() const { return 0; }

  // ---- Snapshot ---------------------------------------------------------

  /// Serializes the link's full channel state. IdealLink writes exactly
  /// the pre-refactor bytes (flit pipe then credit pipe); RetxLink writes
  /// a versioned section with wires, replay buffer and sequence state.
  virtual void save(snapshot::Writer& w) const = 0;
  virtual void restore(snapshot::Reader& r) = 0;

 protected:
  LinkLayer(LinkLayerKind kind, Cycle latency)
      : kind_(kind), latency_(latency) {
    RAIR_CHECK(latency >= 1);
  }

  // Slow-path twins of the hot-path methods, reached only when
  // kind() != Ideal. RetxLink overrides all of them.
  virtual void vSendFlit(Cycle now, const Flit& f, int vc) = 0;
  virtual const CreditMsg* vPeekCredit(Cycle now) = 0;
  virtual void vPopCredit() = 0;
  virtual void vTickUpstream(Cycle now) = 0;
  virtual const FlitMsg* vPeekFlit(Cycle now) = 0;
  virtual void vPopFlit() = 0;
  virtual void vSendCredit(Cycle now, int vc) = 0;
  virtual void vTickDownstream(Cycle now) = 0;
  virtual bool vIdle() const = 0;

 private:
  LinkLayerKind kind_;
  Cycle latency_;
};

/// The lossless channel: a forward flit pipe and a reverse credit pipe,
/// exactly the pre-refactor Link. Default link layer everywhere; golden
/// campaign records and snapshot bytes are pinned to it.
class IdealLink final : public LinkLayer {
 public:
  explicit IdealLink(Cycle latency = 1)
      : LinkLayer(LinkLayerKind::Ideal, latency),
        data_(latency),
        credits_(latency) {}

  /// Blocking-style receives for unit tests (the simulator uses the
  /// zero-copy peek/pop pairs).
  std::optional<FlitMsg> recvFlit(Cycle now) { return data_.pop(now); }
  std::optional<CreditMsg> recvCredit(Cycle now) { return credits_.pop(now); }

  /// Read-only pipe views — DelayPipe-level introspection for tests.
  const DelayPipe<FlitMsg>& flitPipe() const { return data_; }
  const DelayPipe<CreditMsg>& creditPipe() const { return credits_; }

  /// Mutable pipe access for snapshot restore and tests.
  DelayPipe<FlitMsg>& flitPipeMut() { return data_; }
  DelayPipe<CreditMsg>& creditPipeMut() { return credits_; }

  int inFlightFlits(int vc) const override;
  int inFlightCredits(int vc) const override;
  void forEachFlit(
      const std::function<void(const FlitMsg&)>& fn) const override;
  int purgeFlits(const std::function<bool(const FlitMsg&)>& doomed,
                 const std::function<void(int)>& refundCredit) override;
  void corruptNext(int count) override;
  void setReceiverDown(bool down) override;
  void save(snapshot::Writer& w) const override;
  void restore(snapshot::Reader& r) override;

 protected:
  // Unreachable: the non-virtual fast path handles Ideal before
  // dispatching. Implemented as hard failures so a future kind that
  // forgets to override them is caught immediately.
  void vSendFlit(Cycle, const Flit&, int) override;
  const CreditMsg* vPeekCredit(Cycle) override;
  void vPopCredit() override;
  void vTickUpstream(Cycle) override;
  const FlitMsg* vPeekFlit(Cycle) override;
  void vPopFlit() override;
  void vSendCredit(Cycle, int) override;
  void vTickDownstream(Cycle) override;
  bool vIdle() const override;

 private:
  friend class LinkLayer;  // the inline fast path below
  DelayPipe<FlitMsg> data_;
  DelayPipe<CreditMsg> credits_;
};

// ---- Hot-path fast paths: ideal links run the pre-refactor pipe ops
// inline; anything else takes one predicted branch into the virtual
// slow path. ------------------------------------------------------------

inline void LinkLayer::sendFlit(Cycle now, const Flit& f, int vc) {
  if (kind_ == LinkLayerKind::Ideal)
    static_cast<IdealLink*>(this)->data_.push(now, FlitMsg{f, vc});
  else
    vSendFlit(now, f, vc);
}

inline const CreditMsg* LinkLayer::peekCredit(Cycle now) {
  if (kind_ == LinkLayerKind::Ideal)
    return static_cast<IdealLink*>(this)->credits_.peek(now);
  return vPeekCredit(now);
}

inline void LinkLayer::popCredit() {
  if (kind_ == LinkLayerKind::Ideal)
    static_cast<IdealLink*>(this)->credits_.popFront();
  else
    vPopCredit();
}

inline void LinkLayer::tickUpstream(Cycle now) {
  if (kind_ != LinkLayerKind::Ideal) vTickUpstream(now);
}

inline const FlitMsg* LinkLayer::peekFlit(Cycle now) {
  if (kind_ == LinkLayerKind::Ideal)
    return static_cast<IdealLink*>(this)->data_.peek(now);
  return vPeekFlit(now);
}

inline void LinkLayer::popFlit() {
  if (kind_ == LinkLayerKind::Ideal)
    static_cast<IdealLink*>(this)->data_.popFront();
  else
    vPopFlit();
}

inline void LinkLayer::sendCredit(Cycle now, int vc) {
  if (kind_ == LinkLayerKind::Ideal)
    static_cast<IdealLink*>(this)->credits_.push(now, CreditMsg{vc});
  else
    vSendCredit(now, vc);
}

inline void LinkLayer::tickDownstream(Cycle now) {
  if (kind_ != LinkLayerKind::Ideal) vTickDownstream(now);
}

inline bool LinkLayer::idle() const {
  if (kind_ == LinkLayerKind::Ideal) {
    const auto* self = static_cast<const IdealLink*>(this);
    return self->data_.empty() && self->credits_.empty();
  }
  return vIdle();
}

}  // namespace rair
