#include "link/retx.h"

#include "snapshot/codec.h"

namespace rair {

RetxLink::RetxLink(Cycle latency, std::size_t replayCapacity)
    : LinkLayer(LinkLayerKind::Retx, latency),
      replayCap_(replayCapacity),
      fwd_(latency),
      rev_(latency) {
  RAIR_CHECK(replayCapacity >= 1);
  replay_.reserve(replayCapacity);
}

// ---- Sender side -------------------------------------------------------

void RetxLink::vSendFlit(Cycle, const Flit& f, int vc) {
  // The credit loop bounds un-ACKed occupancy below the capacity the
  // network sized us with; overflow means flow control is broken.
  RAIR_CHECK_MSG(replay_.size() < replayCap_, "retx replay buffer overflow");
  replay_.push_back(ReplayEntry{FlitMsg{f, vc}, nextSeq_++});
}

void RetxLink::retireAcked(std::uint64_t seq) {
  // Cumulative: everything below seq was delivered; retire it.
  while (!replay_.empty() && replay_.front().seq < seq) {
    replay_.pop_front();
    RAIR_DCHECK(cursor_ > 0);
    --cursor_;
  }
}

void RetxLink::applyCtl(const RevMsg& m) {
  if (m.kind == RevKind::Ack) {
    retireAcked(m.seq);
  } else {
    RAIR_DCHECK(m.kind == RevKind::Nak);
    // Go-back-N: everything below m.seq was delivered (the NAK is
    // cumulative too); rewind the pump over the rest.
    while (!replay_.empty() && replay_.front().seq < m.seq)
      replay_.pop_front();
    cursor_ = 0;
  }
}

void RetxLink::pump(Cycle now) {
  if (cursor_ >= replay_.size()) return;
  const ReplayEntry& e = replay_[cursor_];
  const bool corrupt = corruptPending_ > 0;
  if (corrupt) {
    --corruptPending_;
    ++corrupted_;
  }
  if (e.seq < wireHigh_)
    ++retransmitted_;
  else
    wireHigh_ = e.seq + 1;
  fwd_.push(now, WireFlit{e.seq, corrupt});
  ++cursor_;
}

const CreditMsg* RetxLink::vPeekCredit(Cycle now) {
  // Piggybacked ACK/NAK control is consumed transparently here; the
  // caller only ever sees credits (whose own cumulative ACK is applied
  // before they surface — idempotent across repeated peeks).
  while (const RevMsg* m = rev_.peek(now)) {
    if (m->kind == RevKind::Credit) {
      retireAcked(m->seq);
      creditScratch_.vc = m->vc;
      return &creditScratch_;
    }
    applyCtl(*m);
    rev_.popFront();
  }
  return nullptr;
}

void RetxLink::vPopCredit() { rev_.popFront(); }

void RetxLink::vTickUpstream(Cycle now) {
  // Control was already applied by this cycle's credit poll (every
  // upstream endpoint drains peekCredit each cycle); touching the reverse
  // wire here would race the downstream endpoint's same-phase pushes.
  pump(now);
}

// ---- Receiver side -----------------------------------------------------

const FlitMsg* RetxLink::vPeekFlit(Cycle now) {
  while (const WireFlit* wf = fwd_.peek(now)) {
    if (receiverDown_) {
      // The downstream router is in soft reset: every arrival fails the
      // handshake. Unlike a normal gap the NAK re-arms on every drop —
      // the gap cannot close while the router is down, and keeping a
      // go-back staged is what guarantees the pump rewinds and the whole
      // window is redelivered once the router recovers.
      if (wf->seq >= expectSeq_) {
        ++corrupted_;
        nakPending_ = true;
        nakSeq_ = expectSeq_;
        nakArmed_ = true;
      }
      fwd_.popFront();
      continue;
    }
    if (!wf->corrupt && wf->seq == expectSeq_) {
      // The wire carries only the tag; the payload is read out of the
      // replay buffer, which must still hold this entry (it retires only
      // on a cumulative ACK the receiver has not sent for seq yet).
      RAIR_DCHECK(!replay_.empty() && replay_.front().seq <= wf->seq);
      ReplayEntry& e =
          replay_[static_cast<std::size_t>(wf->seq - replay_.front().seq)];
      if (e.doomed) {
        // Tombstone from a reconfiguration purge: advance the protocol
        // past it without surfacing a flit or charging a credit.
        fwd_.popFront();
        ++expectSeq_;
        ackPending_ = true;
        nakArmed_ = false;
        continue;
      }
      return &e.msg;
    }
    if (wf->seq >= expectSeq_) {
      // A corrupt or gapped arrival we needed: request a go-back, at
      // most once per gap — except that a corrupt copy of the expected
      // flit itself must always re-NAK or recovery would stall.
      const bool reNak = wf->corrupt && wf->seq == expectSeq_;
      if (!nakArmed_ || reNak) {
        nakPending_ = true;
        nakSeq_ = expectSeq_;
        nakArmed_ = true;
      }
    }
    // else: a stale go-back duplicate, dropped silently.
    fwd_.popFront();
  }
  return nullptr;
}

void RetxLink::vPopFlit() {
  fwd_.popFront();
  ++expectSeq_;
  ackPending_ = true;
  nakArmed_ = false;
}

void RetxLink::vSendCredit(Cycle now, int vc) {
  // Every credit piggybacks the cumulative ACK for free, covering any
  // delivery staged earlier this cycle.
  rev_.push(now, RevMsg{RevKind::Credit, vc, expectSeq_});
  ackPending_ = false;
}

void RetxLink::vTickDownstream(Cycle now) {
  // One control message per cycle; a pending go-back beats the ACK (the
  // ACK stays staged and flushes next cycle). Standalone ACKs only fire
  // on cycles where a flit was accepted after the last credit went out.
  if (nakPending_) {
    rev_.push(now, RevMsg{RevKind::Nak, 0, nakSeq_});
    nakPending_ = false;
  } else if (ackPending_) {
    rev_.push(now, RevMsg{RevKind::Ack, 0, expectSeq_});
    ackPending_ = false;
  }
}

bool RetxLink::vIdle() const {
  return fwd_.empty() && rev_.empty() && replay_.empty() && !ackPending_ &&
         !nakPending_;
}

// ---- Introspection -----------------------------------------------------

int RetxLink::inFlightFlits(int vc) const {
  // Replay entries the receiver has not accepted yet are the in-flight
  // population; wire copies are ghosts of them, and entries below
  // expectSeq_ already sit in a downstream buffer (counted there).
  int n = 0;
  for (std::size_t i = 0; i < replay_.size(); ++i)
    if (replay_[i].seq >= expectSeq_ && !replay_[i].doomed &&
        replay_[i].msg.vc == vc)
      ++n;
  return n;
}

int RetxLink::inFlightCredits(int vc) const {
  int n = 0;
  for (std::size_t i = 0; i < rev_.size(); ++i) {
    const RevMsg& m = rev_.entry(i).second;
    if (m.kind == RevKind::Credit && m.vc == vc) ++n;
  }
  return n;
}

void RetxLink::forEachFlit(
    const std::function<void(const FlitMsg&)>& fn) const {
  for (std::size_t i = 0; i < replay_.size(); ++i)
    if (replay_[i].seq >= expectSeq_ && !replay_[i].doomed)
      fn(replay_[i].msg);
}

int RetxLink::purgeFlits(const std::function<bool(const FlitMsg&)>& doomed,
                         const std::function<void(int)>& refundCredit) {
  // Tombstone instead of remove: deleting a replay entry would tear the
  // go-back-N sequence space (the receiver would wait forever on the
  // gap). Only entries the receiver has not accepted yet are eligible —
  // a delivered-but-unACKed entry's payload sits in a downstream buffer
  // and is refunded by that buffer's own purge.
  int removed = 0;
  for (std::size_t i = 0; i < replay_.size(); ++i) {
    ReplayEntry& e = replay_[i];
    if (e.seq < expectSeq_ || e.doomed) continue;
    if (!doomed(e.msg)) continue;
    e.doomed = true;
    refundCredit(e.msg.vc);
    ++removed;
  }
  return removed;
}

void RetxLink::setReceiverDown(bool down) { receiverDown_ = down; }

void RetxLink::corruptNext(int count) {
  RAIR_CHECK(count > 0);
  corruptPending_ += count;
}

// ---- Snapshot ----------------------------------------------------------

namespace {
// v2: per-entry tombstone flag + the receiver-down (soft reset) flag.
constexpr std::uint8_t kRetxSectionVersion = 2;
}  // namespace

void RetxLink::save(snapshot::Writer& w) const {
  w.u8(kRetxSectionVersion);
  snapshot::saveDelayPipe(w, fwd_,
                          [](snapshot::Writer& w2, const WireFlit& wf) {
                            w2.u64(wf.seq);
                            w2.boolean(wf.corrupt);
                          });
  snapshot::saveDelayPipe(w, rev_, [](snapshot::Writer& w2, const RevMsg& m) {
    w2.u8(static_cast<std::uint8_t>(m.kind));
    w2.i32(m.vc);
    w2.u64(m.seq);
  });
  snapshot::saveRing(w, replay_,
                     [](snapshot::Writer& w2, const ReplayEntry& e) {
                       snapshot::saveFlitMsg(w2, e.msg);
                       w2.u64(e.seq);
                       w2.boolean(e.doomed);
                     });
  w.u64(nextSeq_);
  w.u64(cursor_);
  w.u64(wireHigh_);
  w.i32(corruptPending_);
  w.u64(expectSeq_);
  w.boolean(ackPending_);
  w.boolean(nakPending_);
  w.u64(nakSeq_);
  w.boolean(nakArmed_);
  w.boolean(receiverDown_);
  w.u64(corrupted_);
  w.u64(retransmitted_);
}

void RetxLink::restore(snapshot::Reader& r) {
  const std::uint8_t version = r.u8();
  RAIR_CHECK_MSG(version == kRetxSectionVersion,
                 "unknown retx link snapshot version");
  snapshot::restoreDelayPipe(r, fwd_, [](snapshot::Reader& r2, WireFlit& wf) {
    wf.seq = r2.u64();
    wf.corrupt = r2.boolean();
  });
  snapshot::restoreDelayPipe(r, rev_, [](snapshot::Reader& r2, RevMsg& m) {
    m.kind = static_cast<RevKind>(r2.u8());
    m.vc = r2.i32();
    m.seq = r2.u64();
  });
  snapshot::restoreRing(r, replay_,
                        [](snapshot::Reader& r2, ReplayEntry& e) {
                          snapshot::restoreFlitMsg(r2, e.msg);
                          e.seq = r2.u64();
                          e.doomed = r2.boolean();
                        });
  nextSeq_ = r.u64();
  cursor_ = static_cast<std::size_t>(r.u64());
  wireHigh_ = r.u64();
  corruptPending_ = r.i32();
  expectSeq_ = r.u64();
  ackPending_ = r.boolean();
  nakPending_ = r.boolean();
  nakSeq_ = r.u64();
  nakArmed_ = r.boolean();
  receiverDown_ = r.boolean();
  corrupted_ = r.u64();
  retransmitted_ = r.u64();
}

}  // namespace rair
