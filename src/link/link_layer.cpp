#include "link/link_layer.h"

#include <vector>

#include "snapshot/codec.h"

namespace rair {

const char* linkLayerKindName(LinkLayerKind kind) {
  switch (kind) {
    case LinkLayerKind::Ideal:
      return "ideal";
    case LinkLayerKind::Retx:
      return "retx";
  }
  RAIR_CHECK_MSG(false, "unknown link layer kind");
  return "?";
}

std::optional<LinkLayerKind> linkLayerKindFromName(std::string_view name) {
  if (name == "ideal") return LinkLayerKind::Ideal;
  if (name == "retx") return LinkLayerKind::Retx;
  return std::nullopt;
}

int IdealLink::inFlightFlits(int vc) const {
  int n = 0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (data_.entry(i).second.vc == vc) ++n;
  return n;
}

int IdealLink::inFlightCredits(int vc) const {
  int n = 0;
  for (std::size_t i = 0; i < credits_.size(); ++i)
    if (credits_.entry(i).second.vc == vc) ++n;
  return n;
}

void IdealLink::forEachFlit(
    const std::function<void(const FlitMsg&)>& fn) const {
  for (std::size_t i = 0; i < data_.size(); ++i) fn(data_.entry(i).second);
}

int IdealLink::purgeFlits(const std::function<bool(const FlitMsg&)>& doomed,
                          const std::function<void(int)>& refundCredit) {
  std::vector<std::pair<Cycle, FlitMsg>> keep;
  keep.reserve(data_.size());
  int removed = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const auto& [arrival, msg] = data_.entry(i);
    if (doomed(msg)) {
      refundCredit(msg.vc);
      ++removed;
    } else {
      keep.emplace_back(arrival, msg);
    }
  }
  if (removed > 0) {
    data_.clearForRestore();
    for (auto& [arrival, msg] : keep)
      data_.pushAbsolute(arrival, std::move(msg));
  }
  return removed;
}

void IdealLink::corruptNext(int) {
  RAIR_CHECK_MSG(false,
                 "corrupt_flit faults require the retx link layer "
                 "(--link-layer retx)");
}

void IdealLink::setReceiverDown(bool) {
  RAIR_CHECK_MSG(false,
                 "receiver-down recovery requires the retx link layer; "
                 "ideal-layer soft resets purge in-flight flits instead");
}

void IdealLink::save(snapshot::Writer& w) const {
  snapshot::saveDelayPipe(w, data_, snapshot::saveFlitMsg);
  snapshot::saveDelayPipe(w, credits_, snapshot::saveCreditMsg);
}

void IdealLink::restore(snapshot::Reader& r) {
  snapshot::restoreDelayPipe(r, data_, snapshot::restoreFlitMsg);
  snapshot::restoreDelayPipe(r, credits_, snapshot::restoreCreditMsg);
}

// The non-virtual fast path intercepts every hot call on an ideal link, so
// these bodies are unreachable; aborting here catches any future kind that
// inherits them by mistake.
#define RAIR_IDEAL_UNREACHABLE() \
  RAIR_CHECK_MSG(false, "IdealLink virtual slow path is unreachable")

void IdealLink::vSendFlit(Cycle, const Flit&, int) { RAIR_IDEAL_UNREACHABLE(); }
const CreditMsg* IdealLink::vPeekCredit(Cycle) {
  RAIR_IDEAL_UNREACHABLE();
  return nullptr;
}
void IdealLink::vPopCredit() { RAIR_IDEAL_UNREACHABLE(); }
void IdealLink::vTickUpstream(Cycle) { RAIR_IDEAL_UNREACHABLE(); }
const FlitMsg* IdealLink::vPeekFlit(Cycle) {
  RAIR_IDEAL_UNREACHABLE();
  return nullptr;
}
void IdealLink::vPopFlit() { RAIR_IDEAL_UNREACHABLE(); }
void IdealLink::vSendCredit(Cycle, int) { RAIR_IDEAL_UNREACHABLE(); }
void IdealLink::vTickDownstream(Cycle) { RAIR_IDEAL_UNREACHABLE(); }
bool IdealLink::vIdle() const {
  RAIR_IDEAL_UNREACHABLE();
  return false;
}

#undef RAIR_IDEAL_UNREACHABLE

}  // namespace rair
