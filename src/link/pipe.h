// Channel primitives shared by every link-layer implementation: the
// fixed-latency delay pipe plus the flit/credit wire messages.
//
// Moved out of router/link.h when the concrete Link became the pluggable
// LinkLayer contract (link/link_layer.h); the pipe semantics are
// unchanged so snapshot bytes and oracle accounting stay identical.
#pragma once

#include <optional>
#include <utility>

#include "common/assert.h"
#include "common/ring.h"
#include "common/types.h"
#include "packet/packet.h"

namespace rair {

/// FIFO whose elements become visible `latency` cycles after insertion.
///
/// Backed by a RingQueue pre-sized for the in-simulation worst case: with
/// one push per cycle and consumers draining every arrived element each
/// cycle, occupancy never exceeds latency + 1, so steady state is
/// allocation-free. The ring still grows if a caller outruns that bound.
template <typename T>
class DelayPipe {
 public:
  explicit DelayPipe(Cycle latency = 1) : latency_(latency) {
    RAIR_CHECK(latency >= 1);
    q_.reserve(static_cast<std::size_t>(latency) + 2);
  }

  /// Enqueue `v` at time `now`; it becomes poppable at now + latency.
  void push(Cycle now, T v) {
    RAIR_DCHECK(q_.empty() ||
                q_[q_.size() - 1].first <= now + latency_);
    q_.push_back({now + latency_, std::move(v)});
  }

  /// Pops the front element if it has arrived by `now`.
  std::optional<T> pop(Cycle now) {
    if (q_.empty() || q_.front().first > now) return std::nullopt;
    T v = std::move(q_.front().second);
    q_.pop_front();
    return v;
  }

  /// Zero-copy front access: pointer to the front element if it has
  /// arrived by `now`, else nullptr. Invalidated by popFront()/push().
  const T* peek(Cycle now) const {
    if (q_.empty() || q_.front().first > now) return nullptr;
    return &q_.front().second;
  }

  /// Drops the front element (pair with a successful peek()).
  void popFront() { q_.pop_front(); }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  /// Read-only view of queued element `i` (0 = front) with its arrival
  /// cycle — introspection for the simulation oracle and tests.
  const std::pair<Cycle, T>& entry(std::size_t i) const { return q_[i]; }

  // Snapshot restore: rebuild the queue from saved absolute arrival
  // cycles. pushAbsolute() must be called in saved (front-to-back) order.
  void clearForRestore() { q_.clear(); }
  void pushAbsolute(Cycle arrival, T v) {
    RAIR_DCHECK(q_.empty() || q_[q_.size() - 1].first <= arrival);
    q_.push_back({arrival, std::move(v)});
  }

 private:
  Cycle latency_;
  RingQueue<std::pair<Cycle, T>> q_;
};

/// A flit in flight, tagged with its downstream virtual channel.
struct FlitMsg {
  Flit flit;
  int vc = 0;
};

/// A credit returning upstream: one buffer slot freed in `vc`.
struct CreditMsg {
  int vc = 0;
};

}  // namespace rair
