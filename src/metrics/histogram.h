// Running scalar statistics plus a coarse power-of-two histogram — the
// metric type behind every latency/hops distribution in the repo.
//
// This is the canonical implementation of what the stats layer exposes as
// `LatencyStats` (stats/stats.h aliases it); the metrics registry stores
// arrays of these for dimensioned distribution metrics. The state is a
// fixed-size value (no heap), so registry histogram cells can be updated
// on the hot path without allocating.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

namespace rair::metrics {

class Histogram {
 public:
  /// Number of power-of-two buckets; bucket k counts samples in
  /// [2^k, 2^(k+1)), bucket 0 also holds values < 1.
  static constexpr std::size_t kBuckets = 24;

  void record(double v) {
    ++count_;
    sum_ += v;
    sumSq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    std::size_t bucket = 0;
    if (v >= 1.0) {
      const auto iv = static_cast<std::uint64_t>(v);
      bucket = static_cast<std::size_t>(std::bit_width(iv) - 1);
      bucket = std::min(bucket, kBuckets - 1);
    }
    ++buckets_[bucket];
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Unbiased sample variance (0 for fewer than 2 samples).
  double variance() const {
    if (count_ < 2) return 0.0;
    const auto n = static_cast<double>(count_);
    const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return std::max(var, 0.0);  // clamp negative rounding artifacts
  }

  std::span<const std::uint64_t> histogram() const { return buckets_; }

  /// Approximate p-quantile (q in [0,1]) from the histogram; used for tail
  /// latency reporting. Returns 0 when empty.
  double approxQuantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (std::size_t k = 0; k < kBuckets; ++k) {
      seen += buckets_[k];
      if (seen > target) {
        // Midpoint of bucket [2^k, 2^(k+1)); bucket 0 spans [0, 2).
        const double lo =
            (k == 0) ? 0.0 : std::ldexp(1.0, static_cast<int>(k));
        const double hi = std::ldexp(1.0, static_cast<int>(k) + 1);
        return (lo + hi) / 2.0;
      }
    }
    return max_;
  }

  /// The complete internal state as a plain value — snapshot save/restore
  /// (min_/max_ keep their infinity sentinels when empty, so a restored
  /// histogram is bit-identical to the original).
  struct RawState {
    std::uint64_t count;
    double sum, sumSq, min, max;
    std::array<std::uint64_t, kBuckets> buckets;
  };
  RawState rawState() const {
    return {count_, sum_, sumSq_, min_, max_, buckets_};
  }
  void setRawState(const RawState& s) {
    count_ = s.count;
    sum_ = s.sum;
    sumSq_ = s.sumSq;
    min_ = s.min;
    max_ = s.max;
    buckets_ = s.buckets;
  }

  void merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t k = 0; k < kBuckets; ++k) buckets_[k] += other.buckets_[k];
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sumSq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace rair::metrics
