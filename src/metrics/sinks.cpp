#include "metrics/sinks.h"

#include <cmath>
#include <cstdio>

namespace rair::metrics {

const char* metricsLevelName(MetricsLevel level) {
  switch (level) {
    case MetricsLevel::Off: return "off";
    case MetricsLevel::Counters: return "counters";
    case MetricsLevel::Summary: return "summary";
    case MetricsLevel::Series: return "series";
  }
  return "unknown";
}

std::optional<MetricsLevel> metricsLevelFromName(std::string_view name) {
  if (name == "off") return MetricsLevel::Off;
  if (name == "counters") return MetricsLevel::Counters;
  if (name == "summary") return MetricsLevel::Summary;
  if (name == "series") return MetricsLevel::Series;
  return std::nullopt;
}

std::string formatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject& JsonObject::add(std::string_view key, std::uint64_t v) {
  return addRaw(key, std::to_string(v));
}

JsonObject& JsonObject::add(std::string_view key, double v) {
  return addRaw(key, formatDouble(v));
}

JsonObject& JsonObject::addString(std::string_view key, std::string_view v) {
  return addRaw(key, "\"" + jsonEscape(v) + "\"");
}

JsonObject& JsonObject::addRaw(std::string_view key, std::string_view json) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += jsonEscape(key);
  body_ += "\":";
  body_ += json;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

namespace {

template <typename T, typename Fmt>
std::string jsonArrayImpl(const std::vector<T>& values, Fmt fmt) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += fmt(values[i]);
  }
  out += ']';
  return out;
}

}  // namespace

std::string jsonArray(const std::vector<std::uint64_t>& values) {
  return jsonArrayImpl(values,
                       [](std::uint64_t v) { return std::to_string(v); });
}

std::string jsonArray(const std::vector<int>& values) {
  return jsonArrayImpl(values, [](int v) { return std::to_string(v); });
}

std::string jsonArray(const std::vector<double>& values) {
  return jsonArrayImpl(values, [](double v) { return formatDouble(v); });
}

std::string csvLine(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out += ',';
    out += cells[i];
  }
  out += '\n';
  return out;
}

bool writeTextFile(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t written = std::fwrite(contents.data(), 1,
                                          contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok && written != contents.size()) std::fclose(f);
  return ok;
}

std::string summaryJson(const MetricsSummary& summary,
                        const MetricsRegistry& registry) {
  JsonObject root;
  root.addString("type", "metrics_summary");
  root.addString("level", metricsLevelName(summary.level));
  root.add("cycles", static_cast<std::uint64_t>(summary.cyclesRun));
  root.add("delivered_packets", summary.deliveredPackets);
  root.add("delivered_flits", summary.deliveredFlits);
  root.addRaw("app_delivered_packets",
              jsonArray(summary.appDeliveredPackets));
  root.addRaw("app_delivered_flits", jsonArray(summary.appDeliveredFlits));
  root.add("va_grants_native", summary.vaGrantsNative);
  root.add("va_grants_foreign", summary.vaGrantsForeign);
  root.add("va_native_share", summary.vaNativeShare());
  root.add("sa_grants_native", summary.saGrantsNative);
  root.add("sa_grants_foreign", summary.saGrantsForeign);
  root.add("sa_native_share", summary.saNativeShare());
  root.add("escape_allocations", summary.escapeAllocations);
  root.add("flits_traversed", summary.flitsTraversed);
  root.add("dpa_flips", summary.dpaFlips);

  std::string metricsArr = "[";
  bool first = true;
  registry.forEach([&](const MetricsRegistry::MetricView& v) {
    if (!first) metricsArr += ',';
    first = false;
    JsonObject m;
    m.addString("name", v.spec->name);
    std::string dims = "[";
    for (std::size_t d = 0; d < v.spec->dims.size(); ++d) {
      if (d) dims += ',';
      dims += "\"";
      dims += dimensionName(v.spec->dims[d]);
      dims += "\"";
    }
    dims += ']';
    m.addRaw("dims", dims);
    m.addRaw("extents", jsonArray(v.spec->extents));
    switch (v.kind) {
      case MetricKind::Counter: {
        m.addString("kind", "counter");
        std::string cells = "[";
        for (std::size_t i = 0; i < v.counters.size(); ++i) {
          if (i) cells += ',';
          cells += std::to_string(v.counters[i]);
        }
        cells += ']';
        m.addRaw("cells", cells);
        break;
      }
      case MetricKind::Gauge: {
        m.addString("kind", "gauge");
        std::string cells = "[";
        for (std::size_t i = 0; i < v.gauges.size(); ++i) {
          if (i) cells += ',';
          cells += formatDouble(v.gauges[i]);
        }
        cells += ']';
        m.addRaw("cells", cells);
        break;
      }
      case MetricKind::Histogram: {
        m.addString("kind", "histogram");
        std::string cells = "[";
        for (std::size_t i = 0; i < v.histograms.size(); ++i) {
          if (i) cells += ',';
          const Histogram& h = v.histograms[i];
          JsonObject digest;
          digest.add("count", h.count());
          digest.add("mean", h.mean());
          digest.add("min", h.min());
          digest.add("max", h.max());
          digest.add("p50", h.approxQuantile(0.50));
          digest.add("p99", h.approxQuantile(0.99));
          cells += digest.str();
        }
        cells += ']';
        m.addRaw("cells", cells);
        break;
      }
    }
    metricsArr += m.str();
  });
  metricsArr += ']';
  root.addRaw("metrics", metricsArr);
  return root.str() + "\n";
}

std::string routerCsv(const MetricsRegistry& registry, int numRouters) {
  // Column layout: every counter metric whose leading dimension is Router
  // contributes one column per trailing-coordinate combination, labelled
  // "<metric>" for scalars-per-router or "<metric>.<c0>[.<c1>...]".
  std::vector<std::string> header = {"router"};
  struct Column {
    std::span<const std::uint64_t> cells;
    std::size_t stride;  ///< cells per router
    std::size_t offset;  ///< within the per-router block
  };
  std::vector<Column> columns;

  registry.forEach([&](const MetricsRegistry::MetricView& v) {
    if (v.kind != MetricKind::Counter) return;
    if (v.spec->dims.empty() || v.spec->dims[0] != Dimension::Router) return;
    if (v.spec->extents[0] != numRouters) return;
    std::size_t stride = 1;
    for (std::size_t d = 1; d < v.spec->extents.size(); ++d)
      stride *= static_cast<std::size_t>(v.spec->extents[d]);
    for (std::size_t c = 0; c < stride; ++c) {
      std::string name = v.spec->name;
      // Decode the trailing coordinates of cell `c` for the column label.
      std::size_t rem = c;
      std::vector<std::size_t> coords(v.spec->extents.size() - 1, 0);
      for (std::size_t d = v.spec->extents.size(); d-- > 1;) {
        const auto extent = static_cast<std::size_t>(v.spec->extents[d]);
        coords[d - 1] = rem % extent;
        rem /= extent;
      }
      for (const std::size_t coord : coords)
        name += "." + std::to_string(coord);
      header.push_back(name);
      columns.push_back(Column{v.counters, stride, c});
    }
  });

  std::string out = csvLine(header);
  for (int r = 0; r < numRouters; ++r) {
    std::vector<std::string> row = {std::to_string(r)};
    for (const Column& col : columns)
      row.push_back(std::to_string(
          col.cells[static_cast<std::size_t>(r) * col.stride + col.offset]));
    out += csvLine(row);
  }
  return out;
}

}  // namespace rair::metrics
