// Dimensional metrics registry: typed counters, gauges and histograms
// keyed by declared dimensions (router, port, VC class, app, region,
// native/foreign, arbitration stage).
//
// Registration happens once, before the simulation runs: each metric
// declares its dimensions and their extents and receives a dense block of
// cells (row-major over the extents) in kind-segregated flat storage. A
// handle is an index; updating a cell is one bounds-checked array access —
// no hashing, no strings, no allocation — so the per-cycle hot path can
// feed the registry without violating the allocation-free guarantee of the
// warm simulation loop.
//
// Sinks iterate the registered metrics generically via forEach(), which is
// how one registry definition fans out to the JSON summary, the JSONL
// series and the CSV matrix without per-sink schema code.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/assert.h"
#include "metrics/histogram.h"

namespace rair::metrics {

/// Axes a metric can be keyed by. Extents are declared per metric (e.g.
/// Router is sized to the mesh, App to the region map).
enum class Dimension : std::uint8_t {
  Router,    ///< node id in the mesh
  Port,      ///< router port (Local/N/E/S/W)
  VcClass,   ///< Escape / Adaptive / Regional / Global
  App,       ///< application id (== region id for mapped apps)
  Region,    ///< region id (alias of App for region-keyed metrics)
  Locality,  ///< 0 = native, 1 = foreign
  ArbStage,  ///< VA_out / SA_in / SA_out
  Interval,  ///< time-series interval index
};

/// Stable lowercase dimension name ("router", "port", ...).
const char* dimensionName(Dimension d);

/// Locality dimension indices (extent 2).
inline constexpr int kLocalityNative = 0;
inline constexpr int kLocalityForeign = 1;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// Declaration of one metric: a name plus parallel dimension/extent lists.
/// An empty dimension list declares a scalar (one cell).
struct MetricSpec {
  std::string name;
  std::vector<Dimension> dims;
  std::vector<int> extents;  ///< same length as dims; each >= 1
};

/// Opaque dense handles; value types, cheap to copy. Default-constructed
/// handles are invalid (RAIR_CHECKed on use).
struct CounterHandle {
  std::uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
};
struct GaugeHandle {
  std::uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
};
struct HistogramHandle {
  std::uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
};

class MetricsRegistry {
 public:
  // --- Registration (setup phase; allocates) -----------------------------
  CounterHandle addCounter(MetricSpec spec);
  GaugeHandle addGauge(MetricSpec spec);
  HistogramHandle addHistogram(MetricSpec spec);

  // --- Cell access (hot path; allocation-free) ---------------------------
  std::uint64_t& counterCell(CounterHandle h, std::size_t flat);
  std::uint64_t counterCell(CounterHandle h, std::size_t flat) const;
  double& gaugeCell(GaugeHandle h, std::size_t flat);
  double gaugeCell(GaugeHandle h, std::size_t flat) const;
  Histogram& histogramCell(HistogramHandle h, std::size_t flat);
  const Histogram& histogramCell(HistogramHandle h, std::size_t flat) const;

  void incCounter(CounterHandle h, std::size_t flat, std::uint64_t by = 1) {
    counterCell(h, flat) += by;
  }

  /// Row-major flat index from per-dimension coordinates; must supply
  /// exactly one coordinate per declared dimension.
  std::size_t flatIndex(CounterHandle h,
                        std::initializer_list<int> coords) const {
    return flatIndexImpl(metricOf(MetricKind::Counter, h.id), coords);
  }
  std::size_t flatIndex(GaugeHandle h,
                        std::initializer_list<int> coords) const {
    return flatIndexImpl(metricOf(MetricKind::Gauge, h.id), coords);
  }
  std::size_t flatIndex(HistogramHandle h,
                        std::initializer_list<int> coords) const {
    return flatIndexImpl(metricOf(MetricKind::Histogram, h.id), coords);
  }

  // --- Aggregation and iteration (sink side) -----------------------------
  /// Number of cells of the metric behind a handle.
  std::size_t cells(CounterHandle h) const {
    return metricOf(MetricKind::Counter, h.id).cells;
  }
  std::size_t cells(GaugeHandle h) const {
    return metricOf(MetricKind::Gauge, h.id).cells;
  }
  std::size_t cells(HistogramHandle h) const {
    return metricOf(MetricKind::Histogram, h.id).cells;
  }

  /// Sum over all cells of a counter.
  std::uint64_t counterTotal(CounterHandle h) const;

  /// Read-only span over a counter's cells (row-major).
  std::span<const std::uint64_t> counterCells(CounterHandle h) const;
  std::span<const double> gaugeCells(GaugeHandle h) const;
  std::span<const Histogram> histogramCells(HistogramHandle h) const;

  /// One registered metric as seen by a sink: the spec plus a read-only
  /// view of its cells (exactly one of the spans is non-empty).
  struct MetricView {
    const MetricSpec* spec = nullptr;
    MetricKind kind = MetricKind::Counter;
    std::span<const std::uint64_t> counters;
    std::span<const double> gauges;
    std::span<const Histogram> histograms;
  };

  /// Visits every registered metric in registration order.
  void forEach(const std::function<void(const MetricView&)>& fn) const;

  std::size_t numMetrics() const { return metrics_.size(); }

 private:
  struct Metric {
    MetricSpec spec;
    MetricKind kind;
    std::size_t offset = 0;  ///< into the kind's flat storage
    std::size_t cells = 1;
    std::uint32_t kindIndex = 0;  ///< ordinal among metrics of this kind
  };

  const Metric& metricOf(MetricKind kind, std::uint32_t id) const;
  std::size_t flatIndexImpl(const Metric& m,
                            std::initializer_list<int> coords) const;
  Metric& registerMetric(MetricSpec spec, MetricKind kind);

  std::vector<Metric> metrics_;
  // Kind-indexed lookup: handle id -> metrics_ index.
  std::vector<std::uint32_t> counterIds_, gaugeIds_, histogramIds_;
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<Histogram> histograms_;
};

}  // namespace rair::metrics
