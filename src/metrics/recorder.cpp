#include "metrics/recorder.h"

#include <algorithm>
#include <array>

#include "core/dpa.h"
#include "metrics/sinks.h"

namespace rair::metrics {

namespace {

Cycle resolveInterval(const MetricsOptions& opts, Cycle horizonCycles) {
  if (opts.sampleInterval != 0) return opts.sampleInterval;
  return std::max<Cycle>(100, horizonCycles / 50);
}

/// App-dimension slot of a packet: declared apps map to their id, every
/// other tag (kNoApp, adversarial extras) shares the overflow slot so the
/// registry totals stay an exact census.
int appSlot(AppId app, int numApps) {
  return (app >= 0 && app < numApps) ? app : numApps;
}

}  // namespace

MetricsRecorder::MetricsRecorder(const Network& net, const RegionMap& regions,
                                 const MetricsOptions& opts, int numApps,
                                 Cycle horizonCycles)
    : net_(&net),
      regions_(&regions),
      opts_(opts),
      numApps_(numApps),
      numRegions_(regions.numApps()),
      interval_(resolveInterval(opts, horizonCycles)),
      lastLinkFlits_(kNumPorts, 0),
      nextSample_(interval_),
      series_(interval_) {
  RAIR_CHECK_MSG(opts.level != MetricsLevel::Off,
                 "MetricsRecorder constructed at level off");
  const int numRouters = net.mesh().numNodes();
  const int appExtent = numApps_ + 1;  // + overflow slot
  deliveredPacketsH_ = registry_.addCounter(
      {"delivered_packets", {Dimension::App}, {appExtent}});
  deliveredFlitsH_ = registry_.addCounter(
      {"delivered_flits", {Dimension::App}, {appExtent}});
  packetLatencyH_ = registry_.addHistogram(
      {"packet_latency", {Dimension::App}, {appExtent}});
  vaGrantsH_ = registry_.addCounter(
      {"va_grants", {Dimension::Router, Dimension::Locality},
       {numRouters, 2}});
  saGrantsH_ = registry_.addCounter(
      {"sa_grants", {Dimension::Router, Dimension::Locality},
       {numRouters, 2}});
  escapeAllocationsH_ = registry_.addCounter(
      {"escape_allocations", {Dimension::Router}, {numRouters}});
  linkFlitsH_ = registry_.addCounter(
      {"link_flits", {Dimension::Router, Dimension::Port},
       {numRouters, kNumPorts}});
  dpaFlipsH_ = registry_.addCounter(
      {"dpa_flips", {Dimension::Router}, {numRouters}});
}

void MetricsRecorder::onDelivery(const Packet& p) {
  const auto slot =
      static_cast<std::size_t>(appSlot(p.app, numApps_));
  registry_.incCounter(deliveredPacketsH_, slot);
  registry_.incCounter(deliveredFlitsH_, slot, p.numFlits);
  registry_.histogramCell(packetLatencyH_, slot)
      .record(static_cast<double>(p.totalLatency()));
  if (opts_.level >= MetricsLevel::Series) series_.recordDelivery(p);
}

void MetricsRecorder::onCycleEnd(Cycle now) {
  if (opts_.level < MetricsLevel::Series) return;
  if (now < nextSample_) return;
  takeSample(now);
  nextSample_ += interval_;
}

void MetricsRecorder::takeSample(Cycle now) {
  Sample s;
  s.cycle = now;
  s.dpaNativeHigh.assign(static_cast<std::size_t>(numRegions_), 0);
  s.linkFlits.assign(kNumPorts, 0);
  const int numRouters = net_->mesh().numNodes();
  std::array<std::uint64_t, kNumPorts> cumulative{};
  for (NodeId n = 0; n < numRouters; ++n) {
    const Router& r = net_->router(n);
    const AppId tag = r.appTag();
    if (tag >= 0 && tag < numRegions_) {
      const auto* dpa = dynamic_cast<const DpaState*>(r.policyState());
      if (dpa != nullptr && dpa->nativeHigh())
        ++s.dpaNativeHigh[static_cast<std::size_t>(tag)];
    }
    for (int p = 0; p < kNumPorts; ++p)
      cumulative[static_cast<std::size_t>(p)] +=
          r.counters().portFlits[static_cast<std::size_t>(p)];
  }
  for (int p = 0; p < kNumPorts; ++p) {
    const auto port = static_cast<std::size_t>(p);
    s.linkFlits[port] = cumulative[port] - lastLinkFlits_[port];
    lastLinkFlits_[port] = cumulative[port];
  }
  samples_.push_back(std::move(s));
}

void MetricsRecorder::finalize(Cycle cyclesRun) {
  RAIR_CHECK_MSG(!finalized_, "MetricsRecorder::finalize called twice");
  finalized_ = true;

  if (opts_.level >= MetricsLevel::Series &&
      (samples_.empty() || samples_.back().cycle < cyclesRun))
    takeSample(cyclesRun);  // trailing partial interval

  // Pull the per-router hardware counters into the registry (Summary data,
  // but cheap enough to always materialize — the summary totals read them).
  const int numRouters = net_->mesh().numNodes();
  for (NodeId n = 0; n < numRouters; ++n) {
    const Router& r = net_->router(n);
    const RouterCounters& c = r.counters();
    registry_.counterCell(
        vaGrantsH_,
        registry_.flatIndex(vaGrantsH_, {n, kLocalityNative})) =
        c.vaGrantsNative;
    registry_.counterCell(
        vaGrantsH_,
        registry_.flatIndex(vaGrantsH_, {n, kLocalityForeign})) =
        c.vaGrantsForeign;
    registry_.counterCell(
        saGrantsH_,
        registry_.flatIndex(saGrantsH_, {n, kLocalityNative})) =
        c.saGrantsNative;
    registry_.counterCell(
        saGrantsH_,
        registry_.flatIndex(saGrantsH_, {n, kLocalityForeign})) =
        c.saGrantsForeign;
    registry_.counterCell(escapeAllocationsH_, static_cast<std::size_t>(n)) =
        c.escapeAllocations;
    for (int p = 0; p < kNumPorts; ++p)
      registry_.counterCell(linkFlitsH_,
                            registry_.flatIndex(linkFlitsH_, {n, p})) =
          c.portFlits[static_cast<std::size_t>(p)];
    if (const auto* dpa = dynamic_cast<const DpaState*>(r.policyState()))
      registry_.counterCell(dpaFlipsH_, static_cast<std::size_t>(n)) =
          dpa->flips();
  }

  summary_ = MetricsSummary{};
  summary_.level = opts_.level;
  summary_.cyclesRun = cyclesRun;
  for (NodeId n = 0; n < numRouters; ++n) {
    const RouterCounters& c = net_->router(n).counters();
    summary_.vaGrantsNative += c.vaGrantsNative;
    summary_.vaGrantsForeign += c.vaGrantsForeign;
    summary_.saGrantsNative += c.saGrantsNative;
    summary_.saGrantsForeign += c.saGrantsForeign;
    summary_.escapeAllocations += c.escapeAllocations;
    summary_.flitsTraversed += c.flitsTraversed;
  }
  summary_.dpaFlips = registry_.counterTotal(dpaFlipsH_);
  summary_.deliveredPackets = registry_.counterTotal(deliveredPacketsH_);
  summary_.deliveredFlits = registry_.counterTotal(deliveredFlitsH_);
  const auto pkts = registry_.counterCells(deliveredPacketsH_);
  const auto flits = registry_.counterCells(deliveredFlitsH_);
  summary_.appDeliveredPackets.assign(pkts.begin(), pkts.end());
  summary_.appDeliveredFlits.assign(flits.begin(), flits.end());
}

bool MetricsRecorder::writeSinks() const {
  RAIR_CHECK_MSG(finalized_, "writeSinks before finalize");
  if (opts_.outPrefix.empty() || opts_.level < MetricsLevel::Summary)
    return true;
  bool ok = writeTextFile(opts_.outPrefix + "summary.json",
                          summaryJson(summary_, registry_));
  ok = writeTextFile(opts_.outPrefix + "counters.csv",
                     routerCsv(registry_, net_->mesh().numNodes())) &&
       ok;
  if (opts_.level < MetricsLevel::Series) return ok;

  // JSONL series: one row per sampling interval. Row i merges the
  // TimeSeries window [i*I, (i+1)*I) with the DPA/link sample taken at the
  // end of that interval (the trailing partial interval reuses the final
  // sample).
  const auto& intervals = series_.intervals();
  const std::size_t rows = std::max(intervals.size(), samples_.size());
  std::string out;
  for (std::size_t i = 0; i < rows; ++i) {
    JsonObject row;
    row.addString("type", "interval");
    const Sample* s =
        samples_.empty()
            ? nullptr
            : &samples_[std::min(i, samples_.size() - 1)];
    row.add("cycle", s != nullptr
                         ? static_cast<std::uint64_t>(s->cycle)
                         : static_cast<std::uint64_t>((i + 1) * interval_));
    if (i < intervals.size()) {
      const IntervalStats& iv = intervals[i];
      row.add("packets", iv.packets);
      row.add("flits", iv.flits);
      row.add("mean_latency", iv.meanLatency());
    } else {
      row.add("packets", std::uint64_t{0});
      row.add("flits", std::uint64_t{0});
      row.add("mean_latency", 0.0);
    }
    if (s != nullptr) {
      row.addRaw("dpa_native_high", jsonArray(s->dpaNativeHigh));
      row.addRaw("link_flits", jsonArray(s->linkFlits));
    }
    out += row.str();
    out += '\n';
  }
  return writeTextFile(opts_.outPrefix + "series.jsonl", out) && ok;
}

std::size_t MetricsRecorder::debugCorruptCounter(std::uint64_t pick) {
  const std::size_t cell =
      static_cast<std::size_t>(pick % registry_.cells(deliveredPacketsH_));
  ++registry_.counterCell(deliveredPacketsH_, cell);
  return cell;
}

}  // namespace rair::metrics
