// Shared vocabulary of the metrics subsystem: collection levels, run
// options, and the plain aggregate summary every instrumented run yields.
//
// The types here are deliberately free of simulator dependencies so that
// lower layers (stats reporting, campaign records, CLI flag parsing) can
// consume metrics results without linking the recorder.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace rair::metrics {

/// How much instrumentation a run collects. Levels are cumulative: each
/// includes everything below it.
enum class MetricsLevel : std::uint8_t {
  Off,       ///< no recorder attached at all
  Counters,  ///< cheap cumulative counters only (the default)
  Summary,   ///< + per-router matrices, latency histograms exported to sinks
  Series,    ///< + interval time series (DPA priority, link utilization, APL)
};

/// Stable lowercase name ("off" / "counters" / "summary" / "series");
/// used by --metrics CLI flags and sink files.
const char* metricsLevelName(MetricsLevel level);

/// Inverse of metricsLevelName; nullopt for unknown names.
std::optional<MetricsLevel> metricsLevelFromName(std::string_view name);

/// Per-run metrics configuration, carried by ScenarioSpec.
struct MetricsOptions {
  MetricsLevel level = MetricsLevel::Counters;
  /// Width of one time-series interval in cycles (Series level). 0 = auto:
  /// 1/50th of the warmup+measurement horizon, at least 100 cycles.
  Cycle sampleInterval = 0;
  /// Path prefix for file sinks ("out/fig11."). Empty disables file
  /// output; the in-memory summary is produced either way.
  std::string outPrefix;

  bool enabled() const { return level != MetricsLevel::Off; }

  static MetricsOptions off() {
    MetricsOptions o;
    o.level = MetricsLevel::Off;
    return o;
  }
};

/// Aggregated counter totals of one instrumented run — the cross-layer
/// currency: surfaced by stats::renderMetricsSummary, embedded in campaign
/// records at Summary level and above, and cross-validated by the
/// simulation oracle against its own delivery census.
struct MetricsSummary {
  MetricsLevel level = MetricsLevel::Counters;
  Cycle cyclesRun = 0;

  // Arbitration outcomes summed over all routers (RouterCounters totals).
  std::uint64_t vaGrantsNative = 0;
  std::uint64_t vaGrantsForeign = 0;
  std::uint64_t saGrantsNative = 0;
  std::uint64_t saGrantsForeign = 0;
  std::uint64_t escapeAllocations = 0;
  std::uint64_t flitsTraversed = 0;

  /// DPA hysteresis transitions summed over all routers (Fig. 11/13's
  /// priority flips).
  std::uint64_t dpaFlips = 0;

  // Delivery census maintained by the recorder itself (not copied from the
  // simulator), per application and total.
  std::uint64_t deliveredPackets = 0;
  std::uint64_t deliveredFlits = 0;
  std::vector<std::uint64_t> appDeliveredPackets;
  std::vector<std::uint64_t> appDeliveredFlits;

  /// Fraction of VA_out grants won by native traffic (0 when no grants).
  double vaNativeShare() const {
    const std::uint64_t total = vaGrantsNative + vaGrantsForeign;
    return total ? static_cast<double>(vaGrantsNative) /
                       static_cast<double>(total)
                 : 0.0;
  }
  /// Fraction of switch traversals by native flits (0 when none).
  double saNativeShare() const {
    const std::uint64_t total = saGrantsNative + saGrantsForeign;
    return total ? static_cast<double>(saGrantsNative) /
                       static_cast<double>(total)
                 : 0.0;
  }
};

}  // namespace rair::metrics
