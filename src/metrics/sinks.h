// Pluggable output sinks of the metrics subsystem.
//
// All sinks are deterministic: object keys are emitted in a fixed order
// and doubles are formatted with %.17g, so the same run always produces
// byte-identical files (the same property the campaign store guarantees
// for its records). Three formats cover the consumers we have:
//
//   * JSON summary   — one object per run; totals, shares, histogram tails
//   * JSONL series   — one object per sampling interval (Fig. 11/13-style
//                      DPA priority traces, per-link utilization, APL)
//   * CSV matrix     — one row per router; the per-link utilization and
//                      per-router arbitration matrix figure scripts consume
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/metrics.h"
#include "metrics/registry.h"

namespace rair::metrics {

/// Deterministic round-trippable double formatting (%.17g). Non-finite
/// values serialize as 0 (sinks never emit bare inf/nan tokens).
std::string formatDouble(double v);

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
std::string jsonEscape(std::string_view s);

/// Minimal ordered JSON object assembler for the sink writers: keys keep
/// call order, values are pre-serialized fragments or typed scalars.
class JsonObject {
 public:
  JsonObject& add(std::string_view key, std::uint64_t v);
  JsonObject& add(std::string_view key, double v);
  JsonObject& addString(std::string_view key, std::string_view v);
  /// Adds an already-serialized JSON fragment (array or object) verbatim.
  JsonObject& addRaw(std::string_view key, std::string_view json);
  std::string str() const;

 private:
  std::string body_;
};

/// Serializes a span-like list of integers as a JSON array.
std::string jsonArray(const std::vector<std::uint64_t>& values);
std::string jsonArray(const std::vector<int>& values);
std::string jsonArray(const std::vector<double>& values);

/// One CSV line from cells (no quoting; metric names and coordinates never
/// contain commas).
std::string csvLine(const std::vector<std::string>& cells);

/// Writes `contents` to `path`, replacing any existing file. Returns false
/// (and leaves no partial file behind as far as the OS allows) on failure.
bool writeTextFile(const std::string& path, std::string_view contents);

/// The per-run JSON summary sink: the aggregate totals plus one entry per
/// registered metric (counters as cell arrays, histograms as
/// count/mean/p50/p99 digests).
std::string summaryJson(const MetricsSummary& summary,
                        const MetricsRegistry& registry);

/// The CSV matrix sink: emits every counter metric whose first dimension
/// is Router as columns of a router-indexed table. The first columns are
/// "router" plus one per remaining coordinate combination, named
/// "<metric>[.<coord>...]".
std::string routerCsv(const MetricsRegistry& registry, int numRouters);

}  // namespace rair::metrics
