// MetricsRecorder: the bridge between the simulation loop and the
// dimensional metrics registry.
//
// The recorder is a pure SimObserver — it never mutates simulation state,
// so an instrumented run is bit-identical to an uninstrumented one. Costs
// scale with the configured level:
//
//   Counters  per-delivery counter increments and a latency histogram
//             record; onCycleEnd returns immediately. All cells are
//             preallocated at registration, so the warm path stays
//             allocation-free.
//   Summary   same collection; finalize() additionally snapshots the
//             per-router arbitration counters (RouterCounters), per-link
//             flit matrices and DPA flip counts into the registry — a pull
//             model with zero per-cycle cost.
//   Series    + interval sampling in onCycleEnd: per-region DPA priority
//             state (Fig. 11/13-style traces), per-direction link-flit
//             deltas, and the per-interval APL/throughput series
//             (re-expressing TimeSeries on the subsystem).
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/metrics.h"
#include "metrics/registry.h"
#include "sim/simulator.h"
#include "stats/timeseries.h"

namespace rair::metrics {

class MetricsRecorder final : public SimObserver {
 public:
  /// @param horizonCycles warmup+measurement horizon, used to derive the
  ///        automatic sampling interval (1/50th, at least 100 cycles).
  /// @param numApps size of the App dimension; AppIds outside
  ///        [0, numApps) (e.g. the adversarial flooder) land in one extra
  ///        overflow slot so registry totals always equal true totals.
  MetricsRecorder(const Network& net, const RegionMap& regions,
                  const MetricsOptions& opts, int numApps,
                  Cycle horizonCycles);

  // SimObserver:
  void onCycleEnd(Cycle now) override;
  void onDelivery(const Packet& p) override;

  /// Closes collection: snapshots per-router counters and DPA state into
  /// the registry and computes the aggregate summary. Call exactly once,
  /// after the run loop finished.
  void finalize(Cycle cyclesRun);

  /// Writes the configured file sinks (requires finalize(); no-op when
  /// outPrefix is empty or level < Summary). Returns false if any file
  /// could not be written.
  bool writeSinks() const;

  /// Aggregates (valid after finalize()).
  const MetricsSummary& summary() const { return summary_; }

  /// Live delivery census from the registry — what the simulation oracle
  /// cross-validates against its own counts.
  std::uint64_t deliveredPackets() const {
    return registry_.counterTotal(deliveredPacketsH_);
  }
  std::uint64_t deliveredFlits() const {
    return registry_.counterTotal(deliveredFlitsH_);
  }

  const MetricsRegistry& registry() const { return registry_; }
  const MetricsOptions& options() const { return opts_; }
  const TimeSeries& series() const { return series_; }
  Cycle sampleInterval() const { return interval_; }

  /// Fault-injection hook for the fuzz harness: adds one to an arbitrary
  /// delivered-packets cell (chosen by `pick`), silently corrupting the
  /// census the oracle cross-validates. Returns the corrupted flat cell.
  std::size_t debugCorruptCounter(std::uint64_t pick);

 private:
  void takeSample(Cycle now);

  const Network* net_;
  const RegionMap* regions_;
  MetricsOptions opts_;
  int numApps_;     ///< declared apps; the App dimension has one extra slot
  int numRegions_;  ///< regions with DPA-trackable routers
  Cycle interval_;  ///< resolved sampling interval (Series level)

  MetricsRegistry registry_;
  CounterHandle deliveredPacketsH_;  ///< {App+1}
  CounterHandle deliveredFlitsH_;    ///< {App+1}
  HistogramHandle packetLatencyH_;   ///< {App+1}
  CounterHandle vaGrantsH_;          ///< {Router, Locality}
  CounterHandle saGrantsH_;          ///< {Router, Locality}
  CounterHandle escapeAllocationsH_; ///< {Router}
  CounterHandle linkFlitsH_;         ///< {Router, Port}
  CounterHandle dpaFlipsH_;          ///< {Router}

  /// One Series-level sample, taken at the END of its interval.
  struct Sample {
    Cycle cycle = 0;
    std::vector<int> dpaNativeHigh;        ///< per region: routers native-high
    std::vector<std::uint64_t> linkFlits;  ///< per direction: traversal delta
  };
  std::vector<Sample> samples_;
  std::vector<std::uint64_t> lastLinkFlits_;  ///< per direction, cumulative
  Cycle nextSample_;

  TimeSeries series_;  ///< per-interval packets/flits/latency (Series)

  MetricsSummary summary_;
  bool finalized_ = false;
};

}  // namespace rair::metrics
