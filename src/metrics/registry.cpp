#include "metrics/registry.h"

#include <numeric>
#include <utility>

namespace rair::metrics {

const char* dimensionName(Dimension d) {
  switch (d) {
    case Dimension::Router: return "router";
    case Dimension::Port: return "port";
    case Dimension::VcClass: return "vc_class";
    case Dimension::App: return "app";
    case Dimension::Region: return "region";
    case Dimension::Locality: return "locality";
    case Dimension::ArbStage: return "arb_stage";
    case Dimension::Interval: return "interval";
  }
  return "unknown";
}

MetricsRegistry::Metric& MetricsRegistry::registerMetric(MetricSpec spec,
                                                         MetricKind kind) {
  RAIR_CHECK_MSG(spec.dims.size() == spec.extents.size(),
                 "metric dims/extents length mismatch");
  for (const auto& m : metrics_)
    RAIR_CHECK_MSG(m.spec.name != spec.name, "duplicate metric name");
  std::size_t cells = 1;
  for (const int e : spec.extents) {
    RAIR_CHECK_MSG(e >= 1, "metric extent must be >= 1");
    cells *= static_cast<std::size_t>(e);
  }
  Metric m;
  m.spec = std::move(spec);
  m.kind = kind;
  m.cells = cells;
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

CounterHandle MetricsRegistry::addCounter(MetricSpec spec) {
  Metric& m = registerMetric(std::move(spec), MetricKind::Counter);
  m.offset = counters_.size();
  m.kindIndex = static_cast<std::uint32_t>(counterIds_.size());
  counters_.resize(counters_.size() + m.cells, 0);
  counterIds_.push_back(static_cast<std::uint32_t>(metrics_.size() - 1));
  return CounterHandle{m.kindIndex};
}

GaugeHandle MetricsRegistry::addGauge(MetricSpec spec) {
  Metric& m = registerMetric(std::move(spec), MetricKind::Gauge);
  m.offset = gauges_.size();
  m.kindIndex = static_cast<std::uint32_t>(gaugeIds_.size());
  gauges_.resize(gauges_.size() + m.cells, 0.0);
  gaugeIds_.push_back(static_cast<std::uint32_t>(metrics_.size() - 1));
  return GaugeHandle{m.kindIndex};
}

HistogramHandle MetricsRegistry::addHistogram(MetricSpec spec) {
  Metric& m = registerMetric(std::move(spec), MetricKind::Histogram);
  m.offset = histograms_.size();
  m.kindIndex = static_cast<std::uint32_t>(histogramIds_.size());
  histograms_.resize(histograms_.size() + m.cells);
  histogramIds_.push_back(static_cast<std::uint32_t>(metrics_.size() - 1));
  return HistogramHandle{m.kindIndex};
}

const MetricsRegistry::Metric& MetricsRegistry::metricOf(
    MetricKind kind, std::uint32_t id) const {
  const std::vector<std::uint32_t>* ids = nullptr;
  switch (kind) {
    case MetricKind::Counter: ids = &counterIds_; break;
    case MetricKind::Gauge: ids = &gaugeIds_; break;
    case MetricKind::Histogram: ids = &histogramIds_; break;
  }
  RAIR_CHECK_MSG(id < ids->size(), "invalid metric handle");
  return metrics_[(*ids)[id]];
}

std::size_t MetricsRegistry::flatIndexImpl(
    const Metric& m, std::initializer_list<int> coords) const {
  RAIR_CHECK_MSG(coords.size() == m.spec.dims.size(),
                 "coordinate count does not match metric dimensions");
  std::size_t flat = 0;
  std::size_t d = 0;
  for (const int c : coords) {
    const int extent = m.spec.extents[d];
    RAIR_CHECK_MSG(c >= 0 && c < extent, "metric coordinate out of range");
    flat = flat * static_cast<std::size_t>(extent) +
           static_cast<std::size_t>(c);
    ++d;
  }
  return flat;
}

std::uint64_t& MetricsRegistry::counterCell(CounterHandle h,
                                            std::size_t flat) {
  const Metric& m = metricOf(MetricKind::Counter, h.id);
  RAIR_DCHECK(flat < m.cells);
  return counters_[m.offset + flat];
}

std::uint64_t MetricsRegistry::counterCell(CounterHandle h,
                                           std::size_t flat) const {
  const Metric& m = metricOf(MetricKind::Counter, h.id);
  RAIR_DCHECK(flat < m.cells);
  return counters_[m.offset + flat];
}

double& MetricsRegistry::gaugeCell(GaugeHandle h, std::size_t flat) {
  const Metric& m = metricOf(MetricKind::Gauge, h.id);
  RAIR_DCHECK(flat < m.cells);
  return gauges_[m.offset + flat];
}

double MetricsRegistry::gaugeCell(GaugeHandle h, std::size_t flat) const {
  const Metric& m = metricOf(MetricKind::Gauge, h.id);
  RAIR_DCHECK(flat < m.cells);
  return gauges_[m.offset + flat];
}

Histogram& MetricsRegistry::histogramCell(HistogramHandle h,
                                          std::size_t flat) {
  const Metric& m = metricOf(MetricKind::Histogram, h.id);
  RAIR_DCHECK(flat < m.cells);
  return histograms_[m.offset + flat];
}

const Histogram& MetricsRegistry::histogramCell(HistogramHandle h,
                                                std::size_t flat) const {
  const Metric& m = metricOf(MetricKind::Histogram, h.id);
  RAIR_DCHECK(flat < m.cells);
  return histograms_[m.offset + flat];
}

std::uint64_t MetricsRegistry::counterTotal(CounterHandle h) const {
  const auto span = counterCells(h);
  return std::accumulate(span.begin(), span.end(), std::uint64_t{0});
}

std::span<const std::uint64_t> MetricsRegistry::counterCells(
    CounterHandle h) const {
  const Metric& m = metricOf(MetricKind::Counter, h.id);
  return {counters_.data() + m.offset, m.cells};
}

std::span<const double> MetricsRegistry::gaugeCells(GaugeHandle h) const {
  const Metric& m = metricOf(MetricKind::Gauge, h.id);
  return {gauges_.data() + m.offset, m.cells};
}

std::span<const Histogram> MetricsRegistry::histogramCells(
    HistogramHandle h) const {
  const Metric& m = metricOf(MetricKind::Histogram, h.id);
  return {histograms_.data() + m.offset, m.cells};
}

void MetricsRegistry::forEach(
    const std::function<void(const MetricView&)>& fn) const {
  for (const Metric& m : metrics_) {
    MetricView v;
    v.spec = &m.spec;
    v.kind = m.kind;
    switch (m.kind) {
      case MetricKind::Counter:
        v.counters = {counters_.data() + m.offset, m.cells};
        break;
      case MetricKind::Gauge:
        v.gauges = {gauges_.data() + m.offset, m.cells};
        break;
      case MetricKind::Histogram:
        v.histograms = {histograms_.data() + m.offset, m.cells};
        break;
    }
    fn(v);
  }
}

}  // namespace rair::metrics
