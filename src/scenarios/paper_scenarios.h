// The exact workload setups of the paper's evaluation section, expressed
// as AppTrafficSpec lists. Loads are given in absolute flits/cycle/node;
// benches resolve the paper's "x% of saturation load" via
// sim/saturation.h and pass the resolved rates here.
#pragma once

#include <span>
#include <vector>

#include "sim/saturation.h"
#include "traffic/generator.h"

namespace rair::scenarios {

/// Load fraction standing in for the paper's "90% of saturation load".
///
/// Saturation here is the knee of the latency-load curve (APL = 4x
/// zero-load, see sim/saturation.h). On this substrate (5-flit VCs, 4-5
/// VCs/class) offered load at 0.90 of that knee is already past the
/// open-loop stability edge: source queues grow without bound and APL
/// diverges with simulation length, which the paper's setup evidently
/// avoided (its Fig. 9 high-load APLs are a stable 1.4-2x zero-load).
/// 0.85 of our knee reproduces exactly that operating point, so all
/// "90%" loads in the paper map to this fraction. Low/medium fractions
/// (10-30%) are far from the knee and are used as printed.
inline constexpr double kHighLoadFraction = 0.85;

/// The paper's "10% of saturation" low-load operating point.
inline constexpr double kLowLoadFraction = 0.10;

/// Fig. 8 (evaluated in Figs. 9 and 10): two applications on the mesh
/// halves. App 0 runs low-load uniform traffic of which fraction `p` is
/// inter-region (uniform over the other half); App 1 is high-load and
/// purely intra-regional, so the only cross-application contention is
/// App 0's inter-region traffic inside App 1's region.
std::vector<AppTrafficSpec> twoAppInterRegion(double p, double app0Rate,
                                              double app1Rate);

/// Fig. 11(a): four quadrant applications; Apps 0-2 low load with 30% of
/// their traffic inter-region and directed *at App 3's region*; App 3
/// high load, all intra-regional.
std::vector<AppTrafficSpec> fourAppLowTowardHigh(double lowRate,
                                                 double highRate);

/// Fig. 11(b): Apps 0-2 low load and purely intra-regional; App 3 high
/// load with 30% of its traffic inter-region, uniformly toward the other
/// applications.
std::vector<AppTrafficSpec> fourAppHighTowardLow(double lowRate,
                                                 double highRate);

/// Fig. 13 (evaluated in Figs. 14 and 15): six applications with
/// differentiated loads; every application generates 75% intra-region
/// uniform random traffic, 20% inter-region global traffic following
/// `globalPattern`, and 5% traffic to/from the four corner memory
/// controllers. `rates` holds the resolved per-app injection rates
/// (paper: apps 1 and 5 at 90% of saturation, the rest at 10-30%).
std::vector<AppTrafficSpec> sixAppMixed(PatternKind globalPattern,
                                        std::span<const double> rates);

/// The paper's load levels for the six-app scenario, as fractions of each
/// app's saturation load: apps 0,2,3,4 low-to-medium, apps 1,5 high.
std::span<const double> sixAppLoadFractions();

/// Resolves "fraction-of-saturation" loads for a multi-application
/// workload (the paper specifies every load this way, Sec. V).
///
/// Every application's saturation is measured on its *own traffic shape*
/// (intra/inter/MC mix — the mix moves the knee). Low-load apps
/// (fraction < 0.5) use their solo saturation directly: they are far from
/// the knee and other apps barely shift it. High-load apps are then
/// calibrated *in context*: with the low apps running at their resolved
/// rates, all high apps are scaled together (preserving their relative
/// solo saturations) until the high apps' mean APL hits the knee — this
/// is the saturation point that matters when several heavy applications
/// share chip resources (MC corners, inter-region channels), where the
/// sum of solo saturations would overload the network.
///
/// @param shapes    one spec per app; injectionRate fields are ignored
/// @param fractions target fraction of saturation per app
/// @return resolved injection rates (flits/cycle/node) per app
std::vector<double> calibrateLoads(const Mesh& mesh, const RegionMap& regions,
                                   std::vector<AppTrafficSpec> shapes,
                                   std::span<const double> fractions,
                                   const SaturationOptions& opts = {});

}  // namespace rair::scenarios
