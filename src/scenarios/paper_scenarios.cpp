#include "scenarios/paper_scenarios.h"

#include <array>
#include <limits>

#include "common/assert.h"

namespace rair::scenarios {

std::vector<AppTrafficSpec> twoAppInterRegion(double p, double app0Rate,
                                              double app1Rate) {
  RAIR_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<AppTrafficSpec> apps(2);
  apps[0].app = 0;
  apps[0].injectionRate = app0Rate;
  apps[0].intraFraction = 1.0 - p;
  apps[0].interFraction = p;
  // Inter-region component goes uniformly into App 1's half.
  apps[0].interTargetApp = 1;

  apps[1].app = 1;
  apps[1].injectionRate = app1Rate;
  apps[1].intraFraction = 1.0;
  return apps;
}

std::vector<AppTrafficSpec> fourAppLowTowardHigh(double lowRate,
                                                 double highRate) {
  std::vector<AppTrafficSpec> apps(4);
  for (AppId a = 0; a < 3; ++a) {
    apps[static_cast<size_t>(a)].app = a;
    apps[static_cast<size_t>(a)].injectionRate = lowRate;
    apps[static_cast<size_t>(a)].intraFraction = 0.7;
    apps[static_cast<size_t>(a)].interFraction = 0.3;
    apps[static_cast<size_t>(a)].interTargetApp = 3;
  }
  apps[3].app = 3;
  apps[3].injectionRate = highRate;
  apps[3].intraFraction = 1.0;
  return apps;
}

std::vector<AppTrafficSpec> fourAppHighTowardLow(double lowRate,
                                                 double highRate) {
  std::vector<AppTrafficSpec> apps(4);
  for (AppId a = 0; a < 3; ++a) {
    apps[static_cast<size_t>(a)].app = a;
    apps[static_cast<size_t>(a)].injectionRate = lowRate;
    apps[static_cast<size_t>(a)].intraFraction = 1.0;
  }
  apps[3].app = 3;
  apps[3].injectionRate = highRate;
  apps[3].intraFraction = 0.7;
  apps[3].interFraction = 0.3;
  // "randomly towards other applications": chip-wide uniform random; the
  // generator redraws so destinations land outside App 3's own region.
  apps[3].interPattern = PatternKind::UniformRandom;
  return apps;
}

std::vector<AppTrafficSpec> sixAppMixed(PatternKind globalPattern,
                                        std::span<const double> rates) {
  RAIR_CHECK(rates.size() == 6);
  std::vector<AppTrafficSpec> apps(6);
  for (AppId a = 0; a < 6; ++a) {
    auto& s = apps[static_cast<size_t>(a)];
    s.app = a;
    s.injectionRate = rates[static_cast<size_t>(a)];
    s.intraFraction = 0.75;
    s.interFraction = 0.20;
    s.mcFraction = 0.05;
    s.interPattern = globalPattern;
  }
  return apps;
}

std::span<const double> sixAppLoadFractions() {
  // Paper Sec. V.E: "App 0, 2, 3 and 4 have low to medium loads (10% to
  // 30% of their corresponding saturation loads), and App 1 and 5 have
  // high load (90%)". The 90% points map to kHighLoadFraction (see the
  // header for why).
  static constexpr std::array<double, 6> kFractions = {
      0.10, kHighLoadFraction, 0.15, 0.20, 0.30, kHighLoadFraction};
  return kFractions;
}

std::vector<double> calibrateLoads(const Mesh& mesh, const RegionMap& regions,
                                   std::vector<AppTrafficSpec> shapes,
                                   std::span<const double> fractions,
                                   const SaturationOptions& opts) {
  RAIR_CHECK(shapes.size() == fractions.size());
  const auto n = shapes.size();
  constexpr double kHighThreshold = 0.5;

  // Solo saturation per app on its own shape.
  std::vector<double> soloSat(n);
  for (std::size_t i = 0; i < n; ++i)
    soloSat[i] = appSaturationRate(mesh, regions, shapes[i], opts);

  std::vector<double> rates(n);
  std::vector<std::size_t> highApps;
  for (std::size_t i = 0; i < n; ++i) {
    if (fractions[i] < kHighThreshold) {
      rates[i] = fractions[i] * soloSat[i];
    } else {
      highApps.push_back(i);
    }
  }
  if (highApps.empty()) return rates;

  // Joint in-context calibration of the high apps: scale them together
  // (u = 1 corresponds to each running at its solo saturation) with the
  // low apps active, and find the knee of the high apps' mean APL.
  auto aplAtScale = [&](double u) {
    SimConfig cfg;
    cfg.warmupCycles = opts.warmupCycles;
    cfg.measureCycles = opts.measureCycles;
    cfg.drainLimit = opts.drainLimit;
    std::vector<AppTrafficSpec> apps = shapes;
    for (std::size_t i = 0; i < n; ++i) apps[i].injectionRate = rates[i];
    for (std::size_t i : highApps) apps[i].injectionRate = u * soloSat[i];
    const auto res = runScenario(ScenarioSpec(mesh, regions)
                                     .withConfig(cfg)
                                     .withScheme(schemeRoRr())
                                     .withApps(std::move(apps)));
    if (!res.run.fullyDrained)
      return std::numeric_limits<double>::infinity();
    double sum = 0;
    for (std::size_t i : highApps)
      sum += res.appApl[i];
    return sum / static_cast<double>(highApps.size());
  };
  SaturationOptions jointOpts = opts;
  jointOpts.maxRate = 1.0;  // u is a scale factor; 1 = solo saturation
  const double uStar = findSaturationRate(aplAtScale, jointOpts);
  for (std::size_t i : highApps)
    rates[i] = fractions[i] * uStar * soloSat[i];
  return rates;
}

}  // namespace rair::scenarios
