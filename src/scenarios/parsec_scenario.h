// The Fig. 16/17 application scenario: PARSEC-like workloads in mesh
// quadrants with the Table 1 two-class VC organization and request/reply
// cache traffic, optionally under a chip-wide adversarial flood.
#pragma once

#include <span>

#include "sim/scenario.h"
#include "trace/parsec.h"

namespace rair::scenarios {

struct ParsecScenarioOptions {
  /// Adversarial chip-wide UR flood in flits/cycle/node; 0 = no attack.
  /// The attacker is AppId = apps.size() and is foreign to every region.
  double adversarialRate = 0.0;
  std::uint64_t seed = 1;
  MemoryTimings timings;
};

/// Runs `benchmarks[i]` as application i in region i of `regions`.
/// The network uses Table 1's VC organization (2 protocol classes —
/// requests and replies — with `vcsPerClass` each); every delivered
/// request triggers a 5-flit reply after the L2 or memory service latency.
ScenarioResult runParsecScenario(const Mesh& mesh, const RegionMap& regions,
                                 SimConfig cfg, const SchemeSpec& scheme,
                                 std::span<const ParsecBenchmark> benchmarks,
                                 const ParsecScenarioOptions& opts = {});

/// The paper's representative subset (Fig. 16): blackscholes, swaptions,
/// fluidanimate, raytrace — spanning low to high network intensity.
std::span<const ParsecBenchmark> fig16Benchmarks();

}  // namespace rair::scenarios
