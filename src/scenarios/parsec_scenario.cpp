#include "scenarios/parsec_scenario.h"

#include <array>

#include "common/assert.h"

namespace rair::scenarios {

ScenarioResult runParsecScenario(const Mesh& mesh, const RegionMap& regions,
                                 SimConfig cfg, const SchemeSpec& scheme,
                                 std::span<const ParsecBenchmark> benchmarks,
                                 const ParsecScenarioOptions& opts) {
  RAIR_CHECK(static_cast<int>(benchmarks.size()) <= regions.numApps());
  const bool adversarial = opts.adversarialRate > 0.0;
  const int numApps =
      static_cast<int>(benchmarks.size()) + (adversarial ? 1 : 0);

  // Table 1 network organization: one VC set per protocol class.
  cfg.net.numClasses = 2;
  cfg.routing = scheme.routing;
  cfg.net.rairPartition = scheme.needsRairPartition();

  // Oracle intensities for RO_Rank: a request moves ~6 flits end to end.
  std::vector<double> intensities;
  for (const auto b : benchmarks)
    intensities.push_back(parsecProfile(b).requestRate * 6.0);
  if (adversarial) intensities.push_back(opts.adversarialRate);

  const auto policy = makePolicy(scheme, intensities);
  Simulator sim(mesh, regions, cfg, *policy, numApps);
  installRequestReplyHook(sim, mesh, opts.timings,
                          cfg.warmupCycles + cfg.measureCycles,
                          static_cast<AppId>(benchmarks.size()));

  std::uint64_t seed = opts.seed;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    sim.addSource(std::make_unique<ParsecSource>(
        mesh, regions, static_cast<AppId>(i), parsecProfile(benchmarks[i]),
        seed));
    seed += 0x9E3779B9ull;
  }
  if (adversarial) {
    sim.addSource(std::make_unique<AdversarialSource>(
        mesh, static_cast<AppId>(benchmarks.size()), opts.adversarialRate,
        seed));
  }

  ScenarioResult out;
  out.run = sim.run();
  out.meanApl = out.run.stats.overallApl();
  out.appApl.resize(static_cast<size_t>(numApps));
  for (AppId a = 0; a < numApps; ++a)
    out.appApl[static_cast<size_t>(a)] = out.run.stats.appApl(a);
  return out;
}

std::span<const ParsecBenchmark> fig16Benchmarks() {
  static constexpr std::array<ParsecBenchmark, 4> kApps = {
      ParsecBenchmark::Blackscholes, ParsecBenchmark::Swaptions,
      ParsecBenchmark::Fluidanimate, ParsecBenchmark::Raytrace};
  return kApps;
}

}  // namespace rair::scenarios
