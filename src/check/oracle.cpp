#include "check/oracle.h"

#include <bit>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rair::check {

namespace {

constexpr int portIdx(Dir d) { return static_cast<int>(d); }

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

const char* stateName(VcState s) {
  switch (s) {
    case VcState::Idle: return "Idle";
    case VcState::Routing: return "Routing";
    case VcState::WaitingVa: return "WaitingVa";
    case VcState::Active: return "Active";
  }
  return "?";
}

/// The canonical pipeline advances an input VC at most one state per cycle
/// (every stage sets ready = now + 1), so between consecutive cycles only
/// these transitions are reachable. Active can fall back to Routing when a
/// queued packet surfaces behind a departing tail (non-atomic VCs).
bool legalTransition(VcState a, VcState b) {
  if (a == b) return true;
  switch (a) {
    case VcState::Idle: return b == VcState::Routing;
    case VcState::Routing: return b == VcState::WaitingVa;
    case VcState::WaitingVa: return b == VcState::Active;
    case VcState::Active:
      return b == VcState::Idle || b == VcState::Routing;
  }
  return false;
}

}  // namespace

std::string OracleReport::summary() const {
  if (violations.empty()) return "ok";
  std::string s = fmt("cycle %llu: ",
                      static_cast<unsigned long long>(violations.front().cycle));
  s += violations.front().what;
  if (violations.size() > 1 || truncated)
    s += fmt(" (+%zu more%s)", violations.size() - 1,
             truncated ? ", truncated" : "");
  return s;
}

NetworkOracle::NetworkOracle(const Network& net, const PacketPool& ledger,
                             OracleOptions options)
    : net_(&net), ledger_(&ledger), opt_(options) {}

void NetworkOracle::violation(Cycle now, std::string what) {
  if (opt_.failFast) {
    std::fprintf(stderr, "oracle violation at cycle %llu: %s\n",
                 static_cast<unsigned long long>(now), what.c_str());
    std::abort();
  }
  if (report_.violations.size() >= opt_.maxViolations) {
    report_.truncated = true;
    return;
  }
  report_.violations.push_back(OracleViolation{now, std::move(what)});
}

void NetworkOracle::onCycleEnd(Cycle now) {
  if (opt_.period != 0 && now % opt_.period == 0) structuralScan(now);
  if (opt_.deadlockPeriod != 0 && now % opt_.deadlockPeriod == 0)
    deadlockScan(now);
}

void NetworkOracle::onDelivery(const Packet& p) {
  windows_.erase(p.id);
  reportedStarved_.erase(p.id);
  ++deliveredPackets_;
  deliveredFlits_ += p.numFlits;
}

void NetworkOracle::crossValidateTotals(Cycle now,
                                        std::uint64_t deliveredPackets,
                                        std::uint64_t deliveredFlits) {
  if (deliveredPackets != deliveredPackets_)
    violation(now, fmt("metrics census mismatch: registry reports %llu "
                       "delivered packets, oracle counted %llu",
                       static_cast<unsigned long long>(deliveredPackets),
                       static_cast<unsigned long long>(deliveredPackets_)));
  if (deliveredFlits != deliveredFlits_)
    violation(now, fmt("metrics census mismatch: registry reports %llu "
                       "delivered flits, oracle counted %llu",
                       static_cast<unsigned long long>(deliveredFlits),
                       static_cast<unsigned long long>(deliveredFlits_)));
}

void NetworkOracle::scanNow(Cycle now) {
  structuralScan(now);
  deadlockScan(now);
}

void NetworkOracle::finish(Cycle now) {
  scanNow(now);
  if (ledger_->empty() && !net_->quiescent())
    violation(now,
              "ledger fully drained but the network still holds traffic "
              "(orphaned flits or undrained VC state)");
}

void NetworkOracle::structuralScan(Cycle now) {
  ++report_.scans;
  const int numNodes = net_->mesh().numNodes();
  for (NodeId n = 0; n < numNodes; ++n) {
    scanRouter(now, n);
    scanNic(now, n);
    creditEquations(now, n);
  }
  censusScan(now);
  if (opt_.maxInNetworkAge != 0) starvationScan(now);

  // Transition legality needs two consecutive end-of-cycle snapshots.
  const int tv = net_->layout().totalVcs();
  const std::size_t stride = static_cast<std::size_t>(kNumPorts * tv);
  const std::size_t total = static_cast<std::size_t>(numNodes) * stride;
  // A fault-layer topology mutation this cycle rewired VC states
  // out-of-band (purge + reroute-reset), so the one-state-per-cycle
  // transition and ownership-stability checks do not apply across it.
  const bool faultMutated =
      faults_ != nullptr && faults_->lastTopologyChange() == now;
  const bool checkTransitions = havePrev_ && now == prevCycle_ + 1 &&
                                prevState_.size() == total && !faultMutated;
  if (prevState_.size() != total) {
    prevState_.assign(total, 0);
    prevOwner_.assign(total, -1);
    havePrev_ = false;
  }
  for (NodeId n = 0; n < numNodes; ++n) {
    const Router& r = net_->router(n);
    for (int port = 0; port < kNumPorts; ++port) {
      for (int vc = 0; vc < tv; ++vc) {
        const std::size_t slot = static_cast<std::size_t>(n) * stride +
                                 static_cast<std::size_t>(port * tv + vc);
        const VcState cur = r.inVc(port, vc).state;
        const Router::OutputVc& o = r.outVc(port, vc);
        const std::int16_t owner =
            o.allocated
                ? static_cast<std::int16_t>(o.ownerPort * tv + o.ownerVc)
                : std::int16_t{-1};
        if (checkTransitions) {
          const auto prev = static_cast<VcState>(prevState_[slot]);
          if (!legalTransition(prev, cur))
            violation(now, fmt("router %d port %d vc %d: illegal state "
                               "transition %s -> %s",
                               n, port, vc, stateName(prev), stateName(cur)));
          const std::int16_t prevOwner = prevOwner_[slot];
          if (prevOwner >= 0 && owner >= 0 && owner != prevOwner)
            violation(now, fmt("router %d out port %d vc %d: allocated VC "
                               "changed owner %d -> %d without being freed",
                               n, port, vc, prevOwner, owner));
        }
        prevState_[slot] = static_cast<std::uint8_t>(cur);
        prevOwner_[slot] = owner;
      }
    }
  }
  havePrev_ = true;
  prevCycle_ = now;
}

void NetworkOracle::scanRouter(Cycle now, NodeId n) {
  const Router& r = net_->router(n);
  const VcLayout& layout = r.layout_;
  const int tv = layout.totalVcs();
  int occNative = 0, occForeign = 0;
  int numRouting = 0, numWaiting = 0, numActive = 0;

  for (int port = 0; port < kNumPorts; ++port) {
    std::uint64_t routingMask = 0, waitingMask = 0, activeMask = 0;
    for (int vc = 0; vc < tv; ++vc) {
      const auto& ivc = r.inVc(port, vc);
      const std::size_t bufSize = ivc.buf.size();
      if (bufSize > static_cast<std::size_t>(r.vcDepth_))
        violation(now, fmt("router %d port %d vc %d: buffer holds %zu flits, "
                           "depth is %d",
                           n, port, vc, bufSize, r.vcDepth_));

      // State vs. buffer agreement.
      switch (ivc.state) {
        case VcState::Idle:
          if (!ivc.buf.empty())
            violation(now, fmt("router %d port %d vc %d: Idle VC has %zu "
                               "buffered flits",
                               n, port, vc, bufSize));
          break;
        case VcState::Routing:
        case VcState::WaitingVa:
          if (ivc.buf.empty() || !isHead(ivc.buf.front().type))
            violation(now, fmt("router %d port %d vc %d: %s VC without a "
                               "head flit at the buffer front",
                               n, port, vc, stateName(ivc.state)));
          break;
        case VcState::Active:
          break;  // an Active VC may legally drain empty mid-packet
      }

      // Output VC assignment legality.
      if (ivc.state == VcState::Active) {
        if (ivc.outPort < 0 || ivc.outPort >= kNumPorts || ivc.outVc < 0 ||
            ivc.outVc >= tv) {
          violation(now, fmt("router %d port %d vc %d: Active with invalid "
                             "output assignment (%d, %d)",
                             n, port, vc, ivc.outPort, ivc.outVc));
        } else {
          const auto& o = r.outVc(ivc.outPort, ivc.outVc);
          if (!o.allocated || o.ownerPort != port || o.ownerVc != vc)
            violation(now, fmt("router %d port %d vc %d: Active but output "
                               "(%d, %d) is not allocated to it "
                               "(allocated=%d owner=%d/%d)",
                               n, port, vc, ivc.outPort, ivc.outVc,
                               o.allocated ? 1 : 0, o.ownerPort, o.ownerVc));
          if (ivc.route.ejecting) {
            if (ivc.outPort != portIdx(Dir::Local))
              violation(now, fmt("router %d port %d vc %d: ejecting packet "
                                 "allocated non-Local output port %d",
                                 n, port, vc, ivc.outPort));
          } else if (layout.isEscape(ivc.outVc)) {
            if (ivc.outPort != portIdx(ivc.route.escapeDir))
              violation(now, fmt("router %d port %d vc %d: escape VC "
                                 "allocated off the XY direction (port %d, "
                                 "escape dir %d)",
                                 n, port, vc, ivc.outPort,
                                 portIdx(ivc.route.escapeDir)));
          } else {
            bool productive = false;
            for (int i = 0; i < ivc.route.numAdaptive; ++i)
              if (portIdx(ivc.route.adaptiveDirs[i]) == ivc.outPort)
                productive = true;
            if (!productive)
              violation(now, fmt("router %d port %d vc %d: adaptive output "
                                 "port %d is not a productive direction",
                                 n, port, vc, ivc.outPort));
          }
        }
      } else if (ivc.outPort != -1 || ivc.outVc != -1) {
        violation(now, fmt("router %d port %d vc %d: %s VC still holds "
                           "output assignment (%d, %d)",
                           n, port, vc, stateName(ivc.state), ivc.outPort,
                           ivc.outVc));
      }

      // Incrementally-maintained occupancy class of the front flit.
      const std::uint8_t expectClass =
          ivc.buf.empty()
              ? std::uint8_t{0}
              : (r.isNative(ivc.buf.front()) ? std::uint8_t{1}
                                             : std::uint8_t{2});
      if (ivc.occClass != expectClass)
        violation(now, fmt("router %d port %d vc %d: occClass %d, front "
                           "flit implies %d",
                           n, port, vc, ivc.occClass, expectClass));
      if (expectClass == 1) ++occNative;
      if (expectClass == 2) ++occForeign;

      switch (ivc.state) {
        case VcState::Routing:
          ++numRouting;
          routingMask |= std::uint64_t{1} << vc;
          break;
        case VcState::WaitingVa:
          ++numWaiting;
          waitingMask |= std::uint64_t{1} << vc;
          break;
        case VcState::Active:
          ++numActive;
          activeMask |= std::uint64_t{1} << vc;
          break;
        case VcState::Idle:
          break;
      }

      // Wormhole FIFO discipline inside the buffer: flits of one packet
      // are consecutive in seq order; packets abut only tail -> head, and
      // only on non-atomic adaptive VCs.
      for (std::size_t i = 0; i < bufSize; ++i) {
        const Flit& f = ivc.buf[i];
        if (layout.msgClassOf(vc) != f.msgClass)
          violation(now, fmt("router %d port %d vc %d: buffered flit of "
                             "class %d in the class-%d VC block",
                             n, port, vc, static_cast<int>(f.msgClass),
                             static_cast<int>(layout.msgClassOf(vc))));
        if (i == 0) continue;
        const Flit& prev = ivc.buf[i - 1];
        if (prev.pkt == f.pkt) {
          if (f.seq != prev.seq + 1)
            violation(now, fmt("router %d port %d vc %d: flit seq %u follows "
                               "seq %u of the same packet",
                               n, port, vc, static_cast<unsigned>(f.seq),
                               static_cast<unsigned>(prev.seq)));
        } else {
          if (!isTail(prev.type) || !isHead(f.type))
            violation(now, fmt("router %d port %d vc %d: packet boundary in "
                               "buffer without tail -> head",
                               n, port, vc));
          if (r.atomicVcs_ || layout.isEscape(vc))
            violation(now, fmt("router %d port %d vc %d: two packets share "
                               "an atomic VC buffer",
                               n, port, vc));
        }
      }
    }

    if (routingMask != r.routingMask_[static_cast<std::size_t>(port)] ||
        waitingMask != r.waitingMask_[static_cast<std::size_t>(port)] ||
        activeMask != r.activeMask_[static_cast<std::size_t>(port)])
      violation(now, fmt("router %d port %d: pipeline-state bitmasks "
                         "disagree with VC states",
                         n, port));

    // Output VC side: credit bounds, ownership bijection, and the
    // incrementally-maintained free-adaptive count.
    int freeAdaptive = 0;
    for (int vc = 0; vc < tv; ++vc) {
      const auto& o = r.outVc(port, vc);
      if (o.credits < 0 || o.credits > r.vcDepth_)
        violation(now, fmt("router %d out port %d vc %d: credits %d outside "
                           "[0, %d]",
                           n, port, vc, o.credits, r.vcDepth_));
      if (o.allocated) {
        if (o.ownerPort < 0 || o.ownerPort >= kNumPorts || o.ownerVc < 0 ||
            o.ownerVc >= tv) {
          violation(now, fmt("router %d out port %d vc %d: allocated with "
                             "invalid owner (%d, %d)",
                             n, port, vc, o.ownerPort, o.ownerVc));
        } else {
          const auto& owner = r.inVc(o.ownerPort, o.ownerVc);
          if (owner.state != VcState::Active || owner.outPort != port ||
              owner.outVc != vc)
            violation(now, fmt("router %d out port %d vc %d: owner (%d, %d) "
                               "does not point back (state %s, out %d/%d)",
                               n, port, vc, o.ownerPort, o.ownerVc,
                               stateName(owner.state), owner.outPort,
                               owner.outVc));
        }
      } else if (o.ownerPort != -1 || o.ownerVc != -1) {
        violation(now, fmt("router %d out port %d vc %d: unallocated but "
                           "owner fields set (%d, %d)",
                           n, port, vc, o.ownerPort, o.ownerVc));
      }
      if (r.outLinks_[static_cast<std::size_t>(port)] == nullptr &&
          (o.allocated || o.credits != r.vcDepth_))
        violation(now, fmt("router %d out port %d vc %d: unconnected port "
                           "with mutated VC state (credits %d, allocated %d)",
                           n, port, vc, o.credits, o.allocated ? 1 : 0));
      if (layout.isAdaptive(vc) && r.countsAsFree(o, vc)) ++freeAdaptive;
    }
    if (freeAdaptive != r.freeAdaptive_[static_cast<std::size_t>(port)])
      violation(now, fmt("router %d port %d: freeAdaptive counter %d, "
                         "recomputed %d",
                         n, port, r.freeAdaptive_[static_cast<std::size_t>(port)],
                         freeAdaptive));
  }

  if (occNative != r.occNative_ || occForeign != r.occForeign_)
    violation(now, fmt("router %d: occupancy registers native=%d foreign=%d, "
                       "recomputed native=%d foreign=%d",
                       n, r.occNative_, r.occForeign_, occNative, occForeign));
  if (numRouting != r.pendingRc_ || numWaiting != r.pendingVa_ ||
      numActive != r.numActive_)
    violation(now, fmt("router %d: pipeline counters rc=%d va=%d active=%d, "
                       "recomputed rc=%d va=%d active=%d",
                       n, r.pendingRc_, r.pendingVa_, r.numActive_, numRouting,
                       numWaiting, numActive));
}

void NetworkOracle::scanNic(Cycle now, NodeId n) {
  const Nic& nic = net_->nic(n);
  const VcLayout& layout = nic.layout_;
  const int tv = layout.totalVcs();
  for (int vc = 0; vc < tv; ++vc) {
    const int c = nic.credits_[static_cast<std::size_t>(vc)];
    if (c < 0 || c > nic.vcDepth_)
      violation(now, fmt("nic %d vc %d: credits %d outside [0, %d]", n, vc, c,
                         nic.vcDepth_));
  }
  for (std::size_t i = 0; i < nic.active_.size(); ++i) {
    const auto& s = nic.active_[i];
    if (s.vc < 0 || s.vc >= tv) {
      violation(now, fmt("nic %d: stream claims invalid vc %d", n, s.vc));
      continue;
    }
    for (std::size_t j = i + 1; j < nic.active_.size(); ++j)
      if (nic.active_[j].vc == s.vc)
        violation(now, fmt("nic %d: two injection streams share vc %d", n,
                           s.vc));
    if (layout.msgClassOf(s.vc) != s.pkt.msgClass)
      violation(now, fmt("nic %d: class-%d packet streaming into class-%d "
                         "vc %d",
                         n, static_cast<int>(s.pkt.msgClass),
                         static_cast<int>(layout.msgClassOf(s.vc)), s.vc));
    if (!ledger_->isLive(s.pkt.id))
      violation(now, fmt("nic %d: stream holds dead packet id %llu", n,
                         static_cast<unsigned long long>(s.pkt.id)));
    if (s.next >= s.pkt.numFlits)
      violation(now, fmt("nic %d: stream past its packet end (next %u of "
                         "%u flits)",
                         n, static_cast<unsigned>(s.next),
                         static_cast<unsigned>(s.pkt.numFlits)));
  }
}

void NetworkOracle::creditEquations(Cycle now, NodeId n) {
  const Router& r = net_->router(n);
  const int tv = r.layout_.totalVcs();
  const int depth = r.vcDepth_;
  const Mesh& mesh = net_->mesh();

  // Every link is audited exactly once from its upstream side: this
  // router's output links (router-router and ejection), plus the injection
  // link whose upstream side is this node's NIC.
  for (int port = 0; port < kNumPorts; ++port) {
    const LinkLayer* out = r.outLinks_[static_cast<std::size_t>(port)];
    if (out == nullptr) continue;
    const Dir d = static_cast<Dir>(port);
    const Router* downstream = nullptr;
    int downPort = -1;
    if (d != Dir::Local) {
      const auto nb = mesh.neighbor(n, d);
      if (!nb.has_value()) {
        violation(now, fmt("router %d port %d: connected link off the mesh "
                           "edge",
                           n, port));
        continue;
      }
      downstream = &net_->router(*nb);
      downPort = portIdx(opposite(d));
    }
    for (int vc = 0; vc < tv; ++vc) {
      // The link-layer views close the equation for both implementations:
      // a retransmission link counts its unaccepted replay residents as
      // in-flight (wire copies are ghosts; delivered-but-unACKed entries
      // already sit in the downstream buffer counted below).
      int sum = r.outVc(port, vc).credits + out->inFlightFlits(vc) +
                out->inFlightCredits(vc);
      if (downstream != nullptr)
        sum += static_cast<int>(downstream->inVc(downPort, vc).buf.size());
      if (faults_ != nullptr)
        sum += static_cast<int>(faults_->lostCredits(n, port, vc));
      if (sum != depth)
        violation(now, fmt("router %d out port %d vc %d: credit conservation "
                           "broken (credits + in-flight + downstream = %d, "
                           "depth %d)",
                           n, port, vc, sum, depth));
    }
  }

  const LinkLayer* inject = r.inLinks_[portIdx(Dir::Local)];
  if (inject != nullptr) {
    const Nic& nic = net_->nic(n);
    for (int vc = 0; vc < tv; ++vc) {
      const int sum = nic.credits_[static_cast<std::size_t>(vc)] +
                      inject->inFlightFlits(vc) +
                      inject->inFlightCredits(vc) +
                      static_cast<int>(
                          r.inVc(portIdx(Dir::Local), vc).buf.size());
      if (sum != depth)
        violation(now, fmt("nic %d inject vc %d: credit conservation broken "
                           "(credits + in-flight + router buffer = %d, "
                           "depth %d)",
                           n, vc, sum, depth));
    }
  }
}

void NetworkOracle::censusScan(Cycle now) {
  census_.clear();
  streaming_.clear();
  const int numNodes = net_->mesh().numNodes();
  const int tv = net_->layout().totalVcs();

  auto audit = [&](const Flit& f, NodeId node, const char* where) {
    const Packet* p = ledger_->find(f.pkt);
    if (p == nullptr) {
      violation(now, fmt("%s at node %d: flit of dead or stale packet id "
                         "%llu (seq %u)",
                         where, node,
                         static_cast<unsigned long long>(f.pkt),
                         static_cast<unsigned>(f.seq)));
      return;
    }
    if (f.src != p->src || f.dst != p->dst || f.app != p->app ||
        f.msgClass != p->msgClass || f.pktFlits != p->numFlits ||
        f.createCycle != p->createCycle)
      violation(now, fmt("%s at node %d: flit metadata diverged from ledger "
                         "packet %llu",
                         where, node,
                         static_cast<unsigned long long>(f.pkt)));
    if (f.seq >= f.pktFlits)
      violation(now, fmt("%s at node %d: flit seq %u out of range (packet "
                         "has %u flits)",
                         where, node, static_cast<unsigned>(f.seq),
                         static_cast<unsigned>(f.pktFlits)));
    CensusEntry& e = census_[f.pkt];
    e.pktFlits = p->numFlits;
    ++e.count;
    if (f.seq < 64) e.seqMask |= std::uint64_t{1} << f.seq;
  };

  for (NodeId n = 0; n < numNodes; ++n) {
    const Router& r = net_->router(n);
    for (int port = 0; port < kNumPorts; ++port) {
      for (int vc = 0; vc < tv; ++vc) {
        const auto& buf = r.inVc(port, vc).buf;
        for (std::size_t i = 0; i < buf.size(); ++i)
          audit(buf[i], n, "input buffer");
      }
      if (const LinkLayer* out = r.outLinks_[static_cast<std::size_t>(port)])
        out->forEachFlit(
            [&](const FlitMsg& m) { audit(m.flit, n, "output link"); });
    }
    if (const LinkLayer* inject = r.inLinks_[portIdx(Dir::Local)])
      inject->forEachFlit(
          [&](const FlitMsg& m) { audit(m.flit, n, "inject link"); });
    for (const auto& s : net_->nic(n).active_) streaming_.insert(s.pkt.id);
  }

  // Per-packet wormhole ordering: in-network flits form one contiguous,
  // duplicate-free seq range whose bounds never move backwards.
  for (const auto& [id, e] : census_) {
    if (e.pktFlits > 64 || e.count >= 64) continue;  // beyond mask width
    if (std::popcount(e.seqMask) != e.count) {
      violation(now, fmt("packet %llu: duplicated flit (census count %d over "
                         "%d distinct seqs)",
                         static_cast<unsigned long long>(id), e.count,
                         std::popcount(e.seqMask)));
      continue;
    }
    const int lo = std::countr_zero(e.seqMask);
    const int hi = 63 - std::countl_zero(e.seqMask);
    if (e.seqMask >> lo != (std::uint64_t{1} << e.count) - 1)
      violation(now, fmt("packet %llu: in-network flits not contiguous "
                         "(seqs %d..%d, %d flits)",
                         static_cast<unsigned long long>(id), lo, hi,
                         e.count));
    const auto it = windows_.find(id);
    if (it != windows_.end() &&
        (lo < it->second.minSeq || hi < it->second.maxSeq))
      violation(now, fmt("packet %llu: seq window moved backwards "
                         "(%u..%u -> %d..%d)",
                         static_cast<unsigned long long>(id),
                         static_cast<unsigned>(it->second.minSeq),
                         static_cast<unsigned>(it->second.maxSeq), lo, hi));
    windows_[id] = SeqWindow{static_cast<std::uint16_t>(lo),
                             static_cast<std::uint16_t>(hi)};
  }

  // Lost packets: live, past injection, but with no flit anywhere in the
  // network and no stream still emitting flits at the source NIC.
  ledger_->forEachLive([&](const Packet& p) {
    if (p.injectCycle == kNeverCycle) return;  // still queued at the source
    if (census_.find(p.id) != census_.end()) return;
    if (streaming_.find(p.id) != streaming_.end()) return;
    violation(now, fmt("packet %llu (src %d dst %d) injected at cycle %llu "
                       "has vanished: live in the ledger but no flit in the "
                       "network",
                       static_cast<unsigned long long>(p.id), p.src, p.dst,
                       static_cast<unsigned long long>(p.injectCycle)));
  });

  // Windows of packets that left the ledger through any path other than
  // onDelivery would pin memory forever; prune them lazily.
  for (auto it = windows_.begin(); it != windows_.end();) {
    if (!ledger_->isLive(it->first))
      it = windows_.erase(it);
    else
      ++it;
  }
}

void NetworkOracle::deadlockScan(Cycle now) {
  ++report_.deadlockScans;
  const Mesh& mesh = net_->mesh();
  const int numNodes = mesh.numNodes();
  const int tv = net_->layout().totalVcs();
  const std::size_t stride = static_cast<std::size_t>(kNumPorts * tv);
  const std::size_t total = static_cast<std::size_t>(numNodes) * stride;

  // Channel-wait graph restricted to *definitely blocked* input VCs: an
  // Active VC with a flit to send whose allocated output has zero credits
  // and nothing in flight on the link (by credit conservation the
  // downstream buffer is provably full). Each such VC waits on exactly one
  // downstream input VC, so the graph is functional and any cycle is a
  // genuine credit deadlock — transient backpressure cannot appear here.
  std::vector<std::int32_t> waitsOn(total, -1);
  for (NodeId n = 0; n < numNodes; ++n) {
    const Router& r = net_->router(n);
    for (int port = 0; port < kNumPorts; ++port) {
      for (int vc = 0; vc < tv; ++vc) {
        const auto& ivc = r.inVc(port, vc);
        if (ivc.state != VcState::Active || ivc.buf.empty()) continue;
        if (ivc.outPort < 0 || ivc.outPort == portIdx(Dir::Local)) continue;
        const auto& o = r.outVc(ivc.outPort, ivc.outVc);
        if (o.credits != 0) continue;
        const LinkLayer* out =
            r.outLinks_[static_cast<std::size_t>(ivc.outPort)];
        if (out == nullptr) continue;
        if (out->inFlightFlits(ivc.outVc) != 0 ||
            out->inFlightCredits(ivc.outVc) != 0)
          continue;
        const auto nb = mesh.neighbor(n, static_cast<Dir>(ivc.outPort));
        if (!nb.has_value()) continue;
        const int downPort = portIdx(opposite(static_cast<Dir>(ivc.outPort)));
        const std::size_t self = static_cast<std::size_t>(n) * stride +
                                 static_cast<std::size_t>(port * tv + vc);
        waitsOn[self] = static_cast<std::int32_t>(
            static_cast<std::size_t>(*nb) * stride +
            static_cast<std::size_t>(downPort * tv + ivc.outVc));
      }
    }
  }

  // Cycle detection in the functional graph (nodes without a waitsOn edge,
  // including targets that can still make progress, terminate every walk).
  std::vector<std::uint8_t> color(total, 0);  // 0 new, 1 on path, 2 done
  for (std::size_t start = 0; start < total; ++start) {
    if (waitsOn[start] < 0 || color[start] != 0) continue;
    std::size_t cur = start;
    while (true) {
      if (color[cur] == 1) {
        const NodeId rn = static_cast<NodeId>(cur / stride);
        const int rest = static_cast<int>(cur % stride);
        violation(now, fmt("credit deadlock: wait cycle through router %d "
                           "port %d vc %d",
                           rn, rest / tv, rest % tv));
        break;
      }
      if (color[cur] == 2 || waitsOn[cur] < 0) break;
      color[cur] = 1;
      cur = static_cast<std::size_t>(waitsOn[cur]);
    }
    // Mark the walked path resolved.
    cur = start;
    while (color[cur] == 1) {
      color[cur] = 2;
      if (waitsOn[cur] < 0) break;
      cur = static_cast<std::size_t>(waitsOn[cur]);
    }
  }
}

void NetworkOracle::starvationScan(Cycle now) {
  ledger_->forEachLive([&](const Packet& p) {
    if (p.injectCycle == kNeverCycle) return;
    if (now - p.injectCycle <= opt_.maxInNetworkAge) return;
    if (reportedStarved_.find(p.id) != reportedStarved_.end()) return;
    reportedStarved_.insert(p.id);
    violation(now, fmt("starvation: packet %llu (src %d dst %d app %d) has "
                       "been in the network for %llu cycles (bound %llu)",
                       static_cast<unsigned long long>(p.id), p.src, p.dst,
                       static_cast<int>(p.app),
                       static_cast<unsigned long long>(now - p.injectCycle),
                       static_cast<unsigned long long>(opt_.maxInNetworkAge)));
  });
}

}  // namespace rair::check
