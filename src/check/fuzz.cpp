#include "check/fuzz.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "fault/injector.h"
#include "fault/random_plan.h"
#include "metrics/recorder.h"
#include "sim/simulator.h"
#include "traffic/source.h"

namespace rair::check {

namespace {

/// SplitMix64 — derives independent case seeds from (base, index) without
/// consuming generator state.
std::uint64_t splitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Stops ticking the wrapped source once the simulation clock reaches
/// `cutoff`, so the open-loop network can drain to empty afterwards.
class GatedSource final : public TrafficSource {
 public:
  GatedSource(std::unique_ptr<TrafficSource> inner, Cycle cutoff)
      : inner_(std::move(inner)), cutoff_(cutoff) {}

  void tick(InjectionSink& sink) override {
    if (sink.now() < cutoff_) inner_->tick(sink);
  }

 private:
  std::unique_ptr<TrafficSource> inner_;
  Cycle cutoff_;
};

/// Drops one credit somewhere in the network, scanning (node, port, vc)
/// triples from a seeded random start so the corruption site varies per
/// case but stays reproducible. Returns false when no output VC currently
/// holds a droppable credit.
bool dropOneCredit(Network& net, Xoshiro256StarStar& rng) {
  const int nodes = net.mesh().numNodes();
  const int tv = net.layout().totalVcs();
  const std::uint64_t total =
      static_cast<std::uint64_t>(nodes) * kNumPorts * tv;
  const std::uint64_t start = rng.below(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint64_t idx = (start + i) % total;
    const auto node = static_cast<NodeId>(idx / (kNumPorts * tv));
    const auto port = static_cast<Dir>((idx / tv) % kNumPorts);
    const int vc = static_cast<int>(idx % tv);
    if (net.router(node).debugDropCredit(port, vc)) return true;
  }
  return false;
}

FuzzCaseResult runCase(const FuzzCase& c, const SchemeSpec& scheme,
                       const FuzzOptions& opts, std::uint64_t caseSeed) {
  Mesh mesh(c.meshW, c.meshH);
  RegionMap regions = RegionMap::blockGrid(mesh, c.regionsX, c.regionsY);
  const bool adversarial = c.adversarialRate > 0.0;
  const int numApps =
      static_cast<int>(c.apps.size()) + (adversarial ? 1 : 0);

  std::vector<double> intensities;
  intensities.reserve(static_cast<std::size_t>(numApps));
  for (const auto& a : c.apps) intensities.push_back(a.injectionRate);
  if (adversarial) intensities.push_back(c.adversarialRate);

  SimConfig cfg;
  cfg.net.numClasses = c.numClasses;
  cfg.net.vcsPerClass = c.vcsPerClass;
  cfg.net.globalVcsPerClass = c.globalVcsPerClass;
  cfg.net.vcDepth = c.vcDepth;
  cfg.net.atomicVcs = c.atomicVcs;
  cfg.net.linkLatency = c.linkLatency;
  cfg.net.linkLayer = c.linkLayer;
  cfg.net.rairPartition = scheme.needsRairPartition();
  cfg.routing = scheme.routing;
  cfg.warmupCycles = 0;
  cfg.measureCycles = c.sourceCycles;
  cfg.drainLimit = opts.drainBudget;
  cfg.shardThreads = opts.shardThreads;

  const auto policy = makePolicy(scheme, intensities);
  Simulator sim(mesh, regions, cfg, *policy, numApps);
  // Declared after `sim` so the detaching destructor runs first.
  std::unique_ptr<fault::FaultInjector> injector;
  std::uint64_t seed = c.simSeed;
  for (const auto& a : c.apps) {
    sim.addSource(std::make_unique<GatedSource>(
        std::make_unique<RegionalizedSource>(mesh, regions, a, seed),
        c.sourceCycles));
    seed += 0x9E3779B9ull;
  }
  if (adversarial) {
    sim.addSource(std::make_unique<GatedSource>(
        std::make_unique<AdversarialSource>(
            mesh, static_cast<AppId>(c.apps.size()), c.adversarialRate, seed),
        c.sourceCycles));
  }

  if (!c.faults.empty()) {
    injector = std::make_unique<fault::FaultInjector>(sim, c.faults);
    injector->attach();
  }

  OracleOptions oo;
  oo.period = opts.period;
  oo.deadlockPeriod = opts.deadlockPeriod;
  oo.maxInNetworkAge = opts.maxInNetworkAge;
  oo.failFast = false;
  NetworkOracle oracle(sim.network(), sim.ledger(), oo);
  if (injector) oracle.attachFaults(injector.get());
  sim.observers().attach(&oracle);

  // Every case also runs the metrics recorder (counters level, no file
  // sinks) so the oracle's census cross-check exercises the same
  // registry path the scenario runner uses.
  metrics::MetricsOptions mo;
  mo.level = metrics::MetricsLevel::Counters;
  metrics::MetricsRecorder recorder(sim.network(), regions, mo, numApps,
                                    c.sourceCycles);
  sim.observers().attach(&recorder);

  FuzzCaseResult res;
  res.caseSeed = caseSeed;
  res.scheme = scheme.label;
  res.shrunk = c;

  Xoshiro256StarStar faultRng(splitMix64(caseSeed ^ 0xFA177Eull));
  bool wantFault = opts.injectFault;
  // Alternate deterministically between the two corruption models: a
  // dropped credit (network-state fault the structural scans must catch)
  // and a corrupted metrics counter cell (census fault the totals
  // cross-check must catch).
  const bool metricsFault =
      wantFault && (splitMix64(caseSeed ^ 0x5EEDull) & 1) != 0;
  res.faultKind = !wantFault ? "" : (metricsFault ? "counter" : "credit");
  const Cycle faultCycle =
      wantFault ? 1 + faultRng.below(c.sourceCycles) : 0;

  sim.begin();
  const Cycle hardStop = c.sourceCycles + opts.drainBudget;
  while (true) {
    sim.stepCycle();
    const Cycle now = sim.now();
    if (wantFault && now >= faultCycle) {
      if (metricsFault) {
        recorder.debugCorruptCounter(faultRng());
        res.faultInjected = true;
        wantFault = false;
      } else if (dropOneCredit(sim.network(), faultRng)) {
        // Keep trying each cycle until a credit exists to drop (an idle
        // network early in the window may hold none in this instant).
        res.faultInjected = true;
        wantFault = false;
      }
    }
    // Full quiescence, not just an empty ledger: credits from the last
    // ejections are still in the return pipes for linkLatency cycles.
    if (now >= c.sourceCycles && sim.inFlight() == 0 &&
        sim.network().quiescent()) {
      res.drained = true;
      break;
    }
    if (now >= hardStop) break;
  }
  recorder.finalize(sim.now());
  oracle.crossValidateTotals(sim.now(), recorder.deliveredPackets(),
                             recorder.deliveredFlits());
  oracle.finish(sim.now());
  res.report = oracle.report();
  res.droppedByFault = sim.droppedByFault();
  res.corruptedFlits = sim.network().totalCorruptedFlits();
  res.retransmittedFlits = sim.network().totalRetransmittedFlits();
  return res;
}

/// Applies each reduction that keeps the case failing. Bounded work: one
/// rerun per pass, plus up to three extra halvings of the cycle window.
FuzzCase shrinkCase(const FuzzCase& original, const SchemeSpec& scheme,
                    const FuzzOptions& opts, std::uint64_t caseSeed,
                    bool* reduced) {
  FuzzCase best = original;
  *reduced = false;
  const auto stillFails = [&](const FuzzCase& cand) {
    return runCase(cand, scheme, opts, caseSeed).failed();
  };
  const auto tryKeep = [&](FuzzCase cand) {
    if (stillFails(cand)) {
      best = std::move(cand);
      *reduced = true;
    }
  };
  // VC-geometry passes must not reinterpret a CreditLoss event's flat VC
  // index under a different class/VC split (it could land on an escape VC
  // or past the layout, changing what is being shrunk).
  const auto plansCreditLoss = [](const FuzzCase& fc) {
    for (const auto& e : fc.faults.events())
      if (e.kind == fault::FaultKind::CreditLoss) return true;
    return false;
  };

  // Fault dimension first: a case that still fails fault-free is the more
  // valuable repro. Event-count halving keeps the *suffix* — every paired
  // release sorts after its opener, so a suffix can never strand a stall,
  // freeze or soft reset open (lone releases — unstall, thaw, recover —
  // are harmless no-ops).
  if (!best.faults.empty()) {
    FuzzCase cand = best;
    cand.faults = fault::FaultPlan{};
    tryKeep(std::move(cand));
  }
  for (int i = 0; i < 4 && best.faults.size() > 1; ++i) {
    FuzzCase cand = best;
    fault::FaultPlan half;
    const auto& ev = best.faults.events();
    for (std::size_t j = ev.size() / 2; j < ev.size(); ++j) half.add(ev[j]);
    cand.faults = std::move(half);
    if (!stillFails(cand)) break;
    best = std::move(cand);
    *reduced = true;
  }

  for (int i = 0; i < 4 && best.sourceCycles > 100; ++i) {
    FuzzCase cand = best;
    cand.sourceCycles = std::max<Cycle>(100, cand.sourceCycles / 2);
    if (!stillFails(cand)) break;
    best = std::move(cand);
    *reduced = true;
  }
  if (best.adversarialRate > 0.0) {
    FuzzCase cand = best;
    cand.adversarialRate = 0.0;
    tryKeep(std::move(cand));
  }
  if (best.numClasses > 1 && !plansCreditLoss(best)) {
    FuzzCase cand = best;
    cand.numClasses = 1;
    for (auto& a : cand.apps) a.msgClass = MsgClass::Request;
    tryKeep(std::move(cand));
  }
  const int minVcs = scheme.needsRairPartition() ? 3 : 2;
  if (best.vcsPerClass > minVcs && !plansCreditLoss(best)) {
    FuzzCase cand = best;
    cand.vcsPerClass = minVcs;
    cand.globalVcsPerClass = -1;
    tryKeep(std::move(cand));
  }
  if (best.linkLatency > 1) {
    FuzzCase cand = best;
    cand.linkLatency = 1;
    tryKeep(std::move(cand));
  }
  if (best.regionsX * best.regionsY > 1) {
    FuzzCase cand = best;
    cand.regionsX = 1;
    cand.regionsY = 1;
    cand.apps.resize(1);
    cand.apps[0].app = 0;
    cand.apps[0].interTargetApp = kNoApp;
    tryKeep(std::move(cand));
  }
  return best;
}

}  // namespace

std::string FuzzCase::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "mesh %dx%d regions %dx%d classes %d vcs %d(g%d) depth %d "
                "atomic %d latency %llu cycles %llu adv %.2f apps %zu "
                "simSeed %llu",
                meshW, meshH, regionsX, regionsY, numClasses, vcsPerClass,
                globalVcsPerClass, vcDepth, atomicVcs ? 1 : 0,
                static_cast<unsigned long long>(linkLatency),
                static_cast<unsigned long long>(sourceCycles),
                adversarialRate, apps.size(),
                static_cast<unsigned long long>(simSeed));
  std::string s = buf;
  for (const auto& a : apps) {
    std::snprintf(buf, sizeof buf,
                  " [app %d rate %.3f i/e/m %.2f/%.2f/%.2f pat %d tgt %d "
                  "cls %d]",
                  static_cast<int>(a.app), a.injectionRate, a.intraFraction,
                  a.interFraction, a.mcFraction,
                  static_cast<int>(a.interPattern),
                  static_cast<int>(a.interTargetApp),
                  static_cast<int>(a.msgClass));
    s += buf;
  }
  if (linkLayer != LinkLayerKind::Ideal) {
    std::snprintf(buf, sizeof buf, " link %s", linkLayerKindName(linkLayer));
    s += buf;
  }
  if (!faults.empty()) {
    std::snprintf(buf, sizeof buf, " faults %zu", faults.size());
    s += buf;
  }
  return s;
}

FuzzCase generateCase(std::uint64_t caseSeed) {
  Xoshiro256StarStar rng(caseSeed);
  FuzzCase c;
  c.meshW = static_cast<int>(2 + rng.below(4));  // 2..5
  c.meshH = static_cast<int>(2 + rng.below(4));
  // Region grid: RegionalizedSource needs at least 2 nodes per region;
  // blockGrid's smallest block spans floor(dim / blocks) nodes per axis.
  // 1x1 always satisfies the bound, so the loop terminates.
  do {
    c.regionsX = static_cast<int>(
        1 + rng.below(static_cast<std::uint64_t>(std::min(c.meshW, 3))));
    c.regionsY = static_cast<int>(
        1 + rng.below(static_cast<std::uint64_t>(std::min(c.meshH, 3))));
  } while ((c.meshW / c.regionsX) * (c.meshH / c.regionsY) < 2);
  c.numClasses = static_cast<int>(1 + rng.below(2));
  // RAIR partitioning needs escape + regional + global, hence >= 3; every
  // case must be valid under every scheme of the matrix.
  c.vcsPerClass = static_cast<int>(3 + rng.below(2));  // 3..4
  c.globalVcsPerClass =
      rng.chance(0.25)
          ? static_cast<int>(1 + rng.below(static_cast<std::uint64_t>(
                                     c.vcsPerClass - 2)))
          : -1;
  c.vcDepth = static_cast<int>(2 + rng.below(5));  // 2..6
  c.atomicVcs = rng.chance(0.5);
  c.linkLatency = 1 + rng.below(2);
  c.sourceCycles = 300 + rng.below(901);  // 300..1200
  c.adversarialRate = rng.chance(0.3) ? 0.1 + 0.4 * rng.real() : 0.0;
  c.simSeed = rng();

  const int numApps = c.regionsX * c.regionsY;
  for (int a = 0; a < numApps; ++a) {
    AppTrafficSpec app;
    app.app = static_cast<AppId>(a);
    // Loads reach well past saturation: the interesting invariant space
    // (full buffers, escape paths, DPA flips) only opens up there.
    app.injectionRate = 0.02 + 0.6 * rng.real();
    double intra = 0.05 + rng.real();
    double inter = rng.real() * 0.8;
    double mc = rng.real() * 0.3;
    const double sum = intra + inter + mc;
    app.intraFraction = intra / sum;
    app.interFraction = inter / sum;
    app.mcFraction = mc / sum;
    app.interPattern = static_cast<PatternKind>(rng.below(4));  // UR/TP/BC/HS
    if (numApps >= 2 && rng.chance(0.25))
      app.interTargetApp = static_cast<AppId>(
          (a + 1 +
           static_cast<int>(
               rng.below(static_cast<std::uint64_t>(numApps - 1)))) %
          numApps);
    if (c.numClasses == 2 && rng.chance(0.3)) app.msgClass = MsgClass::Reply;
    c.apps.push_back(app);
  }
  return c;
}

fault::FaultPlan generateFaultPlan(std::uint64_t caseSeed,
                                   const FuzzCase& c) {
  // Thin wrapper over the shared generator: budget mode, the family
  // chosen by the case's link layer. The derived seed is part of the
  // repro contract -- a case seed regenerates its plan bit-exactly.
  fault::RandomPlanOptions opts;
  opts.meshW = c.meshW;
  opts.meshH = c.meshH;
  opts.numClasses = c.numClasses;
  opts.vcsPerClass = c.vcsPerClass;
  opts.windowBegin = 1;
  opts.windowEnd = c.sourceCycles;
  opts.retxLayer = c.linkLayer == LinkLayerKind::Retx;
  opts.mtbf = 0;
  opts.allowPermanentOutage = true;
  return fault::generateRandomPlan(splitMix64(caseSeed ^ 0xFA017ull), opts);
}

std::vector<SchemeSpec> defaultFuzzSchemes() {
  return {schemeRoRr(), schemeRaRair()};
}

std::vector<SchemeSpec> allFuzzSchemes() {
  return {schemeRoRr(), schemeRoRr(RoutingKind::Xy), schemeRoRank(),
          schemeRaDbar(), schemeRaRair()};
}

FuzzSummary runFuzz(const FuzzOptions& opts, const FuzzProgress& progress) {
  const std::vector<SchemeSpec> schemes =
      opts.schemes.empty() ? defaultFuzzSchemes() : opts.schemes;
  FuzzSummary sum;
  sum.baseSeed = opts.seed;
  int index = 0;
  for (int i = 0; i < opts.scenarios; ++i) {
    const std::uint64_t caseSeed =
        splitMix64(opts.seed + static_cast<std::uint64_t>(i));
    FuzzCase c = generateCase(caseSeed);
    c.linkLayer = opts.linkLayer;
    if (opts.faultPlan) c.faults = generateFaultPlan(caseSeed, c);
    for (const auto& scheme : schemes) {
      FuzzCaseResult res = runCase(c, scheme, opts, caseSeed);
      ++sum.casesRun;
      sum.corruptedTotal += res.corruptedFlits;
      sum.retransmittedTotal += res.retransmittedFlits;
      if (opts.injectFault) {
        if (!res.faultInjected)
          ++sum.faultsSkipped;
        else if (!res.failed())
          ++sum.faultsMissed;
      } else if (res.failed()) {
        ++sum.failures;
        if (opts.shrink)
          res.shrunk = shrinkCase(c, scheme, opts, caseSeed, &res.wasShrunk);
        if (sum.failed.size() < 32) sum.failed.push_back(res);
      }
      if (progress) progress(index, res);
      ++index;
    }
  }
  return sum;
}

std::vector<FuzzCaseResult> runFuzzSeed(std::uint64_t caseSeed,
                                        const FuzzOptions& opts) {
  const std::vector<SchemeSpec> schemes =
      opts.schemes.empty() ? defaultFuzzSchemes() : opts.schemes;
  FuzzCase c = generateCase(caseSeed);
  c.linkLayer = opts.linkLayer;
  if (opts.faultPlan) c.faults = generateFaultPlan(caseSeed, c);
  std::vector<FuzzCaseResult> out;
  for (const auto& scheme : schemes) {
    FuzzCaseResult res = runCase(c, scheme, opts, caseSeed);
    if (!opts.injectFault && res.failed() && opts.shrink)
      res.shrunk = shrinkCase(c, scheme, opts, caseSeed, &res.wasShrunk);
    out.push_back(std::move(res));
  }
  return out;
}

}  // namespace rair::check
