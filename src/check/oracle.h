// The simulation oracle: a machine-checked safety net over the router
// pipeline and network state.
//
// The simulator is a measurement instrument; a silently-corrupted router
// state produces wrong latency numbers, not a crash. The oracle is a pure
// observer that re-derives, from first principles, the invariants the
// paper's correctness claims rest on, and compares them against the live
// network every cycle (or every `period` cycles):
//
//   1. Flit conservation — every flit found anywhere in the network
//      belongs to a live ledger packet, matches its packet's metadata,
//      appears at most once, and the in-network flits of a packet always
//      form a contiguous, monotonically advancing seq window (wormhole
//      ordering: head, bodies, tail, never reordered or duplicated).
//      A live injected packet with no flits anywhere is a lost packet.
//   2. Credit/buffer consistency — for every (link, VC):
//      upstream credits + flits in flight + credits in flight +
//      downstream buffer occupancy == VC depth, exactly. Buffers never
//      exceed depth, credit counters never leave [0, depth].
//   3. VC state-machine legality — input VC states agree with buffer
//      contents and the output-VC ownership bijection; the incremental
//      occupancy/free-VC/pipeline-state counters and bitmasks of the
//      hot path agree with a full recomputation; allocated output VCs
//      keep their owner until freed; with period == 1, state transitions
//      follow IDLE -> ROUTING -> WAITING_VA -> ACTIVE -> IDLE.
//   4. Deadlock detection — a periodic channel-wait-graph scan over
//      definitely-blocked VCs (Active, non-empty, zero credits); any
//      cycle is a genuine credit deadlock, which Duato escape VCs must
//      make impossible.
//   5. Starvation watchdog — no injected packet may stay in the network
//      beyond a configurable age bound; this is the observable form of
//      DPA's negative-feedback starvation-freedom guarantee.
//
// The oracle never mutates simulation state and consumes no randomness, so
// an armed run is bit-identical to an unarmed one. Configure with
// -DRAIR_CHECKS=ON to arm it automatically inside every runScenario();
// with the option off no oracle code is reachable from the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/plan.h"
#include "packet/pool.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace rair::check {

struct OracleOptions {
  /// Cadence of the structural + census scans; 1 = every cycle (fuzzing),
  /// larger amortizes the scan for always-on use. The invariants checked
  /// are persistent (a corruption stays visible), so a coarser period
  /// delays detection but does not lose it — except the exact transition
  /// check, which needs consecutive snapshots and only runs at period 1.
  Cycle period = 1;
  /// Cadence of the channel-wait-graph deadlock scan.
  Cycle deadlockPeriod = 64;
  /// Maximum cycles a packet may spend in the network (injection to
  /// delivery) before the starvation watchdog fails. 0 disables it.
  Cycle maxInNetworkAge = 0;
  /// Stop recording after this many violations (the report notes the
  /// truncation). The first violation is what matters for a repro.
  std::size_t maxViolations = 16;
  /// Abort the process on the first violation (the armed-simulation
  /// contract: fail loudly, like RAIR_CHECK). When false, violations are
  /// collected for the caller — the fuzz driver's mode.
  bool failFast = false;

  /// Defaults for the always-on RAIR_CHECKS build: amortized scans, hard
  /// failure. The age watchdog stays off — legitimate saturation runs
  /// have no universal age bound; the fuzz harness sets one per scenario.
  static OracleOptions armed() {
    OracleOptions o;
    o.period = 16;
    o.deadlockPeriod = 256;
    o.failFast = true;
    return o;
  }
};

struct OracleViolation {
  Cycle cycle = 0;
  std::string what;
};

struct OracleReport {
  std::vector<OracleViolation> violations;
  bool truncated = false;        ///< hit maxViolations; more were suppressed
  std::uint64_t scans = 0;        ///< structural + census scans performed
  std::uint64_t deadlockScans = 0;
  bool ok() const { return violations.empty(); }
  /// First violation (or "ok") as a one-line summary.
  std::string summary() const;
};

/// Pure observer over one Network + packet ledger. Drive it either through
/// Simulator::observers().attach() (the RAIR_CHECKS auto-arm path) or by
/// calling onCycleEnd() manually after each Network::step().
class NetworkOracle final : public SimObserver {
 public:
  NetworkOracle(const Network& net, const PacketPool& ledger,
                OracleOptions options);

  // SimObserver:
  void onCycleEnd(Cycle now) override;
  void onDelivery(const Packet& p) override;

  /// End-of-run checks: one final full scan, plus ledger-vs-network
  /// agreement (a drained ledger requires an empty network).
  void finish(Cycle now);

  /// Cross-validates an external delivery census (the metrics registry's
  /// totals) against the oracle's own independent counts, taken in
  /// onDelivery. Any mismatch — e.g. a corrupted counter cell — is
  /// reported as a violation. Plain integers, so callers need no metrics
  /// dependency.
  void crossValidateTotals(Cycle now, std::uint64_t deliveredPackets,
                           std::uint64_t deliveredFlits);

  const OracleReport& report() const { return report_; }

  /// Forces a full scan now regardless of cadence (tests).
  void scanNow(Cycle now);

  /// Makes the oracle fault-aware: credits deliberately destroyed by
  /// CreditLoss events enter the credit-conservation equations, and the
  /// one-state-per-cycle transition/ownership checks are suppressed on the
  /// exact cycle a topology mutation (purge/reroute) rewired VCs
  /// out-of-band. Every other invariant keeps running unmodified — faults
  /// must degrade the network, never corrupt it. Pass nullptr to detach.
  void attachFaults(const fault::FaultView* faults) { faults_ = faults; }

 private:
  struct SeqWindow {
    std::uint16_t minSeq = 0;
    std::uint16_t maxSeq = 0;
  };
  struct CensusEntry {
    std::uint64_t seqMask = 0;
    int count = 0;
    std::uint16_t pktFlits = 1;
  };

  void violation(Cycle now, std::string what);

  void structuralScan(Cycle now);
  void scanRouter(Cycle now, NodeId n);
  void scanNic(Cycle now, NodeId n);
  void creditEquations(Cycle now, NodeId n);
  void censusScan(Cycle now);
  void deadlockScan(Cycle now);
  void starvationScan(Cycle now);

  const Network* net_;
  const PacketPool* ledger_;
  OracleOptions opt_;
  OracleReport report_;
  const fault::FaultView* faults_ = nullptr;

  // Census scratch + persistent per-packet seq windows (pruned at
  // delivery and lazily when a packet is no longer live).
  std::unordered_map<PacketId, CensusEntry> census_;
  std::unordered_map<PacketId, SeqWindow> windows_;
  std::unordered_set<PacketId> streaming_;  ///< packets mid-injection at a NIC
  std::unordered_set<PacketId> reportedStarved_;

  // Independent delivery census for crossValidateTotals().
  std::uint64_t deliveredPackets_ = 0;
  std::uint64_t deliveredFlits_ = 0;

  // Previous-scan snapshots for transition/ownership checks. Only
  // meaningful when scans run on consecutive cycles (period 1); the
  // prevCycle_ guard makes sparse or repeated scans skip the check.
  bool havePrev_ = false;
  Cycle prevCycle_ = 0;
  std::vector<std::uint8_t> prevState_;  ///< input VC states, flattened
  std::vector<std::int16_t> prevOwner_;  ///< output VC owner flat id; -1 free
};

}  // namespace rair::check
