// Property-based fuzzing of the simulator under the oracle (src/check/).
//
// Each case seed deterministically expands into a small random scenario —
// mesh size, region grid, VC layout and depth, link latency, per-app loads
// deliberately pushed past saturation, optional adversarial flooder — that
// runs to *complete drain* with the oracle armed in collecting mode:
// sources are gated off after a cutoff cycle, then every in-flight packet
// must reach its destination, which turns flit conservation into an
// end-to-end property instead of a sampled one.
//
// A failing case reports its seed (sufficient to regenerate it bit-exactly)
// and is shrunk by re-running mutated variants that keep failing: fewer
// cycles, no flooder, one message class, minimal VCs, unit link latency,
// fewer regions.
//
// The harness can also turn on deliberate fault injection (one credit
// dropped on a random link via Router::debugDropCredit) to prove the oracle
// actually catches corruption — the self-test mode of tools/rair_fuzz.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "fault/plan.h"
#include "link/link_layer.h"
#include "sim/scheme.h"
#include "traffic/generator.h"

namespace rair::check {

/// Fully-expanded parameters of one fuzz case. Value type so the shrinker
/// can mutate copies freely.
struct FuzzCase {
  int meshW = 4;
  int meshH = 4;
  int regionsX = 2;  ///< region block grid (apps = regionsX * regionsY)
  int regionsY = 2;
  int numClasses = 1;
  int vcsPerClass = 3;
  int globalVcsPerClass = -1;
  int vcDepth = 4;
  bool atomicVcs = true;
  Cycle linkLatency = 1;
  /// Link layer every channel is built with. Retx cases pair with
  /// corruption-burst fault plans (generateFaultPlan switches families).
  LinkLayerKind linkLayer = LinkLayerKind::Ideal;
  Cycle sourceCycles = 600;  ///< injection window; sources gate off after
  double adversarialRate = 0.0;
  std::vector<AppTrafficSpec> apps;
  std::uint64_t simSeed = 1;  ///< seed of the traffic RNGs
  /// Fault plan applied during the run (empty = fault-free). Filled by the
  /// harness in fault-plan mode; part of the case so the shrinker can
  /// reduce the fault dimension independently.
  fault::FaultPlan faults;

  /// One-line parameter summary for failure reports.
  std::string describe() const;
};

/// Deterministically expands `caseSeed` into a case; the whole scenario is
/// reproducible from this one value.
FuzzCase generateCase(std::uint64_t caseSeed);

/// Deterministically derives a random fault plan for `c` from the same
/// case seed. Ideal-link cases get link outages (some permanent, possibly
/// partitioning), paired port stalls and injection freezes (always
/// released, so the network can drain), and small credit losses on
/// adaptive VCs (escape VCs keep Duato's liveness argument intact). Retx
/// cases swap the outages for corruption bursts — every corrupt flit is
/// recovered by retransmission, so the plans stay liveness-safe.
fault::FaultPlan generateFaultPlan(std::uint64_t caseSeed, const FuzzCase& c);

struct FuzzOptions {
  std::uint64_t seed = 1;  ///< base seed; case i uses splitmix(seed, i)
  int scenarios = 100;
  /// Scheme matrix every case runs under; empty selects
  /// defaultFuzzSchemes() (RO_RR + RA_RAIR).
  std::vector<SchemeSpec> schemes;
  Cycle period = 1;  ///< oracle structural/census scan cadence
  Cycle deadlockPeriod = 64;
  /// Starvation watchdog bound on in-network age. Generous relative to the
  /// tiny meshes fuzzed here: anything beyond it is a livelock, not load.
  Cycle maxInNetworkAge = 20'000;
  /// Cycles after the injection cutoff before failing to drain is itself a
  /// violation (lost or stuck traffic).
  Cycle drainBudget = 60'000;
  /// Self-test: inject one fault per case — alternating (by case seed)
  /// between dropping a credit and corrupting a metrics counter cell.
  bool injectFault = false;
  /// Attach a random fault plan (generateFaultPlan) to every case and run
  /// it under a fault-aware oracle. Unlike injectFault (deliberate
  /// corruption the oracle must catch), fault-plan runs must stay
  /// violation-free: faults degrade the network, never corrupt it, and
  /// every undelivered packet must land in the droppedByFault bucket.
  bool faultPlan = false;
  bool shrink = true;        ///< shrink failing cases (off in fault mode)
  /// Run every case on the sharded cycle engine with this many threads
  /// (SimConfig::shardThreads); 0 = single-threaded. Outcomes are
  /// byte-identical either way — fuzzing with threads > 1 exercises the
  /// engine's barriers under the oracle (and TSan in CI).
  int shardThreads = 0;
  /// Link layer every generated case is built with (FuzzCase::linkLayer).
  /// With Retx plus faultPlan, plans become corruption bursts.
  LinkLayerKind linkLayer = LinkLayerKind::Ideal;
};

struct FuzzCaseResult {
  std::uint64_t caseSeed = 0;
  std::string scheme;
  bool drained = false;
  bool faultInjected = false;  ///< a fault was actually injected
  /// Fault-mode only: which corruption model this case used — "credit"
  /// (dropped credit) or "counter" (corrupted metrics counter cell).
  std::string faultKind;
  OracleReport report;
  /// Fault-plan mode: packets removed into the accounted drop bucket.
  std::uint64_t droppedByFault = 0;
  /// Retx-layer runs: link-layer fault totals at drain (0 on ideal links).
  std::uint64_t corruptedFlits = 0;
  std::uint64_t retransmittedFlits = 0;
  FuzzCase shrunk;  ///< smallest still-failing variant (== original params
                    ///< when shrinking is off or never reduced)
  bool wasShrunk = false;

  /// A case fails when the oracle saw a violation or traffic never
  /// drained. In fault-injection mode a *passing* self-test is a case that
  /// fails here (the corruption was caught).
  bool failed() const { return !report.ok() || !drained; }
};

struct FuzzSummary {
  std::uint64_t baseSeed = 0;
  int casesRun = 0;  ///< case x scheme executions
  int failures = 0;
  /// Fault-mode only: injections the oracle missed (must stay 0).
  int faultsMissed = 0;
  /// Fault-mode only: cases where no credit could be dropped (idle net).
  int faultsSkipped = 0;
  /// Retx-layer runs: totals over all executions. Deterministic — a
  /// fixed (seed, scenarios, schemes) sweep reproduces these exactly,
  /// under any shard-thread count.
  std::uint64_t corruptedTotal = 0;
  std::uint64_t retransmittedTotal = 0;
  std::vector<FuzzCaseResult> failed;  ///< capped at 32 entries
};

/// Per-execution progress callback (index over case x scheme runs).
using FuzzProgress = std::function<void(int index, const FuzzCaseResult&)>;

/// Runs the full campaign: `scenarios` generated cases, each under every
/// scheme of the matrix.
FuzzSummary runFuzz(const FuzzOptions& opts, const FuzzProgress& progress = {});

/// Reruns one case seed under the full scheme matrix (the repro path).
std::vector<FuzzCaseResult> runFuzzSeed(std::uint64_t caseSeed,
                                        const FuzzOptions& opts);

/// The default scheme matrix: RO_RR and RA_RAIR on local-adaptive routing.
std::vector<SchemeSpec> defaultFuzzSchemes();

/// Wider matrix for exhaustive runs: adds XY routing, RO_Rank and RA_DBAR.
std::vector<SchemeSpec> allFuzzSchemes();

}  // namespace rair::check
