// Dynamic Priority Adaptation (paper Sec. IV.C).
//
// Each router keeps two registers: OVC_n and OVC_f, the number of occupied
// input VCs holding native resp. foreign traffic, counted over ALL input
// ports. The ratio r = OVC_f / OVC_n estimates the relative intensity of
// the two flows: a large r means foreign traffic occupies far more buffer
// resources, i.e. native traffic has comparatively low intensity and (per
// the STC insight) higher criticality, so native should be prioritized.
//
// The priority transitions through a hysteresis band of width Δ to
// tolerate temporal variance of VC occupancy:
//
//   native LOW  -> HIGH  when r > 1 + Δ
//   native HIGH -> LOW   when r < 1 - Δ
//
// The default state gives foreign traffic high priority, reflecting that
// global traffic is usually more performance-critical (RB-3: foreign
// traffic is the low-intensity minority). The negative feedback between
// priority and occupancy is what provides starvation freedom (Sec. IV.D):
// whichever flow over-consumes resources loses priority.
#pragma once

#include "common/types.h"
#include "policy/policy.h"

namespace rair {

/// The DPA hysteresis register pair and comparator of one router.
class DpaState final : public PolicyState {
 public:
  explicit DpaState(double hysteresisDelta) : delta_(hysteresisDelta) {}

  /// Feeds the occupancy snapshot of the previous cycle; advances the
  /// hysteresis state machine.
  void update(const RouterOccupancy& occ);

  /// True when native traffic currently holds the high priority.
  bool nativeHigh() const { return nativeHigh_; }

  /// Last ratio fed to the comparator (for introspection/tests);
  /// +infinity when OVC_n was 0 and OVC_f > 0.
  double lastRatio() const { return lastRatio_; }

  double delta() const { return delta_; }

  /// Number of priority transitions (in either direction) since
  /// construction — the flip count behind Fig. 11/13-style traces.
  std::uint64_t flips() const { return flips_; }

  // Snapshot hooks: the hysteresis registers (delta_ is configuration).
  void save(snapshot::Writer& w) const override;
  void restore(snapshot::Reader& r) override;

 private:
  double delta_;
  bool nativeHigh_ = false;  ///< default: foreign high (paper Sec. IV.C)
  double lastRatio_ = 0.0;
  std::uint64_t flips_ = 0;
};

}  // namespace rair
