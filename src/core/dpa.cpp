#include "core/dpa.h"

#include <limits>

#include "snapshot/buffer.h"

namespace rair {

void DpaState::update(const RouterOccupancy& occ) {
  if (occ.nativeOccupiedVcs == 0 && occ.foreignOccupiedVcs == 0) {
    // No information this cycle; hold the current state.
    return;
  }
  double r;
  if (occ.nativeOccupiedVcs == 0) {
    // Foreign-only occupancy: native intensity is zero, i.e. maximally
    // critical relative to foreign -> ratio is effectively infinite.
    r = std::numeric_limits<double>::infinity();
  } else {
    r = static_cast<double>(occ.foreignOccupiedVcs) /
        static_cast<double>(occ.nativeOccupiedVcs);
  }
  lastRatio_ = r;
  if (!nativeHigh_ && r > 1.0 + delta_) {
    nativeHigh_ = true;
    ++flips_;
  } else if (nativeHigh_ && r < 1.0 - delta_) {
    nativeHigh_ = false;
    ++flips_;
  }
}

void DpaState::save(snapshot::Writer& w) const {
  w.boolean(nativeHigh_);
  w.f64(lastRatio_);
  w.u64(flips_);
}

void DpaState::restore(snapshot::Reader& r) {
  nativeHigh_ = r.boolean();
  lastRatio_ = r.f64();
  flips_ = r.u64();
}

}  // namespace rair
