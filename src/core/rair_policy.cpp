#include "core/rair_policy.h"

namespace rair {

RairPolicy::RairPolicy(RairConfig config) : config_(config) {}

const char* RairPolicy::name() const {
  switch (config_.dpaMode) {
    case DpaMode::NativeHigh: return "RAIR_NativeH";
    case DpaMode::ForeignHigh: return "RAIR_ForeignH";
    case DpaMode::Dynamic: break;
  }
  if (config_.applyAtVa && !config_.applyAtSa) return "RAIR_VA";
  return "RA_RAIR";
}

std::unique_ptr<PolicyState> RairPolicy::makeState() const {
  return std::make_unique<DpaState>(config_.hysteresisDelta);
}

void RairPolicy::updateState(PolicyState* state,
                             const RouterOccupancy& occ) const {
  static_cast<DpaState*>(state)->update(occ);
}

bool RairPolicy::nativeHasHighPriority(const PolicyState* state) const {
  switch (config_.dpaMode) {
    case DpaMode::NativeHigh: return true;
    case DpaMode::ForeignHigh: return false;
    case DpaMode::Dynamic:
      return static_cast<const DpaState*>(state)->nativeHigh();
  }
  return false;
}

std::uint64_t RairPolicy::priority(ArbStage stage, const ArbCandidate& cand,
                                   const PolicyState* state) const {
  if (stage == ArbStage::VaOut) {
    if (!config_.applyAtVa) return 0;
    if (cand.outVcClass == VcClass::Global) {
      // VC regionalization: global VCs always favor foreign traffic.
      return cand.native ? 0 : 1;
    }
    // Regional (and escape) output VCs follow the DPA decision.
  } else {
    if (!config_.applyAtSa) return 0;
  }
  const bool nativeHigh = nativeHasHighPriority(state);
  return (cand.native == nativeHigh) ? 1 : 0;
}

}  // namespace rair
