// RAIR: Region-Aware Interference Reduction (paper Sec. IV).
//
// This policy composes the paper's three mechanisms:
//
//  1. VC regionalization — the VcLayout tags adaptive VCs Regional or
//     Global. At VA output arbitration, an output VC tagged Global always
//     favors foreign traffic over native traffic (global traffic is the
//     critical, low-intensity minority); an output VC tagged Regional (or
//     the escape VC) follows the DPA decision.
//
//  2. Multi-stage prioritization (MSP) — the same region-aware rule is
//     enforced at VA_out, SA_in and SA_out. The `applyAtVa` / `applyAtSa`
//     switches reproduce the paper's RAIR_VA vs RAIR_VA+SA ablation
//     (Fig. 9). VA input arbitration is untouched (no inter-flow
//     contention there). A consistent priority — the one DPA computed in
//     the previous cycle — is used in all stages of a given cycle.
//
//  3. Dynamic priority adaptation (DPA) — see core/dpa.h. The NativeHigh /
//     ForeignHigh modes reproduce the Fig. 12 ablation.
//
// Within the same priority level (e.g. among multiple foreign flows from
// different applications) the arbiter's round-robin tie-break applies —
// exactly the paper's "simple fair arbitration within the foreign traffic".
#pragma once

#include "core/dpa.h"
#include "core/rair_config.h"
#include "policy/policy.h"

namespace rair {

class RairPolicy final : public ArbiterPolicy {
 public:
  explicit RairPolicy(RairConfig config = {});

  const char* name() const override;

  std::unique_ptr<PolicyState> makeState() const override;
  void updateState(PolicyState* state,
                   const RouterOccupancy& occ) const override;
  std::uint64_t priority(ArbStage stage, const ArbCandidate& cand,
                         const PolicyState* state) const override;

  const RairConfig& config() const { return config_; }

 private:
  /// Whether native traffic holds high priority under the configured mode.
  bool nativeHasHighPriority(const PolicyState* state) const;

  RairConfig config_;
};

}  // namespace rair
