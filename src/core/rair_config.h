// Configuration of the RAIR technique.
#pragma once

#include <cstdint>

namespace rair {

/// How the relative priority between native and foreign traffic is chosen
/// (paper Sec. IV.C / Sec. V.D ablation).
enum class DpaMode : std::uint8_t {
  Dynamic,      ///< full DPA: hysteresis on OVC_f / OVC_n (the proposal)
  NativeHigh,   ///< ablation: native traffic always high priority
  ForeignHigh,  ///< ablation: foreign traffic always high priority
};

/// Tunables of the RAIR technique. Defaults follow the paper.
struct RairConfig {
  DpaMode dpaMode = DpaMode::Dynamic;

  /// Multi-stage prioritization: stages at which the region-aware rules
  /// are enforced (Sec. V.B evaluates VA-only against VA+SA).
  bool applyAtVa = true;
  bool applyAtSa = true;

  /// Hysteresis width Δ of the DPA priority transition (Sec. IV.C: values
  /// in 0.1–0.3 work well; best around 0.2).
  double hysteresisDelta = 0.2;
};

}  // namespace rair
