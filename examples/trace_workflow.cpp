// Trace-driven workflow: capture once, replay anywhere.
//
// The paper's application experiments are trace-driven (traffic captured
// from a full-system simulation, then replayed through the network
// simulator). This example demonstrates the equivalent workflow with the
// synthetic PARSEC-like models:
//
//   1. run the fluidanimate model once and capture its packets to a
//      trace file (./fluidanimate.trace by default),
//   2. reload the file and replay the identical packet stream under both
//      RO_RR and RA_RAIR, printing the APL each achieves.
//
// Because the replayed injections are bit-identical, any APL difference
// is attributable to the interference-reduction scheme alone.
//
// Usage: trace_workflow [traceFile]
#include <cstdio>

#include "core/rair_policy.h"
#include "scenarios/parsec_scenario.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace rair;
  const std::string path =
      argc > 1 ? argv[1] : std::string("fluidanimate.trace");

  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::quadrants(mesh);

  SimConfig cfg;
  cfg.warmupCycles = 1'000;
  cfg.measureCycles = 15'000;
  cfg.net.numClasses = 2;  // request/reply classes (Table 1)

  // --- 1. Capture ---------------------------------------------------------
  {
    RoundRobinPolicy policy;
    Simulator sim(mesh, regions, cfg, policy, 4);
    auto capture = std::make_unique<TraceCapture>(
        std::make_unique<ParsecSource>(
            mesh, regions, /*app=*/0,
            parsecProfile(ParsecBenchmark::Fluidanimate), /*seed=*/2024));
    TraceCapture* handle = capture.get();
    sim.addSource(std::move(capture));
    sim.run();
    writeTraceFile(path, handle->records());
    std::printf("captured %zu packets to %s\n", handle->records().size(),
                path.c_str());
  }

  // --- 2. Replay under each scheme ----------------------------------------
  const auto records = readTraceFile(path);
  for (const SchemeSpec& scheme : {schemeRoRr(), schemeRaRair()}) {
    SimConfig runCfg = cfg;
    runCfg.routing = scheme.routing;
    runCfg.net.rairPartition = scheme.needsRairPartition();
    const auto policy = makePolicy(scheme, {0.1});
    Simulator sim(mesh, regions, runCfg, *policy, 4);
    sim.addSource(std::make_unique<TraceReplaySource>(records));
    const auto result = sim.run();
    std::printf("%-8s replayed %llu packets, APL = %.2f cycles\n",
                scheme.label.c_str(),
                static_cast<unsigned long long>(result.packetsDelivered),
                result.stats.appApl(0));
  }
  return 0;
}
