// Regional behaviors of RNoC (paper Sec. II), demonstrated empirically.
//
// This example quantifies the four regional behaviors (RB-1..RB-4) that
// motivate RAIR, and the cost of the restricted alternative (LBDR):
//
//  RB-1/RB-2  multiple applications, each clustered into a region
//             (the six-region layout of Fig. 13);
//  RB-3       the majority of traffic is intra-region — printed as the
//             measured intra/inter split and the resulting mean hop
//             counts (global traffic travels much further);
//  RB-4       heterogeneous per-region intensity — printed per app;
//  LBDR       the fraction of application-to-core mappings a restricted
//             technique would allow (paper's ~14% example), versus RAIR
//             which allows all of them.
#include <cstdio>

#include "region/lbdr.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "stats/report.h"

int main() {
  using namespace rair;
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::sixRegions(mesh);

  std::printf("RB-1/RB-2: %d applications clustered into regions:\n",
              regions.numApps());
  for (AppId a = 0; a < regions.numApps(); ++a)
    std::printf("  app %d: %zu cores\n", a, regions.nodesOf(a).size());

  // Differentiated loads (RB-4): apps 1 and 5 hot.
  const std::vector<double> rates = {0.03, 0.20, 0.04, 0.05, 0.08, 0.20};
  const auto apps = scenarios::sixAppMixed(PatternKind::UniformRandom, rates);

  SimConfig cfg;
  cfg.warmupCycles = 1'000;
  cfg.measureCycles = 10'000;

  // Instrument the run to split intra- vs inter-region traffic.
  const auto scheme = schemeRoRr();
  const auto policy = makePolicy(scheme, rates);
  Simulator sim(mesh, regions, cfg, *policy, 6);
  struct RegionSplit final : SimObserver {
    const Mesh* mesh = nullptr;
    const RegionMap* regions = nullptr;
    std::uint64_t intraPkts = 0, interPkts = 0;
    double intraLat = 0, interLat = 0, intraHops = 0, interHops = 0;
    void onDelivery(const Packet& p) override {
      if (!mesh->contains(p.src)) return;
      const bool intra = regions->sameRegion(p.src, p.dst);
      (intra ? intraPkts : interPkts)++;
      (intra ? intraLat : interLat) += static_cast<double>(p.totalLatency());
      (intra ? intraHops : interHops) += p.hops;
    }
  } split;
  split.mesh = &mesh;
  split.regions = &regions;
  sim.observers().attach(&split);
  std::uint64_t seed = 1;
  for (const auto& a : apps) {
    sim.addSource(std::make_unique<RegionalizedSource>(mesh, regions, a, seed));
    seed += 101;
  }
  const auto result = sim.run();

  const double total = static_cast<double>(split.intraPkts + split.interPkts);
  std::printf("\nRB-3: intra-region traffic %.1f%%, inter-region %.1f%%\n",
              100.0 * split.intraPkts / total, 100.0 * split.interPkts / total);
  std::printf("  intra: mean %.1f cycles over %.1f hops\n",
              split.intraLat / split.intraPkts, split.intraHops / split.intraPkts);
  std::printf("  inter: mean %.1f cycles over %.1f hops  <- the critical, "
              "long-range minority\n",
              split.interLat / split.interPkts, split.interHops / split.interPkts);

  std::printf("\nRB-4: per-application APL (heterogeneous load):\n");
  for (AppId a = 0; a < 6; ++a)
    std::printf("  app %d at %.2f flits/cycle/node -> APL %.1f\n", a,
                rates[static_cast<size_t>(a)], result.stats.appApl(a));

  std::printf("\nRestricted techniques (LBDR) would require every region "
              "to contain a memory controller:\n");
  std::printf("  this six-region mapping valid under LBDR? %s\n",
              lbdrMappingValid(regions, mesh.cornerNodes()) ? "yes" : "no");
  std::printf("  fraction of 16-core/4-MC/4-app mappings LBDR allows: "
              "%.1f%% (paper: ~14%%)\n",
              100.0 * lbdrValidMappingFraction(16, 4, 4, 4));
  std::printf("  RAIR places no restriction: 100%%.\n");
  return 0;
}
