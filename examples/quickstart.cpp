// Quickstart: the smallest end-to-end use of the library.
//
// Builds an 8x8 mesh NoC whose halves host two applications — one light,
// one heavy, with most of the light application's packets crossing into
// the heavy half — and compares the round-robin baseline against RAIR.
//
//   $ ./quickstart
//   scheme   APL App0  APL App1  ...
//
// This is the Fig. 8 setup of the paper at fixed loads; see
// bench/fig09_msp for the fully calibrated sweep.
#include <cstdio>

#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "stats/report.h"

int main() {
  using namespace rair;

  // 1. Topology and application placement: 64 nodes, two half-chip
  //    regions. The region map tags every router with its application.
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);

  // 2. Workload: App 0 injects 0.04 flits/cycle/node and sends 80% of its
  //    packets into App 1's region; App 1 runs hot (0.26) but stays local.
  const auto apps = scenarios::twoAppInterRegion(/*p=*/0.8,
                                                 /*app0Rate=*/0.04,
                                                 /*app1Rate=*/0.26);

  // 3. Run both schemes and print the comparison. The fast windows shrink
  //    the paper's 10K warmup / 100K measured 5x so the example runs in
  //    about a second.
  TextTable table({"scheme", "APL App0", "APL App1", "mean APL"});
  ScenarioResult baseline;
  for (const SchemeSpec& scheme : {schemeRoRr(), schemeRaRair()}) {
    const ScenarioResult r = runScenario(ScenarioSpec(mesh, regions)
                                             .withScheme(scheme)
                                             .withApps(apps)
                                             .withFastWindows());
    if (scheme.policy == PolicyKind::RoundRobin) baseline = r;
    const auto row = table.addRow();
    table.set(row, 0, scheme.label);
    table.setNum(row, 1, r.appApl[0]);
    table.setNum(row, 2, r.appApl[1]);
    table.setNum(row, 3, r.meanApl);
    if (scheme.policy == PolicyKind::Rair) {
      std::printf("RAIR changes App 0's latency by %s and App 1's by %s\n",
                  formatPct(-r.reductionVs(baseline, 0)).c_str(),
                  formatPct(-r.reductionVs(baseline, 1)).c_str());
    }
  }
  std::puts(table.toString().c_str());
  return 0;
}
