// VM protection under adversarial traffic (the paper's Fig. 16/17 story).
//
// Four PARSEC-like applications — blackscholes, swaptions, fluidanimate,
// raytrace — run in the quadrants of an 8x8 mesh with request/reply cache
// traffic (Table 1 timings). A malicious or buggy agent then floods the
// chip with uniform traffic. The example prints each application's APL
// slowdown under RO_RR and RA_RAIR: round-robin lets the flood degrade
// everyone, while RAIR classifies the flood as foreign traffic in every
// region and dynamically deprioritizes it.
//
// Usage: vm_protection [floodRate]
//   floodRate: adversarial load in flits/cycle/node (default 0.22).
#include <cstdio>
#include <cstdlib>

#include "scenarios/parsec_scenario.h"
#include "stats/report.h"

int main(int argc, char** argv) {
  using namespace rair;
  const double floodRate = argc > 1 ? std::atof(argv[1]) : 0.22;

  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::quadrants(mesh);
  const auto benchmarks = scenarios::fig16Benchmarks();

  SimConfig cfg;
  cfg.warmupCycles = 2'000;
  cfg.measureCycles = 20'000;

  std::printf("Adversarial flood: %.2f flits/cycle/node, chip-wide uniform "
              "random\n\n",
              floodRate);

  TextTable table({"scheme", "blackscholes", "swaptions", "fluidanimate",
                   "raytrace", "mean slowdown"});
  for (const SchemeSpec& scheme : {schemeRoRr(), schemeRaRair()}) {
    scenarios::ParsecScenarioOptions clean, attacked;
    attacked.adversarialRate = floodRate;
    const auto base = scenarios::runParsecScenario(mesh, regions, cfg,
                                                   scheme, benchmarks, clean);
    const auto atk = scenarios::runParsecScenario(
        mesh, regions, cfg, scheme, benchmarks, attacked);

    const auto row = table.addRow();
    table.set(row, 0, scheme.label);
    double sum = 0;
    for (std::size_t a = 0; a < benchmarks.size(); ++a) {
      const double slowdown = atk.appApl[a] / base.appApl[a];
      table.setNum(row, 1 + a, slowdown);
      sum += slowdown;
    }
    table.setNum(row, 5, sum / static_cast<double>(benchmarks.size()));
  }
  std::puts(table.toString().c_str());
  std::printf("The paper reports mean slowdowns of 1.92x (RO_RR) vs 1.18x "
              "(RA_RAIR) at its flood rate; the ordering is the claim.\n");
  return 0;
}
