// Six-application RNoC interference study (the paper's Fig. 13 scenario).
//
// Usage: six_app_study [pattern]
//   pattern: UR (default), TP, BC or HS — the synthetic pattern followed
//   by the 20% inter-region global traffic component.
//
// Runs all four interference-reduction schemes (RO_RR, RA_DBAR, RO_Rank,
// RA_RAIR) on six concurrently running applications with differentiated
// loads and prints per-application APLs and reductions — the data behind
// Figs. 14 and 15 at fixed (uncalibrated) loads. Use bench/fig14_sixapp
// for the saturation-calibrated reproduction.
#include <cstdio>
#include <cstring>

#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "stats/report.h"

namespace {

rair::PatternKind parsePattern(const char* arg) {
  using rair::PatternKind;
  if (std::strcmp(arg, "TP") == 0) return PatternKind::Transpose;
  if (std::strcmp(arg, "BC") == 0) return PatternKind::BitComplement;
  if (std::strcmp(arg, "HS") == 0) return PatternKind::Hotspot;
  return PatternKind::UniformRandom;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rair;
  const PatternKind pattern =
      argc > 1 ? parsePattern(argv[1]) : PatternKind::UniformRandom;

  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::sixRegions(mesh);

  // Differentiated loads, apps 1 and 5 hot (flits/cycle/node).
  const std::vector<double> rates = {0.03, 0.22, 0.04, 0.05, 0.08, 0.22};
  const auto apps = scenarios::sixAppMixed(pattern, rates);

  std::printf("Six-app RNoC study, global traffic pattern = %s\n\n",
              std::string(patternName(pattern)).c_str());

  TextTable table({"scheme", "App0", "App1", "App2", "App3", "App4",
                   "App5", "mean", "vs RO_RR"});
  ScenarioResult baseline;
  for (const SchemeSpec& scheme :
       {schemeRoRr(), schemeRaDbar(), schemeRoRank(), schemeRaRair()}) {
    const auto r = runScenario(ScenarioSpec(mesh, regions)
                                   .withScheme(scheme)
                                   .withApps(apps)
                                   .withFastWindows());
    if (scheme.label == "RO_RR") baseline = r;
    const auto row = table.addRow();
    table.set(row, 0, scheme.label);
    for (AppId a = 0; a < 6; ++a)
      table.setNum(row, 1 + static_cast<std::size_t>(a),
                   r.appApl[static_cast<size_t>(a)], 1);
    table.setNum(row, 7, r.meanApl, 1);
    table.setPct(row, 8, r.meanReductionVs(baseline));
  }
  std::puts(table.toString().c_str());
  std::printf("Expected ordering (paper Fig. 14): RA_RAIR > RO_Rank > "
              "RA_DBAR > RO_RR.\n");
  return 0;
}
