// Ablation: DPA hysteresis width Δ.
//
// Paper Sec. IV.C: "values of Δ between 0.1~0.3 typically render better
// performance with the best case achieved at around 0.2". We sweep Δ over
// the Fig. 12 scenarios (where DPA transitions actually fire) and report
// the mean APL of the full RAIR scheme.
#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
const RegionMap& regions() {
  static RegionMap rm = RegionMap::quadrants(mesh());
  return rm;
}

double quadSaturation() {
  return ResultStore::instance().value("quadSat", [] {
    AppTrafficSpec shape;
    shape.app = 0;
    return appSaturationRate(mesh(), regions(), shape, paperSatOptions());
  });
}

const std::vector<double>& deltas() {
  static std::vector<double> ds = {0.0, 0.05, 0.1, 0.2, 0.3, 0.5};
  return ds;
}

std::vector<AppTrafficSpec> workload(char scen) {
  const double sat = quadSaturation();
  const double low = scenarios::kLowLoadFraction * sat;
  const double high = scenarios::kHighLoadFraction * sat;
  return scen == 'a' ? scenarios::fourAppLowTowardHigh(low, high)
                     : scenarios::fourAppHighTowardLow(low, high);
}

const ScenarioResult& cell(double delta, char scen) {
  const std::string key =
      "d" + formatNum(delta, 2) + "/" + scen;
  return ResultStore::instance().scenario(key, [&, delta, scen] {
    SchemeSpec s = schemeRaRair();
    s.rair.hysteresisDelta = delta;
    return runScenario(ScenarioSpec(mesh(), regions())
                           .withConfig(paperSimConfig())
                           .withScheme(s)
                           .withApps(workload(scen)));
  });
}

void printTable() {
  std::printf("\n=== Ablation: DPA hysteresis width Δ (RAIR mean APL on "
              "the Fig. 12 scenarios; lower is better) ===\n\n");
  TextTable t({"Δ", "mean APL (a)", "mean APL (b)", "combined"});
  for (double d : deltas()) {
    const auto& ra = cell(d, 'a');
    const auto& rb = cell(d, 'b');
    const auto row = t.addRow();
    t.setNum(row, 0, d, 2);
    t.setNum(row, 1, ra.meanApl);
    t.setNum(row, 2, rb.meanApl);
    t.setNum(row, 3, (ra.meanApl + rb.meanApl) / 2.0);
  }
  std::puts(t.toString().c_str());
  std::printf("Paper reference: Δ in [0.1, 0.3] works well, best around "
              "0.2.\n");
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair;
  using namespace rair::bench;
  for (double d : deltas()) {
    for (char scen : {'a', 'b'}) {
      benchmark::RegisterBenchmark(
          ("abl_hysteresis/delta=" + formatNum(d, 2) + "/" + scen).c_str(),
          [d, scen](benchmark::State& st) {
            for (auto _ : st) setAplCounters(st, cell(d, scen));
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return runBenchMain(argc, argv, printTable);
}
