// Substrate validation: latency-vs-load curves for the four synthetic
// patterns of Sec. V.A (uniform random, transpose, bit complement,
// hotspot) on the 8x8 mesh, plus the measured saturation knee of each.
//
// Not a paper figure — this is the standard sanity check (Dally & Towles
// ch. 23) that the cycle-accurate substrate behaves like an on-chip
// network: flat low-load latency near the zero-load bound, a sharp knee,
// and the expected pattern ordering (BC saturates earliest — every packet
// crosses the bisection; HS collapses onto four hot nodes).
#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
// A single chip-wide "region" (conventional NoC: one region, Sec. II.A).
const RegionMap& regions() {
  static RegionMap rm = RegionMap::blockGrid(mesh(), 1, 1);
  return rm;
}

const std::vector<PatternKind>& patterns() {
  static std::vector<PatternKind> ps = {
      PatternKind::UniformRandom, PatternKind::Transpose,
      PatternKind::BitComplement, PatternKind::Hotspot};
  return ps;
}

const std::vector<double>& rates() {
  static std::vector<double> rs = {0.02, 0.05, 0.10, 0.15,
                                   0.20, 0.25, 0.30, 0.35};
  return rs;
}

AppTrafficSpec shapeFor(PatternKind pat) {
  AppTrafficSpec s;
  s.app = 0;
  s.intraFraction = 0.0;
  s.interFraction = 1.0;  // chip-wide pattern traffic
  s.interPattern = pat;
  return s;
}

double cell(PatternKind pat, double rate) {
  const std::string key =
      std::string(patternName(pat)) + "/" + formatNum(rate, 3);
  return ResultStore::instance().value(key, [pat, rate] {
    SimConfig cfg = paperSimConfig();
    cfg.drainLimit = 60'000;  // saturated points need not fully drain
    AppTrafficSpec s = shapeFor(pat);
    s.injectionRate = rate;
    const auto r = runScenario(ScenarioSpec(mesh(), regions())
                                   .withConfig(cfg)
                                   .withScheme(schemeRoRr())
                                   .withApps({s}));
    return r.run.fullyDrained ? r.appApl[0] : -1.0;  // -1: saturated
  });
}

double knee(PatternKind pat) {
  const std::string key = std::string(patternName(pat)) + "/knee";
  return ResultStore::instance().value(key, [pat] {
    return appSaturationRate(mesh(), regions(), shapeFor(pat),
                             paperSatOptions());
  });
}

void printTable() {
  std::printf("\n=== Substrate check: APL vs offered load per synthetic "
              "pattern ('sat' = run did not drain) ===\n\n");
  std::vector<std::string> headers = {"rate"};
  for (PatternKind p : patterns()) headers.emplace_back(patternName(p));
  TextTable t(std::move(headers));
  for (double rate : rates()) {
    const auto row = t.addRow();
    t.setNum(row, 0, rate, 2);
    for (std::size_t i = 0; i < patterns().size(); ++i) {
      const double apl = cell(patterns()[i], rate);
      t.set(row, 1 + i, apl < 0 ? "sat" : formatNum(apl, 1));
    }
  }
  std::puts(t.toString().c_str());
  std::printf("Measured saturation knees (flits/cycle/node): ");
  for (PatternKind p : patterns())
    std::printf("%s=%.3f  ", std::string(patternName(p)).c_str(), knee(p));
  std::printf("\nExpected ordering: HS << BC < TP < UR.\n");
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair;
  using namespace rair::bench;
  for (PatternKind pat : patterns()) {
    for (double rate : rates()) {
      benchmark::RegisterBenchmark(
          ("abl_saturation/" + std::string(patternName(pat)) +
           "/rate=" + formatNum(rate, 2)).c_str(),
          [pat, rate](benchmark::State& st) {
            for (auto _ : st) {
              const double apl = cell(pat, rate);
              st.counters["apl"] = apl < 0 ? -1 : apl;
            }
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return runBenchMain(argc, argv, printTable);
}
