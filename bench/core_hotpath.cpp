// Core hot-path microbenchmark: raw simulated-cycles/sec and
// flit-hops/sec of the warm per-cycle loop (NIC tick + router pipeline +
// congestion propagation), with no scenario termination logic in the way.
//
// This is the repo's performance baseline: CI runs it in Release mode and
// tools/perf_check.py fails the build on a large regression against the
// checked-in BENCH_core_hotpath.json (see EXPERIMENTS.md, "Performance
// baseline"). Regenerate the baseline on intentional perf changes with:
//
//   ./build/bench/core_hotpath --benchmark_format=json \
//       --benchmark_out=BENCH_core_hotpath.json
//
// The workload is the fig09 p=100 cell shape (App 0 fully inter-region at
// 10% of half-mesh saturation, App 1 local) with App 1 swept across the
// load regimes that dominate campaign wall time: low (10% of saturation),
// knee (85%) and past saturation (110%).
#include <benchmark/benchmark.h>

#include <memory>
#include <optional>
#include <vector>

#include "metrics/recorder.h"
#include "routing/tables.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"

namespace rair {
namespace {

/// Calibrated half-mesh saturation of the fig09 campaign (the
/// "halves/halfSat" record); hard-coded so the benchmark starts instantly
/// and the workload is identical on every machine.
constexpr double kHalfSat = 0.38195418397913583;

constexpr Cycle kWarmupCycles = 5'000;
constexpr Cycle kCyclesPerIteration = 10'000;

/// Knobs beyond the scheme/load shape; defaults reproduce the classic
/// 8x8 single-threaded loop.
struct HotLoopOptions {
  int meshDim = 8;        ///< square mesh side (8 or 16)
  int shardThreads = 0;   ///< 0 = legacy engine; n >= 1 = sharded engine
  bool withMetrics = false;
  bool withSnapshotHook = false;
  LinkLayerKind linkLayer = LinkLayerKind::Ideal;
};

/// A warm, endlessly injectable simulation: measurement windows are
/// irrelevant here, so they are pushed out far enough that sources and
/// stats behave identically for the whole benchmark run.
struct HotLoop {
  Mesh mesh;
  RegionMap regions;
  std::unique_ptr<ArbiterPolicy> policy;
  std::unique_ptr<Simulator> sim;
  std::optional<metrics::MetricsRecorder> recorder;

  HotLoop(const SchemeSpec& scheme, double app1Fraction,
          HotLoopOptions opts = {})
      : mesh(opts.meshDim, opts.meshDim), regions(RegionMap::halves(mesh)) {
    const auto apps = scenarios::twoAppInterRegion(
        /*p=*/1.0, scenarios::kLowLoadFraction * kHalfSat,
        app1Fraction * kHalfSat);

    SimConfig cfg = ScenarioSpec::windowPreset(/*fast=*/true);
    cfg.measureCycles = 1'000'000'000;  // never stop admitting packets
    cfg.routing = scheme.routing;
    cfg.net.rairPartition = scheme.needsRairPartition();
    cfg.shardThreads = opts.shardThreads;
    cfg.net.linkLayer = opts.linkLayer;

    std::vector<double> intensities;
    for (const auto& a : apps) intensities.push_back(a.injectionRate);
    policy = makePolicy(scheme, intensities);
    sim = std::make_unique<Simulator>(mesh, regions, cfg, *policy, 2);
    std::uint64_t seed = 1;
    for (const auto& a : apps) {
      sim->addSource(
          std::make_unique<RegionalizedSource>(mesh, regions, a, seed));
      seed += 0x9E3779B9ull;
    }
    if (opts.withMetrics) {
      // The default-level recorder, exactly as runScenario() attaches it;
      // the *_metrics benchmark variants measure its per-cycle overhead
      // (tools/perf_check.py --paired-suffix guards it in CI).
      metrics::MetricsOptions mo;  // Counters level, no sinks
      recorder.emplace(sim->network(), regions, mo, /*numApps=*/2,
                       kWarmupCycles);
      sim->observers().attach(&*recorder);
    }
    if (opts.withSnapshotHook) {
      // An installed hook that never fires (save point at kNeverCycle, no
      // periodic interval): the *_snapshot variants measure the armed
      // per-cycle snapshot predicate, the only cost runScenario pays when
      // warm caching or checkpointing is requested but no save is due.
      sim->setSnapshotHook([](const Simulator&, Cycle) {}, kNeverCycle,
                           /*every=*/0);
    }
    sim->begin();
    for (Cycle c = 0; c < kWarmupCycles; ++c) sim->stepCycle();
  }
};

void BM_hotpath(benchmark::State& st, const SchemeSpec& scheme,
                double app1Fraction, HotLoopOptions opts = {}) {
  HotLoop loop(scheme, app1Fraction, opts);
  const std::uint64_t hops0 = loop.sim->network().totalFlitsTraversed();
  std::uint64_t cycles = 0;
  for (auto _ : st) {
    for (Cycle c = 0; c < kCyclesPerIteration; ++c) loop.sim->stepCycle();
    cycles += kCyclesPerIteration;
  }
  const std::uint64_t hops =
      loop.sim->network().totalFlitsTraversed() - hops0;
  st.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  st.counters["flit_hops_per_sec"] = benchmark::Counter(
      static_cast<double>(hops), benchmark::Counter::kIsRate);
  st.counters["in_flight"] =
      static_cast<double>(loop.sim->inFlight());
}

#define RAIR_HOTPATH_BENCH(name, scheme, fraction)               \
  BENCHMARK_CAPTURE(BM_hotpath, name, scheme, fraction)          \
      ->Unit(benchmark::kMillisecond)

RAIR_HOTPATH_BENCH(ro_rr_low, schemeRoRr(), 0.10);
RAIR_HOTPATH_BENCH(ro_rr_knee, schemeRoRr(), 0.85);
RAIR_HOTPATH_BENCH(ro_rr_saturated, schemeRoRr(), 1.10);
RAIR_HOTPATH_BENCH(ra_rair_low, schemeRaRair(), 0.10);
RAIR_HOTPATH_BENCH(ra_rair_knee, schemeRaRair(), 0.85);
RAIR_HOTPATH_BENCH(ra_rair_saturated, schemeRaRair(), 1.10);

// Same knee workloads with the default-level metrics recorder attached:
// the "_metrics" suffix pairs each with its bare twin so perf_check.py
// can bound the instrumentation overhead (<= 2% on cycles_per_sec).
BENCHMARK_CAPTURE(BM_hotpath, ro_rr_knee_metrics, schemeRoRr(), 0.85,
                  HotLoopOptions{.withMetrics = true})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_hotpath, ra_rair_knee_metrics, schemeRaRair(), 0.85,
                  HotLoopOptions{.withMetrics = true})
    ->Unit(benchmark::kMillisecond);

// Same knee workloads with a snapshot hook installed but never firing:
// the "_snapshot" suffix pairs each with its bare twin so perf_check.py
// can bound the armed snapshot predicate overhead (<= 2%).
BENCHMARK_CAPTURE(BM_hotpath, ro_rr_knee_snapshot, schemeRoRr(), 0.85,
                  HotLoopOptions{.withSnapshotHook = true})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_hotpath, ra_rair_knee_snapshot, schemeRaRair(), 0.85,
                  HotLoopOptions{.withSnapshotHook = true})
    ->Unit(benchmark::kMillisecond);

// Same knee workloads on the retransmitting link layer with zero
// corruption ("_retx0" pairs with the bare twin): fault-free retx is the
// genuinely modeled protocol with no recovery ever firing — sequence
// tagging, replay-buffer push/retire, cumulative-ACK bookkeeping and the
// per-link per-cycle pump. That work is inherent to the model, so the
// perf_check.py paired bound holds it near its measured cost (<= 35%)
// rather than pretending it is free; the ideal layer is the one that
// must stay at pre-refactor speed (guarded by the checked-in baseline).
BENCHMARK_CAPTURE(BM_hotpath, ro_rr_knee_retx0, schemeRoRr(), 0.85,
                  HotLoopOptions{.linkLayer = LinkLayerKind::Retx})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_hotpath, ra_rair_knee_retx0, schemeRaRair(), 0.85,
                  HotLoopOptions{.linkLayer = LinkLayerKind::Retx})
    ->Unit(benchmark::kMillisecond);

// 16x16 mesh (256 nodes), the workload size where intra-run parallelism
// pays: the bare cell, its 1-shard sharded twin ("_sharded1" pairs with
// the bare name so perf_check.py bounds the engine's staging overhead at
// <= 3%), and the thread sweep. Speedup at t8 depends on physical cores;
// BENCH_core_hotpath.json records the machine it was generated on.
BENCHMARK_CAPTURE(BM_hotpath, ra_rair_knee16, schemeRaRair(), 0.85,
                  HotLoopOptions{.meshDim = 16})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_hotpath, ra_rair_knee16_sharded1, schemeRaRair(), 0.85,
                  HotLoopOptions{.meshDim = 16, .shardThreads = 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_hotpath, ra_rair_knee16_t2, schemeRaRair(), 0.85,
                  HotLoopOptions{.meshDim = 16, .shardThreads = 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_hotpath, ra_rair_knee16_t4, schemeRaRair(), 0.85,
                  HotLoopOptions{.meshDim = 16, .shardThreads = 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_hotpath, ra_rair_knee16_t8, schemeRaRair(), 0.85,
                  HotLoopOptions{.meshDim = 16, .shardThreads = 8})
    ->Unit(benchmark::kMillisecond);

// Topology-event (reconfiguration) cost: the per-event price of repairing
// the routing tables after a link flap, measured on a 32x32 mesh
// pre-partitioned into 16 disjoint 8x8 regions (every inter-region
// channel dead). An intra-region flap then dirties exactly one 64-node
// component, the shape where incremental repair pays: the bare twin
// rebuilds all 1024 nodes per event, "_inc" repairs only the affected
// region. These report events_per_sec instead of cycles_per_sec — the
// per-cycle passes above skip them — and perf_check.py's
// "--metric events_per_sec --paired-suffix _inc:-4.0" pass fails the
// build unless the incremental engine beats the full rebuild by >= 5x.
void BM_topoChurn(benchmark::State& st, bool incremental) {
  Mesh mesh(32, 32);
  RoutingTables tables(mesh);
  for (NodeId v = 0; v < mesh.numNodes(); ++v) {
    const Coord c = mesh.coordOf(v);
    if (c.x % 8 == 7 && mesh.neighbor(v, Dir::East))
      tables.setLinkDead(v, Dir::East, true);
    if (c.y % 8 == 7 && mesh.neighbor(v, Dir::South))
      tables.setLinkDead(v, Dir::South, true);
  }
  tables.recompute();

  const bool saved = RoutingTables::forceFullRebuildForTest;
  RoutingTables::forceFullRebuildForTest = !incremental;
  const NodeId flap = mesh.nodeAt({3, 3});  // interior of region (0, 0)
  std::uint64_t events = 0;
  for (auto _ : st) {
    // Kill + revive the same channel: two topology events per iteration,
    // table state identical at every iteration boundary.
    tables.setLinkDead(flap, Dir::East, true);
    tables.commit();
    tables.setLinkDead(flap, Dir::East, false);
    tables.commit();
    events += 2;
    benchmark::DoNotOptimize(tables.unreachablePairs());
  }
  RoutingTables::forceFullRebuildForTest = saved;
  st.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_topoChurn, topo_churn32, /*incremental=*/false)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_topoChurn, topo_churn32_inc, /*incremental=*/true)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rair

BENCHMARK_MAIN();
