// Reproduces Fig. 10: impact of the routing algorithm.
//
// Same two-application workload as Fig. 9, comparing RO_RR and RAIR on
// local-adaptive routing against the same pair on DBAR routing. Paper
// reference at p = 100%: RAIR_DBAR beats RO_RR_Local by 24.8% (App 0) and
// 3.3% (App 1), and beats RO_RR_DBAR by 12.8% on App 0 with only 1.8%
// App 1 degradation.
#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
const RegionMap& regions() {
  static RegionMap rm = RegionMap::halves(mesh());
  return rm;
}

double halfSaturation() {
  return ResultStore::instance().value("halfSat", [] {
    AppTrafficSpec shape;
    shape.app = 0;
    return appSaturationRate(mesh(), regions(), shape, paperSatOptions());
  });
}

const std::vector<int>& pSweep() {
  static std::vector<int> ps = {0, 25, 50, 75, 100};
  return ps;
}

std::vector<SchemeSpec> schemes() {
  SchemeSpec rrLocal = schemeRoRr();
  rrLocal.label = "RO_RR_Local";
  SchemeSpec rairLocal = schemeRaRair();
  rairLocal.label = "RAIR_Local";
  return {rrLocal, rairLocal, schemeRoRr(RoutingKind::Dbar),
          schemeRaRair(RoutingKind::Dbar)};
}

const ScenarioResult& cell(const SchemeSpec& scheme, int p) {
  const std::string key = scheme.label + "/p" + std::to_string(p);
  return ResultStore::instance().scenario(key, [&, p] {
    const double sat = halfSaturation();
    const auto apps = scenarios::twoAppInterRegion(
        p / 100.0, scenarios::kLowLoadFraction * sat,
        scenarios::kHighLoadFraction * sat);
    return runScenario(ScenarioSpec(mesh(), regions())
                           .withConfig(paperSimConfig())
                           .withScheme(scheme)
                           .withApps(apps));
  });
}

void printTable() {
  std::printf("\n=== Fig. 10: APL vs inter-region fraction p under "
              "local-adaptive vs DBAR routing ===\n\n");
  TextTable t({"p", "scheme", "APL App0", "APL App1",
               "dApp0 vs RO_RR_Local", "dApp1 vs RO_RR_Local"});
  const auto all = schemes();
  for (int p : pSweep()) {
    const auto& base = cell(all[0], p);
    for (const auto& s : all) {
      const auto& r = cell(s, p);
      const auto row = t.addRow();
      t.set(row, 0, std::to_string(p) + "%");
      t.set(row, 1, s.label);
      t.setNum(row, 2, r.appApl[0]);
      t.setNum(row, 3, r.appApl[1]);
      t.setPct(row, 4, r.reductionVs(base, 0));
      t.setPct(row, 5, r.reductionVs(base, 1));
    }
  }
  std::puts(t.toString().c_str());

  const auto& rrL = cell(all[0], 100);
  const auto& rrD = cell(all[2], 100);
  const auto& raD = cell(all[3], 100);
  std::printf(
      "Paper reference at p=100%%: RAIR_DBAR vs RO_RR_Local: -24.8%% App0, "
      "-3.3%% App1 (measured %s / %s); vs RO_RR_DBAR: -12.8%% App0, +1.8%% "
      "App1 (measured %s / %s).\n",
      formatPct(-raD.reductionVs(rrL, 0)).c_str(),
      formatPct(-raD.reductionVs(rrL, 1)).c_str(),
      formatPct(-raD.reductionVs(rrD, 0)).c_str(),
      formatPct(-raD.reductionVs(rrD, 1)).c_str());
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (const auto& s : schemes()) {
    for (int p : pSweep()) {
      benchmark::RegisterBenchmark(
          ("fig10/" + s.label + "/p=" + std::to_string(p)).c_str(),
          [s, p](benchmark::State& st) {
            for (auto _ : st) setAplCounters(st, cell(s, p));
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return runBenchMain(argc, argv, printTable);
}
