// Reproduces Fig. 14: the generic six-application RNoC scenario (Fig. 13)
// under uniform-random global traffic.
//
// Six regions with differentiated loads (apps 1 and 5 high, the rest
// 10-30% of saturation); each app's traffic is 75% intra-region UR, 20%
// inter-region global, 5% to/from the corner memory controllers. Paper
// reference: mean APL reduction vs RO_RR is ~3.4% for RA_DBAR, ~5.8% for
// RO_Rank, and ~10.1% for RA_RAIR.
#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
const RegionMap& regions() {
  static RegionMap rm = RegionMap::sixRegions(mesh());
  return rm;
}

/// Per-app loads: each app's saturation measured on the full 75/20/5
/// shape, with the two high-load apps (1 and 5) calibrated jointly in
/// context (see scenarios::calibrateLoads).
std::vector<double> resolvedRates() {
  static std::vector<double> rates = [] {
    const std::vector<double> dummy(6, 0.0);
    const auto shapes =
        scenarios::sixAppMixed(PatternKind::UniformRandom, dummy);
    return scenarios::calibrateLoads(mesh(), regions(), shapes,
                                     scenarios::sixAppLoadFractions(),
                                     paperSatOptions());
  }();
  return rates;
}

std::vector<SchemeSpec> schemes() {
  return {schemeRoRr(), schemeRaDbar(), schemeRoRank(), schemeRaRair()};
}

const ScenarioResult& cell(const SchemeSpec& scheme) {
  return ResultStore::instance().scenario(scheme.label, [&] {
    const auto rates = resolvedRates();
    const auto apps =
        scenarios::sixAppMixed(PatternKind::UniformRandom, rates);
    return runScenario(ScenarioSpec(mesh(), regions())
                           .withConfig(paperSimConfig())
                           .withScheme(scheme)
                           .withApps(apps));
  });
}

void printTable() {
  std::printf("\n=== Fig. 14: APL reduction vs RO_RR, six-app scenario, "
              "uniform-random global traffic ===\n");
  std::printf("resolved loads (flits/cycle/node):");
  for (double r : resolvedRates()) std::printf(" %.3f", r);
  std::printf("\n\n");
  const auto& base = cell(schemeRoRr());
  TextTable t({"scheme", "App0", "App1", "App2", "App3", "App4", "App5",
               "mean"});
  for (const auto& s : schemes()) {
    if (s.policy == PolicyKind::RoundRobin &&
        s.routing != RoutingKind::Dbar && s.label == "RO_RR")
      continue;
    const auto& r = cell(s);
    const auto row = t.addRow();
    t.set(row, 0, s.label);
    for (AppId a = 0; a < 6; ++a)
      t.setPct(row, 1 + static_cast<std::size_t>(a),
               r.reductionVs(base, a));
    t.setPct(row, 7, r.meanReductionVs(base));
  }
  std::puts(t.toString().c_str());
  std::printf("Paper reference (mean): RA_DBAR +3.4%%, RO_Rank +5.8%%, "
              "RA_RAIR +10.1%% (reductions).\n");
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (const auto& s : schemes()) {
    benchmark::RegisterBenchmark(
        ("fig14/" + s.label).c_str(),
        [s](benchmark::State& st) {
          for (auto _ : st) setAplCounters(st, cell(s));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return runBenchMain(argc, argv, printTable);
}
