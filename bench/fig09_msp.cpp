// Reproduces Fig. 9: impact of multi-stage prioritization.
//
// Two applications on the mesh halves (Fig. 8): App 0 at 10% of its
// saturation load with an inter-region fraction p of its traffic entering
// App 1's half; App 1 at 90% of saturation, purely intra-regional. Sweep
// p in {0, 25, 50, 75, 100}% and compare RO_RR against RAIR with MSP at VA
// only and at VA+SA. Paper reference: at p = 100%, RAIR_VA+SA cuts App 0's
// APL by 18.9% with < 3% increase for App 1.
//
// The scheme x p grid lives in the built-in "fig09" campaign (shared with
// tools/rair_campaign): the bench registers one google-benchmark per
// campaign cell so the framework attributes wall time per cell, while the
// campaign layer supplies memoized execution and the paper-style table.
#include "bench_common.h"
#include "campaign/runner.h"

namespace rair::bench {
namespace {

campaign::LazyCampaign& fig09() {
  static campaign::BuildContext ctx = campaign::defaultBuildContext(fastMode());
  static campaign::LazyCampaign lazy(
      campaign::buildBuiltinCampaign("fig09", ctx));
  return lazy;
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (const auto& cell : fig09().spec().cells) {
    benchmark::RegisterBenchmark(
        ("fig09/" + cell.key).c_str(),
        [key = cell.key](benchmark::State& st) {
          for (auto _ : st) setAplCounters(st, fig09().cell(key));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return runBenchMain(argc, argv, [] {
    std::fputs(fig09().tables().c_str(), stdout);
  });
}
