// Reproduces Fig. 9: impact of multi-stage prioritization.
//
// Two applications on the mesh halves (Fig. 8): App 0 at 10% of its
// saturation load with an inter-region fraction p of its traffic entering
// App 1's half; App 1 at 90% of saturation, purely intra-regional. Sweep
// p in {0, 25, 50, 75, 100}% and compare RO_RR against RAIR with MSP at VA
// only and at VA+SA. Paper reference: at p = 100%, RAIR_VA+SA cuts App 0's
// APL by 18.9% with < 3% increase for App 1.
#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
const RegionMap& regions() {
  static RegionMap rm = RegionMap::halves(mesh());
  return rm;
}

/// Saturation of a half-chip app running intra-region uniform traffic —
/// the reference load for the whole sweep (both halves are congruent).
double halfSaturation() {
  return ResultStore::instance().value("halfSat", [] {
    AppTrafficSpec shape;
    shape.app = 0;
    return appSaturationRate(mesh(), regions(), shape, paperSatOptions());
  });
}

const std::vector<int>& pSweep() {
  static std::vector<int> ps = {0, 25, 50, 75, 100};
  return ps;
}

std::vector<SchemeSpec> schemes() {
  return {schemeRoRr(), schemeRairVaOnly(), schemeRaRair()};
}

const ScenarioResult& cell(const SchemeSpec& scheme, int p) {
  const std::string key = scheme.label + "/p" + std::to_string(p);
  return ResultStore::instance().scenario(key, [&, p] {
    const double sat = halfSaturation();
    const auto apps = scenarios::twoAppInterRegion(
        p / 100.0, scenarios::kLowLoadFraction * sat,
        scenarios::kHighLoadFraction * sat);
    return runScenario(mesh(), regions(), paperSimConfig(), scheme, apps);
  });
}

void benchCell(benchmark::State& st, const SchemeSpec& scheme, int p) {
  for (auto _ : st) {
    const auto& r = cell(scheme, p);
    setAplCounters(st, r);
  }
}

void printTable() {
  std::printf("\n=== Fig. 9: average packet latency vs inter-region "
              "fraction p (MSP impact) ===\n");
  std::printf("App 0: 10%% of saturation (sat = %.3f flits/cycle/node); "
              "App 1: high load (%.0f%% of the knee; see "
              "scenarios::kHighLoadFraction)\n\n",
              halfSaturation(), scenarios::kHighLoadFraction * 100);
  TextTable t({"p", "scheme", "APL App0", "APL App1", "dAPL App0 vs RO_RR",
               "dAPL App1 vs RO_RR"});
  for (int p : pSweep()) {
    const auto& base = cell(schemeRoRr(), p);
    for (const auto& s : schemes()) {
      const auto& r = cell(s, p);
      const auto row = t.addRow();
      t.set(row, 0, std::to_string(p) + "%");
      t.set(row, 1, s.label);
      t.setNum(row, 2, r.appApl[0]);
      t.setNum(row, 3, r.appApl[1]);
      t.setPct(row, 4, r.reductionVs(base, 0));
      t.setPct(row, 5, r.reductionVs(base, 1));
    }
  }
  std::puts(t.toString().c_str());
  const auto& base100 = cell(schemeRoRr(), 100);
  const auto& vasa100 = cell(schemeRaRair(), 100);
  std::printf("Paper reference at p=100%%: RAIR_VA+SA -18.9%% App0, "
              "< +3%% App1. Measured: %s App0, %s App1.\n",
              formatPct(-vasa100.reductionVs(base100, 0)).c_str(),
              formatPct(-vasa100.reductionVs(base100, 1)).c_str());
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (const auto& s : schemes()) {
    for (int p : pSweep()) {
      benchmark::RegisterBenchmark(
          ("fig09/" + s.label + "/p=" + std::to_string(p)).c_str(),
          [s, p](benchmark::State& st) { benchCell(st, s, p); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return runBenchMain(argc, argv, printTable);
}
