// Shared infrastructure for the figure-reproduction benchmarks.
//
// Each bench binary registers one google-benchmark per scenario cell
// (scheme x workload point), runs each cell exactly once (a cell is a full
// cycle-accurate simulation; wall time is reported by the framework and
// APLs as user counters), then prints the corresponding paper-style table
// after the benchmark run.
//
// Benches whose grids exist as built-in campaigns (campaign/builtin.h)
// drive a campaign::LazyCampaign instead of defining cells locally, so
// the CLI (tools/rair_campaign) and the bench share one grid definition.
//
// Environment knobs:
//   RAIR_BENCH_FAST=1  shrink windows (2K warmup / 20K measured instead of
//                      the paper's 10K / 100K) for quick smoke runs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "campaign/builtin.h"
#include "scenarios/paper_scenarios.h"
#include "sim/saturation.h"
#include "sim/scenario.h"
#include "stats/report.h"

namespace rair::bench {

inline bool fastMode() { return std::getenv("RAIR_BENCH_FAST") != nullptr; }

/// Simulation windows per the paper (Sec. V.A: 10K warmup, 100K measured).
inline SimConfig paperSimConfig() {
  return campaign::paperSimConfig(fastMode());
}

/// Shorter windows for saturation calibration (knee finding).
inline SaturationOptions paperSatOptions() {
  return campaign::paperSatOptions(fastMode());
}

/// Memoizes scenario results so the post-run table printer reuses what the
/// benchmark cells computed (and calibration values are computed once).
/// Thread-safe; a miss computes `fn` under the lock, so concurrent misses
/// serialize (map nodes are stable, so returned references stay valid).
class ResultStore {
 public:
  const ScenarioResult& scenario(
      const std::string& key, const std::function<ScenarioResult()>& fn) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = scenarios_.find(key);
    if (it == scenarios_.end())
      it = scenarios_.emplace(key, fn()).first;
    return it->second;
  }

  double value(const std::string& key, const std::function<double()>& fn) {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(key);
    if (it == values_.end()) it = values_.emplace(key, fn()).first;
    return it->second;
  }

  static ResultStore& instance() {
    static ResultStore store;
    return store;
  }

 private:
  std::mutex mu_;
  std::map<std::string, ScenarioResult> scenarios_;
  std::map<std::string, double> values_;
};

/// Exposes per-app APLs as benchmark counters.
inline void setAplCounters(benchmark::State& st, const ScenarioResult& r) {
  for (std::size_t a = 0; a < r.appApl.size(); ++a) {
    st.counters["apl_app" + std::to_string(a)] = r.appApl[a];
  }
  st.counters["apl_mean"] = r.meanApl;
  st.counters["drained"] = r.run.fullyDrained ? 1 : 0;
}

/// Same, for a campaign cell record.
inline void setAplCounters(benchmark::State& st,
                           const campaign::CellRecord& r) {
  for (std::size_t a = 0; a < r.appApl.size(); ++a) {
    st.counters["apl_app" + std::to_string(a)] = r.appApl[a];
  }
  st.counters["apl_mean"] = r.meanApl;
  st.counters["drained"] = r.drained() ? 1 : 0;
}

/// Boilerplate main: run the registered benchmarks, then the table hook.
inline int runBenchMain(int argc, char** argv,
                        const std::function<void()>& printTables) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printTables();
  return 0;
}

}  // namespace rair::bench
