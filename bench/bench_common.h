// Shared infrastructure for the figure-reproduction benchmarks.
//
// Each bench binary registers one google-benchmark per scenario cell
// (scheme x workload point), runs each cell exactly once (a cell is a full
// cycle-accurate simulation; wall time is reported by the framework and
// APLs as user counters), then prints the corresponding paper-style table
// after the benchmark run.
//
// Environment knobs:
//   RAIR_BENCH_FAST=1  shrink windows (2K warmup / 20K measured instead of
//                      the paper's 10K / 100K) for quick smoke runs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <string>

#include "scenarios/paper_scenarios.h"
#include "sim/saturation.h"
#include "sim/scenario.h"
#include "stats/report.h"

namespace rair::bench {

inline bool fastMode() { return std::getenv("RAIR_BENCH_FAST") != nullptr; }

/// Simulation windows per the paper (Sec. V.A: 10K warmup, 100K measured).
inline SimConfig paperSimConfig() {
  SimConfig cfg;
  if (fastMode()) {
    cfg.warmupCycles = 2'000;
    cfg.measureCycles = 20'000;
  } else {
    cfg.warmupCycles = 10'000;
    cfg.measureCycles = 100'000;
  }
  cfg.drainLimit = 500'000;
  return cfg;
}

/// Shorter windows for saturation calibration (knee finding).
inline SaturationOptions paperSatOptions() {
  SaturationOptions o;
  if (fastMode()) {
    o.warmupCycles = 1'000;
    o.measureCycles = 5'000;
    o.drainLimit = 15'000;
    o.bisectIters = 4;
  } else {
    o.warmupCycles = 2'000;
    o.measureCycles = 10'000;
    o.drainLimit = 30'000;
    o.bisectIters = 6;
  }
  return o;
}

/// Memoizes scenario results so the post-run table printer reuses what the
/// benchmark cells computed (and calibration values are computed once).
class ResultStore {
 public:
  const ScenarioResult& scenario(
      const std::string& key, const std::function<ScenarioResult()>& fn) {
    auto it = scenarios_.find(key);
    if (it == scenarios_.end())
      it = scenarios_.emplace(key, fn()).first;
    return it->second;
  }

  double value(const std::string& key, const std::function<double()>& fn) {
    auto it = values_.find(key);
    if (it == values_.end()) it = values_.emplace(key, fn()).first;
    return it->second;
  }

  static ResultStore& instance() {
    static ResultStore store;
    return store;
  }

 private:
  std::map<std::string, ScenarioResult> scenarios_;
  std::map<std::string, double> values_;
};

/// Exposes per-app APLs as benchmark counters.
inline void setAplCounters(benchmark::State& st, const ScenarioResult& r) {
  for (std::size_t a = 0; a < r.appApl.size(); ++a) {
    st.counters["apl_app" + std::to_string(a)] = r.appApl[a];
  }
  st.counters["apl_mean"] = r.meanApl;
  st.counters["drained"] = r.run.fullyDrained ? 1 : 0;
}

/// Boilerplate main: run the registered benchmarks, then the table hook.
inline int runBenchMain(int argc, char** argv,
                        const std::function<void()>& printTables) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printTables();
  return 0;
}

}  // namespace rair::bench
