// Reproduces Fig. 12: impact of dynamic priority adaptation.
//
// Two contrasting four-application quadrant scenarios (Fig. 11):
//   (a) Apps 0-2 low load with 30% inter-region traffic toward App 3's
//       region; App 3 high load, intra-only. Prioritizing foreign traffic
//       is right here.
//   (b) Apps 0-2 low load, intra-only; App 3 high load with 30%
//       inter-region traffic spread over the others. Prioritizing native
//       traffic is right here.
// Static NativeH/ForeignH each win one scenario and lose the other; DPA
// must match the winner in both (paper: ~12.8% / ~12.2% mean reduction).
#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
const RegionMap& regions() {
  static RegionMap rm = RegionMap::quadrants(mesh());
  return rm;
}

std::vector<SchemeSpec> schemes() {
  return {schemeRoRr(), schemeRairNativeHigh(), schemeRairForeignHigh(),
          schemeRaRair()};
}

/// Loads resolved per app on its true traffic shape, with the high-load
/// App 3 calibrated in context (see scenarios::calibrateLoads).
std::vector<AppTrafficSpec> workload(char scen) {
  auto shapes = scen == 'a' ? scenarios::fourAppLowTowardHigh(0, 0)
                            : scenarios::fourAppHighTowardLow(0, 0);
  static std::map<char, std::vector<double>> cache;
  auto it = cache.find(scen);
  if (it == cache.end()) {
    const std::array<double, 4> fractions = {
        scenarios::kLowLoadFraction, scenarios::kLowLoadFraction,
        scenarios::kLowLoadFraction, scenarios::kHighLoadFraction};
    it = cache
             .emplace(scen, scenarios::calibrateLoads(mesh(), regions(),
                                                      shapes, fractions,
                                                      paperSatOptions()))
             .first;
  }
  for (AppId a = 0; a < 4; ++a)
    shapes[static_cast<size_t>(a)].injectionRate =
        it->second[static_cast<size_t>(a)];
  return shapes;
}

const ScenarioResult& cell(const SchemeSpec& scheme, char scen) {
  const std::string key = scheme.label + "/" + scen;
  return ResultStore::instance().scenario(key, [&, scen] {
    return runScenario(ScenarioSpec(mesh(), regions())
                           .withConfig(paperSimConfig())
                           .withScheme(scheme)
                           .withApps(workload(scen)));
  });
}

void printTable() {
  for (char scen : {'a', 'b'}) {
    std::printf("\n=== Fig. 12(%c): APL reduction vs RO_RR ===\n\n", scen);
    const auto& base = cell(schemeRoRr(), scen);
    TextTable t({"scheme", "App0", "App1", "App2", "App3", "mean"});
    for (const auto& s : schemes()) {
      if (s.policy == PolicyKind::RoundRobin) continue;
      const auto& r = cell(s, scen);
      const auto row = t.addRow();
      t.set(row, 0, s.label);
      double sum = 0;
      for (AppId a = 0; a < 4; ++a) {
        const double red = r.reductionVs(base, a);
        t.setPct(row, 1 + static_cast<std::size_t>(a), red);
        sum += red;
      }
      t.setPct(row, 5, sum / 4.0);
    }
    std::puts(t.toString().c_str());
  }
  std::printf("Paper reference: RAIR_ForeignH wins (a), RAIR_NativeH wins "
              "(b); RAIR (DPA) reduces mean APL by ~12.8%% in (a) and "
              "~12.2%% in (b), matching the better static choice in "
              "both.\n");
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (const auto& s : schemes()) {
    for (char scen : {'a', 'b'}) {
      benchmark::RegisterBenchmark(
          ("fig12/" + s.label + "/scenario=" + scen).c_str(),
          [s, scen](benchmark::State& st) {
            for (auto _ : st) setAplCounters(st, cell(s, scen));
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return runBenchMain(argc, argv, printTable);
}
