// Reproduces Fig. 17: APL slowdown of PARSEC workloads under adversarial
// traffic.
//
// Four PARSEC-like applications run in the mesh quadrants (Fig. 16) with
// Table 1's two-class VC organization and request/reply cache traffic. A
// malicious/buggy agent floods the chip with uniform global traffic; the
// paper uses 0.4 flits/cycle/node, which is ~80% of its network's
// saturation throughput — we flood at the same *fraction* of our
// substrate's measured chip-wide UR saturation. Reported metric: each
// application's APL slowdown relative to its no-attack APL under the same
// scheme. Paper reference (mean slowdown): RO_RR 1.92x, RA_DBAR 1.75x,
// RO_Rank 1.47x, RA_RAIR 1.18x.
#include <limits>

#include "bench_common.h"
#include "scenarios/parsec_scenario.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
const RegionMap& regions() {
  static RegionMap rm = RegionMap::quadrants(mesh());
  return rm;
}

/// Mean flit load the PARSEC workloads themselves put on the chip: each
/// request moves 1 + 5 flits end to end.
double parsecFlitLoad() {
  double sum = 0;
  for (const auto b : scenarios::fig16Benchmarks())
    sum += parsecProfile(b).requestRate * 6.0;
  return sum / static_cast<double>(scenarios::fig16Benchmarks().size());
}

/// The paper floods at 0.4 flits/cycle/node while the PARSEC apps add a
/// small load on a ~0.5-capacity network — i.e. the flood consumes ~80%
/// of the *headroom* left by the applications. We measure our substrate's
/// chip-wide UR saturation and apply the same proportion (an absolute 0.4
/// would oversaturate this smaller-buffered network and every scheme
/// would degenerate into unbounded queueing).
double attackRate() {
  return ResultStore::instance().value("attackRate", [] {
    auto aplAtRate = [&](double rate) {
      SimConfig cfg;
      const auto so = paperSatOptions();
      cfg.warmupCycles = so.warmupCycles;
      cfg.measureCycles = so.measureCycles;
      cfg.drainLimit = so.drainLimit;
      std::vector<AppTrafficSpec> idle(4);
      for (AppId a = 0; a < 4; ++a) idle[static_cast<size_t>(a)].app = a;
      const auto r = runScenario(ScenarioSpec(mesh(), regions())
                                     .withConfig(cfg)
                                     .withScheme(schemeRoRr())
                                     .withApps(std::move(idle))
                                     .withAdversarialRate(rate));
      if (!r.run.fullyDrained)
        return std::numeric_limits<double>::infinity();
      return r.appApl[4];
    };
    const double sat = findSaturationRate(aplAtRate, paperSatOptions());
    return 0.95 * std::max(0.05, sat - parsecFlitLoad());
  });
}

std::vector<SchemeSpec> schemes() {
  return {schemeRoRr(), schemeRaDbar(), schemeRoRank(), schemeRaRair()};
}

const ScenarioResult& cell(const SchemeSpec& scheme, bool attacked) {
  const std::string key =
      scheme.label + (attacked ? "/attack" : "/base");
  return ResultStore::instance().scenario(key, [&, attacked] {
    scenarios::ParsecScenarioOptions opts;
    if (attacked) opts.adversarialRate = attackRate();
    return scenarios::runParsecScenario(mesh(), regions(), paperSimConfig(),
                                        scheme, scenarios::fig16Benchmarks(),
                                        opts);
  });
}

void printTable() {
  std::printf("\n=== Fig. 17: APL slowdown under adversarial traffic "
              "(flood = %.3f flits/cycle/node = 95%% of the headroom left "
              "by the PARSEC load; the paper's 0.4 is the same proportion "
              "of its larger network capacity) ===\n\n",
              attackRate());
  TextTable t({"scheme", "blackscholes", "swaptions", "fluidanimate",
               "raytrace", "mean slowdown"});
  for (const auto& s : schemes()) {
    const auto& base = cell(s, false);
    const auto& atk = cell(s, true);
    const auto row = t.addRow();
    t.set(row, 0, s.label);
    double sum = 0;
    for (AppId a = 0; a < 4; ++a) {
      const double slow = atk.appApl[static_cast<size_t>(a)] /
                          base.appApl[static_cast<size_t>(a)];
      t.setNum(row, 1 + static_cast<std::size_t>(a), slow);
      sum += slow;
    }
    t.setNum(row, 5, sum / 4.0);
  }
  std::puts(t.toString().c_str());
  std::printf("Paper reference (mean slowdown): RO_RR 1.92, RA_DBAR 1.75, "
              "RO_Rank 1.47, RA_RAIR 1.18.\n");
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (const auto& s : schemes()) {
    for (bool attacked : {false, true}) {
      benchmark::RegisterBenchmark(
          ("fig17/" + s.label + (attacked ? "/attack" : "/base")).c_str(),
          [s, attacked](benchmark::State& st) {
            for (auto _ : st) setAplCounters(st, cell(s, attacked));
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return runBenchMain(argc, argv, printTable);
}
