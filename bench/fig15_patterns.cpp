// Reproduces Fig. 15: mean APL reduction for different synthetic global
// traffic patterns (UR, TP, BC, HS) in the six-application scenario.
//
// Identical to Fig. 14 except the 20% inter-region component follows the
// swept pattern. Paper reference: RA_RAIR averages a 13.4% reduction over
// all patterns and remains the best scheme under each of them (RAIR
// places no implicit restriction on the global traffic pattern).
#include <map>

#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
const RegionMap& regions() {
  static RegionMap rm = RegionMap::sixRegions(mesh());
  return rm;
}

const std::vector<PatternKind>& patterns() {
  static std::vector<PatternKind> ps = {
      PatternKind::UniformRandom, PatternKind::Transpose,
      PatternKind::BitComplement, PatternKind::Hotspot};
  return ps;
}

/// Loads are calibrated per pattern: saturation depends strongly on the
/// global component's shape (bit-complement crosses the bisection with
/// every global packet; hotspot funnels into four nodes), so the paper's
/// "x% of saturation" levels resolve to different absolute rates under
/// each pattern. High-load apps are calibrated in context; see
/// scenarios::calibrateLoads.
std::vector<double> resolvedRates(PatternKind pat) {
  static std::map<PatternKind, std::vector<double>> cache;
  auto it = cache.find(pat);
  if (it == cache.end()) {
    const std::vector<double> dummy(6, 0.0);
    const auto shapes = scenarios::sixAppMixed(pat, dummy);
    it = cache
             .emplace(pat, scenarios::calibrateLoads(
                               mesh(), regions(), shapes,
                               scenarios::sixAppLoadFractions(),
                               paperSatOptions()))
             .first;
  }
  return it->second;
}

std::vector<SchemeSpec> schemes() {
  return {schemeRoRr(), schemeRaDbar(), schemeRoRank(), schemeRaRair()};
}

const ScenarioResult& cell(const SchemeSpec& scheme, PatternKind pat) {
  const std::string key =
      scheme.label + "/" + std::string(patternName(pat));
  return ResultStore::instance().scenario(key, [&, pat] {
    const auto apps = scenarios::sixAppMixed(pat, resolvedRates(pat));
    return runScenario(ScenarioSpec(mesh(), regions())
                           .withConfig(paperSimConfig())
                           .withScheme(scheme)
                           .withApps(apps));
  });
}

void printTable() {
  std::printf("\n=== Fig. 15: mean APL reduction vs RO_RR per global "
              "traffic pattern ===\n\n");
  TextTable t({"scheme", "UR", "TP", "BC", "HS", "avg"});
  for (const auto& s : schemes()) {
    if (s.label == "RO_RR") continue;
    const auto row = t.addRow();
    t.set(row, 0, s.label);
    double sum = 0;
    for (std::size_t i = 0; i < patterns().size(); ++i) {
      const auto& base = cell(schemeRoRr(), patterns()[i]);
      const double red = cell(s, patterns()[i]).meanReductionVs(base);
      t.setPct(row, 1 + i, red);
      sum += red;
    }
    t.setPct(row, 5, sum / static_cast<double>(patterns().size()));
  }
  std::puts(t.toString().c_str());
  std::printf("Paper reference: RA_RAIR averages ~13.4%% reduction across "
              "patterns and is the best scheme under every pattern.\n");
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair;
  using namespace rair::bench;
  for (const auto& s : schemes()) {
    for (PatternKind pat : patterns()) {
      benchmark::RegisterBenchmark(
          ("fig15/" + s.label + "/" + std::string(patternName(pat))).c_str(),
          [s, pat](benchmark::State& st) {
            for (auto _ : st) setAplCounters(st, cell(s, pat));
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return runBenchMain(argc, argv, printTable);
}
