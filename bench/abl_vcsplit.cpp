// Ablation: regional vs global VC split.
//
// Paper Sec. VI ("Number of Regional and Global VCs"): skewing the split
// either way weakens one side's ability to be accelerated, so the counts
// are configured "roughly the same". With 5 VCs per class (1 escape + 4
// adaptive) we sweep the number of Global VCs from 1 to 3 and report the
// RAIR mean APL and its reduction vs RO_RR on the six-app scenario.
#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}
const RegionMap& regions() {
  static RegionMap rm = RegionMap::sixRegions(mesh());
  return rm;
}

std::vector<AppTrafficSpec> workload() {
  static std::vector<double> rates = [] {
    const std::vector<double> dummy(6, 0.0);
    const auto shapes =
        scenarios::sixAppMixed(PatternKind::UniformRandom, dummy);
    return scenarios::calibrateLoads(mesh(), regions(), shapes,
                                     scenarios::sixAppLoadFractions(),
                                     paperSatOptions());
  }();
  return scenarios::sixAppMixed(PatternKind::UniformRandom, rates);
}

const std::vector<int>& splits() {
  static std::vector<int> gs = {1, 2, 3};  // of 4 adaptive VCs per class
  return gs;
}

const ScenarioResult& baseline() {
  return ResultStore::instance().scenario("RO_RR", [] {
    return runScenario(ScenarioSpec(mesh(), regions())
                           .withConfig(paperSimConfig())
                           .withScheme(schemeRoRr())
                           .withApps(workload()));
  });
}

const ScenarioResult& cell(int globalVcs) {
  const std::string key = "g" + std::to_string(globalVcs);
  return ResultStore::instance().scenario(key, [globalVcs] {
    SimConfig cfg = paperSimConfig();
    cfg.net.globalVcsPerClass = globalVcs;
    return runScenario(ScenarioSpec(mesh(), regions())
                           .withConfig(cfg)
                           .withScheme(schemeRaRair())
                           .withApps(workload()));
  });
}

void printTable() {
  std::printf("\n=== Ablation: regional:global VC split (5 VCs/class = 1 "
              "escape + 4 adaptive; six-app UR scenario) ===\n\n");
  TextTable t({"regional:global", "RAIR mean APL", "reduction vs RO_RR"});
  for (int g : splits()) {
    const auto& r = cell(g);
    const auto row = t.addRow();
    t.set(row, 0, std::to_string(4 - g) + ":" + std::to_string(g));
    t.setNum(row, 1, r.meanApl);
    t.setPct(row, 2, r.meanReductionVs(baseline()));
  }
  std::puts(t.toString().c_str());
  std::printf("Paper reference: a roughly equal split (2:2) supports "
              "generic traffic best.\n");
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (int g : splits()) {
    benchmark::RegisterBenchmark(
        ("abl_vcsplit/global=" + std::to_string(g)).c_str(),
        [g](benchmark::State& st) {
          for (auto _ : st) setAplCounters(st, cell(g));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return runBenchMain(argc, argv, printTable);
}
