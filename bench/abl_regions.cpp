// Ablation: region-count scaling (Sec. V.A evaluates 2, 4 and 6 regions;
// Sec. VI argues per-router overhead is independent of the region count
// because only two-flow state is kept).
//
// For each region count we run the regionalized mixed workload (75% intra
// / 20% inter / 5% MC) with the first region loaded high and the rest
// low, and report RAIR's mean APL reduction vs RO_RR.
#include "bench_common.h"

namespace rair::bench {
namespace {

const Mesh& mesh() {
  static Mesh m(8, 8);
  return m;
}

const RegionMap& regionsFor(int count) {
  static RegionMap two = RegionMap::halves(mesh());
  static RegionMap four = RegionMap::quadrants(mesh());
  static RegionMap six = RegionMap::sixRegions(mesh());
  switch (count) {
    case 2: return two;
    case 4: return four;
    default: return six;
  }
}

const std::vector<int>& counts() {
  static std::vector<int> cs = {2, 4, 6};
  return cs;
}

std::vector<AppTrafficSpec> workload(int count) {
  std::vector<AppTrafficSpec> shapes(static_cast<size_t>(count));
  std::vector<double> fractions(static_cast<size_t>(count),
                                scenarios::kLowLoadFraction);
  fractions[1] = scenarios::kHighLoadFraction;
  for (AppId a = 0; a < count; ++a) {
    auto& s = shapes[static_cast<size_t>(a)];
    s.app = a;
    s.intraFraction = 0.75;
    s.interFraction = 0.20;
    s.mcFraction = 0.05;
  }
  static std::map<int, std::vector<double>> cache;
  auto it = cache.find(count);
  if (it == cache.end()) {
    it = cache
             .emplace(count, scenarios::calibrateLoads(
                                 mesh(), regionsFor(count), shapes,
                                 fractions, paperSatOptions()))
             .first;
  }
  for (AppId a = 0; a < count; ++a)
    shapes[static_cast<size_t>(a)].injectionRate =
        it->second[static_cast<size_t>(a)];
  return shapes;
}

const ScenarioResult& cell(int count, bool rairScheme) {
  const std::string key =
      std::to_string(count) + (rairScheme ? "/RAIR" : "/RR");
  return ResultStore::instance().scenario(key, [count, rairScheme] {
    return runScenario(mesh(), regionsFor(count), paperSimConfig(),
                       rairScheme ? schemeRaRair() : schemeRoRr(),
                       workload(count));
  });
}

void printTable() {
  std::printf("\n=== Ablation: region count (mixed 75/20/5 workload, app 1 "
              "high load, others low) ===\n\n");
  TextTable t({"regions", "RO_RR mean APL", "RAIR mean APL",
               "RAIR reduction"});
  for (int c : counts()) {
    const auto& rr = cell(c, false);
    const auto& ra = cell(c, true);
    const auto row = t.addRow();
    t.set(row, 0, std::to_string(c));
    t.setNum(row, 1, rr.meanApl);
    t.setNum(row, 2, ra.meanApl);
    t.setPct(row, 3, ra.meanReductionVs(rr));
  }
  std::puts(t.toString().c_str());
  std::printf("RAIR keeps two-flow state per router, so the benefit must "
              "persist as regions scale (Sec. VI).\n");
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (int c : counts()) {
    for (bool rairScheme : {false, true}) {
      benchmark::RegisterBenchmark(
          ("abl_regions/n=" + std::to_string(c) +
           (rairScheme ? "/RAIR" : "/RO_RR")).c_str(),
          [c, rairScheme](benchmark::State& st) {
            for (auto _ : st) setAplCounters(st, cell(c, rairScheme));
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return runBenchMain(argc, argv, printTable);
}
