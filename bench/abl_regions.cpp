// Ablation: region-count scaling (Sec. V.A evaluates 2, 4 and 6 regions;
// Sec. VI argues per-router overhead is independent of the region count
// because only two-flow state is kept).
//
// For each region count we run the regionalized mixed workload (75% intra
// / 20% inter / 5% MC) with the first region loaded high and the rest
// low, and report RAIR's mean APL reduction vs RO_RR.
//
// The grid lives in the built-in "abl_regions" campaign (shared with
// tools/rair_campaign); see fig09_msp.cpp for the bench/campaign split.
#include "bench_common.h"
#include "campaign/runner.h"

namespace rair::bench {
namespace {

campaign::LazyCampaign& ablRegions() {
  static campaign::BuildContext ctx = campaign::defaultBuildContext(fastMode());
  static campaign::LazyCampaign lazy(
      campaign::buildBuiltinCampaign("abl_regions", ctx));
  return lazy;
}

}  // namespace
}  // namespace rair::bench

int main(int argc, char** argv) {
  using namespace rair::bench;
  for (const auto& cell : ablRegions().spec().cells) {
    benchmark::RegisterBenchmark(
        ("abl_regions/" + cell.key).c_str(),
        [key = cell.key](benchmark::State& st) {
          for (auto _ : st) setAplCounters(st, ablRegions().cell(key));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return runBenchMain(argc, argv, [] {
    std::fputs(ablRegions().tables().c_str(), stdout);
  });
}
