#!/usr/bin/env python3
"""Compare a core_hotpath benchmark run against the checked-in baseline.

Usage:
    perf_check.py --baseline BENCH_core_hotpath.json --current run.json \
                  [--max-regression 0.25] [--metric cycles_per_sec] \
                  [--paired-suffix _metrics --paired-suffix _snapshot \
                   --paired-suffix _sharded1:0.03 --max-overhead 0.02]

Both files are google-benchmark JSON (--benchmark_format=json). The check
fails (exit 1) when any benchmark present in both files regresses by more
than --max-regression on the chosen rate metric (higher is better).
Benchmarks without the chosen counter are skipped, so one JSON file can
serve several passes with different --metric values. New or removed
benchmarks are reported but do not fail the check; regenerate the
baseline when the suite changes intentionally.

A paired-suffix bound may be negative, turning the overhead cap into a
speedup floor: "--metric events_per_sec --paired-suffix _inc:-4.0" fails
unless every "X_inc" benchmark is at least 5x faster than its bare twin
"X" — the CI guard proving the incremental reconfiguration engine beats
the full table rebuild on the topology-churn benches.

With --paired-suffix (repeatable), the check additionally compares, WITHIN
the current file, every benchmark named "X<suffix>" against its bare twin
"X" and fails when the suffixed variant is more than --max-overhead slower
— the guard that keeps default-level metrics collection and the armed
snapshot hook effectively free on the per-cycle hot path. A suffix may
carry its own bound as "SUFFIX:MAXOVERHEAD" (e.g. "_sharded1:0.03" allows
the 1-shard cycle engine 3%% where the default bound is 2%%).
"""

import argparse
import json
import sys


def load_metrics(path, metric):
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # Benchmarks without the chosen counter belong to another pass
        # (the hot-path benches report cycles_per_sec, the topology-churn
        # benches events_per_sec); each pass only sees its own subset.
        if metric not in bench:
            continue
        out[bench["name"]] = float(bench[metric])
    if not out:
        sys.exit(f"perf_check: {path}: no benchmarks with a {metric!r} "
                 f"counter found")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="maximum tolerated fractional slowdown per "
                         "benchmark (default 0.25 = 25%%)")
    ap.add_argument("--metric", default="cycles_per_sec",
                    help="rate counter to compare, higher is better "
                         "(default cycles_per_sec)")
    ap.add_argument("--paired-suffix", action="append", default=None,
                    help="also compare every 'X<suffix>' benchmark in the "
                         "current file against its bare twin 'X'; may be "
                         "given multiple times; an optional per-suffix "
                         "bound is attached as 'SUFFIX:MAXOVERHEAD'")
    ap.add_argument("--max-overhead", type=float, default=0.02,
                    help="maximum tolerated fractional slowdown of a "
                         "suffixed variant vs. its twin (default 0.02; "
                         "overridden per suffix by 'SUFFIX:BOUND')")
    args = ap.parse_args()

    base = load_metrics(args.baseline, args.metric)
    cur = load_metrics(args.current, args.metric)

    failures = []
    for name in sorted(base):
        if name not in cur:
            print(f"  MISSING  {name} (in baseline only)")
            continue
        b, c = base[name], cur[name]
        ratio = c / b if b > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - args.max_regression:
            status = "REGRESSION"
            failures.append(name)
        print(f"  {status:>10}  {name}: {args.metric} {c:,.0f} vs "
              f"baseline {b:,.0f} ({ratio:.2f}x)")
    for name in sorted(set(cur) - set(base)):
        print(f"       NEW  {name} (not in baseline)")

    for spec in args.paired_suffix or []:
        suffix, sep, bound = spec.partition(":")
        if sep:
            try:
                max_overhead = float(bound)
            except ValueError:
                sys.exit(f"perf_check: bad per-suffix bound in "
                         f"--paired-suffix {spec!r}")
        else:
            max_overhead = args.max_overhead
        if not suffix:
            sys.exit(f"perf_check: empty suffix in --paired-suffix {spec!r}")
        pairs = [(n[: -len(suffix)], n) for n in sorted(cur)
                 if n.endswith(suffix) and n[: -len(suffix)] in cur]
        if not pairs:
            sys.exit(f"perf_check: --paired-suffix {suffix!r} matched no "
                     f"benchmark pairs in {args.current}")
        for bare, suffixed in pairs:
            b, c = cur[bare], cur[suffixed]
            ratio = c / b if b > 0 else float("inf")
            overhead = 1.0 - ratio
            status = "ok"
            if overhead > max_overhead:
                status = "OVERHEAD"
                failures.append(suffixed)
            print(f"  {status:>10}  {suffixed} vs {bare}: {args.metric} "
                  f"{c:,.0f} vs {b:,.0f} ({overhead:+.1%} overhead, "
                  f"limit {max_overhead:.0%})")

    if failures:
        print(f"perf_check: {len(failures)} benchmark(s) out of tolerance "
              f"on {args.metric}")
        return 1
    print("perf_check: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
