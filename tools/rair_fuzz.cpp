// rair_fuzz: property-based fuzzing of the simulator under the oracle.
//
//   rair_fuzz --scenarios 2000                    # hunt for violations
//   rair_fuzz --scenarios 200 --inject-fault      # oracle self-test
//   rair_fuzz --repro 0xDEADBEEF                  # replay one case seed
//
// Each case seed expands deterministically into a small random scenario
// (mesh, region grid, VC layout, loads past saturation) that runs to
// complete drain with every invariant scan armed. Failing cases print a
// reproducing seed and a shrunk parameter set; rerun with --repro SEED.
// Exit codes: 0 clean, 1 violations (or a missed fault in self-test
// mode), 2 usage error.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/fuzz.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: rair_fuzz [options]\n"
      "       rair_fuzz --repro SEED [options]\n"
      "\n"
      "options:\n"
      "  --scenarios N        generated cases (default: 100); each runs\n"
      "                       under every scheme of the matrix\n"
      "  --seed N             base seed; case i derives from splitmix\n"
      "                       (default: 1)\n"
      "  --schemes WHICH      rr | rair | both | all (default: both)\n"
      "  --period N           oracle scan cadence in cycles (default: 1)\n"
      "  --deadlock-period N  wait-graph cycle-check cadence (default: 64)\n"
      "  --age-bound N        starvation watchdog in-network age bound;\n"
      "                       0 disables (default: 20000)\n"
      "  --drain-budget N     post-cutoff cycles before a failed drain is\n"
      "                       itself a violation (default: 60000)\n"
      "  --inject-fault       self-test: inject one fault per case --\n"
      "                       alternating between dropping a credit and\n"
      "                       corrupting a metrics counter cell -- and\n"
      "                       require the oracle to catch every one\n"
      "  --fault-plan         attach a seed-derived random fault plan to\n"
      "                       every case (link outages incl. permanent,\n"
      "                       port stalls, injection freezes, credit loss,\n"
      "                       router soft resets; corruption bursts\n"
      "                       instead of outages under --link-layer retx)\n"
      "                       and require zero\n"
      "                       violations: faults must degrade, never\n"
      "                       corrupt, with every undelivered packet\n"
      "                       accounted as dropped\n"
      "  --link-layer KIND    ideal | retx (default: ideal); retx builds\n"
      "                       every channel with the CRC/retransmission\n"
      "                       layer (go-back-N, bounded replay buffer)\n"
      "  --repro SEED         replay one case seed (decimal or 0x hex)\n"
      "  --no-shrink          report failures without shrinking\n"
      "  --shard-threads N    run every case on the sharded cycle engine\n"
      "                       with N threads (0 = single-threaded,\n"
      "                       default); outcomes are byte-identical, the\n"
      "                       engine's barriers run under the oracle\n"
      "  --quiet              suppress per-case progress dots\n");
}

struct Args {
  rair::check::FuzzOptions opts;
  bool repro = false;
  std::uint64_t reproSeed = 0;
  bool quiet = false;
};

bool parseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--inject-fault") {
      args.opts.injectFault = true;
    } else if (arg == "--fault-plan") {
      args.opts.faultPlan = true;
    } else if (arg == "--no-shrink") {
      args.opts.shrink = false;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--scenarios") {
      const char* v = next();
      if (!v) return false;
      args.opts.scenarios = std::atoi(v);
      if (args.opts.scenarios <= 0) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.opts.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--repro") {
      const char* v = next();
      if (!v) return false;
      args.repro = true;
      args.reproSeed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--period") {
      const char* v = next();
      if (!v) return false;
      args.opts.period = std::strtoull(v, nullptr, 10);
      if (args.opts.period == 0) return false;
    } else if (arg == "--deadlock-period") {
      const char* v = next();
      if (!v) return false;
      args.opts.deadlockPeriod = std::strtoull(v, nullptr, 10);
      if (args.opts.deadlockPeriod == 0) return false;
    } else if (arg == "--age-bound") {
      const char* v = next();
      if (!v) return false;
      args.opts.maxInNetworkAge = std::strtoull(v, nullptr, 10);
    } else if (arg == "--drain-budget") {
      const char* v = next();
      if (!v) return false;
      args.opts.drainBudget = std::strtoull(v, nullptr, 10);
      if (args.opts.drainBudget == 0) return false;
    } else if (arg == "--shard-threads") {
      const char* v = next();
      if (!v) return false;
      args.opts.shardThreads = std::atoi(v);
      if (args.opts.shardThreads < 0) return false;
    } else if (arg == "--link-layer") {
      const char* v = next();
      if (!v) return false;
      const auto kind = rair::linkLayerKindFromName(v);
      if (!kind) {
        std::fprintf(stderr, "unknown link layer '%s'\n", v);
        return false;
      }
      args.opts.linkLayer = *kind;
    } else if (arg == "--schemes") {
      const char* v = next();
      if (!v) return false;
      const std::string which = v;
      if (which == "rr") {
        args.opts.schemes = {rair::schemeRoRr()};
      } else if (which == "rair") {
        args.opts.schemes = {rair::schemeRaRair()};
      } else if (which == "both") {
        args.opts.schemes = rair::check::defaultFuzzSchemes();
      } else if (which == "all") {
        args.opts.schemes = rair::check::allFuzzSchemes();
      } else {
        std::fprintf(stderr, "unknown scheme set '%s'\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void printFailure(const rair::check::FuzzCaseResult& res,
                  const rair::check::FuzzOptions& opts) {
  rair::check::FuzzCase c = rair::check::generateCase(res.caseSeed);
  c.linkLayer = opts.linkLayer;
  if (opts.faultPlan)
    c.faults = rair::check::generateFaultPlan(res.caseSeed, c);
  const bool faultPlan = opts.faultPlan;
  std::fprintf(stderr,
               "\nFAIL seed 0x%016" PRIX64 " scheme %s%s\n  case: %s\n",
               res.caseSeed, res.scheme.c_str(),
               res.drained ? "" : " (did not drain)", c.describe().c_str());
  if (faultPlan && !c.faults.empty())
    std::fprintf(stderr, "  plan:\n%s", c.faults.format().c_str());
  if (res.wasShrunk) {
    std::fprintf(stderr, "  shrunk: %s\n", res.shrunk.describe().c_str());
    if (!res.shrunk.faults.empty())
      std::fprintf(stderr, "  shrunk plan:\n%s",
                   res.shrunk.faults.format().c_str());
  }
  for (const auto& v : res.report.violations)
    std::fprintf(stderr, "  cycle %llu: %s\n",
                 static_cast<unsigned long long>(v.cycle), v.what.c_str());
  if (res.report.truncated)
    std::fprintf(stderr, "  (further violations truncated)\n");
  std::fprintf(stderr, "  repro: rair_fuzz --repro 0x%016" PRIX64 "\n",
               res.caseSeed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rair::check;

  Args args;
  if (!parseArgs(argc, argv, args)) {
    usage(stderr);
    return 2;
  }

  if (args.repro) {
    FuzzCase c = generateCase(args.reproSeed);
    c.linkLayer = args.opts.linkLayer;
    if (args.opts.faultPlan)
      c.faults = generateFaultPlan(args.reproSeed, c);
    std::printf("case 0x%016" PRIX64 ": %s\n", args.reproSeed,
                c.describe().c_str());
    if (!c.faults.empty())
      std::printf("plan:\n%s", c.faults.format().c_str());
    const auto results = runFuzzSeed(args.reproSeed, args.opts);
    bool anyFail = false;
    for (const auto& res : results) {
      if (res.failed()) {
        anyFail = true;
        printFailure(res, args.opts);
      } else {
        std::printf("  %s: ok (%llu scans, %llu deadlock scans%s)\n",
                    res.scheme.c_str(),
                    static_cast<unsigned long long>(res.report.scans),
                    static_cast<unsigned long long>(res.report.deadlockScans),
                    res.faultInjected
                        ? (res.faultKind == "counter"
                               ? ", counter fault injected"
                               : ", credit fault injected")
                        : "");
        if (args.opts.faultPlan)
          std::printf("    dropped by fault: %llu packets\n",
                      static_cast<unsigned long long>(res.droppedByFault));
        if (args.opts.linkLayer == rair::LinkLayerKind::Retx)
          std::printf("    corrupted %llu, retransmitted %llu flits\n",
                      static_cast<unsigned long long>(res.corruptedFlits),
                      static_cast<unsigned long long>(res.retransmittedFlits));
      }
    }
    return anyFail ? 1 : 0;
  }

  int creditFaults = 0;
  int counterFaults = 0;
  unsigned long long droppedTotal = 0;
  const FuzzProgress progress = [&](int index, const FuzzCaseResult& res) {
    droppedTotal += res.droppedByFault;
    if (res.faultInjected) {
      if (res.faultKind == "counter")
        ++counterFaults;
      else
        ++creditFaults;
    }
    if (args.quiet) return;
    // In fault mode the interesting outcome is a MISS (fault injected but
    // not caught); in normal mode it is any failure.
    const bool bad = args.opts.injectFault
                         ? (res.faultInjected && !res.failed())
                         : res.failed();
    std::fputc(bad ? 'X' : '.', stderr);
    if ((index + 1) % 64 == 0) std::fprintf(stderr, " %d\n", index + 1);
    std::fflush(stderr);
  };

  const FuzzSummary sum = runFuzz(args.opts, progress);
  if (!args.quiet) std::fputc('\n', stderr);

  if (args.opts.injectFault) {
    std::printf(
        "fault self-test: %d runs (%d credit, %d counter faults), "
        "%d faults missed, %d skipped (idle)\n",
        sum.casesRun, creditFaults, counterFaults, sum.faultsMissed,
        sum.faultsSkipped);
    if (sum.faultsMissed > 0) {
      std::fprintf(stderr,
                   "ERROR: oracle missed %d injected faults (base seed "
                   "%" PRIu64 ")\n",
                   sum.faultsMissed, sum.baseSeed);
      return 1;
    }
    return 0;
  }

  std::printf("fuzz%s: %d runs (%d scenarios x %zu schemes), %d failures",
              args.opts.faultPlan ? " (fault plans)" : "", sum.casesRun,
              args.opts.scenarios,
              args.opts.schemes.empty() ? defaultFuzzSchemes().size()
                                        : args.opts.schemes.size(),
              sum.failures);
  if (args.opts.faultPlan)
    std::printf(", %llu packets dropped by faults", droppedTotal);
  if (args.opts.linkLayer == rair::LinkLayerKind::Retx)
    std::printf(", %llu corrupted / %llu retransmitted flits",
                static_cast<unsigned long long>(sum.corruptedTotal),
                static_cast<unsigned long long>(sum.retransmittedTotal));
  std::printf("\n");
  for (const auto& res : sum.failed) printFailure(res, args.opts);
  return sum.failures > 0 ? 1 : 0;
}
