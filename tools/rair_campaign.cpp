// rair_campaign: run a named built-in experiment campaign on a worker
// pool and persist structured results.
//
//   rair_campaign --name fig09 --jobs 4 --out BENCH_fig09.json
//
// Results are JSON Lines (one record per simulation cell plus memoized
// calibration values); re-running against an existing file executes only
// the missing cells. See EXPERIMENTS.md ("Campaigns") for the record
// schema and resume semantics.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "campaign/builtin.h"
#include "campaign/runner.h"
#include "campaign/store.h"
#include "fault/plan.h"
#include "link/link_layer.h"
#include "metrics/metrics.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: rair_campaign --name <campaign> [options]\n"
      "       rair_campaign --list\n"
      "\n"
      "options:\n"
      "  --name NAME   built-in campaign to run (see --list)\n"
      "  --jobs N      worker threads (default: hardware concurrency)\n"
      "  --out FILE    JSON Lines results file (default: BENCH_<name>.json)\n"
      "  --seed N      campaign master seed (default: 1)\n"
      "  --fast        5x-shrunk simulation windows (= RAIR_BENCH_FAST=1)\n"
      "  --fresh       discard an existing results file instead of resuming\n"
      "  --no-table    skip the paper-style table rendering\n"
      "  --metrics LEVEL\n"
      "                instrumentation level: off, counters (default),\n"
      "                summary, series. summary+ embeds aggregate metrics\n"
      "                in each cell record (default records stay\n"
      "                byte-identical to uninstrumented runs)\n"
      "  --metrics-out PREFIX\n"
      "                write per-cell metrics sinks (summary.json,\n"
      "                counters.csv, series.jsonl) under\n"
      "                PREFIX<campaign>_<key>.\n"
      "  --warm-cache DIR\n"
      "                cache end-of-warm-up simulator states in DIR;\n"
      "                calibration probes and cells whose warm-up was\n"
      "                already simulated (e.g. on a re-run) restore it\n"
      "                instead of re-simulating\n"
      "  --checkpoint-dir DIR\n"
      "                write per-cell mid-run checkpoints into DIR; an\n"
      "                interrupted campaign resumes unfinished cells from\n"
      "                their last checkpoint, with byte-identical records\n"
      "  --checkpoint-every N\n"
      "                checkpoint refresh period in cycles (default "
      "25000)\n"
      "  --shard-threads N\n"
      "                run each cell's simulation on the deterministic\n"
      "                sharded cycle engine with N threads (composes with\n"
      "                --jobs; records are byte-identical to\n"
      "                single-threaded runs; default 0 = off)\n"
      "  --link-layer KIND\n"
      "                ideal (default) | retx: build every channel with\n"
      "                the CRC/retransmission link layer. Ideal-link runs\n"
      "                reproduce existing records byte-identically; retx\n"
      "                changes scenario identity -- use a dedicated --out\n"
      "  --fault-density R\n"
      "                (faults campaign only) add the density axis:\n"
      "                MTBF-style seeded random plans at R, R/2 and 2R\n"
      "                events per 1000 measured cycles, as\n"
      "                <scheme>/density{0.5x,1x,2x} cells. Changes the\n"
      "                cell set -- use a dedicated --out\n"
      "  --faults FILE\n"
      "                attach the fault plan in FILE (text format, see\n"
      "                tools/rair_fault --help) to every cell that does\n"
      "                not define its own; cell records gain a \"fault\"\n"
      "                block. Changes results -- use a dedicated --out.\n"
      "                The built-in \"faults\" campaign runs a canned\n"
      "                resilience sweep without this flag.\n");
}

struct Args {
  std::string name;
  std::string out;
  std::string warmCache;
  std::string checkpointDir;
  std::string faultsFile;
  rair::metrics::MetricsOptions metrics;
  rair::Cycle checkpointEvery = 25'000;
  rair::LinkLayerKind linkLayer = rair::LinkLayerKind::Ideal;
  double faultDensity = 0.0;
  int jobs = 0;
  int shardThreads = 0;
  std::uint64_t seed = 1;
  bool fast = false;
  bool fresh = false;
  bool noTable = false;
  bool list = false;
};

bool parseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--list") {
      args.list = true;
    } else if (arg == "--fast") {
      args.fast = true;
    } else if (arg == "--fresh") {
      args.fresh = true;
    } else if (arg == "--no-table") {
      args.noTable = true;
    } else if (arg == "--name") {
      const char* v = next();
      if (!v) return false;
      args.name = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      args.out = v;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return false;
      args.jobs = std::atoi(v);
      if (args.jobs <= 0) return false;
    } else if (arg == "--shard-threads") {
      const char* v = next();
      if (!v) return false;
      args.shardThreads = std::atoi(v);
      if (args.shardThreads < 0) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--metrics") {
      const char* v = next();
      if (!v) return false;
      const auto level = rair::metrics::metricsLevelFromName(v);
      if (!level) {
        std::fprintf(stderr, "unknown metrics level '%s' (expected off, "
                             "counters, summary or series)\n", v);
        return false;
      }
      args.metrics.level = *level;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      args.metrics.outPrefix = v;
    } else if (arg == "--warm-cache") {
      const char* v = next();
      if (!v) return false;
      args.warmCache = v;
    } else if (arg == "--checkpoint-dir") {
      const char* v = next();
      if (!v) return false;
      args.checkpointDir = v;
    } else if (arg == "--link-layer") {
      const char* v = next();
      if (!v) return false;
      const auto kind = rair::linkLayerKindFromName(v);
      if (!kind) {
        std::fprintf(stderr, "unknown link layer '%s'\n", v);
        return false;
      }
      args.linkLayer = *kind;
    } else if (arg == "--fault-density") {
      const char* v = next();
      if (!v) return false;
      args.faultDensity = std::atof(v);
      if (!(args.faultDensity > 0.0)) return false;
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v) return false;
      args.faultsFile = v;
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (!v) return false;
      args.checkpointEvery = std::strtoull(v, nullptr, 10);
      if (args.checkpointEvery == 0) return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return args.list || !args.name.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rair::campaign;

  Args args;
  if (!parseArgs(argc, argv, args)) {
    usage(stderr);
    return 2;
  }

  if (args.list) {
    std::printf("built-in campaigns:\n");
    for (const std::string& name : builtinCampaignNames())
      std::printf("  %s\n", name.c_str());
    return 0;
  }

  if (!isBuiltinCampaign(args.name)) {
    std::fprintf(stderr, "unknown campaign '%s'; --list shows the "
                         "built-ins\n", args.name.c_str());
    return 2;
  }
  if (args.out.empty()) args.out = "BENCH_" + args.name + ".json";
  if (args.fresh) std::remove(args.out.c_str());
  if (std::getenv("RAIR_BENCH_FAST") != nullptr) args.fast = true;

  const auto logLine = [](const std::string& msg) {
    std::fprintf(stderr, "rair_campaign: %s\n", msg.c_str());
  };

  // Build the spec with a results-file-backed calibration cache: known
  // values are reused, fresh ones are appended so the next invocation
  // skips calibration entirely. The writer is scoped to the build — the
  // runner opens its own append handle afterwards.
  const CampaignSpec spec = [&] {
    const CampaignFileData data = loadCampaignFile(args.out);
    JsonlWriter writer(args.out);
    BuildContext ctx = defaultBuildContext(args.fast);
    ctx.campaignSeed = args.seed;
    ctx.metrics = args.metrics;
    ctx.sim.net.linkLayer = args.linkLayer;
    ctx.faultDensity = args.faultDensity;
    ctx.sat.warmCacheDir = args.warmCache;
    ctx.log = logLine;
    auto memo = std::make_shared<std::map<std::string, double>>(data.values);
    const std::string name = args.name;
    ctx.value = [&writer, memo, name](const std::string& key,
                                      const std::function<double()>& fn) {
      const auto it = memo->find(key);
      if (it != memo->end()) return it->second;
      const double v = fn();
      (*memo)[key] = v;
      writer.writeLine(valueJsonLine(name, key, v));
      return v;
    };
    return buildBuiltinCampaign(args.name, ctx);
  }();

  RunnerOptions opts;
  if (!args.faultsFile.empty()) {
    std::ifstream in(args.faultsFile);
    if (!in) {
      std::fprintf(stderr, "cannot read fault plan '%s'\n",
                   args.faultsFile.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string err;
    if (!rair::fault::FaultPlan::parse(text.str(), opts.faults, &err)) {
      std::fprintf(stderr, "bad fault plan '%s': %s\n",
                   args.faultsFile.c_str(), err.c_str());
      return 2;
    }
  }
  opts.jobs = args.jobs;
  opts.outPath = args.out;
  opts.resume = true;
  opts.warmCacheDir = args.warmCache;
  opts.checkpointDir = args.checkpointDir;
  opts.checkpointEvery = args.checkpointEvery;
  opts.shardThreads = args.shardThreads;
  opts.log = logLine;
  const CampaignSummary summary = runCampaign(spec, opts);

  if (!args.noTable && spec.renderTables) {
    const std::string tables = spec.renderTables(summary.lookup());
    std::fwrite(tables.data(), 1, tables.size(), stdout);
  }

  std::printf(
      "\ncampaign %s: %zu cells (%zu executed, %zu resumed, %zu not "
      "drained) in %.1f s -> %s\n",
      spec.name.c_str(), spec.cells.size(), summary.executed,
      summary.skipped, summary.tripwired, summary.wallMs / 1000.0,
      args.out.c_str());
  return 0;
}
