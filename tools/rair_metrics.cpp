// rair_metrics: demo + inspection CLI for the dimensional metrics
// subsystem (src/metrics/).
//
//   rair_metrics --demo [--out PREFIX] [--level LEVEL] [--paper]
//     Runs the Fig. 8-style two-region interference scenario under
//     RA_RAIR with the recorder attached, prints the aggregate summary
//     table, and (at summary level and above) writes the file sinks —
//     the quickest way to produce a Fig. 11-style DPA priority trace.
//
//   rair_metrics --inspect FILE
//     Pretty-prints a sink file produced by any instrumented run:
//     <prefix>summary.json, <prefix>series.jsonl (one record per line)
//     or a campaign results .jsonl.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/json.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "stats/report.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: rair_metrics --demo [options]\n"
      "       rair_metrics --inspect FILE\n"
      "\n"
      "modes:\n"
      "  --demo        run the two-region interference scenario (Fig. 8\n"
      "                workload, RA_RAIR) with the metrics recorder\n"
      "                attached and print the aggregate summary\n"
      "  --inspect FILE\n"
      "                pretty-print a metrics sink file (summary.json,\n"
      "                series.jsonl) or any JSON/JSON-Lines file\n"
      "\n"
      "demo options:\n"
      "  --out PREFIX  sink path prefix (default: metrics_demo.)\n"
      "  --level LEVEL off, counters, summary or series (default: series)\n"
      "  --paper       full paper windows (default: fast smoke windows)\n");
}

int runDemo(const std::string& outPrefix, rair::metrics::MetricsLevel level,
            bool paper) {
  using namespace rair;

  Mesh mesh(8, 8);
  const auto regions = RegionMap::halves(mesh);
  // Fig. 8 shape: app 0 low-load with half its traffic inter-region, app 1
  // high-load and purely intra-regional. Fixed representative rates keep
  // the demo instant (no saturation calibration).
  const auto apps = scenarios::twoAppInterRegion(0.5, 0.05, 0.30);

  metrics::MetricsOptions mo;
  mo.level = level;
  if (level >= metrics::MetricsLevel::Summary) mo.outPrefix = outPrefix;

  std::printf("running two-region demo (8x8 mesh, RA_RAIR, %s windows, "
              "metrics level %s)...\n",
              paper ? "paper" : "fast", metrics::metricsLevelName(level));
  const auto res = runScenario(ScenarioSpec(mesh, regions)
                                   .withScheme(schemeRaRair())
                                   .withApps(apps)
                                   .withWindows(!paper)
                                   .withSeed(7)
                                   .withMetrics(mo));

  std::printf("\napp 0 (low, 50%% inter-region) APL: %.2f cycles\n",
              res.appApl[0]);
  std::printf("app 1 (high, intra-region)     APL: %.2f cycles\n",
              res.appApl[1]);
  if (res.metrics) {
    std::printf("\n%s", renderMetricsSummary(*res.metrics).c_str());
  } else {
    std::printf("\n(metrics collection off; no summary)\n");
  }
  if (!mo.outPrefix.empty()) {
    std::printf("\nsinks written under prefix %s\n", mo.outPrefix.c_str());
    std::printf("  %ssummary.json   aggregate + per-metric cells\n",
                mo.outPrefix.c_str());
    std::printf("  %scounters.csv   per-router counter matrix\n",
                mo.outPrefix.c_str());
    if (level >= metrics::MetricsLevel::Series) {
      std::printf("  %sseries.jsonl   interval series: APL, DPA priority "
                  "(Fig. 11-style), link flits\n",
                  mo.outPrefix.c_str());
    }
    std::printf("inspect any of them with: rair_metrics --inspect FILE\n");
  }
  return 0;
}

void prettyPrint(const rair::campaign::JsonValue& v, int indent,
                 std::string* out) {
  using rair::campaign::JsonValue;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (v.kind()) {
    case JsonValue::Kind::Object: {
      const auto& obj = v.asObject();
      if (obj.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (size_t i = 0; i < obj.size(); ++i) {
        *out += pad + "  \"" + rair::campaign::jsonEscape(obj[i].first) +
                "\": ";
        prettyPrint(obj[i].second, indent + 1, out);
        if (i + 1 < obj.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      break;
    }
    case JsonValue::Kind::Array: {
      const auto& arr = v.asArray();
      // Scalar-only arrays stay on one line (the common case: per-app
      // vectors, metric cells).
      bool nested = false;
      for (const auto& e : arr) nested |= e.isObject() || e.isArray();
      if (!nested) {
        *out += v.dump();
        break;
      }
      *out += "[\n";
      for (size_t i = 0; i < arr.size(); ++i) {
        *out += pad + "  ";
        prettyPrint(arr[i], indent + 1, out);
        if (i + 1 < arr.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      break;
    }
    default:
      *out += v.dump();
      break;
  }
}

int inspectFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rair_metrics: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Whole-file JSON first (summary.json); fall back to JSON Lines
  // (series.jsonl, campaign results).
  if (auto v = rair::campaign::JsonValue::parse(text)) {
    std::string out;
    prettyPrint(*v, 0, &out);
    std::printf("%s\n", out.c_str());
    return 0;
  }
  size_t lineNo = 0;
  size_t bad = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ++lineNo;
    if (line.empty()) continue;
    if (auto v = rair::campaign::JsonValue::parse(line)) {
      std::string out;
      prettyPrint(*v, 0, &out);
      std::printf("--- record %zu ---\n%s\n", lineNo, out.c_str());
    } else {
      ++bad;
      std::fprintf(stderr, "rair_metrics: %s:%zu: not valid JSON\n",
                   path.c_str(), lineNo);
    }
  }
  if (lineNo == 0) {
    std::fprintf(stderr, "rair_metrics: %s is empty\n", path.c_str());
    return 1;
  }
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool paper = false;
  std::string inspect;
  std::string outPrefix = "metrics_demo.";
  rair::metrics::MetricsLevel level = rair::metrics::MetricsLevel::Series;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--paper") {
      paper = true;
    } else if (arg == "--inspect") {
      const char* v = next();
      if (!v) return 2;
      inspect = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return 2;
      outPrefix = v;
    } else if (arg == "--level") {
      const char* v = next();
      if (!v) return 2;
      const auto l = rair::metrics::metricsLevelFromName(v);
      if (!l) {
        std::fprintf(stderr, "unknown metrics level '%s' (expected off, "
                             "counters, summary or series)\n", v);
        return 2;
      }
      level = *l;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (demo == !inspect.empty()) {  // exactly one mode required
    usage();
    return 2;
  }
  return demo ? runDemo(outPrefix, level, paper) : inspectFile(inspect);
}
