// rair_snapshot: inspect and debug snapshot files and the determinism
// invariant behind them.
//
//   rair_snapshot --dump FILE              header + section table
//   rair_snapshot --diff FILE FILE         first differing state section
//   rair_snapshot --bisect-divergence [options]
//                                          binary-search the first cycle a
//                                          restored run diverges from the
//                                          straight run (a healthy build
//                                          reports no divergence)
//
// The bisect mode drives a built-in two-application scenario (the fig09
// workload shape) so a save/restore bug in any subsystem can be localized
// to a cycle and a section without writing a reproducer first. See
// DESIGN.md ("Snapshots") for the file format.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "snapshot/bisect.h"
#include "snapshot/buffer.h"
#include "snapshot/scenario_key.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: rair_snapshot --dump FILE\n"
      "       rair_snapshot --diff FILE FILE\n"
      "       rair_snapshot --bisect-divergence [options]\n"
      "\n"
      "bisect options:\n"
      "  --scheme NAME  RO_RR (default), RO_Rank, RA_DBAR, RA_RAIR,\n"
      "                 RAIR_VA, RAIR_NativeH, RAIR_ForeignH\n"
      "  --p N          inter-region traffic fraction in %% (default 50)\n"
      "  --seed N       scenario seed (default 1)\n"
      "  --snap-at N    cycle to snapshot at (default 1000)\n"
      "  --horizon N    last cycle compared (default 3000)\n"
      "  --shard-threads N\n"
      "                 write the snapshot (and run the straight\n"
      "                 reference) on the sharded cycle engine with N\n"
      "                 threads while the restored run continues\n"
      "                 single-threaded -- verifies checkpoints are\n"
      "                 thread-count-agnostic (default 0 = both\n"
      "                 single-threaded)\n");
}

bool schemeByName(const std::string& name, rair::SchemeSpec& out) {
  using namespace rair;
  if (name == "RO_RR") out = schemeRoRr();
  else if (name == "RO_Rank") out = schemeRoRank();
  else if (name == "RA_DBAR") out = schemeRaDbar();
  else if (name == "RA_RAIR") out = schemeRaRair();
  else if (name == "RAIR_VA") out = schemeRairVaOnly();
  else if (name == "RAIR_NativeH") out = schemeRairNativeHigh();
  else if (name == "RAIR_ForeignH") out = schemeRairForeignHigh();
  else return false;
  return true;
}

int dump(const std::string& path) {
  const auto snap = rair::snapshot::readSnapshotFile(path);
  if (!snap) {
    std::fprintf(stderr, "rair_snapshot: cannot read '%s' (missing, "
                         "foreign or corrupt)\n", path.c_str());
    return 1;
  }
  std::printf("file:          %s\n", path.c_str());
  std::printf("state version: %" PRIu32 "\n", snap->header.stateVersion);
  std::printf("scenario key:  %016" PRIx64 "\n", snap->header.scenarioKey);
  std::printf("cycle:         %" PRIu64 "\n",
              static_cast<std::uint64_t>(snap->header.cycle));
  std::printf("payload:       %zu bytes\n", snap->payload.size());
  std::printf("\n%-16s %10s %10s\n", "section", "offset", "bytes");
  for (const auto& s : rair::snapshot::listSections(snap->payload))
    std::printf("%-16s %10zu %10zu\n", s.name.c_str(), s.offset, s.size);
  return 0;
}

int diff(const std::string& pathA, const std::string& pathB) {
  const auto a = rair::snapshot::readSnapshotFile(pathA);
  const auto b = rair::snapshot::readSnapshotFile(pathB);
  if (!a || !b) {
    std::fprintf(stderr, "rair_snapshot: cannot read '%s'\n",
                 (!a ? pathA : pathB).c_str());
    return 1;
  }
  if (a->header.scenarioKey != b->header.scenarioKey)
    std::printf("scenario keys differ: %016" PRIx64 " vs %016" PRIx64 "\n",
                a->header.scenarioKey, b->header.scenarioKey);
  if (a->header.cycle != b->header.cycle)
    std::printf("cycles differ: %" PRIu64 " vs %" PRIu64 "\n",
                static_cast<std::uint64_t>(a->header.cycle),
                static_cast<std::uint64_t>(b->header.cycle));
  const std::string section =
      rair::snapshot::firstDifferingSection(a->payload, b->payload);
  if (section.empty()) {
    std::printf("payloads are byte-identical (%zu bytes)\n",
                a->payload.size());
    return 0;
  }
  std::printf("first differing section: %s\n", section.c_str());
  return 2;
}

int bisect(const rair::SchemeSpec& scheme, int p, std::uint64_t seed,
           rair::Cycle snapAt, rair::Cycle horizon, int shardThreads) {
  using namespace rair;
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const auto apps =
      scenarios::twoAppInterRegion(p / 100.0, 0.05, 0.25);
  ScenarioSpec spec = ScenarioSpec(mesh, regions)
                          .withScheme(scheme)
                          .withApps(apps)
                          .withSeed(seed)
                          .withFastWindows();
  std::printf("bisecting %s p=%d%% seed=%" PRIu64 ", snapshot at cycle %"
              PRIu64 ", horizon %" PRIu64 " (full key %016" PRIx64
              ", save threads %d)\n",
              scheme.label.c_str(), p, seed,
              static_cast<std::uint64_t>(snapAt),
              static_cast<std::uint64_t>(horizon),
              snapshot::fullStateKey(spec), shardThreads);
  ScenarioSpec saveSpec = spec;
  if (shardThreads > 0) saveSpec.withThreads(shardThreads);
  const snapshot::BisectResult r =
      snapshot::bisectDivergence(saveSpec, spec, snapAt, horizon);
  if (!r.diverged) {
    std::printf("no divergence: restored run is byte-identical to the "
                "straight run over the whole range\n");
    return 0;
  }
  std::printf("DIVERGED at cycle %" PRIu64 ", first differing section: %s\n",
              static_cast<std::uint64_t>(r.firstDivergentCycle),
              r.section.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  std::string files[2];
  int numFiles = 0;
  std::string schemeName = "RO_RR";
  int p = 50;
  std::uint64_t seed = 1;
  rair::Cycle snapAt = 1'000;
  rair::Cycle horizon = 3'000;
  int shardThreads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--dump" || arg == "--diff" ||
               arg == "--bisect-divergence") {
      mode = arg;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) { usage(stderr); return 2; }
      schemeName = v;
    } else if (arg == "--p") {
      const char* v = next();
      if (!v) { usage(stderr); return 2; }
      p = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) { usage(stderr); return 2; }
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shard-threads") {
      const char* v = next();
      if (!v) { usage(stderr); return 2; }
      shardThreads = std::atoi(v);
      if (shardThreads < 0) { usage(stderr); return 2; }
    } else if (arg == "--snap-at") {
      const char* v = next();
      if (!v) { usage(stderr); return 2; }
      snapAt = std::strtoull(v, nullptr, 10);
    } else if (arg == "--horizon") {
      const char* v = next();
      if (!v) { usage(stderr); return 2; }
      horizon = std::strtoull(v, nullptr, 10);
    } else if (arg[0] != '-' && numFiles < 2) {
      files[numFiles++] = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (mode == "--dump" && numFiles == 1) return dump(files[0]);
  if (mode == "--diff" && numFiles == 2) return diff(files[0], files[1]);
  if (mode == "--bisect-divergence" && numFiles == 0) {
    rair::SchemeSpec scheme;
    if (!schemeByName(schemeName, scheme)) {
      std::fprintf(stderr, "unknown scheme '%s'\n", schemeName.c_str());
      return 2;
    }
    if (p < 0 || p > 100 || snapAt >= horizon) {
      usage(stderr);
      return 2;
    }
    return bisect(scheme, p, seed, snapAt, horizon, shardThreads);
  }
  usage(stderr);
  return 2;
}
