// rair_fault: replay a fault plan and report per-region degradation
// against the fault-free twin of the same scenario.
//
//   rair_fault --plan outage.fp
//   rair_fault --plan outage.fp --scheme RA_RAIR --threads 4 --check
//   rair_fault --example > outage.fp
//
// The workload is the paper's canonical two-app halves scenario (Fig. 8):
// app 0 low-load with fraction p inter-region, app 1 high-load
// intra-regional, rates calibrated against the half-mesh saturation knee.
// Both runs share the seed and windows, so every reported delta is caused
// by the plan alone.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/builtin.h"
#include "check/oracle.h"
#include "fault/plan.h"
#include "region/region_map.h"
#include "scenarios/paper_scenarios.h"
#include "sim/saturation.h"
#include "sim/scenario.h"
#include "sim/scheme.h"

namespace {

using namespace rair;

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: rair_fault --plan FILE [options]\n"
      "       rair_fault --example\n"
      "\n"
      "Replays the fault plan on the canonical 8x8 two-app workload and\n"
      "reports per-region degradation vs a fault-free twin run.\n"
      "\n"
      "options:\n"
      "  --plan FILE   fault plan, text format (one event per line):\n"
      "                  @<cycle> down|up|stall|unstall <node> <N|E|S|W>\n"
      "                  @<cycle> creditloss <node> <N|E|S|W> <vc> <count>\n"
      "                  @<cycle> freeze|thaw <node>\n"
      "                blank lines and #-comments are ignored; <node> is a\n"
      "                row-major id (y*width + x)\n"
      "  --example     print a commented example plan and exit\n"
      "  --scheme S    RO_RR (default), RO_Rank, RA_DBAR, RA_RAIR, RAIR_VA\n"
      "  --p N         inter-region percent of app 0's traffic (default 50)\n"
      "  --seed N      simulation seed (default 1)\n"
      "  --fast        5x-shrunk windows (= RAIR_BENCH_FAST=1)\n"
      "  --threads N   sharded cycle engine with N threads (default 0 =\n"
      "                single-threaded; results are byte-identical)\n"
      "  --check       additionally replay under the fault-aware network\n"
      "                oracle and report any invariant violations\n");
}

int printExample() {
  std::printf(
      "# rair_fault example plan (8x8 mesh, node id = y*8 + x).\n"
      "# Cycles are absolute; the paper windows measure 10000..110000,\n"
      "# --fast windows 2000..22000.\n"
      "\n"
      "# 3000-cycle outage of the east link of node (3,3):\n"
      "@5000 down 27 E\n"
      "@8000 up 27 E\n"
      "\n"
      "# Stall the south out-port of node (5,2) for 1000 cycles:\n"
      "@6000 stall 21 S\n"
      "@7000 unstall 21 S\n"
      "\n"
      "# Destroy one credit of adaptive VC 1 on (5,5)'s west port:\n"
      "@6500 creditloss 45 W 1 1\n"
      "\n"
      "# Freeze injection at node (4,4) for 500 cycles:\n"
      "@7000 freeze 36\n"
      "@7500 thaw 36\n");
  return 0;
}

struct Args {
  std::string planFile;
  std::string schemeName = "RO_RR";
  int p = 50;
  std::uint64_t seed = 1;
  int threads = 0;
  bool fast = false;
  bool check = false;
};

bool parseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--example") {
      std::exit(printExample());
    } else if (arg == "--fast") {
      args.fast = true;
    } else if (arg == "--check") {
      args.check = true;
    } else if (arg == "--plan") {
      const char* v = next();
      if (!v) return false;
      args.planFile = v;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) return false;
      args.schemeName = v;
    } else if (arg == "--p") {
      const char* v = next();
      if (!v) return false;
      args.p = std::atoi(v);
      if (args.p < 0 || args.p > 100) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      args.threads = std::atoi(v);
      if (args.threads < 0) return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !args.planFile.empty();
}

bool findScheme(const std::string& name, SchemeSpec& out) {
  const std::vector<SchemeSpec> lineup = {
      schemeRoRr(), schemeRoRank(), schemeRaDbar(), schemeRaRair(),
      schemeRairVaOnly()};
  for (const SchemeSpec& s : lineup)
    if (s.label == name) {
      out = s;
      return true;
    }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, args)) {
    usage(stderr);
    return 2;
  }
  if (std::getenv("RAIR_BENCH_FAST") != nullptr) args.fast = true;

  SchemeSpec scheme;
  if (!findScheme(args.schemeName, scheme)) {
    std::fprintf(stderr, "unknown scheme '%s'\n", args.schemeName.c_str());
    return 2;
  }

  std::ifstream in(args.planFile);
  if (!in) {
    std::fprintf(stderr, "cannot read fault plan '%s'\n",
                 args.planFile.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  fault::FaultPlan plan;
  std::string err;
  if (!fault::FaultPlan::parse(text.str(), plan, &err)) {
    std::fprintf(stderr, "bad fault plan '%s': %s\n", args.planFile.c_str(),
                 err.c_str());
    return 2;
  }
  if (plan.empty()) {
    std::fprintf(stderr, "fault plan '%s' has no events\n",
                 args.planFile.c_str());
    return 2;
  }
  std::printf("plan (%zu events):\n%s\n", plan.events().size(),
              plan.format().c_str());

  const Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);

  // Calibrate the half-mesh saturation knee (the campaign's shared
  // "halves/halfSat" scalar) so the twin runs at the paper's operating
  // point: app 0 at 10% of saturation, app 1 at the stable high load.
  std::fprintf(stderr, "rair_fault: calibrating half-mesh saturation...\n");
  AppTrafficSpec shape;
  shape.app = 0;
  const double sat = appSaturationRate(mesh, regions, shape,
                                       campaign::paperSatOptions(args.fast));
  const auto apps = scenarios::twoAppInterRegion(
      args.p / 100.0, scenarios::kLowLoadFraction * sat,
      scenarios::kHighLoadFraction * sat);

  auto baseSpec = [&] {
    return ScenarioSpec(mesh, regions)
        .withConfig(campaign::paperSimConfig(args.fast))
        .withScheme(scheme)
        .withApps(apps)
        .withSeed(args.seed)
        .withThreads(args.threads);
  };

  std::fprintf(stderr, "rair_fault: running fault-free twin...\n");
  const ScenarioResult twin = runScenario(baseSpec());
  std::fprintf(stderr, "rair_fault: replaying plan...\n");
  const ScenarioResult faulted = runScenario(baseSpec().withFaults(plan));

  auto line = [](const char* tag, const ScenarioResult& r) {
    std::printf("%-10s %-9s cycles %-8llu created %-7llu delivered %-7llu "
                "mean APL %.2f\n",
                tag, terminationName(r.run.termination),
                static_cast<unsigned long long>(r.run.cyclesRun),
                static_cast<unsigned long long>(r.run.packetsCreated),
                static_cast<unsigned long long>(r.run.packetsDelivered),
                r.meanApl);
  };
  std::printf("scheme %s, p=%d, seed %llu, %s windows\n\n",
              scheme.label.c_str(), args.p,
              static_cast<unsigned long long>(args.seed),
              args.fast ? "fast" : "paper");
  line("twin", twin);
  line("faulted", faulted);

  std::printf("\nper-region degradation (APL vs twin):\n");
  for (std::size_t a = 0; a < faulted.appApl.size(); ++a) {
    const double base = a < twin.appApl.size() ? twin.appApl[a] : 0.0;
    const double delta =
        base > 0.0 ? (faulted.appApl[a] / base - 1.0) * 100.0 : 0.0;
    std::printf("  region %zu (app %zu): %8.2f -> %8.2f  (%+.1f%%)\n", a, a,
                base, faulted.appApl[a], delta);
  }

  if (faulted.faultStats) {
    const fault::FaultStats& fs = *faulted.faultStats;
    std::printf("\nfault accounting: %llu events applied, %llu packets / "
                "%llu flits dropped, %llu reroutes,\n"
                "  %llu unreachable pairs (worst), %llu degraded cycles, "
                "%llu recovery cycles\n",
                static_cast<unsigned long long>(fs.eventsApplied),
                static_cast<unsigned long long>(fs.droppedPackets),
                static_cast<unsigned long long>(fs.droppedFlits),
                static_cast<unsigned long long>(fs.reroutes),
                static_cast<unsigned long long>(fs.unreachablePairs),
                static_cast<unsigned long long>(fs.degradedCycles),
                static_cast<unsigned long long>(fs.recoveryCycles));
  }

  bool ok = faulted.run.termination == Termination::Drained;
  if (args.check) {
    std::fprintf(stderr, "rair_fault: replaying under the oracle...\n");
    AssembledScenario as = assembleScenario(baseSpec().withFaults(plan));
    check::OracleOptions oo;
    oo.period = 1;
    oo.deadlockPeriod = 64;
    oo.maxInNetworkAge = 20'000;
    oo.failFast = false;
    check::NetworkOracle oracle(as.sim->network(), as.sim->ledger(), oo);
    if (as.injector) oracle.attachFaults(as.injector.get());
    as.sim->observers().attach(&oracle);
    const RunResult run = as.sim->run();
    oracle.finish(run.cyclesRun);
    const check::OracleReport report = oracle.report();
    std::printf("\noracle: %s (%llu scans, %llu deadlock scans)\n",
                report.summary().c_str(),
                static_cast<unsigned long long>(report.scans),
                static_cast<unsigned long long>(report.deadlockScans));
    ok = ok && report.ok();
  }

  if (faulted.run.termination != Termination::Drained)
    std::printf("\nWARNING: faulted run did not drain (%s)\n",
                terminationName(faulted.run.termination));
  return ok ? 0 : 1;
}
