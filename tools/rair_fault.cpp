// rair_fault: replay a fault plan and report per-region degradation
// against the fault-free twin of the same scenario.
//
//   rair_fault --plan outage.fp
//   rair_fault --plan outage.fp --scheme RA_RAIR --threads 4 --check
//   rair_fault --plan corrupt.fp --link-layer retx
//   rair_fault --plan outage.fp --cell fig09:RA_RAIR/p50
//   rair_fault --plan outage.fp --trace workload.trace
//   rair_fault --example > outage.fp
//
// The default workload is the paper's canonical two-app halves scenario
// (Fig. 8): app 0 low-load with fraction p inter-region, app 1 high-load
// intra-regional, rates calibrated against the half-mesh saturation knee.
// --cell swaps it for any built-in campaign cell, --trace for a recorded
// trace. Both runs share the seed and windows, so every reported delta is
// caused by the plan alone.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/builtin.h"
#include "check/oracle.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "link/link_layer.h"
#include "region/region_map.h"
#include "scenarios/paper_scenarios.h"
#include "sim/saturation.h"
#include "sim/scenario.h"
#include "sim/scheme.h"
#include "trace/trace.h"

namespace {

using namespace rair;

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: rair_fault --plan FILE [options]\n"
      "       rair_fault --example\n"
      "\n"
      "Replays the fault plan on the canonical 8x8 two-app workload and\n"
      "reports per-region degradation vs a fault-free twin run.\n"
      "\n"
      "options:\n"
      "  --plan FILE   fault plan, text format (one event per line):\n"
      "                  @<cycle> down|up|stall|unstall <node> <N|E|S|W>\n"
      "                  @<cycle> creditloss <node> <N|E|S|W> <vc> <count>\n"
      "                  @<cycle> freeze|thaw <node>\n"
      "                  @<cycle> corrupt <node> <N|E|S|W> <count>\n"
      "                  @<cycle> reset <node> [<duration>]\n"
      "                  @<cycle> recover <node>\n"
      "                blank lines and #-comments are ignored; <node> is a\n"
      "                row-major id (y*width + x)\n"
      "  --example     print a commented example plan and exit\n"
      "  --scheme S    RO_RR (default), RO_Rank, RA_DBAR, RA_RAIR, RAIR_VA\n"
      "  --p N         inter-region percent of app 0's traffic (default 50)\n"
      "  --seed N      simulation seed (default 1); under --cell this is\n"
      "                the campaign master seed\n"
      "  --fast        5x-shrunk windows (= RAIR_BENCH_FAST=1)\n"
      "  --threads N   sharded cycle engine with N threads (default 0 =\n"
      "                single-threaded; results are byte-identical)\n"
      "  --link-layer KIND\n"
      "                ideal (default) | retx: build every channel with\n"
      "                the CRC/retransmission link layer. corrupt events\n"
      "                require retx; down/up events require ideal; reset\n"
      "                events work on both (retx redelivers after\n"
      "                recovery, ideal treats the reset as a node outage)\n"
      "  --cell CAMPAIGN:KEY\n"
      "                replay the plan on a built-in campaign cell instead\n"
      "                of the canonical workload (e.g.\n"
      "                --cell fig09:RA_RAIR/p50); the twin is the cell\n"
      "                exactly as the campaign runs it, so --scheme/--p\n"
      "                are ignored. Cells that define their own plan (the\n"
      "                faults campaign's non-none cells) are rejected\n"
      "  --trace FILE  replay the plan on a recorded trace workload\n"
      "                (format: <cycle> <src> <dst> <app> <class> <flits>\n"
      "                per line, see src/trace/trace.h) on the 8x8 mesh\n"
      "                instead of the synthetic two-app scenario\n"
      "  --check       additionally replay under the fault-aware network\n"
      "                oracle and report any invariant violations (not\n"
      "                supported with --cell)\n");
}

int printExample() {
  std::printf(
      "# rair_fault example plan (8x8 mesh, node id = y*8 + x).\n"
      "# Cycles are absolute; the paper windows measure 10000..110000,\n"
      "# --fast windows 2000..22000.\n"
      "\n"
      "# 3000-cycle outage of the east link of node (3,3):\n"
      "@5000 down 27 E\n"
      "@8000 up 27 E\n"
      "\n"
      "# Stall the south out-port of node (5,2) for 1000 cycles:\n"
      "@6000 stall 21 S\n"
      "@7000 unstall 21 S\n"
      "\n"
      "# Destroy one credit of adaptive VC 1 on (5,5)'s west port:\n"
      "@6500 creditloss 45 W 1 1\n"
      "\n"
      "# Freeze injection at node (4,4) for 500 cycles:\n"
      "@7000 freeze 36\n"
      "@7500 thaw 36\n"
      "\n"
      "# Corrupt 4 flits entering (3,3)'s east wire. Requires\n"
      "# --link-layer retx, which is incompatible with down/up events --\n"
      "# keep corruption plans separate from outage plans:\n"
      "#@6000 corrupt 27 E 4\n"
      "\n"
      "# Soft-reset the router at (4,3) for 400 cycles (works on both\n"
      "# link layers; equivalent to '@8000 reset 28' + '@8400 recover 28'):\n"
      "@8000 reset 28 400\n");
  return 0;
}

struct Args {
  std::string planFile;
  std::string schemeName = "RO_RR";
  std::string cellRef;
  std::string traceFile;
  LinkLayerKind linkLayer = LinkLayerKind::Ideal;
  int p = 50;
  std::uint64_t seed = 1;
  int threads = 0;
  bool fast = false;
  bool check = false;
};

bool parseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--example") {
      std::exit(printExample());
    } else if (arg == "--fast") {
      args.fast = true;
    } else if (arg == "--check") {
      args.check = true;
    } else if (arg == "--plan") {
      const char* v = next();
      if (!v) return false;
      args.planFile = v;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) return false;
      args.schemeName = v;
    } else if (arg == "--cell") {
      const char* v = next();
      if (!v) return false;
      args.cellRef = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return false;
      args.traceFile = v;
    } else if (arg == "--link-layer") {
      const char* v = next();
      if (!v) return false;
      const auto kind = linkLayerKindFromName(v);
      if (!kind) {
        std::fprintf(stderr, "unknown link layer '%s'\n", v);
        return false;
      }
      args.linkLayer = *kind;
    } else if (arg == "--p") {
      const char* v = next();
      if (!v) return false;
      args.p = std::atoi(v);
      if (args.p < 0 || args.p > 100) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      args.threads = std::atoi(v);
      if (args.threads < 0) return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (!args.cellRef.empty() && !args.traceFile.empty()) {
    std::fprintf(stderr, "--cell and --trace are mutually exclusive\n");
    return false;
  }
  if (!args.cellRef.empty() && args.check) {
    std::fprintf(stderr, "--check is not supported with --cell\n");
    return false;
  }
  return !args.planFile.empty();
}

bool findScheme(const std::string& name, SchemeSpec& out) {
  const std::vector<SchemeSpec> lineup = {
      schemeRoRr(), schemeRoRank(), schemeRaDbar(), schemeRaRair(),
      schemeRairVaOnly()};
  for (const SchemeSpec& s : lineup)
    if (s.label == name) {
      out = s;
      return true;
    }
  return false;
}

/// Friendly plan/layer compatibility check, instead of the injector's
/// RAIR_CHECK abort deep inside the run.
bool validatePlanLayer(const fault::FaultPlan& plan, LinkLayerKind layer) {
  bool corrupt = false, outage = false;
  for (const fault::FaultEvent& e : plan.events()) {
    corrupt |= e.kind == fault::FaultKind::CorruptFlit;
    outage |= e.kind == fault::FaultKind::LinkDown ||
              e.kind == fault::FaultKind::LinkUp;
  }
  if (corrupt && layer == LinkLayerKind::Ideal) {
    std::fprintf(stderr,
                 "plan contains corrupt events, which require the "
                 "retransmission layer: rerun with --link-layer retx\n");
    return false;
  }
  if (outage && layer == LinkLayerKind::Retx) {
    std::fprintf(stderr,
                 "plan contains down/up events, which require the ideal "
                 "link layer (retx has no outage semantics)\n");
    return false;
  }
  return true;
}

void reportPair(const ScenarioResult& twin, const ScenarioResult& faulted) {
  auto line = [](const char* tag, const ScenarioResult& r) {
    std::printf("%-10s %-9s cycles %-8llu created %-7llu delivered %-7llu "
                "mean APL %.2f\n",
                tag, terminationName(r.run.termination),
                static_cast<unsigned long long>(r.run.cyclesRun),
                static_cast<unsigned long long>(r.run.packetsCreated),
                static_cast<unsigned long long>(r.run.packetsDelivered),
                r.meanApl);
  };
  line("twin", twin);
  line("faulted", faulted);

  std::printf("\nper-region degradation (APL vs twin):\n");
  for (std::size_t a = 0; a < faulted.appApl.size(); ++a) {
    const double base = a < twin.appApl.size() ? twin.appApl[a] : 0.0;
    const double delta =
        base > 0.0 ? (faulted.appApl[a] / base - 1.0) * 100.0 : 0.0;
    std::printf("  region %zu (app %zu): %8.2f -> %8.2f  (%+.1f%%)\n", a, a,
                base, faulted.appApl[a], delta);
  }

  if (faulted.faultStats) {
    const fault::FaultStats& fs = *faulted.faultStats;
    std::printf("\nfault accounting: %llu events applied, %llu packets / "
                "%llu flits dropped, %llu reroutes,\n"
                "  %llu unreachable pairs (worst), %llu degraded cycles, "
                "%llu recovery cycles\n",
                static_cast<unsigned long long>(fs.eventsApplied),
                static_cast<unsigned long long>(fs.droppedPackets),
                static_cast<unsigned long long>(fs.droppedFlits),
                static_cast<unsigned long long>(fs.reroutes),
                static_cast<unsigned long long>(fs.unreachablePairs),
                static_cast<unsigned long long>(fs.degradedCycles),
                static_cast<unsigned long long>(fs.recoveryCycles));
    if (fs.corruptedFlits > 0 || fs.retransmittedFlits > 0)
      std::printf("  %llu flits corrupted on the wire, %llu "
                  "retransmitted\n",
                  static_cast<unsigned long long>(fs.corruptedFlits),
                  static_cast<unsigned long long>(fs.retransmittedFlits));
    if (fs.softResets > 0)
      std::printf("  %llu router soft resets\n",
                  static_cast<unsigned long long>(fs.softResets));
  }
}

int finish(const ScenarioResult& faulted, bool ok) {
  if (faulted.run.termination != Termination::Drained)
    std::printf("\nWARNING: faulted run did not drain (%s)\n",
                terminationName(faulted.run.termination));
  return ok ? 0 : 1;
}

/// --cell: replay the plan on a built-in campaign cell; the twin is the
/// cell exactly as rair_campaign would run it.
int runCellMode(const Args& args, const fault::FaultPlan& plan) {
  const auto colon = args.cellRef.find(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr,
                 "--cell expects CAMPAIGN:KEY (e.g. fig09:RA_RAIR/p50)\n");
    return 2;
  }
  const std::string name = args.cellRef.substr(0, colon);
  const std::string key = args.cellRef.substr(colon + 1);
  if (!campaign::isBuiltinCampaign(name)) {
    std::fprintf(stderr, "unknown campaign '%s'\n", name.c_str());
    return 2;
  }

  campaign::BuildContext ctx = campaign::defaultBuildContext(args.fast);
  ctx.campaignSeed = args.seed;
  ctx.sim.net.linkLayer = args.linkLayer;
  ctx.log = [](const std::string& msg) {
    std::fprintf(stderr, "rair_fault: %s\n", msg.c_str());
  };
  const campaign::CampaignSpec spec =
      campaign::buildBuiltinCampaign(name, ctx);

  std::size_t index = spec.cells.size();
  for (std::size_t i = 0; i < spec.cells.size(); ++i)
    if (spec.cells[i].key == key) index = i;
  if (index == spec.cells.size()) {
    std::fprintf(stderr, "campaign %s has no cell '%s'; cells:\n",
                 name.c_str(), key.c_str());
    for (const auto& c : spec.cells)
      std::fprintf(stderr, "  %s\n", c.key.c_str());
    return 2;
  }
  const campaign::CampaignCell& cell = spec.cells[index];
  for (const auto& [label, value] : cell.labels)
    if (label == "fault" && value != "none") {
      std::fprintf(stderr,
                   "cell %s defines its own fault plan; pick a plan-free "
                   "cell (e.g. a /none cell or any non-faults campaign)\n",
                   key.c_str());
      return 2;
    }

  campaign::CellContext cc;
  cc.seed = campaign::cellSeed(spec.campaignSeed, index);
  cc.shardThreads = args.threads;

  std::printf("campaign %s, cell %s, campaign seed %llu, %s windows\n\n",
              name.c_str(), key.c_str(),
              static_cast<unsigned long long>(args.seed),
              args.fast ? "fast" : "paper");
  std::fprintf(stderr, "rair_fault: running fault-free twin...\n");
  const ScenarioResult twin = cell.run(cc);
  std::fprintf(stderr, "rair_fault: replaying plan...\n");
  campaign::CellContext ccFaulted = cc;
  ccFaulted.faults = plan;
  const ScenarioResult faulted = cell.run(ccFaulted);

  reportPair(twin, faulted);
  return finish(faulted, faulted.run.termination == Termination::Drained);
}

/// --trace: replay the plan on a recorded trace workload (8x8 halves
/// fixture, same as the canonical mode).
int runTraceMode(const Args& args, const SchemeSpec& scheme,
                 const fault::FaultPlan& plan) {
  const Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const std::vector<TraceRecord> records = readTraceFile(args.traceFile);
  if (records.empty()) {
    std::fprintf(stderr, "trace '%s' has no records\n",
                 args.traceFile.c_str());
    return 2;
  }
  SimConfig cfg = campaign::paperSimConfig(args.fast);
  int numApps = regions.numApps();
  for (const TraceRecord& r : records) {
    if (r.src >= mesh.numNodes() || r.dst >= mesh.numNodes()) {
      std::fprintf(stderr,
                   "trace '%s' targets node %d outside the 8x8 mesh\n",
                   args.traceFile.c_str(), std::max(r.src, r.dst));
      return 2;
    }
    if (static_cast<int>(r.msgClass) >= cfg.net.numClasses) {
      std::fprintf(stderr,
                   "trace '%s' uses message class %d but the paper "
                   "config has %d class(es)\n",
                   args.traceFile.c_str(), static_cast<int>(r.msgClass),
                   cfg.net.numClasses);
      return 2;
    }
    numApps = std::max(numApps, static_cast<int>(r.app) + 1);
  }

  cfg.net.linkLayer = args.linkLayer;
  cfg.shardThreads = args.threads;
  cfg.routing = scheme.routing;
  cfg.net.rairPartition = scheme.needsRairPartition();

  // The trace fixes each app's offered load, so the rank policies get
  // uniform intensities (they only need a total order).
  const std::vector<double> intensities(
      static_cast<std::size_t>(numApps), 1.0);

  auto runOnce = [&](bool withFaults,
                     check::OracleReport* oracleOut) -> ScenarioResult {
    auto policy = makePolicy(scheme, intensities);
    Simulator sim(mesh, regions, cfg, *policy, numApps);
    sim.addSource(std::make_unique<TraceReplaySource>(records));
    std::unique_ptr<fault::FaultInjector> inj;
    if (withFaults) {
      inj = std::make_unique<fault::FaultInjector>(sim, plan);
      inj->attach();
    }
    std::unique_ptr<check::NetworkOracle> oracle;
    if (oracleOut != nullptr) {
      check::OracleOptions oo;
      oo.period = 1;
      oo.deadlockPeriod = 64;
      oo.maxInNetworkAge = 20'000;
      oo.failFast = false;
      oracle = std::make_unique<check::NetworkOracle>(sim.network(),
                                                      sim.ledger(), oo);
      if (inj) oracle->attachFaults(inj.get());
      sim.observers().attach(oracle.get());
    }
    ScenarioResult res;
    res.run = sim.run();
    if (oracle) {
      oracle->finish(res.run.cyclesRun);
      *oracleOut = oracle->report();
      sim.observers().detach(oracle.get());
    }
    res.meanApl = res.run.stats.overallApl();
    for (AppId a = 0; a < numApps; ++a)
      res.appApl.push_back(res.run.stats.appApl(a));
    if (inj) res.faultStats = inj->stats();
    return res;
  };

  std::printf("trace %s (%zu records, %d apps), scheme %s, %s windows\n\n",
              args.traceFile.c_str(), records.size(), numApps,
              scheme.label.c_str(), args.fast ? "fast" : "paper");
  std::fprintf(stderr, "rair_fault: running fault-free twin...\n");
  const ScenarioResult twin = runOnce(false, nullptr);
  std::fprintf(stderr, "rair_fault: replaying plan...\n");
  const ScenarioResult faulted = runOnce(true, nullptr);
  reportPair(twin, faulted);

  bool ok = faulted.run.termination == Termination::Drained;
  if (args.check) {
    std::fprintf(stderr, "rair_fault: replaying under the oracle...\n");
    check::OracleReport report;
    (void)runOnce(true, &report);
    std::printf("\noracle: %s (%llu scans, %llu deadlock scans)\n",
                report.summary().c_str(),
                static_cast<unsigned long long>(report.scans),
                static_cast<unsigned long long>(report.deadlockScans));
    ok = ok && report.ok();
  }
  return finish(faulted, ok);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parseArgs(argc, argv, args)) {
    usage(stderr);
    return 2;
  }
  if (std::getenv("RAIR_BENCH_FAST") != nullptr) args.fast = true;

  SchemeSpec scheme;
  if (!findScheme(args.schemeName, scheme)) {
    std::fprintf(stderr, "unknown scheme '%s'\n", args.schemeName.c_str());
    return 2;
  }

  std::ifstream in(args.planFile);
  if (!in) {
    std::fprintf(stderr, "cannot read fault plan '%s'\n",
                 args.planFile.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  fault::FaultPlan plan;
  std::string err;
  if (!fault::FaultPlan::parse(text.str(), plan, &err)) {
    std::fprintf(stderr, "bad fault plan '%s': %s\n", args.planFile.c_str(),
                 err.c_str());
    return 2;
  }
  if (plan.empty()) {
    std::fprintf(stderr, "fault plan '%s' has no events\n",
                 args.planFile.c_str());
    return 2;
  }
  if (!validatePlanLayer(plan, args.linkLayer)) return 2;
  std::printf("plan (%zu events):\n%s\n", plan.events().size(),
              plan.format().c_str());

  if (!args.cellRef.empty()) return runCellMode(args, plan);
  if (!args.traceFile.empty()) return runTraceMode(args, scheme, plan);

  const Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);

  // Calibrate the half-mesh saturation knee (the campaign's shared
  // "halves/halfSat" scalar) so the twin runs at the paper's operating
  // point: app 0 at 10% of saturation, app 1 at the stable high load.
  std::fprintf(stderr, "rair_fault: calibrating half-mesh saturation...\n");
  AppTrafficSpec shape;
  shape.app = 0;
  const double sat = appSaturationRate(mesh, regions, shape,
                                       campaign::paperSatOptions(args.fast));
  const auto apps = scenarios::twoAppInterRegion(
      args.p / 100.0, scenarios::kLowLoadFraction * sat,
      scenarios::kHighLoadFraction * sat);

  auto baseSpec = [&] {
    return ScenarioSpec(mesh, regions)
        .withConfig(campaign::paperSimConfig(args.fast))
        .withScheme(scheme)
        .withApps(apps)
        .withSeed(args.seed)
        .withLinkLayer(args.linkLayer)
        .withThreads(args.threads);
  };

  std::fprintf(stderr, "rair_fault: running fault-free twin...\n");
  const ScenarioResult twin = runScenario(baseSpec());
  std::fprintf(stderr, "rair_fault: replaying plan...\n");
  const ScenarioResult faulted = runScenario(baseSpec().withFaults(plan));

  std::printf("scheme %s, p=%d, seed %llu, %s windows\n\n",
              scheme.label.c_str(), args.p,
              static_cast<unsigned long long>(args.seed),
              args.fast ? "fast" : "paper");
  reportPair(twin, faulted);

  bool ok = faulted.run.termination == Termination::Drained;
  if (args.check) {
    std::fprintf(stderr, "rair_fault: replaying under the oracle...\n");
    AssembledScenario as = assembleScenario(baseSpec().withFaults(plan));
    check::OracleOptions oo;
    oo.period = 1;
    oo.deadlockPeriod = 64;
    oo.maxInNetworkAge = 20'000;
    oo.failFast = false;
    check::NetworkOracle oracle(as.sim->network(), as.sim->ledger(), oo);
    if (as.injector) oracle.attachFaults(as.injector.get());
    as.sim->observers().attach(&oracle);
    const RunResult run = as.sim->run();
    oracle.finish(run.cyclesRun);
    const check::OracleReport report = oracle.report();
    std::printf("\noracle: %s (%llu scans, %llu deadlock scans)\n",
                report.summary().c_str(),
                static_cast<unsigned long long>(report.scans),
                static_cast<unsigned long long>(report.deadlockScans));
    ok = ok && report.ok();
  }

  return finish(faulted, ok);
}
