#include "trace/parsec.h"

#include <gtest/gtest.h>

#include "core/rair_policy.h"
#include "sim_test_util.h"

namespace rair {
namespace {

TEST(Parsec, AllThirteenBenchmarksNamed) {
  for (int b = 0; b <= static_cast<int>(ParsecBenchmark::X264); ++b) {
    EXPECT_NE(parsecName(static_cast<ParsecBenchmark>(b)), "?");
  }
  EXPECT_EQ(parsecName(ParsecBenchmark::Blackscholes), "blackscholes");
  EXPECT_EQ(parsecName(ParsecBenchmark::Raytrace), "raytrace");
}

TEST(Parsec, IntensityOrderingOfPresentedSubset) {
  // The paper's representative subset must span low to high intensity in
  // this order (Fig. 16 discussion).
  const double bs = parsecProfile(ParsecBenchmark::Blackscholes).requestRate;
  const double sw = parsecProfile(ParsecBenchmark::Swaptions).requestRate;
  const double fl = parsecProfile(ParsecBenchmark::Fluidanimate).requestRate;
  const double rt = parsecProfile(ParsecBenchmark::Raytrace).requestRate;
  EXPECT_LT(bs, sw);
  EXPECT_LT(sw, fl);
  EXPECT_LT(fl, rt);
}

TEST(Parsec, ProfilesAreRegionalized) {
  for (int b = 0; b <= static_cast<int>(ParsecBenchmark::X264); ++b) {
    const auto p = parsecProfile(static_cast<ParsecBenchmark>(b));
    // RB-3: the majority of traffic is intra-region.
    EXPECT_GT(p.localFraction, 0.5) << parsecName(p.benchmark);
    EXPECT_GE(p.memFraction(), 0.0) << parsecName(p.benchmark);
    EXPECT_LE(p.localFraction + p.remoteFraction, 1.0);
  }
}

TEST(Parsec, SourceGeneratesOnlyFromItsRegion) {
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.measureCycles = 1500;
  Simulator sim(m, rm, cfg, policy, 4);
  sim.addSource(std::make_unique<ParsecSource>(
      m, rm, 2, parsecProfile(ParsecBenchmark::Raytrace), 3));
  const auto r = sim.run();
  EXPECT_GT(r.packetsCreated, 50u);
  EXPECT_EQ(r.stats.app(2).packetsCreated, r.packetsCreated);
  for (AppId a : {0, 1, 3}) EXPECT_EQ(r.stats.app(a).packetsCreated, 0u);
}

TEST(Parsec, RequestReplyHookGeneratesReplies) {
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.measureCycles = 2000;
  cfg.net.numClasses = 2;  // Table 1: VCs per protocol class
  cfg.net.vcsPerClass = 4;
  Simulator sim(m, rm, cfg, policy, 4);
  installRequestReplyHook(sim, m, MemoryTimings{},
                          cfg.warmupCycles + cfg.measureCycles);
  sim.addSource(std::make_unique<ParsecSource>(
      m, rm, 0, parsecProfile(ParsecBenchmark::Fluidanimate), 5));
  struct ClassCounter final : SimObserver {
    std::uint64_t requests = 0, replies = 0;
    void onDelivery(const Packet& p) override {
      (p.msgClass == MsgClass::Request ? requests : replies)++;
    }
  } counter;
  sim.observers().attach(&counter);
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained);
  // Roughly one reply per request delivered before the cutoff (a handful
  // of replies to late requests may still be in flight at exit).
  EXPECT_GT(counter.requests, 50u);
  EXPECT_GT(counter.replies, counter.requests / 2);
  EXPECT_GE(r.packetsDelivered + 20, r.packetsCreated);
}

TEST(Parsec, MemoryRequestsPayMemoryLatency) {
  // A request to a corner MC must come back ~memLatency later; one to an
  // L2 bank after ~l2Latency. Use scripted single requests and compare.
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.net.numClasses = 2;
  Simulator sim(m, rm, cfg, policy, 4);
  MemoryTimings t;
  installRequestReplyHook(sim, m, t, 100'000);
  // Node (1,1) -> corner (0,0) [memory] and -> (2,1) [L2 bank]. A reply's
  // createCycle is when the serving node issued it, so the service latency
  // is visible as the gap between reply creation times.
  struct ReplyTimes final : SimObserver {
    const Mesh* mesh = nullptr;
    Cycle memReplyCreated = 0, l2ReplyCreated = 0;
    void onDelivery(const Packet& p) override {
      if (p.msgClass != MsgClass::Reply) return;
      (mesh->coordOf(p.src).x == 0 ? memReplyCreated : l2ReplyCreated) =
          p.createCycle;
    }
  } replyTimes;
  replyTimes.mesh = &m;
  sim.observers().attach(&replyTimes);
  sim.addSource(std::make_unique<testutil::ScriptedSource>(
      std::vector<testutil::ScriptedSource::Event>{
          {0, m.nodeAt({1, 1}), m.nodeAt({0, 0}), 0, 1, MsgClass::Request},
          {0, m.nodeAt({1, 1}), m.nodeAt({2, 1}), 0, 1, MsgClass::Request},
      }));
  const auto r = sim.run();
  // 2 requests + 2 replies.
  EXPECT_EQ(r.packetsDelivered, 4u);
  // The memory reply was issued ~ (memLatency - l2Latency) later than the
  // L2 reply (request distances are 2 hops vs 1 hop; service dominates).
  ASSERT_GT(replyTimes.memReplyCreated, 0u);
  ASSERT_GT(replyTimes.l2ReplyCreated, 0u);
  EXPECT_GT(replyTimes.memReplyCreated,
            replyTimes.l2ReplyCreated + (t.memLatency - t.l2Latency) / 2);
}

TEST(Parsec, HookRespectsCutoff) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.net.numClasses = 2;
  Simulator sim(m, rm, cfg, policy, 2);
  installRequestReplyHook(sim, m, MemoryTimings{}, /*replyCutoff=*/1);
  sim.addSource(std::make_unique<testutil::ScriptedSource>(
      std::vector<testutil::ScriptedSource::Event>{
          {5, 0, 15, 0, 1, MsgClass::Request}}));
  const auto r = sim.run();
  // Request delivered after the cutoff -> no reply generated.
  EXPECT_EQ(r.packetsDelivered, 1u);
}

}  // namespace
}  // namespace rair
