// Behavioral reproduction checks: the directional claims of the paper's
// evaluation must hold in this implementation (shape, not absolute
// numbers). These use shorter windows than the benches; the benches
// regenerate the full figures.
#include <gtest/gtest.h>

#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"

namespace rair {
namespace {

SimConfig cfg(Cycle measure = 10'000) {
  SimConfig c;
  c.warmupCycles = 2'000;
  c.measureCycles = measure;
  c.drainLimit = 100'000;
  return c;
}


// All cells in this file share the short windows from cfg().
ScenarioResult run(const Mesh& m, const RegionMap& rm,
                   const SchemeSpec& scheme,
                   const std::vector<AppTrafficSpec>& apps,
                   double adversarialRate = 0.0) {
  return runScenario(ScenarioSpec(m, rm)
                         .withConfig(cfg())
                         .withScheme(scheme)
                         .withApps(apps)
                         .withAdversarialRate(adversarialRate));
}

// Fixed loads standing in for "10% / 90% of saturation" (the benches
// calibrate properly; see bench/fig09_msp.cpp).
constexpr double kLowLoad = 0.04;
constexpr double kHighLoad = 0.26;

TEST(Interference, RairProtectsInterRegionTrafficFromHighLoadRegion) {
  // Fig. 9's headline: with most of App 0's (low-load) traffic crossing
  // into App 1's (high-load) region, RAIR cuts App 0's APL substantially
  // while App 1 pays only a small penalty.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const auto apps = scenarios::twoAppInterRegion(0.8, kLowLoad, kHighLoad);

  const auto rr = run(m, rm, schemeRoRr(), apps);
  const auto rair = run(m, rm, schemeRaRair(), apps);

  const double app0Gain = rair.reductionVs(rr, 0);
  const double app1Loss = -rair.reductionVs(rr, 1);
  EXPECT_GT(app0Gain, 0.05) << "RAIR must visibly accelerate App 0";
  EXPECT_LT(app1Loss, 0.10) << "App 1 penalty must stay small";
}

TEST(Interference, MspAtVaAndSaBeatsVaOnly) {
  // Fig. 9: enforcing the priority at both VA and SA is stronger than at
  // VA alone.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const auto apps = scenarios::twoAppInterRegion(1.0, kLowLoad, kHighLoad);

  const auto rr = run(m, rm, schemeRoRr(), apps);
  const auto va = run(m, rm, schemeRairVaOnly(), apps);
  const auto vasa = run(m, rm, schemeRaRair(), apps);

  EXPECT_GT(va.reductionVs(rr, 0), 0.0);
  EXPECT_GE(vasa.reductionVs(rr, 0), va.reductionVs(rr, 0) - 0.02);
  EXPECT_GT(vasa.reductionVs(rr, 0), va.reductionVs(rr, 0) * 0.9);
}

TEST(Interference, StaticPrioritiesEachFailOneScenario) {
  // Fig. 12: ForeignH wins scenario (a) (low-load foreign traffic enters
  // the high-load region), NativeH wins scenario (b) (high-load foreign
  // traffic invades low-load regions). DPA must track the winner in both.
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);

  const auto scenA = scenarios::fourAppLowTowardHigh(kLowLoad, kHighLoad);
  const auto scenB = scenarios::fourAppHighTowardLow(kLowLoad, kHighLoad);

  auto meanLowApps = [](const ScenarioResult& r) {
    return (r.appApl[0] + r.appApl[1] + r.appApl[2]) / 3.0;
  };

  // Scenario (a): the critical packets are Apps 0-2's foreign traffic.
  const auto aForeign = run(m, rm, schemeRairForeignHigh(), scenA);
  const auto aNative = run(m, rm, schemeRairNativeHigh(), scenA);
  const auto aDpa = run(m, rm, schemeRaRair(), scenA);
  EXPECT_LT(meanLowApps(aForeign), meanLowApps(aNative));
  EXPECT_LT(meanLowApps(aDpa), meanLowApps(aNative) * 1.02);

  // Scenario (b): the critical packets are Apps 0-2's native traffic.
  const auto bForeign = run(m, rm, schemeRairForeignHigh(), scenB);
  const auto bNative = run(m, rm, schemeRairNativeHigh(), scenB);
  const auto bDpa = run(m, rm, schemeRaRair(), scenB);
  EXPECT_LT(meanLowApps(bNative), meanLowApps(bForeign));
  EXPECT_LT(meanLowApps(bDpa), meanLowApps(bForeign) * 1.02);
}

TEST(Interference, RairLimitsAdversarialSlowdown) {
  // Fig. 17's shape: under a chip-wide flood, RAIR's slowdown must be
  // clearly smaller than round-robin's.
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  std::vector<AppTrafficSpec> apps(4);
  for (AppId a = 0; a < 4; ++a) {
    apps[static_cast<size_t>(a)].app = a;
    apps[static_cast<size_t>(a)].injectionRate = 0.06;
    apps[static_cast<size_t>(a)].intraFraction = 0.9;
    apps[static_cast<size_t>(a)].interFraction = 0.1;
  }
  // The paper floods at 0.4 flits/cycle/node, ~80% of its network's
  // saturation throughput; our substrate saturates at ~0.36 for chip-wide
  // UR, so the equivalent flood is ~0.3 (bench/fig17 calibrates exactly).
  constexpr double kAttackRate = 0.30;

  auto meanApps = [](const ScenarioResult& r) {
    return (r.appApl[0] + r.appApl[1] + r.appApl[2] + r.appApl[3]) / 4.0;
  };

  const auto rrBase = run(m, rm, schemeRoRr(), apps);
  const auto rrAtk = run(m, rm, schemeRoRr(), apps, kAttackRate);
  const auto raBase = run(m, rm, schemeRaRair(), apps);
  const auto raAtk = run(m, rm, schemeRaRair(), apps, kAttackRate);

  const double rrSlowdown = meanApps(rrAtk) / meanApps(rrBase);
  const double raSlowdown = meanApps(raAtk) / meanApps(raBase);
  EXPECT_GT(rrSlowdown, 1.05) << "the flood must actually hurt";
  EXPECT_LT(raSlowdown, rrSlowdown)
      << "RAIR must shield native traffic from the flood";
}

TEST(Interference, DbarRoutingComposesWithRair) {
  // Fig. 10: RAIR on DBAR routing must not be worse for App 0 than RAIR
  // on local-adaptive routing (better load balance can only help here),
  // and must still beat plain RO_RR.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const auto apps = scenarios::twoAppInterRegion(1.0, kLowLoad, kHighLoad);

  const auto rrLocal = run(m, rm, schemeRoRr(), apps);
  const auto rairDbar = run(m, rm, schemeRaRair(RoutingKind::Dbar), apps);
  EXPECT_GT(rairDbar.reductionVs(rrLocal, 0), 0.05);
}

}  // namespace
}  // namespace rair
