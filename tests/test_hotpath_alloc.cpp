// Steady-state allocation audit: once the simulator is warm (packet slab
// at its high-water mark, every ring buffer grown to its working size),
// advancing the simulation must not reach the allocator at all — the
// tentpole guarantee of the hot-path refactor.
//
// A counting global operator new underpins the check, so this test lives
// in its own binary (the replacement operators are process-wide).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>

#include "metrics/recorder.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};

void* countedAlloc(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* countedAlignedAlloc(std::size_t size, std::align_val_t align) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace rair {
namespace {

/// Steady-state allocations while stepping `cycles` cycles of a warm
/// fig09-style two-app simulation under `scheme`.
std::uint64_t steadyStateAllocs(const SchemeSpec& scheme, Cycle warmCycles,
                                Cycle measuredCycles,
                                bool withMetrics = false) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  // The fig09 p=100 cell shape at moderate absolute loads: app 0 fully
  // inter-region, app 1 hot and local.
  const auto apps = scenarios::twoAppInterRegion(1.0, 0.04, 0.26);

  SimConfig cfg = ScenarioSpec::windowPreset(true);
  cfg.routing = scheme.routing;
  cfg.net.rairPartition = scheme.needsRairPartition();

  std::vector<double> intensities;
  for (const auto& a : apps) intensities.push_back(a.injectionRate);
  const auto policy = makePolicy(scheme, intensities);
  Simulator sim(mesh, regions, cfg, *policy, 2);
  std::uint64_t seed = 1;
  for (const auto& a : apps) {
    sim.addSource(std::make_unique<RegionalizedSource>(mesh, regions, a,
                                                       seed));
    seed += 0x9E3779B9ull;
  }

  std::optional<metrics::MetricsRecorder> recorder;
  if (withMetrics) {
    // Default-level recorder, as runScenario() attaches it: all registry
    // cells are preallocated at registration, so the warm loop below must
    // stay allocation-free with it observing every delivery.
    metrics::MetricsOptions mo;  // Counters level
    recorder.emplace(sim.network(), regions, mo, /*numApps=*/2,
                     warmCycles + measuredCycles);
    sim.observers().attach(&*recorder);
  }

  sim.begin();
  for (Cycle c = 0; c < warmCycles; ++c) sim.stepCycle();

  const std::uint64_t before = gAllocCount.load(std::memory_order_relaxed);
  for (Cycle c = 0; c < measuredCycles; ++c) sim.stepCycle();
  return gAllocCount.load(std::memory_order_relaxed) - before;
}

TEST(HotPathAlloc, CountingOperatorNewIsActive) {
  const std::uint64_t before = gAllocCount.load(std::memory_order_relaxed);
  volatile int* p = new int(42);
  delete p;
  EXPECT_GT(gAllocCount.load(std::memory_order_relaxed), before);
}

TEST(HotPathAlloc, WarmSimulationStepsAreAllocationFreeRoRr) {
  EXPECT_EQ(steadyStateAllocs(schemeRoRr(), 8'000, 2'000), 0u);
}

TEST(HotPathAlloc, WarmSimulationStepsAreAllocationFreeRaRair) {
  EXPECT_EQ(steadyStateAllocs(schemeRaRair(), 8'000, 2'000), 0u);
}

TEST(HotPathAlloc, WarmStepsStayAllocationFreeWithMetricsRecorder) {
  EXPECT_EQ(steadyStateAllocs(schemeRaRair(), 8'000, 2'000,
                              /*withMetrics=*/true),
            0u);
}

}  // namespace
}  // namespace rair
