// The simulation oracle (src/check/) as a test fixture: a clean run must
// produce zero violations, an armed run must not perturb results, and a
// deliberately corrupted network must be caught.
#include "check/oracle.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "check/fuzz.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "traffic/generator.h"

namespace rair {
namespace {

/// A 4x4 mesh with two half-chip apps at moderate load: enough contention
/// to exercise VA/SA arbitration, escape VCs and credit round-trips.
struct OracleFixture {
  Mesh mesh{4, 4};
  RegionMap regions;
  SimConfig cfg;
  std::unique_ptr<ArbiterPolicy> policy;
  std::unique_ptr<Simulator> sim;

  explicit OracleFixture(const SchemeSpec& scheme, std::uint64_t seed = 7,
                         double rate = 0.25)
      : regions(RegionMap::halves(mesh)) {
    cfg.warmupCycles = 0;
    cfg.measureCycles = 2'000;
    cfg.drainLimit = 30'000;
    cfg.routing = scheme.routing;
    cfg.net.rairPartition = scheme.needsRairPartition();
    policy = makePolicy(scheme, {rate, rate});
    sim = std::make_unique<Simulator>(mesh, regions, cfg, *policy, 2);
    for (AppId a = 0; a < 2; ++a) {
      AppTrafficSpec app;
      app.app = a;
      app.injectionRate = rate;
      app.intraFraction = 0.5;
      app.interFraction = 0.4;
      app.mcFraction = 0.1;
      sim->addSource(std::make_unique<RegionalizedSource>(mesh, regions, app,
                                                          seed + a));
    }
  }
};

TEST(Oracle, CleanRunHasNoViolations) {
  for (const SchemeSpec& scheme : {schemeRoRr(), schemeRaRair()}) {
    OracleFixture fx(scheme);
    check::OracleOptions oo;
    oo.period = 1;
    oo.deadlockPeriod = 16;
    oo.failFast = false;
    check::NetworkOracle oracle(fx.sim->network(), fx.sim->ledger(), oo);
    fx.sim->observers().attach(&oracle);
    const RunResult r = fx.sim->run();
    oracle.finish(r.cyclesRun);
    const check::OracleReport rep = oracle.report();
    EXPECT_TRUE(rep.ok()) << scheme.label << ": " << rep.summary();
    EXPECT_GT(rep.scans, 1000u);
    EXPECT_GT(rep.deadlockScans, 0u);
  }
}

TEST(Oracle, ArmedRunDoesNotPerturbResults) {
  // The oracle is a pure observer: same seed with and without it attached
  // must give bit-identical outcomes.
  auto runOnce = [](bool armed) {
    OracleFixture fx(schemeRaRair(), /*seed=*/42);
    std::unique_ptr<check::NetworkOracle> oracle;
    if (armed) {
      oracle = std::make_unique<check::NetworkOracle>(
          fx.sim->network(), fx.sim->ledger(),
          check::OracleOptions::armed());
      fx.sim->observers().attach(oracle.get());
    }
    return fx.sim->run();
  };
  const RunResult plain = runOnce(false);
  const RunResult armed = runOnce(true);
  EXPECT_EQ(armed.cyclesRun, plain.cyclesRun);
  EXPECT_EQ(armed.packetsCreated, plain.packetsCreated);
  EXPECT_EQ(armed.packetsDelivered, plain.packetsDelivered);
  EXPECT_EQ(armed.flitHops, plain.flitHops);
  EXPECT_EQ(armed.deliveredFlitRate, plain.deliveredFlitRate);
  EXPECT_EQ(armed.stats.overallApl(), plain.stats.overallApl());
  EXPECT_EQ(armed.stats.appApl(0), plain.stats.appApl(0));
  EXPECT_EQ(armed.stats.appApl(1), plain.stats.appApl(1));
}

TEST(Oracle, DroppedCreditIsCaught) {
  OracleFixture fx(schemeRoRr());
  check::OracleOptions oo;
  oo.period = 1;
  oo.failFast = false;
  check::NetworkOracle oracle(fx.sim->network(), fx.sim->ledger(), oo);
  fx.sim->observers().attach(&oracle);
  fx.sim->begin();

  // Warm the network, then lose one credit on the first link that holds
  // a droppable one.
  for (int i = 0; i < 200; ++i) fx.sim->stepCycle();
  bool dropped = false;
  for (NodeId n = 0; n < fx.mesh.numNodes() && !dropped; ++n)
    for (int p = 0; p < kNumPorts && !dropped; ++p)
      for (int vc = 0; vc < fx.sim->network().layout().totalVcs(); ++vc)
        if (fx.sim->network().router(n).debugDropCredit(static_cast<Dir>(p),
                                                        vc)) {
          dropped = true;
          break;
        }
  ASSERT_TRUE(dropped) << "no credit in flight to drop after warmup";

  for (int i = 0; i < 5; ++i) fx.sim->stepCycle();
  const check::OracleReport rep = oracle.report();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.violations[0].what.find("credit conservation"),
            std::string::npos)
      << rep.summary();
}

TEST(Oracle, StarvationWatchdogFiresOnTinyAgeBound) {
  OracleFixture fx(schemeRoRr());
  check::OracleOptions oo;
  oo.period = 1;
  oo.maxInNetworkAge = 2;  // virtually every packet exceeds this
  oo.failFast = false;
  check::NetworkOracle oracle(fx.sim->network(), fx.sim->ledger(), oo);
  fx.sim->observers().attach(&oracle);
  fx.sim->begin();
  for (int i = 0; i < 300; ++i) fx.sim->stepCycle();
  const check::OracleReport rep = oracle.report();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.violations[0].what.find("starvation"), std::string::npos)
      << rep.summary();
}

TEST(Oracle, FinishFlagsUndrainedTrafficOnEmptyLedger) {
  // finish() is only meaningful when the ledger empties; mid-run it holds
  // traffic, so the quiescence cross-check must stay silent.
  OracleFixture fx(schemeRoRr());
  check::OracleOptions oo;
  oo.failFast = false;
  check::NetworkOracle oracle(fx.sim->network(), fx.sim->ledger(), oo);
  fx.sim->observers().attach(&oracle);
  fx.sim->begin();
  for (int i = 0; i < 100; ++i) fx.sim->stepCycle();
  ASSERT_GT(fx.sim->inFlight(), 0u);
  oracle.finish(fx.sim->now());
  EXPECT_TRUE(oracle.report().ok()) << oracle.report().summary();
}

TEST(FuzzHarness, CaseGenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 0xDEADBEEFull, 987654321ull}) {
    const check::FuzzCase a = check::generateCase(seed);
    const check::FuzzCase b = check::generateCase(seed);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_GE(a.meshW, 2);
    EXPECT_GE(a.meshH, 2);
    EXPECT_GE(a.vcsPerClass, 3);  // valid under RAIR partitioning
    EXPECT_EQ(static_cast<int>(a.apps.size()), a.regionsX * a.regionsY);
  }
}

TEST(FuzzHarness, SmokeRunIsClean) {
  check::FuzzOptions opts;
  opts.scenarios = 3;
  opts.seed = 11;
  const check::FuzzSummary sum = check::runFuzz(opts);
  EXPECT_EQ(sum.casesRun, 6);  // 3 cases x 2 default schemes
  EXPECT_EQ(sum.failures, 0) << (sum.failed.empty()
                                     ? std::string("?")
                                     : sum.failed[0].report.summary());
}

TEST(FuzzHarness, InjectedFaultsAreCaught) {
  // The self-test of the whole subsystem: every injected fault -- whether
  // a dropped credit or a corrupted metrics counter cell -- must make the
  // oracle report a violation.
  check::FuzzOptions opts;
  opts.scenarios = 6;
  opts.seed = 23;
  opts.injectFault = true;
  int creditFaults = 0;
  int counterFaults = 0;
  const check::FuzzSummary sum =
      check::runFuzz(opts, [&](int, const check::FuzzCaseResult& res) {
        if (!res.faultInjected) return;
        if (res.faultKind == "credit") ++creditFaults;
        if (res.faultKind == "counter") ++counterFaults;
      });
  EXPECT_EQ(sum.casesRun, 12);
  EXPECT_EQ(sum.faultsMissed, 0);
  // At these loads an idle network is essentially impossible; if every
  // case skipped, the self-test would be vacuous.
  EXPECT_LT(sum.faultsSkipped, sum.casesRun);
  // The case seed alternates the corruption model; with six cases both
  // kinds must have been exercised.
  EXPECT_GT(creditFaults, 0);
  EXPECT_GT(counterFaults, 0);
}

TEST(Oracle, SummaryFormatsSingleMultipleAndTruncatedReports) {
  check::OracleReport rep;
  EXPECT_EQ(rep.summary(), "ok");
  rep.violations.push_back({12, "flit conservation broke"});
  EXPECT_EQ(rep.summary(), "cycle 12: flit conservation broke");
  rep.violations.push_back({15, "credit conservation broke"});
  rep.violations.push_back({16, "starvation"});
  EXPECT_NE(rep.summary().find("cycle 12: flit conservation broke"),
            std::string::npos);
  EXPECT_NE(rep.summary().find("(+2 more)"), std::string::npos);
  rep.truncated = true;
  EXPECT_NE(rep.summary().find("(+2 more, truncated)"), std::string::npos);
}

TEST(FuzzHarness, SchemeMatricesCoverTheLineup) {
  const auto dflt = check::defaultFuzzSchemes();
  ASSERT_EQ(dflt.size(), 2u);
  const auto wide = check::allFuzzSchemes();
  ASSERT_EQ(wide.size(), 5u);
  std::set<std::string> labels;
  for (const auto& s : wide) labels.insert(s.label);
  // XY-routed RO_RR shares the RO_RR label; the other four are distinct.
  EXPECT_GE(labels.size(), 4u);
}

TEST(FuzzHarness, FaultPlanAppearsInCaseDescription) {
  // Generated plans always contain at least one link outage, so the
  // describe() line must advertise the fault dimension of the case.
  const std::uint64_t cs = 0x77ull;
  check::FuzzCase c = check::generateCase(cs);
  EXPECT_EQ(c.describe().find("faults"), std::string::npos);
  c.faults = check::generateFaultPlan(cs, c);
  ASSERT_FALSE(c.faults.empty());
  EXPECT_NE(c.describe().find("faults"), std::string::npos);
}

TEST(FuzzHarness, ShrinkerReducesUndrainedFailingCase) {
  // A zero drain budget makes every saturated case fail (traffic cannot
  // drain by the hard stop), which drives the shrinker down its whole
  // reduction ladder: with every candidate still failing, the fault plan
  // is removed first, then cycles halve and the geometry collapses.
  check::FuzzOptions opts;
  opts.scenarios = 2;
  opts.seed = 77;  // cases cover adversarial/classes/latency/regions/faults
  opts.faultPlan = true;
  opts.shrink = true;
  opts.drainBudget = 0;
  opts.schemes = {schemeRoRr()};
  const check::FuzzSummary sum = check::runFuzz(opts);
  EXPECT_EQ(sum.casesRun, 2);
  EXPECT_EQ(sum.failures, 2);
  ASSERT_EQ(sum.failed.size(), 2u);
  for (const auto& res : sum.failed) {
    EXPECT_FALSE(res.drained);
    EXPECT_TRUE(res.wasShrunk) << res.shrunk.describe();
    // The fault-free variant still fails, so the plan must be gone and
    // the minimal repro collapsed to one region at unit link latency.
    EXPECT_TRUE(res.shrunk.faults.empty());
    EXPECT_EQ(res.shrunk.regionsX * res.shrunk.regionsY, 1);
    EXPECT_EQ(res.shrunk.linkLatency, 1u);
    EXPECT_EQ(res.shrunk.adversarialRate, 0.0);
    EXPECT_GE(res.shrunk.sourceCycles, 100u);
  }
}

TEST(FuzzHarness, ReproPathShrinksFailingCaseToo) {
  check::FuzzOptions opts;
  opts.faultPlan = true;
  opts.shrink = true;
  opts.drainBudget = 0;
  opts.schemes = {schemeRoRr()};
  const auto results = check::runFuzzSeed(0xF00Dull, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].failed());
  EXPECT_TRUE(results[0].wasShrunk) << results[0].shrunk.describe();
}

TEST(FuzzHarness, ReproPathReproducesCleanRun) {
  check::FuzzOptions opts;
  const auto results = check::runFuzzSeed(0x1234u, opts);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& res : results) {
    EXPECT_TRUE(res.drained);
    EXPECT_TRUE(res.report.ok()) << res.report.summary();
    EXPECT_EQ(res.caseSeed, 0x1234u);
  }
}

}  // namespace
}  // namespace rair
