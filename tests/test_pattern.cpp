#include "traffic/pattern.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rair {
namespace {

TEST(Pattern, UniformRandomNeverPicksSource) {
  Mesh m(8, 8);
  auto p = makePattern(PatternKind::UniformRandom, m);
  Xoshiro256StarStar rng(1);
  for (int i = 0; i < 5000; ++i) {
    const NodeId d = p->pick(13, rng);
    EXPECT_NE(d, 13);
    EXPECT_TRUE(m.contains(d));
  }
}

TEST(Pattern, UniformRandomCoversAllDestinations) {
  Mesh m(4, 4);
  auto p = makePattern(PatternKind::UniformRandom, m);
  Xoshiro256StarStar rng(2);
  std::set<NodeId> seen;
  for (int i = 0; i < 3000; ++i) seen.insert(p->pick(0, rng));
  EXPECT_EQ(seen.size(), 15u);  // every node except the source
}

TEST(Pattern, TransposeMapsCoordinates) {
  Mesh m(8, 8);
  auto p = makePattern(PatternKind::Transpose, m);
  Xoshiro256StarStar rng(3);
  EXPECT_EQ(p->pick(m.nodeAt({2, 5}), rng), m.nodeAt({5, 2}));
  EXPECT_EQ(p->pick(m.nodeAt({7, 0}), rng), m.nodeAt({0, 7}));
  // Diagonal maps to itself (callers skip such packets).
  EXPECT_EQ(p->pick(m.nodeAt({4, 4}), rng), m.nodeAt({4, 4}));
}

TEST(Pattern, BitComplementMirrorsIds) {
  Mesh m(8, 8);
  auto p = makePattern(PatternKind::BitComplement, m);
  Xoshiro256StarStar rng(4);
  EXPECT_EQ(p->pick(0, rng), 63);
  EXPECT_EQ(p->pick(63, rng), 0);
  EXPECT_EQ(p->pick(20, rng), 43);
}

TEST(Pattern, HotspotDefaultsToCenter) {
  Mesh m(8, 8);
  auto p = makePattern(PatternKind::Hotspot, m);
  Xoshiro256StarStar rng(5);
  const std::set<NodeId> expect = {m.nodeAt({3, 3}), m.nodeAt({4, 3}),
                                   m.nodeAt({3, 4}), m.nodeAt({4, 4})};
  std::set<NodeId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(p->pick(0, rng));
  EXPECT_EQ(seen, expect);
}

TEST(Pattern, HotspotCustomNodes) {
  Mesh m(8, 8);
  auto p = makePattern(PatternKind::Hotspot, m, {7, 56});
  Xoshiro256StarStar rng(6);
  for (int i = 0; i < 200; ++i) {
    const NodeId d = p->pick(0, rng);
    EXPECT_TRUE(d == 7 || d == 56);
  }
}

TEST(Pattern, SetUniformStaysInSet) {
  SetUniformPattern p({3, 7, 11, 19});
  Xoshiro256StarStar rng(7);
  std::set<NodeId> seen;
  for (int i = 0; i < 1000; ++i) {
    const NodeId d = p.pick(7, rng);
    EXPECT_NE(d, 7);
    seen.insert(d);
  }
  EXPECT_EQ(seen, (std::set<NodeId>{3, 11, 19}));
}

TEST(Pattern, SetUniformSourceOutsideSet) {
  SetUniformPattern p({3, 7});
  Xoshiro256StarStar rng(8);
  std::set<NodeId> seen;
  for (int i = 0; i < 100; ++i) seen.insert(p.pick(100, rng));
  EXPECT_EQ(seen, (std::set<NodeId>{3, 7}));
}

TEST(Pattern, Names) {
  EXPECT_STREQ(patternName(PatternKind::UniformRandom), "UR");
  EXPECT_STREQ(patternName(PatternKind::Transpose), "TP");
  EXPECT_STREQ(patternName(PatternKind::BitComplement), "BC");
  EXPECT_STREQ(patternName(PatternKind::Hotspot), "HS");
}

}  // namespace
}  // namespace rair
