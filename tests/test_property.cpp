// Property-based sweeps: structural invariants of the simulator must hold
// across the cross product of routing algorithms, arbitration policies,
// traffic patterns, loads and seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"

namespace rair {
namespace {

SimConfig sweepCfg() {
  SimConfig cfg;
  cfg.warmupCycles = 500;
  cfg.measureCycles = 2'500;
  cfg.drainLimit = 80'000;
  cfg.progressTimeout = 30'000;
  return cfg;
}

SchemeSpec schemeFor(PolicyKind policy, RoutingKind routing) {
  switch (policy) {
    case PolicyKind::RoundRobin: return schemeRoRr(routing);
    case PolicyKind::AgeBased: {
      SchemeSpec s = schemeRoRr(routing);
      s.policy = PolicyKind::AgeBased;
      s.label = "RO_Age";
      return s;
    }
    case PolicyKind::StcRank: return schemeRoRank(routing);
    case PolicyKind::Rair: return schemeRaRair(routing);
  }
  return schemeRoRr(routing);
}

/// Invariants asserted on every run of the sweep:
///  * the run drains (no deadlock, load below saturation by construction),
///  * every measured packet is delivered exactly once,
///  * hop counts are minimal (all routing here is minimal: a packet
///    traverses hopDistance(src,dst) + 1 routers),
///  * latency is bounded below by the zero-load pipeline latency.
void checkInvariants(const ScenarioResult& r, const char* what) {
  EXPECT_TRUE(r.run.fullyDrained) << what;
  EXPECT_EQ(r.run.stats.measuredInFlight(), 0u) << what;
  const auto all = r.run.stats.overall();
  EXPECT_GT(all.packetsDelivered, 0u) << what;
  // Minimal routing on an 8x8 mesh: 2..15 routers per path.
  EXPECT_GE(all.hops.min(), 2.0) << what;
  EXPECT_LE(all.hops.max(), 15.0) << what;
  // A packet cannot beat the pipeline: >= 4 cycles/hop + NIC/eject.
  EXPECT_GE(all.totalLatency.min(), 4.0 * (all.hops.min() - 1) + 5.0)
      << what;
}

// ---- Scheme sweep: routing x policy on the two-app workload -------------

using SchemeParam = std::tuple<RoutingKind, PolicyKind>;

class SchemeSweep : public ::testing::TestWithParam<SchemeParam> {};

TEST_P(SchemeSweep, InvariantsHold) {
  const auto [routing, policy] = GetParam();
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const auto apps = scenarios::twoAppInterRegion(0.5, 0.05, 0.20);
  const auto scheme = schemeFor(policy, routing);
  const auto r = runScenario(ScenarioSpec(m, rm)
                                 .withConfig(sweepCfg())
                                 .withScheme(scheme)
                                 .withApps(apps));
  checkInvariants(r, scheme.label.c_str());
}

TEST_P(SchemeSweep, Deterministic) {
  const auto [routing, policy] = GetParam();
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const auto apps = scenarios::twoAppInterRegion(0.3, 0.05, 0.15);
  const auto scheme = schemeFor(policy, routing);
  const ScenarioSpec spec = ScenarioSpec(m, rm)
                                .withConfig(sweepCfg())
                                .withScheme(scheme)
                                .withApps(apps);
  const auto r1 = runScenario(spec);
  const auto r2 = runScenario(spec);
  EXPECT_DOUBLE_EQ(r1.meanApl, r2.meanApl) << scheme.label;
  EXPECT_EQ(r1.run.packetsCreated, r2.run.packetsCreated) << scheme.label;
}

std::string schemeParamName(
    const ::testing::TestParamInfo<SchemeParam>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case RoutingKind::Xy: name = "Xy"; break;
    case RoutingKind::LocalAdaptive: name = "Local"; break;
    case RoutingKind::Dbar: name = "Dbar"; break;
  }
  switch (std::get<1>(info.param)) {
    case PolicyKind::RoundRobin: name += "RoundRobin"; break;
    case PolicyKind::AgeBased: name += "AgeBased"; break;
    case PolicyKind::StcRank: name += "StcRank"; break;
    case PolicyKind::Rair: name += "Rair"; break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep,
    ::testing::Combine(::testing::Values(RoutingKind::Xy,
                                         RoutingKind::LocalAdaptive,
                                         RoutingKind::Dbar),
                       ::testing::Values(PolicyKind::RoundRobin,
                                         PolicyKind::AgeBased,
                                         PolicyKind::StcRank,
                                         PolicyKind::Rair)),
    schemeParamName);

// ---- Pattern x load sweep under the RAIR scheme ---------------------------

using PatternParam = std::tuple<PatternKind, double>;

class PatternSweep : public ::testing::TestWithParam<PatternParam> {};

TEST_P(PatternSweep, InvariantsHold) {
  const auto [pattern, load] = GetParam();
  Mesh m(8, 8);
  const auto rm = RegionMap::sixRegions(m);
  std::vector<double> rates(6, load);
  const auto apps = scenarios::sixAppMixed(pattern, rates);
  const auto r = runScenario(ScenarioSpec(m, rm)
                                 .withConfig(sweepCfg())
                                 .withScheme(schemeRaRair())
                                 .withApps(apps));
  checkInvariants(r, patternName(pattern));
  for (AppId a = 0; a < 6; ++a)
    EXPECT_GT(r.appApl[static_cast<size_t>(a)], 0.0);
}

std::string patternParamName(
    const ::testing::TestParamInfo<PatternParam>& info) {
  return std::string(patternName(std::get<0>(info.param))) +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndLoads, PatternSweep,
    ::testing::Combine(::testing::Values(PatternKind::UniformRandom,
                                         PatternKind::Transpose,
                                         PatternKind::BitComplement,
                                         PatternKind::Hotspot),
                       ::testing::Values(0.02, 0.08, 0.15)),
    patternParamName);

// ---- Seed sweep: statistics are stable across seeds -----------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, AplWithinBandAcrossSeeds) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const auto apps = scenarios::twoAppInterRegion(0.4, 0.05, 0.18);
  const auto r = runScenario(ScenarioSpec(m, rm)
                                 .withConfig(sweepCfg())
                                 .withScheme(schemeRoRr())
                                 .withApps(apps)
                                 .withSeed(GetParam()));
  checkInvariants(r, "seed sweep");
  // APL at these fixed loads is tightly concentrated; a run falling far
  // outside this band indicates a seeding or measurement bug.
  EXPECT_GT(r.meanApl, 15.0);
  EXPECT_LT(r.meanApl, 60.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---- Mesh-size sweep -------------------------------------------------------

class MeshSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshSweep, WorksAcrossMeshSizes) {
  const int w = GetParam().first;
  const int h = GetParam().second;
  Mesh m(w, h);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  auto cfg = sweepCfg();
  Simulator sim(m, rm, cfg, policy, 2);
  for (AppId a = 0; a < 2; ++a) {
    AppTrafficSpec spec;
    spec.app = a;
    spec.injectionRate = 0.05;
    spec.intraFraction = 0.6;
    spec.interFraction = 0.4;
    sim.addSource(std::make_unique<RegionalizedSource>(
        m, rm, spec, 3 + static_cast<std::uint64_t>(a)));
  }
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained) << w << "x" << h;
  EXPECT_GT(r.packetsDelivered, 50u) << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSweep,
                         ::testing::Values(std::pair{4, 4}, std::pair{8, 4},
                                           std::pair{4, 8}, std::pair{8, 8},
                                           std::pair{6, 6}));

}  // namespace
}  // namespace rair
