// Snapshot subsystem: serialization primitives, per-subsystem round
// trips, whole-simulator save/restore stability, the divergence bisector,
// and the warm-state cache / checkpoint flows of runScenario.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metrics/histogram.h"
#include "packet/pool.h"
#include "sim/scenario.h"
#include "snapshot/bisect.h"
#include "snapshot/buffer.h"
#include "snapshot/checkpoint.h"
#include "snapshot/scenario_key.h"
#include "snapshot/warm_cache.h"
#include "stats/stats.h"

namespace rair {
namespace {

TEST(SnapshotBuffer, PrimitiveRoundTrip) {
  snapshot::Writer w;
  w.beginSection("prims");
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-12345);
  w.i64(-9876543210ll);
  w.f64(3.14159265358979);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  const std::uint8_t raw[3] = {1, 2, 3};
  w.bytes(raw, sizeof raw);
  w.endSection();

  snapshot::Reader r(w.payload());
  r.beginSection("prims");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.i64(), -9876543210ll);
  EXPECT_EQ(r.f64(), 3.14159265358979);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  std::uint8_t out[3] = {};
  r.bytes(out, sizeof out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
  r.endSection();
  EXPECT_TRUE(r.atEnd());
}

TEST(SnapshotBuffer, ListSectionsWalksFraming) {
  snapshot::Writer w;
  w.beginSection("alpha");
  w.u32(1);
  w.endSection();
  w.beginSection("beta");
  w.u64(2);
  w.u8(3);
  w.endSection();
  const auto sections = snapshot::listSections(w.payload());
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].name, "alpha");
  EXPECT_EQ(sections[0].size, 4u);
  EXPECT_EQ(sections[1].name, "beta");
  EXPECT_EQ(sections[1].size, 9u);
}

TEST(SnapshotBuffer, FirstDifferingSectionNamesTheSection) {
  auto make = [](std::uint32_t a, std::uint32_t b) {
    snapshot::Writer w;
    w.beginSection("one");
    w.u32(a);
    w.endSection();
    w.beginSection("two");
    w.u32(b);
    w.endSection();
    return w.payload();
  };
  EXPECT_EQ(snapshot::firstDifferingSection(make(1, 2), make(1, 2)), "");
  EXPECT_EQ(snapshot::firstDifferingSection(make(1, 2), make(1, 3)), "two");
  EXPECT_EQ(snapshot::firstDifferingSection(make(1, 2), make(9, 3)), "one");
}

TEST(SnapshotFile, RoundTripAndCorruptionRejected) {
  const std::string path = ::testing::TempDir() + "rair_snapfile_test.snap";

  snapshot::Writer w;
  w.beginSection("s");
  w.u64(42);
  w.endSection();
  snapshot::SnapshotHeader hdr;
  hdr.stateVersion = snapshot::kStateVersion;
  hdr.scenarioKey = 0x1122334455667788ull;
  hdr.cycle = 777;
  ASSERT_TRUE(snapshot::writeSnapshotFile(path, hdr, w.payload()));

  const auto loaded = snapshot::readSnapshotFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header.stateVersion, snapshot::kStateVersion);
  EXPECT_EQ(loaded->header.scenarioKey, 0x1122334455667788ull);
  EXPECT_EQ(loaded->header.cycle, 777u);
  EXPECT_EQ(loaded->payload, w.payload());

  // Flip one payload byte on disk: the hash check must reject the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  EXPECT_FALSE(snapshot::readSnapshotFile(path).has_value());

  // Missing file.
  snapshot::removeFile(path);
  EXPECT_FALSE(snapshot::readSnapshotFile(path).has_value());

  // Not a snapshot at all.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a snapshot", f);
    std::fclose(f);
  }
  EXPECT_FALSE(snapshot::readSnapshotFile(path).has_value());
  snapshot::removeFile(path);
}

TEST(SnapshotRng, RestoredStateReplaysDraws) {
  Xoshiro256StarStar rng(12345);
  for (int i = 0; i < 100; ++i) rng();  // advance into the sequence
  const auto saved = rng.state();

  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng());
  const double expectedReal = rng.real();

  Xoshiro256StarStar replay(999);  // different seed: state fully overwritten
  replay.setState(saved);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(replay(), expected[i]);
  EXPECT_EQ(replay.real(), expectedReal);
}

TEST(SnapshotPool, RestoredPoolReplaysIdSequence) {
  PacketPool a(8);
  std::vector<PacketId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(a.acquire().id);
  // Release out of order: free-list order is behavioural state.
  a.release(ids[4]);
  a.release(ids[1]);
  a.release(ids[2]);

  snapshot::Writer w;
  a.save(w);

  PacketPool b(8);
  snapshot::Reader r(w.payload());
  b.restore(r);
  EXPECT_TRUE(r.atEnd());
  EXPECT_EQ(b.inFlight(), a.inFlight());
  for (const PacketId id : {ids[0], ids[3], ids[5]}) {
    EXPECT_TRUE(b.isLive(id));
    EXPECT_EQ(b.get(id).id, id);
  }

  // Both pools must hand out the exact same future id sequence
  // (generation tags bumped, LIFO free-list order preserved).
  for (int i = 0; i < 5; ++i) EXPECT_EQ(a.acquire().id, b.acquire().id);
}

TEST(SnapshotPool, SaveRestoreSaveIsByteStable) {
  PacketPool a(4);
  std::vector<PacketId> ids;
  for (int i = 0; i < 5; ++i) {
    Packet& p = a.acquire();
    p.src = i;
    p.dst = i + 1;
    ids.push_back(p.id);
  }
  a.release(ids[2]);  // dead slot retains stale contents in `a`

  snapshot::Writer w1;
  a.save(w1);
  PacketPool b(4);
  snapshot::Reader r(w1.payload());
  b.restore(r);
  snapshot::Writer w2;
  b.save(w2);
  EXPECT_EQ(w1.payload(), w2.payload());
}

TEST(SnapshotHistogram, RawStateRoundTrip) {
  metrics::Histogram h;
  h.record(3.0);
  h.record(250.0);
  h.record(17.5);

  metrics::Histogram g;
  g.setRawState(h.rawState());
  EXPECT_EQ(g.count(), h.count());
  EXPECT_EQ(g.mean(), h.mean());

  // Empty histogram: the min/max infinity sentinels must survive.
  metrics::Histogram empty;
  metrics::Histogram restored;
  restored.setRawState(empty.rawState());
  EXPECT_EQ(restored.count(), 0u);
  restored.record(5.0);
  EXPECT_EQ(restored.min(), 5.0);
  EXPECT_EQ(restored.max(), 5.0);
}

TEST(SnapshotStats, RoundTripPreservesMeasurement) {
  StatsCollector a(2);
  a.startMeasurement(100);
  a.stopMeasurement(200);
  Packet p;
  p.app = 1;
  p.createCycle = 150;
  p.injectCycle = 152;
  p.ejectCycle = 170;
  p.numFlits = 4;
  p.hops = 6;
  a.onPacketCreated(p);
  a.onPacketDelivered(p);

  snapshot::Writer w;
  a.save(w);
  StatsCollector b(2);
  snapshot::Reader r(w.payload());
  b.restore(r);
  EXPECT_TRUE(r.atEnd());
  EXPECT_EQ(b.measuredInFlight(), 0u);
  EXPECT_EQ(b.appApl(1), a.appApl(1));
  EXPECT_EQ(b.app(1).packetsDelivered, 1u);
  EXPECT_TRUE(b.inMeasurementWindow(150));
  EXPECT_FALSE(b.inMeasurementWindow(250));
}

// ---- Whole-simulator snapshots -------------------------------------------

ScenarioSpec twoAppSpec(const Mesh& mesh, const RegionMap& regions,
                        const SchemeSpec& scheme) {
  SimConfig cfg;
  cfg.warmupCycles = 200;
  cfg.measureCycles = 1'000;
  cfg.drainLimit = 20'000;
  std::vector<AppTrafficSpec> apps(2);
  apps[0].app = 0;
  apps[0].injectionRate = 0.08;
  apps[1].app = 1;
  apps[1].injectionRate = 0.15;
  return ScenarioSpec(mesh, regions)
      .withConfig(cfg)
      .withScheme(scheme)
      .withApps(std::move(apps))
      .withSeed(42);
}

std::vector<std::uint8_t> payloadOf(const Simulator& sim) {
  snapshot::Writer w;
  sim.save(w);
  return w.payload();
}

TEST(SnapshotSim, SaveRestoreSaveIsByteStable) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec = twoAppSpec(mesh, regions, schemeRaRair());

  AssembledScenario a = assembleScenario(spec);
  ASSERT_TRUE(a.sim->snapshotSupported());
  a.sim->begin();
  while (a.sim->now() < 500) a.sim->stepCycle();
  const auto saved = payloadOf(*a.sim);

  AssembledScenario b = assembleScenario(spec);
  snapshot::Reader r(saved);
  b.sim->restore(r);
  EXPECT_TRUE(r.atEnd());
  EXPECT_EQ(b.sim->now(), 500u);
  EXPECT_EQ(payloadOf(*b.sim), saved);
}

TEST(SnapshotSim, BisectFindsNoDivergenceUnderRoRr) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const auto r = snapshot::bisectDivergence(
      twoAppSpec(mesh, regions, schemeRoRr()), 200, 700);
  EXPECT_FALSE(r.diverged) << "diverged at cycle " << r.firstDivergentCycle
                           << " in section " << r.section;
}

TEST(SnapshotSim, BisectFindsNoDivergenceUnderRaRair) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const auto r = snapshot::bisectDivergence(
      twoAppSpec(mesh, regions, schemeRaRair()), 200, 700);
  EXPECT_FALSE(r.diverged) << "diverged at cycle " << r.firstDivergentCycle
                           << " in section " << r.section;
}

// ---- Warm-state cache and checkpoints through runScenario ----------------

void expectSameResult(const ScenarioResult& x, const ScenarioResult& y) {
  EXPECT_EQ(x.appApl, y.appApl);
  EXPECT_EQ(x.meanApl, y.meanApl);
  EXPECT_EQ(x.run.cyclesRun, y.run.cyclesRun);
  EXPECT_EQ(x.run.packetsCreated, y.run.packetsCreated);
  EXPECT_EQ(x.run.packetsDelivered, y.run.packetsDelivered);
  EXPECT_EQ(x.run.termination, y.run.termination);
  EXPECT_EQ(x.run.flitHops, y.run.flitHops);
  EXPECT_EQ(x.run.deliveredFlitRate, y.run.deliveredFlitRate);
}

TEST(WarmCache, SecondRunRestoresCachedWarmupBitIdentically) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const std::string dir = ::testing::TempDir() + "rair_warm_cache_test";
  ScenarioSpec spec = twoAppSpec(mesh, regions, schemeRaRair());

  // Make the test independent of earlier runs on this machine (both the
  // main spec's warm entry and the seed-43 one stored at the end).
  snapshot::removeFile(
      snapshot::warmSnapshotPath(dir, snapshot::warmStateKey(spec)));
  snapshot::removeFile(snapshot::warmSnapshotPath(
      dir, snapshot::warmStateKey(ScenarioSpec(spec).withSeed(43))));
  snapshot::resetWarmCacheStats();

  const ScenarioResult baseline = runScenario(spec);

  const ScenarioResult cold = runScenario(spec.withWarmCache(dir));
  EXPECT_FALSE(cold.warmRestored);
  EXPECT_EQ(snapshot::warmCacheStats().misses, 1u);
  EXPECT_EQ(snapshot::warmCacheStats().stores, 1u);

  const ScenarioResult warm = runScenario(spec);
  EXPECT_TRUE(warm.warmRestored);
  EXPECT_EQ(snapshot::warmCacheStats().hits, 1u);
  EXPECT_EQ(snapshot::warmCacheStats().warmupCyclesSaved, 200u);

  expectSameResult(cold, baseline);
  expectSameResult(warm, baseline);

  // A different seed is a different warm key: no false sharing.
  const ScenarioResult other = runScenario(ScenarioSpec(spec).withSeed(43));
  EXPECT_FALSE(other.warmRestored);
}

TEST(Checkpoint, ResumeMidMeasurementIsBitIdentical) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const std::string path = ::testing::TempDir() + "rair_ckpt_test.snap";
  std::remove(path.c_str());

  ScenarioSpec spec = twoAppSpec(mesh, regions, schemeRaRair());
  const ScenarioResult straight = runScenario(spec);

  // Fabricate the interrupted run: checkpoint in the middle of the
  // measurement window (warmup 200, measure end 1200).
  ASSERT_TRUE(writeScenarioCheckpoint(spec, 700, path));

  const ScenarioResult resumed = runScenario(spec.withCheckpoint(path));
  EXPECT_EQ(resumed.resumedFromCycle, 700u);
  expectSameResult(resumed, straight);

  // The completed run removes its checkpoint.
  EXPECT_FALSE(snapshot::readSnapshotFile(path).has_value());
}

TEST(Checkpoint, ForeignKeyCheckpointIsIgnored) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const std::string path = ::testing::TempDir() + "rair_ckpt_foreign.snap";
  std::remove(path.c_str());

  ScenarioSpec spec = twoAppSpec(mesh, regions, schemeRaRair());
  ASSERT_TRUE(writeScenarioCheckpoint(spec, 700, path));

  // A different seed must not restore another run's checkpoint.
  ScenarioSpec other = twoAppSpec(mesh, regions, schemeRaRair());
  other.seed = 43;
  const ScenarioResult r = runScenario(other.withCheckpoint(path));
  EXPECT_EQ(r.resumedFromCycle, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotKeys, WarmKeyIgnoresMeasureWindowButFullKeyDoesNot) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  ScenarioSpec a = twoAppSpec(mesh, regions, schemeRaRair());
  ScenarioSpec b = twoAppSpec(mesh, regions, schemeRaRair());
  b.config.measureCycles = 5'000;

  // The warm-up trajectory does not depend on how long the measurement
  // window will be, so warm entries are shared across window lengths…
  EXPECT_EQ(snapshot::warmStateKey(a), snapshot::warmStateKey(b));
  // …but a mid-run checkpoint is specific to the exact run.
  EXPECT_NE(snapshot::fullStateKey(a), snapshot::fullStateKey(b));

  // Anything that shapes the warm-up state must change the warm key.
  ScenarioSpec c = twoAppSpec(mesh, regions, schemeRaRair());
  c.seed = 43;
  EXPECT_NE(snapshot::warmStateKey(a), snapshot::warmStateKey(c));
  ScenarioSpec d = twoAppSpec(mesh, regions, schemeRoRr());
  EXPECT_NE(snapshot::warmStateKey(a), snapshot::warmStateKey(d));
  ScenarioSpec e = twoAppSpec(mesh, regions, schemeRaRair());
  e.apps[1].injectionRate = 0.2;
  EXPECT_NE(snapshot::warmStateKey(a), snapshot::warmStateKey(e));

  // The scheme label is presentation, not state.
  ScenarioSpec f = twoAppSpec(mesh, regions, schemeRaRair());
  f.scheme.label = "renamed";
  EXPECT_EQ(snapshot::warmStateKey(a), snapshot::warmStateKey(f));
}

}  // namespace
}  // namespace rair
