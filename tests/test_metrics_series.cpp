// Series-level metrics: the JSONL/JSON/CSV file sinks of a two-region run
// must reproduce a Fig. 11-style DPA priority time series and a registry
// census that parses back to the in-memory summary.
#include "metrics/recorder.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"

namespace rair {
namespace {

using campaign::JsonValue;

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct SeriesRun {
  ScenarioResult res;
  std::string prefix;
};

/// One Series-level run of the Fig. 8 workload: app 1 loads its half hard
/// while app 0 leaks traffic into it — the setup whose DPA priority trace
/// the paper plots in Fig. 11.
SeriesRun runSeriesCell() {
  SeriesRun out;
  out.prefix = ::testing::TempDir() + "rair_series_test.";
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  SimConfig cfg;
  cfg.warmupCycles = 500;
  cfg.measureCycles = 5'000;
  cfg.drainLimit = 60'000;
  metrics::MetricsOptions mo;
  mo.level = metrics::MetricsLevel::Series;
  mo.sampleInterval = 250;
  mo.outPrefix = out.prefix;
  out.res = runScenario(ScenarioSpec(m, rm)
                            .withConfig(cfg)
                            .withScheme(schemeRaRair())
                            .withApps(scenarios::twoAppInterRegion(
                                0.5, 0.05, 0.30))
                            .withSeed(11)
                            .withMetrics(mo));
  return out;
}

TEST(MetricsSeries, SinksReproduceDpaTraceAndCensus) {
  const SeriesRun run = runSeriesCell();
  ASSERT_TRUE(run.res.metrics.has_value());
  const auto& summary = *run.res.metrics;

  // ---- series.jsonl: the Fig. 11-style trace ---------------------------
  const std::string series = readFile(run.prefix + "series.jsonl");
  std::istringstream lines(series);
  std::string line;
  std::uint64_t sumPackets = 0;
  Cycle prevCycle = 0;
  bool sawNativeHigh = false;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto v = JsonValue::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    ++rows;
    EXPECT_EQ(v->find("type")->asString(), "interval");
    const auto cycle = static_cast<Cycle>(v->find("cycle")->asNumber());
    // Samples are taken at the end of each fixed-width interval; the
    // final row may close early at the end of the run.
    EXPECT_GT(cycle, prevCycle);
    prevCycle = cycle;
    sumPackets +=
        static_cast<std::uint64_t>(v->find("packets")->asNumber());
    const auto& dpa = v->find("dpa_native_high")->asArray();
    ASSERT_EQ(dpa.size(), 2u);  // one entry per region
    for (const auto& d : dpa) {
      EXPECT_GE(d.asNumber(), 0.0);
      EXPECT_LE(d.asNumber(), 32.0);  // routers per half of an 8x8 mesh
      if (d.asNumber() > 0.0) sawNativeHigh = true;
    }
    const auto& links = v->find("link_flits")->asArray();
    ASSERT_EQ(links.size(), 5u);  // one entry per port direction
  }
  EXPECT_GE(rows, 20u);  // 5500-cycle horizon / 250-cycle interval
  // Every delivered packet lands in exactly one interval, so the trace
  // sums back to the registry census.
  EXPECT_EQ(sumPackets, summary.deliveredPackets);
  // The contended half must have flipped some routers to native-high at
  // some point (the Fig. 11 phenomenon) -- and the run as a whole
  // recorded DPA transitions.
  EXPECT_TRUE(sawNativeHigh);
  EXPECT_GT(summary.dpaFlips, 0u);

  // ---- summary.json: parses and agrees with the in-memory summary ------
  const auto sj = JsonValue::parse(readFile(run.prefix + "summary.json"));
  ASSERT_TRUE(sj.has_value());
  EXPECT_EQ(sj->find("type")->asString(), "metrics_summary");
  EXPECT_EQ(sj->find("level")->asString(), "series");
  EXPECT_EQ(static_cast<std::uint64_t>(
                sj->find("delivered_packets")->asNumber()),
            summary.deliveredPackets);
  EXPECT_EQ(static_cast<std::uint64_t>(
                sj->find("va_grants_native")->asNumber()),
            summary.vaGrantsNative);
  EXPECT_EQ(static_cast<std::uint64_t>(sj->find("dpa_flips")->asNumber()),
            summary.dpaFlips);
  const auto* mlist = sj->find("metrics");
  ASSERT_NE(mlist, nullptr);
  EXPECT_GE(mlist->asArray().size(), 8u);  // all registered metrics

  // ---- counters.csv: one row per router --------------------------------
  const std::string csv = readFile(run.prefix + "counters.csv");
  std::istringstream csvLines(csv);
  std::size_t csvRows = 0;
  std::string header;
  ASSERT_TRUE(std::getline(csvLines, header));
  EXPECT_EQ(header.rfind("router,", 0), 0u);
  EXPECT_NE(header.find("va_grants"), std::string::npos);
  EXPECT_NE(header.find("dpa_flips"), std::string::npos);
  while (std::getline(csvLines, line))
    if (!line.empty()) ++csvRows;
  EXPECT_EQ(csvRows, 64u);  // 8x8 mesh
}

TEST(MetricsSeries, SummaryLevelWritesNoSeriesSink) {
  const std::string prefix = ::testing::TempDir() + "rair_summary_only.";
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  SimConfig cfg;
  cfg.warmupCycles = 100;
  cfg.measureCycles = 1'000;
  cfg.drainLimit = 30'000;
  metrics::MetricsOptions mo;
  mo.level = metrics::MetricsLevel::Summary;
  mo.outPrefix = prefix;
  const auto res = runScenario(ScenarioSpec(m, rm)
                                   .withConfig(cfg)
                                   .withScheme(schemeRoRr())
                                   .withApps(scenarios::twoAppInterRegion(
                                       0.3, 0.05, 0.1))
                                   .withMetrics(mo));
  ASSERT_TRUE(res.metrics.has_value());
  EXPECT_TRUE(std::ifstream(prefix + "summary.json").good());
  EXPECT_TRUE(std::ifstream(prefix + "counters.csv").good());
  EXPECT_FALSE(std::ifstream(prefix + "series.jsonl").good());
}

}  // namespace
}  // namespace rair
