// Direct unit tests of the Router: a single router instance wired to
// hand-held links, driven phase by phase — pinning down the precise
// arbitration and flow-control semantics the end-to-end tests rely on.
#include <gtest/gtest.h>

#include <map>

#include "core/rair_policy.h"
#include "policy/policy.h"
#include "router/router.h"

namespace rair {
namespace {

/// Congestion stub: everything looks free.
class OpenCongestion final : public CongestionView {
 public:
  int freeVcsThrough(NodeId, Dir) const override { return 4; }
  int aggregatedFree(NodeId, Dir, int hops) const override {
    return 4 * hops;
  }
};

/// Harness around one router at the center of a 3x3 mesh (node 4), with
/// all five ports wired to links we hold the far ends of.
class RouterBench {
 public:
  RouterBench(const ArbiterPolicy& policy, RouterConfig config,
              AppId appTag = 0)
      : mesh_(3, 3),
        routing_(),
        router_(4, appTag, config, mesh_, routing_, policy, congestion_) {
    for (int p = 0; p < kNumPorts; ++p) {
      router_.connectIn(static_cast<Dir>(p), &in_[p]);
      router_.connectOut(static_cast<Dir>(p), &out_[p]);
    }
  }

  /// Run one full router cycle.
  void step() {
    router_.beginCycle(now_);
    router_.routeCompute(now_);
    router_.vcAllocate(now_);
    router_.switchAllocateAndTraverse(now_);
    router_.endCycle(now_);
    ++now_;
  }

  /// Sends a flit into input port `p`, VC `vc` (arrives next cycle).
  void inject(Dir p, int vc, const Flit& f) {
    in_[static_cast<int>(p)].sendFlit(now_, f, vc);
  }

  /// Drains every flit that left through port `p` this step.
  std::vector<FlitMsg> drainOutput(Dir p) {
    std::vector<FlitMsg> out;
    while (auto m = out_[static_cast<int>(p)].recvFlit(now_))
      out.push_back(*m);
    return out;
  }

  /// Feeds credits back for everything that left through `p` (models an
  /// always-draining neighbor).
  void autoCredit(Dir p) {
    for (const auto& m : drainOutput(p))
      out_[static_cast<int>(p)].sendCredit(now_, m.vc);
  }

  Router& router() { return router_; }
  Cycle now() const { return now_; }

  /// Runs until a flit of packet `id` leaves through `p` (or cycles run
  /// out); returns the cycle it left, or kNeverCycle.
  Cycle runUntilOut(Dir p, PacketId id, int maxCycles = 50) {
    for (int i = 0; i < maxCycles; ++i) {
      step();
      for (const auto& m : drainOutput(p)) {
        out_[static_cast<int>(p)].sendCredit(now_ - 1, m.vc);
        if (m.flit.pkt == id) return now_ - 1;
      }
    }
    return kNeverCycle;
  }

 private:
  Mesh mesh_;
  LocalAdaptiveRouting routing_;
  OpenCongestion congestion_;
  IdealLink in_[kNumPorts]{IdealLink{1}, IdealLink{1}, IdealLink{1},
                           IdealLink{1}, IdealLink{1}};
  IdealLink out_[kNumPorts]{IdealLink{1}, IdealLink{1}, IdealLink{1},
                            IdealLink{1}, IdealLink{1}};
  Router router_;
  Cycle now_ = 0;
};

Flit headTail(PacketId id, NodeId dst, AppId app) {
  Flit f;
  f.pkt = id;
  f.src = 0;
  f.dst = dst;  // node 4 is the router; dst 5 = East neighbor on 3x3
  f.app = app;
  f.type = FlitType::HeadTail;
  f.pktFlits = 1;
  return f;
}

RouterConfig plainConfig() {
  RouterConfig c;
  c.layout = VcLayout(1, 5, false);
  return c;
}

TEST(RouterUnit, SingleFlitTraversesInFourCycles) {
  RoundRobinPolicy rr;
  RouterBench bench(rr, plainConfig());
  // dst = node 5 (east of center node 4).
  bench.inject(Dir::West, 1, headTail(1, 5, 0));
  // Inject at cycle 0 -> arrive 1 (BW), RC 2, VA 3, SA/ST 4.
  const Cycle left = bench.runUntilOut(Dir::East, 1);
  EXPECT_EQ(left, 4u);
}

TEST(RouterUnit, EjectsAtLocalPort) {
  RoundRobinPolicy rr;
  RouterBench bench(rr, plainConfig());
  bench.inject(Dir::North, 2, headTail(7, /*dst=*/4, 0));
  const Cycle left = bench.runUntilOut(Dir::Local, 7);
  EXPECT_NE(left, kNeverCycle);
}

TEST(RouterUnit, MultiFlitPacketStaysOnOneVc) {
  RoundRobinPolicy rr;
  RouterBench bench(rr, plainConfig());
  Flit h = headTail(3, 5, 0);
  h.type = FlitType::Head;
  h.pktFlits = 3;
  bench.inject(Dir::West, 1, h);
  bench.step();
  Flit b = h;
  b.type = FlitType::Body;
  b.seq = 1;
  bench.inject(Dir::West, 1, b);
  bench.step();
  Flit t = h;
  t.type = FlitType::Tail;
  t.seq = 2;
  bench.inject(Dir::West, 1, t);
  std::map<int, int> vcFlits;
  for (int i = 0; i < 20; ++i) {
    bench.step();
    for (const auto& m : bench.drainOutput(Dir::East)) ++vcFlits[m.vc];
    bench.autoCredit(Dir::East);
  }
  ASSERT_EQ(vcFlits.size(), 1u) << "packet split across output VCs";
  EXPECT_EQ(vcFlits.begin()->second, 3);
}

TEST(RouterUnit, BlocksWithoutCredits) {
  RoundRobinPolicy rr;
  RouterBench bench(rr, plainConfig());
  // Five packets, one per input VC; we never return credits downstream,
  // so each consumes one of the 5 output VCs (4 adaptive + escape).
  for (PacketId id = 1; id <= 5; ++id)
    bench.inject(Dir::West, static_cast<int>(id - 1), headTail(id, 5, 0));
  int flitsOut = 0;
  for (int i = 0; i < 30; ++i) {
    bench.step();
    flitsOut += static_cast<int>(bench.drainOutput(Dir::East).size());
  }
  EXPECT_EQ(flitsOut, 5);
  // A sixth packet now finds every output VC un-credited: it must wait.
  bench.inject(Dir::West, 0, headTail(6, 5, 0));
  for (int i = 0; i < 20; ++i) {
    bench.step();
    flitsOut += static_cast<int>(bench.drainOutput(Dir::East).size());
  }
  EXPECT_EQ(flitsOut, 5) << "packet advanced without downstream credits";
}

TEST(RouterUnit, RairVaOutPrefersForeignOnGlobalVc) {
  // Two head flits (one native, one foreign) arrive in the same cycle at
  // different input ports, both bound east. With RAIR, the foreign packet
  // must win the first grant on the global VC it prefers.
  RairPolicy rairPolicy;
  RouterConfig cfg;
  cfg.layout = VcLayout(1, 5, true);  // 1 escape + 2 regional + 2 global
  RouterBench bench(rairPolicy, cfg, /*appTag=*/0);
  bench.inject(Dir::West, 1, headTail(10, 5, /*app=*/0));   // native
  bench.inject(Dir::North, 1, headTail(20, 5, /*app=*/9));  // foreign
  // Both will be granted eventually (different VCs); check VC classes.
  std::map<PacketId, int> pktVc;
  for (int i = 0; i < 20; ++i) {
    bench.step();
    for (const auto& m : bench.drainOutput(Dir::East))
      pktVc[m.flit.pkt] = m.vc;
    bench.autoCredit(Dir::East);
  }
  ASSERT_EQ(pktVc.size(), 2u);
  // VC layout: 0 escape, 1-2 regional, 3-4 global.
  EXPECT_GE(pktVc[20], 3) << "foreign packet should claim a global VC";
  EXPECT_TRUE(pktVc[10] == 1 || pktVc[10] == 2)
      << "native packet should claim a regional VC";
}

TEST(RouterUnit, SaTieBreaksRoundRobinAcrossPorts) {
  // Load two input ports with long packets bound for the same output;
  // with round-robin tie-break the switch interleaves the two ports
  // fairly rather than letting one port run.
  RoundRobinPolicy rr;
  RouterConfig cfg = plainConfig();
  cfg.vcDepth = 12;  // hold a 10-flit packet per VC
  RouterBench bench(rr, cfg);
  auto longPacket = [&](PacketId id, Dir port, int vc) {
    for (std::uint16_t i = 0; i < 10; ++i) {
      Flit f = headTail(id, 5, 0);
      f.pktFlits = 10;
      f.seq = i;
      f.type = i == 0 ? FlitType::Head
                      : (i == 9 ? FlitType::Tail : FlitType::Body);
      bench.inject(port, vc, f);
      bench.step();
      bench.autoCredit(Dir::East);
    }
  };
  // Interleave the injection of one packet per port (flits alternate).
  for (std::uint16_t i = 0; i < 10; ++i) {
    Flit w = headTail(1, 5, 0);
    w.pktFlits = 10;
    w.seq = i;
    w.type = i == 0 ? FlitType::Head
                    : (i == 9 ? FlitType::Tail : FlitType::Body);
    bench.inject(Dir::West, 1, w);
    Flit n = headTail(2, 5, 0);
    n.pktFlits = 10;
    n.seq = i;
    n.type = w.type;
    bench.inject(Dir::North, 1, n);
    bench.step();
    bench.autoCredit(Dir::East);
  }
  (void)longPacket;
  // Drain the rest and record the departure order.
  std::vector<PacketId> order;
  for (int i = 0; i < 60; ++i) {
    bench.step();
    for (const auto& m : bench.drainOutput(Dir::East))
      order.push_back(m.flit.pkt);
    bench.autoCredit(Dir::East);
  }
  // Wait: flits drained inside the injection loop too; recount by parity
  // is unnecessary — fairness shows as bounded run length in `order`.
  ASSERT_GE(order.size(), 10u);
  int maxRun = 1, run = 1;
  for (std::size_t i = 1; i < order.size(); ++i) {
    run = (order[i] == order[i - 1]) ? run + 1 : 1;
    maxRun = std::max(maxRun, run);
  }
  EXPECT_LE(maxRun, 3) << "one port monopolized the switch";
}

TEST(RouterUnit, CountersTrackGrants) {
  RoundRobinPolicy rr;
  RouterBench bench(rr, plainConfig(), /*appTag=*/0);
  bench.inject(Dir::West, 1, headTail(1, 5, 0));  // native
  bench.inject(Dir::North, 2, headTail(2, 5, 9)); // foreign
  for (int i = 0; i < 20; ++i) {
    bench.step();
    bench.autoCredit(Dir::East);
  }
  const auto& c = bench.router().counters();
  EXPECT_EQ(c.vaGrantsNative, 1u);
  EXPECT_EQ(c.vaGrantsForeign, 1u);
  EXPECT_EQ(c.saGrantsNative, 1u);
  EXPECT_EQ(c.saGrantsForeign, 1u);
  EXPECT_EQ(c.flitsTraversed, 2u);
}

TEST(RouterUnit, QuiescentAfterTraffic) {
  RoundRobinPolicy rr;
  RouterBench bench(rr, plainConfig());
  EXPECT_TRUE(bench.router().quiescent());
  bench.inject(Dir::West, 1, headTail(1, 5, 0));
  bench.step();  // flit still on the link
  bench.step();  // now buffered in the router
  EXPECT_FALSE(bench.router().quiescent());
  for (int i = 0; i < 20; ++i) {
    bench.step();
    bench.autoCredit(Dir::East);
  }
  EXPECT_TRUE(bench.router().quiescent());
}

}  // namespace
}  // namespace rair
