#include "core/dpa.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rair {
namespace {

TEST(Dpa, DefaultIsForeignHigh) {
  DpaState s(0.2);
  EXPECT_FALSE(s.nativeHigh());
}

TEST(Dpa, TransitionsToNativeHighAboveUpperThreshold) {
  DpaState s(0.2);
  // r = 1.1 < 1.2: inside the hysteresis band, no transition.
  s.update({10, 11});
  EXPECT_FALSE(s.nativeHigh());
  // r = 1.3 > 1.2: native becomes high priority.
  s.update({10, 13});
  EXPECT_TRUE(s.nativeHigh());
}

TEST(Dpa, HoldsInsideHysteresisBand) {
  DpaState s(0.2);
  s.update({10, 15});  // r = 1.5 -> native high
  ASSERT_TRUE(s.nativeHigh());
  // r between 0.8 and 1.2 must not flip the state back.
  s.update({10, 11});  // r = 1.1
  EXPECT_TRUE(s.nativeHigh());
  s.update({10, 9});  // r = 0.9
  EXPECT_TRUE(s.nativeHigh());
}

TEST(Dpa, TransitionsBackBelowLowerThreshold) {
  DpaState s(0.2);
  s.update({10, 15});
  ASSERT_TRUE(s.nativeHigh());
  s.update({10, 7});  // r = 0.7 < 0.8 -> foreign high again
  EXPECT_FALSE(s.nativeHigh());
}

TEST(Dpa, ZeroOccupancyHoldsState) {
  DpaState s(0.2);
  s.update({10, 15});
  ASSERT_TRUE(s.nativeHigh());
  s.update({0, 0});
  EXPECT_TRUE(s.nativeHigh());
}

TEST(Dpa, NoNativeOccupancyMeansInfiniteRatio) {
  DpaState s(0.2);
  // Foreign-only occupancy: native has zero intensity -> maximally
  // critical -> native high.
  s.update({0, 5});
  EXPECT_TRUE(s.nativeHigh());
  EXPECT_TRUE(std::isinf(s.lastRatio()));
}

TEST(Dpa, NoForeignOccupancyKeepsOrMakesForeignHigh) {
  DpaState s(0.2);
  s.update({0, 5});
  ASSERT_TRUE(s.nativeHigh());
  // Native-only occupancy: r = 0 -> foreign high.
  s.update({5, 0});
  EXPECT_FALSE(s.nativeHigh());
}

TEST(Dpa, NegativeFeedbackLoopSelfThrottles) {
  // Paper Sec. IV.D: if native occupies too many resources (low r), it is
  // demoted; if foreign over-occupies (high r), native is promoted — so
  // neither side can starve the other indefinitely.
  DpaState s(0.2);
  s.update({20, 2});  // native hogging -> r = 0.1 -> foreign high
  EXPECT_FALSE(s.nativeHigh());
  s.update({2, 20});  // foreign hogging -> r = 10 -> native high
  EXPECT_TRUE(s.nativeHigh());
}

class DpaDeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DpaDeltaSweep, ThresholdsScaleWithDelta) {
  const double delta = GetParam();
  DpaState s(delta);
  // Just inside the band: no transition.
  const int n = 1000;
  const int fInside = static_cast<int>(n * (1.0 + delta) - 1);
  s.update({n, fInside});
  EXPECT_FALSE(s.nativeHigh()) << "delta=" << delta;
  // Just above: transition.
  const int fAbove = static_cast<int>(n * (1.0 + delta) + 2);
  s.update({n, fAbove});
  EXPECT_TRUE(s.nativeHigh()) << "delta=" << delta;
  // Just inside from above: hold.
  const int fHold = static_cast<int>(n * (1.0 - delta) + 2);
  s.update({n, fHold});
  EXPECT_TRUE(s.nativeHigh()) << "delta=" << delta;
  // Below lower threshold: back to foreign high.
  const int fBelow = static_cast<int>(n * (1.0 - delta) - 2);
  s.update({n, fBelow});
  EXPECT_FALSE(s.nativeHigh()) << "delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(Deltas, DpaDeltaSweep,
                         ::testing::Values(0.1, 0.2, 0.3));

}  // namespace
}  // namespace rair
