#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/rair_policy.h"
#include "sim_test_util.h"
#include "traffic/generator.h"

namespace rair {
namespace {

std::vector<TraceRecord> sampleRecords() {
  return {
      {0, 0, 5, 0, MsgClass::Request, 1},
      {3, 2, 9, 1, MsgClass::Request, 5},
      {3, 9, 2, 1, MsgClass::Reply, 5},
      {17, 1, 14, 0, MsgClass::Request, 1},
  };
}

TEST(Trace, WriteReadRoundTrip) {
  std::stringstream ss;
  {
    TraceWriter w(ss);
    for (const auto& r : sampleRecords()) w.write(r);
    EXPECT_EQ(w.recordsWritten(), 4u);
  }
  const auto back = readTrace(ss);
  EXPECT_EQ(back, sampleRecords());
}

TEST(Trace, ReaderSkipsCommentsAndBlankLines) {
  std::stringstream ss;
  ss << "# header\n\n5 1 2 0 0 1\n# trailing comment\n7 3 4 1 1 5\n";
  const auto recs = readTrace(ss);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].cycle, 5u);
  EXPECT_EQ(recs[1].msgClass, MsgClass::Reply);
  EXPECT_EQ(recs[1].numFlits, 5);
}

TEST(Trace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rair_trace_test.txt";
  writeTraceFile(path, sampleRecords());
  EXPECT_EQ(readTraceFile(path), sampleRecords());
}

TEST(Trace, ReplayInjectsAtRecordedCycles) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  std::vector<TraceRecord> recs = {
      {10, 0, 15, 0, MsgClass::Request, 1},
      {10, 15, 0, 1, MsgClass::Request, 5},
      {50, 3, 12, 0, MsgClass::Request, 1},
  };
  sim.addSource(std::make_unique<TraceReplaySource>(recs));
  const auto r = sim.run();
  EXPECT_EQ(r.packetsCreated, 3u);
  EXPECT_EQ(r.packetsDelivered, 3u);
}

TEST(Trace, CaptureRecordsEverything) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.measureCycles = 500;

  AppTrafficSpec spec;
  spec.app = 0;
  spec.injectionRate = 0.1;
  auto inner = std::make_unique<RegionalizedSource>(m, rm, spec, 7);
  auto capture = std::make_unique<TraceCapture>(std::move(inner));
  TraceCapture* capturePtr = capture.get();

  Simulator sim(m, rm, cfg, policy, 2);
  sim.addSource(std::move(capture));
  const auto r = sim.run();
  EXPECT_EQ(capturePtr->records().size(), r.packetsCreated);
  // Records are sorted by cycle and live inside app 0's region.
  Cycle prev = 0;
  for (const auto& rec : capturePtr->records()) {
    EXPECT_GE(rec.cycle, prev);
    prev = rec.cycle;
    EXPECT_EQ(rec.app, 0);
    EXPECT_EQ(rm.appOf(rec.src), 0);
  }
}

TEST(Trace, CaptureThenReplayReproducesRun) {
  // The trace-driven methodology: capturing a synthetic run and replaying
  // the trace must yield identical delivery statistics.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  auto cfg = testutil::fastConfig();
  cfg.measureCycles = 1000;

  AppTrafficSpec spec;
  spec.app = 0;
  spec.injectionRate = 0.12;
  spec.intraFraction = 0.8;
  spec.interFraction = 0.2;

  std::vector<TraceRecord> captured;
  double aplLive = 0;
  {
    RoundRobinPolicy policy;
    Simulator sim(m, rm, cfg, policy, 2);
    auto cap = std::make_unique<TraceCapture>(
        std::make_unique<RegionalizedSource>(m, rm, spec, 11));
    TraceCapture* p = cap.get();
    sim.addSource(std::move(cap));
    const auto r = sim.run();
    aplLive = r.stats.appApl(0);
    captured = p->takeRecords();
  }
  {
    RoundRobinPolicy policy;
    Simulator sim(m, rm, cfg, policy, 2);
    sim.addSource(std::make_unique<TraceReplaySource>(captured));
    const auto r = sim.run();
    EXPECT_DOUBLE_EQ(r.stats.appApl(0), aplLive);
    EXPECT_EQ(r.packetsCreated, captured.size());
  }
}

TEST(Trace, ReplayRemainingCountsDown) {
  TraceReplaySource src({{5, 0, 1, 0, MsgClass::Request, 1},
                         {9, 1, 0, 0, MsgClass::Request, 1}});
  EXPECT_EQ(src.remaining(), 2u);
}

}  // namespace
}  // namespace rair
