#include "sim/scheme.h"

#include <gtest/gtest.h>

#include "core/rair_policy.h"
#include "policy/stc.h"

namespace rair {
namespace {

TEST(Scheme, PaperLineupLabels) {
  EXPECT_EQ(schemeRoRr().label, "RO_RR");
  EXPECT_EQ(schemeRoRr(RoutingKind::Dbar).label, "RO_RR_DBAR");
  EXPECT_EQ(schemeRoRank().label, "RO_Rank");
  EXPECT_EQ(schemeRaDbar().label, "RA_DBAR");
  EXPECT_EQ(schemeRaRair().label, "RA_RAIR");
  EXPECT_EQ(schemeRaRair(RoutingKind::Dbar).label, "RAIR_DBAR");
  EXPECT_EQ(schemeRairVaOnly().label, "RAIR_VA");
  EXPECT_EQ(schemeRairNativeHigh().label, "RAIR_NativeH");
  EXPECT_EQ(schemeRairForeignHigh().label, "RAIR_ForeignH");
}

TEST(Scheme, OnlyRairNeedsPartition) {
  EXPECT_FALSE(schemeRoRr().needsRairPartition());
  EXPECT_FALSE(schemeRoRank().needsRairPartition());
  EXPECT_FALSE(schemeRaDbar().needsRairPartition());
  EXPECT_TRUE(schemeRaRair().needsRairPartition());
  EXPECT_TRUE(schemeRairNativeHigh().needsRairPartition());
}

TEST(Scheme, DbarSchemesUseDbarRouting) {
  EXPECT_EQ(schemeRaDbar().routing, RoutingKind::Dbar);
  EXPECT_EQ(schemeRaRair(RoutingKind::Dbar).routing, RoutingKind::Dbar);
  EXPECT_EQ(schemeRoRr().routing, RoutingKind::LocalAdaptive);
}

TEST(Scheme, MakePolicyTypes) {
  const std::vector<double> intensities = {0.1, 0.9};
  auto rr = makePolicy(schemeRoRr(), intensities);
  EXPECT_STREQ(rr->name(), "RO_RR");
  auto rank = makePolicy(schemeRoRank(), intensities);
  EXPECT_STREQ(rank->name(), "RO_Rank");
  auto rairP = makePolicy(schemeRaRair(), intensities);
  EXPECT_STREQ(rairP->name(), "RA_RAIR");
}

TEST(Scheme, StcOracleRanksLowIntensityFirst) {
  const std::vector<double> intensities = {0.5, 0.1, 0.3};
  auto p = makePolicy(schemeRoRank(), intensities);
  auto* stc = dynamic_cast<StcRankPolicy*>(p.get());
  ASSERT_NE(stc, nullptr);
  EXPECT_EQ(stc->rankOf(1), 0);  // lightest app -> best rank
  EXPECT_EQ(stc->rankOf(2), 1);
  EXPECT_EQ(stc->rankOf(0), 2);
}

TEST(Scheme, RairAblationConfigsPropagate) {
  auto va = schemeRairVaOnly();
  EXPECT_TRUE(va.rair.applyAtVa);
  EXPECT_FALSE(va.rair.applyAtSa);
  auto nat = schemeRairNativeHigh();
  EXPECT_EQ(nat.rair.dpaMode, DpaMode::NativeHigh);
  auto fgn = schemeRairForeignHigh();
  EXPECT_EQ(fgn.rair.dpaMode, DpaMode::ForeignHigh);
  auto full = schemeRaRair();
  EXPECT_EQ(full.rair.dpaMode, DpaMode::Dynamic);
}

}  // namespace
}  // namespace rair
