#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace rair {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256StarStar a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256StarStar rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256StarStar rng(3);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    sawLo |= (v == -2);
    sawHi |= (v == 2);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, RealInUnitInterval) {
  Xoshiro256StarStar rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, RealMeanIsHalf) {
  Xoshiro256StarStar rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.real();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256StarStar rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyMatchesP) {
  Xoshiro256StarStar rng(17);
  constexpr int kN = 200000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Xoshiro256StarStar parent(21);
  Xoshiro256StarStar childA = parent.split();
  Xoshiro256StarStar childB = parent.split();
  // Children and parent should produce pairwise different streams.
  int sameAB = 0, sameAP = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = childA();
    const auto b = childB();
    const auto p = parent();
    sameAB += (a == b);
    sameAP += (a == p);
  }
  EXPECT_EQ(sameAB, 0);
  EXPECT_EQ(sameAP, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Xoshiro256StarStar p1(33), p2(33);
  auto c1 = p1.split();
  auto c2 = p2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256StarStar rng(5);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kN = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kN; ++i) ++counts[rng.below(kBuckets)];
  const double expect = static_cast<double>(kN) / kBuckets;
  for (auto c : counts) EXPECT_NEAR(c, expect, expect * 0.05);
}

}  // namespace
}  // namespace rair
