#include "topology/mesh.h"

#include <gtest/gtest.h>

#include <set>

namespace rair {
namespace {

TEST(Mesh, Dimensions) {
  Mesh m(8, 8);
  EXPECT_EQ(m.width(), 8);
  EXPECT_EQ(m.height(), 8);
  EXPECT_EQ(m.numNodes(), 64);
}

TEST(Mesh, CoordRoundTrip) {
  Mesh m(8, 4);
  for (NodeId n = 0; n < m.numNodes(); ++n) {
    EXPECT_EQ(m.nodeAt(m.coordOf(n)), n);
  }
}

TEST(Mesh, RowMajorNumbering) {
  Mesh m(8, 8);
  EXPECT_EQ(m.nodeAt({0, 0}), 0);
  EXPECT_EQ(m.nodeAt({7, 0}), 7);
  EXPECT_EQ(m.nodeAt({0, 1}), 8);
  EXPECT_EQ(m.nodeAt({7, 7}), 63);
}

TEST(Mesh, NeighborsInterior) {
  Mesh m(8, 8);
  const NodeId n = m.nodeAt({3, 3});
  EXPECT_EQ(m.neighbor(n, Dir::North), m.nodeAt({3, 2}));
  EXPECT_EQ(m.neighbor(n, Dir::South), m.nodeAt({3, 4}));
  EXPECT_EQ(m.neighbor(n, Dir::East), m.nodeAt({4, 3}));
  EXPECT_EQ(m.neighbor(n, Dir::West), m.nodeAt({2, 3}));
  EXPECT_FALSE(m.neighbor(n, Dir::Local).has_value());
}

TEST(Mesh, NeighborsAtEdges) {
  Mesh m(8, 8);
  EXPECT_FALSE(m.neighbor(m.nodeAt({0, 0}), Dir::North).has_value());
  EXPECT_FALSE(m.neighbor(m.nodeAt({0, 0}), Dir::West).has_value());
  EXPECT_FALSE(m.neighbor(m.nodeAt({7, 7}), Dir::South).has_value());
  EXPECT_FALSE(m.neighbor(m.nodeAt({7, 7}), Dir::East).has_value());
}

TEST(Mesh, NeighborSymmetry) {
  Mesh m(5, 7);
  for (NodeId n = 0; n < m.numNodes(); ++n) {
    for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West}) {
      if (auto nb = m.neighbor(n, d)) {
        EXPECT_EQ(m.neighbor(*nb, opposite(d)), n);
      }
    }
  }
}

TEST(Mesh, HopDistance) {
  Mesh m(8, 8);
  EXPECT_EQ(m.hopDistance(m.nodeAt({0, 0}), m.nodeAt({0, 0})), 0);
  EXPECT_EQ(m.hopDistance(m.nodeAt({0, 0}), m.nodeAt({7, 7})), 14);
  EXPECT_EQ(m.hopDistance(m.nodeAt({2, 3}), m.nodeAt({5, 1})), 5);
}

TEST(Mesh, MinimalDirsQuadrant) {
  Mesh m(8, 8);
  const NodeId src = m.nodeAt({3, 3});
  auto md = m.minimalDirs(src, m.nodeAt({5, 6}));
  ASSERT_EQ(md.count, 2);
  EXPECT_EQ(md.dirs[0], Dir::East);
  EXPECT_EQ(md.dirs[1], Dir::South);

  md = m.minimalDirs(src, m.nodeAt({1, 3}));
  ASSERT_EQ(md.count, 1);
  EXPECT_EQ(md.dirs[0], Dir::West);

  md = m.minimalDirs(src, m.nodeAt({3, 0}));
  ASSERT_EQ(md.count, 1);
  EXPECT_EQ(md.dirs[0], Dir::North);

  md = m.minimalDirs(src, src);
  EXPECT_EQ(md.count, 0);
}

TEST(Mesh, MinimalDirsAlwaysReduceDistance) {
  Mesh m(6, 6);
  for (NodeId s = 0; s < m.numNodes(); ++s) {
    for (NodeId d = 0; d < m.numNodes(); ++d) {
      if (s == d) continue;
      const auto md = m.minimalDirs(s, d);
      ASSERT_GE(md.count, 1);
      for (int i = 0; i < md.count; ++i) {
        const auto nb = m.neighbor(s, md.dirs[i]);
        ASSERT_TRUE(nb.has_value());
        EXPECT_EQ(m.hopDistance(*nb, d), m.hopDistance(s, d) - 1);
      }
    }
  }
}

TEST(Mesh, CornerNodes) {
  Mesh m(8, 8);
  const auto corners = m.cornerNodes();
  const std::set<NodeId> expect = {0, 7, 56, 63};
  EXPECT_EQ(std::set<NodeId>(corners.begin(), corners.end()), expect);
}

TEST(Mesh, OppositeDirs) {
  EXPECT_EQ(opposite(Dir::North), Dir::South);
  EXPECT_EQ(opposite(Dir::South), Dir::North);
  EXPECT_EQ(opposite(Dir::East), Dir::West);
  EXPECT_EQ(opposite(Dir::West), Dir::East);
}

TEST(Mesh, DirNames) {
  EXPECT_EQ(dirName(Dir::Local), "L");
  EXPECT_EQ(dirName(Dir::North), "N");
  EXPECT_EQ(dirName(Dir::East), "E");
  EXPECT_EQ(dirName(Dir::South), "S");
  EXPECT_EQ(dirName(Dir::West), "W");
}

TEST(Mesh, NonSquareMesh) {
  Mesh m(4, 2);
  EXPECT_EQ(m.numNodes(), 8);
  EXPECT_EQ(m.coordOf(5).x, 1);
  EXPECT_EQ(m.coordOf(5).y, 1);
  EXPECT_EQ(m.hopDistance(0, 7), 4);
}

}  // namespace
}  // namespace rair
