// Golden continuation: checkpoint a recorded-golden cell in the middle of
// its measurement window, restore, finish — and require the result to be
// byte-identical to the uninterrupted run (the exact golden numbers from
// test_equivalence.cpp). This is the load-bearing invariant of the
// snapshot subsystem: resuming is indistinguishable from never stopping.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/runner.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "snapshot/buffer.h"
#include "snapshot/checkpoint.h"
#include "snapshot/scenario_key.h"

namespace rair {
namespace {

/// Calibrated half-mesh saturation of the seed fig09 campaign (same
/// constant as test_equivalence.cpp).
constexpr double kHalfSat = 0.38195418397913583;

/// Fast-window fig12 scenario-a loads (same as test_equivalence.cpp).
constexpr double kFig12RatesA[4] = {0.070229165341078717, 0.05664346945403196,
                                    0.05664346945403196, 0.5679854733312848};

ScenarioSpec fig09Spec(const Mesh& mesh, const RegionMap& regions, double p,
                       const SchemeSpec& scheme, std::uint64_t seed) {
  return ScenarioSpec(mesh, regions)
      .withScheme(scheme)
      .withApps(scenarios::twoAppInterRegion(
          p, scenarios::kLowLoadFraction * kHalfSat,
          scenarios::kHighLoadFraction * kHalfSat))
      .withSeed(seed)
      .withFastWindows();
}

ScenarioSpec fig12SpecA(const Mesh& mesh, const RegionMap& regions,
                        const SchemeSpec& scheme, std::uint64_t seed) {
  auto apps = scenarios::fourAppLowTowardHigh(0, 0);
  for (std::size_t a = 0; a < 4; ++a) apps[a].injectionRate = kFig12RatesA[a];
  return ScenarioSpec(mesh, regions)
      .withScheme(scheme)
      .withApps(std::move(apps))
      .withSeed(seed)
      .withFastWindows();
}

// Fast windows: warmup 2000, measurement ends at 22000. Cycle 12000 is in
// the middle of the window, with measured packets in flight — the hardest
// point to capture correctly.
constexpr Cycle kMidWindow = 12'000;

TEST(Continuation, Fig09CellResumedMidWindowMatchesGolden) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 0.0, schemeRoRr(), 10451216379200822465ull);

  const std::string path = ::testing::TempDir() + "rair_cont_fig09.snap";
  snapshot::removeFile(path);
  ASSERT_TRUE(writeScenarioCheckpoint(spec, kMidWindow, path));

  const ScenarioResult r =
      runScenario(ScenarioSpec(spec).withCheckpoint(path));
  EXPECT_EQ(r.resumedFromCycle, kMidWindow);

  // The recorded golden numbers of the uninterrupted run
  // (test_equivalence.cpp, Fig09RoRrP0MatchesSeedImplementation).
  ASSERT_EQ(r.appApl.size(), 2u);
  EXPECT_EQ(r.appApl[0], 23.313518113299295);
  EXPECT_EQ(r.appApl[1], 29.36873761982563);
  EXPECT_EQ(r.meanApl, 28.725103050821176);
  EXPECT_EQ(r.run.cyclesRun, 22062u);
  EXPECT_EQ(r.run.packetsCreated, 85324u);
  EXPECT_EQ(r.run.packetsDelivered, 85224u);
  EXPECT_EQ(r.run.termination, Termination::Drained);

  // A completed run deletes its checkpoint.
  EXPECT_FALSE(snapshot::readSnapshotFile(path).has_value());
}

TEST(Continuation, Fig12CellResumedMidWindowMatchesGolden) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::quadrants(mesh);
  const ScenarioSpec spec =
      fig12SpecA(mesh, regions, schemeRaRair(), 16184226688143867045ull);

  const std::string path = ::testing::TempDir() + "rair_cont_fig12.snap";
  snapshot::removeFile(path);
  ASSERT_TRUE(writeScenarioCheckpoint(spec, kMidWindow, path));

  const ScenarioResult r =
      runScenario(ScenarioSpec(spec).withCheckpoint(path));
  EXPECT_EQ(r.resumedFromCycle, kMidWindow);

  // Golden numbers of the uninterrupted run (test_equivalence.cpp,
  // Fig12RaRairScenarioAMatchesRecordedGolden).
  ASSERT_EQ(r.appApl.size(), 4u);
  EXPECT_EQ(r.appApl[0], 24.793486894360605);
  EXPECT_EQ(r.appApl[1], 21.615497076023392);
  EXPECT_EQ(r.appApl[2], 21.577321281840593);
  EXPECT_EQ(r.appApl[3], 34.977863377860075);
  EXPECT_EQ(r.meanApl, 31.979298232502522);
  EXPECT_EQ(r.run.cyclesRun, 22088u);
  EXPECT_EQ(r.run.packetsCreated, 88556u);
  EXPECT_EQ(r.run.packetsDelivered, 88428u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

// ---- Campaign-level resume ------------------------------------------------

/// The first two cells of the fig09 RO_RR row (p = 0, 25): same
/// campaignSeed and cell order as the full fig09 campaign, so the cells
/// derive the seed-campaign seeds.
campaign::CampaignSpec fig09TwoCells() {
  campaign::CampaignSpec spec;
  spec.name = "fig09cont";
  spec.campaignSeed = 1;
  for (const int p : {0, 25}) {
    campaign::CampaignCell cell;
    cell.key = "RO_RR/p" + std::to_string(p);
    cell.labels = {{"scheme", "RO_RR"}, {"p", std::to_string(p)}};
    cell.run = [p](const campaign::CellContext& ctx) {
      Mesh mesh(8, 8);
      const RegionMap regions = RegionMap::halves(mesh);
      ScenarioSpec spec =
          fig09Spec(mesh, regions, p / 100.0, schemeRoRr(), ctx.seed);
      return runScenario(ctx.applyTo(spec));
    };
    spec.add(std::move(cell));
  }
  return spec;
}

std::vector<std::string> canonicalLines(
    const std::vector<campaign::CellRecord>& recs) {
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const auto& r : recs)
    lines.push_back(r.toJsonLine(/*includeVolatile=*/false));
  return lines;
}

/// Fabricates the "interrupted campaign" state: a mid-window checkpoint
/// for every cell, at the per-cell path the runner will derive.
std::vector<std::string> writeCellCheckpoints(const std::string& dir) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  EXPECT_TRUE(snapshot::ensureDir(dir));
  std::vector<std::string> paths;
  int index = 0;
  for (const int p : {0, 25}) {
    const ScenarioSpec spec =
        fig09Spec(mesh, regions, p / 100.0, schemeRoRr(),
                  campaign::cellSeed(1, index++));
    const std::string path =
        dir + "/" + snapshot::checkpointFileName(snapshot::fullStateKey(spec));
    EXPECT_TRUE(writeScenarioCheckpoint(spec, kMidWindow, path));
    paths.push_back(path);
  }
  return paths;
}

TEST(Continuation, ResumedCampaignMatchesStraightRunAtAnyWorkerCount) {
  const campaign::CampaignSpec spec = fig09TwoCells();
  const std::string dir = ::testing::TempDir() + "rair_cont_campaign";

  campaign::RunnerOptions plain;
  plain.jobs = 1;
  const auto straight = campaign::runCampaign(spec, plain);
  ASSERT_EQ(straight.records.size(), 2u);

  // Tie this test to the recorded seed-campaign trajectory, not merely to
  // itself.
  EXPECT_EQ(straight.records[0].seed, 10451216379200822465ull);
  ASSERT_EQ(straight.records[0].appApl.size(), 2u);
  EXPECT_EQ(straight.records[0].appApl[0], 23.313518113299295);
  EXPECT_EQ(straight.records[0].cyclesRun, 22062u);

  for (const int jobs : {1, 4}) {
    const auto paths = writeCellCheckpoints(dir);
    campaign::RunnerOptions resume;
    resume.jobs = jobs;
    resume.checkpointDir = dir;
    const auto resumed = campaign::runCampaign(spec, resume);
    EXPECT_EQ(canonicalLines(resumed.records), canonicalLines(straight.records))
        << "jobs=" << jobs;
    // Every cell consumed (and then deleted) its checkpoint.
    for (const auto& p : paths)
      EXPECT_FALSE(snapshot::readSnapshotFile(p).has_value()) << p;
  }
}

}  // namespace
}  // namespace rair
