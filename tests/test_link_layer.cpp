// Link-layer contract tests beyond the basics in test_link.cpp: DelayPipe
// restore-order invariants, RetxLink go-back-N unit behaviour (corruption,
// NAK recovery, replay-buffer wrap-around), scenario-level ideal/retx
// equivalence at every shard-thread count, and byte-stable snapshots taken
// mid-retransmission.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "link/link_layer.h"
#include "link/retx.h"
#include "sim/scenario.h"
#include "snapshot/buffer.h"
#include "snapshot/scenario_key.h"

namespace rair {
namespace {

// ---- DelayPipe restore-order invariants ------------------------------------

TEST(DelayPipeRestore, RoundTripReproducesArrivals) {
  DelayPipe<int> p(3);
  p.push(10, 1);
  p.push(11, 2);
  p.push(13, 3);

  // Save (walk entries), clear, restore in front-to-back order.
  std::vector<std::pair<Cycle, int>> saved;
  for (std::size_t i = 0; i < p.size(); ++i) saved.push_back(p.entry(i));
  p.clearForRestore();
  EXPECT_TRUE(p.empty());
  for (const auto& [arrival, v] : saved) p.pushAbsolute(arrival, v);

  EXPECT_FALSE(p.pop(12).has_value());
  EXPECT_EQ(p.pop(13).value(), 1);
  EXPECT_EQ(p.pop(14).value(), 2);
  EXPECT_EQ(p.pop(16).value(), 3);
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(DelayPipeRestoreDeathTest, RejectsOutOfOrderPushAbsolute) {
  // Restoring entries out of saved order would fabricate a queue that can
  // deliver out of FIFO order; the debug check refuses to build one.
  DelayPipe<int> p(1);
  p.clearForRestore();
  p.pushAbsolute(5, 1);
  EXPECT_DEATH(p.pushAbsolute(4, 2), "pushAbsolute|DCHECK|arrival");
}

TEST(DelayPipeRestoreDeathTest, RejectsTimeTravelPush) {
  DelayPipe<int> p(2);
  p.push(10, 1);
  EXPECT_DEATH(p.push(5, 2), "push|DCHECK|latency");
}
#endif

// ---- RetxLink unit behaviour -----------------------------------------------

/// Drives both endpoints of one RetxLink with the engine's phase
/// discipline: upstream polls credits, sends and pumps first; downstream
/// receives, credits back and flushes control second.
struct RetxHarness {
  RetxLink link;
  Cycle now = 0;
  std::vector<PacketId> delivered;

  explicit RetxHarness(Cycle latency, std::size_t cap) : link(latency, cap) {}

  void cycle(std::optional<PacketId> sendPkt) {
    // Phase A (upstream endpoint): apply arrived credits/ACKs/NAKs, hand
    // over at most one flit, pump the wire.
    while (link.peekCredit(now) != nullptr) link.popCredit();
    if (sendPkt.has_value()) {
      Flit f;
      f.pkt = *sendPkt;
      link.sendFlit(now, f, 0);
    }
    link.tickUpstream(now);
    // Phase B (downstream endpoint): accept the in-order flit, return a
    // credit, flush one control message.
    if (const FlitMsg* m = link.peekFlit(now)) {
      delivered.push_back(m->flit.pkt);
      link.popFlit();
      link.sendCredit(now, m->vc);
    }
    link.tickDownstream(now);
    ++now;
  }
};

TEST(RetxLink, FaultFreeTimingMatchesIdeal) {
  // A flit handed over at cycle t is accepted at t + latency — the exact
  // IdealLink schedule, so a corruption-free retx network is
  // cycle-identical to an ideal one.
  for (const Cycle latency : {Cycle{1}, Cycle{2}}) {
    RetxHarness h(latency, 16);
    h.cycle(PacketId{7});
    for (Cycle c = 1; c < latency; ++c) {
      h.cycle(std::nullopt);
      EXPECT_TRUE(h.delivered.empty()) << "latency " << latency;
    }
    h.cycle(std::nullopt);
    ASSERT_EQ(h.delivered.size(), 1u) << "latency " << latency;
    EXPECT_EQ(h.delivered[0], 7u);
  }
}

TEST(RetxLink, CorruptedFlitIsNakdAndRedeliveredInOrder) {
  RetxHarness h(1, 16);
  h.link.corruptNext(1);
  h.cycle(PacketId{10});
  h.cycle(PacketId{11});
  h.cycle(PacketId{12});
  for (int i = 0; i < 12; ++i) h.cycle(std::nullopt);

  // Exactly once each, in order — the corrupt head was replayed, the
  // gapped successors were dropped downstream and replayed behind it.
  EXPECT_EQ(h.delivered, (std::vector<PacketId>{10, 11, 12}));
  EXPECT_EQ(h.link.corruptedFlits(), 1u);
  EXPECT_GE(h.link.retransmittedFlits(), 2u);
  EXPECT_TRUE(h.link.idle());
  EXPECT_EQ(h.link.expectSeq(), 3u);
}

TEST(RetxLink, CorruptionBurstMidStreamRecovers) {
  RetxHarness h(1, 32);
  std::vector<PacketId> expected;
  for (PacketId p = 0; p < 30; ++p) {
    if (p == 9) h.link.corruptNext(3);
    h.cycle(p);
    expected.push_back(p);
  }
  for (int i = 0; i < 40; ++i) h.cycle(std::nullopt);

  EXPECT_EQ(h.delivered, expected);
  EXPECT_EQ(h.link.corruptedFlits(), 3u);
  EXPECT_GT(h.link.retransmittedFlits(), 0u);
  EXPECT_TRUE(h.link.idle());
}

TEST(RetxLink, ReplayBufferWrapsAround) {
  // Far more traffic than the replay capacity: cumulative ACKs retire
  // entries while the ring's head and tail wrap repeatedly. Order must
  // hold and occupancy must stay within the credit-loop bound.
  constexpr std::size_t kCap = 8;
  RetxHarness h(1, kCap);
  std::vector<PacketId> expected;
  for (PacketId p = 0; p < 100; ++p) {
    h.cycle(p);
    expected.push_back(p);
    EXPECT_LE(h.link.replayOccupancy(), kCap);
  }
  for (int i = 0; i < 10; ++i) h.cycle(std::nullopt);

  EXPECT_EQ(h.delivered, expected);
  EXPECT_TRUE(h.link.idle());
  EXPECT_EQ(h.link.replayOccupancy(), 0u);
  EXPECT_EQ(h.link.retransmittedFlits(), 0u);
}

// ---- Scenario-level equivalence --------------------------------------------

ScenarioSpec smallSpec(const Mesh& mesh, const RegionMap& regions) {
  SimConfig cfg;
  cfg.warmupCycles = 200;
  cfg.measureCycles = 1'000;
  cfg.drainLimit = 20'000;
  std::vector<AppTrafficSpec> apps(2);
  apps[0].app = 0;
  apps[0].injectionRate = 0.08;
  apps[1].app = 1;
  apps[1].injectionRate = 0.15;
  return ScenarioSpec(mesh, regions)
      .withConfig(cfg)
      .withScheme(schemeRaRair())
      .withApps(std::move(apps))
      .withSeed(42);
}

/// A plan whose corruption burst lands mid-measurement on a busy
/// intra-region link (requires the retx layer).
fault::FaultPlan corruptionPlan(const Mesh& mesh) {
  fault::FaultPlan plan;
  plan.corruptFlits(400, mesh.nodeAt({2, 2}), Dir::East, 10);
  plan.corruptFlits(600, mesh.nodeAt({5, 4}), Dir::West, 5);
  return plan;
}

void expectSameResult(const ScenarioResult& x, const ScenarioResult& y) {
  EXPECT_EQ(x.appApl, y.appApl);
  EXPECT_EQ(x.meanApl, y.meanApl);
  EXPECT_EQ(x.run.cyclesRun, y.run.cyclesRun);
  EXPECT_EQ(x.run.packetsCreated, y.run.packetsCreated);
  EXPECT_EQ(x.run.packetsDelivered, y.run.packetsDelivered);
  EXPECT_EQ(x.run.termination, y.run.termination);
  EXPECT_EQ(x.run.flitHops, y.run.flitHops);
}

TEST(LinkLayerScenario, CleanRetxRunMatchesIdealAtEveryThreadCount) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec base = smallSpec(mesh, regions);

  // With no corruption the retx layer is pure overhead: same handover
  // cycle, same acceptance cycle — the simulated outcome is identical to
  // the ideal layer, under any shard-thread count.
  const ScenarioResult ideal = runScenario(base);
  const ScenarioResult retxLegacy =
      runScenario(ScenarioSpec(base).withLinkLayer(LinkLayerKind::Retx));
  expectSameResult(retxLegacy, ideal);
  for (const int threads : {1, 4}) {
    const ScenarioResult retx =
        runScenario(ScenarioSpec(base)
                        .withLinkLayer(LinkLayerKind::Retx)
                        .withThreads(threads));
    expectSameResult(retx, ideal);
  }
}

TEST(LinkLayerScenario, CorruptionRecoveryIsThreadCountInvariant) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      ScenarioSpec(smallSpec(mesh, regions))
          .withLinkLayer(LinkLayerKind::Retx)
          .withFaults(corruptionPlan(mesh));

  const ScenarioResult single = runScenario(spec);
  ASSERT_TRUE(single.faultStats.has_value());
  EXPECT_EQ(single.faultStats->corruptedFlits, 15u);
  EXPECT_GE(single.faultStats->retransmittedFlits, 15u);
  EXPECT_EQ(single.run.termination, Termination::Drained);

  for (const int threads : {1, 4}) {
    const ScenarioResult sharded =
        runScenario(ScenarioSpec(spec).withThreads(threads));
    expectSameResult(sharded, single);
    ASSERT_TRUE(sharded.faultStats.has_value());
    EXPECT_EQ(*sharded.faultStats, *single.faultStats);
  }
}

// ---- Mid-retransmission snapshots ------------------------------------------

std::vector<std::uint8_t> serializedAfter(const ScenarioSpec& spec,
                                          Cycle cycles) {
  AssembledScenario as = assembleScenario(spec);
  as.sim->begin();
  while (as.sim->now() < cycles) as.sim->stepCycle();
  snapshot::Writer w;
  as.sim->save(w);
  return w.payload();
}

TEST(RetxSnapshot, MidRetransmissionStateIsByteStable) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  // Observation point 402: the burst armed at 400 is mid-recovery — the
  // serialized state carries corrupt wire flits, staged NAKs and a
  // rewound replay pump.
  const ScenarioSpec spec =
      ScenarioSpec(smallSpec(mesh, regions))
          .withLinkLayer(LinkLayerKind::Retx)
          .withFaults(corruptionPlan(mesh));
  const auto legacy = serializedAfter(spec, 402);

  // Identical bytes at every shard-thread count...
  for (const int threads : {1, 2, 4}) {
    const auto sharded =
        serializedAfter(ScenarioSpec(spec).withThreads(threads), 402);
    EXPECT_TRUE(legacy == sharded) << "threads=" << threads;
  }

  // ...and restore -> save round-trips byte-stably.
  AssembledScenario restored = assembleScenario(spec);
  snapshot::Reader r(legacy);
  restored.sim->restore(r);
  EXPECT_TRUE(r.atEnd());
  EXPECT_EQ(restored.sim->now(), 402u);
  snapshot::Writer w2;
  restored.sim->save(w2);
  EXPECT_TRUE(w2.payload() == legacy);
}

TEST(RetxSnapshot, MidRetransmissionCheckpointResumeMatchesStraightRun) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      ScenarioSpec(smallSpec(mesh, regions))
          .withLinkLayer(LinkLayerKind::Retx)
          .withFaults(corruptionPlan(mesh));

  const ScenarioResult straight = runScenario(spec);
  ASSERT_TRUE(straight.faultStats.has_value());

  const std::string path = ::testing::TempDir() + "rair_retx_mid.snap";
  snapshot::removeFile(path);
  ASSERT_TRUE(writeScenarioCheckpoint(spec, 402, path));

  // Resume on a different thread count than the straight run.
  const ScenarioResult resumed =
      runScenario(ScenarioSpec(spec).withCheckpoint(path).withThreads(4));
  EXPECT_EQ(resumed.resumedFromCycle, 402u);
  expectSameResult(resumed, straight);
  ASSERT_TRUE(resumed.faultStats.has_value());
  EXPECT_EQ(*resumed.faultStats, *straight.faultStats);
  snapshot::removeFile(path);
}

TEST(RetxSnapshot, LinkLayerEntersTheScenarioKeys) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec ideal = smallSpec(mesh, regions);
  const ScenarioSpec retx =
      ScenarioSpec(smallSpec(mesh, regions))
          .withLinkLayer(LinkLayerKind::Retx);
  // A retx network carries replay/sequence state an ideal one does not:
  // the two must never share warm caches or checkpoints.
  EXPECT_NE(snapshot::warmStateKey(ideal), snapshot::warmStateKey(retx));
  EXPECT_NE(snapshot::fullStateKey(ideal), snapshot::fullStateKey(retx));
}

}  // namespace
}  // namespace rair
