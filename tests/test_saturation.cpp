#include "sim/saturation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rair {
namespace {

TEST(Saturation, FindsKneeOfAnalyticCurve) {
  // Synthetic M/M/1-style latency curve saturating at rate 0.4:
  // apl(r) = L0 / (1 - r/0.4), diverging at the knee.
  const double L0 = 20.0;
  auto apl = [&](double r) {
    if (r >= 0.4) return 1e9;
    return L0 / (1.0 - r / 0.4);
  };
  SaturationOptions opts;
  const double sat = findSaturationRate(apl, opts);
  // APL crosses 4x zero-load at r = 0.3 (1/(1-r/0.4) = 4 -> r = 0.3).
  EXPECT_NEAR(sat, 0.3, 0.02);
}

TEST(Saturation, NeverSaturatingReturnsMaxRate) {
  auto apl = [](double) { return 10.0; };
  SaturationOptions opts;
  opts.maxRate = 0.8;
  EXPECT_DOUBLE_EQ(findSaturationRate(apl, opts), 0.8);
}

TEST(Saturation, KneeFactorShiftsResult) {
  auto apl = [](double r) { return 10.0 / std::max(1e-9, 1.0 - r); };
  SaturationOptions loose;
  loose.kneeFactor = 8.0;
  SaturationOptions tight;
  tight.kneeFactor = 2.0;
  EXPECT_GT(findSaturationRate(apl, loose), findSaturationRate(apl, tight));
}

TEST(Saturation, KneeBelowStartRateBisectsLowerInterval) {
  // The knee sits below the geometric scan's start rate: the very first
  // probe is already saturated, so bisection must work the interval
  // [zeroLoadRate, startRate] instead of running off a bogus bracket.
  auto apl = [](double r) { return r < 0.01 ? 10.0 : 1e9; };
  SaturationOptions opts;  // zeroLoadRate 0.005, startRate 0.02
  const double sat = findSaturationRate(apl, opts);
  EXPECT_GE(sat, opts.zeroLoadRate);
  EXPECT_LE(sat, opts.startRate);
  EXPECT_NEAR(sat, 0.01, 0.002);
}

TEST(Saturation, KneeInsideLastGeometricGapReportsMaxRate) {
  // With growth 1.3 the scan's last probe below maxRate = 1.0 is ~0.787;
  // a knee hiding in the unprobed (0.787, 1.0] tail is indistinguishable
  // from never-saturating, so the finder reports maxRate — and must never
  // exceed the link-rate bound while doing so.
  auto apl = [](double r) { return r > 0.95 ? 1e9 : 10.0; };
  SaturationOptions opts;  // maxRate 1.0
  const double sat = findSaturationRate(apl, opts);
  EXPECT_DOUBLE_EQ(sat, opts.maxRate);
}

TEST(Saturation, KneeNearUpperBoundBisectsWithinLastProbedStep) {
  // A knee in the last *probed* step (just under the 0.787 final probe)
  // must be bracketed and bisected, not rounded up to maxRate.
  auto apl = [](double r) { return r > 0.7 ? 1e9 : 10.0; };
  SaturationOptions opts;  // maxRate 1.0
  const double sat = findSaturationRate(apl, opts);
  EXPECT_LT(sat, opts.maxRate);
  EXPECT_NEAR(sat, 0.7, 0.02);
}

TEST(Saturation, KneeBeyondMaxRateClampsToMaxRate) {
  // Saturation only past the search bound: the scan exhausts its range
  // without ever bracketing a knee and must return maxRate, not diverge.
  auto apl = [](double r) { return r > 1.5 ? 1e9 : 10.0; };
  SaturationOptions opts;
  opts.maxRate = 0.9;
  EXPECT_DOUBLE_EQ(findSaturationRate(apl, opts), 0.9);
}

TEST(Saturation, NeverDrainingCellTerminatesWithinBisectIters) {
  // A cell that never drains reports +inf APL at every probed rate above
  // zero load (see appSaturationRate). The finder must terminate after
  // the zero-load probe, one scan probe and bisectIters bisection probes
  // — never loop hunting for a finite latency.
  SaturationOptions opts;
  int calls = 0;
  auto apl = [&](double r) {
    ++calls;
    if (r <= opts.zeroLoadRate) return 5.0;
    return std::numeric_limits<double>::infinity();
  };
  const double sat = findSaturationRate(apl, opts);
  EXPECT_LE(calls, 2 + opts.bisectIters);
  EXPECT_GE(sat, opts.zeroLoadRate);
  EXPECT_LE(sat, opts.startRate);
}

TEST(Saturation, EmpiricalHalfMeshSaturation) {
  // App 0 on the west half of an 8x8 mesh with uniform intra-region
  // traffic: saturation must land at a plausible mesh throughput —
  // clearly above 0.1 and below the 1.0 link bound.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  AppTrafficSpec app;
  app.app = 0;
  SaturationOptions opts;
  opts.measureCycles = 4'000;
  opts.warmupCycles = 1'000;
  opts.drainLimit = 10'000;
  opts.bisectIters = 4;
  const double sat = appSaturationRate(m, rm, app, opts);
  EXPECT_GT(sat, 0.1);
  EXPECT_LT(sat, 1.0);
}

TEST(Saturation, InterRegionTrafficSaturatesEarlier) {
  // Sending everything across the chip adds hops and shared-channel
  // contention, so saturation drops versus region-local traffic.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  SaturationOptions opts;
  opts.measureCycles = 4'000;
  opts.warmupCycles = 1'000;
  opts.drainLimit = 10'000;
  opts.bisectIters = 4;

  AppTrafficSpec local;
  local.app = 0;
  const double satLocal = appSaturationRate(m, rm, local, opts);

  AppTrafficSpec remote;
  remote.app = 0;
  remote.intraFraction = 0.0;
  remote.interFraction = 1.0;
  remote.interTargetApp = 1;
  const double satRemote = appSaturationRate(m, rm, remote, opts);

  EXPECT_LT(satRemote, satLocal);
}

}  // namespace
}  // namespace rair
