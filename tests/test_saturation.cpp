#include "sim/saturation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rair {
namespace {

TEST(Saturation, FindsKneeOfAnalyticCurve) {
  // Synthetic M/M/1-style latency curve saturating at rate 0.4:
  // apl(r) = L0 / (1 - r/0.4), diverging at the knee.
  const double L0 = 20.0;
  auto apl = [&](double r) {
    if (r >= 0.4) return 1e9;
    return L0 / (1.0 - r / 0.4);
  };
  SaturationOptions opts;
  const double sat = findSaturationRate(apl, opts);
  // APL crosses 4x zero-load at r = 0.3 (1/(1-r/0.4) = 4 -> r = 0.3).
  EXPECT_NEAR(sat, 0.3, 0.02);
}

TEST(Saturation, NeverSaturatingReturnsMaxRate) {
  auto apl = [](double) { return 10.0; };
  SaturationOptions opts;
  opts.maxRate = 0.8;
  EXPECT_DOUBLE_EQ(findSaturationRate(apl, opts), 0.8);
}

TEST(Saturation, KneeFactorShiftsResult) {
  auto apl = [](double r) { return 10.0 / std::max(1e-9, 1.0 - r); };
  SaturationOptions loose;
  loose.kneeFactor = 8.0;
  SaturationOptions tight;
  tight.kneeFactor = 2.0;
  EXPECT_GT(findSaturationRate(apl, loose), findSaturationRate(apl, tight));
}

TEST(Saturation, EmpiricalHalfMeshSaturation) {
  // App 0 on the west half of an 8x8 mesh with uniform intra-region
  // traffic: saturation must land at a plausible mesh throughput —
  // clearly above 0.1 and below the 1.0 link bound.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  AppTrafficSpec app;
  app.app = 0;
  SaturationOptions opts;
  opts.measureCycles = 4'000;
  opts.warmupCycles = 1'000;
  opts.drainLimit = 10'000;
  opts.bisectIters = 4;
  const double sat = appSaturationRate(m, rm, app, opts);
  EXPECT_GT(sat, 0.1);
  EXPECT_LT(sat, 1.0);
}

TEST(Saturation, InterRegionTrafficSaturatesEarlier) {
  // Sending everything across the chip adds hops and shared-channel
  // contention, so saturation drops versus region-local traffic.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  SaturationOptions opts;
  opts.measureCycles = 4'000;
  opts.warmupCycles = 1'000;
  opts.drainLimit = 10'000;
  opts.bisectIters = 4;

  AppTrafficSpec local;
  local.app = 0;
  const double satLocal = appSaturationRate(m, rm, local, opts);

  AppTrafficSpec remote;
  remote.app = 0;
  remote.intraFraction = 0.0;
  remote.interFraction = 1.0;
  remote.interTargetApp = 1;
  const double satRemote = appSaturationRate(m, rm, remote, opts);

  EXPECT_LT(satRemote, satLocal);
}

}  // namespace
}  // namespace rair
