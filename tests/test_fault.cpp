// Fault subsystem: plan round-trips, degraded-topology routing tables,
// byte-identity of fault-free runs with an (empty-plan) injector attached,
// the oracle holding through every fault kind, drop accounting under
// partition, and snapshot stability of mid-outage state across shard
// thread counts (including checkpoint resume).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/fuzz.h"
#include "check/oracle.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "routing/degraded.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "snapshot/buffer.h"
#include "snapshot/checkpoint.h"
#include "snapshot/scenario_key.h"

namespace rair {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

/// Same calibrated constant as test_equivalence.cpp / test_shard_*.cpp.
constexpr double kHalfSat = 0.38195418397913583;

ScenarioSpec fig09Spec(const Mesh& mesh, const RegionMap& regions, double p,
                       const SchemeSpec& scheme, std::uint64_t seed) {
  return ScenarioSpec(mesh, regions)
      .withScheme(scheme)
      .withApps(scenarios::twoAppInterRegion(
          p, scenarios::kLowLoadFraction * kHalfSat,
          scenarios::kHighLoadFraction * kHalfSat))
      .withSeed(seed)
      .withFastWindows();
}

// ---- Plan round-trips -----------------------------------------------------

FaultPlan samplePlan() {
  FaultPlan plan;
  plan.linkOutage(100, 5, Dir::East, 250);
  plan.portStall(40, 3, Dir::North, 60);
  plan.injectFreeze(200, 7, 80);
  plan.creditLoss(150, 2, Dir::West, 1, 2);
  plan.softReset(300, 6, 120);
  plan.add({500, FaultKind::LinkDown, 9, Dir::South, 0, 1});  // permanent
  return plan;
}

TEST(FaultPlan, TextFormatRoundTrips) {
  const FaultPlan plan = samplePlan();
  FaultPlan back;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(plan.format(), back, &err)) << err;
  EXPECT_EQ(plan, back);
}

TEST(FaultPlan, ParseRejectsMalformedLinesWithAnError) {
  FaultPlan out;
  std::string err;
  EXPECT_FALSE(FaultPlan::parse("@12 explode 3 N\n", out, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(FaultPlan::parse("down 3 N\n", out, &err));  // missing @cycle
}

TEST(FaultPlan, ParseIgnoresBlankLinesAndComments) {
  FaultPlan out;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse("# a comment\n\n@5 down 1 E\n", out, &err))
      << err;
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.events()[0].kind, FaultKind::LinkDown);
  EXPECT_EQ(out.events()[0].at, 5u);
}

TEST(FaultPlan, BinaryEncodingRoundTrips) {
  const FaultPlan plan = samplePlan();
  snapshot::Writer w;
  plan.encode(w);
  snapshot::Reader r(w.payload());
  EXPECT_EQ(FaultPlan::decode(r), plan);
  EXPECT_TRUE(r.atEnd());
}

TEST(FaultPlan, ResetDurationSugarExpandsToRecover) {
  FaultPlan out;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse("@10 reset 3 50\n", out, &err)) << err;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.events()[0].kind, FaultKind::Reset);
  EXPECT_EQ(out.events()[0].at, 10u);
  EXPECT_EQ(out.events()[1].kind, FaultKind::Recover);
  EXPECT_EQ(out.events()[1].at, 60u);
  EXPECT_EQ(out.events()[1].node, 3);

  // The bare one-event forms parse too, and a zero duration is rejected.
  ASSERT_TRUE(FaultPlan::parse("@10 reset 3\n@60 recover 3\n", out, &err))
      << err;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(FaultPlan::parse("@10 reset 3 0\n", out, &err));
}

TEST(FaultPlan, EventsStaySortedByCycle) {
  const FaultPlan plan = samplePlan();
  for (std::size_t i = 1; i < plan.size(); ++i)
    EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
}

// ---- Degraded-topology routing tables -------------------------------------

TEST(DegradedTopology, SingleDeadLinkKeepsMeshConnected) {
  Mesh mesh(4, 4);
  DegradedTopology deg(mesh);
  EXPECT_FALSE(deg.active());

  // Kill the channel between (1,1) and (2,1).
  const NodeId a = mesh.nodeAt({1, 1});
  deg.setLinkDead(a, Dir::East, true);
  deg.recompute();
  ASSERT_TRUE(deg.active());
  EXPECT_EQ(deg.numDeadLinks(), 1);
  EXPECT_FALSE(deg.linkAlive(a, Dir::East));
  EXPECT_FALSE(deg.linkAlive(mesh.nodeAt({2, 1}), Dir::West));

  // One missing link leaves a 4x4 mesh fully connected.
  EXPECT_EQ(deg.unreachablePairs(), 0u);
  for (NodeId n = 0; n < mesh.numNodes(); ++n)
    EXPECT_EQ(deg.componentOf(n), deg.componentOf(0));

  // Distances detour around the cut: a -> East neighbor is now 3 hops.
  EXPECT_EQ(deg.distance(a, mesh.nodeAt({2, 1})), 3);

  // Escape routing never crosses the dead channel and always decreases
  // the tree distance toward the destination.
  for (NodeId src = 0; src < mesh.numNodes(); ++src) {
    for (NodeId dst = 0; dst < mesh.numNodes(); ++dst) {
      if (src == dst) continue;
      const Dir d = deg.escapeDir(src, dst);
      EXPECT_TRUE(deg.linkAlive(src, d)) << "src=" << src << " dst=" << dst;
    }
  }

  // Adaptive candidates are distance-decreasing on the degraded graph.
  const RouteResult rr = deg.routeFor(a, mesh.nodeAt({3, 1}));
  ASSERT_GT(rr.numAdaptive, 0);
  for (int i = 0; i < rr.numAdaptive; ++i) {
    const Dir d = rr.adaptiveDirs[static_cast<std::size_t>(i)];
    ASSERT_TRUE(deg.linkAlive(a, d));
    EXPECT_EQ(deg.distance(*mesh.neighbor(a, d), mesh.nodeAt({3, 1})),
              deg.distance(a, mesh.nodeAt({3, 1})) - 1);
  }

  // Restoring the link fully deactivates the tables.
  deg.setLinkDead(a, Dir::East, false);
  deg.recompute();
  EXPECT_FALSE(deg.active());
  EXPECT_EQ(deg.unreachablePairs(), 0u);
}

TEST(DegradedTopology, ConnectivityBitsReflectDeadLinks) {
  Mesh mesh(3, 3);
  DegradedTopology deg(mesh);
  const NodeId center = mesh.nodeAt({1, 1});
  const std::uint8_t before = deg.connectivityBits(center);
  EXPECT_EQ(before, 0b1111);  // all four links of the center node alive

  deg.setLinkDead(center, Dir::North, true);
  deg.recompute();
  EXPECT_EQ(deg.connectivityBits(center), before & ~0b0001);
  // Corner (0,0) keeps its two links.
  const int popcount =
      __builtin_popcount(deg.connectivityBits(mesh.nodeAt({0, 0})));
  EXPECT_EQ(popcount, 2);
}

TEST(DegradedTopology, CutIsolatingACornerPartitionsTheMesh) {
  Mesh mesh(2, 2);
  DegradedTopology deg(mesh);
  // Kill both links of node (0,0): the mesh splits {corner} | {rest}.
  const NodeId corner = mesh.nodeAt({0, 0});
  for (int d = 1; d < kNumPorts; ++d) {
    if (mesh.neighbor(corner, static_cast<Dir>(d)))
      deg.setLinkDead(corner, static_cast<Dir>(d), true);
  }
  deg.recompute();
  ASSERT_TRUE(deg.active());
  EXPECT_EQ(deg.numDeadLinks(), 2);

  for (NodeId n = 0; n < mesh.numNodes(); ++n) {
    EXPECT_EQ(deg.reachable(corner, n), n == corner);
  }
  // Ordered pairs between the two components: 1 * 3 * 2.
  EXPECT_EQ(deg.unreachablePairs(), 6u);
  EXPECT_EQ(deg.distance(corner, mesh.nodeAt({1, 1})), -1);
}

TEST(DegradedTopology, RoutingAlgorithmBypassesInactiveTables) {
  Mesh mesh(4, 4);
  DegradedTopology deg(mesh);
  XyRouting xy;
  Packet p;
  p.id = 1;
  p.src = mesh.nodeAt({0, 0});
  p.dst = mesh.nodeAt({3, 2});
  p.numFlits = 1;
  const Flit head = makeFlit(p, 0);

  const RouteResult plain = xy.computeCandidates(mesh, head.src, head);
  xy.setDegraded(&deg);
  const RouteResult attached = xy.computeCandidates(mesh, head.src, head);
  EXPECT_EQ(plain.escapeDir, attached.escapeDir);
  EXPECT_EQ(plain.numAdaptive, attached.numAdaptive);

  // Once a link dies, candidates come from the degraded tables.
  deg.setLinkDead(mesh.nodeAt({0, 0}), Dir::East, true);
  deg.recompute();
  const RouteResult rerouted = xy.computeCandidates(mesh, head.src, head);
  EXPECT_TRUE(deg.linkAlive(head.src, rerouted.escapeDir));
  EXPECT_NE(rerouted.escapeDir, Dir::East);
}

// ---- Fault-free byte-identity with an injector attached --------------------

std::vector<std::uint8_t> serializedAfter(const ScenarioSpec& spec,
                                          Cycle cycles, bool emptyInjector) {
  AssembledScenario as = assembleScenario(spec);
  fault::FaultInjector idle(*as.sim, FaultPlan{});
  if (emptyInjector) idle.attach();  // assembleScenario skips empty plans
  as.sim->begin();
  while (as.sim->now() < cycles) as.sim->stepCycle();
  snapshot::Writer w;
  as.sim->save(w);
  return w.payload();
}

TEST(FaultGolden, EmptyPlanInjectorIsByteInvisible) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 0.5, schemeRaRair(), 17911839290282890590ull);
  const auto plain = serializedAfter(spec, 3000, false);
  const auto armed = serializedAfter(spec, 3000, true);
  EXPECT_TRUE(plain == armed);
  const auto armedSharded =
      serializedAfter(ScenarioSpec(spec).withThreads(4), 3000, true);
  EXPECT_TRUE(plain == armedSharded);
}

// ---- The oracle holds through every fault kind -----------------------------

/// Runs `spec` (manually assembled) to completion under a collecting
/// oracle that has been made fault-aware, and returns (report, result).
struct AuditedRun {
  check::OracleReport report;
  RunResult run;
  std::uint64_t droppedByFault = 0;
  fault::FaultStats stats;
};

AuditedRun runAudited(const ScenarioSpec& spec) {
  AssembledScenario as = assembleScenario(spec);
  check::OracleOptions oo;
  oo.period = 1;
  oo.deadlockPeriod = 64;
  oo.maxInNetworkAge = 20'000;
  oo.failFast = false;
  check::NetworkOracle oracle(as.sim->network(), as.sim->ledger(), oo);
  if (as.injector) oracle.attachFaults(as.injector.get());
  as.sim->observers().attach(&oracle);
  AuditedRun out;
  out.run = as.sim->run();
  oracle.finish(out.run.cyclesRun);
  out.report = oracle.report();
  out.droppedByFault = as.sim->droppedByFault();
  if (as.injector) out.stats = as.injector->stats();
  return out;
}

ScenarioSpec smallSpec(const Mesh& mesh, const RegionMap& regions,
                       const SchemeSpec& scheme) {
  return fig09Spec(mesh, regions, 0.5, scheme, 0xFA11ull);
}

class FaultKindOracle
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(FaultKindOracle, NoViolationsAndAllDropsAccounted) {
  const std::string kind = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  Mesh mesh(4, 4);
  const RegionMap regions = RegionMap::halves(mesh);

  FaultPlan plan;
  const NodeId mid = mesh.nodeAt({1, 1});
  if (kind == "outage") {
    plan.linkOutage(2'500, mid, Dir::East, 400);
  } else if (kind == "permanent") {
    plan.add({2'500, FaultKind::LinkDown, mid, Dir::East, 0, 1});
  } else if (kind == "stall") {
    plan.portStall(2'500, mid, Dir::East, 300);
  } else if (kind == "creditloss") {
    plan.creditLoss(2'500, mid, Dir::East, 1, 1);  // adaptive VC
  } else if (kind == "reset") {
    plan.softReset(2'500, mid, 300);
  } else {
    ASSERT_EQ(kind, "freeze");
    plan.injectFreeze(2'500, mid, 300);
  }

  for (const auto& scheme : {schemeRoRr(), schemeRaRair()}) {
    const AuditedRun r = runAudited(smallSpec(mesh, regions, scheme)
                                        .withFaults(plan)
                                        .withThreads(threads));
    EXPECT_TRUE(r.report.ok()) << scheme.label << ": "
                               << (r.report.violations.empty()
                                       ? "?"
                                       : r.report.violations[0].what);
    EXPECT_EQ(r.run.termination, Termination::Drained) << scheme.label;
    // Flit/packet conservation itself is the oracle's census (checked
    // above); here only the weaker arithmetic sanity holds, because
    // sources keep creating packets during the drain window.
    EXPECT_LE(r.run.packetsDelivered + r.droppedByFault,
              r.run.packetsCreated)
        << scheme.label;
    EXPECT_GT(r.stats.eventsApplied, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FaultKindOracle,
    ::testing::Combine(::testing::Values("outage", "permanent", "stall",
                                         "creditloss", "freeze", "reset"),
                       ::testing::Values(1, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FaultOracle, Fig09CellCleanUnderOutageAtEveryThreadCount) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  FaultPlan plan;
  plan.linkOutage(3'000, mesh.nodeAt({3, 3}), Dir::East, 2'000);
  plan.portStall(5'000, mesh.nodeAt({5, 2}), Dir::South, 500);

  const ScenarioSpec base =
      fig09Spec(mesh, regions, 0.0, schemeRoRr(), 10451216379200822465ull)
          .withFaults(plan);
  const AuditedRun ref = runAudited(base);
  EXPECT_TRUE(ref.report.ok())
      << (ref.report.violations.empty() ? "?"
                                        : ref.report.violations[0].what);
  EXPECT_EQ(ref.run.termination, Termination::Drained);
  EXPECT_LE(ref.run.packetsDelivered + ref.droppedByFault,
            ref.run.packetsCreated);
  // The outage lasted exactly 2000 cycles, applied as one down/up pair.
  EXPECT_EQ(ref.stats.eventsApplied, 4u);
  EXPECT_EQ(ref.stats.degradedCycles, 2'000u);
  EXPECT_EQ(ref.stats.recoveryCycles, 2'000u);
  EXPECT_EQ(ref.stats.unreachablePairs, 0u);  // 8x8 stays connected

  // Byte-identical trajectory on the sharded engine.
  const AuditedRun t4 = runAudited(ScenarioSpec(base).withThreads(4));
  EXPECT_TRUE(t4.report.ok());
  EXPECT_EQ(t4.run.cyclesRun, ref.run.cyclesRun);
  EXPECT_EQ(t4.run.packetsCreated, ref.run.packetsCreated);
  EXPECT_EQ(t4.run.packetsDelivered, ref.run.packetsDelivered);
  EXPECT_EQ(t4.droppedByFault, ref.droppedByFault);
  EXPECT_EQ(t4.stats, ref.stats);
}

TEST(FaultOracle, SoftResetOnRetxLayerIsCleanAndThreadInvariant) {
  // Under retx a reset drops only in-router state: neighbors' replay
  // buffers hold in-flight flits and redeliver them after recovery, and
  // committed streams stall against exhausted credits instead of dying.
  Mesh mesh(4, 4);
  const RegionMap regions = RegionMap::halves(mesh);
  FaultPlan plan;
  plan.softReset(2'500, mesh.nodeAt({1, 1}), 400);

  const ScenarioSpec base = smallSpec(mesh, regions, schemeRaRair())
                                .withFaults(plan)
                                .withLinkLayer(LinkLayerKind::Retx);
  const AuditedRun ref = runAudited(base);
  EXPECT_TRUE(ref.report.ok())
      << (ref.report.violations.empty() ? "?"
                                        : ref.report.violations[0].what);
  EXPECT_EQ(ref.run.termination, Termination::Drained);
  EXPECT_EQ(ref.stats.softResets, 1u);
  EXPECT_EQ(ref.stats.degradedCycles, 400u);
  // Receiver-down drops count as corrupted arrivals; the post-recovery
  // go-back replays them.
  EXPECT_GT(ref.stats.corruptedFlits, 0u);
  EXPECT_GT(ref.stats.retransmittedFlits, 0u);
  EXPECT_LE(ref.run.packetsDelivered + ref.droppedByFault,
            ref.run.packetsCreated);

  // Identical drop/retransmit totals on the sharded engine.
  for (const int threads : {1, 4}) {
    const AuditedRun t = runAudited(ScenarioSpec(base).withThreads(threads));
    EXPECT_TRUE(t.report.ok()) << "threads=" << threads;
    EXPECT_EQ(t.run.cyclesRun, ref.run.cyclesRun) << threads;
    EXPECT_EQ(t.run.packetsDelivered, ref.run.packetsDelivered) << threads;
    EXPECT_EQ(t.droppedByFault, ref.droppedByFault) << threads;
    EXPECT_EQ(t.stats, ref.stats) << "threads=" << threads;
  }
}

// ---- Drop accounting under partition ---------------------------------------

TEST(FaultDrops, IsolatedCornerDrainsThroughTheAccountedBucket) {
  Mesh mesh(4, 4);
  const RegionMap regions = RegionMap::halves(mesh);
  // Permanently cut every link of corner (0,0) mid-measurement.
  FaultPlan plan;
  const NodeId corner = mesh.nodeAt({0, 0});
  for (int d = 1; d < kNumPorts; ++d) {
    if (mesh.neighbor(corner, static_cast<Dir>(d)))
      plan.add({4'000, FaultKind::LinkDown, corner, static_cast<Dir>(d), 0,
                1});
  }

  const ScenarioSpec spec =
      smallSpec(mesh, regions, schemeRaRair()).withFaults(plan);
  const AuditedRun r = runAudited(spec);
  EXPECT_TRUE(r.report.ok())
      << (r.report.violations.empty() ? "?" : r.report.violations[0].what);
  EXPECT_EQ(r.run.termination, Termination::Drained);
  EXPECT_GT(r.droppedByFault, 0u);
  EXPECT_LE(r.run.packetsDelivered + r.droppedByFault,
            r.run.packetsCreated);
  // Ordered pairs across the {corner} | {15 nodes} split.
  EXPECT_EQ(r.stats.unreachablePairs, 30u);
  EXPECT_GT(r.stats.degradedCycles, 0u);
  EXPECT_EQ(r.stats.recoveryCycles, 0u);  // never restored
  EXPECT_EQ(r.stats.droppedPackets, r.droppedByFault);
}

// ---- Mid-outage snapshot stability -----------------------------------------

ScenarioSpec midOutageSpec(const Mesh& mesh, const RegionMap& regions) {
  // Down at 2000, still down at the 3000-cycle observation point, up at
  // 5000 — the serialized state carries a live outage plus pending events.
  FaultPlan plan;
  plan.linkOutage(2'000, mesh.nodeAt({3, 3}), Dir::East, 3'000);
  plan.portStall(2'600, mesh.nodeAt({1, 5}), Dir::North, 1'000);
  plan.creditLoss(2'200, mesh.nodeAt({5, 5}), Dir::West, 1, 1);
  return fig09Spec(mesh, regions, 0.5, schemeRaRair(),
                   17911839290282890590ull)
      .withFaults(plan);
}

// The reconfiguration-engine contract (DESIGN.md §5e): the incremental
// repair path must be byte-invisible — campaign records and snapshot
// bytes identical to a from-scratch rebuild after every event — on
// fault-free and faulted cells alike, at every shard-thread count.
TEST(FaultGolden, IncrementalRecomputeIsByteInvisible) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec faultFree =
      fig09Spec(mesh, regions, 0.5, schemeRaRair(), 17911839290282890590ull);
  const ScenarioSpec faulted = midOutageSpec(mesh, regions);

  for (const ScenarioSpec* spec : {&faultFree, &faulted}) {
    DegradedTopology::forceFullRebuildForTest = true;
    const auto full = serializedAfter(*spec, 3'000, false);
    DegradedTopology::forceFullRebuildForTest = false;
    const auto incremental = serializedAfter(*spec, 3'000, false);
    EXPECT_TRUE(full == incremental);
    for (const int threads : {1, 2, 4}) {
      const auto sharded = serializedAfter(
          ScenarioSpec(*spec).withThreads(threads), 3'000, false);
      EXPECT_TRUE(full == sharded) << "threads=" << threads;
    }
  }
}

TEST(FaultSnapshot, MidOutageStateIsByteStableAcrossShardThreadCounts) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec = midOutageSpec(mesh, regions);
  const auto legacy = serializedAfter(spec, 3'000, false);
  for (const int threads : {1, 2, 4}) {
    const auto sharded =
        serializedAfter(ScenarioSpec(spec).withThreads(threads), 3'000,
                        false);
    EXPECT_TRUE(legacy == sharded) << "threads=" << threads;
  }
}

TEST(FaultSnapshot, MidOutageCheckpointResumeMatchesStraightRun) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec = midOutageSpec(mesh, regions);

  const ScenarioResult straight = runScenario(spec);
  ASSERT_TRUE(straight.faultStats.has_value());

  const std::string path = ::testing::TempDir() + "rair_fault_mid.snap";
  snapshot::removeFile(path);
  // 3000 is inside the outage: the checkpoint carries dead links, the
  // lost-credit ledger and a pending stall release.
  ASSERT_TRUE(writeScenarioCheckpoint(spec, 3'000, path));

  // Resume on a different thread count than the straight run.
  const ScenarioResult resumed =
      runScenario(ScenarioSpec(spec).withCheckpoint(path).withThreads(4));
  EXPECT_EQ(resumed.resumedFromCycle, 3'000u);
  EXPECT_EQ(resumed.run.cyclesRun, straight.run.cyclesRun);
  EXPECT_EQ(resumed.run.packetsCreated, straight.run.packetsCreated);
  EXPECT_EQ(resumed.run.packetsDelivered, straight.run.packetsDelivered);
  EXPECT_EQ(resumed.meanApl, straight.meanApl);
  EXPECT_EQ(resumed.appApl, straight.appApl);
  ASSERT_TRUE(resumed.faultStats.has_value());
  EXPECT_EQ(*resumed.faultStats, *straight.faultStats);
  snapshot::removeFile(path);
}

ScenarioSpec midResetSpec(const Mesh& mesh, const RegionMap& regions) {
  // Reset at 2000, still down at the 3000-cycle observation point,
  // recovered at 5000 — the serialized state carries the in-reset node,
  // receiver-down link flags, tombstoned replay entries and the pending
  // Recover event.
  FaultPlan plan;
  plan.softReset(2'000, mesh.nodeAt({3, 3}), 3'000);
  plan.corruptFlits(2'600, mesh.nodeAt({1, 5}), Dir::North, 4);
  return fig09Spec(mesh, regions, 0.5, schemeRaRair(),
                   17911839290282890590ull)
      .withFaults(plan)
      .withLinkLayer(LinkLayerKind::Retx);
}

TEST(FaultSnapshot, MidResetStateIsByteStableAcrossShardThreadCounts) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec = midResetSpec(mesh, regions);
  const auto legacy = serializedAfter(spec, 3'000, false);
  for (const int threads : {1, 2, 4}) {
    const auto sharded =
        serializedAfter(ScenarioSpec(spec).withThreads(threads), 3'000,
                        false);
    EXPECT_TRUE(legacy == sharded) << "threads=" << threads;
  }
}

TEST(FaultSnapshot, MidResetCheckpointResumeMatchesStraightRun) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec = midResetSpec(mesh, regions);

  const ScenarioResult straight = runScenario(spec);
  ASSERT_TRUE(straight.faultStats.has_value());
  EXPECT_EQ(straight.faultStats->softResets, 1u);

  const std::string path = ::testing::TempDir() + "rair_fault_reset.snap";
  snapshot::removeFile(path);
  ASSERT_TRUE(writeScenarioCheckpoint(spec, 3'000, path));

  const ScenarioResult resumed =
      runScenario(ScenarioSpec(spec).withCheckpoint(path).withThreads(4));
  EXPECT_EQ(resumed.resumedFromCycle, 3'000u);
  EXPECT_EQ(resumed.run.cyclesRun, straight.run.cyclesRun);
  EXPECT_EQ(resumed.run.packetsCreated, straight.run.packetsCreated);
  EXPECT_EQ(resumed.run.packetsDelivered, straight.run.packetsDelivered);
  EXPECT_EQ(resumed.meanApl, straight.meanApl);
  ASSERT_TRUE(resumed.faultStats.has_value());
  EXPECT_EQ(*resumed.faultStats, *straight.faultStats);
  snapshot::removeFile(path);
}

TEST(FaultSnapshot, PlanEntersTheScenarioKey) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec plain =
      fig09Spec(mesh, regions, 0.5, schemeRaRair(), 1);
  FaultPlan plan;
  plan.linkOutage(2'000, 5, Dir::East, 100);
  const ScenarioSpec faulted = ScenarioSpec(plain).withFaults(plan);
  EXPECT_NE(snapshot::warmStateKey(plain), snapshot::warmStateKey(faulted));
  EXPECT_NE(snapshot::fullStateKey(plain), snapshot::fullStateKey(faulted));
}

// ---- Fuzz harness fault mode ----------------------------------------------

TEST(FaultFuzz, GeneratedPlansAreValidAndDrainClean) {
  check::FuzzOptions opts;
  opts.scenarios = 8;
  opts.faultPlan = true;
  opts.seed = 42;
  const check::FuzzSummary sum = check::runFuzz(opts);
  EXPECT_EQ(sum.failures, 0);
  EXPECT_EQ(sum.casesRun, 16);  // 8 cases x 2 schemes
}

TEST(FaultFuzz, PlanGenerationIsDeterministic) {
  const check::FuzzCase c = check::generateCase(7);
  const FaultPlan a = check::generateFaultPlan(7, c);
  const FaultPlan b = check::generateFaultPlan(7, c);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace rair
