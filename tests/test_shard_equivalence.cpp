// Sharded-engine equivalence: the deterministic sharded cycle engine
// (sim/shard.h) must reproduce the single-threaded simulator bit-for-bit
// at every thread count. The golden constants are the same recorded
// seed-implementation numbers test_equivalence.cpp pins — a sharded run
// is held to the exact same trajectory, not merely to a same-binary
// reference. Suite names all start with "Shard" so CI can select this
// subset for the ThreadSanitizer job with `ctest -R Shard`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/runner.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "snapshot/bisect.h"
#include "snapshot/buffer.h"
#include "snapshot/checkpoint.h"
#include "sim/simulator.h"

namespace rair {
namespace {

/// Calibrated half-mesh saturation of the seed fig09 campaign (same
/// constant as test_equivalence.cpp).
constexpr double kHalfSat = 0.38195418397913583;

/// Fast-window fig12 scenario-a loads (same as test_equivalence.cpp).
constexpr double kFig12RatesA[4] = {0.070229165341078717, 0.05664346945403196,
                                    0.05664346945403196, 0.5679854733312848};

ScenarioSpec fig09Spec(const Mesh& mesh, const RegionMap& regions, double p,
                       const SchemeSpec& scheme, std::uint64_t seed) {
  return ScenarioSpec(mesh, regions)
      .withScheme(scheme)
      .withApps(scenarios::twoAppInterRegion(
          p, scenarios::kLowLoadFraction * kHalfSat,
          scenarios::kHighLoadFraction * kHalfSat))
      .withSeed(seed)
      .withFastWindows();
}

ScenarioSpec fig12SpecA(const Mesh& mesh, const RegionMap& regions,
                        const SchemeSpec& scheme, std::uint64_t seed) {
  auto apps = scenarios::fourAppLowTowardHigh(0, 0);
  for (std::size_t a = 0; a < 4; ++a) apps[a].injectionRate = kFig12RatesA[a];
  return ScenarioSpec(mesh, regions)
      .withScheme(scheme)
      .withApps(std::move(apps))
      .withSeed(seed)
      .withFastWindows();
}

void expectFig09Golden(const ScenarioResult& r) {
  ASSERT_EQ(r.appApl.size(), 2u);
  EXPECT_EQ(r.appApl[0], 23.313518113299295);
  EXPECT_EQ(r.appApl[1], 29.36873761982563);
  EXPECT_EQ(r.meanApl, 28.725103050821176);
  EXPECT_EQ(r.run.cyclesRun, 22062u);
  EXPECT_EQ(r.run.packetsCreated, 85324u);
  EXPECT_EQ(r.run.packetsDelivered, 85224u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

void expectFig12Golden(const ScenarioResult& r) {
  ASSERT_EQ(r.appApl.size(), 4u);
  EXPECT_EQ(r.appApl[0], 24.793486894360605);
  EXPECT_EQ(r.appApl[1], 21.615497076023392);
  EXPECT_EQ(r.appApl[2], 21.577321281840593);
  EXPECT_EQ(r.appApl[3], 34.977863377860075);
  EXPECT_EQ(r.meanApl, 31.979298232502522);
  EXPECT_EQ(r.run.cyclesRun, 22088u);
  EXPECT_EQ(r.run.packetsCreated, 88556u);
  EXPECT_EQ(r.run.packetsDelivered, 88428u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

// ---- Golden numbers at every thread count ---------------------------------

class ShardGolden : public ::testing::TestWithParam<int> {};

TEST_P(ShardGolden, Fig09RoRrP0MatchesSeedImplementation) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const auto r = runScenario(
      fig09Spec(mesh, regions, 0.0, schemeRoRr(), 10451216379200822465ull)
          .withThreads(GetParam()));
  expectFig09Golden(r);
}

TEST_P(ShardGolden, Fig12RaRairScenarioAMatchesRecordedGolden) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::quadrants(mesh);
  const auto r = runScenario(
      fig12SpecA(mesh, regions, schemeRaRair(), 16184226688143867045ull)
          .withThreads(GetParam()));
  expectFig12Golden(r);
}

TEST_P(ShardGolden, Fig14RaRairMatchesRecordedGolden) {
  // Fast-window calibrated fig14 loads and the cell-3 (RA_RAIR) seed of
  // the full fig14 campaign (same constants as test_equivalence.cpp).
  constexpr double kFig14Rates[6] = {0.078179636889125367, 0.62591033746705327,
                                     0.14999999999999999,  0.15635927377825073,
                                     0.23453891066737606,  0.62591033746705327};
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::sixRegions(mesh);
  const std::vector<double> rates(kFig14Rates, kFig14Rates + 6);
  const auto apps = scenarios::sixAppMixed(PatternKind::UniformRandom, rates);
  const auto r = runScenario(ScenarioSpec(mesh, regions)
                                 .withScheme(schemeRaRair())
                                 .withApps(apps)
                                 .withSeed(8196980753821780235ull)
                                 .withFastWindows()
                                 .withThreads(GetParam()));
  ASSERT_EQ(r.appApl.size(), 6u);
  EXPECT_EQ(r.appApl[0], 21.290786948176585);
  EXPECT_EQ(r.appApl[1], 32.404580000000003);
  EXPECT_EQ(r.appApl[2], 21.113610657282894);
  EXPECT_EQ(r.appApl[3], 21.894479216819128);
  EXPECT_EQ(r.appApl[4], 22.057012113055183);
  EXPECT_EQ(r.appApl[5], 32.967497127653139);
  EXPECT_EQ(r.meanApl, 28.789471633416458);
  EXPECT_EQ(r.run.cyclesRun, 22051u);
  EXPECT_EQ(r.run.packetsCreated, 141596u);
  EXPECT_EQ(r.run.packetsDelivered, 141429u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

INSTANTIATE_TEST_SUITE_P(Threads, ShardGolden, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---- Serialized-state byte equality ---------------------------------------

std::vector<std::uint8_t> serializedAfter(const ScenarioSpec& spec,
                                          Cycle cycles) {
  AssembledScenario as = assembleScenario(spec);
  as.sim->begin();
  while (as.sim->now() < cycles) as.sim->stepCycle();
  snapshot::Writer w;
  as.sim->save(w);
  return w.payload();
}

TEST(ShardState, SerializedStateMatchesLegacyByteForByte8x8) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 0.5, schemeRaRair(), 17911839290282890590ull);
  const auto legacy = serializedAfter(spec, 3000);
  for (const int threads : {1, 2, 4, 8}) {
    const auto sharded =
        serializedAfter(ScenarioSpec(spec).withThreads(threads), 3000);
    EXPECT_TRUE(legacy == sharded) << "threads=" << threads << ": "
        << snapshot::firstDifferingSection(legacy, sharded);
  }
}

TEST(ShardState, SerializedStateMatchesLegacyByteForByte16x16) {
  // 16x16: node counts that do not divide evenly across shards (256 / 3,
  // 256 / 7) exercise the remainder-distribution partitioning.
  Mesh mesh(16, 16);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 0.25, schemeRaRair(), 8196980753821780235ull);
  const auto legacy = serializedAfter(spec, 1500);
  for (const int threads : {3, 7, 8}) {
    const auto sharded =
        serializedAfter(ScenarioSpec(spec).withThreads(threads), 1500);
    EXPECT_TRUE(legacy == sharded) << "threads=" << threads << ": "
        << snapshot::firstDifferingSection(legacy, sharded);
  }
}

// ---- Delivery hooks under the sharded engine ------------------------------

/// Records the exact onDelivery callback sequence. The staged NIC replay
/// (shard.h) promises observer callback order identical to the
/// single-threaded engine, which this pins directly — the golden tests
/// above only see the aggregated statistics.
struct DeliveryRecorder final : SimObserver {
  std::vector<std::pair<PacketId, Cycle>> seq;
  Cycle now = 0;
  void onCycleBegin(Cycle n) override { now = n; }
  void onDelivery(const Packet& p) override { seq.emplace_back(p.id, now); }
};

TEST(ShardObserver, DeliveryHookSequenceIdenticalAcrossThreadCounts) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 0.5, schemeRaRair(), 17911839290282890590ull);

  auto sequence = [&](int threads) {
    AssembledScenario as =
        assembleScenario(ScenarioSpec(spec).withThreads(threads));
    DeliveryRecorder rec;
    as.sim->observers().attach(&rec);
    as.sim->begin();
    while (as.sim->now() < 3000) as.sim->stepCycle();
    return rec.seq;
  };

  const auto legacy = sequence(0);
  ASSERT_FALSE(legacy.empty());
  for (const int threads : {1, 2, 8})
    EXPECT_TRUE(legacy == sequence(threads)) << "threads=" << threads;
}

TEST(ShardFallback, DeliveryHookRevertsToSingleThreadedStepping) {
  // setDeliveryHook on a sharded simulator drops the shard engine (hooks
  // create packets mid-delivery, which staged replay cannot reproduce in
  // event order) — the run must silently fall back and still hit the
  // golden trajectory.
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 0.0, schemeRoRr(), 10451216379200822465ull);

  auto runWithHook = [&](int threads) {
    AssembledScenario as =
        assembleScenario(ScenarioSpec(spec).withThreads(threads));
    std::uint64_t hookCalls = 0;
    as.sim->setDeliveryHook(
        [&hookCalls](const Packet&, InjectionSink&) { ++hookCalls; });
    const RunResult r = as.sim->run();
    return std::pair<RunResult, std::uint64_t>(r, hookCalls);
  };

  const auto [legacy, legacyCalls] = runWithHook(0);
  EXPECT_EQ(legacy.packetsDelivered, 85224u);
  const auto [sharded, shardedCalls] = runWithHook(8);
  EXPECT_EQ(sharded.termination, legacy.termination);
  EXPECT_EQ(sharded.cyclesRun, legacy.cyclesRun);
  EXPECT_EQ(sharded.packetsCreated, legacy.packetsCreated);
  EXPECT_EQ(sharded.packetsDelivered, legacy.packetsDelivered);
  EXPECT_EQ(shardedCalls, legacyCalls);
}

// ---- Oversubscribed fallback: more shards than nodes ----------------------

TEST(ShardFallback, MoreShardsThanNodesMatchesLegacyByteForByte) {
  // 4x4 mesh, 16 nodes, 24 shard threads: the remainder distribution
  // hands shards 16..23 empty node ranges, which must degrade to no-op
  // workers rather than skew the partition.
  Mesh mesh(4, 4);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 0.5, schemeRaRair(), 8042142155559163816ull);
  const auto legacy = serializedAfter(spec, 1000);
  const auto sharded =
      serializedAfter(ScenarioSpec(spec).withThreads(24), 1000);
  EXPECT_TRUE(legacy == sharded)
      << snapshot::firstDifferingSection(legacy, sharded);
}

// ---- Campaign records across --shard-threads x --jobs ---------------------

std::vector<std::string> canonicalLines(
    const std::vector<campaign::CellRecord>& recs) {
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const auto& r : recs)
    lines.push_back(r.toJsonLine(/*includeVolatile=*/false));
  return lines;
}

TEST(ShardCampaign, RecordsIndependentOfShardThreadsAndJobs) {
  // The first two cells of the fig09 RO_RR row (p = 0, 25): same
  // campaignSeed and cell order as the full fig09 campaign.
  campaign::CampaignSpec spec;
  spec.name = "fig09shard";
  spec.campaignSeed = 1;
  for (const int p : {0, 25}) {
    campaign::CampaignCell cell;
    cell.key = "RO_RR/p" + std::to_string(p);
    cell.labels = {{"scheme", "RO_RR"}, {"p", std::to_string(p)}};
    cell.run = [p](const campaign::CellContext& ctx) {
      Mesh mesh(8, 8);
      const RegionMap regions = RegionMap::halves(mesh);
      ScenarioSpec s =
          fig09Spec(mesh, regions, p / 100.0, schemeRoRr(), ctx.seed);
      return runScenario(ctx.applyTo(s));
    };
    spec.add(std::move(cell));
  }

  campaign::RunnerOptions base;
  base.jobs = 1;
  const auto reference = campaign::runCampaign(spec, base);
  ASSERT_EQ(reference.records.size(), 2u);
  EXPECT_EQ(reference.records[0].seed, 10451216379200822465ull);
  ASSERT_EQ(reference.records[0].appApl.size(), 2u);
  EXPECT_EQ(reference.records[0].appApl[0], 23.313518113299295);
  EXPECT_EQ(reference.records[0].cyclesRun, 22062u);

  const struct {
    int jobs, shardThreads;
  } grid[] = {{1, 2}, {2, 1}, {4, 8}};
  for (const auto& g : grid) {
    campaign::RunnerOptions opts;
    opts.jobs = g.jobs;
    opts.shardThreads = g.shardThreads;
    const auto run = campaign::runCampaign(spec, opts);
    EXPECT_EQ(canonicalLines(run.records), canonicalLines(reference.records))
        << "jobs=" << g.jobs << " shardThreads=" << g.shardThreads;
  }
}

// ---- Thread-count-agnostic checkpoints ------------------------------------

// Fast windows: warmup 2000, measurement ends at 22000; cycle 12000 is
// mid-window with measured packets in flight.
constexpr Cycle kMidWindow = 12'000;

TEST(ShardContinuation, CheckpointAt8ThreadsResumesLegacyToGolden) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 0.0, schemeRoRr(), 10451216379200822465ull);

  const std::string path = ::testing::TempDir() + "rair_shard_cont_a.snap";
  snapshot::removeFile(path);
  ASSERT_TRUE(writeScenarioCheckpoint(ScenarioSpec(spec).withThreads(8),
                                      kMidWindow, path));

  // Resume on the classic single-threaded engine (shardThreads = 0).
  const ScenarioResult r = runScenario(ScenarioSpec(spec).withCheckpoint(path));
  EXPECT_EQ(r.resumedFromCycle, kMidWindow);
  expectFig09Golden(r);
}

TEST(ShardContinuation, LegacyCheckpointResumesAt4ThreadsToGolden) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::quadrants(mesh);
  const ScenarioSpec spec =
      fig12SpecA(mesh, regions, schemeRaRair(), 16184226688143867045ull);

  const std::string path = ::testing::TempDir() + "rair_shard_cont_b.snap";
  snapshot::removeFile(path);
  ASSERT_TRUE(writeScenarioCheckpoint(spec, kMidWindow, path));

  const ScenarioResult r = runScenario(
      ScenarioSpec(spec).withCheckpoint(path).withThreads(4));
  EXPECT_EQ(r.resumedFromCycle, kMidWindow);
  expectFig12Golden(r);
}

// ---- Cross-engine divergence bisection ------------------------------------

TEST(ShardBisect, SaveShardedRestoreLegacyNeverDiverges) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 1.0, schemeRaRair(), 8042142155559163816ull);

  const auto res = snapshot::bisectDivergence(
      ScenarioSpec(spec).withThreads(8), spec, /*snapAt=*/200,
      /*horizon=*/800);
  EXPECT_FALSE(res.diverged)
      << "cycle " << res.firstDivergentCycle << " section " << res.section;
}

TEST(ShardBisect, SaveLegacyRestoreShardedNeverDiverges) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec =
      fig09Spec(mesh, regions, 1.0, schemeRaRair(), 8042142155559163816ull);

  const auto res = snapshot::bisectDivergence(
      spec, ScenarioSpec(spec).withThreads(3), /*snapAt=*/200,
      /*horizon=*/800);
  EXPECT_FALSE(res.diverged)
      << "cycle " << res.firstDivergentCycle << " section " << res.section;
}

}  // namespace
}  // namespace rair
