#include "sim/scenario.h"

#include <gtest/gtest.h>

#include "scenarios/paper_scenarios.h"

namespace rair {
namespace {

SimConfig shortCfg() {
  SimConfig cfg;
  cfg.warmupCycles = 500;
  cfg.measureCycles = 3'000;
  cfg.drainLimit = 60'000;
  return cfg;
}

TEST(Scenario, RunsTwoAppWorkload) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const auto apps = scenarios::twoAppInterRegion(0.5, 0.05, 0.25);
  const auto res = runScenario(ScenarioSpec(m, rm)
                                   .withConfig(shortCfg())
                                   .withScheme(schemeRoRr())
                                   .withApps(apps));
  ASSERT_EQ(res.appApl.size(), 2u);
  EXPECT_GT(res.appApl[0], 0.0);
  EXPECT_GT(res.appApl[1], 0.0);
  EXPECT_GT(res.meanApl, 0.0);
  EXPECT_TRUE(res.run.fullyDrained);
}

TEST(Scenario, ReductionMath) {
  ScenarioResult base, mine;
  base.appApl = {100.0, 50.0};
  base.meanApl = 80.0;
  mine.appApl = {90.0, 55.0};
  mine.meanApl = 72.0;
  EXPECT_NEAR(mine.reductionVs(base, 0), 0.10, 1e-12);
  EXPECT_NEAR(mine.reductionVs(base, 1), -0.10, 1e-12);
  EXPECT_NEAR(mine.meanReductionVs(base), 0.10, 1e-12);
}

TEST(Scenario, ReductionAgainstEmptyBaselineIsZeroNotNan) {
  // A baseline cell that hit a tripwire before measuring anything reports
  // zero APL; reductions against it must degrade to 0, not divide by zero.
  ScenarioResult base, mine;
  base.appApl = {0.0, 50.0};
  base.meanApl = 0.0;
  mine.appApl = {90.0, 55.0};
  mine.meanApl = 72.0;
  EXPECT_EQ(mine.reductionVs(base, 0), 0.0);
  EXPECT_NEAR(mine.reductionVs(base, 1), -0.10, 1e-12);
  EXPECT_EQ(mine.meanReductionVs(base), 0.0);
}

TEST(Scenario, AdversarialOptionAddsApp) {
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  std::vector<AppTrafficSpec> apps(4);
  for (AppId a = 0; a < 4; ++a) {
    apps[static_cast<size_t>(a)].app = a;
    apps[static_cast<size_t>(a)].injectionRate = 0.05;
  }
  const auto res = runScenario(ScenarioSpec(m, rm)
                                   .withConfig(shortCfg())
                                   .withScheme(schemeRoRr())
                                   .withApps(apps)
                                   .withAdversarialRate(0.2));
  ASSERT_EQ(res.appApl.size(), 5u);  // 4 apps + attacker
  EXPECT_GT(res.run.stats.app(4).packetsCreated, 100u);
}

TEST(Scenario, TwoAppWorkloadShape) {
  const auto apps = scenarios::twoAppInterRegion(0.3, 0.1, 0.5);
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_DOUBLE_EQ(apps[0].intraFraction, 0.7);
  EXPECT_DOUBLE_EQ(apps[0].interFraction, 0.3);
  EXPECT_EQ(apps[0].interTargetApp, 1);
  EXPECT_DOUBLE_EQ(apps[1].intraFraction, 1.0);
  EXPECT_DOUBLE_EQ(apps[1].injectionRate, 0.5);
}

TEST(Scenario, FourAppWorkloadShapes) {
  const auto a = scenarios::fourAppLowTowardHigh(0.05, 0.4);
  ASSERT_EQ(a.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a[static_cast<size_t>(i)].interFraction, 0.3);
    EXPECT_EQ(a[static_cast<size_t>(i)].interTargetApp, 3);
  }
  EXPECT_DOUBLE_EQ(a[3].intraFraction, 1.0);

  const auto b = scenarios::fourAppHighTowardLow(0.05, 0.4);
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(b[static_cast<size_t>(i)].intraFraction, 1.0);
  EXPECT_DOUBLE_EQ(b[3].interFraction, 0.3);
  EXPECT_EQ(b[3].interTargetApp, kNoApp);
}

TEST(Scenario, SixAppWorkloadShape) {
  const std::vector<double> rates = {0.02, 0.3, 0.03, 0.04, 0.06, 0.3};
  const auto apps = scenarios::sixAppMixed(PatternKind::Transpose, rates);
  ASSERT_EQ(apps.size(), 6u);
  for (const auto& s : apps) {
    EXPECT_DOUBLE_EQ(s.intraFraction, 0.75);
    EXPECT_DOUBLE_EQ(s.interFraction, 0.20);
    EXPECT_DOUBLE_EQ(s.mcFraction, 0.05);
    EXPECT_EQ(s.interPattern, PatternKind::Transpose);
  }
  const auto fracs = scenarios::sixAppLoadFractions();
  ASSERT_EQ(fracs.size(), 6u);
  // Apps 1 and 5 are the high-load pair (paper's "90%", mapped to
  // kHighLoadFraction on this substrate); the rest are low-to-medium.
  EXPECT_DOUBLE_EQ(fracs[1], scenarios::kHighLoadFraction);
  EXPECT_DOUBLE_EQ(fracs[5], scenarios::kHighLoadFraction);
  EXPECT_LE(fracs[0], 0.3);
}

TEST(Scenario, SixAppScenarioRunsAllSchemes) {
  Mesh m(8, 8);
  const auto rm = RegionMap::sixRegions(m);
  const std::vector<double> rates = {0.02, 0.18, 0.03, 0.04, 0.05, 0.18};
  const auto apps = scenarios::sixAppMixed(PatternKind::UniformRandom, rates);
  for (const auto& scheme :
       {schemeRoRr(), schemeRoRank(), schemeRaDbar(), schemeRaRair()}) {
    const auto res = runScenario(ScenarioSpec(m, rm)
                                     .withConfig(shortCfg())
                                     .withScheme(scheme)
                                     .withApps(apps));
    EXPECT_TRUE(res.run.fullyDrained) << scheme.label;
    for (AppId a = 0; a < 6; ++a)
      EXPECT_GT(res.appApl[static_cast<size_t>(a)], 0.0) << scheme.label;
  }
}

TEST(Scenario, SameSeedSameResult) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const auto apps = scenarios::twoAppInterRegion(0.4, 0.05, 0.2);
  const ScenarioSpec spec = ScenarioSpec(m, rm)
                                .withConfig(shortCfg())
                                .withScheme(schemeRaRair())
                                .withApps(apps);
  const auto r1 = runScenario(spec);
  const auto r2 = runScenario(spec);
  EXPECT_DOUBLE_EQ(r1.appApl[0], r2.appApl[0]);
  EXPECT_DOUBLE_EQ(r1.appApl[1], r2.appApl[1]);
}

}  // namespace
}  // namespace rair
