// The dimensional metrics subsystem (src/metrics/): registry indexing,
// level parsing, recorder census vs. the simulator's own counts, summary
// rendering, and the oracle cross-validation that guards the census.
#include "metrics/registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/oracle.h"
#include "metrics/metrics.h"
#include "metrics/recorder.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "stats/report.h"

namespace rair {
namespace {

using metrics::CounterHandle;
using metrics::Dimension;
using metrics::MetricsLevel;
using metrics::MetricsRegistry;

TEST(MetricsRegistry, FlatIndexIsRowMajor) {
  MetricsRegistry reg;
  const CounterHandle h = reg.addCounter(
      {"grants", {Dimension::Router, Dimension::Locality}, {4, 2}});
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(reg.cells(h), 8u);
  // Row-major: router strides by the locality extent.
  EXPECT_EQ(reg.flatIndex(h, {0, 0}), 0u);
  EXPECT_EQ(reg.flatIndex(h, {0, 1}), 1u);
  EXPECT_EQ(reg.flatIndex(h, {1, 0}), 2u);
  EXPECT_EQ(reg.flatIndex(h, {3, 1}), 7u);
}

TEST(MetricsRegistry, CountersAccumulateAndTotal) {
  MetricsRegistry reg;
  const CounterHandle h =
      reg.addCounter({"delivered", {Dimension::App}, {3}});
  reg.incCounter(h, 0);
  reg.incCounter(h, 1, 10);
  reg.incCounter(h, 2, 100);
  reg.incCounter(h, 1, 5);
  EXPECT_EQ(reg.counterCell(h, 0), 1u);
  EXPECT_EQ(reg.counterCell(h, 1), 15u);
  EXPECT_EQ(reg.counterCell(h, 2), 100u);
  EXPECT_EQ(reg.counterTotal(h), 116u);
  const auto span = reg.counterCells(h);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[1], 15u);
}

TEST(MetricsRegistry, ScalarMetricHasOneCell) {
  MetricsRegistry reg;
  const CounterHandle h = reg.addCounter({"total", {}, {}});
  EXPECT_EQ(reg.cells(h), 1u);
  reg.incCounter(h, 0, 7);
  EXPECT_EQ(reg.counterTotal(h), 7u);
}

TEST(MetricsRegistry, MixedKindsKeepIndependentStorage) {
  MetricsRegistry reg;
  const auto c = reg.addCounter({"c", {Dimension::Port}, {5}});
  const auto g = reg.addGauge({"g", {Dimension::Port}, {5}});
  const auto hh = reg.addHistogram({"h", {Dimension::App}, {2}});
  reg.incCounter(c, 3);
  reg.gaugeCell(g, 3) = 2.5;
  reg.histogramCell(hh, 1).record(16.0);
  EXPECT_EQ(reg.counterCell(c, 3), 1u);
  EXPECT_DOUBLE_EQ(reg.gaugeCell(g, 3), 2.5);
  EXPECT_EQ(reg.histogramCell(hh, 1).count(), 1u);
  EXPECT_EQ(reg.histogramCell(hh, 0).count(), 0u);

  int seen = 0;
  reg.forEach([&](const MetricsRegistry::MetricView& v) {
    ++seen;
    if (v.spec->name == "c") EXPECT_EQ(v.counters.size(), 5u);
    if (v.spec->name == "g") EXPECT_EQ(v.gauges.size(), 5u);
    if (v.spec->name == "h") EXPECT_EQ(v.histograms.size(), 2u);
  });
  EXPECT_EQ(seen, 3);
}

TEST(MetricsLevelNames, RoundTrip) {
  for (MetricsLevel level :
       {MetricsLevel::Off, MetricsLevel::Counters, MetricsLevel::Summary,
        MetricsLevel::Series}) {
    const char* name = metrics::metricsLevelName(level);
    const auto back = metrics::metricsLevelFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, level) << name;
  }
  EXPECT_FALSE(metrics::metricsLevelFromName("verbose").has_value());
  EXPECT_FALSE(metrics::metricsLevelFromName("").has_value());
}

ScenarioResult runTwoAppCell(MetricsLevel level) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  SimConfig cfg;
  cfg.warmupCycles = 500;
  cfg.measureCycles = 3'000;
  cfg.drainLimit = 60'000;
  return runScenario(ScenarioSpec(m, rm)
                         .withConfig(cfg)
                         .withScheme(schemeRaRair())
                         .withApps(scenarios::twoAppInterRegion(0.5, 0.05,
                                                               0.2))
                         .withSeed(7)
                         .withMetricsLevel(level));
}

TEST(MetricsRecorder, CensusMatchesSimulatorCounts) {
  const auto res = runTwoAppCell(MetricsLevel::Counters);
  ASSERT_TRUE(res.metrics.has_value());
  const auto& s = *res.metrics;
  EXPECT_EQ(s.level, MetricsLevel::Counters);
  EXPECT_EQ(s.cyclesRun, res.run.cyclesRun);
  // The recorder keeps its own delivery census; it must agree exactly
  // with the simulator's.
  EXPECT_EQ(s.deliveredPackets, res.run.packetsDelivered);
  ASSERT_EQ(s.appDeliveredPackets.size(), 3u);  // 2 apps + overflow slot
  EXPECT_EQ(s.appDeliveredPackets[0] + s.appDeliveredPackets[1] +
                s.appDeliveredPackets[2],
            s.deliveredPackets);
  EXPECT_EQ(s.appDeliveredPackets[2], 0u);  // no flooder in this workload
  // Arbitration totals come from RouterCounters; a drained run moved
  // every delivered flit through at least one switch traversal.
  EXPECT_GE(s.saGrantsNative + s.saGrantsForeign, s.deliveredFlits);
  EXPECT_EQ(s.flitsTraversed, s.saGrantsNative + s.saGrantsForeign);
  EXPECT_GT(s.vaGrantsNative, 0u);
  EXPECT_GT(s.vaGrantsForeign, 0u);  // p=0.5: half of app 0 goes foreign
  EXPECT_GT(s.vaNativeShare(), 0.5);
  EXPECT_GT(s.dpaFlips, 0u);  // RA_RAIR runs DPA hysteresis
}

TEST(MetricsRecorder, OffLevelYieldsNoSummary) {
  const auto res = runTwoAppCell(MetricsLevel::Off);
  EXPECT_FALSE(res.metrics.has_value());
}

TEST(MetricsRecorder, LevelsDoNotPerturbResults) {
  // The recorder is a pure observer: every level must reproduce the
  // uninstrumented run bit-for-bit.
  const auto off = runTwoAppCell(MetricsLevel::Off);
  for (MetricsLevel level : {MetricsLevel::Counters, MetricsLevel::Summary,
                             MetricsLevel::Series}) {
    const auto on = runTwoAppCell(level);
    EXPECT_EQ(on.run.cyclesRun, off.run.cyclesRun);
    EXPECT_EQ(on.run.packetsDelivered, off.run.packetsDelivered);
    ASSERT_EQ(on.appApl.size(), off.appApl.size());
    for (std::size_t a = 0; a < off.appApl.size(); ++a)
      EXPECT_DOUBLE_EQ(on.appApl[a], off.appApl[a]);
    EXPECT_DOUBLE_EQ(on.meanApl, off.meanApl);
  }
}

TEST(MetricsReport, SummaryRendersKeyCounters) {
  const auto res = runTwoAppCell(MetricsLevel::Counters);
  ASSERT_TRUE(res.metrics.has_value());
  const std::string text = renderMetricsSummary(*res.metrics);
  EXPECT_NE(text.find("metrics summary"), std::string::npos);
  EXPECT_NE(text.find("VA_out grants"), std::string::npos);
  EXPECT_NE(text.find("SA grants"), std::string::npos);
  EXPECT_NE(text.find("escape allocations"), std::string::npos);
  EXPECT_NE(text.find("DPA priority flips"), std::string::npos);
  EXPECT_NE(text.find("delivered packets"), std::string::npos);
  // Two real apps, empty overflow slot hidden.
  EXPECT_NE(text.find("native share"), std::string::npos);
  EXPECT_EQ(text.find("other"), std::string::npos);
}

TEST(MetricsOracle, CrossValidationCatchesCorruptedCounter) {
  // Drive a small simulation with both the oracle and the recorder
  // attached, corrupt one registry cell, and require the cross-check to
  // report the mismatch (this is the mechanism behind
  // rair_fuzz --inject-fault's "counter" fault kind).
  Mesh mesh(4, 4);
  const auto regions = RegionMap::halves(mesh);
  SimConfig cfg;
  cfg.warmupCycles = 0;
  cfg.measureCycles = 1'000;
  cfg.drainLimit = 30'000;
  const SchemeSpec scheme = schemeRoRr();
  cfg.routing = scheme.routing;
  cfg.net.rairPartition = scheme.needsRairPartition();
  auto policy = makePolicy(scheme, {0.2, 0.2});
  Simulator sim(mesh, regions, cfg, *policy, 2);
  for (AppId a = 0; a < 2; ++a) {
    AppTrafficSpec app;
    app.app = a;
    app.injectionRate = 0.2;
    app.intraFraction = 1.0;
    sim.addSource(
        std::make_unique<RegionalizedSource>(mesh, regions, app, 7 + a));
  }

  check::OracleOptions oo;
  oo.period = 16;
  oo.failFast = false;
  check::NetworkOracle oracle(sim.network(), sim.ledger(), oo);
  sim.observers().attach(&oracle);
  metrics::MetricsOptions mo;  // Counters level
  metrics::MetricsRecorder recorder(sim.network(), regions, mo, 2,
                                    cfg.measureCycles);
  sim.observers().attach(&recorder);

  const RunResult run = sim.run();
  ASSERT_GT(run.packetsDelivered, 0u);
  recorder.finalize(run.cyclesRun);

  // Clean cross-check first: the independent censuses agree.
  oracle.crossValidateTotals(run.cyclesRun, recorder.deliveredPackets(),
                             recorder.deliveredFlits());
  EXPECT_TRUE(oracle.report().ok()) << oracle.report().summary();

  // Now corrupt one delivered-packets cell and re-validate.
  recorder.debugCorruptCounter(/*pick=*/1);
  oracle.crossValidateTotals(run.cyclesRun, recorder.deliveredPackets(),
                             recorder.deliveredFlits());
  ASSERT_FALSE(oracle.report().ok());
  EXPECT_NE(oracle.report().violations[0].what.find("census mismatch"),
            std::string::npos);
}

}  // namespace
}  // namespace rair
