// RoutingTables reconfiguration engine: property suite comparing the
// event-driven incremental repair (commit()) against a from-scratch full
// rebuild over randomized dead-link/soft-reset sequences — including
// component splits and merges — plus unreachable-pair cache behavior and
// the forceFullRebuildForTest escape hatch.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "routing/tables.h"
#include "topology/mesh.h"

namespace rair {
namespace {

/// Applies the dead set of `src` to a fresh table and fully rebuilds it.
RoutingTables fullRebuildTwin(const Mesh& mesh, const RoutingTables& src) {
  RoutingTables full(mesh);
  for (NodeId n = 0; n < mesh.numNodes(); ++n) {
    for (const Dir d : {Dir::East, Dir::South}) {
      if (mesh.neighbor(n, d) && !src.linkAlive(n, d))
        full.setLinkDead(n, d, true);
    }
  }
  full.recompute();
  return full;
}

/// The incremental contract: distances, escape directions and
/// connectivity bits are byte-equal to a full rebuild; component labels
/// only need to induce the same partition (incremental repair allocates
/// fresh labels, the full rebuild dense ones).
void expectMatchesFullRebuild(const Mesh& mesh, const RoutingTables& inc) {
  const RoutingTables full = fullRebuildTwin(mesh, inc);
  const NodeId n = mesh.numNodes();

  ASSERT_EQ(inc.numDeadLinks(), full.numDeadLinks());
  ASSERT_EQ(inc.active(), full.active());
  for (NodeId v = 0; v < n; ++v)
    ASSERT_EQ(inc.connectivityBits(v), full.connectivityBits(v)) << v;

  // Label bijection in both directions == identical partition.
  std::vector<std::int32_t> incToFull, fullToInc;
  for (NodeId v = 0; v < n; ++v) {
    const std::int32_t a = inc.componentOf(v);
    const std::int32_t b = full.componentOf(v);
    if (static_cast<std::size_t>(a) >= incToFull.size())
      incToFull.resize(static_cast<std::size_t>(a) + 1, -1);
    if (static_cast<std::size_t>(b) >= fullToInc.size())
      fullToInc.resize(static_cast<std::size_t>(b) + 1, -1);
    auto& fwd = incToFull[static_cast<std::size_t>(a)];
    auto& rev = fullToInc[static_cast<std::size_t>(b)];
    if (fwd == -1) fwd = b;
    if (rev == -1) rev = a;
    ASSERT_EQ(fwd, b) << "node " << v;
    ASSERT_EQ(rev, a) << "node " << v;
  }

  for (NodeId dst = 0; dst < n; ++dst) {
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(inc.distance(v, dst), full.distance(v, dst))
          << "dist " << v << "->" << dst;
      ASSERT_EQ(inc.reachable(v, dst), full.reachable(v, dst));
      if (v != dst && inc.reachable(v, dst))
        ASSERT_EQ(inc.escapeDir(v, dst), full.escapeDir(v, dst))
            << "escape " << v << "->" << dst;
    }
  }
  ASSERT_EQ(inc.unreachablePairs(), full.unreachablePairs());
}

TEST(RoutingTables, IncrementalCommitIsANoOpWhenClean) {
  Mesh mesh(4, 4);
  RoutingTables t(mesh);
  t.commit();  // never dirtied: must not touch anything
  EXPECT_FALSE(t.active());
  EXPECT_EQ(t.unreachablePairs(), 0u);
}

TEST(RoutingTables, IncrementalMatchesFullRebuildOverRandomChurn) {
  Mesh mesh(6, 6);
  RoutingTables inc(mesh);
  Xoshiro256StarStar rng(0xC0FFEEull);

  // Collect the real links once (east/south canonical orientation).
  std::vector<std::pair<NodeId, Dir>> links;
  for (NodeId v = 0; v < mesh.numNodes(); ++v)
    for (const Dir d : {Dir::East, Dir::South})
      if (mesh.neighbor(v, d)) links.emplace_back(v, d);

  for (int step = 0; step < 120; ++step) {
    // 1-3 flips per event batch; a flip toggles a random link, so the
    // sequence naturally produces splits (components breaking off) and
    // merges (revivals rejoining them).
    const int flips = static_cast<int>(1 + rng.below(3));
    for (int i = 0; i < flips; ++i) {
      const auto& [v, d] = links[rng.below(links.size())];
      inc.setLinkDead(v, d, inc.linkAlive(v, d));
    }
    inc.commit();
    ASSERT_NO_FATAL_FAILURE(expectMatchesFullRebuild(mesh, inc)) << step;
  }
}

TEST(RoutingTables, IncrementalMatchesFullRebuildOverResetChurn) {
  // Node-granular churn (the soft-reset pattern): kill every incident
  // link of a node at once, later revive them at once.
  Mesh mesh(5, 5);
  RoutingTables inc(mesh);
  Xoshiro256StarStar rng(0x5EED5ull);
  std::vector<bool> down(static_cast<std::size_t>(mesh.numNodes()), false);

  for (int step = 0; step < 80; ++step) {
    const auto v = static_cast<NodeId>(
        rng.below(static_cast<std::uint64_t>(mesh.numNodes())));
    const bool kill = !down[static_cast<std::size_t>(v)];
    down[static_cast<std::size_t>(v)] = kill;
    for (int d = 1; d < kNumPorts; ++d) {
      const Dir dir = static_cast<Dir>(d);
      const auto nb = mesh.neighbor(v, dir);
      if (!nb) continue;
      // Reviving keeps channels shared with a still-down neighbor dead —
      // the injector's Recover rule.
      if (kill)
        inc.setLinkDead(v, dir, true);
      else if (!down[static_cast<std::size_t>(*nb)])
        inc.setLinkDead(v, dir, false);
    }
    inc.commit();
    ASSERT_NO_FATAL_FAILURE(expectMatchesFullRebuild(mesh, inc)) << step;
  }
}

TEST(RoutingTables, SplitThenMergeRestoresTheCleanTables) {
  Mesh mesh(6, 6);
  RoutingTables inc(mesh);

  // Split: cut the whole column between x=2 and x=3.
  std::vector<NodeId> cut;
  for (int y = 0; y < 6; ++y) cut.push_back(mesh.nodeAt({2, y}));
  for (const NodeId v : cut) inc.setLinkDead(v, Dir::East, true);
  inc.commit();
  ASSERT_TRUE(inc.active());
  EXPECT_FALSE(inc.reachable(mesh.nodeAt({0, 0}), mesh.nodeAt({5, 5})));
  // Ordered pairs across an 18 | 18 split.
  EXPECT_EQ(inc.unreachablePairs(), 2u * 18u * 18u);
  ASSERT_NO_FATAL_FAILURE(expectMatchesFullRebuild(mesh, inc));

  // Merge: revive one bridge; the halves rejoin through it.
  inc.setLinkDead(cut[3], Dir::East, false);
  inc.commit();
  EXPECT_TRUE(inc.reachable(mesh.nodeAt({0, 0}), mesh.nodeAt({5, 5})));
  EXPECT_EQ(inc.unreachablePairs(), 0u);
  ASSERT_NO_FATAL_FAILURE(expectMatchesFullRebuild(mesh, inc));

  // Full revival deactivates the tables entirely.
  for (const NodeId v : cut) inc.setLinkDead(v, Dir::East, false);
  inc.commit();
  EXPECT_FALSE(inc.active());
  ASSERT_NO_FATAL_FAILURE(expectMatchesFullRebuild(mesh, inc));
}

TEST(RoutingTables, UnreachablePairsIsCachedUntilTheNextEvent) {
  Mesh mesh(4, 4);
  RoutingTables t(mesh);
  const NodeId corner = mesh.nodeAt({0, 0});
  t.setLinkDead(corner, Dir::East, true);
  t.setLinkDead(corner, Dir::South, true);
  t.commit();
  EXPECT_EQ(t.unreachablePairs(), 30u);
  EXPECT_EQ(t.unreachablePairs(), 30u);  // cached path
  t.setLinkDead(corner, Dir::East, false);
  t.commit();
  EXPECT_EQ(t.unreachablePairs(), 0u);  // invalidated by the event
}

TEST(RoutingTables, ForceFullRebuildFlagRoutesCommitThroughRecompute) {
  Mesh mesh(4, 4);
  RoutingTables a(mesh);
  RoutingTables b(mesh);
  RoutingTables::forceFullRebuildForTest = true;
  a.setLinkDead(mesh.nodeAt({1, 1}), Dir::East, true);
  a.commit();
  RoutingTables::forceFullRebuildForTest = false;
  b.setLinkDead(mesh.nodeAt({1, 1}), Dir::East, true);
  b.commit();
  // Same distances and escapes either way (labels may differ).
  for (NodeId dst = 0; dst < mesh.numNodes(); ++dst)
    for (NodeId v = 0; v < mesh.numNodes(); ++v)
      ASSERT_EQ(a.distance(v, dst), b.distance(v, dst));
  ASSERT_NO_FATAL_FAILURE(expectMatchesFullRebuild(mesh, b));
}

}  // namespace
}  // namespace rair
