#include "stats/stats.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace rair {
namespace {

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.approxQuantile(0.5), 0.0);
}

TEST(LatencyStats, BasicMoments) {
  LatencyStats s;
  for (double v : {2.0, 4.0, 6.0, 8.0}) s.record(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  // Sample variance of {2,4,6,8} = 20/3.
  EXPECT_NEAR(s.variance(), 20.0 / 3.0, 1e-9);
}

TEST(LatencyStats, HistogramBuckets) {
  LatencyStats s;
  s.record(0.5);   // bucket 0
  s.record(1.0);   // bucket 0  [1,2)
  s.record(3.0);   // bucket 1  [2,4)
  s.record(5.0);   // bucket 2  [4,8)
  s.record(100.0); // bucket 6  [64,128)
  const auto h = s.histogram();
  EXPECT_EQ(h[0], 2u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 1u);
  EXPECT_EQ(h[6], 1u);
}

TEST(LatencyStats, QuantileApproximation) {
  LatencyStats s;
  for (int i = 0; i < 90; ++i) s.record(10.0);   // bucket 3: [8,16)
  for (int i = 0; i < 10; ++i) s.record(100.0);  // bucket 6: [64,128)
  const double p50 = s.approxQuantile(0.5);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  const double p99 = s.approxQuantile(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 128.0);
}

TEST(LatencyStats, Merge) {
  LatencyStats a, b;
  a.record(1.0);
  a.record(3.0);
  b.record(5.0);
  b.record(7.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

Packet mkPacket(AppId app, Cycle create, Cycle inject, Cycle eject,
                std::uint16_t flits = 1, std::uint16_t hops = 3) {
  static PacketId next = 1;
  Packet p;
  p.id = next++;
  p.src = 0;
  p.dst = 1;
  p.app = app;
  p.numFlits = flits;
  p.createCycle = create;
  p.injectCycle = inject;
  p.ejectCycle = eject;
  p.hops = hops;
  return p;
}

// ---- LatencyStats property tests -----------------------------------------
//
// The digest must behave like a CRDT: sharding a sample stream across
// collectors and merging reproduces the single-stream digest exactly, in
// any merge order. This is the property the parallel campaign runner and
// the per-app/overall aggregation both rest on.

namespace {
// SplitMix64: deterministic, dependency-free sample generator.
std::uint64_t nextRand(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void expectSameDigest(const LatencyStats& a, const LatencyStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.variance(), b.variance());
  const auto ha = a.histogram();
  const auto hb = b.histogram();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t k = 0; k < ha.size(); ++k) EXPECT_EQ(ha[k], hb[k]);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(a.approxQuantile(q), b.approxQuantile(q));
}
}  // namespace

TEST(LatencyStatsProperty, MergedShardsMatchSingleStream) {
  for (int shards : {1, 2, 3, 7}) {
    std::uint64_t rng = 0xC0FFEEull + static_cast<std::uint64_t>(shards);
    LatencyStats single;
    std::vector<LatencyStats> parts(static_cast<std::size_t>(shards));
    for (int i = 0; i < 800; ++i) {
      // Mix of sub-1.0, mid-range and heavy-tail samples across buckets.
      const double v =
          static_cast<double>(nextRand(rng) % 2'000'000) / 128.0;
      single.record(v);
      parts[nextRand(rng) % static_cast<std::uint64_t>(shards)].record(v);
    }
    LatencyStats merged;
    for (const auto& p : parts) merged.merge(p);
    expectSameDigest(merged, single);
  }
}

TEST(LatencyStatsProperty, MergeIsOrderIndependent) {
  std::uint64_t rng = 0xABCDEFull;
  std::vector<LatencyStats> parts(5);
  for (int i = 0; i < 300; ++i)
    parts[nextRand(rng) % parts.size()].record(
        static_cast<double>(nextRand(rng) % 10'000) / 7.0);

  LatencyStats forward, backward;
  for (std::size_t k = 0; k < parts.size(); ++k) forward.merge(parts[k]);
  for (std::size_t k = parts.size(); k-- > 0;) backward.merge(parts[k]);
  expectSameDigest(forward, backward);
}

TEST(LatencyStatsProperty, MergeWithEmptyIsIdentity) {
  LatencyStats s;
  for (double v : {3.0, 14.0, 159.0}) s.record(v);
  LatencyStats copy = s;
  LatencyStats empty;
  copy.merge(empty);
  expectSameDigest(copy, s);

  LatencyStats other;
  other.merge(s);
  expectSameDigest(other, s);
}

TEST(LatencyStatsProperty, QuantileEdgeCases) {
  LatencyStats empty;
  EXPECT_EQ(empty.approxQuantile(0.0), 0.0);
  EXPECT_EQ(empty.approxQuantile(0.5), 0.0);
  EXPECT_EQ(empty.approxQuantile(1.0), 0.0);

  LatencyStats one;
  one.record(42.0);  // bucket [32,64): every quantile lands there
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_GE(one.approxQuantile(q), 32.0);
    EXPECT_LE(one.approxQuantile(q), 64.0);
  }

  LatencyStats s;
  for (int i = 0; i < 99; ++i) s.record(2.5);  // bucket [2,4)
  s.record(1000.0);                            // bucket [512,1024)
  // q=0 is the lowest occupied bucket, q=1 the highest; out-of-range q
  // clamps rather than reading past the histogram.
  EXPECT_LE(s.approxQuantile(0.0), 4.0);
  EXPECT_GE(s.approxQuantile(1.0), 512.0);
  EXPECT_DOUBLE_EQ(s.approxQuantile(-3.0), s.approxQuantile(0.0));
  EXPECT_DOUBLE_EQ(s.approxQuantile(7.0), s.approxQuantile(1.0));
}

TEST(StatsCollector, MeasurementWindowFilters) {
  StatsCollector sc(2);
  sc.startMeasurement(100);
  sc.stopMeasurement(200);

  // Created before window: delivered but not measured.
  auto warm = mkPacket(0, 50, 55, 120);
  sc.onPacketCreated(warm);
  sc.onPacketDelivered(warm);
  EXPECT_EQ(sc.app(0).totalLatency.count(), 0u);

  // Created inside window: measured.
  auto meas = mkPacket(0, 150, 152, 190);
  sc.onPacketCreated(meas);
  sc.onPacketDelivered(meas);
  EXPECT_EQ(sc.app(0).totalLatency.count(), 1u);
  EXPECT_DOUBLE_EQ(sc.appApl(0), 40.0);

  // Created after window (drain): not measured.
  auto drain = mkPacket(0, 250, 252, 290);
  sc.onPacketCreated(drain);
  sc.onPacketDelivered(drain);
  EXPECT_EQ(sc.app(0).totalLatency.count(), 1u);
}

TEST(StatsCollector, InFlightTracking) {
  StatsCollector sc(1);
  sc.startMeasurement(0);
  auto p1 = mkPacket(0, 10, 12, 50);
  auto p2 = mkPacket(0, 20, 22, 60);
  sc.onPacketCreated(p1);
  sc.onPacketCreated(p2);
  EXPECT_EQ(sc.measuredInFlight(), 2u);
  sc.onPacketDelivered(p1);
  EXPECT_EQ(sc.measuredInFlight(), 1u);
  sc.onPacketDelivered(p2);
  EXPECT_EQ(sc.measuredInFlight(), 0u);
}

TEST(StatsCollector, PerAppSeparation) {
  StatsCollector sc(3);
  sc.startMeasurement(0);
  auto a = mkPacket(0, 0, 1, 10);   // latency 10
  auto b = mkPacket(2, 0, 1, 30);   // latency 30
  sc.onPacketCreated(a);
  sc.onPacketCreated(b);
  sc.onPacketDelivered(a);
  sc.onPacketDelivered(b);
  EXPECT_DOUBLE_EQ(sc.appApl(0), 10.0);
  EXPECT_EQ(sc.app(1).totalLatency.count(), 0u);
  EXPECT_DOUBLE_EQ(sc.appApl(2), 30.0);
  EXPECT_DOUBLE_EQ(sc.overallApl(), 20.0);
}

TEST(StatsCollector, OverallAggregation) {
  StatsCollector sc(2);
  sc.startMeasurement(0);
  auto a = mkPacket(0, 0, 2, 12, 5, 4);
  auto b = mkPacket(1, 0, 3, 23, 1, 2);
  sc.onPacketCreated(a);
  sc.onPacketCreated(b);
  sc.onPacketDelivered(a);
  sc.onPacketDelivered(b);
  const auto all = sc.overall();
  EXPECT_EQ(all.packetsCreated, 2u);
  EXPECT_EQ(all.packetsDelivered, 2u);
  EXPECT_EQ(all.flitsDelivered, 6u);
  EXPECT_DOUBLE_EQ(all.totalLatency.mean(), (12.0 + 23.0) / 2.0);
  EXPECT_DOUBLE_EQ(all.networkLatency.mean(), (10.0 + 20.0) / 2.0);
  EXPECT_DOUBLE_EQ(all.hops.mean(), 3.0);
}

TEST(StatsCollector, NetworkVsTotalLatency) {
  StatsCollector sc(1);
  sc.startMeasurement(0);
  // 10 cycles of source queuing: total 40, network 30.
  auto p = mkPacket(0, 100, 110, 140);
  sc.onPacketCreated(p);
  sc.onPacketDelivered(p);
  EXPECT_DOUBLE_EQ(sc.app(0).totalLatency.mean(), 40.0);
  EXPECT_DOUBLE_EQ(sc.app(0).networkLatency.mean(), 30.0);
}

}  // namespace
}  // namespace rair
