// The side-band congestion-information network: local free-VC counts and
// their one-hop-per-cycle aggregation (what DBAR's selection consumes).
#include <gtest/gtest.h>

#include "policy/policy.h"
#include "sim/network.h"

namespace rair {
namespace {

NetworkConfig cfg() {
  NetworkConfig c;
  c.vcsPerClass = 5;  // 1 escape + 4 adaptive
  return c;
}

TEST(CongestionInfo, IdleNetworkReportsAllAdaptiveVcsFree) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Network net(m, rm, cfg(), RoutingKind::LocalAdaptive, policy);
  const NodeId center = m.nodeAt({1, 1});
  for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West})
    EXPECT_EQ(net.freeVcsThrough(center, d), 4);
}

TEST(CongestionInfo, EdgePortsReportZero) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Network net(m, rm, cfg(), RoutingKind::LocalAdaptive, policy);
  EXPECT_EQ(net.freeVcsThrough(m.nodeAt({0, 0}), Dir::North), 0);
  EXPECT_EQ(net.freeVcsThrough(m.nodeAt({0, 0}), Dir::West), 0);
  EXPECT_EQ(net.freeVcsThrough(m.nodeAt({3, 3}), Dir::East), 0);
  EXPECT_EQ(net.freeVcsThrough(m.nodeAt({3, 3}), Dir::South), 0);
}

TEST(CongestionInfo, AggregationNeedsPropagationTime) {
  Mesh m(8, 1);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Network net(m, rm, cfg(), RoutingKind::LocalAdaptive, policy);
  // Before any cycle, the aggregate tables hold zeros.
  EXPECT_EQ(net.aggregatedFree(0, Dir::East, 3), 0);
  // After one cycle only the 1-hop term is live (4 free VCs); the deeper
  // terms still add stale zeros from neighbors.
  net.step(0);
  EXPECT_EQ(net.aggregatedFree(0, Dir::East, 1), 4);
  // After h cycles, an h-hop horizon is fully populated: 4 per hop.
  for (Cycle t = 1; t < 5; ++t) net.step(t);
  EXPECT_EQ(net.aggregatedFree(0, Dir::East, 1), 4);
  EXPECT_EQ(net.aggregatedFree(0, Dir::East, 2), 8);
  EXPECT_EQ(net.aggregatedFree(0, Dir::East, 3), 12);
  EXPECT_EQ(net.aggregatedFree(0, Dir::East, 5), 20);
}

TEST(CongestionInfo, HorizonClampsAtMeshEdge) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Network net(m, rm, cfg(), RoutingKind::LocalAdaptive, policy);
  for (Cycle t = 0; t < 6; ++t) net.step(t);
  // From (1,1) eastward only 2 more routers exist; a huge horizon is
  // clamped to the stored maximum (width-1 = 3 hops), and hops beyond the
  // edge contribute nothing.
  const NodeId n = m.nodeAt({1, 1});
  const int h3 = net.aggregatedFree(n, Dir::East, 3);
  EXPECT_EQ(net.aggregatedFree(n, Dir::East, 99), h3);
  // 1 hop past (2,1), 2 hops past (3,1): 4 + 4 + 0 (edge) = 8... the
  // 3-hop aggregate counts ports (1,1)E, (2,1)E, (3,1)E; the last is an
  // edge port contributing 0.
  EXPECT_EQ(h3, 8);
}

TEST(CongestionInfo, OccupiedVcsReduceTheCount) {
  // Push traffic through one column and verify the reported free counts
  // drop at the loaded ports.
  Mesh m(4, 1);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Network net(m, rm, cfg(), RoutingKind::LocalAdaptive, policy);
  // Inject long packets from node 0 toward node 3 and stall them by
  // keeping the NIC at node 3 busy — simplest: observe counts drop while
  // flits are in flight.
  Packet p;
  p.id = 1;
  p.src = 0;
  p.dst = 3;
  p.app = 0;
  p.numFlits = 5;
  net.nic(0).enqueue(p);
  Packet q = p;
  q.id = 2;
  net.nic(0).enqueue(q);
  bool dipped = false;
  for (Cycle t = 0; t < 20; ++t) {
    net.step(t);
    if (net.freeVcsThrough(0, Dir::East) < 4) dipped = true;
  }
  EXPECT_TRUE(dipped) << "in-flight packets never occupied an output VC";
  // After draining, everything is free again.
  for (Cycle t = 20; t < 60; ++t) net.step(t);
  EXPECT_EQ(net.freeVcsThrough(0, Dir::East), 4);
  EXPECT_TRUE(net.quiescent());
}

}  // namespace
}  // namespace rair
