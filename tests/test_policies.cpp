#include <gtest/gtest.h>

#include "core/rair_policy.h"
#include "policy/policy.h"
#include "policy/stc.h"

namespace rair {
namespace {

Flit mkFlit(AppId app, Cycle create) {
  Flit f;
  f.app = app;
  f.createCycle = create;
  return f;
}

ArbCandidate mkCand(const Flit& f, AppId routerApp,
                    VcClass outClass = VcClass::Adaptive, Cycle now = 100) {
  ArbCandidate c;
  c.flit = &f;
  c.routerApp = routerApp;
  c.outVcClass = outClass;
  c.native = (routerApp != kNoApp && f.app == routerApp);
  c.now = now;
  return c;
}

TEST(RoundRobinPolicy, AllCandidatesEqual) {
  RoundRobinPolicy p;
  const Flit a = mkFlit(0, 10), b = mkFlit(1, 5);
  EXPECT_EQ(p.priority(ArbStage::VaOut, mkCand(a, 0), nullptr),
            p.priority(ArbStage::VaOut, mkCand(b, 0), nullptr));
  EXPECT_EQ(p.makeState(), nullptr);
  EXPECT_STREQ(p.name(), "RO_RR");
}

TEST(AgeBasedPolicy, OlderWins) {
  AgeBasedPolicy p;
  const Flit older = mkFlit(0, 10), younger = mkFlit(0, 50);
  EXPECT_GT(p.priority(ArbStage::SaIn, mkCand(older, 0), nullptr),
            p.priority(ArbStage::SaIn, mkCand(younger, 0), nullptr));
}

TEST(StcRank, RanksFromIntensitiesOrdering) {
  // Lower intensity -> better (smaller) rank.
  const auto ranks = StcRankPolicy::ranksFromIntensities({0.3, 0.1, 0.2});
  EXPECT_EQ(ranks[0], 2);
  EXPECT_EQ(ranks[1], 0);
  EXPECT_EQ(ranks[2], 1);
}

TEST(StcRank, RanksFromIntensitiesStableOnTies) {
  const auto ranks = StcRankPolicy::ranksFromIntensities({0.1, 0.1});
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[1], 1);
}

TEST(StcRank, LowIntensityAppWinsWithinBatch) {
  StcRankPolicy p(StcRankPolicy::ranksFromIntensities({0.9, 0.1}), 1000);
  const Flit intense = mkFlit(0, 100), light = mkFlit(1, 100);
  EXPECT_GT(p.priority(ArbStage::VaOut, mkCand(light, 0), nullptr),
            p.priority(ArbStage::VaOut, mkCand(intense, 0), nullptr));
}

TEST(StcRank, OlderBatchBeatsBetterRank) {
  StcRankPolicy p(StcRankPolicy::ranksFromIntensities({0.9, 0.1}), 1000);
  // Intense app's packet from batch 0 vs light app's packet from batch 5.
  const Flit oldIntense = mkFlit(0, 500), newLight = mkFlit(1, 5500);
  EXPECT_GT(p.priority(ArbStage::VaOut, mkCand(oldIntense, 0), nullptr),
            p.priority(ArbStage::VaOut, mkCand(newLight, 0), nullptr));
}

TEST(StcRank, UnknownAppGetsWorstRank) {
  StcRankPolicy p({0, 1}, 1000);
  EXPECT_EQ(p.rankOf(0), 0);
  EXPECT_EQ(p.rankOf(1), 1);
  EXPECT_EQ(p.rankOf(7), 2);
  EXPECT_EQ(p.rankOf(kNoApp), 2);
}

// ---- RAIR policy ----------------------------------------------------------

TEST(RairPolicy, GlobalVcAlwaysFavorsForeign) {
  RairPolicy p;  // Dynamic mode, but global VCs are unconditional
  auto state = p.makeState();
  const Flit nativeF = mkFlit(0, 10), foreignF = mkFlit(1, 10);
  const auto pn = p.priority(ArbStage::VaOut,
                             mkCand(nativeF, 0, VcClass::Global), state.get());
  const auto pf = p.priority(
      ArbStage::VaOut, mkCand(foreignF, 0, VcClass::Global), state.get());
  EXPECT_GT(pf, pn);
}

TEST(RairPolicy, RegionalVcFollowsDpaDefault) {
  RairPolicy p;
  auto state = p.makeState();
  // Default DPA state: foreign high.
  const Flit nativeF = mkFlit(0, 10), foreignF = mkFlit(1, 10);
  EXPECT_GT(p.priority(ArbStage::VaOut, mkCand(foreignF, 0, VcClass::Regional),
                       state.get()),
            p.priority(ArbStage::VaOut, mkCand(nativeF, 0, VcClass::Regional),
                       state.get()));
}

TEST(RairPolicy, RegionalVcFollowsDpaAfterTransition) {
  RairPolicy p;
  auto state = p.makeState();
  // Foreign over-occupies: native becomes high priority.
  p.updateState(state.get(), {2, 10});
  const Flit nativeF = mkFlit(0, 10), foreignF = mkFlit(1, 10);
  EXPECT_GT(p.priority(ArbStage::VaOut, mkCand(nativeF, 0, VcClass::Regional),
                       state.get()),
            p.priority(ArbStage::VaOut, mkCand(foreignF, 0, VcClass::Regional),
                       state.get()));
  // Global VCs still favor foreign regardless of DPA.
  EXPECT_GT(p.priority(ArbStage::VaOut, mkCand(foreignF, 0, VcClass::Global),
                       state.get()),
            p.priority(ArbStage::VaOut, mkCand(nativeF, 0, VcClass::Global),
                       state.get()));
}

TEST(RairPolicy, SaStagesUseDpaPriority) {
  RairPolicy p;
  auto state = p.makeState();
  const Flit nativeF = mkFlit(0, 10), foreignF = mkFlit(1, 10);
  for (ArbStage st : {ArbStage::SaIn, ArbStage::SaOut}) {
    EXPECT_GT(p.priority(st, mkCand(foreignF, 0), state.get()),
              p.priority(st, mkCand(nativeF, 0), state.get()));
  }
}

TEST(RairPolicy, VaOnlyModeDisablesSa) {
  RairConfig cfg;
  cfg.applyAtSa = false;
  RairPolicy p(cfg);
  auto state = p.makeState();
  const Flit nativeF = mkFlit(0, 10), foreignF = mkFlit(1, 10);
  EXPECT_EQ(p.priority(ArbStage::SaIn, mkCand(foreignF, 0), state.get()),
            p.priority(ArbStage::SaIn, mkCand(nativeF, 0), state.get()));
  // VA still enforced.
  EXPECT_NE(p.priority(ArbStage::VaOut, mkCand(foreignF, 0, VcClass::Regional),
                       state.get()),
            p.priority(ArbStage::VaOut, mkCand(nativeF, 0, VcClass::Regional),
                       state.get()));
  EXPECT_STREQ(p.name(), "RAIR_VA");
}

TEST(RairPolicy, StaticModes) {
  RairConfig nat;
  nat.dpaMode = DpaMode::NativeHigh;
  RairPolicy pn(nat);
  auto sn = pn.makeState();
  const Flit nativeF = mkFlit(0, 10), foreignF = mkFlit(1, 10);
  EXPECT_GT(pn.priority(ArbStage::SaIn, mkCand(nativeF, 0), sn.get()),
            pn.priority(ArbStage::SaIn, mkCand(foreignF, 0), sn.get()));
  EXPECT_STREQ(pn.name(), "RAIR_NativeH");

  RairConfig fgn;
  fgn.dpaMode = DpaMode::ForeignHigh;
  RairPolicy pf(fgn);
  auto sf = pf.makeState();
  // Even after an occupancy pattern that would flip DPA, ForeignHigh holds.
  pf.updateState(sf.get(), {1, 100});
  EXPECT_GT(pf.priority(ArbStage::SaIn, mkCand(foreignF, 0), sf.get()),
            pf.priority(ArbStage::SaIn, mkCand(nativeF, 0), sf.get()));
  EXPECT_STREQ(pf.name(), "RAIR_ForeignH");
}

TEST(RairPolicy, UntaggedRouterTreatsAllAsForeign) {
  RairPolicy p;
  auto state = p.makeState();
  const Flit a = mkFlit(0, 10), b = mkFlit(1, 10);
  // At a router with no app tag nothing is native: equal priority, RR ties.
  EXPECT_EQ(
      p.priority(ArbStage::SaIn, mkCand(a, kNoApp), state.get()),
      p.priority(ArbStage::SaIn, mkCand(b, kNoApp), state.get()));
}

}  // namespace
}  // namespace rair
