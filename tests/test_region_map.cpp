#include "region/region_map.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace rair {
namespace {

TEST(RegionMap, HalvesLayout) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  EXPECT_EQ(rm.numApps(), 2);
  // West half belongs to app 0, east half to app 1.
  EXPECT_EQ(rm.appOf(m.nodeAt({0, 0})), 0);
  EXPECT_EQ(rm.appOf(m.nodeAt({3, 7})), 0);
  EXPECT_EQ(rm.appOf(m.nodeAt({4, 0})), 1);
  EXPECT_EQ(rm.appOf(m.nodeAt({7, 7})), 1);
  EXPECT_EQ(rm.nodesOf(0).size(), 32u);
  EXPECT_EQ(rm.nodesOf(1).size(), 32u);
}

TEST(RegionMap, QuadrantsLayout) {
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  EXPECT_EQ(rm.numApps(), 4);
  EXPECT_EQ(rm.appOf(m.nodeAt({0, 0})), 0);  // NW
  EXPECT_EQ(rm.appOf(m.nodeAt({7, 0})), 1);  // NE
  EXPECT_EQ(rm.appOf(m.nodeAt({0, 7})), 2);  // SW
  EXPECT_EQ(rm.appOf(m.nodeAt({7, 7})), 3);  // SE
  for (AppId a = 0; a < 4; ++a) EXPECT_EQ(rm.nodesOf(a).size(), 16u);
}

TEST(RegionMap, SixRegionsPaperLayout) {
  Mesh m(8, 8);
  const auto rm = RegionMap::sixRegions(m);
  EXPECT_EQ(rm.numApps(), 6);
  // Column widths {3,3,2}, row bands of height 4 -> sizes 12,12,8,12,12,8.
  EXPECT_EQ(rm.nodesOf(0).size(), 12u);
  EXPECT_EQ(rm.nodesOf(1).size(), 12u);
  EXPECT_EQ(rm.nodesOf(2).size(), 8u);
  EXPECT_EQ(rm.nodesOf(3).size(), 12u);
  EXPECT_EQ(rm.nodesOf(4).size(), 12u);
  EXPECT_EQ(rm.nodesOf(5).size(), 8u);
  EXPECT_EQ(rm.appOf(m.nodeAt({0, 0})), 0);
  EXPECT_EQ(rm.appOf(m.nodeAt({3, 0})), 1);
  EXPECT_EQ(rm.appOf(m.nodeAt({6, 0})), 2);
  EXPECT_EQ(rm.appOf(m.nodeAt({0, 4})), 3);
  EXPECT_EQ(rm.appOf(m.nodeAt({5, 7})), 4);
  EXPECT_EQ(rm.appOf(m.nodeAt({7, 7})), 5);
}

TEST(RegionMap, EveryNodeAssignedInBlockGrids) {
  Mesh m(8, 8);
  for (const auto& rm :
       {RegionMap::halves(m), RegionMap::quadrants(m), RegionMap::sixRegions(m)}) {
    std::size_t total = 0;
    for (AppId a = 0; a < rm.numApps(); ++a) total += rm.nodesOf(a).size();
    EXPECT_EQ(total, 64u);
    for (NodeId n = 0; n < m.numNodes(); ++n) EXPECT_NE(rm.appOf(n), kNoApp);
  }
}

TEST(RegionMap, RegionsAreDisjoint) {
  Mesh m(8, 8);
  const auto rm = RegionMap::sixRegions(m);
  std::set<NodeId> seen;
  for (AppId a = 0; a < rm.numApps(); ++a) {
    for (NodeId n : rm.nodesOf(a)) {
      EXPECT_TRUE(seen.insert(n).second) << "node in two regions";
    }
  }
}

TEST(RegionMap, SameRegionAndNativeQueries) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const NodeId west = m.nodeAt({1, 1});
  const NodeId west2 = m.nodeAt({2, 5});
  const NodeId east = m.nodeAt({6, 1});
  EXPECT_TRUE(rm.sameRegion(west, west2));
  EXPECT_FALSE(rm.sameRegion(west, east));
  EXPECT_TRUE(rm.isNativeAt(west, 0));
  EXPECT_FALSE(rm.isNativeAt(west, 1));
  EXPECT_TRUE(rm.isNativeAt(east, 1));
}

TEST(RegionMap, UnassignedNodes) {
  Mesh m(4, 4);
  AppSpec a0{0, {0, 1, 4, 5}};
  const RegionMap rm(m, {a0});
  EXPECT_EQ(rm.appOf(0), 0);
  EXPECT_EQ(rm.appOf(15), kNoApp);
  EXPECT_FALSE(rm.sameRegion(14, 15));  // both unassigned -> not a region
  EXPECT_FALSE(rm.isNativeAt(15, 0));
}

TEST(RegionMap, RegionExtentInsideHalves) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  // From (0,0): can move 3 hops east (cols 1..3 in app 0), 7 hops south.
  EXPECT_EQ(rm.regionExtent(m.nodeAt({0, 0}), Dir::East), 3);
  EXPECT_EQ(rm.regionExtent(m.nodeAt({0, 0}), Dir::South), 7);
  EXPECT_EQ(rm.regionExtent(m.nodeAt({0, 0}), Dir::West), 0);
  EXPECT_EQ(rm.regionExtent(m.nodeAt({0, 0}), Dir::North), 0);
  // From (3,4): east neighbor (4,4) is app 1, so extent 0.
  EXPECT_EQ(rm.regionExtent(m.nodeAt({3, 4}), Dir::East), 0);
  EXPECT_EQ(rm.regionExtent(m.nodeAt({3, 4}), Dir::West), 3);
}

TEST(RegionMap, RegionExtentOnUnassignedNodeIsZero) {
  Mesh m(4, 4);
  AppSpec a0{0, {0, 1}};
  const RegionMap rm(m, {a0});
  EXPECT_EQ(rm.regionExtent(10, Dir::North), 0);
  EXPECT_EQ(rm.regionExtent(10, Dir::East), 0);
}

TEST(RegionMap, BlockGridGeneric) {
  Mesh m(6, 6);
  const auto rm = RegionMap::blockGrid(m, 3, 2);
  EXPECT_EQ(rm.numApps(), 6);
  for (AppId a = 0; a < 6; ++a) EXPECT_EQ(rm.nodesOf(a).size(), 6u);
}

TEST(RegionMap, BlockGridUnevenSplit) {
  Mesh m(5, 3);
  const auto rm = RegionMap::blockGrid(m, 2, 1);
  EXPECT_EQ(rm.numApps(), 2);
  // Width 5 split into {3,2}.
  EXPECT_EQ(rm.nodesOf(0).size(), 9u);
  EXPECT_EQ(rm.nodesOf(1).size(), 6u);
}

}  // namespace
}  // namespace rair
