#include "region/lbdr.h"

#include <gtest/gtest.h>

namespace rair {
namespace {

TEST(Lbdr, PaperFourteenPercentExample) {
  // Paper Sec. III.B: 16 cores, 4 MCs, 4 applications of 4 threads each
  // -> ~14% of mappings satisfy the one-MC-per-region constraint.
  const double frac = lbdrValidMappingFraction(16, 4, 4, 4);
  EXPECT_NEAR(frac, 0.1407, 0.001);
}

TEST(Lbdr, FewerMcsThanAppsIsImpossible) {
  EXPECT_DOUBLE_EQ(lbdrValidMappingFraction(16, 3, 4, 4), 0.0);
  EXPECT_DOUBLE_EQ(lbdrValidMappingFraction(8, 0, 2, 4), 0.0);
}

TEST(Lbdr, SingleAppAlwaysValidWithAnMc) {
  EXPECT_DOUBLE_EQ(lbdrValidMappingFraction(8, 1, 1, 8), 1.0);
  EXPECT_DOUBLE_EQ(lbdrValidMappingFraction(8, 4, 1, 8), 1.0);
}

TEST(Lbdr, TwoAppsTwoMcsByHand) {
  // 4 cores {m1, m2, c1, c2}, 2 apps x 2 threads. Total partitions:
  // C(4,2) = 6. Valid (each app one MC): app0 in {m1c1, m1c2, m2c1, m2c2}
  // = 4. Fraction 2/3.
  EXPECT_NEAR(lbdrValidMappingFraction(4, 2, 2, 2), 2.0 / 3.0, 1e-9);
}

TEST(Lbdr, MoreMcsIncreaseValidFraction) {
  const double f4 = lbdrValidMappingFraction(16, 4, 4, 4);
  const double f6 = lbdrValidMappingFraction(16, 6, 4, 4);
  const double f8 = lbdrValidMappingFraction(16, 8, 4, 4);
  EXPECT_LT(f4, f6);
  EXPECT_LT(f6, f8);
  EXPECT_LE(f8, 1.0);
}

TEST(Lbdr, MappingValidityCheck) {
  Mesh m(4, 4);
  const auto corners = m.cornerNodes();  // 0, 3, 12, 15
  // Quadrants: each quadrant contains exactly one corner -> valid.
  const auto quads = RegionMap::quadrants(m);
  EXPECT_TRUE(lbdrMappingValid(quads, corners));
  // Vertical quarters (4 columns x 1): columns 1 and 2 contain no corner
  // -> invalid, matching the paper's Fig. 3(b) intuition.
  const auto stripes = RegionMap::blockGrid(m, 4, 1);
  EXPECT_FALSE(lbdrMappingValid(stripes, corners));
}

TEST(Lbdr, PacketLegality) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  EXPECT_TRUE(lbdrPacketAllowed(rm, m.nodeAt({0, 0}), m.nodeAt({3, 7})));
  EXPECT_FALSE(lbdrPacketAllowed(rm, m.nodeAt({0, 0}), m.nodeAt({4, 0})));
}

TEST(Lbdr, UnassignedNodesDoNotSatisfyConstraint) {
  Mesh m(4, 4);
  AppSpec a0{0, {5, 6, 9, 10}};  // interior block, no corners
  const RegionMap rm(m, {a0});
  EXPECT_FALSE(lbdrMappingValid(rm, m.cornerNodes()));
}

}  // namespace
}  // namespace rair
