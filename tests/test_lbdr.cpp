#include "region/lbdr.h"

#include <gtest/gtest.h>

#include "routing/degraded.h"

namespace rair {
namespace {

TEST(Lbdr, PaperFourteenPercentExample) {
  // Paper Sec. III.B: 16 cores, 4 MCs, 4 applications of 4 threads each
  // -> ~14% of mappings satisfy the one-MC-per-region constraint.
  const double frac = lbdrValidMappingFraction(16, 4, 4, 4);
  EXPECT_NEAR(frac, 0.1407, 0.001);
}

TEST(Lbdr, FewerMcsThanAppsIsImpossible) {
  EXPECT_DOUBLE_EQ(lbdrValidMappingFraction(16, 3, 4, 4), 0.0);
  EXPECT_DOUBLE_EQ(lbdrValidMappingFraction(8, 0, 2, 4), 0.0);
}

TEST(Lbdr, SingleAppAlwaysValidWithAnMc) {
  EXPECT_DOUBLE_EQ(lbdrValidMappingFraction(8, 1, 1, 8), 1.0);
  EXPECT_DOUBLE_EQ(lbdrValidMappingFraction(8, 4, 1, 8), 1.0);
}

TEST(Lbdr, TwoAppsTwoMcsByHand) {
  // 4 cores {m1, m2, c1, c2}, 2 apps x 2 threads. Total partitions:
  // C(4,2) = 6. Valid (each app one MC): app0 in {m1c1, m1c2, m2c1, m2c2}
  // = 4. Fraction 2/3.
  EXPECT_NEAR(lbdrValidMappingFraction(4, 2, 2, 2), 2.0 / 3.0, 1e-9);
}

TEST(Lbdr, MoreMcsIncreaseValidFraction) {
  const double f4 = lbdrValidMappingFraction(16, 4, 4, 4);
  const double f6 = lbdrValidMappingFraction(16, 6, 4, 4);
  const double f8 = lbdrValidMappingFraction(16, 8, 4, 4);
  EXPECT_LT(f4, f6);
  EXPECT_LT(f6, f8);
  EXPECT_LE(f8, 1.0);
}

TEST(Lbdr, MappingValidityCheck) {
  Mesh m(4, 4);
  const auto corners = m.cornerNodes();  // 0, 3, 12, 15
  // Quadrants: each quadrant contains exactly one corner -> valid.
  const auto quads = RegionMap::quadrants(m);
  EXPECT_TRUE(lbdrMappingValid(quads, corners));
  // Vertical quarters (4 columns x 1): columns 1 and 2 contain no corner
  // -> invalid, matching the paper's Fig. 3(b) intuition.
  const auto stripes = RegionMap::blockGrid(m, 4, 1);
  EXPECT_FALSE(lbdrMappingValid(stripes, corners));
}

TEST(Lbdr, PacketLegality) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  EXPECT_TRUE(lbdrPacketAllowed(rm, m.nodeAt({0, 0}), m.nodeAt({3, 7})));
  EXPECT_FALSE(lbdrPacketAllowed(rm, m.nodeAt({0, 0}), m.nodeAt({4, 0})));
}

TEST(Lbdr, UnassignedNodesDoNotSatisfyConstraint) {
  Mesh m(4, 4);
  AppSpec a0{0, {5, 6, 9, 10}};  // interior block, no corners
  const RegionMap rm(m, {a0});
  EXPECT_FALSE(lbdrMappingValid(rm, m.cornerNodes()));
}

// ---- Degraded connectivity ------------------------------------------------

TEST(Lbdr, ConnectivityBitsTrackDeadLinksOnBothEndpoints) {
  Mesh m(4, 4);
  DegradedTopology topo(m);
  // Interior node: all four links alive. Corner (0,0): East + South only.
  EXPECT_EQ(topo.connectivityBits(m.nodeAt({1, 1})), 0b1111);
  EXPECT_EQ(topo.connectivityBits(m.nodeAt({0, 0})), 0b0110);
  // Killing (1,1)'s east channel clears the East bit there and the West
  // bit on the far endpoint — the undirected channel fails as one.
  topo.setLinkDead(m.nodeAt({1, 1}), Dir::East, true);
  topo.recompute();
  EXPECT_EQ(topo.connectivityBits(m.nodeAt({1, 1})), 0b1101);
  EXPECT_EQ(topo.connectivityBits(m.nodeAt({2, 1})), 0b0111);
  // Restoring the link restores both bits.
  topo.setLinkDead(m.nodeAt({1, 1}), Dir::East, false);
  topo.recompute();
  EXPECT_FALSE(topo.active());
  EXPECT_EQ(topo.connectivityBits(m.nodeAt({1, 1})), 0b1111);
  EXPECT_EQ(topo.connectivityBits(m.nodeAt({2, 1})), 0b1111);
}

TEST(Lbdr, ValidMappingDoesNotImplyMcReachabilityUnderFaults) {
  Mesh m(4, 4);
  const auto quads = RegionMap::quadrants(m);
  const auto mcs = m.cornerNodes();
  ASSERT_TRUE(lbdrMappingValid(quads, mcs));

  // Isolate corner 0 — region 0's only MC.
  DegradedTopology topo(m);
  for (int d = 1; d < kNumPorts; ++d)
    if (m.neighbor(0, static_cast<Dir>(d)))
      topo.setLinkDead(0, static_cast<Dir>(d), true);
  topo.recompute();
  EXPECT_EQ(topo.connectivityBits(0), 0);

  // The mapping check is a static placement property and still passes;
  // reachability under faults is the fault layer's concern, which is why
  // unreachable traffic drains through the accounted drop bucket instead
  // of asserting inside LBDR.
  EXPECT_TRUE(lbdrMappingValid(quads, mcs));
  for (NodeId n = 1; n < m.numNodes(); ++n)
    EXPECT_FALSE(topo.reachable(n, 0)) << "node " << n;
  EXPECT_EQ(topo.unreachablePairs(), 2u * 15u);
}

TEST(Lbdr, LegalPacketMayBecomeUnreachableUnderDegradation) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  const NodeId src = m.nodeAt({0, 0});
  const NodeId dst = m.nodeAt({3, 7});
  ASSERT_TRUE(lbdrPacketAllowed(rm, src, dst));

  DegradedTopology topo(m);
  for (int d = 1; d < kNumPorts; ++d)
    if (m.neighbor(dst, static_cast<Dir>(d)))
      topo.setLinkDead(dst, static_cast<Dir>(d), true);
  topo.recompute();

  // Static legality is unchanged; the degraded graph decides delivery.
  EXPECT_TRUE(lbdrPacketAllowed(rm, src, dst));
  EXPECT_FALSE(topo.reachable(src, dst));
  EXPECT_EQ(topo.distance(src, dst), -1);
}

}  // namespace
}  // namespace rair
