#include "stats/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rair {
namespace {

TEST(Report, FormatNum) {
  EXPECT_EQ(formatNum(3.14159, 2), "3.14");
  EXPECT_EQ(formatNum(3.14159, 0), "3");
  EXPECT_EQ(formatNum(-1.5, 1), "-1.5");
}

TEST(Report, FormatPct) {
  EXPECT_EQ(formatPct(0.124, 1), "+12.4%");
  EXPECT_EQ(formatPct(-0.033, 1), "-3.3%");
  EXPECT_EQ(formatPct(0.0, 1), "+0.0%");
}

TEST(Report, TableRendersHeadersAndRows) {
  TextTable t({"scheme", "App 0", "App 1"});
  const auto r = t.addRow();
  t.set(r, 0, "RO_RR");
  t.setNum(r, 1, 41.25);
  t.setNum(r, 2, 63.1);
  const std::string out = t.toString();
  EXPECT_NE(out.find("scheme"), std::string::npos);
  EXPECT_NE(out.find("RO_RR"), std::string::npos);
  EXPECT_NE(out.find("41.25"), std::string::npos);
  EXPECT_NE(out.find("63.10"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Report, TableColumnsAligned) {
  TextTable t({"a", "bbbb"});
  t.addRow({"xxxxxx", "y"});
  std::istringstream in(t.toString());
  std::string header, rule, row;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row);
  // The second column starts at the same offset in every line.
  const auto colInHeader = header.find("bbbb");
  const auto colInRow = row.find('y');
  EXPECT_EQ(colInHeader, colInRow);
}

TEST(Report, AddRowVectorForm) {
  TextTable t({"x", "y"});
  t.addRow({"1", "2"});
  t.addRow({"3", "4"});
  const std::string out = t.toString();
  EXPECT_NE(out.find('3'), std::string::npos);
}

TEST(Report, PctCell) {
  TextTable t({"scheme", "gain"});
  const auto r = t.addRow();
  t.set(r, 0, "RAIR");
  t.setPct(r, 1, 0.101);
  EXPECT_NE(t.toString().find("+10.1%"), std::string::npos);
}

}  // namespace
}  // namespace rair
