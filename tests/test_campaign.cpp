#include "campaign/runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "campaign/store.h"
#include "sim/scheme.h"

namespace rair::campaign {
namespace {

// A tiny but real campaign: 2 schemes x 2 load points on a 4x4 halves
// mesh with sub-second windows. Cells are pure functions of the seed, as
// the runner requires.
CampaignSpec smallSpec() {
  auto mesh = std::make_shared<Mesh>(4, 4);
  auto regions = std::make_shared<RegionMap>(RegionMap::halves(*mesh));
  SimConfig cfg;
  cfg.warmupCycles = 200;
  cfg.measureCycles = 1'000;
  cfg.drainLimit = 20'000;

  CampaignSpec spec;
  spec.name = "unit";
  spec.campaignSeed = 7;
  for (const SchemeSpec& scheme : {schemeRoRr(), schemeRaRair()}) {
    for (const char* load : {"low", "mid"}) {
      const double rate = load[0] == 'l' ? 0.05 : 0.15;
      CampaignCell cell;
      cell.key = scheme.label + "/" + load;
      cell.labels = {{"scheme", scheme.label}, {"load", load}};
      cell.run = [mesh, regions, cfg, scheme, rate](const CellContext& ctx) {
        std::vector<AppTrafficSpec> apps(2);
        apps[0].app = 0;
        apps[0].injectionRate = rate;
        apps[1].app = 1;
        apps[1].injectionRate = rate;
        ScenarioSpec spec = ScenarioSpec(*mesh, *regions)
                                .withConfig(cfg)
                                .withScheme(scheme)
                                .withApps(std::move(apps));
        return runScenario(ctx.applyTo(spec));
      };
      spec.add(std::move(cell));
    }
  }
  return spec;
}

std::vector<std::string> canonicalLines(const std::vector<CellRecord>& recs) {
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const auto& r : recs) lines.push_back(r.toJsonLine(/*includeVolatile=*/false));
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string freshTempFile(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(CellSeed, DeterministicAndDistinct) {
  EXPECT_EQ(cellSeed(1, 0), cellSeed(1, 0));
  EXPECT_NE(cellSeed(1, 0), cellSeed(1, 1));
  EXPECT_NE(cellSeed(1, 0), cellSeed(2, 0));
  // The SplitMix64 finalizer never yields the all-zero state xoshiro
  // cannot escape from.
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NE(cellSeed(0, i), 0u);
}

TEST(CellRecord, JsonRoundTrip) {
  CellRecord rec;
  rec.campaign = "unit";
  rec.key = "RA_RAIR/mid";
  rec.labels = {{"scheme", "RA_RAIR"}, {"load", "mid"}};
  rec.seed = 0xDEADBEEFDEADBEEFull;  // must survive despite double JSON numbers
  rec.termination = Termination::ProgressTimeout;
  rec.cyclesRun = 12'345;
  rec.packetsCreated = 678;
  rec.packetsDelivered = 599;
  rec.deliveredFlitRate = 0.0625;
  rec.appApl = {23.125, 31.5};
  rec.meanApl = 27.75;
  rec.wallMs = 41.5;

  const auto parsed = CellRecord::fromJsonLine(rec.toJsonLine());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->campaign, rec.campaign);
  EXPECT_EQ(parsed->key, rec.key);
  EXPECT_EQ(parsed->labels, rec.labels);
  EXPECT_EQ(parsed->seed, rec.seed);
  EXPECT_EQ(parsed->termination, Termination::ProgressTimeout);
  EXPECT_EQ(parsed->cyclesRun, rec.cyclesRun);
  EXPECT_EQ(parsed->packetsCreated, rec.packetsCreated);
  EXPECT_EQ(parsed->packetsDelivered, rec.packetsDelivered);
  EXPECT_DOUBLE_EQ(parsed->deliveredFlitRate, rec.deliveredFlitRate);
  ASSERT_EQ(parsed->appApl.size(), rec.appApl.size());
  EXPECT_DOUBLE_EQ(parsed->appApl[0], rec.appApl[0]);
  EXPECT_DOUBLE_EQ(parsed->appApl[1], rec.appApl[1]);
  EXPECT_DOUBLE_EQ(parsed->meanApl, rec.meanApl);
  EXPECT_DOUBLE_EQ(parsed->wallMs, rec.wallMs);
  // Serializing the parsed record reproduces the original bytes.
  EXPECT_EQ(parsed->toJsonLine(), rec.toJsonLine());
  // The canonical form drops the volatile wall time.
  EXPECT_EQ(rec.toJsonLine(false).find("wall_ms"), std::string::npos);
  EXPECT_NE(rec.toJsonLine(true).find("wall_ms"), std::string::npos);
}

TEST(CellRecord, MetricsBlockRoundTripsAndStaysOptional) {
  CellRecord rec;
  rec.campaign = "unit";
  rec.key = "RA_RAIR/mid";
  rec.seed = 42;
  rec.cyclesRun = 1'000;
  rec.appApl = {10.0};
  // Default level: no metrics block, and none serialized -- the byte
  // identity of default campaign records depends on this.
  EXPECT_EQ(rec.toJsonLine().find("\"metrics\""), std::string::npos);
  const auto plain = CellRecord::fromJsonLine(rec.toJsonLine());
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->metrics.has_value());

  CellMetrics m;
  m.vaGrantsNative = 1'000'000'000'001ull;  // > 2^32: must survive JSON
  m.vaGrantsForeign = 17;
  m.saGrantsNative = 23;
  m.saGrantsForeign = 5;
  m.escapeAllocations = 7;
  m.flitsTraversed = 28;
  m.dpaFlips = 3;
  rec.metrics = m;
  const std::string line = rec.toJsonLine();
  EXPECT_NE(line.find("\"metrics\""), std::string::npos);
  const auto parsed = CellRecord::fromJsonLine(line);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->metrics.has_value());
  EXPECT_EQ(parsed->metrics->vaGrantsNative, m.vaGrantsNative);
  EXPECT_EQ(parsed->metrics->vaGrantsForeign, m.vaGrantsForeign);
  EXPECT_EQ(parsed->metrics->saGrantsNative, m.saGrantsNative);
  EXPECT_EQ(parsed->metrics->saGrantsForeign, m.saGrantsForeign);
  EXPECT_EQ(parsed->metrics->escapeAllocations, m.escapeAllocations);
  EXPECT_EQ(parsed->metrics->flitsTraversed, m.flitsTraversed);
  EXPECT_EQ(parsed->metrics->dpaFlips, m.dpaFlips);
  // Re-serializing reproduces the original bytes.
  EXPECT_EQ(parsed->toJsonLine(), line);
}

TEST(CellRecord, FaultBlockRoundTripsAndStaysOptional) {
  CellRecord rec;
  rec.campaign = "unit";
  rec.key = "RA_RAIR/outage";
  rec.seed = 42;
  rec.cyclesRun = 1'000;
  rec.appApl = {10.0};
  // Fault-free cells must not grow a fault block -- record byte identity
  // with pre-fault-subsystem campaigns depends on this.
  EXPECT_EQ(rec.toJsonLine().find("\"fault\""), std::string::npos);
  const auto plain = CellRecord::fromJsonLine(rec.toJsonLine());
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->fault.has_value());

  fault::FaultStats fs;
  fs.eventsApplied = 4;
  fs.droppedPackets = 1'000'000'000'001ull;  // > 2^32: must survive JSON
  fs.droppedFlits = 55;
  fs.reroutes = 12;
  fs.unreachablePairs = 30;
  fs.degradedCycles = 2'000;
  fs.recoveryCycles = 3'000;
  rec.fault = fs;
  const std::string line = rec.toJsonLine();
  EXPECT_NE(line.find("\"fault\""), std::string::npos);
  const auto parsed = CellRecord::fromJsonLine(line);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->fault.has_value());
  EXPECT_EQ(parsed->fault->eventsApplied, fs.eventsApplied);
  EXPECT_EQ(parsed->fault->droppedPackets, fs.droppedPackets);
  EXPECT_EQ(parsed->fault->droppedFlits, fs.droppedFlits);
  EXPECT_EQ(parsed->fault->reroutes, fs.reroutes);
  EXPECT_EQ(parsed->fault->unreachablePairs, fs.unreachablePairs);
  EXPECT_EQ(parsed->fault->degradedCycles, fs.degradedCycles);
  EXPECT_EQ(parsed->fault->recoveryCycles, fs.recoveryCycles);
  EXPECT_EQ(parsed->toJsonLine(), line);
}

TEST(CellRecord, ReductionAgainstEmptyBaselineIsZeroNotNan) {
  CellRecord base, mine;
  base.appApl = {0.0, 40.0};
  base.meanApl = 0.0;
  mine.appApl = {30.0, 36.0};
  mine.meanApl = 33.0;
  EXPECT_EQ(mine.reductionVs(base, 0), 0.0);
  EXPECT_NEAR(mine.reductionVs(base, 1), 0.10, 1e-12);
  EXPECT_EQ(mine.meanReductionVs(base), 0.0);
}

TEST(CellRecord, RejectsNonCellLines) {
  EXPECT_FALSE(CellRecord::fromJsonLine("not json").has_value());
  EXPECT_FALSE(CellRecord::fromJsonLine("{\"type\":\"value\"}").has_value());
  EXPECT_FALSE(CellRecord::fromJsonLine("{}").has_value());
}

TEST(Store, ValueAndCellRecordsRoundTripThroughFile) {
  const std::string path = freshTempFile("rair_store_roundtrip.jsonl");

  CellRecord rec;
  rec.campaign = "unit";
  rec.key = "cell-a";
  rec.seed = 11;
  rec.termination = Termination::Drained;
  rec.appApl = {10.0};
  rec.meanApl = 10.0;
  {
    JsonlWriter writer(path);
    ASSERT_TRUE(writer.enabled());
    writer.writeLine(valueJsonLine("unit", "cal/knee", 0.38125));
    writer.writeLine(rec.toJsonLine());
    writer.writeLine("garbage that must be skipped, not fatal");
  }

  const CampaignFileData data = loadCampaignFile(path);
  ASSERT_EQ(data.values.count("cal/knee"), 1u);
  EXPECT_DOUBLE_EQ(data.values.at("cal/knee"), 0.38125);
  ASSERT_EQ(data.cells.count("cell-a"), 1u);
  const CellRecord& loaded = data.cells.at("cell-a");
  EXPECT_TRUE(loaded.fromCache);
  EXPECT_EQ(loaded.seed, 11u);
  EXPECT_TRUE(loaded.drained());

  // A missing file is empty data, not an error.
  const auto none = loadCampaignFile(freshTempFile("rair_store_missing.jsonl"));
  EXPECT_TRUE(none.cells.empty());
  EXPECT_TRUE(none.values.empty());
  std::remove(path.c_str());
}

// Satellite: the headline determinism guarantee. The same campaign run
// serially and on a 4-thread pool must yield byte-identical canonical
// records — seeds depend only on (campaignSeed, cellIndex), never on the
// worker that picked the cell up or the completion order.
TEST(Runner, ParallelMatchesSerial) {
  const CampaignSpec spec = smallSpec();

  RunnerOptions serial;
  serial.jobs = 1;
  const CampaignSummary one = runCampaign(spec, serial);

  RunnerOptions pooled;
  pooled.jobs = 4;
  const CampaignSummary four = runCampaign(spec, pooled);

  ASSERT_EQ(one.records.size(), spec.cells.size());
  ASSERT_EQ(four.records.size(), spec.cells.size());
  EXPECT_EQ(one.executed, spec.cells.size());
  EXPECT_EQ(four.executed, spec.cells.size());
  EXPECT_EQ(canonicalLines(one.records), canonicalLines(four.records));
  for (const CellRecord& r : one.records) {
    EXPECT_TRUE(r.drained()) << r.key;
    EXPECT_FALSE(r.fromCache);
  }
}

TEST(Runner, RecordsFollowSpecOrderAndSeeds) {
  const CampaignSpec spec = smallSpec();
  RunnerOptions opts;
  opts.jobs = 2;
  const CampaignSummary summary = runCampaign(spec, opts);
  ASSERT_EQ(summary.records.size(), spec.cells.size());
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    EXPECT_EQ(summary.records[i].key, spec.cells[i].key);
    EXPECT_EQ(summary.records[i].seed, cellSeed(spec.campaignSeed, i));
    EXPECT_EQ(summary.records[i].campaign, spec.name);
  }
  EXPECT_EQ(summary.lookup().size(), spec.cells.size());
}

TEST(Runner, ResumeExecutesNothingOnSecondRun) {
  const CampaignSpec spec = smallSpec();
  const std::string path = freshTempFile("rair_resume.jsonl");

  RunnerOptions opts;
  opts.jobs = 2;
  opts.outPath = path;
  const CampaignSummary first = runCampaign(spec, opts);
  EXPECT_EQ(first.executed, spec.cells.size());
  EXPECT_EQ(first.skipped, 0u);

  const CampaignSummary second = runCampaign(spec, opts);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.skipped, spec.cells.size());
  for (const CellRecord& r : second.records) EXPECT_TRUE(r.fromCache);

  // Cached results are the executed results, bit for bit.
  EXPECT_EQ(canonicalLines(first.records), canonicalLines(second.records));
  std::remove(path.c_str());
}

TEST(Runner, PartialResumeRunsOnlyMissingCells) {
  const CampaignSpec full = smallSpec();
  CampaignSpec half = smallSpec();
  half.cells.resize(2);

  const std::string path = freshTempFile("rair_partial_resume.jsonl");
  RunnerOptions opts;
  opts.jobs = 2;
  opts.outPath = path;
  const CampaignSummary seeded = runCampaign(half, opts);
  EXPECT_EQ(seeded.executed, 2u);

  const CampaignSummary rest = runCampaign(full, opts);
  EXPECT_EQ(rest.skipped, 2u);
  EXPECT_EQ(rest.executed, full.cells.size() - 2);
  ASSERT_EQ(rest.records.size(), full.cells.size());
  EXPECT_TRUE(rest.records[0].fromCache);
  EXPECT_FALSE(rest.records[2].fromCache);

  // resume = false re-executes everything regardless of the file.
  RunnerOptions fresh = opts;
  fresh.outPath.clear();
  fresh.resume = false;
  EXPECT_EQ(runCampaign(full, fresh).executed, full.cells.size());
  std::remove(path.c_str());
}

TEST(Runner, TripwiredCellIsRecordedNotFatal) {
  CampaignSpec spec;
  spec.name = "unit_trip";
  CampaignCell ok;
  ok.key = "ok";
  ok.run = [](const CellContext&) {
    ScenarioResult r;
    r.appApl = {10.0};
    r.meanApl = 10.0;
    r.run.termination = Termination::Drained;
    r.run.fullyDrained = true;
    return r;
  };
  spec.add(std::move(ok));
  CampaignCell stuck;
  stuck.key = "stuck";
  stuck.run = [](const CellContext&) {
    ScenarioResult r;
    r.appApl = {1e9};
    r.meanApl = 1e9;
    r.run.termination = Termination::ProgressTimeout;
    r.run.cyclesRun = 123;
    return r;
  };
  spec.add(std::move(stuck));

  RunnerOptions opts;
  opts.jobs = 2;
  const CampaignSummary summary = runCampaign(spec, opts);
  ASSERT_EQ(summary.records.size(), 2u);
  EXPECT_EQ(summary.tripwired, 1u);
  EXPECT_EQ(summary.records[0].termination, Termination::Drained);
  EXPECT_EQ(summary.records[1].termination, Termination::ProgressTimeout);
  EXPECT_EQ(summary.records[1].cyclesRun, 123u);
}

TEST(LazyCampaign, MemoizesAndMatchesRunner) {
  LazyCampaign lazy(smallSpec());
  const CellRecord& first = lazy.cell("RO_RR/low");
  const CellRecord& again = lazy.cell("RO_RR/low");
  EXPECT_EQ(&first, &again);  // node-stable, computed once

  RunnerOptions serial;
  serial.jobs = 1;
  const CampaignSummary summary = runCampaign(smallSpec(), serial);
  EXPECT_EQ(first.toJsonLine(false), summary.records[0].toJsonLine(false));
}

TEST(Termination, NamesRoundTrip) {
  for (Termination t : {Termination::Drained, Termination::DrainLimit,
                        Termination::ProgressTimeout}) {
    const auto back = terminationFromName(terminationName(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(terminationFromName("exploded").has_value());
}

}  // namespace
}  // namespace rair::campaign
