#include "stats/timeseries.h"

#include <gtest/gtest.h>

namespace rair {
namespace {

Packet deliveredAt(Cycle eject, Cycle latency, std::uint16_t flits = 1) {
  Packet p;
  p.numFlits = flits;
  p.createCycle = eject - latency;
  p.injectCycle = p.createCycle;
  p.ejectCycle = eject;
  return p;
}

TEST(TimeSeries, BucketsByDeliveryCycle) {
  TimeSeries ts(100);
  ts.recordDelivery(deliveredAt(50, 10));
  ts.recordDelivery(deliveredAt(99, 20));
  ts.recordDelivery(deliveredAt(100, 30, 5));
  ASSERT_EQ(ts.intervals().size(), 2u);
  EXPECT_EQ(ts.intervals()[0].packets, 2u);
  EXPECT_DOUBLE_EQ(ts.intervals()[0].meanLatency(), 15.0);
  EXPECT_EQ(ts.intervals()[1].packets, 1u);
  EXPECT_EQ(ts.intervals()[1].flits, 5u);
  EXPECT_EQ(ts.intervals()[1].start, 100u);
}

TEST(TimeSeries, EmptyIsStationary) {
  TimeSeries ts(100);
  EXPECT_TRUE(ts.stationary());
  EXPECT_EQ(ts.latencyTrend(0, 10), 0.0);
  EXPECT_EQ(ts.tailMeanLatency(5), 0.0);
}

TEST(TimeSeries, FlatSeriesIsStationary) {
  TimeSeries ts(10);
  for (Cycle t = 0; t < 500; t += 5) ts.recordDelivery(deliveredAt(t, 20));
  EXPECT_TRUE(ts.stationary());
  EXPECT_NEAR(ts.latencyTrend(0, ts.intervals().size()), 0.0, 1e-9);
}

TEST(TimeSeries, GrowingLatencyIsNotStationary) {
  TimeSeries ts(10);
  // Latency grows linearly with time: a super-saturated network.
  for (Cycle t = 10; t < 1000; t += 5)
    ts.recordDelivery(deliveredAt(t, t));
  EXPECT_FALSE(ts.stationary());
  EXPECT_GT(ts.latencyTrend(0, ts.intervals().size()), 1.0);
}

TEST(TimeSeries, TailMeanUsesLastIntervals) {
  TimeSeries ts(10);
  for (Cycle t = 0; t < 100; t += 2) ts.recordDelivery(deliveredAt(t, 10));
  for (Cycle t = 100; t < 200; t += 2)
    ts.recordDelivery(deliveredAt(t, 50));
  // Last 10 intervals cover cycles 100..200 only.
  EXPECT_DOUBLE_EQ(ts.tailMeanLatency(10), 50.0);
  // All intervals: mixture.
  EXPECT_NEAR(ts.tailMeanLatency(100), 30.0, 1e-9);
}

TEST(TimeSeries, TrendIgnoresEmptyIntervals) {
  TimeSeries ts(10);
  ts.recordDelivery(deliveredAt(5, 10));
  ts.recordDelivery(deliveredAt(95, 10));  // intervals 1..8 are empty
  EXPECT_NEAR(ts.latencyTrend(0, ts.intervals().size()), 0.0, 1e-9);
}

}  // namespace
}  // namespace rair
