#include "packet/packet.h"

#include <gtest/gtest.h>

namespace rair {
namespace {

Packet makePacket(std::uint16_t flits) {
  Packet p;
  p.id = 77;
  p.src = 3;
  p.dst = 12;
  p.app = 2;
  p.msgClass = MsgClass::Reply;
  p.numFlits = flits;
  p.createCycle = 100;
  return p;
}

TEST(Packet, SingleFlitIsHeadTail) {
  const auto flits = packetToFlits(makePacket(1));
  ASSERT_EQ(flits.size(), 1u);
  EXPECT_EQ(flits[0].type, FlitType::HeadTail);
  EXPECT_TRUE(isHead(flits[0].type));
  EXPECT_TRUE(isTail(flits[0].type));
}

TEST(Packet, MultiFlitStructure) {
  const auto flits = packetToFlits(makePacket(5));
  ASSERT_EQ(flits.size(), 5u);
  EXPECT_EQ(flits[0].type, FlitType::Head);
  EXPECT_EQ(flits[1].type, FlitType::Body);
  EXPECT_EQ(flits[2].type, FlitType::Body);
  EXPECT_EQ(flits[3].type, FlitType::Body);
  EXPECT_EQ(flits[4].type, FlitType::Tail);
  EXPECT_TRUE(isHead(flits[0].type));
  EXPECT_FALSE(isTail(flits[0].type));
  EXPECT_TRUE(isTail(flits[4].type));
  EXPECT_FALSE(isHead(flits[4].type));
}

TEST(Packet, TwoFlitPacketHasHeadAndTail) {
  const auto flits = packetToFlits(makePacket(2));
  ASSERT_EQ(flits.size(), 2u);
  EXPECT_EQ(flits[0].type, FlitType::Head);
  EXPECT_EQ(flits[1].type, FlitType::Tail);
}

TEST(Packet, FlitsCarryPacketMetadata) {
  const Packet p = makePacket(5);
  const auto flits = packetToFlits(p);
  for (std::size_t i = 0; i < flits.size(); ++i) {
    EXPECT_EQ(flits[i].pkt, p.id);
    EXPECT_EQ(flits[i].src, p.src);
    EXPECT_EQ(flits[i].dst, p.dst);
    EXPECT_EQ(flits[i].app, p.app);
    EXPECT_EQ(flits[i].msgClass, p.msgClass);
    EXPECT_EQ(flits[i].seq, i);
    EXPECT_EQ(flits[i].pktFlits, p.numFlits);
    EXPECT_EQ(flits[i].createCycle, p.createCycle);
  }
}

TEST(Packet, LatencyAccessors) {
  Packet p = makePacket(1);
  p.createCycle = 100;
  p.injectCycle = 110;
  p.ejectCycle = 150;
  EXPECT_EQ(p.totalLatency(), 50u);
  EXPECT_EQ(p.networkLatency(), 40u);
}

TEST(Packet, BimodalLengthDistribution) {
  Xoshiro256StarStar rng(1234);
  int shortCount = 0, longCount = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto len = drawBimodalLength(rng);
    ASSERT_TRUE(len == kShortPacketFlits || len == kLongPacketFlits);
    (len == kShortPacketFlits ? shortCount : longCount)++;
  }
  // Each length is picked with probability 1/2.
  EXPECT_NEAR(static_cast<double>(shortCount) / kN, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(longCount) / kN, 0.5, 0.02);
}

TEST(Packet, PaperFlitLengths) {
  EXPECT_EQ(kShortPacketFlits, 1);
  EXPECT_EQ(kLongPacketFlits, 5);
}

}  // namespace
}  // namespace rair
