// NIC behaviour: per-(class, application) source queues, injection
// fairness, and credit handling.
#include <gtest/gtest.h>

#include "sim_test_util.h"
#include "traffic/generator.h"

namespace rair {
namespace {

using testutil::ScriptedSource;

TEST(Nic, BacklogOfOneAppDoesNotHeadOfLineBlockAnother) {
  // 200 packets of app 1 and a single app 0 packet are queued at the same
  // NIC in the same cycle. With per-app source queues the app 0 packet
  // must go out almost immediately instead of waiting behind the backlog.
  Mesh m(4, 1);
  AppSpec a0{0, {0, 1}};
  AppSpec a1{1, {2, 3}};
  const RegionMap rm(m, {a0, a1});
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  std::vector<ScriptedSource::Event> events;
  for (int i = 0; i < 200; ++i) events.push_back({0, 0, 3, 1, 5});
  events.push_back({0, 0, 3, 0, 1});
  sim.addSource(std::make_unique<ScriptedSource>(events));
  const auto r = sim.run();
  EXPECT_EQ(r.packetsDelivered, 201u);
  // Zero-load latency for 3 hops is 17; allow contention for link share
  // with the backlog but far below the ~1000+ cycles full serialization
  // behind 200 five-flit packets would cost.
  EXPECT_LT(r.stats.appApl(0), 120.0);
  EXPECT_GT(r.stats.appApl(1), r.stats.appApl(0));
}

TEST(Nic, InjectionRespectsLinkBandwidth) {
  // N single-flit packets queued at once: the NIC injects at most one
  // flit per cycle, so the last packet leaves >= N-1 cycles after the
  // first. Delivered spacing reflects that serialization.
  Mesh m(2, 1);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  std::vector<ScriptedSource::Event> events;
  constexpr int kN = 30;
  for (int i = 0; i < kN; ++i) events.push_back({0, 0, 1, 0, 1});
  sim.addSource(std::make_unique<ScriptedSource>(events));
  const auto r = sim.run();
  EXPECT_EQ(r.packetsDelivered, kN);
  // Min latency = zero-load (9 for 1 hop); max >= kN - 1 extra cycles of
  // source serialization.
  EXPECT_GE(r.stats.app(0).totalLatency.max(),
            r.stats.app(0).totalLatency.min() + kN - 1);
}

TEST(Nic, MessageClassesUseSeparateQueuesAndVcs) {
  Mesh m(2, 1);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.net.numClasses = 2;
  cfg.net.vcsPerClass = 4;
  Simulator sim(m, rm, cfg, policy, 2);
  // A long burst of Request-class packets plus one Reply-class packet.
  std::vector<ScriptedSource::Event> events;
  for (int i = 0; i < 50; ++i)
    events.push_back({0, 0, 1, 0, 5, MsgClass::Request});
  events.push_back({0, 0, 1, 0, 1, MsgClass::Reply});
  sim.addSource(std::make_unique<ScriptedSource>(events));
  const auto r = sim.run();
  EXPECT_EQ(r.packetsDelivered, 51u);
  // The reply must not wait for the whole request backlog (~250 flits).
  EXPECT_LT(r.stats.app(0).totalLatency.min(), 60.0);
}

TEST(Nic, QuiescentWhenAllDelivered) {
  Mesh m(2, 1);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{0, 0, 1, 0, 5}}));
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained);
  EXPECT_TRUE(sim.network().nic(0).quiescent());
  EXPECT_EQ(sim.network().nic(0).queuedPackets(), 0u);
}

}  // namespace
}  // namespace rair
