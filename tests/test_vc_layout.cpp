#include "router/vc.h"

#include <gtest/gtest.h>

namespace rair {
namespace {

TEST(VcLayout, PlainLayoutClasses) {
  VcLayout l(1, 4, /*rairPartition=*/false);
  EXPECT_EQ(l.totalVcs(), 4);
  EXPECT_EQ(l.typeOf(0), VcClass::Escape);
  EXPECT_EQ(l.typeOf(1), VcClass::Adaptive);
  EXPECT_EQ(l.typeOf(2), VcClass::Adaptive);
  EXPECT_EQ(l.typeOf(3), VcClass::Adaptive);
  EXPECT_EQ(l.globalPerClass(), 0);
  EXPECT_EQ(l.regionalPerClass(), 0);
}

TEST(VcLayout, RairDefaultSplitIsRoughlyEqual) {
  VcLayout l(1, 5, /*rairPartition=*/true);
  // 4 adaptive VCs -> 2 regional + 2 global.
  EXPECT_EQ(l.typeOf(0), VcClass::Escape);
  EXPECT_EQ(l.typeOf(1), VcClass::Regional);
  EXPECT_EQ(l.typeOf(2), VcClass::Regional);
  EXPECT_EQ(l.typeOf(3), VcClass::Global);
  EXPECT_EQ(l.typeOf(4), VcClass::Global);
  EXPECT_EQ(l.regionalPerClass(), 2);
  EXPECT_EQ(l.globalPerClass(), 2);
}

TEST(VcLayout, RairCustomSplit) {
  VcLayout l(1, 5, true, /*globalPerClass=*/1);
  EXPECT_EQ(l.typeOf(1), VcClass::Regional);
  EXPECT_EQ(l.typeOf(2), VcClass::Regional);
  EXPECT_EQ(l.typeOf(3), VcClass::Regional);
  EXPECT_EQ(l.typeOf(4), VcClass::Global);
}

TEST(VcLayout, MultiClassBlocks) {
  VcLayout l(2, 4, true);
  EXPECT_EQ(l.totalVcs(), 8);
  EXPECT_EQ(l.msgClassOf(0), MsgClass::Request);
  EXPECT_EQ(l.msgClassOf(3), MsgClass::Request);
  EXPECT_EQ(l.msgClassOf(4), MsgClass::Reply);
  EXPECT_EQ(l.msgClassOf(7), MsgClass::Reply);
  EXPECT_EQ(l.firstVcOf(MsgClass::Request), 0);
  EXPECT_EQ(l.firstVcOf(MsgClass::Reply), 4);
  // Each class block has its own escape VC.
  EXPECT_EQ(l.typeOf(0), VcClass::Escape);
  EXPECT_EQ(l.typeOf(4), VcClass::Escape);
  // Tagging repeats per class: vcsPerClass=4 -> 3 adaptive, 1 global.
  EXPECT_EQ(l.typeOf(1), VcClass::Regional);
  EXPECT_EQ(l.typeOf(2), VcClass::Regional);
  EXPECT_EQ(l.typeOf(3), VcClass::Global);
  EXPECT_EQ(l.typeOf(5), VcClass::Regional);
  EXPECT_EQ(l.typeOf(7), VcClass::Global);
}

TEST(VcLayout, EscapeAndAdaptiveQueries) {
  VcLayout l(1, 5, true);
  EXPECT_TRUE(l.isEscape(0));
  EXPECT_FALSE(l.isAdaptive(0));
  for (int vc = 1; vc < 5; ++vc) {
    EXPECT_FALSE(l.isEscape(vc));
    EXPECT_TRUE(l.isAdaptive(vc));
  }
}

TEST(VcLayout, Table1Config) {
  // Full-system config of Table 1: 4 VCs per protocol class, 2 classes.
  VcLayout l(2, 4, false);
  EXPECT_EQ(l.totalVcs(), 8);
  EXPECT_EQ(l.adaptivePerClass(), 3);
}

}  // namespace
}  // namespace rair
